#!/usr/bin/env bash
# Build an2sim, run the full test suite, and regenerate every paper
# table/figure (writes test_output.txt and bench_output.txt at the repo
# root). Experiments ported onto the sweep harness additionally emit
# machine-readable an2.sweep.v1 JSON, merged into BENCH_sweeps.json.
# Usage: scripts/run_experiments.sh [build-dir]
set -euo pipefail
cd "$(dirname "$0")/.."
BUILD="${1:-build}"
THREADS="$(nproc)"

# Prefer Ninja on first configure; an already-configured build dir keeps
# its generator (CMake refuses to switch generators in place).
if [ -f "$BUILD/CMakeCache.txt" ]; then
    cmake -B "$BUILD"
else
    cmake -B "$BUILD" -G Ninja
fi
cmake --build "$BUILD" -j"$THREADS"

ctest --test-dir "$BUILD" 2>&1 | tee test_output.txt

# Harness sweeps: parallel execution plus one JSON trace per experiment
# (deterministic — identical bytes for any THREADS value). netscale runs
# whole networks on the sharded engine; its JSON is likewise identical
# for any thread count and engine choice.
SWEEPS=(fig3 fig4 fig5 netscale)
mkdir -p "$BUILD/sweeps"
for exp in "${SWEEPS[@]}"; do
    "$BUILD/bench/an2_sweep" --experiment "$exp" --threads "$THREADS" \
        --json "$BUILD/sweeps/$exp.json"
done

# Deterministic network-scale throughput vs the committed baseline
# (warn-only; see scripts/check_bench.py).
python3 scripts/check_bench.py "$BUILD/sweeps/netscale.json"

# CIOQ speedup study (Cogill-Lall): greedy maximal matching at crossbar
# speedup S = 1/2/4 vs the ideal output-queued switch under the
# multi-class uniform workload. Written to its own committed document
# rather than merged into BENCH_sweeps.json, so that trajectory file
# stays byte-stable. The serial-vs-8-thread cmp guards the CIOQ arch's
# determinism the same way the chaos smoke guards the network engine.
"$BUILD/bench/an2_sweep" --experiment speedup --threads "$THREADS" \
    --json BENCH_speedup.json
"$BUILD/bench/an2_sweep" --experiment fig3 --arch cioq --speedup 2 \
    --service wrr --slots 20000 --warmup 4000 --threads 1 \
    --json "$BUILD/sweeps/cioq_t1.json"
"$BUILD/bench/an2_sweep" --experiment fig3 --arch cioq --speedup 2 \
    --service wrr --slots 20000 --warmup 4000 --threads 8 \
    --json "$BUILD/sweeps/cioq_t8.json"
cmp "$BUILD/sweeps/cioq_t1.json" "$BUILD/sweeps/cioq_t8.json"

# Telemetry smoke: an an2.metrics.v1 time series off the latdist
# observed point plus a fault-triggered an2.blackbox.v1 post-mortem,
# both hard-validated (scripts/check_metrics.py exits 1 on any
# structural violation).
"$BUILD/bench/an2_sweep" --experiment latdist --slots 4000 --warmup 400 \
    --loads 0.9 --metrics "$BUILD/sweeps/latdist_metrics.jsonl" \
    --metrics-prom "$BUILD/sweeps/latdist_metrics.prom" --json /dev/null
"$BUILD/bench/an2_sweep" --experiment fig3 --slots 6000 --warmup 500 \
    --loads 0.9 --faults 'out_down(3)@5000' \
    --blackbox "$BUILD/sweeps/blackbox_smoke.json" --json /dev/null
python3 scripts/check_metrics.py \
    --metrics "$BUILD/sweeps/latdist_metrics.jsonl" \
    --blackbox "$BUILD/sweeps/blackbox_smoke.json"

# Chaos smoke: seeded link/switch churn on the netscale fat-tree with
# CBR path restoration armed. The expanded fault plan and every
# restoration retry are deterministic, so the serial and 8-thread
# engines must produce identical bytes; a blackbox post-mortem on disk
# means an invariant tripped mid-churn.
chaos='chaos(7,2.5,link+switch+storm)'
rm -f "$BUILD/sweeps/chaos_blackbox.json"
"$BUILD/bench/an2_sweep" --experiment netscale --chaos "$chaos" \
    --frames 2 --loads 0.05 --engine serial \
    --blackbox "$BUILD/sweeps/chaos_blackbox.json" \
    --json "$BUILD/sweeps/chaos_serial.json"
"$BUILD/bench/an2_sweep" --experiment netscale --chaos "$chaos" \
    --frames 2 --loads 0.05 --threads 8 \
    --blackbox "$BUILD/sweeps/chaos_blackbox.json" \
    --json "$BUILD/sweeps/chaos_t8.json"
cmp "$BUILD/sweeps/chaos_serial.json" "$BUILD/sweeps/chaos_t8.json"
if [ -e "$BUILD/sweeps/chaos_blackbox.json" ]; then
    echo "chaos smoke dumped a post-mortem:" >&2
    cat "$BUILD/sweeps/chaos_blackbox.json" >&2
    exit 1
fi

# Merge the per-experiment documents into one trajectory file.
if command -v jq > /dev/null; then
    jq -s '{schema: "an2.sweeps.v1", sweeps: .}' \
        $(for e in "${SWEEPS[@]}"; do echo "$BUILD/sweeps/$e.json"; done) \
        > BENCH_sweeps.json
    echo "Wrote BENCH_sweeps.json" \
         "($(jq '.sweeps | length' BENCH_sweeps.json) sweeps)"
else
    echo "jq not found; per-experiment JSON left in $BUILD/sweeps/"
fi

{
    for b in "$BUILD"/bench/bench_*; do
        [ -x "$b" ] && "$b"
    done
} 2>&1 | tee bench_output.txt

echo
echo "Done. See EXPERIMENTS.md for the paper-vs-measured index."
