#!/usr/bin/env bash
# Build an2sim, run the full test suite, and regenerate every paper
# table/figure (writes test_output.txt and bench_output.txt at the repo
# root). Usage: scripts/run_experiments.sh [build-dir]
set -euo pipefail
cd "$(dirname "$0")/.."
BUILD="${1:-build}"

cmake -B "$BUILD" -G Ninja
cmake --build "$BUILD" -j"$(nproc)"

ctest --test-dir "$BUILD" 2>&1 | tee test_output.txt

{
    for b in "$BUILD"/bench/bench_*; do
        [ -x "$b" ] && "$b"
    done
} 2>&1 | tee bench_output.txt

echo
echo "Done. See EXPERIMENTS.md for the paper-vs-measured index."
