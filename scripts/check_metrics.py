#!/usr/bin/env python3
"""Validate `an2.metrics.v1` and `an2.blackbox.v1` documents.

Usage:
    scripts/check_metrics.py [--metrics SERIES.jsonl] [--blackbox DUMP.json]

SERIES.jsonl is the JSON-lines time series written by `an2_sweep
--metrics=FILE` (one sample per window barrier, switch or LAN source);
DUMP.json is the flight-recorder post-mortem written on an invariant
panic or scripted fault (`--blackbox=FILE`). The script checks the
schema banners plus the structural invariants the exporters promise:
samples strictly ordered by slot with cumulative (non-decreasing)
counters, conservation between enqueue/dequeue/delivery, latency
quantiles ordered p50 <= p99 <= p999 <= max, a square VOQ heatmap whose
column sums never exceed the backlog vector, and counter deltas bounded
by their absolutes.

Exit code 0 when valid, 1 with a diagnostic on the first violation:
like the trace check (and unlike the perf smoke) this IS a hard gate,
because both formats are deterministic and machine-independent.
"""

import argparse
import json
import sys

# Counter keys every switch-source sample must carry (the obs::Counter
# enum as of an2.metrics.v1; new counters append, never remove).
SWITCH_COUNTERS = [
    "slots_run",
    "cells_enqueued",
    "cells_dequeued",
    "cbr_cells_forwarded",
    "match_iterations",
    "requests_seen",
    "grants_issued",
    "accepts_issued",
    "cells_delivered",
    "trace_events_dropped",
    "metrics_samples",
    "blackbox_dumps",
]

LAN_COUNTERS = [
    "injected",
    "delivered",
    "cbr_injected",
    "vbr_injected",
    "cbr_delivered",
    "vbr_delivered",
    "link_lost",
    "reroutes",
    "unroutable",
    "cbr_restored",
    "cbr_degraded",
    "cbr_abandoned",
    "cbr_restore_retries",
    "restore_lost",
]

QUANTILE_KEYS = ["count", "p50", "p99", "p999", "max"]


def fail(msg):
    print(f"check_metrics: FAIL: {msg}")
    sys.exit(1)


def check_quantiles(where, hist):
    for key in QUANTILE_KEYS:
        if key not in hist:
            fail(f"{where}: missing {key!r}")
        if not isinstance(hist[key], int) or hist[key] < 0:
            fail(f"{where}: {key} = {hist[key]!r} is not a "
                 f"non-negative integer")
    if not hist["p50"] <= hist["p99"] <= hist["p999"] <= hist["max"]:
        fail(f"{where}: quantiles not monotone: {hist}")
    if hist["count"] == 0 and hist["max"] != 0:
        fail(f"{where}: empty histogram with max {hist['max']}")


def check_switch_sample(where, doc):
    counters = doc["counters"]
    for name in SWITCH_COUNTERS:
        if name not in counters:
            fail(f"{where}: counter {name!r} missing")
    if counters["cells_dequeued"] > counters["cells_enqueued"]:
        fail(f"{where}: more cells dequeued than enqueued")
    if counters["cells_delivered"] > counters["cells_dequeued"]:
        fail(f"{where}: more cells delivered than dequeued")
    gauges = doc.get("gauges")
    if not isinstance(gauges, dict) or "buffered_cells" not in gauges:
        fail(f"{where}: missing gauges.buffered_cells")
    dropped = doc.get("dropped_samples")
    if not isinstance(dropped, int) or dropped < 0:
        fail(f"{where}: bad dropped_samples: {dropped!r}")
    # "be" joined the class axis with the CIOQ switch; older documents
    # carry cbr/vbr only, so it is validated (and summed) when present.
    for section in ("latency", "hop_delay"):
        block = doc.get(section)
        if not isinstance(block, dict):
            fail(f"{where}: missing {section!r} section")
        for cls in ("cbr", "vbr"):
            check_quantiles(f"{where}: {section}.{cls}", block[cls])
        if "be" in block:
            check_quantiles(f"{where}: {section}.be", block["be"])
    delivered = sum(doc["latency"][cls]["count"]
                    for cls in ("cbr", "vbr", "be")
                    if cls in doc["latency"])
    if delivered != counters["cells_delivered"]:
        fail(f"{where}: latency class counts sum to {delivered}, "
             f"counter says {counters['cells_delivered']}")


def check_lan_sample(where, doc):
    counters = doc["counters"]
    for name in LAN_COUNTERS:
        if name not in counters:
            fail(f"{where}: counter {name!r} missing")
    if counters["cbr_injected"] + counters["vbr_injected"] \
            != counters["injected"]:
        fail(f"{where}: per-class injected does not partition the total")
    if counters["cbr_delivered"] + counters["vbr_delivered"] \
            != counters["delivered"]:
        fail(f"{where}: per-class delivered does not partition the total")
    if counters["delivered"] > counters["injected"]:
        fail(f"{where}: more cells delivered than injected")
    latency = doc.get("latency")
    if not isinstance(latency, dict) or "mean_wall_ps" not in latency:
        fail(f"{where}: missing latency.mean_wall_ps")


def check_metrics(path):
    source = None
    last_slot = None
    prev_counters = None
    n_lines = 0
    with open(path) as f:
        for lineno, line in enumerate(f, 1):
            if not line.strip():
                continue
            where = f"{path}:{lineno}"
            doc = json.loads(line)
            if doc.get("schema") != "an2.metrics.v1":
                fail(f"{where}: schema is {doc.get('schema')!r}, "
                     f"want 'an2.metrics.v1'")
            if source is None:
                source = doc.get("source")
                if source not in ("switch", "lan"):
                    fail(f"{where}: unknown source {source!r}")
            elif doc.get("source") != source:
                fail(f"{where}: source changed mid-series")
            slot = doc.get("slot")
            window = doc.get("window")
            if not isinstance(slot, int) or slot <= 0:
                fail(f"{where}: bad slot {slot!r}")
            if not isinstance(window, int) or window <= 0:
                fail(f"{where}: bad window {window!r}")
            if last_slot is not None and slot <= last_slot:
                fail(f"{where}: slot {slot} does not advance past "
                     f"{last_slot}")
            last_slot = slot
            counters = doc.get("counters")
            if not isinstance(counters, dict):
                fail(f"{where}: missing counters object")
            if prev_counters is not None:
                for name, value in counters.items():
                    if value < prev_counters.get(name, 0):
                        fail(f"{where}: cumulative counter {name} fell "
                             f"from {prev_counters[name]} to {value}")
            prev_counters = counters
            if source == "switch":
                check_switch_sample(where, doc)
            else:
                check_lan_sample(where, doc)
            n_lines += 1
    if n_lines == 0:
        fail(f"{path}: no metrics samples")
    print(f"  metrics ok: {n_lines} {source} samples, final slot "
          f"{last_slot}")


def check_blackbox(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != "an2.blackbox.v1":
        fail(f"schema is {doc.get('schema')!r}, want 'an2.blackbox.v1'")
    reason = doc.get("reason")
    if not isinstance(reason, str) or not reason:
        fail(f"bad reason: {reason!r}")
    slot = doc.get("slot")
    if not isinstance(slot, int) or slot < 0:
        fail(f"bad slot: {slot!r}")
    counters = doc.get("counters")
    if not isinstance(counters, dict):
        fail("missing counters object")
    for name in SWITCH_COUNTERS:
        if name not in counters:
            fail(f"counter {name!r} missing")
    deltas = doc.get("counter_deltas", {})
    for name, value in deltas.items():
        if name not in counters:
            fail(f"delta for unknown counter {name!r}")
        if value == 0:
            fail(f"zero delta {name!r} should have been omitted")
        if value > counters[name]:
            fail(f"delta {name}={value} exceeds absolute "
                 f"{counters[name]}")
    # Switch-state sections are present whenever a switch was attached.
    n = doc.get("ports", 0)
    if n > 0:
        for mask in ("live_inputs", "live_outputs"):
            vec = doc.get(mask)
            if not isinstance(vec, list) or len(vec) != n:
                fail(f"{mask} is not a length-{n} vector")
            if any(v not in (0, 1) for v in vec):
                fail(f"{mask} has non-boolean entries: {vec}")
        voq = doc.get("voq")
        if not isinstance(voq, list) or len(voq) != n \
                or any(len(row) != n for row in voq):
            fail(f"voq heatmap is not {n}x{n}")
        backlog = doc.get("output_backlog")
        if not isinstance(backlog, list) or len(backlog) != n:
            fail(f"output_backlog is not a length-{n} vector")
        # backlog[j] = VOQ column j plus any output-queue residue
        # (speedup > 1): it can exceed but never undercut the column.
        for j in range(n):
            col = sum(voq[i][j] for i in range(n))
            if backlog[j] < col:
                fail(f"backlog[{j}]={backlog[j]} below VOQ column "
                     f"sum {col}")
        if doc.get("buffered_cells") != sum(backlog):
            fail(f"buffered_cells={doc.get('buffered_cells')} but "
                 f"backlog sums to {sum(backlog)}")
    events = doc.get("events")
    if not isinstance(events, list):
        fail("events is not a list")
    for k, e in enumerate(events):
        if "slot" not in e or "type" not in e:
            fail(f"event {k} missing slot/type: {e}")
        if k > 0 and e["slot"] < events[k - 1]["slot"]:
            fail(f"event {k}: slot {e['slot']} decreases")
    omitted = doc.get("events_omitted")
    if not isinstance(omitted, int) or omitted < 0:
        fail(f"bad events_omitted: {omitted!r}")
    print(f"  blackbox ok: {reason!r} at slot {slot}, "
          f"{len(events)} events ({omitted} omitted)")


def main():
    parser = argparse.ArgumentParser(
        description="Hard-validate an2.metrics.v1 / an2.blackbox.v1 "
                    "documents.")
    parser.add_argument("--metrics",
                        help="an2.metrics.v1 JSON-lines from --metrics")
    parser.add_argument("--blackbox",
                        help="an2.blackbox.v1 JSON from --blackbox")
    args = parser.parse_args()
    if not args.metrics and not args.blackbox:
        parser.error("nothing to check; pass --metrics and/or --blackbox")
    if args.metrics:
        check_metrics(args.metrics)
    if args.blackbox:
        check_blackbox(args.blackbox)
    print("Metrics check OK.")


if __name__ == "__main__":
    main()
