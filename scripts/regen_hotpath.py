#!/usr/bin/env python3
"""Regenerate the committed BENCH_hotpath.json before/after document.

Usage:
    scripts/regen_hotpath.py --before-bin PATH --after-bin PATH \
        [--out BENCH_hotpath.json]

Runs both bench_slot_loop binaries (one built from the commit *before*
the change being documented, one from *after*) over a fixed
size x load grid and assembles the an2.bench_hotpath.v1 document:

  before[]  cells from the before binary
  after[]   cells from the after binary
  speedup{} after/before mean slots/sec per (arch, size, load); a row
            whose arch exists only in the after binary (e.g. the
            "+warm" variants) is compared against its base arch with
            the +suffixes stripped, so "iSLIP(4)+warm 1024x1024@0.9"
            reads as warm-vs-seed on the same workload.

Large sizes get a reduced slot budget: the point of the 1024-port rows
is the cache-resident-vs-not regime change, not tight CIs. Rates are
wall-clock and machine-dependent by design; compare ratios.
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile

# (size, load, slots, warmup, reps, arch substring filters; None = all)
GRID = [
    (16, 0.9, 200_000, 20_000, 3, [None]),
    (64, 0.9, 50_000, 5_000, 2, [None]),
    (256, 0.9, 20_000, 2_000, 2, [None]),
    (1024, 0.5, 20_000, 5_000, 1, ["iSLIP"]),
    (1024, 0.9, 20_000, 5_000, 1, ["iSLIP", "Greedy", "FastPIM"]),
    (1024, 0.99, 20_000, 5_000, 1, ["iSLIP"]),
]


def run_grid(binary):
    cells = []
    for size, load, slots, warmup, reps, filters in GRID:
        for arch in filters:
            cmd = [binary, "--size", str(size), "--load", str(load),
                   "--slots", str(slots), "--warmup", str(warmup),
                   "--reps", str(reps)]
            if arch:
                cmd += ["--arch", arch]
            with tempfile.NamedTemporaryFile(suffix=".json") as tmp:
                cmd += ["--json", tmp.name]
                print(f"  {os.path.basename(binary)}: "
                      f"{size}x{size}@{load:g}"
                      f"{' arch=' + arch if arch else ''}", flush=True)
                subprocess.run(cmd, check=True, stdout=subprocess.DEVNULL)
                with open(tmp.name) as f:
                    doc = json.load(f)
            for c in doc["cells"]:
                key = (c["arch"], c["size"], c["load"])
                if key not in {(x["arch"], x["size"], x["load"])
                               for x in cells}:
                    cells.append(c)
    return cells


def base_arch(arch):
    return arch.split("+")[0]


def speedups(before, after):
    bmap = {(c["arch"], c["size"], c["load"]):
            c["slots_per_sec"]["mean"] for c in before}
    out = {}
    for c in after:
        key = (c["arch"], c["size"], c["load"])
        ref = bmap.get(key)
        if ref is None:
            ref = bmap.get((base_arch(c["arch"]), c["size"], c["load"]))
        if ref is None:
            continue
        label = f"{c['arch']} {c['size']}x{c['size']}@{c['load']:g}"
        out[label] = round(c["slots_per_sec"]["mean"] / ref, 2)
    return out


def main():
    parser = argparse.ArgumentParser(
        description="Regenerate BENCH_hotpath.json from two "
                    "bench_slot_loop binaries.")
    parser.add_argument("--before-bin", required=True,
                        help="bench_slot_loop built before the change")
    parser.add_argument("--after-bin", required=True,
                        help="bench_slot_loop built after the change")
    parser.add_argument("--out", default="BENCH_hotpath.json")
    args = parser.parse_args()

    print("before rows:")
    before = run_grid(args.before_bin)
    print("after rows:")
    after = run_grid(args.after_bin)

    doc = {
        "meta": {
            "schema": "an2.bench_hotpath.v1",
            "description": (
                "Committed hot-path baseline: whole-switch slots/sec on "
                "the uniform Bernoulli workload over a size x load grid, "
                "before and after the warm-start incremental matching + "
                "batched slot driver work. Warm rows are compared "
                "against the cold base architecture on the same "
                "workload. Wall-clock rates; machine-dependent -- "
                "compare ratios, not absolutes."),
            "produced_by": "scripts/regen_hotpath.py",
            "workload": {
                "schema": "an2.sweep.v1",
                "experiment": "slot_loop",
                "workload": "uniform",
                "grid": [
                    {"size": size, "load": load, "slots": slots,
                     "warmup": warmup, "replicates": reps}
                    for size, load, slots, warmup, reps, _ in GRID
                ],
                "base_seed": "2026",
            },
        },
        "before": before,
        "after": after,
        "speedup": speedups(before, after),
    }
    with open(args.out, "w") as f:
        json.dump(doc, f, indent=2)
        f.write("\n")
    print(f"wrote {args.out}: {len(before)} before cells, "
          f"{len(after)} after cells")
    for label, ratio in doc["speedup"].items():
        print(f"  {label:40s} {ratio:5.2f}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
