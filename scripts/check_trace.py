#!/usr/bin/env python3
"""Validate an `an2.trace.v1` Chrome trace document.

Usage:
    scripts/check_trace.py TRACE.json [--snapshot SNAP.jsonl]

TRACE.json is the document written by `an2_sweep --trace=FILE` (or
`obs::toChromeTraceJson`). The script checks the schema banner, the
structural invariants the exporter promises (balanced slot B/E spans,
non-decreasing timestamps per thread, counter consistency, every
dequeue preceded by the enqueue of the same cell when the ring did not
drop), and — with `--snapshot` — each `an2.snapshot.v1` JSON line
(square VOQ matrix, backlog >= VOQ column sums, histogram sized N+1).

Exit code 0 when valid, 1 with a diagnostic on the first violation:
unlike the perf smoke this IS a hard gate, because the trace format is
deterministic and machine-independent.
"""

import argparse
import json
import sys

REQUIRED_COUNTERS = [
    "slots_run",
    "cells_enqueued",
    "cells_dequeued",
    "cbr_cells_forwarded",
    "match_iterations",
    "productive_iterations",
    "requests_seen",
    "grants_issued",
    "accepts_issued",
    "keep_grant_retained",
    "cbr_masked_inputs",
    "cbr_masked_outputs",
    "snapshots_taken",
]


def fail(msg):
    print(f"check_trace: FAIL: {msg}")
    sys.exit(1)


def check_trace(path):
    with open(path) as f:
        doc = json.load(f)

    if doc.get("schema") != "an2.trace.v1":
        fail(f"schema is {doc.get('schema')!r}, want 'an2.trace.v1'")
    other = doc.get("otherData")
    if not isinstance(other, dict):
        fail("missing otherData object")
    counters = other.get("counters", {})
    for name in REQUIRED_COUNTERS:
        if name not in counters:
            fail(f"counter {name!r} missing from otherData.counters")
    dropped = other.get("dropped_events")
    if not isinstance(dropped, int) or dropped < 0:
        fail(f"bad dropped_events: {dropped!r}")

    events = doc.get("traceEvents")
    if not isinstance(events, list):
        fail("traceEvents is not a list")

    open_slots = 0
    last_ts = {}
    live_cells = set()
    enq = deq = 0
    complete = dropped == 0
    for k, e in enumerate(events):
        for field in ("name", "ph", "ts", "pid", "tid"):
            if field not in e:
                fail(f"event {k} missing {field!r}: {e}")
        tid = e["tid"]
        # Two documented exemptions from per-tid ts monotonicity (Chrome
        # orders by ts, so the viewer is unaffected): counter samples
        # ("C") are stamped at the slot-begin tick but emitted at slot
        # end, and events recorded before the first beginSlot clamp into
        # slot 0 out of order with that slot's own events.
        ticks = other.get("slot_ticks", 1000)
        if e["ph"] != "C" and e["ts"] >= ticks:
            if e["ts"] < last_ts.get(tid, e["ts"]):
                fail(f"event {k}: ts {e['ts']} decreases on tid {tid}")
            last_ts[tid] = e["ts"]
        if e["name"] == "slot":
            if e["ph"] == "B":
                if open_slots:
                    fail(f"event {k}: nested slot begin")
                open_slots += 1
            elif e["ph"] == "E":
                if not open_slots:
                    fail(f"event {k}: slot end without begin")
                open_slots -= 1
        elif e["name"] == "enqueue":
            enq += 1
            cell = (e["args"]["flow"], e["args"]["seq"])
            if complete:
                if cell in live_cells:
                    fail(f"event {k}: duplicate enqueue of {cell}")
                live_cells.add(cell)
        elif e["name"] == "dequeue":
            deq += 1
            cell = (e["args"]["flow"], e["args"]["seq"])
            if complete:
                if cell not in live_cells:
                    fail(f"event {k}: dequeue of {cell} without a prior "
                         f"enqueue")
                live_cells.remove(cell)
    # The ring keeps the newest events, so the stream may start inside a
    # slot span; at most one span may be left open at either end.
    if open_slots not in (0, 1):
        fail(f"{open_slots} slot spans left open")
    if complete:
        if enq != counters["cells_enqueued"]:
            fail(f"{enq} enqueue events vs counter "
                 f"{counters['cells_enqueued']}")
        if deq != counters["cells_dequeued"]:
            fail(f"{deq} dequeue events vs counter "
                 f"{counters['cells_dequeued']}")
    if counters["cells_dequeued"] > counters["cells_enqueued"]:
        fail("more cells dequeued than enqueued")
    print(f"  trace ok: {len(events)} events, {enq} enqueues, "
          f"{deq} dequeues, {dropped} dropped")


def check_snapshots(path):
    n_lines = 0
    with open(path) as f:
        for lineno, line in enumerate(f, 1):
            if not line.strip():
                continue
            snap = json.loads(line)
            where = f"{path}:{lineno}"
            if snap.get("schema") != "an2.snapshot.v1":
                fail(f"{where}: schema is {snap.get('schema')!r}")
            n = snap["ports"]
            voq = snap["voq"]
            if len(voq) != n or any(len(row) != n for row in voq):
                fail(f"{where}: VOQ matrix is not {n}x{n}")
            backlog = snap["output_backlog"]
            if len(backlog) != n:
                fail(f"{where}: output_backlog has {len(backlog)} entries")
            # backlog[j] = VOQ column j plus any output-queue residue
            # (speedup > 1), so it can exceed but never undercut the
            # column sum.
            for j in range(n):
                col = sum(voq[i][j] for i in range(n))
                if backlog[j] < col:
                    fail(f"{where}: backlog[{j}]={backlog[j]} below VOQ "
                         f"column sum {col}")
            hist = snap["match_size_hist"]
            if len(hist) != n + 1:
                fail(f"{where}: match_size_hist has {len(hist)} bins, "
                     f"want {n + 1}")
            if snap["buffered"] != sum(backlog):
                fail(f"{where}: buffered={snap['buffered']} but backlog "
                     f"sums to {sum(backlog)}")
            n_lines += 1
    if n_lines == 0:
        fail(f"{path}: no snapshot lines")
    print(f"  snapshots ok: {n_lines} lines")


def main():
    parser = argparse.ArgumentParser(
        description="Hard-validate an an2.trace.v1 document.")
    parser.add_argument("trace", help="an2.trace.v1 JSON from --trace")
    parser.add_argument("--snapshot",
                        help="an2.snapshot.v1 JSON-lines from --snapshot")
    args = parser.parse_args()
    check_trace(args.trace)
    if args.snapshot:
        check_snapshots(args.snapshot)
    print("Trace check OK.")


if __name__ == "__main__":
    main()
