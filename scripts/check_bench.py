#!/usr/bin/env python3
"""Compare a bench_slot_loop run against the committed hot-path baseline.

Usage:
    scripts/check_bench.py RUN.json [--baseline BENCH_hotpath.json]
                           [--threshold 0.30]

RUN.json is an `an2.sweep.v1` document emitted by
`bench_slot_loop --json`; the baseline is the repo's committed
`BENCH_hotpath.json` (its `after` cells are the reference). For every
architecture present in both, the script compares mean slots/sec and
prints a WARNING when the run is more than `threshold` below the
baseline.

The exit code is always 0: wall-clock rates on shared CI runners are
too noisy for a hard gate, so regressions warn rather than fail.
Investigate a warning by rerunning locally with the full slot budget
(see "Performance methodology" in EXPERIMENTS.md).
"""

import argparse
import json
import os
import sys


def load_cells(path, key=None):
    with open(path) as f:
        doc = json.load(f)
    cells = doc[key] if key else doc["cells"]
    return {c["arch"]: c["slots_per_sec"]["mean"] for c in cells}


def main():
    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    parser = argparse.ArgumentParser(
        description="Warn (never fail) on slots/sec regressions.")
    parser.add_argument("run", help="an2.sweep.v1 JSON from bench_slot_loop")
    parser.add_argument(
        "--baseline",
        default=os.path.join(repo_root, "BENCH_hotpath.json"),
        help="committed baseline (default: repo BENCH_hotpath.json)")
    parser.add_argument(
        "--threshold", type=float, default=0.30,
        help="warn when slots/sec drops more than this fraction (0.30)")
    args = parser.parse_args()

    run = load_cells(args.run)
    baseline = load_cells(args.baseline, key="after")

    warned = False
    for arch in sorted(baseline):
        if arch not in run:
            print(f"  {arch:20s}  (not in this run, skipped)")
            continue
        base, now = baseline[arch], run[arch]
        ratio = now / base
        line = (f"  {arch:20s}  baseline {base:12,.0f}  "
                f"run {now:12,.0f}  ({ratio:5.2f}x)")
        if ratio < 1.0 - args.threshold:
            print(f"WARNING: slots/sec regression >"
                  f"{args.threshold:.0%} vs committed baseline:")
            print(line)
            warned = True
        else:
            print(line)
    for arch in sorted(set(run) - set(baseline)):
        print(f"  {arch:20s}  (no baseline, skipped)")

    if warned:
        print("\nPerf smoke saw a possible regression (non-fatal; CI "
              "runners are noisy).\nRerun locally with the full budget: "
              "./build/bench/bench_slot_loop --json out.json")
    else:
        print("\nPerf smoke OK: no architecture regressed beyond "
              f"{args.threshold:.0%} of the committed baseline.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
