#!/usr/bin/env python3
"""Compare a bench run against its committed baseline.

Usage:
    scripts/check_bench.py RUN.json [--baseline FILE] [--threshold 0.30]

Two document kinds are understood, keyed on the run's schema field:

  an2.sweep.v1 (from `bench_slot_loop --json`) — wall-clock slots/sec
  per architecture vs the committed `BENCH_hotpath.json` (its `after`
  cells are the reference). Rates on shared CI runners are noisy, so
  a drop of more than `threshold` prints a WARNING.

  an2.netsweep.v1 (from `an2_sweep --experiment netscale --json`) —
  delivered/injected throughput per (topology, load) cell vs the
  committed `BENCH_netscale.json`. These numbers are *deterministic*
  (byte-identical across engines and thread counts), so any drift at
  all is flagged: it means the simulation's behavior changed and the
  baseline should be regenerated deliberately.

The exit code is always 0: both checks warn rather than fail, keeping
CI green while making regressions visible in the log.
"""

import argparse
import json
import os
import sys


def load_doc(path):
    with open(path) as f:
        return json.load(f)


def schema_of(doc):
    meta = doc.get("meta", {})
    return meta.get("schema", doc.get("schema", ""))


def hotpath_cells(doc, key=None):
    # Keyed by (arch, size, load): the baseline carries rows at several
    # switch sizes and loads. Old documents predate the size/load keys,
    # so default to the historical 16x16 @ 0.9 workload.
    cells = doc[key] if key else doc["cells"]
    return {(c["arch"], c.get("size", 16), c.get("load", 0.9)):
            c["slots_per_sec"]["mean"] for c in cells}


def hotpath_label(cell_key):
    arch, size, load = cell_key
    return f"{arch} {size}x{size}@{load:g}"


def netsweep_cells(doc):
    return {(c["topo"], c["load"]): c["throughput"]["mean"]
            for c in doc["cells"]}


def check_hotpath(run_doc, baseline_path, threshold):
    run = hotpath_cells(run_doc)
    baseline = hotpath_cells(load_doc(baseline_path), key="after")

    warned = False
    for cell in sorted(baseline):
        label = hotpath_label(cell)
        if cell not in run:
            print(f"  {label:34s}  (not in this run, skipped)")
            continue
        base, now = baseline[cell], run[cell]
        if base <= 0:
            # A zero/negative baseline cell is a broken baseline, not a
            # regression; dividing by it would crash the whole check.
            print(f"  {label:34s}  baseline {base:12,.0f}  "
                  f"run {now:12,.0f}  (baseline 0, no ratio)")
            continue
        ratio = now / base
        line = (f"  {label:34s}  baseline {base:12,.0f}  "
                f"run {now:12,.0f}  ({ratio:5.2f}x)")
        if ratio < 1.0 - threshold:
            print(f"WARNING: slots/sec regression >"
                  f"{threshold:.0%} vs committed baseline:")
            print(line)
            warned = True
        else:
            print(line)
    for cell in sorted(set(run) - set(baseline)):
        print(f"  {hotpath_label(cell):34s}  (no baseline, skipped)")

    if warned:
        print("\nPerf smoke saw a possible regression (non-fatal; CI "
              "runners are noisy).\nRerun locally with the full budget: "
              "./build/bench/bench_slot_loop --json out.json")
    else:
        print("\nPerf smoke OK: no architecture regressed beyond "
              f"{threshold:.0%} of the committed baseline.")


def check_netsweep(run_doc, baseline_path):
    run = netsweep_cells(run_doc)
    baseline = netsweep_cells(load_doc(baseline_path))

    drifted = False
    for key in sorted(baseline):
        topo, load = key
        label = f"{topo} @ {load:g}"
        if key not in run:
            print(f"  {label:36s}  (not in this run, skipped)")
            continue
        base, now = baseline[key], run[key]
        line = (f"  {label:36s}  baseline {base:.12g}  run {now:.12g}")
        if now != base:
            print(f"WARNING: deterministic throughput drifted vs "
                  f"committed baseline:")
            print(line)
            drifted = True
        else:
            print(line)
    for key in sorted(set(run) - set(baseline)):
        print(f"  {key[0]} @ {key[1]:g}  (no baseline, skipped)")

    if drifted:
        print("\nNetwork throughput is deterministic: any drift means "
              "the simulation changed.\nIf intentional, regenerate: "
              "./build/bench/an2_sweep --experiment netscale "
              "--json BENCH_netscale.json")
    else:
        print("\nNetwork-scale check OK: throughput matches the "
              "committed baseline exactly.")


def self_test():
    """Exercise the hot-path comparison on synthetic documents —
    including the zero-baseline cell that used to crash the whole check
    with a ZeroDivisionError. Unlike the warn-only comparisons this
    guards the checker itself, so it exits 1 on any failure."""
    import contextlib
    import io
    import tempfile

    def cell(arch, rate):
        return {"arch": arch, "size": 16, "load": 0.9,
                "slots_per_sec": {"mean": rate}}

    baseline = {"after": [cell("PIM(4)", 1_000_000.0),
                          cell("Broken", 0.0),
                          cell("Gone", 500_000.0)]}
    run = {"meta": {"schema": "an2.sweep.v1"},
           "cells": [cell("PIM(4)", 900_000.0),
                     cell("Broken", 750_000.0),
                     cell("CIOQ(S=2,strict)", 400_000.0)]}
    with tempfile.NamedTemporaryFile("w", suffix=".json",
                                     delete=False) as f:
        json.dump(baseline, f)
        path = f.name
    try:
        out = io.StringIO()
        with contextlib.redirect_stdout(out):
            check_hotpath(run, path, 0.30)
    finally:
        os.unlink(path)
    text = out.getvalue()
    checks = [
        ("baseline 0, no ratio" in text,
         "zero baseline reported explicitly, not divided by"),
        ("0.90x" in text, "healthy cell still gets a ratio"),
        ("CIOQ(S=2,strict) 16x16@0.9" in text and
         "(no baseline, skipped)" in text,
         "arch with no committed baseline is skipped"),
        ("Gone 16x16@0.9" in text and
         "(not in this run, skipped)" in text,
         "baseline arch missing from the run is skipped"),
    ]
    ok = True
    for passed, what in checks:
        print(f"  {'ok' if passed else 'FAIL'}: {what}")
        ok = ok and passed
    print("check_bench self-test", "OK" if ok else "FAILED")
    return 0 if ok else 1


def main():
    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    parser = argparse.ArgumentParser(
        description="Warn (never fail) on bench regressions.")
    parser.add_argument("run", nargs="?",
                        help="an2.sweep.v1 or an2.netsweep.v1 JSON")
    parser.add_argument(
        "--self-test", action="store_true",
        help="run the checker's own unit checks and exit (nonzero on "
             "failure)")
    parser.add_argument(
        "--baseline",
        help="committed baseline (default: repo BENCH_hotpath.json or "
             "BENCH_netscale.json, by the run's schema)")
    parser.add_argument(
        "--threshold", type=float, default=0.30,
        help="hot-path only: warn when slots/sec drops more than this "
             "fraction (0.30)")
    args = parser.parse_args()

    if args.self_test:
        return self_test()
    if not args.run:
        parser.error("RUN.json required unless --self-test")

    run_doc = load_doc(args.run)
    schema = schema_of(run_doc)
    if schema == "an2.netsweep.v1":
        baseline = args.baseline or os.path.join(repo_root,
                                                 "BENCH_netscale.json")
        check_netsweep(run_doc, baseline)
    else:
        baseline = args.baseline or os.path.join(repo_root,
                                                 "BENCH_hotpath.json")
        check_hotpath(run_doc, baseline, args.threshold)
    return 0


if __name__ == "__main__":
    sys.exit(main())
