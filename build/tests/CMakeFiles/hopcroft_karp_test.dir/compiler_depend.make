# Empty compiler generated dependencies file for hopcroft_karp_test.
# This may be replaced when dependencies are built.
