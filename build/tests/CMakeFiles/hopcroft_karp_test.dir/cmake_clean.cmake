file(REMOVE_RECURSE
  "CMakeFiles/hopcroft_karp_test.dir/hopcroft_karp_test.cc.o"
  "CMakeFiles/hopcroft_karp_test.dir/hopcroft_karp_test.cc.o.d"
  "hopcroft_karp_test"
  "hopcroft_karp_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hopcroft_karp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
