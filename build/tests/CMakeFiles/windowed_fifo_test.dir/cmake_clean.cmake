file(REMOVE_RECURSE
  "CMakeFiles/windowed_fifo_test.dir/windowed_fifo_test.cc.o"
  "CMakeFiles/windowed_fifo_test.dir/windowed_fifo_test.cc.o.d"
  "windowed_fifo_test"
  "windowed_fifo_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/windowed_fifo_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
