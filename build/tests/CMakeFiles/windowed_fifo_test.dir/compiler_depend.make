# Empty compiler generated dependencies file for windowed_fifo_test.
# This may be replaced when dependencies are built.
