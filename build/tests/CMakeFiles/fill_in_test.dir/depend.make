# Empty dependencies file for fill_in_test.
# This may be replaced when dependencies are built.
