file(REMOVE_RECURSE
  "CMakeFiles/fill_in_test.dir/fill_in_test.cc.o"
  "CMakeFiles/fill_in_test.dir/fill_in_test.cc.o.d"
  "fill_in_test"
  "fill_in_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fill_in_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
