file(REMOVE_RECURSE
  "CMakeFiles/pim_fast_test.dir/pim_fast_test.cc.o"
  "CMakeFiles/pim_fast_test.dir/pim_fast_test.cc.o.d"
  "pim_fast_test"
  "pim_fast_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pim_fast_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
