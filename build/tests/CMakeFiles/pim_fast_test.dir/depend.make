# Empty dependencies file for pim_fast_test.
# This may be replaced when dependencies are built.
