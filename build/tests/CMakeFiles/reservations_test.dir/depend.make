# Empty dependencies file for reservations_test.
# This may be replaced when dependencies are built.
