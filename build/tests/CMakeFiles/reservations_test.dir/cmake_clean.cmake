file(REMOVE_RECURSE
  "CMakeFiles/reservations_test.dir/reservations_test.cc.o"
  "CMakeFiles/reservations_test.dir/reservations_test.cc.o.d"
  "reservations_test"
  "reservations_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reservations_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
