file(REMOVE_RECURSE
  "CMakeFiles/statistical_test.dir/statistical_test.cc.o"
  "CMakeFiles/statistical_test.dir/statistical_test.cc.o.d"
  "statistical_test"
  "statistical_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/statistical_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
