# Empty dependencies file for statistical_test.
# This may be replaced when dependencies are built.
