# Empty compiler generated dependencies file for switch_conformance_test.
# This may be replaced when dependencies are built.
