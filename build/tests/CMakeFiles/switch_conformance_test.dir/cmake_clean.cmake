file(REMOVE_RECURSE
  "CMakeFiles/switch_conformance_test.dir/switch_conformance_test.cc.o"
  "CMakeFiles/switch_conformance_test.dir/switch_conformance_test.cc.o.d"
  "switch_conformance_test"
  "switch_conformance_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/switch_conformance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
