# Empty dependencies file for switch_conformance_test.
# This may be replaced when dependencies are built.
