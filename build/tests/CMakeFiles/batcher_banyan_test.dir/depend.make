# Empty dependencies file for batcher_banyan_test.
# This may be replaced when dependencies are built.
