file(REMOVE_RECURSE
  "CMakeFiles/batcher_banyan_test.dir/batcher_banyan_test.cc.o"
  "CMakeFiles/batcher_banyan_test.dir/batcher_banyan_test.cc.o.d"
  "batcher_banyan_test"
  "batcher_banyan_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/batcher_banyan_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
