file(REMOVE_RECURSE
  "CMakeFiles/pim_test.dir/pim_test.cc.o"
  "CMakeFiles/pim_test.dir/pim_test.cc.o.d"
  "pim_test"
  "pim_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
