file(REMOVE_RECURSE
  "CMakeFiles/request_matrix_test.dir/request_matrix_test.cc.o"
  "CMakeFiles/request_matrix_test.dir/request_matrix_test.cc.o.d"
  "request_matrix_test"
  "request_matrix_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/request_matrix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
