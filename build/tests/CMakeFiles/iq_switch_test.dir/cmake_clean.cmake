file(REMOVE_RECURSE
  "CMakeFiles/iq_switch_test.dir/iq_switch_test.cc.o"
  "CMakeFiles/iq_switch_test.dir/iq_switch_test.cc.o.d"
  "iq_switch_test"
  "iq_switch_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iq_switch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
