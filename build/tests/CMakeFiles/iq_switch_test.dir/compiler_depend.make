# Empty compiler generated dependencies file for iq_switch_test.
# This may be replaced when dependencies are built.
