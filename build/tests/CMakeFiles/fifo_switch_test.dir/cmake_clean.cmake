file(REMOVE_RECURSE
  "CMakeFiles/fifo_switch_test.dir/fifo_switch_test.cc.o"
  "CMakeFiles/fifo_switch_test.dir/fifo_switch_test.cc.o.d"
  "fifo_switch_test"
  "fifo_switch_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fifo_switch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
