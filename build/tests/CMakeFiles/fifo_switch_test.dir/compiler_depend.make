# Empty compiler generated dependencies file for fifo_switch_test.
# This may be replaced when dependencies are built.
