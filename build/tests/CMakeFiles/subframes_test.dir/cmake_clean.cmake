file(REMOVE_RECURSE
  "CMakeFiles/subframes_test.dir/subframes_test.cc.o"
  "CMakeFiles/subframes_test.dir/subframes_test.cc.o.d"
  "subframes_test"
  "subframes_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/subframes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
