# Empty compiler generated dependencies file for subframes_test.
# This may be replaced when dependencies are built.
