# Empty compiler generated dependencies file for oq_switch_test.
# This may be replaced when dependencies are built.
