file(REMOVE_RECURSE
  "CMakeFiles/oq_switch_test.dir/oq_switch_test.cc.o"
  "CMakeFiles/oq_switch_test.dir/oq_switch_test.cc.o.d"
  "oq_switch_test"
  "oq_switch_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oq_switch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
