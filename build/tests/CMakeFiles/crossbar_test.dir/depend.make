# Empty dependencies file for crossbar_test.
# This may be replaced when dependencies are built.
