file(REMOVE_RECURSE
  "CMakeFiles/crossbar_test.dir/crossbar_test.cc.o"
  "CMakeFiles/crossbar_test.dir/crossbar_test.cc.o.d"
  "crossbar_test"
  "crossbar_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crossbar_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
