file(REMOVE_RECURSE
  "CMakeFiles/multicast_test.dir/multicast_test.cc.o"
  "CMakeFiles/multicast_test.dir/multicast_test.cc.o.d"
  "multicast_test"
  "multicast_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multicast_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
