# Empty dependencies file for multicast_test.
# This may be replaced when dependencies are built.
