file(REMOVE_RECURSE
  "CMakeFiles/admission_test.dir/admission_test.cc.o"
  "CMakeFiles/admission_test.dir/admission_test.cc.o.d"
  "admission_test"
  "admission_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/admission_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
