# Empty compiler generated dependencies file for net_nodes_test.
# This may be replaced when dependencies are built.
