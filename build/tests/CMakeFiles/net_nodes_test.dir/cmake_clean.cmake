file(REMOVE_RECURSE
  "CMakeFiles/net_nodes_test.dir/net_nodes_test.cc.o"
  "CMakeFiles/net_nodes_test.dir/net_nodes_test.cc.o.d"
  "net_nodes_test"
  "net_nodes_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_nodes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
