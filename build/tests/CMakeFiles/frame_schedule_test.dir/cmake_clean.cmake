file(REMOVE_RECURSE
  "CMakeFiles/frame_schedule_test.dir/frame_schedule_test.cc.o"
  "CMakeFiles/frame_schedule_test.dir/frame_schedule_test.cc.o.d"
  "frame_schedule_test"
  "frame_schedule_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/frame_schedule_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
