# Empty dependencies file for frame_schedule_test.
# This may be replaced when dependencies are built.
