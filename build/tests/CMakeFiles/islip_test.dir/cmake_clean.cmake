file(REMOVE_RECURSE
  "CMakeFiles/islip_test.dir/islip_test.cc.o"
  "CMakeFiles/islip_test.dir/islip_test.cc.o.d"
  "islip_test"
  "islip_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/islip_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
