# Empty compiler generated dependencies file for islip_test.
# This may be replaced when dependencies are built.
