file(REMOVE_RECURSE
  "CMakeFiles/slepian_duguid_test.dir/slepian_duguid_test.cc.o"
  "CMakeFiles/slepian_duguid_test.dir/slepian_duguid_test.cc.o.d"
  "slepian_duguid_test"
  "slepian_duguid_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slepian_duguid_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
