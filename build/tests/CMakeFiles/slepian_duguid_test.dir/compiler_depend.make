# Empty compiler generated dependencies file for slepian_duguid_test.
# This may be replaced when dependencies are built.
