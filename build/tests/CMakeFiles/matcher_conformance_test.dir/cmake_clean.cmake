file(REMOVE_RECURSE
  "CMakeFiles/matcher_conformance_test.dir/matcher_conformance_test.cc.o"
  "CMakeFiles/matcher_conformance_test.dir/matcher_conformance_test.cc.o.d"
  "matcher_conformance_test"
  "matcher_conformance_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matcher_conformance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
