file(REMOVE_RECURSE
  "CMakeFiles/fair_sharing.dir/fair_sharing.cpp.o"
  "CMakeFiles/fair_sharing.dir/fair_sharing.cpp.o.d"
  "fair_sharing"
  "fair_sharing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fair_sharing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
