# Empty dependencies file for fair_sharing.
# This may be replaced when dependencies are built.
