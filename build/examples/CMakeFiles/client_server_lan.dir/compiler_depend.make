# Empty compiler generated dependencies file for client_server_lan.
# This may be replaced when dependencies are built.
