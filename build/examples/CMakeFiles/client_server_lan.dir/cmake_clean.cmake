file(REMOVE_RECURSE
  "CMakeFiles/client_server_lan.dir/client_server_lan.cpp.o"
  "CMakeFiles/client_server_lan.dir/client_server_lan.cpp.o.d"
  "client_server_lan"
  "client_server_lan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/client_server_lan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
