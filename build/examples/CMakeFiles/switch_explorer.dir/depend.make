# Empty dependencies file for switch_explorer.
# This may be replaced when dependencies are built.
