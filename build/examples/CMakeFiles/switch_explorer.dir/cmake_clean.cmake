file(REMOVE_RECURSE
  "CMakeFiles/switch_explorer.dir/switch_explorer.cpp.o"
  "CMakeFiles/switch_explorer.dir/switch_explorer.cpp.o.d"
  "switch_explorer"
  "switch_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/switch_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
