# Empty compiler generated dependencies file for switch_explorer.
# This may be replaced when dependencies are built.
