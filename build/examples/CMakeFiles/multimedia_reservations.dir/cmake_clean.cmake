file(REMOVE_RECURSE
  "CMakeFiles/multimedia_reservations.dir/multimedia_reservations.cpp.o"
  "CMakeFiles/multimedia_reservations.dir/multimedia_reservations.cpp.o.d"
  "multimedia_reservations"
  "multimedia_reservations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multimedia_reservations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
