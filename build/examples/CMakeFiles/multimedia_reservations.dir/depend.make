# Empty dependencies file for multimedia_reservations.
# This may be replaced when dependencies are built.
