file(REMOVE_RECURSE
  "CMakeFiles/build_a_network.dir/build_a_network.cpp.o"
  "CMakeFiles/build_a_network.dir/build_a_network.cpp.o.d"
  "build_a_network"
  "build_a_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/build_a_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
