# Empty dependencies file for build_a_network.
# This may be replaced when dependencies are built.
