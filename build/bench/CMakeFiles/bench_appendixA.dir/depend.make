# Empty dependencies file for bench_appendixA.
# This may be replaced when dependencies are built.
