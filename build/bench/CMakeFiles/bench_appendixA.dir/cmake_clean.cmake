file(REMOVE_RECURSE
  "CMakeFiles/bench_appendixA.dir/bench_appendixA.cc.o"
  "CMakeFiles/bench_appendixA.dir/bench_appendixA.cc.o.d"
  "bench_appendixA"
  "bench_appendixA.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_appendixA.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
