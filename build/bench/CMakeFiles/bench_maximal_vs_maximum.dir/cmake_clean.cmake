file(REMOVE_RECURSE
  "CMakeFiles/bench_maximal_vs_maximum.dir/bench_maximal_vs_maximum.cc.o"
  "CMakeFiles/bench_maximal_vs_maximum.dir/bench_maximal_vs_maximum.cc.o.d"
  "bench_maximal_vs_maximum"
  "bench_maximal_vs_maximum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_maximal_vs_maximum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
