# Empty dependencies file for bench_maximal_vs_maximum.
# This may be replaced when dependencies are built.
