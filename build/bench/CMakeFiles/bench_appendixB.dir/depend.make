# Empty dependencies file for bench_appendixB.
# This may be replaced when dependencies are built.
