file(REMOVE_RECURSE
  "CMakeFiles/bench_appendixB.dir/bench_appendixB.cc.o"
  "CMakeFiles/bench_appendixB.dir/bench_appendixB.cc.o.d"
  "bench_appendixB"
  "bench_appendixB.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_appendixB.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
