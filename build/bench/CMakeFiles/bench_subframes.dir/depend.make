# Empty dependencies file for bench_subframes.
# This may be replaced when dependencies are built.
