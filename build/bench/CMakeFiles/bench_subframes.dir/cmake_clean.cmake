file(REMOVE_RECURSE
  "CMakeFiles/bench_subframes.dir/bench_subframes.cc.o"
  "CMakeFiles/bench_subframes.dir/bench_subframes.cc.o.d"
  "bench_subframes"
  "bench_subframes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_subframes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
