# Empty compiler generated dependencies file for bench_appendixC.
# This may be replaced when dependencies are built.
