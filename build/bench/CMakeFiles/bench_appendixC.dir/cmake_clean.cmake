file(REMOVE_RECURSE
  "CMakeFiles/bench_appendixC.dir/bench_appendixC.cc.o"
  "CMakeFiles/bench_appendixC.dir/bench_appendixC.cc.o.d"
  "bench_appendixC"
  "bench_appendixC.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_appendixC.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
