file(REMOVE_RECURSE
  "CMakeFiles/bench_banyan_blocking.dir/bench_banyan_blocking.cc.o"
  "CMakeFiles/bench_banyan_blocking.dir/bench_banyan_blocking.cc.o.d"
  "bench_banyan_blocking"
  "bench_banyan_blocking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_banyan_blocking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
