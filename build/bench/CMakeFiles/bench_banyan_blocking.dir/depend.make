# Empty dependencies file for bench_banyan_blocking.
# This may be replaced when dependencies are built.
