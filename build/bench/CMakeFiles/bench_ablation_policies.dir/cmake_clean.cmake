file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_policies.dir/bench_ablation_policies.cc.o"
  "CMakeFiles/bench_ablation_policies.dir/bench_ablation_policies.cc.o.d"
  "bench_ablation_policies"
  "bench_ablation_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
