file(REMOVE_RECURSE
  "CMakeFiles/bench_multicast.dir/bench_multicast.cc.o"
  "CMakeFiles/bench_multicast.dir/bench_multicast.cc.o.d"
  "bench_multicast"
  "bench_multicast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_multicast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
