# Empty dependencies file for bench_ablation_frame_size.
# This may be replaced when dependencies are built.
