file(REMOVE_RECURSE
  "CMakeFiles/bench_match_speed.dir/bench_match_speed.cc.o"
  "CMakeFiles/bench_match_speed.dir/bench_match_speed.cc.o.d"
  "bench_match_speed"
  "bench_match_speed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_match_speed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
