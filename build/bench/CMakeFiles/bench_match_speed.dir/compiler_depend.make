# Empty compiler generated dependencies file for bench_match_speed.
# This may be replaced when dependencies are built.
