# Empty dependencies file for bench_ablation_speedup.
# This may be replaced when dependencies are built.
