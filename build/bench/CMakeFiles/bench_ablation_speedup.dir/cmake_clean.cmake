file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_speedup.dir/bench_ablation_speedup.cc.o"
  "CMakeFiles/bench_ablation_speedup.dir/bench_ablation_speedup.cc.o.d"
  "bench_ablation_speedup"
  "bench_ablation_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
