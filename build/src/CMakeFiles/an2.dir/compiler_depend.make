# Empty compiler generated dependencies file for an2.
# This may be replaced when dependencies are built.
