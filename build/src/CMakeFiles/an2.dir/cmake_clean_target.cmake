file(REMOVE_RECURSE
  "liban2.a"
)
