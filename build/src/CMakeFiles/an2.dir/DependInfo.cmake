
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/an2/base/error.cc" "src/CMakeFiles/an2.dir/an2/base/error.cc.o" "gcc" "src/CMakeFiles/an2.dir/an2/base/error.cc.o.d"
  "/root/repo/src/an2/base/rng.cc" "src/CMakeFiles/an2.dir/an2/base/rng.cc.o" "gcc" "src/CMakeFiles/an2.dir/an2/base/rng.cc.o.d"
  "/root/repo/src/an2/base/stats.cc" "src/CMakeFiles/an2.dir/an2/base/stats.cc.o" "gcc" "src/CMakeFiles/an2.dir/an2/base/stats.cc.o.d"
  "/root/repo/src/an2/cbr/admission.cc" "src/CMakeFiles/an2.dir/an2/cbr/admission.cc.o" "gcc" "src/CMakeFiles/an2.dir/an2/cbr/admission.cc.o.d"
  "/root/repo/src/an2/cbr/frame_schedule.cc" "src/CMakeFiles/an2.dir/an2/cbr/frame_schedule.cc.o" "gcc" "src/CMakeFiles/an2.dir/an2/cbr/frame_schedule.cc.o.d"
  "/root/repo/src/an2/cbr/reservations.cc" "src/CMakeFiles/an2.dir/an2/cbr/reservations.cc.o" "gcc" "src/CMakeFiles/an2.dir/an2/cbr/reservations.cc.o.d"
  "/root/repo/src/an2/cbr/slepian_duguid.cc" "src/CMakeFiles/an2.dir/an2/cbr/slepian_duguid.cc.o" "gcc" "src/CMakeFiles/an2.dir/an2/cbr/slepian_duguid.cc.o.d"
  "/root/repo/src/an2/cbr/subframes.cc" "src/CMakeFiles/an2.dir/an2/cbr/subframes.cc.o" "gcc" "src/CMakeFiles/an2.dir/an2/cbr/subframes.cc.o.d"
  "/root/repo/src/an2/cbr/timing.cc" "src/CMakeFiles/an2.dir/an2/cbr/timing.cc.o" "gcc" "src/CMakeFiles/an2.dir/an2/cbr/timing.cc.o.d"
  "/root/repo/src/an2/cell/flow.cc" "src/CMakeFiles/an2.dir/an2/cell/flow.cc.o" "gcc" "src/CMakeFiles/an2.dir/an2/cell/flow.cc.o.d"
  "/root/repo/src/an2/fabric/batcher_banyan.cc" "src/CMakeFiles/an2.dir/an2/fabric/batcher_banyan.cc.o" "gcc" "src/CMakeFiles/an2.dir/an2/fabric/batcher_banyan.cc.o.d"
  "/root/repo/src/an2/fabric/cost_model.cc" "src/CMakeFiles/an2.dir/an2/fabric/cost_model.cc.o" "gcc" "src/CMakeFiles/an2.dir/an2/fabric/cost_model.cc.o.d"
  "/root/repo/src/an2/fabric/crossbar.cc" "src/CMakeFiles/an2.dir/an2/fabric/crossbar.cc.o" "gcc" "src/CMakeFiles/an2.dir/an2/fabric/crossbar.cc.o.d"
  "/root/repo/src/an2/matching/fill_in.cc" "src/CMakeFiles/an2.dir/an2/matching/fill_in.cc.o" "gcc" "src/CMakeFiles/an2.dir/an2/matching/fill_in.cc.o.d"
  "/root/repo/src/an2/matching/hopcroft_karp.cc" "src/CMakeFiles/an2.dir/an2/matching/hopcroft_karp.cc.o" "gcc" "src/CMakeFiles/an2.dir/an2/matching/hopcroft_karp.cc.o.d"
  "/root/repo/src/an2/matching/islip.cc" "src/CMakeFiles/an2.dir/an2/matching/islip.cc.o" "gcc" "src/CMakeFiles/an2.dir/an2/matching/islip.cc.o.d"
  "/root/repo/src/an2/matching/matching.cc" "src/CMakeFiles/an2.dir/an2/matching/matching.cc.o" "gcc" "src/CMakeFiles/an2.dir/an2/matching/matching.cc.o.d"
  "/root/repo/src/an2/matching/multicast.cc" "src/CMakeFiles/an2.dir/an2/matching/multicast.cc.o" "gcc" "src/CMakeFiles/an2.dir/an2/matching/multicast.cc.o.d"
  "/root/repo/src/an2/matching/pim.cc" "src/CMakeFiles/an2.dir/an2/matching/pim.cc.o" "gcc" "src/CMakeFiles/an2.dir/an2/matching/pim.cc.o.d"
  "/root/repo/src/an2/matching/pim_fast.cc" "src/CMakeFiles/an2.dir/an2/matching/pim_fast.cc.o" "gcc" "src/CMakeFiles/an2.dir/an2/matching/pim_fast.cc.o.d"
  "/root/repo/src/an2/matching/request_matrix.cc" "src/CMakeFiles/an2.dir/an2/matching/request_matrix.cc.o" "gcc" "src/CMakeFiles/an2.dir/an2/matching/request_matrix.cc.o.d"
  "/root/repo/src/an2/matching/serial_greedy.cc" "src/CMakeFiles/an2.dir/an2/matching/serial_greedy.cc.o" "gcc" "src/CMakeFiles/an2.dir/an2/matching/serial_greedy.cc.o.d"
  "/root/repo/src/an2/matching/statistical.cc" "src/CMakeFiles/an2.dir/an2/matching/statistical.cc.o" "gcc" "src/CMakeFiles/an2.dir/an2/matching/statistical.cc.o.d"
  "/root/repo/src/an2/matching/windowed_fifo.cc" "src/CMakeFiles/an2.dir/an2/matching/windowed_fifo.cc.o" "gcc" "src/CMakeFiles/an2.dir/an2/matching/windowed_fifo.cc.o.d"
  "/root/repo/src/an2/network/clock.cc" "src/CMakeFiles/an2.dir/an2/network/clock.cc.o" "gcc" "src/CMakeFiles/an2.dir/an2/network/clock.cc.o.d"
  "/root/repo/src/an2/network/controller.cc" "src/CMakeFiles/an2.dir/an2/network/controller.cc.o" "gcc" "src/CMakeFiles/an2.dir/an2/network/controller.cc.o.d"
  "/root/repo/src/an2/network/link.cc" "src/CMakeFiles/an2.dir/an2/network/link.cc.o" "gcc" "src/CMakeFiles/an2.dir/an2/network/link.cc.o.d"
  "/root/repo/src/an2/network/net_switch.cc" "src/CMakeFiles/an2.dir/an2/network/net_switch.cc.o" "gcc" "src/CMakeFiles/an2.dir/an2/network/net_switch.cc.o.d"
  "/root/repo/src/an2/network/network.cc" "src/CMakeFiles/an2.dir/an2/network/network.cc.o" "gcc" "src/CMakeFiles/an2.dir/an2/network/network.cc.o.d"
  "/root/repo/src/an2/queueing/flow_queue.cc" "src/CMakeFiles/an2.dir/an2/queueing/flow_queue.cc.o" "gcc" "src/CMakeFiles/an2.dir/an2/queueing/flow_queue.cc.o.d"
  "/root/repo/src/an2/queueing/output_queue.cc" "src/CMakeFiles/an2.dir/an2/queueing/output_queue.cc.o" "gcc" "src/CMakeFiles/an2.dir/an2/queueing/output_queue.cc.o.d"
  "/root/repo/src/an2/queueing/voq.cc" "src/CMakeFiles/an2.dir/an2/queueing/voq.cc.o" "gcc" "src/CMakeFiles/an2.dir/an2/queueing/voq.cc.o.d"
  "/root/repo/src/an2/sim/fifo_switch.cc" "src/CMakeFiles/an2.dir/an2/sim/fifo_switch.cc.o" "gcc" "src/CMakeFiles/an2.dir/an2/sim/fifo_switch.cc.o.d"
  "/root/repo/src/an2/sim/iq_switch.cc" "src/CMakeFiles/an2.dir/an2/sim/iq_switch.cc.o" "gcc" "src/CMakeFiles/an2.dir/an2/sim/iq_switch.cc.o.d"
  "/root/repo/src/an2/sim/metrics.cc" "src/CMakeFiles/an2.dir/an2/sim/metrics.cc.o" "gcc" "src/CMakeFiles/an2.dir/an2/sim/metrics.cc.o.d"
  "/root/repo/src/an2/sim/oq_switch.cc" "src/CMakeFiles/an2.dir/an2/sim/oq_switch.cc.o" "gcc" "src/CMakeFiles/an2.dir/an2/sim/oq_switch.cc.o.d"
  "/root/repo/src/an2/sim/simulator.cc" "src/CMakeFiles/an2.dir/an2/sim/simulator.cc.o" "gcc" "src/CMakeFiles/an2.dir/an2/sim/simulator.cc.o.d"
  "/root/repo/src/an2/sim/traffic.cc" "src/CMakeFiles/an2.dir/an2/sim/traffic.cc.o" "gcc" "src/CMakeFiles/an2.dir/an2/sim/traffic.cc.o.d"
  "/root/repo/src/an2/sim/virtual_clock.cc" "src/CMakeFiles/an2.dir/an2/sim/virtual_clock.cc.o" "gcc" "src/CMakeFiles/an2.dir/an2/sim/virtual_clock.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
