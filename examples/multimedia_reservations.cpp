/**
 * @file
 * Multimedia reservations: the paper's motivating real-time scenario
 * (§4). Three video flows reserve bandwidth on a 16x16 switch via the
 * Slepian-Duguid frame scheduler while bursty datagram traffic floods
 * every port. The example shows:
 *   - admission control accepting/rejecting reservation requests,
 *   - the frame schedule being updated incrementally (with swap chains),
 *   - CBR flows receiving exactly their reserved throughput with bounded
 *     delay, no matter how hard VBR pushes,
 *   - VBR soaking up every slot CBR leaves idle.
 *
 *   $ ./multimedia_reservations
 */
#include <cstdio>
#include <map>

#include "an2/base/stats.h"
#include "an2/cbr/slepian_duguid.h"
#include "an2/matching/pim.h"
#include "an2/sim/iq_switch.h"
#include "an2/sim/traffic.h"

using namespace an2;

namespace {

constexpr int kN = 16;
constexpr int kFrame = 100;  // slots per frame

struct VideoFlow
{
    const char* name;
    FlowId id;
    PortId input;
    PortId output;
    int cells_per_frame;  // e.g. ~25 Mb/s per cell/frame at 1 Gb/s links
    int64_t next_seq = 0;
    int64_t delivered = 0;
};

}  // namespace

int
main()
{
    std::printf("an2sim example -- bandwidth reservations for multimedia\n\n");

    SlepianDuguidScheduler scheduler(kN, kFrame);
    VideoFlow flows[] = {
        {"hdtv    cam->wall", 100, 2, 9, 40, 0, 0},
        {"seminar cam->disk", 101, 5, 9, 25, 0, 0},
        {"phone   a<->b    ", 102, 7, 3, 10, 0, 0},
    };

    std::printf("Requesting reservations (frame = %d slots):\n", kFrame);
    for (auto& f : flows) {
        bool ok = scheduler.addReservation(f.input, f.output,
                                           f.cells_per_frame);
        std::printf("  %s  %2d cells/frame  %d->%d  : %s\n", f.name,
                    f.cells_per_frame, f.input, f.output,
                    ok ? "granted" : "REJECTED");
    }
    // Output 9 already carries 65 cells/frame; 40 more won't fit.
    bool over = scheduler.addReservation(11, 9, 40);
    std::printf("  greedy  flow (40 to output 9) : %s\n",
                over ? "granted" : "rejected (link would be over-committed)");
    std::printf("  schedule realizes reservations: %s; swap chains used:"
                " %lld\n\n",
                scheduler.schedule().realizes(scheduler.reservations())
                    ? "yes"
                    : "no",
                static_cast<long long>(scheduler.totalSwaps()));

    // Run the switch: backlogged CBR sources + saturating bursty VBR.
    InputQueuedSwitch sw({.n = kN},
                         std::make_unique<PimMatcher>(
                             PimConfig{.iterations = 4, .seed = 3}),
                         &scheduler.schedule());
    BurstyTraffic vbr(kN, 0.95, 16.0, 4);

    constexpr int kFrames = 400;
    std::map<FlowId, RunningStats> delay;
    std::vector<Cell> arrivals;
    for (SlotTime slot = 0; slot < kFrames * kFrame; ++slot) {
        for (auto& f : flows) {
            // Paced source: exactly its reservation, sent as a burst at
            // the start of each frame (the schedule smooths it out). The
            // phone is silent every other frame — its reserved slots are
            // then handed to datagram traffic (§4's VBR fill-in).
            bool silent = f.id == 102 && (slot / kFrame) % 2 == 1;
            if (!silent && slot % kFrame < f.cells_per_frame) {
                Cell c;
                c.flow = f.id;
                c.input = f.input;
                c.output = f.output;
                c.cls = TrafficClass::CBR;
                c.seq = f.next_seq++;
                c.inject_slot = slot;
                sw.acceptCell(c);
            }
        }
        arrivals.clear();
        vbr.generate(slot, arrivals);
        for (const Cell& c : arrivals)
            sw.acceptCell(c);
        for (const Cell& d : sw.runSlot(slot)) {
            if (d.cls != TrafficClass::CBR)
                continue;
            for (auto& f : flows) {
                if (f.id == d.flow) {
                    ++f.delivered;
                    delay[f.id].add(
                        static_cast<double>(slot - d.inject_slot));
                }
            }
        }
    }

    std::printf("After %d frames under saturating bursty datagram"
                " traffic:\n", kFrames);
    std::printf("  %-18s  %9s  %9s  %12s  %10s\n", "flow", "sent",
                "delivered", "mean delay", "max delay");
    for (auto& f : flows) {
        const RunningStats& d = delay[f.id];
        std::printf("  %-18s  %9lld  %9lld  %9.1f sl  %7.0f sl\n", f.name,
                    static_cast<long long>(f.next_seq),
                    static_cast<long long>(f.delivered), d.mean(), d.max());
    }
    std::printf("\n  VBR cells forwarded: %lld (%lld of them inside idle"
                " reserved slots)\n",
                static_cast<long long>(sw.vbrForwarded()),
                static_cast<long long>(sw.vbrInCbrSlots()));
    std::printf("  Every CBR cell arrived within ~2 frames (%d slots),"
                " as Section 4 guarantees.\n", 2 * kFrame);
    return 0;
}
