/**
 * @file
 * Campus LAN: a star-of-stars building network — one backbone switch,
 * eight floor switches, eight workstations per floor — built with the
 * topo layer. Flows are placed by endpoints; the router picks each
 * flow's shortest path with deterministic ECMP tie-breaking. We run
 * the same network twice, serially and on the sharded parallel engine,
 * and check the totals agree exactly, then down a trunk mid-run to
 * watch deterministic failover reroute the traffic that crossed it.
 *
 *   $ ./campus_lan
 */
#include <cstdio>
#include <memory>

#include "an2/fault/fault_plan.h"
#include "an2/matching/pim.h"
#include "an2/topo/lan.h"
#include "an2/topo/topology.h"

using namespace an2;

namespace {

topo::LanConfig
campusConfig(uint64_t seed)
{
    topo::LanConfig config;
    config.seed = seed;
    config.matcher = [](int /*ports*/, uint64_t s) {
        return std::make_unique<PimMatcher>(
            PimConfig{.iterations = 4, .seed = s});
    };
    return config;
}

/** Place the campus workload: every workstation opens a VBR flow to a
    uniformly random peer and a 2-cells/frame CBR "phone call" to
    another. */
void
placeCampusTraffic(topo::Lan& lan)
{
    topo::TrafficSpec vbr;
    vbr.vbr_rate = 0.08;
    lan.placeMatrix(topo::Pattern::Uniform, vbr, /*seed=*/42);
    topo::TrafficSpec cbr;
    cbr.cls = TrafficClass::CBR;
    cbr.cbr_cells_per_frame = 2;
    lan.placeMatrix(topo::Pattern::Uniform, cbr, /*seed=*/43);
}

void
report(const char* label, const topo::LanStats& s)
{
    std::printf("  %-22s  delivered %6lld/%-6lld  (%.4f)  "
                "mean latency %.1f us\n",
                label, static_cast<long long>(s.delivered),
                static_cast<long long>(s.injected),
                s.injected ? double(s.delivered) / double(s.injected) : 0.0,
                s.mean_wall_latency_ps / 1e6);
}

}  // namespace

int
main()
{
    std::printf("an2sim example -- a campus LAN on the topo layer\n\n");

    constexpr int64_t kFrames = 30;
    constexpr uint64_t kSeed = 2026;

    // 9 switches (backbone + 8 floors), 64 hosts, 72 edges.
    const topo::Topology campus = topo::Topology::star(8, 8);

    // Same network, two engines. The results are byte-identical: the
    // engine is a wall-clock choice, never a results choice.
    topo::Lan serial(campus, campusConfig(kSeed));
    placeCampusTraffic(serial);
    serial.runFrames(kFrames, /*threads=*/1);
    topo::Lan sharded(campus, campusConfig(kSeed));
    placeCampusTraffic(sharded);
    sharded.runFrames(kFrames, /*threads=*/4);

    topo::LanStats a = serial.stats();
    topo::LanStats b = sharded.stats();
    report("serial engine", a);
    report("sharded engine (4T)", b);
    const bool identical =
        a.injected == b.injected && a.delivered == b.delivered &&
        a.mean_wall_latency_ps == b.mean_wall_latency_ps;
    std::printf("  engines agree exactly: %s  (%lld shard windows)\n\n",
                identical ? "yes" : "NO (bug!)",
                static_cast<long long>(sharded.shardWindows()));

    // Down one trunk direction a third of the way in, once on each
    // fabric. The single-backbone star has no alternate paths, so the
    // flows that crossed the trunk are stranded. Rewire the same nine
    // switches as a 3x3 torus and the identical outage reroutes them
    // instead: each VBR flow fails over to its next live ECMP path —
    // in flow order, deterministically — while CBR reservations stay
    // pinned and lose cells until the link returns.
    const fault::FaultPlan outage =
        fault::FaultPlan::parse("link_down(0)@1000,link_up(0)@2000");
    const topo::Topology ring_campus =
        topo::Topology::mesh(3, 3, /*torus=*/true, /*hosts_per_switch=*/7);
    for (const topo::Topology* t : {&campus, &ring_campus}) {
        topo::Lan faulted(*t, campusConfig(kSeed));
        placeCampusTraffic(faulted);
        faulted.scheduleFaults(outage);
        faulted.runFrames(kFrames, /*threads=*/4);
        topo::LanStats f = faulted.stats();
        report(t->name().c_str(), f);
        std::printf("    reroutes %lld, stranded flows %lld, cells lost "
                    "on dead links %lld\n",
                    static_cast<long long>(f.reroutes),
                    static_cast<long long>(f.unroutable),
                    static_cast<long long>(f.link_lost));
    }

    std::printf("\nReading the output: the sharded engine reproduces the "
                "serial run bit for bit.\nUnder the same trunk outage the "
                "single-backbone star strands the flows that\ncrossed it, "
                "while the torus campus reroutes them around the dead "
                "link --\nonly pinned CBR reservations take losses.\n");
    return identical ? 0 : 1;
}
