/**
 * @file
 * Building an arbitrary-topology LAN (§2, §4, Appendix B): four hosts,
 * two switches, unsynchronized clocks. A video call reserves bandwidth
 * end-to-end through admission control; file transfers run as datagram
 * (VBR) flows underneath. The example prints per-flow delivery, the
 * measured worst-case CBR latency against the Appendix B bound, and
 * demonstrates that FIFO order survives the trip.
 *
 *   $ ./build_a_network
 */
#include <cstdio>
#include <memory>

#include "an2/cbr/timing.h"
#include "an2/matching/pim.h"
#include "an2/network/network.h"

using namespace an2;

namespace {

std::unique_ptr<Matcher>
pim(uint64_t seed)
{
    return std::make_unique<PimMatcher>(
        PimConfig{.iterations = 4, .seed = seed});
}

}  // namespace

int
main()
{
    std::printf("an2sim example -- a two-switch LAN with real-time and"
                " datagram traffic\n\n");

    // 100 ppm clocks; frame of 200 slots; padding from Appendix B.
    constexpr double kTol = 1e-4;
    NetworkConfig cfg;
    cfg.slot_ps = kSlotPicosAt1Gbps;
    cfg.switch_frame_slots = 200;
    cfg.controller_padding =
        std::max(minControllerPadding(200, kTol), 2);
    Network net(cfg);

    // Hosts (controllers) with slightly wrong clocks.
    NodeId alice = net.addController(+kTol, 1);
    NodeId bob = net.addController(-kTol, 2);
    NodeId carol = net.addController(+kTol / 2, 3);
    NodeId dave = net.addController(-kTol / 2, 4);
    // Two 4-port switches joined by a trunk link.
    NodeId s_west = net.addSwitch(4, +kTol, pim(11));
    NodeId s_east = net.addSwitch(4, -kTol, pim(12));

    // Each AN2 port is full duplex: wire both directions of every link.
    constexpr PicoTime kLink = 5 * kSlotPicosAt1Gbps;  // ~2 us of fiber
    net.connect(alice, 0, s_west, 0, kLink);
    net.connect(s_west, 0, alice, 0, kLink);
    net.connect(carol, 0, s_west, 1, kLink);
    net.connect(s_west, 1, carol, 0, kLink);
    net.connect(s_west, 3, s_east, 0, kLink);   // trunk west -> east
    net.connect(s_east, 0, s_west, 3, kLink);   // trunk east -> west
    net.connect(s_east, 1, bob, 0, kLink);
    net.connect(bob, 0, s_east, 1, kLink);
    net.connect(s_east, 2, dave, 0, kLink);
    net.connect(dave, 0, s_east, 2, kLink);

    // A video call alice -> bob reserves 20 cells/frame (~10% of a link).
    FlowId video = net.addCbrFlow({alice, s_west, s_east, bob}, 20);
    std::printf("Video reservation alice->bob: %s\n",
                video != kNoFlow ? "granted (20 cells/frame)" : "rejected");
    // Admission control protects the trunk: a second huge request fails.
    FlowId hog = net.addCbrFlow({carol, s_west, s_east, dave}, 190);
    std::printf("Bulk reservation carol->dave (190 cells/frame): %s\n\n",
                hog != kNoFlow ? "granted" : "rejected (trunk capacity)");

    // Datagram file transfers underneath.
    FlowId ftp1 = net.addVbrFlow({carol, s_west, s_east, dave}, 0.8);
    FlowId ftp2 = net.addVbrFlow({dave, s_east, s_west, carol}, 0.5);

    net.runFrames(600);

    FrameTiming t = makeFrameTiming(
        cfg.switch_frame_slots,
        cfg.switch_frame_slots + cfg.controller_padding,
        static_cast<double>(cfg.slot_ps), kTol, static_cast<double>(kLink));
    double bound_us = latencyBound(t, 2) * 1e-6;

    auto report = [&](const char* name, NodeId sink, FlowId f) {
        const FlowDeliveryStats& st = net.controller(sink).deliveryStats(f);
        std::printf("  %-18s  delivered %7lld cells   mean latency"
                    " %7.1f us   in order: %s\n",
                    name, static_cast<long long>(st.delivered),
                    st.wall_latency_ps.mean() * 1e-6,
                    st.order_violations == 0 ? "yes" : "NO");
        return st;
    };
    std::printf("After 600 frames (~%.0f ms of simulated time):\n",
                600.0 * cfg.switch_frame_slots * cfg.slot_ps * 1e-9);
    const auto& video_stats = report("video (CBR)", bob, video);
    report("ftp carol->dave", dave, ftp1);
    report("ftp dave->carol", carol, ftp2);

    std::printf("\n  video worst-case adjusted latency: %.1f us"
                " (Appendix B bound: %.1f us)\n",
                video_stats.adjusted_latency_ps.max() * 1e-6, bound_us);
    std::printf("  The guarantee held while datagram traffic shared every"
                " link and the\n  clocks disagreed by %.0f ppm.\n",
                2 * kTol * 1e6);
    return 0;
}
