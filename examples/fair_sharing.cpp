/**
 * @file
 * Fair sharing with statistical matching (§5): one port of a 4x4 switch
 * is a busy server whose link is wanted by everyone; a background flow
 * competes for an otherwise idle output. Plain PIM starves the
 * background connection (Figure 8); statistical matching lets an
 * operator dial in per-connection bandwidth — and re-dial it on the fly,
 * which is the scheme's whole point (only the two ports involved need to
 * know about a rate change).
 *
 *   $ ./fair_sharing
 */
#include <cstdio>
#include <memory>

#include "an2/matching/statistical.h"
#include "an2/sim/iq_switch.h"

using namespace an2;

namespace {

constexpr int kN = 4;
constexpr int kUnits = 1000;

/** Serve the Figure 8 pattern for `slots`, returning (3,0)'s share. */
Matrix<int64_t>
serveFigure8(InputQueuedSwitch& sw, SlotTime slots)
{
    Matrix<int64_t> served(kN, kN, 0);
    Matrix<int> queued(kN, kN, 0);
    auto topUp = [&](PortId i, PortId j, SlotTime slot) {
        while (queued.at(i, j) < 4) {
            Cell c;
            c.flow = static_cast<FlowId>(i * kN + j);
            c.input = i;
            c.output = j;
            c.inject_slot = slot;
            sw.acceptCell(c);
            ++queued.at(i, j);
        }
    };
    for (SlotTime slot = 0; slot < slots; ++slot) {
        for (PortId i = 0; i < 3; ++i)
            topUp(i, 0, slot);
        for (PortId j = 0; j < kN; ++j)
            topUp(3, j, slot);
        for (const Cell& d : sw.runSlot(slot)) {
            ++served(d.input, d.output);
            --queued.at(d.input, d.output);
        }
    }
    return served;
}

void
printRow(const char* label, const Matrix<int64_t>& served, SlotTime slots)
{
    std::printf("  %-34s", label);
    for (PortId j = 0; j < kN; ++j)
        std::printf("  %5.3f",
                    static_cast<double>(served.at(3, j)) /
                        static_cast<double>(slots));
    std::printf("\n");
}

}  // namespace

int
main()
{
    std::printf("an2sim example -- dialing in fairness with statistical"
                " matching\n\n");
    std::printf("Everyone (inputs 0-2) queues for output 0; input 3 queues"
                " for all outputs.\nShares of input 3's link:\n\n");
    std::printf("  %-34s  %5s  %5s  %5s  %5s\n", "", "3->0", "3->1", "3->2",
                "3->3");
    constexpr SlotTime kSlots = 100'000;

    {
        StatisticalConfig cfg;
        cfg.units = kUnits;
        cfg.rounds = 2;
        cfg.seed = 8;
        Matrix<int> equal(kN, kN, 0);
        for (PortId j = 0; j < kN; ++j)
            equal(3, j) = kUnits / 4;
        for (PortId i = 0; i < 3; ++i)
            equal(i, 0) = kUnits / 4;
        InputQueuedSwitch sw(
            {.n = kN},
            std::make_unique<StatisticalMatcher>(equal, cfg));
        printRow("equal allocations (250 each)",
                 serveFigure8(sw, kSlots), kSlots);
    }
    {
        // A new tenant pays for priority on (3,1): re-dial the weights.
        // Only input 3's and output 1's tables change -- no global
        // schedule recomputation, unlike the Slepian-Duguid frame method.
        StatisticalConfig cfg;
        cfg.units = kUnits;
        cfg.rounds = 2;
        cfg.seed = 9;
        Matrix<int> skew(kN, kN, 0);
        skew(3, 0) = 100;
        skew(3, 1) = 600;
        skew(3, 2) = 150;
        skew(3, 3) = 150;
        for (PortId i = 0; i < 3; ++i)
            skew(i, 0) = 250;
        InputQueuedSwitch sw(
            {.n = kN}, std::make_unique<StatisticalMatcher>(skew, cfg));
        printRow("re-dialed: (3,1) pays for 600",
                 serveFigure8(sw, kSlots), kSlots);
    }
    std::printf("\nDelivered shares track the dialed allocations at ~72%%"
                " efficiency (Appendix C);\nthe remaining slots would be"
                " filled by plain PIM in a production switch.\n");
    return 0;
}
