/**
 * @file
 * Client-server LAN: the workload the paper's introduction motivates —
 * twelve workstations hammering four file servers through one 16x16 AN2
 * switch. The example compares scheduling architectures side by side
 * under increasing server load and reports what a user of the switch
 * actually feels: delay and delivered throughput on the server links.
 *
 *   $ ./client_server_lan
 */
#include <cstdio>
#include <memory>

#include "an2/matching/pim.h"
#include "an2/sim/fifo_switch.h"
#include "an2/sim/iq_switch.h"
#include "an2/sim/oq_switch.h"
#include "an2/sim/simulator.h"
#include "an2/sim/traffic.h"

using namespace an2;

namespace {

constexpr int kN = 16;
constexpr int kServers = 4;

SimResult
evaluate(SwitchModel& sw, double server_load, uint64_t seed)
{
    ClientServerTraffic traffic(kN, kServers, server_load, seed);
    SimConfig cfg;
    cfg.slots = 60'000;
    cfg.warmup = 10'000;
    return runSimulation(sw, traffic, cfg);
}

}  // namespace

int
main()
{
    std::printf("an2sim example -- 12 clients, 4 servers, one switch\n\n");
    std::printf("Client-client traffic carries 5%% of the weight of"
                " server traffic (paper, Fig 4).\n\n");
    std::printf("  server   |         mean delay (slots)          |"
                "  delivered/offered\n");
    std::printf("  load     |     FIFO      PIM(4)     OutputQ    |"
                "   FIFO     PIM(4)\n");
    std::printf("  ---------+-------------------------------------+"
                "------------------\n");
    for (double load : {0.5, 0.7, 0.9, 0.98}) {
        FifoSwitch fifo(kN, 21);
        SimResult rf = evaluate(fifo, load, 33);
        InputQueuedSwitch pim_sw({.n = kN},
                                 std::make_unique<PimMatcher>(
                                     PimConfig{.iterations = 4, .seed = 5}));
        SimResult rp = evaluate(pim_sw, load, 33);
        OutputQueuedSwitch oq(kN);
        SimResult ro = evaluate(oq, load, 33);
        std::printf("  %5.2f    | %8.2f   %8.2f   %8.2f    |  %5.3f    %5.3f\n",
                    load, rf.mean_delay, rp.mean_delay, ro.mean_delay,
                    rf.throughput / rf.offered, rp.throughput / rp.offered);
    }
    std::printf("\nReading the table: FIFO's head-of-line blocking melts"
                " down as the servers\napproach saturation, while PIM"
                " tracks the (unbuildable) ideal output-queued\nswitch"
                " within a whisker -- the paper's Figure 4 story.\n");
    return 0;
}
