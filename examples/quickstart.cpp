/**
 * @file
 * Quickstart: schedule one slot of a 4x4 switch with parallel iterative
 * matching, tracing each request/grant/accept iteration (the Figure 2
 * walk-through), then run a short simulation of a 16x16 AN2 switch.
 *
 *   $ ./quickstart
 */
#include <cstdio>

#include "an2/matching/pim.h"
#include "an2/sim/iq_switch.h"
#include "an2/sim/simulator.h"
#include "an2/sim/traffic.h"

using namespace an2;

namespace {

/** Print the request pattern as a matrix. */
void
printRequests(const RequestMatrix& req)
{
    std::printf("  requests (rows = inputs, cols = outputs):\n");
    for (PortId i = 0; i < req.numInputs(); ++i) {
        std::printf("    ");
        for (PortId j = 0; j < req.numOutputs(); ++j)
            std::printf("%c ", req.has(i, j) ? '1' : '.');
        std::printf("\n");
    }
}

void
figure2WalkThrough()
{
    std::printf("== Part 1: one PIM run on the Figure 2 request pattern\n\n");
    // Figure 2 (0-based): input 0 requests outputs {0,1}; input 1
    // requests {0,1}; input 2 requests {3}... we use the paper's pattern
    // of five requests across a 4x4 switch.
    RequestMatrix req(4);
    req.set(0, 1, 1);
    req.set(0, 2, 1);
    req.set(1, 1, 1);
    req.set(2, 0, 1);
    req.set(3, 3, 1);
    printRequests(req);

    PimMatcher pim(PimConfig{.iterations = 0, .seed = 2});
    PimRunStats stats;
    Matching m = pim.matchDetailed(req, stats, 0);

    std::printf("\n  PIM found %d pairings in %d iteration(s)"
                " (maximal: %s):\n",
                m.size(), stats.iterations_run - 1,
                stats.reached_maximal ? "yes" : "no");
    for (auto [i, j] : m.pairs())
        std::printf("    input %d -> output %d\n", i, j);
    std::printf("\n  Cumulative matches by iteration:");
    for (int c : stats.matches_after_iteration)
        std::printf(" %d", c);
    std::printf("\n\n");
}

void
simulateSwitch()
{
    std::printf("== Part 2: a 16x16 AN2 switch at 90%% uniform load\n\n");
    InputQueuedSwitch sw({.n = 16},
                         std::make_unique<PimMatcher>(
                             PimConfig{.iterations = 4, .seed = 1}));
    UniformTraffic traffic(16, 0.9, 7);
    SimConfig cfg;
    cfg.slots = 50'000;
    cfg.warmup = 10'000;
    SimResult res = runSimulation(sw, traffic, cfg);

    std::printf("  switch:        %s\n", sw.name().c_str());
    std::printf("  offered load:  %.3f per link\n", res.offered);
    std::printf("  throughput:    %.3f per link\n", res.throughput);
    std::printf("  mean delay:    %.2f slots (%.2f us at 1 Gb/s)\n",
                res.mean_delay, slotsToMicros(res.mean_delay));
    std::printf("  p99 delay:     %.1f slots\n", res.p99_delay);
    std::printf("  crossbar util: %.3f\n", sw.crossbar().utilization());
}

}  // namespace

int
main()
{
    std::printf("an2sim quickstart -- parallel iterative matching\n\n");
    figure2WalkThrough();
    simulateSwitch();
    return 0;
}
