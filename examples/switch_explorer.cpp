/**
 * @file
 * switch_explorer — a command-line workbench over the an2sim public API.
 * Pick a switch architecture, a workload, and a load sweep; get the
 * delay/throughput table. Uses the umbrella header as a user would.
 *
 *   $ ./switch_explorer --switch pim --iterations 4 --n 16 \
 *         --workload uniform --loads 0.5,0.8,0.95 --slots 100000
 *   $ ./switch_explorer --switch fifo --workload clientserver
 *   $ ./switch_explorer --help
 */
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "an2/an2.h"

using namespace an2;

namespace {

struct Options
{
    std::string switch_kind = "pim";  // pim | islip | fifo | oq | maximum
    std::string workload = "uniform";  // uniform|clientserver|bursty|hotspot
    int n = 16;
    int iterations = 4;
    int window = 1;
    int speedup = 1;
    int servers = 4;
    double mean_burst = 16.0;
    double hotspot_fraction = 0.3;
    std::vector<double> loads = {0.5, 0.7, 0.9, 0.95, 0.99};
    SlotTime slots = 100'000;
    uint64_t seed = 1;
};

void
usage()
{
    std::printf(
        "switch_explorer -- simulate an AN2-style switch\n"
        "  --switch pim|islip|fifo|oq|maximum   architecture (default pim)\n"
        "  --workload uniform|clientserver|bursty|hotspot\n"
        "  --n N            ports (default 16)\n"
        "  --iterations K   PIM/iSLIP iterations (default 4)\n"
        "  --window W       FIFO lookahead window (default 1)\n"
        "  --speedup S      output speedup for pim (default 1)\n"
        "  --servers S      servers for clientserver (default 4)\n"
        "  --loads a,b,c    offered loads (default 0.5,0.7,0.9,0.95,0.99)\n"
        "  --slots S        slots per run (default 100000)\n"
        "  --seed S         PRNG seed (default 1)\n");
}

std::vector<double>
parseLoads(const std::string& arg)
{
    std::vector<double> loads;
    size_t pos = 0;
    while (pos < arg.size()) {
        size_t comma = arg.find(',', pos);
        if (comma == std::string::npos)
            comma = arg.size();
        loads.push_back(std::stod(arg.substr(pos, comma - pos)));
        pos = comma + 1;
    }
    return loads;
}

bool
parse(int argc, char** argv, Options& opt)
{
    for (int a = 1; a < argc; ++a) {
        std::string key = argv[a];
        if (key == "--help" || key == "-h")
            return false;
        if (a + 1 >= argc) {
            std::fprintf(stderr, "missing value for %s\n", key.c_str());
            return false;
        }
        std::string val = argv[++a];
        if (key == "--switch") {
            opt.switch_kind = val;
        } else if (key == "--workload") {
            opt.workload = val;
        } else if (key == "--n") {
            opt.n = std::stoi(val);
        } else if (key == "--iterations") {
            opt.iterations = std::stoi(val);
        } else if (key == "--window") {
            opt.window = std::stoi(val);
        } else if (key == "--speedup") {
            opt.speedup = std::stoi(val);
        } else if (key == "--servers") {
            opt.servers = std::stoi(val);
        } else if (key == "--loads") {
            opt.loads = parseLoads(val);
        } else if (key == "--slots") {
            opt.slots = std::stoll(val);
        } else if (key == "--seed") {
            opt.seed = std::stoull(val);
        } else {
            std::fprintf(stderr, "unknown option %s\n", key.c_str());
            return false;
        }
    }
    return true;
}

std::unique_ptr<SwitchModel>
makeSwitch(const Options& opt)
{
    if (opt.switch_kind == "pim") {
        PimConfig cfg;
        cfg.iterations = opt.iterations;
        cfg.seed = opt.seed;
        cfg.output_capacity = opt.speedup;
        return std::make_unique<InputQueuedSwitch>(
            IqSwitchConfig{.n = opt.n, .output_speedup = opt.speedup},
            std::make_unique<PimMatcher>(cfg));
    }
    if (opt.switch_kind == "islip") {
        return std::make_unique<InputQueuedSwitch>(
            IqSwitchConfig{.n = opt.n},
            std::make_unique<IslipMatcher>(opt.iterations));
    }
    if (opt.switch_kind == "maximum") {
        return std::make_unique<InputQueuedSwitch>(
            IqSwitchConfig{.n = opt.n},
            std::make_unique<HopcroftKarpMatcher>());
    }
    if (opt.switch_kind == "fifo") {
        return std::make_unique<FifoSwitch>(opt.n, opt.seed, opt.window,
                                            opt.window);
    }
    if (opt.switch_kind == "oq") {
        return std::make_unique<OutputQueuedSwitch>(opt.n);
    }
    AN2_FATAL("unknown switch kind '" << opt.switch_kind << "'");
}

std::unique_ptr<TrafficGenerator>
makeWorkload(const Options& opt, double load)
{
    uint64_t seed = opt.seed + 1000;
    if (opt.workload == "uniform")
        return std::make_unique<UniformTraffic>(opt.n, load, seed);
    if (opt.workload == "clientserver")
        return std::make_unique<ClientServerTraffic>(opt.n, opt.servers,
                                                     load, seed);
    if (opt.workload == "bursty")
        return std::make_unique<BurstyTraffic>(opt.n, load, opt.mean_burst,
                                               seed);
    if (opt.workload == "hotspot")
        return std::make_unique<HotspotTraffic>(opt.n, load, 0,
                                                opt.hotspot_fraction, seed);
    AN2_FATAL("unknown workload '" << opt.workload << "'");
}

}  // namespace

int
main(int argc, char** argv)
{
    Options opt;
    if (!parse(argc, argv, opt)) {
        usage();
        return 1;
    }

    try {
        std::printf("  load   mean delay   p99 delay   throughput   "
                    "offered   max buffer\n");
        for (double load : opt.loads) {
            auto sw = makeSwitch(opt);
            auto traffic = makeWorkload(opt, load);
            SimConfig cfg;
            cfg.slots = opt.slots;
            cfg.warmup = opt.slots / 5;
            SimResult r = runSimulation(*sw, *traffic, cfg);
            std::printf("  %4.2f  %10.2f  %10.1f  %10.3f  %9.3f  %10d\n",
                        load, r.mean_delay, r.p99_delay, r.throughput,
                        r.offered, r.max_occupancy);
        }
        auto sw = makeSwitch(opt);
        std::printf("\n  switch: %s, workload: %s, %lld slots/point\n",
                    sw->name().c_str(), opt.workload.c_str(),
                    static_cast<long long>(opt.slots));
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
    return 0;
}
