/**
 * @file
 * Seeded chaos: randomized fault-plan generation for LAN fuzzing.
 *
 * A ChaosSpec is a tiny, replayable description of randomized churn:
 *
 *     chaos(SEED,RATE,KINDS)        e.g.  chaos(7,2.5,link+switch+storm)
 *
 * SEED seeds a private splitmix64 chain, RATE is the expected number of
 * fault episodes per 1000 slots, and KINDS is a '+'-joined subset of
 *
 *     port    one directed link dies and later revives
 *     link    both directions of a link die together
 *     switch  every link incident to one switch dies together
 *             (correlated failure)
 *     storm   modifier: revival slots quantize to 1000-slot boundaries,
 *             so many elements revive in the same slot (revival storm)
 *
 * expandChaos() turns a spec plus a topology summary (ChaosEnv) into an
 * ordinary FaultPlan of link_down/link_up events. The expansion consumes
 * only the spec's own PRNG chain, so the same (spec, topology) pair
 * yields byte-identical plans — and therefore byte-identical runs — on
 * any machine, engine, or thread count.
 */
#ifndef AN2_FAULT_CHAOS_H
#define AN2_FAULT_CHAOS_H

#include <cstdint>
#include <string>
#include <vector>

#include "an2/base/types.h"
#include "an2/fault/fault_plan.h"

namespace an2 {
class Network;
}  // namespace an2

namespace an2::fault {

/** Chaos kind bits; at least one of Port/Link/Switch must be set. */
enum ChaosKind : uint32_t {
    kChaosPort = 1u << 0,    ///< single directed-link churn
    kChaosLink = 1u << 1,    ///< both directions of a link together
    kChaosSwitch = 1u << 2,  ///< all links of one switch (correlated)
    kChaosStorm = 1u << 3,   ///< quantize revivals into storms
};

/** A seeded randomized-churn spec; see the file comment for the text
    form. Default-constructed specs are disabled. */
struct ChaosSpec
{
    uint64_t seed = 0;

    /** Expected fault episodes per 1000 slots of horizon. */
    double rate = 0.0;

    /** OR of ChaosKind bits. */
    uint32_t kinds = 0;

    /** True when expansion would generate events. */
    bool enabled() const { return rate > 0.0 && kinds != 0; }

    /**
     * Parse the `chaos(seed,rate,kinds)` text form. Throws UsageError
     * naming the offending part on malformed input; requires rate > 0
     * and at least one of port/link/switch.
     */
    static ChaosSpec parse(const std::string& spec);

    /** Canonical spec string: parse(str()) round-trips byte-identically. */
    std::string str() const;
};

/** The topology facts chaos expansion needs, decoupled from Network so
    tests can fabricate environments directly. */
struct ChaosEnv
{
    /** Expansion horizon: every generated event lands in [1, horizon). */
    SlotTime horizon_slots = 0;

    /** Number of directed links (FaultPlan link-event target space). */
    int num_links = 0;

    /** peer[l] is the reverse-direction link of l, or -1 when absent. */
    std::vector<int> peer;

    /** Per-switch incident directed links (both directions), used by
        kChaosSwitch; empty groups are skipped. */
    std::vector<std::vector<int>> switch_links;
};

/** Summarize a built Network for expansion over `horizon_slots`. */
ChaosEnv chaosEnvFor(const Network& net, SlotTime horizon_slots);

/**
 * Expand a spec into a concrete, slot-sorted FaultPlan of link events.
 * Deterministic in (spec, env); revivals that would land at or past the
 * horizon are dropped, leaving the element down for the rest of the run.
 */
FaultPlan expandChaos(const ChaosSpec& spec, const ChaosEnv& env);

}  // namespace an2::fault

#endif  // AN2_FAULT_CHAOS_H
