#include "an2/fault/fault_plan.h"

#include <algorithm>
#include <cstdio>

#include "an2/base/error.h"
#include "an2/base/parse.h"

namespace an2::fault {

const char*
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::InputDown:  return "in_down";
      case FaultKind::InputUp:    return "in_up";
      case FaultKind::OutputDown: return "out_down";
      case FaultKind::OutputUp:   return "out_up";
      case FaultKind::LinkDown:   return "link_down";
      case FaultKind::LinkUp:     return "link_up";
    }
    return "unknown";
}

namespace {

bool
isPortKind(FaultKind kind)
{
    return kind != FaultKind::LinkDown && kind != FaultKind::LinkUp;
}

bool
kindFromName(const std::string& name, FaultKind& out)
{
    static constexpr FaultKind kKinds[] = {
        FaultKind::InputDown,  FaultKind::InputUp,  FaultKind::OutputDown,
        FaultKind::OutputUp,   FaultKind::LinkDown, FaultKind::LinkUp,
    };
    for (FaultKind k : kKinds) {
        if (name == faultKindName(k)) {
            out = k;
            return true;
        }
    }
    return false;
}

/** Shortest-round-trip decimal for a probability in [0, 1]. */
std::string
probString(double p)
{
    char buf[64];
    for (int prec = 1; prec <= 17; ++prec) {
        std::snprintf(buf, sizeof buf, "%.*g", prec, p);
        double back = 0.0;
        std::sscanf(buf, "%lf", &back);
        if (back == p)
            break;
    }
    return buf;
}

/** Parse one comma-separated token into `plan`. */
void
parseToken(const std::string& tok, FaultPlan& plan)
{
    const size_t open = tok.find('(');
    const size_t close = tok.find(')');
    AN2_REQUIRE(open != std::string::npos && close != std::string::npos &&
                    open > 0 && close > open + 1,
                "malformed fault token '" << tok
                                          << "' (want KIND(ARG)[@SLOT])");
    const std::string name = tok.substr(0, open);
    const std::string arg = tok.substr(open + 1, close - open - 1);
    const std::string rest = tok.substr(close + 1);

    if (name == "drop" || name == "corrupt") {
        AN2_REQUIRE(rest.empty(), "unexpected suffix '"
                                      << rest << "' in fault token '" << tok
                                      << "'");
        double p = 0.0;
        AN2_REQUIRE(parseDouble(arg, p) && p >= 0.0 && p <= 1.0,
                    "fault token '" << tok << "': probability '" << arg
                                    << "' is not in [0, 1]");
        (name == "drop" ? plan.drop_prob : plan.corrupt_prob) = p;
        return;
    }

    FaultKind kind;
    AN2_REQUIRE(kindFromName(name, kind),
                "unknown fault kind '" << name << "' in token '" << tok
                                       << "'");
    FaultEvent ev;
    ev.kind = kind;
    AN2_REQUIRE(parseInt(arg, ev.target) && ev.target >= 0,
                "fault token '" << tok << "': target '" << arg
                                << "' is not a non-negative integer");
    AN2_REQUIRE(!rest.empty() && rest[0] == '@',
                "fault token '" << tok << "' is missing '@SLOT'");
    int64_t slot = 0;
    AN2_REQUIRE(parseInt64(rest.substr(1), slot) && slot >= 0,
                "fault token '" << tok << "': slot '" << rest.substr(1)
                                << "' is not a non-negative integer");
    ev.slot = slot;
    plan.events.push_back(ev);
}

}  // namespace

int
FaultPlan::maxPortTarget() const
{
    int max = -1;
    for (const FaultEvent& e : events)
        if (isPortKind(e.kind))
            max = std::max(max, e.target);
    return max;
}

int
FaultPlan::maxLinkTarget() const
{
    int max = -1;
    for (const FaultEvent& e : events)
        if (!isPortKind(e.kind))
            max = std::max(max, e.target);
    return max;
}

FaultPlan
FaultPlan::parse(const std::string& spec)
{
    FaultPlan plan;
    size_t pos = 0;
    while (pos < spec.size()) {
        size_t comma = spec.find(',', pos);
        if (comma == std::string::npos)
            comma = spec.size();
        const std::string tok = spec.substr(pos, comma - pos);
        AN2_REQUIRE(!tok.empty(),
                    "empty fault token in spec '" << spec << "'");
        parseToken(tok, plan);
        pos = comma + 1;
    }
    // Stable: same-slot events keep their textual order, so a spec is a
    // total order of effects and replays identically.
    std::stable_sort(plan.events.begin(), plan.events.end(),
                     [](const FaultEvent& a, const FaultEvent& b) {
                         return a.slot < b.slot;
                     });
    return plan;
}

std::string
FaultPlan::str() const
{
    std::string out;
    char buf[96];
    for (const FaultEvent& e : events) {
        if (!out.empty())
            out += ',';
        std::snprintf(buf, sizeof buf, "%s(%d)@%lld", faultKindName(e.kind),
                      e.target, static_cast<long long>(e.slot));
        out += buf;
    }
    if (drop_prob > 0.0) {
        if (!out.empty())
            out += ',';
        out += "drop(" + probString(drop_prob) + ")";
    }
    if (corrupt_prob > 0.0) {
        if (!out.empty())
            out += ',';
        out += "corrupt(" + probString(corrupt_prob) + ")";
    }
    return out;
}

void
FaultPlan::validatePorts(int n) const
{
    for (const FaultEvent& e : events)
        if (isPortKind(e.kind))
            AN2_REQUIRE(e.target < n, "fault event "
                                          << faultKindName(e.kind) << "("
                                          << e.target
                                          << ") targets a port outside the "
                                          << n << "-port switch");
}

}  // namespace an2::fault
