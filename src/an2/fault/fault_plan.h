/**
 * @file
 * Declarative fault scenarios for deterministic replay.
 *
 * A FaultPlan is the full description of everything that will go wrong
 * in a run: scripted port/link state transitions pinned to exact slots,
 * plus per-cell probabilistic loss and corruption rates whose draws come
 * from a PRNG seeded through the harness's splitmix64 derivation. A
 * (seed, plan) pair therefore replays byte-identically — the same cells
 * are lost, the same ports die at the same slots — on any machine and
 * any thread count.
 *
 * Plans have a compact text form, used by `an2_sweep --faults` and the
 * sweep JSON meta:
 *
 *     out_down(3)@4000,out_up(3)@8000,drop(0.001),corrupt(0.0005)
 *
 * Scripted events are `KIND(TARGET)@SLOT` with KIND one of in_down,
 * in_up, out_down, out_up, link_down, link_up; probabilistic modes are
 * `drop(P)` and `corrupt(P)` with P in [0, 1]. parse() rejects malformed
 * specs with a UsageError naming the offending token.
 */
#ifndef AN2_FAULT_FAULT_PLAN_H
#define AN2_FAULT_FAULT_PLAN_H

#include <cstdint>
#include <string>
#include <vector>

#include "an2/base/types.h"

namespace an2::fault {

/** The kinds of scripted fault transition. */
enum class FaultKind : uint8_t {
    InputDown = 0,  ///< input port dies: its arrivals are lost
    InputUp,        ///< input port revives
    OutputDown,     ///< output port dies: nothing can be forwarded to it
    OutputUp,       ///< output port revives
    LinkDown,       ///< network link goes down: cells in flight are lost
    LinkUp,         ///< network link comes back up
};

/** Spec-form name of a fault kind ("in_down", "link_up", ...). */
const char* faultKindName(FaultKind kind);

/** One scripted transition: apply `kind` to `target` at slot `slot`. */
struct FaultEvent
{
    SlotTime slot = 0;
    FaultKind kind = FaultKind::InputDown;
    int target = 0;  ///< port id for port events, link index for link events
};

/** A complete, replayable fault scenario. */
struct FaultPlan
{
    /** Scripted transitions, sorted by slot (same-slot order preserved
        from the spec text). */
    std::vector<FaultEvent> events;

    /** Per-arriving-cell probability of loss in flight. */
    double drop_prob = 0.0;

    /** Per-arriving-cell probability of header corruption; a corrupted
        cell is discarded by the HEC check at ingress, like loss but
        counted separately. */
    double corrupt_prob = 0.0;

    /** True when the plan injects nothing at all. */
    bool empty() const
    {
        return events.empty() && drop_prob == 0.0 && corrupt_prob == 0.0;
    }

    /** True when the plan needs PRNG draws (drop/corrupt modes). */
    bool probabilistic() const
    {
        return drop_prob > 0.0 || corrupt_prob > 0.0;
    }

    /** Largest port id named by a port event, or -1 when none. */
    int maxPortTarget() const;

    /** Largest link index named by a link event, or -1 when none. */
    int maxLinkTarget() const;

    /**
     * Parse the compact text form. Throws UsageError naming the
     * offending token on any malformed input; an empty spec string
     * yields an empty plan.
     */
    static FaultPlan parse(const std::string& spec);

    /** Canonical spec string: parse(str()) round-trips. */
    std::string str() const;

    /** Throw UsageError when a port event names a port outside [0, n). */
    void validatePorts(int n) const;
};

}  // namespace an2::fault

#endif  // AN2_FAULT_FAULT_PLAN_H
