#include "an2/fault/invariants.h"

#include "an2/cbr/frame_schedule.h"
#include "an2/matching/matching.h"
#include "an2/matching/wordset.h"

namespace an2::fault {

void
InvariantChecker::checkMatchingLive(const Matching& m,
                                    const RequestMatrix& req, const char* who)
{
    const int n = m.numInputs();
    for (PortId i = 0; i < n; ++i) {
        PortId j = m.outputOf(i);
        if (j == kNoPort)
            continue;
        AN2_CHECK(req.has(i, j),
                  who << ": matching pairs (" << i << "," << j
                      << ") which is not a live request");
    }
}

void
InvariantChecker::checkMatchingAvoidsDead(const Matching& m,
                                          const uint64_t* dead_in,
                                          const uint64_t* dead_out,
                                          const char* who)
{
    const int n = m.numInputs();
    for (PortId i = 0; i < n; ++i) {
        PortId j = m.outputOf(i);
        if (j == kNoPort)
            continue;
        AN2_CHECK(dead_in == nullptr || !wordset::testBit(dead_in, i),
                  who << ": matching uses dead input port " << i);
        AN2_CHECK(dead_out == nullptr || !wordset::testBit(dead_out, j),
                  who << ": matching uses dead output port " << j);
    }
}

void
InvariantChecker::checkScheduleRealizes(const FrameSchedule& sched,
                                        const ReservationMatrix& res,
                                        const char* who)
{
    AN2_CHECK(sched.realizes(res),
              who << ": frame schedule no longer realizes the reservation "
                     "matrix");
}

}  // namespace an2::fault
