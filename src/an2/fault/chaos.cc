#include "an2/fault/chaos.h"

#include <algorithm>
#include <cstdio>

#include "an2/base/error.h"
#include "an2/base/parse.h"
#include "an2/base/rng.h"
#include "an2/network/network.h"

namespace an2::fault {

namespace {

/** Canonical kind order for str(); storm last because it is a modifier. */
struct KindName
{
    uint32_t bit;
    const char* name;
};
constexpr KindName kKindNames[] = {
    {kChaosPort, "port"},
    {kChaosLink, "link"},
    {kChaosSwitch, "switch"},
    {kChaosStorm, "storm"},
};

/** Shortest-round-trip decimal for the rate (mirrors FaultPlan probs). */
std::string
rateString(double r)
{
    char buf[64];
    for (int prec = 1; prec <= 17; ++prec) {
        std::snprintf(buf, sizeof buf, "%.*g", prec, r);
        double back = 0.0;
        std::sscanf(buf, "%lf", &back);
        if (back == r)
            break;
    }
    return buf;
}

/** Storms quantize revivals to this boundary, coalescing many link_up
    events into the same slot. */
constexpr SlotTime kStormQuantum = 1000;

/** Bounded uniform draw off a splitmix64 chain (modulo bias is fine for
    fault fuzzing; determinism is what matters). */
uint64_t
draw(uint64_t& state, uint64_t n)
{
    return splitmix64(state) % n;
}

}  // namespace

ChaosSpec
ChaosSpec::parse(const std::string& spec)
{
    const size_t open = spec.find('(');
    const size_t close = spec.rfind(')');
    AN2_REQUIRE(open != std::string::npos && close == spec.size() - 1 &&
                    close > open + 1 && spec.substr(0, open) == "chaos",
                "malformed chaos spec '" << spec
                                         << "' (want chaos(seed,rate,kinds))");
    const std::string body = spec.substr(open + 1, close - open - 1);
    const size_t c1 = body.find(',');
    const size_t c2 = body.find(',', c1 == std::string::npos ? c1 : c1 + 1);
    AN2_REQUIRE(c1 != std::string::npos && c2 != std::string::npos,
                "chaos spec '" << spec << "' wants three comma-separated "
                               << "parts: seed,rate,kinds");
    ChaosSpec out;
    AN2_REQUIRE(parseUint64(body.substr(0, c1), out.seed),
                "chaos spec '" << spec << "': seed '" << body.substr(0, c1)
                               << "' is not an unsigned integer");
    AN2_REQUIRE(parseDouble(body.substr(c1 + 1, c2 - c1 - 1), out.rate) &&
                    out.rate > 0.0,
                "chaos spec '" << spec << "': rate '"
                               << body.substr(c1 + 1, c2 - c1 - 1)
                               << "' is not a positive number");
    std::string kinds = body.substr(c2 + 1);
    size_t pos = 0;
    while (pos <= kinds.size()) {
        size_t plus = kinds.find('+', pos);
        if (plus == std::string::npos)
            plus = kinds.size();
        const std::string part = kinds.substr(pos, plus - pos);
        bool known = false;
        for (const KindName& kn : kKindNames) {
            if (part == kn.name) {
                out.kinds |= kn.bit;
                known = true;
            }
        }
        AN2_REQUIRE(known, "chaos spec '" << spec << "': unknown kind '"
                                          << part
                                          << "' (want port/link/switch/"
                                          << "storm joined by '+')");
        pos = plus + 1;
    }
    AN2_REQUIRE(
        (out.kinds & (kChaosPort | kChaosLink | kChaosSwitch)) != 0,
        "chaos spec '" << spec << "' needs at least one of port/link/switch"
                       << " (storm alone generates nothing)");
    return out;
}

std::string
ChaosSpec::str() const
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "chaos(%llu,",
                  static_cast<unsigned long long>(seed));
    std::string out = buf;
    out += rateString(rate);
    out += ',';
    bool first = true;
    for (const KindName& kn : kKindNames) {
        if ((kinds & kn.bit) == 0)
            continue;
        if (!first)
            out += '+';
        out += kn.name;
        first = false;
    }
    out += ')';
    return out;
}

ChaosEnv
chaosEnvFor(const Network& net, SlotTime horizon_slots)
{
    ChaosEnv env;
    env.horizon_slots = horizon_slots;
    env.num_links = net.numLinks();
    env.peer.assign(static_cast<size_t>(env.num_links), -1);
    env.switch_links.assign(static_cast<size_t>(net.numNodes()), {});
    for (int l = 0; l < env.num_links; ++l) {
        const Network::LinkEnds ends = net.linkEnds(l);
        env.peer[static_cast<size_t>(l)] =
            net.linkIndexBetween(ends.to, ends.from);
        if (net.isSwitchNode(ends.from))
            env.switch_links[static_cast<size_t>(ends.from)].push_back(l);
        if (net.isSwitchNode(ends.to))
            env.switch_links[static_cast<size_t>(ends.to)].push_back(l);
    }
    // Drop controller rows and empty groups so the group draw is over
    // actual correlated-failure candidates.
    std::vector<std::vector<int>> groups;
    for (std::vector<int>& g : env.switch_links)
        if (!g.empty())
            groups.push_back(std::move(g));
    env.switch_links = std::move(groups);
    return env;
}

FaultPlan
expandChaos(const ChaosSpec& spec, const ChaosEnv& env)
{
    AN2_REQUIRE(spec.enabled(), "expandChaos on a disabled spec");
    FaultPlan plan;
    if (env.num_links == 0 || env.horizon_slots < 2)
        return plan;

    // Episode kinds actually available in this environment.
    std::vector<uint32_t> kinds;
    if (spec.kinds & kChaosPort)
        kinds.push_back(kChaosPort);
    if (spec.kinds & kChaosLink)
        kinds.push_back(kChaosLink);
    if ((spec.kinds & kChaosSwitch) && !env.switch_links.empty())
        kinds.push_back(kChaosSwitch);
    if (kinds.empty())
        return plan;

    const int64_t episodes = static_cast<int64_t>(
        spec.rate * static_cast<double>(env.horizon_slots) / 1000.0 + 0.5);
    // Private chain: one hash step insulates the episode stream from the
    // raw user seed so seed 0 and seed 1 diverge immediately.
    uint64_t state = spec.seed;
    splitmix64(state);

    auto addEvent = [&plan](FaultKind kind, int target, SlotTime slot) {
        plan.events.push_back(FaultEvent{slot, kind, target});
    };

    for (int64_t i = 0; i < episodes; ++i) {
        const uint32_t kind = kinds[draw(state, kinds.size())];
        const SlotTime down =
            1 + static_cast<SlotTime>(
                    draw(state,
                         static_cast<uint64_t>(env.horizon_slots - 1)));
        // Dwell long enough that restoration's first retries land while
        // the element is still down, short enough that most revive.
        SlotTime up = down + 40 +
                      static_cast<SlotTime>(draw(state, 960));
        if (spec.kinds & kChaosStorm)
            up = (up + kStormQuantum - 1) / kStormQuantum * kStormQuantum;
        const bool revives = up < env.horizon_slots;

        std::vector<int> targets;
        if (kind == kChaosPort) {
            targets.push_back(static_cast<int>(
                draw(state, static_cast<uint64_t>(env.num_links))));
        } else if (kind == kChaosLink) {
            const int l = static_cast<int>(
                draw(state, static_cast<uint64_t>(env.num_links)));
            targets.push_back(l);
            const int p = env.peer[static_cast<size_t>(l)];
            if (p >= 0 && p != l)
                targets.push_back(p);
        } else {
            const std::vector<int>& group =
                env.switch_links[draw(state, env.switch_links.size())];
            targets = group;
        }
        for (int t : targets)
            addEvent(FaultKind::LinkDown, t, down);
        if (revives)
            for (int t : targets)
                addEvent(FaultKind::LinkUp, t, up);
    }
    // Same canonicalization as FaultPlan::parse: sorted by slot, stable
    // for same-slot ties, so str() of the expansion round-trips.
    std::stable_sort(plan.events.begin(), plan.events.end(),
                     [](const FaultEvent& a, const FaultEvent& b) {
                         return a.slot < b.slot;
                     });
    return plan;
}

}  // namespace an2::fault
