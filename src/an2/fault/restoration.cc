#include "an2/fault/restoration.h"

#include <algorithm>
#include <vector>

#include "an2/base/error.h"
#include "an2/base/rng.h"
#include "an2/fault/invariants.h"
#include "an2/obs/probe.h"
#include "an2/obs/recorder.h"
#include "an2/topo/lan.h"

namespace an2::fault {

const char*
restoreStateName(RestoreState s)
{
    switch (s) {
      case RestoreState::Pending:   return "pending";
      case RestoreState::Restored:  return "restored";
      case RestoreState::Degraded:  return "degraded";
      case RestoreState::Abandoned: return "abandoned";
    }
    return "unknown";
}

PathRestorer::PathRestorer(topo::Lan& lan, const RestorePolicy& policy)
    : lan_(lan), policy_(policy)
{
    AN2_REQUIRE(policy_.retry_budget >= 0,
                "retry budget must be non-negative");
    AN2_REQUIRE(policy_.base_backoff_slots >= 1,
                "base backoff must be at least one slot");
    AN2_REQUIRE(policy_.max_backoff_slots >= policy_.base_backoff_slots,
                "backoff cap below the base backoff");
    AN2_REQUIRE(policy_.jitter_slots >= 0,
                "jitter amplitude must be non-negative");
}

SlotTime
PathRestorer::backoffDelay(FlowId flow, int attempt) const
{
    // Seeded exponential backoff with a cap. The shift saturates well
    // before it could overflow; every quantity is a pure function of
    // (seed, flow, attempt), so the retry schedule replays identically
    // on any engine.
    SlotTime delay = policy_.max_backoff_slots;
    if (attempt < 32) {
        const SlotTime shifted = policy_.base_backoff_slots << attempt;
        if (shifted >= policy_.base_backoff_slots)  // no wrap
            delay = std::min(shifted, policy_.max_backoff_slots);
    }
    if (policy_.jitter_slots > 0) {
        uint64_t s = policy_.seed;
        splitmix64(s);
        s ^= static_cast<uint64_t>(static_cast<uint32_t>(flow)) |
             (static_cast<uint64_t>(static_cast<uint32_t>(attempt)) << 32);
        delay += static_cast<SlotTime>(
            splitmix64(s) % static_cast<uint64_t>(policy_.jitter_slots));
    }
    return delay;
}

void
PathRestorer::onLinkDown(int link, SlotTime slot)
{
    const int n = lan_.numFlows();
    for (FlowId f = 0; f < n; ++f) {
        const topo::Lan::FlowInfo info = lan_.flowInfo(f);
        // cbr_admitted == 0 covers flows already mid-restoration and
        // abandoned flows; neither holds anything this link can strand.
        if (info.cls != TrafficClass::CBR || info.cbr_admitted == 0)
            continue;
        const std::vector<LinkId> links = lan_.pathLinks(lan_.flowPath(f));
        if (std::find(links.begin(), links.end(), link) == links.end())
            continue;
        const int k = lan_.revokeCbrPath(f);
        Episode ep;
        ep.down_slot = slot;
        ep.next_try = slot + backoffDelay(f, 0);
        ep.revoked_k = k;
        episodes_[f] = ep;  // a terminal episode re-opens here
        ++pending_;
        pending_slots_ += k;
        ++stats_.episodes;
        stats_.slots_revoked += k;
    }
    InvariantChecker::checkRestorationConservation(
        stats_.slots_revoked, stats_.slots_replaced, stats_.slots_shed,
        pending_slots_, "PathRestorer");
}

SlotTime
PathRestorer::nextActionSlot() const
{
    SlotTime next = -1;
    for (const auto& [flow, ep] : episodes_) {
        if (ep.state != RestoreState::Pending)
            continue;
        if (next < 0 || ep.next_try < next)
            next = ep.next_try;
    }
    return next;
}

void
PathRestorer::runPending(SlotTime now_slot)
{
    for (auto& [flow, ep] : episodes_) {
        if (ep.state != RestoreState::Pending || ep.next_try > now_slot)
            continue;
        attemptRestore(flow, ep, now_slot);
    }
    InvariantChecker::checkRestorationConservation(
        stats_.slots_revoked, stats_.slots_replaced, stats_.slots_shed,
        pending_slots_, "PathRestorer");
}

void
PathRestorer::attemptRestore(FlowId flow, Episode& ep, SlotTime now_slot)
{
    ++stats_.retries;
    obs::count(obs::Counter::CbrRestoreRetries);
    const topo::Lan::FlowInfo info = lan_.flowInfo(flow);
    const std::vector<NodeId> path =
        lan_.router().path(info.src, info.dst, flow);
    if (!path.empty() &&
        lan_.net().admission().canAdmit(lan_.pathLinks(path),
                                        info.cbr_cells)) {
        lan_.installRestoredCbrPath(flow, path, info.cbr_cells);
        finish(flow, ep, RestoreState::Restored, info.cbr_cells, now_slot);
        return;
    }
    ++ep.attempts;
    if (ep.attempts <= policy_.retry_budget) {
        ep.next_try = now_slot + backoffDelay(flow, ep.attempts);
        return;
    }
    // Budget exhausted. Fall back to whatever rate the live path can
    // still carry, else give the flow up.
    if (policy_.allow_degraded && !path.empty()) {
        const int kd =
            std::min(lan_.net().admission().maxAdmissible(lan_.pathLinks(path)),
                     info.cbr_cells);
        if (kd >= 1) {
            lan_.installRestoredCbrPath(flow, path, kd);
            finish(flow, ep, RestoreState::Degraded, kd, now_slot);
            return;
        }
    }
    lan_.abandonCbrFlow(flow);
    finish(flow, ep, RestoreState::Abandoned, 0, now_slot);
}

void
PathRestorer::finish(FlowId flow, Episode& ep, RestoreState state,
                     int admitted_k, SlotTime now_slot)
{
    (void)flow;
    ep.state = state;
    --pending_;
    pending_slots_ -= ep.revoked_k;
    const int64_t replaced =
        std::min<int64_t>(admitted_k, ep.revoked_k);
    stats_.slots_replaced += replaced;
    stats_.slots_shed += ep.revoked_k - replaced;
    switch (state) {
      case RestoreState::Restored:
        ++stats_.restored;
        obs::count(obs::Counter::CbrRestorations);
        stats_.latency_slots.add(now_slot - ep.down_slot);
        break;
      case RestoreState::Degraded:
        ++stats_.degraded;
        obs::count(obs::Counter::CbrRestorations);
        stats_.latency_slots.add(now_slot - ep.down_slot);
        break;
      case RestoreState::Abandoned:
        ++stats_.abandoned;
        obs::count(obs::Counter::CbrAbandoned);
        break;
      case RestoreState::Pending:
        AN2_FATAL("finish() into Pending");
    }
}

bool
PathRestorer::tracked(FlowId flow) const
{
    return episodes_.find(flow) != episodes_.end();
}

RestoreState
PathRestorer::state(FlowId flow) const
{
    auto it = episodes_.find(flow);
    AN2_REQUIRE(it != episodes_.end(),
                "flow " << flow << " has no restoration episode");
    return it->second.state;
}

int
PathRestorer::attempts(FlowId flow) const
{
    auto it = episodes_.find(flow);
    AN2_REQUIRE(it != episodes_.end(),
                "flow " << flow << " has no restoration episode");
    return it->second.attempts;
}

}  // namespace an2::fault
