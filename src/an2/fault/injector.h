/**
 * @file
 * Deterministic fault injection over a running switch.
 *
 * The FaultInjector executes a FaultPlan against one switch instance:
 * at each slot boundary it applies every scripted event that has come
 * due (flipping port liveness on the switch, toggling link state,
 * notifying listeners such as the CBR repair engine), and for each
 * arriving cell it renders a verdict — deliver, drop (lost in flight /
 * dead port), or corrupt (HEC check discards it at ingress).
 *
 * Determinism: the probabilistic modes draw from a private Xoshiro256
 * seeded once at construction (the harness derives the seed from
 * (base_seed, run_index, stream 2) via splitmix64), and draws happen in
 * arrival order only. Identical (seed, plan, arrival sequence) replay
 * byte-identically on any thread count.
 *
 * Everything the injector touches per slot is preallocated at
 * construction; beginSlot/classifyArrival never allocate.
 */
#ifndef AN2_FAULT_INJECTOR_H
#define AN2_FAULT_INJECTOR_H

#include <cstdint>
#include <vector>

#include "an2/base/rng.h"
#include "an2/base/types.h"
#include "an2/cell/cell.h"
#include "an2/fault/fault_plan.h"

namespace an2 {

class SwitchModel;

namespace fault {

/** Observer of fault transitions (e.g. the CBR repair engine). */
class FaultListener
{
  public:
    virtual ~FaultListener() = default;

    /** A port died. `is_input` selects the side. */
    virtual void onPortDown(bool is_input, PortId port, SlotTime slot)
    {
        (void)is_input;
        (void)port;
        (void)slot;
    }

    /** A port revived. */
    virtual void onPortUp(bool is_input, PortId port, SlotTime slot)
    {
        (void)is_input;
        (void)port;
        (void)slot;
    }

    /** A link changed state. */
    virtual void onLinkDown(int link, SlotTime slot)
    {
        (void)link;
        (void)slot;
    }

    virtual void onLinkUp(int link, SlotTime slot)
    {
        (void)link;
        (void)slot;
    }

    /** Called every slot after events are applied; budgeted repair work
        (schedule re-placement) runs here. */
    virtual void slotWork(SlotTime slot) { (void)slot; }
};

/** Drives one FaultPlan against one switch. */
class FaultInjector
{
  public:
    /** What happens to an arriving cell. */
    enum class Verdict : uint8_t {
        Deliver = 0,  ///< cell reaches the switch intact
        Drop,         ///< lost: dead port or in-flight loss
        Corrupt,      ///< header corrupted; HEC discards it at ingress
    };

    /**
     * @param n Switch size (port events are validated against it).
     * @param plan The scenario to execute (copied).
     * @param seed PRNG seed for the probabilistic modes.
     */
    FaultInjector(int n, const FaultPlan& plan, uint64_t seed);

    /** Register a listener (construction phase; not thread-safe). */
    void addListener(FaultListener* listener);

    /**
     * Apply every scripted event due at or before `slot`, pushing port
     * liveness into `sw` (may be null), notifying listeners, and then
     * running each listener's slotWork budget. Call once per slot,
     * before the slot's arrivals.
     */
    void beginSlot(SlotTime slot, SwitchModel* sw = nullptr);

    /**
     * Decide the fate of a cell arriving this slot. Draw order is fixed
     * (dead-port check, then drop, then corrupt), so replay is exact.
     */
    Verdict classifyArrival(const Cell& cell);

    bool inputLive(PortId i) const
    {
        return in_live_[static_cast<size_t>(i)] != 0;
    }

    bool outputLive(PortId j) const
    {
        return out_live_[static_cast<size_t>(j)] != 0;
    }

    /** Link state; links not named by any event are up. */
    bool linkUp(int link) const;

    int deadInputs() const { return dead_in_; }
    int deadOutputs() const { return dead_out_; }

    /** Cells dropped by verdicts (dead port + in-flight loss). */
    int64_t cellsDropped() const { return dropped_; }

    /** Cells discarded by the HEC corruption check. */
    int64_t cellsCorrupted() const { return corrupted_; }

    /** Scripted events applied so far. */
    int64_t eventsApplied() const { return applied_; }

    const FaultPlan& plan() const { return plan_; }

    int size() const { return n_; }

  private:
    void apply(const FaultEvent& e, SlotTime slot, SwitchModel* sw);

    int n_;
    FaultPlan plan_;
    Xoshiro256 rng_;
    std::vector<uint8_t> in_live_;
    std::vector<uint8_t> out_live_;
    std::vector<uint8_t> link_up_;  ///< sized to the largest link target
    std::vector<FaultListener*> listeners_;
    size_t cursor_ = 0;  ///< next unapplied event in plan_.events
    int dead_in_ = 0;
    int dead_out_ = 0;
    int64_t dropped_ = 0;
    int64_t corrupted_ = 0;
    int64_t applied_ = 0;
};

}  // namespace fault
}  // namespace an2

#endif  // AN2_FAULT_INJECTOR_H
