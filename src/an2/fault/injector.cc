#include "an2/fault/injector.h"

#include "an2/base/error.h"
#include "an2/obs/recorder.h"
#include "an2/sim/switch.h"

namespace an2::fault {

FaultInjector::FaultInjector(int n, const FaultPlan& plan, uint64_t seed)
    : n_(n), plan_(plan), rng_(seed),
      in_live_(static_cast<size_t>(n), 1),
      out_live_(static_cast<size_t>(n), 1),
      link_up_(static_cast<size_t>(plan.maxLinkTarget() + 1), 1)
{
    AN2_REQUIRE(n > 0, "fault injector needs a positive switch size");
    plan_.validatePorts(n);
}

void
FaultInjector::addListener(FaultListener* listener)
{
    AN2_REQUIRE(listener != nullptr, "fault listener must not be null");
    listeners_.push_back(listener);
}

bool
FaultInjector::linkUp(int link) const
{
    if (link < 0 || static_cast<size_t>(link) >= link_up_.size())
        return true;
    return link_up_[static_cast<size_t>(link)] != 0;
}

void
FaultInjector::apply(const FaultEvent& e, SlotTime slot, SwitchModel* sw)
{
    ++applied_;
    obs::faultEvent(static_cast<int>(e.kind), e.target);
    switch (e.kind) {
      case FaultKind::InputDown:
        if (in_live_[static_cast<size_t>(e.target)]) {
            in_live_[static_cast<size_t>(e.target)] = 0;
            ++dead_in_;
            if (sw != nullptr)
                sw->setInputPortLive(e.target, false);
            for (FaultListener* l : listeners_)
                l->onPortDown(true, e.target, slot);
        }
        break;
      case FaultKind::InputUp:
        if (!in_live_[static_cast<size_t>(e.target)]) {
            in_live_[static_cast<size_t>(e.target)] = 1;
            --dead_in_;
            if (sw != nullptr)
                sw->setInputPortLive(e.target, true);
            for (FaultListener* l : listeners_)
                l->onPortUp(true, e.target, slot);
        }
        break;
      case FaultKind::OutputDown:
        if (out_live_[static_cast<size_t>(e.target)]) {
            out_live_[static_cast<size_t>(e.target)] = 0;
            ++dead_out_;
            if (sw != nullptr)
                sw->setOutputPortLive(e.target, false);
            for (FaultListener* l : listeners_)
                l->onPortDown(false, e.target, slot);
        }
        break;
      case FaultKind::OutputUp:
        if (!out_live_[static_cast<size_t>(e.target)]) {
            out_live_[static_cast<size_t>(e.target)] = 1;
            --dead_out_;
            if (sw != nullptr)
                sw->setOutputPortLive(e.target, true);
            for (FaultListener* l : listeners_)
                l->onPortUp(false, e.target, slot);
        }
        break;
      case FaultKind::LinkDown:
        if (link_up_[static_cast<size_t>(e.target)]) {
            link_up_[static_cast<size_t>(e.target)] = 0;
            for (FaultListener* l : listeners_)
                l->onLinkDown(e.target, slot);
        }
        break;
      case FaultKind::LinkUp:
        if (!link_up_[static_cast<size_t>(e.target)]) {
            link_up_[static_cast<size_t>(e.target)] = 1;
            for (FaultListener* l : listeners_)
                l->onLinkUp(e.target, slot);
        }
        break;
    }
}

void
FaultInjector::beginSlot(SlotTime slot, SwitchModel* sw)
{
    while (cursor_ < plan_.events.size() &&
           plan_.events[cursor_].slot <= slot) {
        apply(plan_.events[cursor_], slot, sw);
        ++cursor_;
    }
    for (FaultListener* l : listeners_)
        l->slotWork(slot);
}

FaultInjector::Verdict
FaultInjector::classifyArrival(const Cell& cell)
{
    AN2_REQUIRE(cell.input >= 0 && cell.input < n_ && cell.output >= 0 &&
                    cell.output < n_,
                "arriving cell (" << cell.input << "->" << cell.output
                                  << ") is outside the " << n_
                                  << "-port switch");
    if (!inputLive(cell.input) || !outputLive(cell.output)) {
        ++dropped_;
        obs::count(obs::Counter::CellsDroppedByFaults);
        return Verdict::Drop;
    }
    if (plan_.drop_prob > 0.0 && rng_.nextBernoulli(plan_.drop_prob)) {
        ++dropped_;
        obs::count(obs::Counter::CellsDroppedByFaults);
        return Verdict::Drop;
    }
    if (plan_.corrupt_prob > 0.0 && rng_.nextBernoulli(plan_.corrupt_prob)) {
        ++corrupted_;
        obs::count(obs::Counter::CellsCorrupted);
        return Verdict::Corrupt;
    }
    return Verdict::Deliver;
}

}  // namespace an2::fault
