/**
 * @file
 * LAN-scale CBR path restoration (the network-level complement of the
 * single-switch CbrRepairEngine).
 *
 * The AN2 paper's reservation model pins a CBR flow to one path: each
 * switch on it holds frame-schedule slots, each link carries an
 * admission commitment. When a link dies, PR 5 gave VBR traffic ECMP
 * failover but left CBR flows stranded — their cells die at the dead
 * link while every switch keeps burning schedule slots on them. The
 * PathRestorer closes that gap:
 *
 *  1. On link death it revokes, hop by hop, every CBR reservation whose
 *     path crosses the dead link (frame slots return to the
 *     Slepian-Duguid schedules; admission commitments are released; the
 *     source is muted so injection pauses cleanly).
 *  2. It then re-admits each flow end-to-end on a freshly routed path,
 *     under a deterministic retry policy: seeded exponential backoff
 *     with a cap, and a per-flow retry budget. Flows end in one of
 *     three terminal states — Restored (full rate on a live path),
 *     Degraded (re-admitted at a reduced rate when the budget runs out
 *     but capacity exists), or Abandoned (purged everywhere).
 *
 * All decisions are pure functions of (policy seed, flow id, attempt),
 * so restoration replays byte-identically on the serial and sharded
 * engines. A slot-conservation ledger checks that every revoked
 * cells/frame slot is re-placed, shed, or still pending
 * (InvariantChecker::checkRestorationConservation).
 */
#ifndef AN2_FAULT_RESTORATION_H
#define AN2_FAULT_RESTORATION_H

#include <cstdint>
#include <map>

#include "an2/base/types.h"
#include "an2/obs/latency.h"

namespace an2::topo {
class Lan;
}  // namespace an2::topo

namespace an2::fault {

/** Retry/timeout/backoff knobs for path restoration. */
struct RestorePolicy
{
    /** Failed re-admission attempts allowed before the flow falls to a
        degraded rate or is abandoned. */
    int retry_budget = 8;

    /** Backoff after the n-th failed attempt is
        min(base << n, max) + jitter(seed, flow, n), in slots. */
    SlotTime base_backoff_slots = 16;
    SlotTime max_backoff_slots = 2048;

    /** Jitter amplitude in slots (a seeded draw in [0, amplitude)),
        de-synchronizing retries of flows hit by the same fault. */
    SlotTime jitter_slots = 8;

    /** Permit degraded re-admission (largest admissible rate >= 1) when
        the budget runs out; false abandons directly. */
    bool allow_degraded = true;

    /** Seed of the jitter stream. */
    uint64_t seed = 0;
};

/** Lifecycle of one restoration episode. */
enum class RestoreState : uint8_t {
    Pending = 0,  ///< revoked, awaiting re-admission
    Restored,     ///< re-admitted at full rate
    Degraded,     ///< re-admitted at a reduced rate
    Abandoned,    ///< retry budget exhausted with no usable path
};

/** Display name of a restore state ("pending", "restored", ...). */
const char* restoreStateName(RestoreState s);

/** Aggregate restoration telemetry. */
struct RestoreStats
{
    int64_t episodes = 0;   ///< restoration episodes started
    int64_t restored = 0;   ///< episodes ending Restored
    int64_t degraded = 0;   ///< episodes ending Degraded
    int64_t abandoned = 0;  ///< episodes ending Abandoned
    int64_t retries = 0;    ///< re-admission attempts made

    // Slot-conservation ledger (cells/frame units).
    int64_t slots_revoked = 0;   ///< reservation slots revoked by faults
    int64_t slots_replaced = 0;  ///< slots re-placed on live paths
    int64_t slots_shed = 0;      ///< slots given up (degraded/abandoned)

    /** Fault-to-terminal-state latency of successful episodes
        (Restored or Degraded), in slots. */
    obs::LogHistogram latency_slots;
};

/**
 * Drives CBR path restoration for one Lan. The Lan owns the restorer
 * (Lan::enableRestoration) and calls onLinkDown() from its fault
 * dispatch and runPending() between run segments; nextActionSlot()
 * tells the run loop when to stop next.
 */
class PathRestorer
{
  public:
    PathRestorer(topo::Lan& lan, const RestorePolicy& policy);

    /** A directed link died at `slot`: revoke every CBR flow crossing
        it and open (or reopen) a restoration episode per flow. */
    void onLinkDown(int link, SlotTime slot);

    /** Earliest slot at which a pending episode wants a retry, or -1
        when nothing is pending. */
    SlotTime nextActionSlot() const;

    /** Attempt re-admission for every episode due at `now_slot`. */
    void runPending(SlotTime now_slot);

    const RestoreStats& stats() const { return stats_; }

    /** Episodes still pending re-admission. */
    int pendingCount() const { return pending_; }

    /** True when the flow has (or had) a restoration episode. */
    bool tracked(FlowId flow) const;

    /** Episode state of a tracked flow; fatal for untracked flows. */
    RestoreState state(FlowId flow) const;

    /** Failed attempts consumed by a tracked flow's episode. */
    int attempts(FlowId flow) const;

    /** Deterministic backoff delay after failed attempt `attempt`
        (exposed so tests can pin the schedule). */
    SlotTime backoffDelay(FlowId flow, int attempt) const;

  private:
    struct Episode
    {
        SlotTime down_slot = 0;  ///< when the fault revoked the path
        SlotTime next_try = 0;   ///< next re-admission attempt slot
        int attempts = 0;        ///< failed attempts so far
        int revoked_k = 0;       ///< cells/frame revoked by the fault
        RestoreState state = RestoreState::Pending;
    };

    /** One re-admission attempt; moves the episode to a terminal state
        or reschedules it. */
    void attemptRestore(FlowId flow, Episode& ep, SlotTime now_slot);

    /** Close an episode into a terminal state, settling the ledger. */
    void finish(FlowId flow, Episode& ep, RestoreState state,
                int admitted_k, SlotTime now_slot);

    topo::Lan& lan_;
    RestorePolicy policy_;
    RestoreStats stats_;
    /** Ordered by flow id, so every pass over pending episodes is in
        deterministic flow order on every engine. */
    std::map<FlowId, Episode> episodes_;
    int pending_ = 0;
    int64_t pending_slots_ = 0;  ///< revoked_k total of pending episodes
};

}  // namespace an2::fault

#endif  // AN2_FAULT_RESTORATION_H
