/**
 * @file
 * Always-on runtime invariants for the switch models.
 *
 * AN2_CHECK is the assertion the fault machinery leans on: like
 * AN2_ASSERT it stays active in Release builds (the test and CI
 * configurations run optimized), and it can be compiled out wholesale
 * with -DAN2_DISABLE_CHECKS for production-style builds. Every switch
 * implementation carries an InvariantChecker and verifies, once per
 * slot:
 *
 *  - cell conservation: accepted == departed + buffered, using O(1)
 *    running totals (no per-slot scan beyond the bufferedCells() the
 *    simulator already pays for). Dropped cells never enter the buffers
 *    and are ledgered separately; the simulator's end-of-run identity
 *    injected == delivered + buffered + all-losses covers them;
 *  - matching legality against the live-port masks: no crossbar pairing
 *    touches a port the fault injector has killed;
 *  - reservation consistency: after any CBR repair operation, the frame
 *    schedule still realizes the reservation matrix exactly.
 *
 * The checker performs no heap allocation on its success paths, so it is
 * safe inside the zero-allocation slot loop (pinned by zero_alloc_test).
 */
#ifndef AN2_FAULT_INVARIANTS_H
#define AN2_FAULT_INVARIANTS_H

#include <cstdint>

#include "an2/base/error.h"
#include "an2/base/types.h"

#ifdef AN2_DISABLE_CHECKS
#define AN2_CHECK(cond, msg) ((void)0)
#else
/** Release-mode invariant check; see file comment. */
#define AN2_CHECK(cond, msg) AN2_ASSERT(cond, msg)
#endif

namespace an2 {

class Matching;
class RequestMatrix;
class FrameSchedule;
class ReservationMatrix;

namespace fault {

/** Per-switch invariant state and the check entry points. */
class InvariantChecker
{
  public:
    // ---- O(1) conservation ledger (maintained by the switch) ----------

    /** A cell entered the switch's buffers. */
    void noteAccepted() { ++accepted_; }

    /** A cell was discarded at ingress (dead port, HEC failure, buffer
        policy) — instead of, never in addition to, being accepted. */
    void noteDropped() { ++dropped_; }

    /** `k` cells left the switch this slot. */
    void noteDeparted(int64_t k) { departed_ += k; }

    int64_t accepted() const { return accepted_; }
    int64_t dropped() const { return dropped_; }
    int64_t departed() const { return departed_; }

    /** Verify accepted == departed + buffered. */
    void checkConservation(int64_t buffered, const char* who) const
    {
        AN2_CHECK(accepted_ == departed_ + buffered,
                  who << ": cell conservation violated: " << accepted_
                      << " accepted != " << departed_ << " departed + "
                      << buffered << " buffered (" << dropped_
                      << " dropped at ingress)");
    }

    // ---- structural checks (static; called where the state lives) ----

    /**
     * Every pairing of `m` must be a visible request in `req`. Because
     * RequestMatrix hides requests touching dead ports, this is matching
     * legality *against the live masks*: a matcher that granted to a
     * killed port fails here.
     */
    static void checkMatchingLive(const Matching& m,
                                  const RequestMatrix& req, const char* who);

    /**
     * No pairing of `m` touches a port marked dead in the given
     * bitmasks (words as in wordset, null mask = all live).
     */
    static void checkMatchingAvoidsDead(const Matching& m,
                                        const uint64_t* dead_in,
                                        const uint64_t* dead_out,
                                        const char* who);

    /** The frame schedule realizes the reservation matrix exactly. */
    static void checkScheduleRealizes(const FrameSchedule& sched,
                                      const ReservationMatrix& res,
                                      const char* who);

    /**
     * Restoration slot conservation: every revoked cells/frame slot must
     * be re-placed on a live path, shed (degraded re-admission or an
     * abandoned flow), or still pending re-admission — no reservation
     * bandwidth silently leaks during path restoration.
     */
    static void checkRestorationConservation(int64_t revoked,
                                             int64_t replaced, int64_t shed,
                                             int64_t pending,
                                             const char* who)
    {
        AN2_CHECK(revoked == replaced + shed + pending,
                  who << ": revoked-slot conservation violated: " << revoked
                      << " revoked != " << replaced << " replaced + " << shed
                      << " shed + " << pending << " pending");
    }

  private:
    int64_t accepted_ = 0;
    int64_t departed_ = 0;
    int64_t dropped_ = 0;
};

}  // namespace fault
}  // namespace an2

#endif  // AN2_FAULT_INVARIANTS_H
