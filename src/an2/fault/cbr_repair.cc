#include "an2/fault/cbr_repair.h"

#include "an2/fault/invariants.h"
#include "an2/obs/recorder.h"

namespace an2::fault {

CbrRepairEngine::CbrRepairEngine(SlepianDuguidScheduler& sched,
                                 AdmissionController& adm, int n,
                                 int ops_per_slot)
    : sched_(sched), adm_(adm), n_(n), ops_per_slot_(ops_per_slot),
      in_live_(static_cast<size_t>(n), 1),
      out_live_(static_cast<size_t>(n), 1), path_(2, 0)
{
    AN2_REQUIRE(n > 0, "repair engine needs a positive switch size");
    AN2_REQUIRE(ops_per_slot >= 1, "repair budget must be >= 1 op/slot");
    if (adm_.numLinks() == 0) {
        for (int l = 0; l < 2 * n; ++l)
            adm_.addLink();
    }
    AN2_REQUIRE(adm_.numLinks() >= 2 * n,
                "admission database has " << adm_.numLinks()
                                          << " links; need 2n = " << 2 * n);
}

bool
CbrRepairEngine::book(PortId i, PortId j, int k)
{
    AN2_REQUIRE(i >= 0 && i < n_ && j >= 0 && j < n_,
                "booking (" << i << "," << j << ") outside the " << n_
                            << "-port switch");
    AN2_REQUIRE(k > 0, "booking must reserve at least one cell/frame");
    AN2_REQUIRE(portsLive({i, j, k, false, false}),
                "cannot book through a dead port (" << i << "," << j << ")");
    path_[0] = inputLink(i);
    path_[1] = outputLink(j);
    if (!adm_.admit(path_, k))
        return false;
    bool placed = sched_.addReservation(i, j, k);
    AN2_ASSERT(placed, "admitted reservation (" << i << "," << j << "," << k
                                                << ") failed to place");
    bookings_.push_back({i, j, k, true, false});
    InvariantChecker::checkScheduleRealizes(sched_.schedule(),
                                            sched_.reservations(),
                                            "CbrRepairEngine::book");
    return true;
}

void
CbrRepairEngine::revokeThrough(bool is_input, PortId port)
{
    bool touched = false;
    for (Booking& b : bookings_) {
        if (!b.placed || (is_input ? b.in : b.out) != port)
            continue;
        sched_.removeReservation(b.in, b.out, b.k);
        path_[0] = inputLink(b.in);
        path_[1] = outputLink(b.out);
        adm_.release(path_, b.k);
        b.placed = false;
        b.rebook_failed = false;
        ++stats_.revoked;
        obs::count(obs::Counter::CbrReservationsRevoked);
        touched = true;
    }
    if (touched) {
        ++stats_.repair_events;
        InvariantChecker::checkScheduleRealizes(
            sched_.schedule(), sched_.reservations(),
            "CbrRepairEngine::revokeThrough");
    }
}

void
CbrRepairEngine::onPortDown(bool is_input, PortId port, SlotTime)
{
    (is_input ? in_live_ : out_live_)[static_cast<size_t>(port)] = 0;
    // Revocation is immediate: the control processor reacts within the
    // slot, so the schedule never pairs a dead port.
    revokeThrough(is_input, port);
}

void
CbrRepairEngine::onPortUp(bool is_input, PortId port, SlotTime slot)
{
    (is_input ? in_live_ : out_live_)[static_cast<size_t>(port)] = 1;
    bool work = false;
    for (Booking& b : bookings_) {
        if (b.placed || !portsLive(b))
            continue;
        b.rebook_failed = false;  // capacity may have freed up; retry
        work = true;
    }
    if (work && !pending_) {
        pending_ = true;
        repair_started_ = slot;
        ++stats_.repair_events;
    }
}

void
CbrRepairEngine::slotWork(SlotTime slot)
{
    if (!pending_)
        return;
    int ops = 0;
    bool remaining = false;
    for (Booking& b : bookings_) {
        if (b.placed || b.rebook_failed || !portsLive(b))
            continue;
        if (ops >= ops_per_slot_) {
            remaining = true;
            break;
        }
        ++ops;
        path_[0] = inputLink(b.in);
        path_[1] = outputLink(b.out);
        if (!adm_.admit(path_, b.k)) {
            b.rebook_failed = true;
            ++stats_.rebook_failed;
            continue;
        }
        bool placed = sched_.addReservation(b.in, b.out, b.k);
        AN2_ASSERT(placed, "re-admitted reservation failed to place");
        b.placed = true;
        ++stats_.rebooked;
        obs::count(obs::Counter::CbrReservationsRebooked);
    }
    if (ops > 0)
        InvariantChecker::checkScheduleRealizes(sched_.schedule(),
                                                sched_.reservations(),
                                                "CbrRepairEngine::slotWork");
    if (!remaining) {
        pending_ = false;
        stats_.last_repair_latency = slot - repair_started_ + 1;
        if (stats_.last_repair_latency > stats_.max_repair_latency)
            stats_.max_repair_latency = stats_.last_repair_latency;
    }
}

int
CbrRepairEngine::placedBookings() const
{
    int placed = 0;
    for (const Booking& b : bookings_)
        placed += b.placed ? 1 : 0;
    return placed;
}

bool
CbrRepairEngine::fullyRepaired() const
{
    for (const Booking& b : bookings_)
        if (!b.placed && portsLive(b) && !b.rebook_failed)
            return false;
    return true;
}

}  // namespace an2::fault
