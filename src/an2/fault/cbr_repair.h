/**
 * @file
 * CBR schedule repair under port failures (graceful degradation of the
 * paper's §4 reserved-traffic machinery).
 *
 * The repair engine owns the control-plane view of a switch's CBR
 * bookings: each booking is a (input, output, cells/frame) reservation
 * admitted through the AdmissionController (input link i, output link
 * n + j) and placed into the frame schedule by the incremental
 * Slepian-Duguid scheduler.
 *
 * On a port-down event every booking crossing that port is revoked
 * immediately — removeReservation() plus admission release — so the
 * frame schedule never pairs a dead port and the freed slots fall to
 * VBR traffic. On port-up the revoked bookings are re-placed
 * incrementally (addReservation swap chains), at most `ops_per_slot`
 * placements per slot to model a bounded control processor; the engine
 * measures the repair latency in slots from the revival to the last
 * re-placement. Every still-feasible reservation is re-placed; ones
 * whose admission capacity was consumed in the meantime are counted as
 * failed.
 *
 * After every mutation the engine checks (AN2_CHECK) that the frame
 * schedule still realizes the reservation matrix exactly.
 */
#ifndef AN2_FAULT_CBR_REPAIR_H
#define AN2_FAULT_CBR_REPAIR_H

#include <cstdint>
#include <vector>

#include "an2/base/types.h"
#include "an2/cbr/admission.h"
#include "an2/cbr/slepian_duguid.h"
#include "an2/fault/injector.h"

namespace an2::fault {

/** Counters the repair engine accumulates across a run. */
struct RepairStats
{
    /** Bookings revoked by port failures. */
    int64_t revoked = 0;

    /** Bookings successfully re-placed after revivals. */
    int64_t rebooked = 0;

    /** Re-placement attempts rejected by admission control. */
    int64_t rebook_failed = 0;

    /** Port-down/up events that touched at least one booking. */
    int64_t repair_events = 0;

    /** Latency in slots of the most recent completed repair (revival to
        last re-placement), or -1 when no repair has completed. */
    SlotTime last_repair_latency = -1;

    /** Largest completed repair latency. */
    SlotTime max_repair_latency = -1;
};

/** Revokes and re-places CBR reservations as ports fail and revive. */
class CbrRepairEngine final : public FaultListener
{
  public:
    /**
     * @param sched The switch's incremental frame scheduler.
     * @param adm Admission database. If empty, 2n links are registered
     *        (input link i, output link n + j); otherwise it must
     *        already hold at least 2n links with that layout.
     * @param n Switch size.
     * @param ops_per_slot Re-placements performed per slot during
     *        repair (the control-processor budget; >= 1).
     */
    CbrRepairEngine(SlepianDuguidScheduler& sched, AdmissionController& adm,
                    int n, int ops_per_slot = 4);

    /**
     * Admit and place a booking of k cells/frame from i to j.
     * @return false when admission control rejects it (no state change).
     */
    bool book(PortId i, PortId j, int k);

    // ---- FaultListener ------------------------------------------------

    void onPortDown(bool is_input, PortId port, SlotTime slot) override;
    void onPortUp(bool is_input, PortId port, SlotTime slot) override;
    void slotWork(SlotTime slot) override;

    // ---- introspection ------------------------------------------------

    const RepairStats& stats() const { return stats_; }

    /** Registered bookings (placed or revoked). */
    int bookings() const { return static_cast<int>(bookings_.size()); }

    /** Bookings currently placed in the schedule. */
    int placedBookings() const;

    /** True when every booking whose ports are live is placed. */
    bool fullyRepaired() const;

    /** True when a repair is in progress (revoked feasible bookings
        remain to be re-placed). */
    bool repairPending() const { return pending_; }

    LinkId inputLink(PortId i) const { return i; }
    LinkId outputLink(PortId j) const { return n_ + j; }

  private:
    struct Booking
    {
        PortId in = 0;
        PortId out = 0;
        int k = 0;
        bool placed = false;
        bool rebook_failed = false;  ///< admission refused; don't retry
                                     ///< until the next port event
    };

    bool portsLive(const Booking& b) const
    {
        return in_live_[static_cast<size_t>(b.in)] != 0 &&
               out_live_[static_cast<size_t>(b.out)] != 0;
    }

    void revokeThrough(bool is_input, PortId port);

    SlepianDuguidScheduler& sched_;
    AdmissionController& adm_;
    int n_;
    int ops_per_slot_;
    std::vector<Booking> bookings_;
    std::vector<uint8_t> in_live_;
    std::vector<uint8_t> out_live_;
    std::vector<LinkId> path_;  ///< scratch {in link, out link}
    bool pending_ = false;
    SlotTime repair_started_ = -1;
    RepairStats stats_;
};

}  // namespace an2::fault

#endif  // AN2_FAULT_CBR_REPAIR_H
