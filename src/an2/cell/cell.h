/**
 * @file
 * The unit of data transfer: a fixed-length ATM-style cell (paper §2.3).
 *
 * Cells in an2sim carry only metadata; payload contents are irrelevant to
 * scheduling behaviour and are not modeled. A cell is stamped with its
 * arrival time(s) so that queueing delay can be measured at departure.
 */
#ifndef AN2_CELL_CELL_H
#define AN2_CELL_CELL_H

#include <cstdint>

#include "an2/base/types.h"

namespace an2 {

/**
 * One fixed-length cell. Plain value type; cheap to copy.
 *
 * `seq` is the per-flow sequence number assigned at injection; it is the
 * hook used by tests to assert the switch's no-reordering guarantee
 * (cells within a flow are never re-ordered, paper §3.1).
 */
struct Cell
{
    /** Flow this cell belongs to (routing key, paper §2). */
    FlowId flow = kNoFlow;

    /** Input port at the current switch. */
    PortId input = kNoPort;

    /** Output port at the current switch (from the routing table). */
    PortId output = kNoPort;

    /** Traffic class (CBR cells ride the frame schedule; VBR rides PIM). */
    TrafficClass cls = TrafficClass::VBR;

    /** Per-flow sequence number assigned by the source. */
    int64_t seq = 0;

    /** Slot in which the cell arrived at the current switch. */
    SlotTime arrival_slot = 0;

    /** Slot in which the cell was injected at its source. */
    SlotTime inject_slot = 0;

    /** Wall-clock injection time (drifting-clock network layer only). */
    PicoTime inject_ps = 0;

    /**
     * Wall time of the end of the frame in which the cell departed its
     * source controller: T(c, s_0) of Appendix B. Set at injection.
     */
    PicoTime src_frame_end_ps = 0;

    /**
     * Wall time of the end of the frame in which the cell most recently
     * departed a node: T(c, s_n). Updated at every hop; the sink computes
     * the adjusted latency L = frame_end_ps - src_frame_end_ps.
     */
    PicoTime frame_end_ps = 0;

    /** Switch hops traversed so far (network layer). */
    int hops = 0;
};

}  // namespace an2

#endif  // AN2_CELL_CELL_H
