/**
 * @file
 * Flow descriptors and the per-switch flow/routing table.
 *
 * Routing in AN2 is flow-based (paper §2): every cell carries a flow
 * identifier, and a routing table at each switch maps the flow to an
 * output port. All cells of a flow take the same path, which is what lets
 * the switch keep per-flow FIFO order without head-of-line blocking.
 */
#ifndef AN2_CELL_FLOW_H
#define AN2_CELL_FLOW_H

#include <vector>

#include "an2/base/error.h"
#include "an2/base/types.h"

namespace an2 {

/** Static description of one flow through a single switch. */
struct Flow
{
    FlowId id = kNoFlow;

    /** Switch input port the flow's cells arrive on. */
    PortId input = kNoPort;

    /** Switch output port the flow is routed to. */
    PortId output = kNoPort;

    /** CBR (reserved) or VBR (datagram). */
    TrafficClass cls = TrafficClass::VBR;

    /** For CBR flows: reserved cells per frame; 0 for VBR. */
    int cells_per_frame = 0;
};

/**
 * Registry of flows known to one switch: the simulator's stand-in for the
 * routing table built during network configuration.
 */
class FlowTable
{
  public:
    /**
     * Register a flow and return its id (assigned sequentially).
     *
     * @param input Input port.
     * @param output Output port.
     * @param cls Traffic class.
     * @param cells_per_frame Reservation for CBR flows (ignored for VBR).
     */
    FlowId addFlow(PortId input, PortId output,
                   TrafficClass cls = TrafficClass::VBR,
                   int cells_per_frame = 0);

    /** Look up a flow; the id must have been returned by addFlow. */
    const Flow& flow(FlowId id) const;

    /** Number of registered flows. */
    int size() const { return static_cast<int>(flows_.size()); }

    /** All flows, in id order. */
    const std::vector<Flow>& flows() const { return flows_; }

  private:
    std::vector<Flow> flows_;
};

}  // namespace an2

#endif  // AN2_CELL_FLOW_H
