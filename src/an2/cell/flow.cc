#include "an2/cell/flow.h"

namespace an2 {

FlowId
FlowTable::addFlow(PortId input, PortId output, TrafficClass cls,
                   int cells_per_frame)
{
    AN2_REQUIRE(input >= 0, "flow input port must be non-negative");
    AN2_REQUIRE(output >= 0, "flow output port must be non-negative");
    AN2_REQUIRE(cells_per_frame >= 0, "reservation must be non-negative");
    Flow f;
    f.id = static_cast<FlowId>(flows_.size());
    f.input = input;
    f.output = output;
    f.cls = cls;
    f.cells_per_frame = cls == TrafficClass::CBR ? cells_per_frame : 0;
    flows_.push_back(f);
    return f.id;
}

const Flow&
FlowTable::flow(FlowId id) const
{
    AN2_REQUIRE(id >= 0 && id < size(), "unknown flow id " << id);
    return flows_[static_cast<size_t>(id)];
}

}  // namespace an2
