/**
 * @file
 * A minimal dense row-major matrix used for request matrices, reservation
 * matrices, and allocation tables. Header-only.
 */
#ifndef AN2_BASE_MATRIX_H
#define AN2_BASE_MATRIX_H

#include <vector>

#include "an2/base/error.h"

namespace an2 {

/** Dense row-major matrix of scalar T with bounds-checked access. */
template <typename T>
class Matrix
{
  public:
    Matrix() = default;

    /** rows x cols matrix, all elements initialized to `fill`. */
    Matrix(int rows, int cols, T fill = T{})
        : rows_(checkDim(rows)), cols_(checkDim(cols)),
          data_(static_cast<size_t>(rows_) * static_cast<size_t>(cols_),
                fill)
    {
    }

    int rows() const { return rows_; }
    int cols() const { return cols_; }

    T&
    at(int r, int c)
    {
        checkIndex(r, c);
        return data_[static_cast<size_t>(r) * static_cast<size_t>(cols_) +
                     static_cast<size_t>(c)];
    }

    const T&
    at(int r, int c) const
    {
        checkIndex(r, c);
        return data_[static_cast<size_t>(r) * static_cast<size_t>(cols_) +
                     static_cast<size_t>(c)];
    }

    T& operator()(int r, int c) { return at(r, c); }
    const T& operator()(int r, int c) const { return at(r, c); }

    /** Set every element to `value`. */
    void
    fill(T value)
    {
        for (auto& x : data_)
            x = value;
    }

    /** Sum of row r. */
    T
    rowSum(int r) const
    {
        T s{};
        for (int c = 0; c < cols_; ++c)
            s += at(r, c);
        return s;
    }

    /** Sum of column c. */
    T
    colSum(int c) const
    {
        T s{};
        for (int r = 0; r < rows_; ++r)
            s += at(r, c);
        return s;
    }

    /** Sum of all elements. */
    T
    total() const
    {
        T s{};
        for (const auto& x : data_)
            s += x;
        return s;
    }

    bool
    operator==(const Matrix& other) const
    {
        return rows_ == other.rows_ && cols_ == other.cols_ &&
               data_ == other.data_;
    }

  private:
    static int
    checkDim(int d)
    {
        AN2_REQUIRE(d >= 0, "negative matrix dimension " << d);
        return d;
    }

    void
    checkIndex(int r, int c) const
    {
        AN2_ASSERT(r >= 0 && r < rows_ && c >= 0 && c < cols_,
                   "matrix index (" << r << "," << c << ") out of "
                                    << rows_ << "x" << cols_);
    }

    int rows_ = 0;
    int cols_ = 0;
    std::vector<T> data_;
};

}  // namespace an2

#endif  // AN2_BASE_MATRIX_H
