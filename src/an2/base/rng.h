/**
 * @file
 * Deterministic pseudo-random number generation for an2sim.
 *
 * All randomness in the library flows through the Rng interface so that
 * (i) every simulation is reproducible bit-for-bit from its seed and
 * (ii) the PRNG-quality insensitivity claim of paper §3.3 ("the number of
 * iterations needed by parallel iterative matching is relatively
 * insensitive to the technique used to approximate randomness") can be
 * tested by swapping in a deliberately weak generator.
 */
#ifndef AN2_BASE_RNG_H
#define AN2_BASE_RNG_H

#include <cstdint>
#include <memory>
#include <vector>

#include "an2/base/error.h"

namespace an2 {

/**
 * Random source abstraction with convenience distributions.
 *
 * Subclasses supply raw 64-bit output; the non-virtual helpers implement
 * the distributions the schedulers need (bounded integers, Bernoulli
 * trials, weighted choice, shuffles).
 */
class Rng
{
  public:
    virtual ~Rng() = default;

    /** Next raw 64 bits from the underlying engine. */
    virtual uint64_t next64() = 0;

    /** Clone this generator, including its current state. */
    virtual std::unique_ptr<Rng> clone() const = 0;

    /** Uniform integer in [0, bound); bound must be positive. */
    uint64_t
    nextBelow(uint64_t bound)
    {
        AN2_ASSERT(bound > 0, "nextBelow bound must be positive");
        // Debiased multiply-shift (Lemire). The rejection loop terminates
        // quickly for the small bounds used by the schedulers.
        uint64_t threshold = (-bound) % bound;
        while (true) {
            uint64_t r = next64();
            __uint128_t m = static_cast<__uint128_t>(r) * bound;
            if (static_cast<uint64_t>(m) >= threshold)
                return static_cast<uint64_t>(m >> 64);
        }
    }

    /** Uniform integer in [lo, hi] inclusive. */
    int64_t
    nextInRange(int64_t lo, int64_t hi)
    {
        AN2_ASSERT(lo <= hi, "empty range");
        return lo + static_cast<int64_t>(
                        nextBelow(static_cast<uint64_t>(hi - lo) + 1));
    }

    /** Uniform double in [0, 1). */
    double
    nextDouble()
    {
        return static_cast<double>(next64() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli trial with success probability p. */
    bool
    nextBernoulli(double p)
    {
        if (p <= 0.0)
            return false;
        if (p >= 1.0)
            return true;
        return nextDouble() < p;
    }

    /**
     * Choose an index in [0, weights.size()) with probability proportional
     * to weights[i]. Weights must be non-negative with a positive sum.
     */
    size_t
    pickWeighted(const std::vector<double>& weights)
    {
        double total = 0.0;
        for (double w : weights) {
            AN2_ASSERT(w >= 0.0, "negative weight");
            total += w;
        }
        AN2_REQUIRE(total > 0.0, "pickWeighted needs a positive total");
        double x = nextDouble() * total;
        double acc = 0.0;
        for (size_t i = 0; i < weights.size(); ++i) {
            acc += weights[i];
            if (x < acc)
                return i;
        }
        return weights.size() - 1;  // floating-point edge; pick last
    }

    /** Integer-weighted choice; weights must have a positive sum. */
    size_t
    pickWeighted(const std::vector<int>& weights)
    {
        int64_t total = 0;
        for (int w : weights) {
            AN2_ASSERT(w >= 0, "negative weight");
            total += w;
        }
        AN2_REQUIRE(total > 0, "pickWeighted needs a positive total");
        auto x = static_cast<int64_t>(nextBelow(static_cast<uint64_t>(total)));
        for (size_t i = 0; i < weights.size(); ++i) {
            x -= weights[i];
            if (x < 0)
                return i;
        }
        return weights.size() - 1;
    }

    /** Fisher-Yates shuffle. */
    template <typename T>
    void
    shuffle(std::vector<T>& v)
    {
        for (size_t i = v.size(); i > 1; --i) {
            size_t j = nextBelow(i);
            std::swap(v[i - 1], v[j]);
        }
    }
};

/**
 * xoshiro256** by Blackman & Vigna: the library's default engine. Fast,
 * high quality, and trivially seedable via splitmix64.
 */
class Xoshiro256 final : public Rng
{
  public:
    /** Seed deterministically; distinct seeds give independent streams. */
    explicit Xoshiro256(uint64_t seed);

    uint64_t next64() override;
    std::unique_ptr<Rng> clone() const override;

  private:
    uint64_t s_[4];
};

/**
 * A deliberately weak 16-bit-state linear congruential generator, used only
 * by the §3.3 PRNG-sensitivity ablation. Do not use elsewhere.
 */
class WeakLcg final : public Rng
{
  public:
    explicit WeakLcg(uint64_t seed) : state_(static_cast<uint16_t>(seed | 1)) {}

    uint64_t next64() override;
    std::unique_ptr<Rng> clone() const override;

  private:
    uint16_t state_;
};

/** splitmix64 step; used for seeding and as a cheap hash. */
uint64_t splitmix64(uint64_t& state);

}  // namespace an2

#endif  // AN2_BASE_RNG_H
