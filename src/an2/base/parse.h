/**
 * @file
 * Strict text-to-number parsing for CLI flags and fault-plan specs.
 *
 * The C library's atoi/strtod silently accept trailing garbage ("0.9x")
 * or turn unparseable input into 0, which is how a mistyped flag value
 * becomes a silent zero-thread or zero-load run. These helpers consume
 * the ENTIRE token or fail, and report failure instead of guessing.
 */
#ifndef AN2_BASE_PARSE_H
#define AN2_BASE_PARSE_H

#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <string>

namespace an2 {

/** Parse a whole string as a signed 64-bit decimal integer. */
inline bool
parseInt64(const std::string& text, int64_t& out)
{
    if (text.empty())
        return false;
    errno = 0;
    char* end = nullptr;
    long long v = std::strtoll(text.c_str(), &end, 10);
    if (errno == ERANGE || end != text.c_str() + text.size())
        return false;
    out = static_cast<int64_t>(v);
    return true;
}

/** Parse a whole string as an unsigned 64-bit decimal integer. */
inline bool
parseUint64(const std::string& text, uint64_t& out)
{
    if (text.empty() || text[0] == '-' || text[0] == '+')
        return false;
    errno = 0;
    char* end = nullptr;
    unsigned long long v = std::strtoull(text.c_str(), &end, 10);
    if (errno == ERANGE || end != text.c_str() + text.size())
        return false;
    out = static_cast<uint64_t>(v);
    return true;
}

/** Parse a whole string as an int (rejects values outside int range). */
inline bool
parseInt(const std::string& text, int& out)
{
    int64_t v = 0;
    if (!parseInt64(text, v) || v < INT32_MIN || v > INT32_MAX)
        return false;
    out = static_cast<int>(v);
    return true;
}

/** Parse a whole string as a finite double. */
inline bool
parseDouble(const std::string& text, double& out)
{
    if (text.empty())
        return false;
    errno = 0;
    char* end = nullptr;
    double v = std::strtod(text.c_str(), &end);
    if (errno == ERANGE || end != text.c_str() + text.size())
        return false;
    // NaN/Inf spellings parse via strtod but are never valid knob values.
    if (!(v == v) || v > 1e300 || v < -1e300)
        return false;
    out = v;
    return true;
}

}  // namespace an2

#endif  // AN2_BASE_PARSE_H
