/**
 * @file
 * A minimal FIFO ring buffer over contiguous storage.
 *
 * std::deque is the natural fit for the round-robin rotation pattern
 * (pop_front + push_back), but libstdc++'s deque allocates and frees
 * 512-byte blocks as the logical window slides — steady-state rotation
 * allocates every ~64 operations. RingQueue keeps a power-of-two vector
 * and wraps indices, so rotation at constant occupancy never touches the
 * heap; it grows (doubling) only when full.
 */
#ifndef AN2_BASE_RING_H
#define AN2_BASE_RING_H

#include <cstddef>
#include <utility>
#include <vector>

#include "an2/base/error.h"

namespace an2 {

/** FIFO queue with amortized-O(1), steady-state allocation-free ops. */
template <typename T>
class RingQueue
{
  public:
    RingQueue() = default;

    bool empty() const { return size_ == 0; }
    size_t size() const { return size_; }

    const T& front() const
    {
        AN2_ASSERT(size_ > 0, "front() on empty RingQueue");
        return buf_[head_];
    }

    const T& back() const
    {
        AN2_ASSERT(size_ > 0, "back() on empty RingQueue");
        return buf_[(head_ + size_ - 1) & (buf_.size() - 1)];
    }

    void push_back(const T& value)
    {
        if (size_ == buf_.size())
            grow();
        buf_[(head_ + size_) & (buf_.size() - 1)] = value;
        ++size_;
    }

    void pop_front()
    {
        AN2_ASSERT(size_ > 0, "pop_front() on empty RingQueue");
        head_ = (head_ + 1) & (buf_.size() - 1);
        --size_;
    }

    void clear()
    {
        head_ = 0;
        size_ = 0;
    }

    /** Element i positions after the front (i < size()). */
    const T& at(size_t i) const
    {
        AN2_ASSERT(i < size_, "RingQueue index " << i << " out of range");
        return buf_[(head_ + i) & (buf_.size() - 1)];
    }

  private:
    void grow()
    {
        size_t new_cap = buf_.empty() ? 8 : buf_.size() * 2;
        std::vector<T> next(new_cap);
        for (size_t i = 0; i < size_; ++i)
            next[i] = std::move(buf_[(head_ + i) & (buf_.size() - 1)]);
        buf_ = std::move(next);
        head_ = 0;
    }

    std::vector<T> buf_;  ///< power-of-two capacity
    size_t head_ = 0;
    size_t size_ = 0;
};

}  // namespace an2

#endif  // AN2_BASE_RING_H
