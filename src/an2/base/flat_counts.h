/**
 * @file
 * Open-addressing counter map for small integer keys, built for the
 * metrics hot path: incrementing a key already present performs no heap
 * allocation (a std::map node per first-touched flow was the last
 * allocation left in the steady-state delivery path, see
 * tests/zero_alloc_test.cc).
 *
 * The table doubles only when a *new* key pushes the load factor past
 * 1/2, so sizing the constructor hint to the expected key population
 * keeps the whole run allocation-free after warmup.
 */
#ifndef AN2_BASE_FLAT_COUNTS_H
#define AN2_BASE_FLAT_COUNTS_H

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

#include "an2/base/error.h"

namespace an2 {

/** Linear-probe hash map from int32 keys to int64 counts. */
class FlatCounts
{
  public:
    /** @param expected_keys Sizing hint; the table starts with capacity
        for at least this many keys without rehashing. */
    explicit FlatCounts(int expected_keys = 64)
    {
        size_t cap = 16;
        while (cap < 2 * static_cast<size_t>(std::max(expected_keys, 1)))
            cap <<= 1;
        slots_.assign(cap, Slot{});
    }

    /** Count slot for `key`, inserted at zero when absent. */
    int64_t& operator[](int32_t key)
    {
        if (2 * (used_ + 1) > slots_.size())
            grow();
        Slot* s = find(slots_, key);
        if (!s->occupied) {
            s->occupied = true;
            s->key = key;
            ++used_;
        }
        return s->count;
    }

    /** Distinct keys present. */
    size_t size() const { return used_; }

    /** Key capacity before the next rehash. */
    size_t capacity() const { return slots_.size() / 2; }

    /** The contents as an ordered map (reporting; allocates). */
    std::map<int32_t, int64_t> toMap() const
    {
        std::map<int32_t, int64_t> out;
        for (const Slot& s : slots_)
            if (s.occupied)
                out[s.key] = s.count;
        return out;
    }

  private:
    struct Slot
    {
        int64_t count = 0;
        int32_t key = 0;
        bool occupied = false;
    };

    /** First slot holding `key`, or the empty slot where it belongs. */
    static Slot* find(std::vector<Slot>& slots, int32_t key)
    {
        // Fibonacci hashing spreads consecutive flow ids; capacity is a
        // power of two so the mask replaces a modulo.
        size_t mask = slots.size() - 1;
        size_t idx =
            (static_cast<uint64_t>(static_cast<uint32_t>(key)) *
             UINT64_C(0x9e3779b97f4a7c15) >> 32) & mask;
        while (slots[idx].occupied && slots[idx].key != key)
            idx = (idx + 1) & mask;
        return &slots[idx];
    }

    void grow()
    {
        std::vector<Slot> bigger(slots_.size() * 2);
        for (const Slot& s : slots_) {
            if (!s.occupied)
                continue;
            Slot* dst = find(bigger, s.key);
            *dst = s;
        }
        slots_.swap(bigger);
    }

    std::vector<Slot> slots_;
    size_t used_ = 0;
};

}  // namespace an2

#endif  // AN2_BASE_FLAT_COUNTS_H
