/**
 * @file
 * Statistics collection: running moments, histograms with quantiles, and
 * the fairness index used by the §5 experiments.
 */
#ifndef AN2_BASE_STATS_H
#define AN2_BASE_STATS_H

#include <cstdint>
#include <limits>
#include <vector>

#include "an2/base/error.h"

namespace an2 {

/**
 * Single-pass running moments (Welford's algorithm): count, mean,
 * variance, min, max. Numerically stable for long simulations.
 */
class RunningStats
{
  public:
    /** Record one sample. */
    void add(double x);

    /** Merge another accumulator into this one. */
    void merge(const RunningStats& other);

    /** Number of samples recorded. */
    int64_t count() const { return count_; }

    /** Sample mean; 0 when empty. */
    double mean() const { return count_ ? mean_ : 0.0; }

    /** Unbiased sample variance; 0 with fewer than two samples. */
    double variance() const;

    /** Sample standard deviation. */
    double stddev() const;

    /** Smallest sample; +inf when empty. */
    double min() const { return min_; }

    /** Largest sample; -inf when empty. */
    double max() const { return max_; }

    /** Sum of all samples. */
    double sum() const { return mean_ * static_cast<double>(count_); }

  private:
    int64_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/**
 * Fixed-width histogram over [0, binWidth * numBins) with an overflow
 * bucket, supporting approximate quantiles. Used for queueing-delay
 * distributions.
 */
class Histogram
{
  public:
    /**
     * @param bin_width Width of each bin (must be positive).
     * @param num_bins Number of regular bins (must be positive).
     */
    Histogram(double bin_width, int num_bins);

    /** Record a sample (negative samples clamp into bin 0). */
    void add(double x);

    /** Total samples recorded. */
    int64_t count() const { return total_; }

    /** Count in regular bin b. */
    int64_t binCount(int b) const;

    /**
     * Samples that fell beyond the last regular bin. A quantile that
     * lands among these is saturated — callers reporting tail statistics
     * should check this and widen the histogram when it is non-zero.
     */
    int64_t overflowCount() const { return overflow_; }

    /**
     * Approximate quantile (q in [0,1]) by linear interpolation within
     * the containing bin. A quantile landing in the overflow bucket
     * returns the bucket's lower bound (binWidth() * numBins()) — a
     * conservative *lower* bound on the true value, never an
     * interpolated guess; overflowCount() tells callers it happened.
     * Requires at least one sample.
     */
    double quantile(double q) const;

    /** Number of regular bins. */
    int numBins() const { return static_cast<int>(bins_.size()); }

    /** Width of each regular bin. */
    double binWidth() const { return bin_width_; }

  private:
    double bin_width_;
    std::vector<int64_t> bins_;
    int64_t overflow_ = 0;
    int64_t total_ = 0;
};

/**
 * Jain's fairness index over per-entity allocations:
 * (sum x)^2 / (n * sum x^2). 1.0 = perfectly fair; 1/n = maximally unfair.
 * Returns 1.0 for empty or all-zero input.
 */
double jainFairnessIndex(const std::vector<double>& allocations);

}  // namespace an2

#endif  // AN2_BASE_STATS_H
