#include "an2/base/rng.h"

namespace an2 {

uint64_t
splitmix64(uint64_t& state)
{
    uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

namespace {

inline uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

}  // namespace

Xoshiro256::Xoshiro256(uint64_t seed)
{
    uint64_t sm = seed;
    for (auto& word : s_)
        word = splitmix64(sm);
}

uint64_t
Xoshiro256::next64()
{
    const uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

std::unique_ptr<Rng>
Xoshiro256::clone() const
{
    return std::make_unique<Xoshiro256>(*this);
}

uint64_t
WeakLcg::next64()
{
    // 16-bit LCG (Numerical Recipes constants reduced mod 2^16). We
    // replicate the high byte across the word so that even consumers of
    // high-order bits see the weak stream.
    state_ = static_cast<uint16_t>(state_ * 25173u + 13849u);
    auto b = static_cast<uint64_t>(state_ >> 8);
    uint64_t out = 0;
    for (int i = 0; i < 8; ++i) {
        out = (out << 8) | b;
        state_ = static_cast<uint16_t>(state_ * 25173u + 13849u);
        b = static_cast<uint64_t>(state_ >> 8);
    }
    return out;
}

std::unique_ptr<Rng>
WeakLcg::clone() const
{
    return std::make_unique<WeakLcg>(*this);
}

}  // namespace an2
