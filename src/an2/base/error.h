/**
 * @file
 * Error-reporting utilities, in the spirit of gem5's panic()/fatal() split:
 * panic-class failures indicate internal invariant violations (library
 * bugs); fatal-class failures indicate invalid usage or configuration by
 * the caller. Both throw so that tests can observe them.
 */
#ifndef AN2_BASE_ERROR_H
#define AN2_BASE_ERROR_H

#include <sstream>
#include <stdexcept>
#include <string>

namespace an2 {

/** Thrown when an internal invariant is violated (a bug in an2sim). */
class InternalError : public std::logic_error {
  public:
    explicit InternalError(const std::string& what) : std::logic_error(what) {}
};

/** Thrown on invalid arguments or configuration supplied by the caller. */
class UsageError : public std::invalid_argument {
  public:
    explicit UsageError(const std::string& what)
        : std::invalid_argument(what) {}
};

namespace detail {

std::string formatLocation(const char* file, int line, const std::string& msg);

}  // namespace detail

/** Throw a UsageError with a formatted location prefix. */
[[noreturn]] void fatalAt(const char* file, int line, const std::string& msg);

/** Throw an InternalError with a formatted location prefix. */
[[noreturn]] void panicAt(const char* file, int line, const std::string& msg);

/**
 * Observer invoked with the formatted message just before panicAt()
 * throws — the flight-recorder hook: a black box installs one to dump a
 * post-mortem while the failing state is still intact. Thread-local,
 * reentrancy-guarded (a panic raised *inside* the hook skips it), and
 * must not throw. Returns the previously installed hook (nullptr if
 * none) so scoped installers can restore it.
 */
using PanicHook = void (*)(void* ctx, const std::string& msg);
PanicHook setPanicHook(PanicHook hook, void* ctx, void** prev_ctx = nullptr);

}  // namespace an2

/** Report a caller error: invalid arguments/configuration. */
#define AN2_FATAL(msg)                                                       \
    do {                                                                     \
        std::ostringstream an2_oss_;                                         \
        an2_oss_ << msg; /* NOLINT */                                        \
        ::an2::fatalAt(__FILE__, __LINE__, an2_oss_.str());                  \
    } while (0)

/** Report an internal invariant violation (an an2sim bug). */
#define AN2_PANIC(msg)                                                       \
    do {                                                                     \
        std::ostringstream an2_oss_;                                         \
        an2_oss_ << msg; /* NOLINT */                                        \
        ::an2::panicAt(__FILE__, __LINE__, an2_oss_.str());                  \
    } while (0)

/** Assert an internal invariant; always checked (simulation correctness). */
#define AN2_ASSERT(cond, msg)                                                \
    do {                                                                     \
        if (!(cond)) {                                                       \
            AN2_PANIC("assertion failed: " #cond ": " << msg);               \
        }                                                                    \
    } while (0)

/** Validate a user-supplied precondition. */
#define AN2_REQUIRE(cond, msg)                                               \
    do {                                                                     \
        if (!(cond)) {                                                       \
            AN2_FATAL("requirement failed: " #cond ": " << msg);             \
        }                                                                    \
    } while (0)

#endif  // AN2_BASE_ERROR_H
