/**
 * @file
 * Fundamental scalar types and physical constants shared across an2sim.
 *
 * The AN2 switch operates on fixed-length ATM cells moving through a
 * slot-synchronous crossbar: one cell time ("slot") is the time to receive
 * a 53-byte cell at link speed. All simulator-facing quantities are
 * expressed in these units; wall-clock conversions live here as well.
 */
#ifndef AN2_BASE_TYPES_H
#define AN2_BASE_TYPES_H

#include <cstdint>

namespace an2 {

/** Index of a switch port (input or output), 0-based. */
using PortId = int;

/** Identifier for a flow (a stream of cells between a pair of hosts). */
using FlowId = int32_t;

/** Discrete time measured in cell slots. */
using SlotTime = int64_t;

/** Wall-clock time in picoseconds (used by the drifting-clock network). */
using PicoTime = int64_t;

/** Sentinel for "no port" in matchings and schedules. */
inline constexpr PortId kNoPort = -1;

/** Sentinel for "no flow". */
inline constexpr FlowId kNoFlow = -1;

/** Size of a standard ATM cell, including the 5-byte header (paper §2.3). */
inline constexpr int kAtmCellBytes = 53;

/** ATM cell payload size. */
inline constexpr int kAtmPayloadBytes = 48;

/**
 * Duration of one cell slot at the AN2 link rate of 1 Gb/s, in picoseconds.
 * 53 bytes * 8 bits / 1e9 b/s = 424 ns.
 */
inline constexpr PicoTime kSlotPicosAt1Gbps = 424'000;

/** Convert a delay in slots to microseconds at 1 Gb/s link speed. */
constexpr double
slotsToMicros(double slots)
{
    return slots * static_cast<double>(kSlotPicosAt1Gbps) * 1e-6;
}

/** Traffic class of a flow (paper §4): reserved vs. datagram traffic,
    plus a best-effort tier below both for CIOQ output scheduling. */
enum class TrafficClass : uint8_t {
    CBR,  ///< constant bit rate; carried by the pre-computed frame schedule
    VBR,  ///< variable bit rate (datagram); carried by iterative matching
    BE,   ///< best effort; served only when no CBR/VBR cell is waiting
};

/** Number of traffic classes, for sizing per-class arrays. */
inline constexpr int kNumTrafficClasses = 3;

}  // namespace an2

#endif  // AN2_BASE_TYPES_H
