#include "an2/base/error.h"

namespace an2 {
namespace detail {

std::string
formatLocation(const char* file, int line, const std::string& msg)
{
    std::ostringstream oss;
    oss << file << ":" << line << ": " << msg;
    return oss.str();
}

}  // namespace detail

void
fatalAt(const char* file, int line, const std::string& msg)
{
    throw UsageError(detail::formatLocation(file, line, msg));
}

namespace {

thread_local PanicHook tls_panic_hook = nullptr;
thread_local void* tls_panic_ctx = nullptr;
thread_local bool tls_in_panic_hook = false;

}  // namespace

PanicHook
setPanicHook(PanicHook hook, void* ctx, void** prev_ctx)
{
    PanicHook prev = tls_panic_hook;
    if (prev_ctx != nullptr)
        *prev_ctx = tls_panic_ctx;
    tls_panic_hook = hook;
    tls_panic_ctx = ctx;
    return prev;
}

void
panicAt(const char* file, int line, const std::string& msg)
{
    std::string what = detail::formatLocation(file, line, msg);
    if (tls_panic_hook != nullptr && !tls_in_panic_hook) {
        // Guard against a panic raised while dumping the post-mortem:
        // the inner panic throws straight through without re-entering.
        tls_in_panic_hook = true;
        tls_panic_hook(tls_panic_ctx, what);
        tls_in_panic_hook = false;
    }
    throw InternalError(what);
}

}  // namespace an2
