#include "an2/base/error.h"

namespace an2 {
namespace detail {

std::string
formatLocation(const char* file, int line, const std::string& msg)
{
    std::ostringstream oss;
    oss << file << ":" << line << ": " << msg;
    return oss.str();
}

}  // namespace detail

void
fatalAt(const char* file, int line, const std::string& msg)
{
    throw UsageError(detail::formatLocation(file, line, msg));
}

void
panicAt(const char* file, int line, const std::string& msg)
{
    throw InternalError(detail::formatLocation(file, line, msg));
}

}  // namespace an2
