#include "an2/base/stats.h"

#include <algorithm>
#include <cmath>

namespace an2 {

void
RunningStats::add(double x)
{
    ++count_;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
}

void
RunningStats::merge(const RunningStats& other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    double delta = other.mean_ - mean_;
    int64_t total = count_ + other.count_;
    m2_ += other.m2_ + delta * delta * static_cast<double>(count_) *
                           static_cast<double>(other.count_) /
                           static_cast<double>(total);
    mean_ += delta * static_cast<double>(other.count_) /
             static_cast<double>(total);
    count_ = total;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

double
RunningStats::variance() const
{
    if (count_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(count_ - 1);
}

double
RunningStats::stddev() const
{
    return std::sqrt(variance());
}

Histogram::Histogram(double bin_width, int num_bins) : bin_width_(bin_width)
{
    AN2_REQUIRE(bin_width > 0.0, "histogram bin width must be positive");
    AN2_REQUIRE(num_bins > 0, "histogram needs at least one bin");
    bins_.assign(static_cast<size_t>(num_bins), 0);
}

void
Histogram::add(double x)
{
    ++total_;
    if (x < 0.0)
        x = 0.0;
    auto b = static_cast<int64_t>(x / bin_width_);
    if (b >= static_cast<int64_t>(bins_.size())) {
        ++overflow_;
    } else {
        ++bins_[static_cast<size_t>(b)];
    }
}

int64_t
Histogram::binCount(int b) const
{
    AN2_REQUIRE(b >= 0 && b < numBins(), "bin index out of range");
    return bins_[static_cast<size_t>(b)];
}

double
Histogram::quantile(double q) const
{
    AN2_REQUIRE(q >= 0.0 && q <= 1.0, "quantile must be in [0,1]");
    AN2_REQUIRE(total_ > 0, "quantile of empty histogram");
    auto target = static_cast<int64_t>(
        std::ceil(q * static_cast<double>(total_)));
    target = std::max<int64_t>(target, 1);
    // Saturated: the quantile is among the overflow samples, whose values
    // are unknown beyond "past the last bin". Report the overflow bucket's
    // lower bound rather than pretending the samples sat in the last bin.
    if (target > total_ - overflow_)
        return bin_width_ * static_cast<double>(bins_.size());
    int64_t acc = 0;
    for (size_t b = 0; b < bins_.size(); ++b) {
        int64_t prev = acc;
        acc += bins_[b];
        if (acc >= target) {
            // Interpolate within the bin.
            double frac = bins_[b] == 0
                              ? 0.0
                              : static_cast<double>(target - prev) /
                                    static_cast<double>(bins_[b]);
            return (static_cast<double>(b) + frac) * bin_width_;
        }
    }
    return bin_width_ * static_cast<double>(bins_.size());
}

double
jainFairnessIndex(const std::vector<double>& allocations)
{
    double sum = 0.0;
    double sum_sq = 0.0;
    for (double x : allocations) {
        sum += x;
        sum_sq += x * x;
    }
    if (allocations.empty() || sum_sq == 0.0)
        return 1.0;
    return sum * sum /
           (static_cast<double>(allocations.size()) * sum_sq);
}

}  // namespace an2
