/**
 * @file
 * Open-addressing map from small integer keys to arbitrary values —
 * the FlatCounts idiom (see an2/base/flat_counts.h) generalized to a
 * value template, built for per-flow bookkeeping on hot paths: looking
 * up or mutating a key already present performs no heap allocation, so
 * sizing the constructor hint to the expected key population keeps a
 * steady-state loop allocation-free after every key has been touched
 * once (asserted for the network delivery path in
 * tests/zero_alloc_test.cc).
 *
 * The table doubles only when a *new* key pushes the load factor past
 * 1/2. Values must be default-constructible and are value-initialized
 * on first touch. Iteration order is the (deterministic) table order;
 * use sortedKeys() or toMap() when a stable, ordered view is needed
 * for reporting.
 */
#ifndef AN2_BASE_FLAT_MAP_H
#define AN2_BASE_FLAT_MAP_H

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

#include "an2/base/error.h"

namespace an2 {

/** Linear-probe hash map from int32 keys to V values. */
template <typename V>
class FlatMap
{
  public:
    /** @param expected_keys Sizing hint; the table starts with capacity
        for at least this many keys without rehashing. */
    explicit FlatMap(int expected_keys = 64)
    {
        size_t cap = 16;
        while (cap < 2 * static_cast<size_t>(std::max(expected_keys, 1)))
            cap <<= 1;
        slots_.assign(cap, Slot{});
    }

    /** Value slot for `key`, value-initialized when absent. */
    V& operator[](int32_t key)
    {
        if (2 * (used_ + 1) > slots_.size())
            grow();
        Slot* s = find(slots_, key);
        if (!s->occupied) {
            s->occupied = true;
            s->key = key;
            ++used_;
        }
        return s->value;
    }

    /** Value for `key`, or nullptr when absent. Never allocates. */
    const V* get(int32_t key) const
    {
        const Slot* s = find(const_cast<std::vector<Slot>&>(slots_), key);
        return s->occupied ? &s->value : nullptr;
    }

    V* get(int32_t key)
    {
        Slot* s = find(slots_, key);
        return s->occupied ? &s->value : nullptr;
    }

    bool contains(int32_t key) const { return get(key) != nullptr; }

    /** Distinct keys present. */
    size_t size() const { return used_; }

    /** Key capacity before the next rehash. */
    size_t capacity() const { return slots_.size() / 2; }

    /** Keys present, ascending (reporting; allocates). */
    std::vector<int32_t> sortedKeys() const
    {
        std::vector<int32_t> keys;
        keys.reserve(used_);
        for (const Slot& s : slots_)
            if (s.occupied)
                keys.push_back(s.key);
        std::sort(keys.begin(), keys.end());
        return keys;
    }

    /** The contents as an ordered map (reporting; allocates). */
    std::map<int32_t, V> toMap() const
    {
        std::map<int32_t, V> out;
        for (const Slot& s : slots_)
            if (s.occupied)
                out[s.key] = s.value;
        return out;
    }

  private:
    struct Slot
    {
        V value{};
        int32_t key = 0;
        bool occupied = false;
    };

    /** First slot holding `key`, or the empty slot where it belongs. */
    static Slot* find(std::vector<Slot>& slots, int32_t key)
    {
        // Fibonacci hashing spreads consecutive flow ids; capacity is a
        // power of two so the mask replaces a modulo.
        size_t mask = slots.size() - 1;
        size_t idx =
            (static_cast<uint64_t>(static_cast<uint32_t>(key)) *
             UINT64_C(0x9e3779b97f4a7c15) >> 32) & mask;
        while (slots[idx].occupied && slots[idx].key != key)
            idx = (idx + 1) & mask;
        return &slots[idx];
    }

    void grow()
    {
        std::vector<Slot> bigger(slots_.size() * 2);
        for (Slot& s : slots_) {
            if (!s.occupied)
                continue;
            Slot* dst = find(bigger, s.key);
            *dst = std::move(s);
        }
        slots_.swap(bigger);
    }

    std::vector<Slot> slots_;
    size_t used_ = 0;
};

}  // namespace an2

#endif  // AN2_BASE_FLAT_MAP_H
