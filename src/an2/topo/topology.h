/**
 * @file
 * LAN-scale topology descriptions for the drifting-clock network.
 *
 * A Topology is a pure graph: hosts and switches joined by full-duplex
 * edges with per-edge latency. It knows nothing about matchers, clocks,
 * or flows — the Lan builder (an2/topo/lan.h) instantiates a Network
 * from it, assigning switch ports in adjacency order, and the Router
 * (an2/topo/routing.h) computes shortest paths over it.
 *
 * Generators cover the shapes the paper's setting implies (AN2 was built
 * to be the switching fabric of a campus LAN, §1-§2): a star-of-stars
 * campus backbone, a k-ary fat-tree, 2-D mesh/torus, a ring, and a
 * seeded random d-regular graph for stress tests. Every generator is
 * deterministic: the same parameters (and seed, where one applies)
 * produce the identical node and edge ordering.
 */
#ifndef AN2_TOPO_TOPOLOGY_H
#define AN2_TOPO_TOPOLOGY_H

#include <cstdint>
#include <string>
#include <vector>

#include "an2/base/types.h"
#include "an2/network/link.h"

namespace an2::topo {

/** What a topology node is instantiated as in the Network. */
enum class NodeKind : uint8_t {
    Host,    ///< a Controller (traffic source/sink, single port)
    Switch,  ///< a NetSwitch (ports = node degree)
};

/** One full-duplex edge: two directed Network links at build time. */
struct TopoEdge
{
    NodeId a = -1;
    NodeId b = -1;
    PicoTime latency_ps = 0;
};

/** Adjacency entry: the neighbor and the edge reaching it. */
struct Neighbor
{
    NodeId node = -1;
    int edge = -1;
};

/** Edge latencies used by the generators. */
struct Latencies
{
    /** Host-to-switch edges (~100 m of fiber). */
    PicoTime host_ps = 500'000;

    /** Switch-to-switch trunk edges (~400 m). */
    PicoTime trunk_ps = 2'000'000;
};

/** An undirected host/switch graph with per-edge latencies. */
class Topology
{
  public:
    explicit Topology(std::string name) : name_(std::move(name)) {}

    /** Append a node; ids are dense in insertion order. */
    NodeId addNode(NodeKind kind);

    /**
     * Join `a` and `b` with a full-duplex edge (positive latency; the
     * parallel engine's window size is the minimum over all edges).
     * Hosts take exactly one edge. Self-edges and duplicate (a, b)
     * pairs are fatal.
     * @return the edge index (dense, in insertion order).
     */
    int link(NodeId a, NodeId b, PicoTime latency_ps);

    const std::string& name() const { return name_; }
    int numNodes() const { return static_cast<int>(kind_.size()); }
    int numHosts() const { return n_hosts_; }
    int numSwitches() const { return numNodes() - n_hosts_; }
    int numEdges() const { return static_cast<int>(edges_.size()); }

    NodeKind kind(NodeId n) const;
    bool isHost(NodeId n) const { return kind(n) == NodeKind::Host; }

    const TopoEdge& edge(int e) const;

    /** Node degree = switch port count at build time. */
    int degree(NodeId n) const
    {
        return static_cast<int>(neighbors(n).size());
    }

    /** Adjacency of `n`, in edge-insertion order (the ECMP tie-break
        order and the port-assignment order). */
    const std::vector<Neighbor>& neighbors(NodeId n) const;

    /** Ids of all host nodes, ascending. */
    std::vector<NodeId> hosts() const;

    /** The switch a host hangs off (its single neighbor). */
    NodeId hostSwitch(NodeId host) const;

    /** Smallest edge latency; fatal when there are no edges. */
    PicoTime minLatency() const;

    // ---- generators ---------------------------------------------------

    /**
     * Campus star-of-stars: one core switch, `leaves` building switches
     * on trunk edges, `hosts_per_leaf` hosts per building.
     */
    static Topology star(int leaves, int hosts_per_leaf,
                         Latencies lat = {});

    /**
     * k-ary fat-tree (k even): (k/2)^2 core switches, k pods of k/2
     * aggregation + k/2 edge switches, `hosts_per_edge` hosts per edge
     * switch. `hosts_per_edge` = k/2 gives full bisection bandwidth;
     * larger values oversubscribe the edge layer.
     */
    static Topology fatTree(int k, int hosts_per_edge, Latencies lat = {});

    /**
     * rows x cols 2-D mesh of switches, `hosts_per_switch` hosts each;
     * `torus` adds the wraparound edges (requires rows, cols >= 3 so no
     * wraparound duplicates a mesh edge).
     */
    static Topology mesh(int rows, int cols, bool torus,
                         int hosts_per_switch, Latencies lat = {});

    /** `switches` >= 3 switches in a cycle, `hosts_per_switch` each. */
    static Topology ring(int switches, int hosts_per_switch,
                         Latencies lat = {});

    /**
     * Random d-regular graph over `switches` switches (pairing model,
     * resampled until simple), `hosts_per_switch` hosts each. Requires
     * d < switches and d * switches even. Deterministic in `seed`.
     */
    static Topology randomRegular(int switches, int degree,
                                  int hosts_per_switch, uint64_t seed,
                                  Latencies lat = {});

  private:
    void checkNode(NodeId n) const;

    std::string name_;
    std::vector<NodeKind> kind_;
    std::vector<TopoEdge> edges_;
    std::vector<std::vector<Neighbor>> adj_;
    int n_hosts_ = 0;
};

}  // namespace an2::topo

#endif  // AN2_TOPO_TOPOLOGY_H
