#include "an2/topo/net_metrics.h"

#include <algorithm>
#include <cstdio>

#include "an2/base/error.h"
#include "an2/harness/json_writer.h"

namespace an2::topo {

using harness::JsonStyle;
using harness::JsonWriter;

LanMetricsSeries::LanMetricsSeries(int64_t every_slots)
    : every_slots_(every_slots)
{
    AN2_REQUIRE(every_slots > 0, "metrics period must be positive");
}

void
LanMetricsSeries::sample(SlotTime slot, const LanStats& stats)
{
    samples_.push_back(LanMetricsSample{slot, stats});
}

std::string
LanMetricsSeries::toJsonLines() const
{
    std::string out;
    for (const LanMetricsSample& s : samples_) {
        JsonWriter w(JsonStyle::Compact);
        w.beginObject();
        w.key("schema").value("an2.metrics.v1");
        w.key("source").value("lan");
        w.key("slot").value(static_cast<int64_t>(s.slot));
        w.key("window").value(every_slots_);
        w.key("counters").beginObject();
        w.key("injected").value(s.stats.injected);
        w.key("delivered").value(s.stats.delivered);
        w.key("cbr_injected").value(s.stats.cbr_injected);
        w.key("vbr_injected").value(s.stats.vbr_injected);
        w.key("cbr_delivered").value(s.stats.cbr_delivered);
        w.key("vbr_delivered").value(s.stats.vbr_delivered);
        w.key("cbr_forwarded").value(s.stats.cbr_forwarded);
        w.key("vbr_forwarded").value(s.stats.vbr_forwarded);
        w.key("vbr_dropped").value(s.stats.vbr_dropped);
        w.key("link_lost").value(s.stats.link_lost);
        w.key("order_violations").value(s.stats.order_violations);
        w.key("reroutes").value(s.stats.reroutes);
        w.key("unroutable").value(s.stats.unroutable);
        w.key("cbr_restored").value(s.stats.cbr_restored);
        w.key("cbr_degraded").value(s.stats.cbr_degraded);
        w.key("cbr_abandoned").value(s.stats.cbr_abandoned);
        w.key("cbr_restore_retries").value(s.stats.cbr_restore_retries);
        w.key("restore_lost").value(s.stats.restore_lost);
        w.key("cbr_downstream_released")
            .value(s.stats.cbr_downstream_released);
        w.endObject();
        // Pending episodes fall back to zero as restorations finish, so
        // the count lives outside the cumulative counters object.
        w.key("gauges").beginObject();
        w.key("cbr_restore_pending").value(s.stats.cbr_restore_pending);
        w.endObject();
        w.key("latency").beginObject();
        w.key("mean_wall_ps").value(s.stats.mean_wall_latency_ps);
        w.key("mean_adjusted_ps").value(s.stats.mean_adjusted_latency_ps);
        w.key("cbr_mean_wall_ps").value(s.stats.mean_cbr_wall_latency_ps);
        w.key("vbr_mean_wall_ps").value(s.stats.mean_vbr_wall_latency_ps);
        w.endObject();
        w.endObject();
        out += w.str();  // Compact str() ends with the newline.
    }
    return out;
}

std::string
LanMetricsSeries::toPrometheus() const
{
    std::string out;
    if (samples_.empty())
        return out;
    const LanStats& s = samples_.back().stats;
    char line[128];
    const struct
    {
        const char* name;
        int64_t v;
    } kCounters[] = {
        {"injected", s.injected},
        {"delivered", s.delivered},
        {"cbr_injected", s.cbr_injected},
        {"vbr_injected", s.vbr_injected},
        {"cbr_delivered", s.cbr_delivered},
        {"vbr_delivered", s.vbr_delivered},
        {"cbr_forwarded", s.cbr_forwarded},
        {"vbr_forwarded", s.vbr_forwarded},
        {"vbr_dropped", s.vbr_dropped},
        {"link_lost", s.link_lost},
        {"order_violations", s.order_violations},
        {"reroutes", s.reroutes},
        {"unroutable", s.unroutable},
        {"cbr_restored", s.cbr_restored},
        {"cbr_degraded", s.cbr_degraded},
        {"cbr_abandoned", s.cbr_abandoned},
        {"cbr_restore_retries", s.cbr_restore_retries},
        {"restore_lost", s.restore_lost},
        {"cbr_downstream_released", s.cbr_downstream_released},
    };
    for (const auto& c : kCounters) {
        std::snprintf(line, sizeof line,
                      "# TYPE an2_lan_%s counter\nan2_lan_%s %lld\n",
                      c.name, c.name, static_cast<long long>(c.v));
        out += line;
    }
    std::snprintf(line, sizeof line,
                  "# TYPE an2_lan_cbr_restore_pending gauge\n"
                  "an2_lan_cbr_restore_pending %lld\n",
                  static_cast<long long>(s.cbr_restore_pending));
    out += line;
    const struct
    {
        const char* name;
        double v;
    } kGauges[] = {
        {"mean_wall_latency_ps", s.mean_wall_latency_ps},
        {"mean_adjusted_latency_ps", s.mean_adjusted_latency_ps},
        {"cbr_mean_wall_latency_ps", s.mean_cbr_wall_latency_ps},
        {"vbr_mean_wall_latency_ps", s.mean_vbr_wall_latency_ps},
    };
    for (const auto& g : kGauges) {
        std::snprintf(line, sizeof line,
                      "# TYPE an2_lan_%s gauge\nan2_lan_%s %.6f\n",
                      g.name, g.name, g.v);
        out += line;
    }
    return out;
}

void
runLanWithMetrics(Lan& lan, int64_t frames, int threads,
                  LanMetricsSeries& series)
{
    AN2_REQUIRE(frames > 0, "must run at least one frame");
    const NetworkConfig& net = lan.net().config();
    const int64_t total_slots =
        frames * static_cast<int64_t>(net.switch_frame_slots);
    const int64_t every = series.everySlots();
    for (int64_t t = every; ; t += every) {
        int64_t slot = std::min(t, total_slots);
        lan.run(slot * net.slot_ps, threads);
        series.sample(slot, lan.stats());
        if (slot == total_slots)
            break;
    }
}

}  // namespace an2::topo
