/**
 * @file
 * Sharded deterministic execution of a Network — same results as the
 * serial event loop, byte for byte, on any thread count.
 *
 * The engine exploits the one property the drifting-clock network
 * guarantees: a cell sent at time t arrives no earlier than t + W,
 * where W is the smallest link latency (strictly positive). Nodes
 * therefore cannot influence each other within any window shorter than
 * W: the engine repeatedly picks the global minimum next-tick m,
 * closes the window E = min(until, m + W - 1), and lets every shard
 * tick its own nodes up to E with no synchronization at all. Cells
 * sent during the window land on the sending node's own out-links as
 * *pending* (NetLink deferred mode) and are committed to the in-flight
 * queue at the window barrier — they arrive at or after m + W > E, so
 * no node could have consumed them inside the window anyway.
 *
 * Equivalence to Network::run: the serial loop executes ticks in
 * global (time, node) order, but two ticks of *different* nodes inside
 * one window are causally independent (no cell can travel between
 * them), and ticks of the *same* node are kept in time order by the
 * per-node loop. Every per-node tick sequence, every link's cell
 * sequence, and every statistic is therefore identical to the serial
 * engine's — the sweep JSON is byte-identical for 1, 2, or 64 threads.
 *
 * Faults: link up/down events must be applied *between* run() calls
 * (both engines split runs at event times — see topo::Lan); link state
 * never changes inside a window.
 */
#ifndef AN2_TOPO_PARALLEL_NET_H
#define AN2_TOPO_PARALLEL_NET_H

#include <cstdint>
#include <vector>

#include "an2/network/network.h"

namespace an2::topo {

/** Conservative-window parallel runner for a Network. */
class ParallelNet
{
  public:
    /**
     * @param net The network to drive (not owned; must outlive this).
     * @param threads Worker shards (>= 1); clamped to the node count.
     *        Nodes are assigned round-robin; each link belongs to its
     *        upstream node's shard for the commit phase.
     */
    ParallelNet(Network& net, int threads);

    int threads() const { return threads_; }

    /**
     * Advance every node through all ticks at wall time <= until_ps,
     * exactly like Network::run(until_ps). May be called repeatedly
     * (e.g. between fault events).
     */
    void run(PicoTime until_ps);

    /** Conservative windows executed so far (scheduler introspection). */
    int64_t windows() const { return windows_; }

    /**
     * Watchdog: a healthy window always advances the global min
     * next-tick (every ticked node moves past the window end), so a run
     * whose min sticks for `max_stalled_windows` consecutive barriers
     * has a wedged shard — abort with a diagnostic naming the shard and
     * the stuck tick instead of spinning forever. 0 disables; default 8.
     */
    void setWatchdog(int max_stalled_windows);

  private:
    struct Shard
    {
        std::vector<NodeId> nodes;
        std::vector<int> links;  ///< links whose upstream node is ours
    };

    /** Tick every node of shard `k` up to `end`; returns the shard's
        min next-tick afterwards. */
    PicoTime tickShard(int k, PicoTime end);

    void commitShard(int k);

    /** Watchdog bookkeeping after each window: `prev_m` -> `m`. Fatal
        (names the stuck node and shard) once the stall budget is spent. */
    void noteWindowAdvance(PicoTime prev_m, PicoTime m, int& stalled) const;

    Network& net_;
    int threads_;
    PicoTime min_latency_ = 0;
    std::vector<Shard> shards_;
    int64_t windows_ = 0;
    int watchdog_limit_ = 8;
};

}  // namespace an2::topo

#endif  // AN2_TOPO_PARALLEL_NET_H
