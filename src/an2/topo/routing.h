/**
 * @file
 * Shortest-path routing with deterministic ECMP over a Topology.
 *
 * The Router computes per-destination BFS distance fields over the
 * *live* directed edges (each full-duplex topology edge is two directed
 * half-edges that fail independently, matching the Network's directed
 * links). At any node, the next hops toward a destination are the
 * neighbors one hop closer, in adjacency order; when several are
 * equally close (ECMP), the choice is a pure function of (flow, node)
 * — a splitmix64 hash — so a flow's path is stable across runs, thread
 * counts, and machines, and distinct flows spread over the parallel
 * paths.
 *
 * Fault model: setEdgeDirAlive marks a directed half-edge dead, which
 * removes it from every distance field (caches invalidate). Flows
 * re-pathed after a failure pick deterministically among the surviving
 * candidates — the "next ECMP path" failover used by Lan.
 */
#ifndef AN2_TOPO_ROUTING_H
#define AN2_TOPO_ROUTING_H

#include <cstdint>
#include <vector>

#include "an2/topo/topology.h"

namespace an2::topo {

/** Deterministic shortest-path / ECMP router over a Topology. */
class Router
{
  public:
    explicit Router(const Topology& topo);

    const Topology& topology() const { return topo_; }

    /**
     * Mark the directed half of edge `e` alive or dead. `a_to_b` selects
     * the direction from edge(e).a to edge(e).b. Invalidate all cached
     * distance fields on change.
     */
    void setEdgeDirAlive(int e, bool a_to_b, bool alive);

    bool edgeDirAlive(int e, bool a_to_b) const;

    /** Hop count from `from` to `dst` over live edges; -1 unreachable. */
    int distance(NodeId from, NodeId dst) const;

    /**
     * Next-hop candidates at `at` toward `dst`: live out-neighbors one
     * hop closer, in adjacency order. Empty when `dst` is unreachable
     * (or at == dst).
     */
    void nextHops(NodeId at, NodeId dst, std::vector<Neighbor>& out) const;

    /**
     * The deterministic ECMP pick for `flow` at `at` among `n`
     * candidates: splitmix64(flow, at) mod n. Exposed for tests.
     */
    static size_t ecmpPick(FlowId flow, NodeId at, size_t n);

    /**
     * Full node path from `src` to `dst` for `flow` (endpoints
     * included), choosing the ECMP candidate at every node. Empty when
     * unreachable.
     */
    std::vector<NodeId> path(NodeId src, NodeId dst, FlowId flow) const;

  private:
    /** The distance field toward `dst`, computing it if stale. */
    const std::vector<int32_t>& distField(NodeId dst) const;

    const Topology& topo_;
    /** Bit 2e = edge e direction a->b alive; bit 2e+1 = b->a. */
    std::vector<uint64_t> dir_alive_;
    /** Liveness generation; bumping it invalidates every cached field. */
    uint64_t epoch_ = 1;

    // Per-destination BFS caches (lazy; mutable because routing queries
    // are logically const).
    mutable std::vector<std::vector<int32_t>> dist_;   ///< [dst][node]
    mutable std::vector<uint64_t> dist_epoch_;         ///< [dst]
    mutable std::vector<NodeId> bfs_queue_;
};

}  // namespace an2::topo

#endif  // AN2_TOPO_ROUTING_H
