#include "an2/topo/net_sweep.h"

#include <memory>
#include <utility>

#include "an2/base/error.h"
#include "an2/fault/chaos.h"
#include "an2/harness/json_writer.h"
#include "an2/harness/sweep.h"
#include "an2/matching/pim.h"
#include "an2/topo/net_metrics.h"

namespace an2::topo {

const char*
patternName(Pattern pattern)
{
    switch (pattern) {
      case Pattern::Uniform:      return "uniform";
      case Pattern::Hotspot:      return "hotspot";
      case Pattern::ClientServer: return "client-server";
    }
    AN2_PANIC("unknown traffic pattern");
}

namespace {

void
validateSpec(const NetSweepSpec& spec)
{
    AN2_REQUIRE(!spec.topos.empty(), "net sweep needs at least one topology");
    AN2_REQUIRE(!spec.loads.empty(), "net sweep needs at least one load");
    AN2_REQUIRE(spec.replicates >= 1, "need at least one replicate");
    AN2_REQUIRE(spec.frames >= 1, "need at least one frame per run");
    for (double load : spec.loads)
        AN2_REQUIRE(load > 0.0 && load <= 1.0,
                    "load " << load << " outside (0, 1]");
}

/** One run's observable outcome, derived from LanStats. */
struct RunOutcome
{
    LanStats stats;
    double throughput = 0.0;
};

RunOutcome
runPoint(const NetSweepSpec& spec, const Topology& topo, double load,
         int run_index, int engine_threads,
         LanMetricsSeries* series = nullptr)
{
    LanConfig config;
    config.net = spec.net;
    config.max_clock_error = spec.max_clock_error;
    config.phase_jitter = spec.phase_jitter;
    config.seed = harness::runSeed(spec.base_seed, run_index, 0);
    int iterations = spec.pim_iterations;
    config.matcher = [iterations](int n_ports, uint64_t seed) {
        PimConfig cfg;
        cfg.iterations = iterations;
        cfg.seed = seed;
        return std::make_unique<PimMatcher>(cfg);
    };

    Lan lan(topo, config);
    uint64_t place_seed = harness::runSeed(spec.base_seed, run_index, 1);
    lan.placeMatrix(spec.pattern, TrafficSpec{TrafficClass::VBR, load, 0},
                    place_seed);
    if (spec.cbr_cells_per_frame > 0)
        lan.placeMatrix(spec.pattern,
                        TrafficSpec{TrafficClass::CBR, 0.0,
                                    spec.cbr_cells_per_frame},
                        place_seed + 1);
    if (spec.restore) {
        fault::RestorePolicy policy = spec.restore_policy;
        if (policy.seed == 0)
            policy.seed = harness::runSeed(spec.base_seed, run_index, 2);
        lan.enableRestoration(policy);
    }
    if (!spec.faults.empty()) {
        AN2_REQUIRE(spec.faults.maxLinkTarget() < lan.net().numLinks(),
                    "fault plan targets link "
                        << spec.faults.maxLinkTarget() << " but "
                        << topo.name() << " has only "
                        << lan.net().numLinks() << " links");
        lan.scheduleFaults(spec.faults);
    }
    if (spec.chaos.enabled()) {
        // The expansion is a pure function of (spec, topology, horizon);
        // every replicate of a topology sees the same churn.
        const fault::ChaosEnv env = fault::chaosEnvFor(
            lan.net(), spec.frames * spec.net.switch_frame_slots);
        lan.scheduleFaults(fault::expandChaos(spec.chaos, env));
    }
    if (series != nullptr)
        runLanWithMetrics(lan, spec.frames, engine_threads, *series);
    else
        lan.runFrames(spec.frames, engine_threads);

    RunOutcome out;
    out.stats = lan.stats();
    out.throughput =
        out.stats.injected > 0
            ? static_cast<double>(out.stats.delivered) /
                  static_cast<double>(out.stats.injected)
            : 0.0;
    return out;
}

}  // namespace

std::vector<NetCellSummary>
runNetSweep(const NetSweepSpec& spec, int engine_threads,
            const std::function<void(int, int)>& on_progress)
{
    validateSpec(spec);

    struct CellAccum
    {
        RunningStats throughput;
        RunningStats wall_latency;
        RunningStats adjusted_latency;
        int64_t injected = 0;
        int64_t delivered = 0;
        int64_t vbr_dropped = 0;
        int64_t reroutes = 0;
        int64_t unroutable = 0;
        int64_t link_lost = 0;
        int64_t cbr_restored = 0;
        int64_t cbr_degraded = 0;
        int64_t cbr_abandoned = 0;
        int64_t cbr_restore_retries = 0;
        int64_t restore_lost = 0;
    };
    std::vector<CellAccum> accums(spec.topos.size() * spec.loads.size());

    const int total = static_cast<int>(accums.size()) * spec.replicates;
    int run_index = 0;
    for (size_t ti = 0; ti < spec.topos.size(); ++ti) {
        // One graph per topology axis value, shared by its runs; Lan
        // copies nothing out of it and the generators are deterministic.
        Topology topo = spec.topos[ti].make();
        for (size_t li = 0; li < spec.loads.size(); ++li) {
            CellAccum& acc = accums[ti * spec.loads.size() + li];
            for (int rep = 0; rep < spec.replicates; ++rep, ++run_index) {
                RunOutcome out = runPoint(spec, topo, spec.loads[li],
                                          run_index, engine_threads);
                acc.throughput.add(out.throughput);
                acc.wall_latency.add(out.stats.mean_wall_latency_ps);
                acc.adjusted_latency.add(out.stats.mean_adjusted_latency_ps);
                acc.injected += out.stats.injected;
                acc.delivered += out.stats.delivered;
                acc.vbr_dropped += out.stats.vbr_dropped;
                acc.reroutes += out.stats.reroutes;
                acc.unroutable += out.stats.unroutable;
                acc.link_lost += out.stats.link_lost;
                acc.cbr_restored += out.stats.cbr_restored;
                acc.cbr_degraded += out.stats.cbr_degraded;
                acc.cbr_abandoned += out.stats.cbr_abandoned;
                acc.cbr_restore_retries += out.stats.cbr_restore_retries;
                acc.restore_lost += out.stats.restore_lost;
                if (on_progress)
                    on_progress(run_index + 1, total);
            }
        }
    }

    std::vector<NetCellSummary> cells;
    cells.reserve(accums.size());
    size_t c = 0;
    for (const NetTopoSpec& topo : spec.topos) {
        for (double load : spec.loads) {
            const CellAccum& acc = accums[c++];
            NetCellSummary cell;
            cell.topo = topo.name;
            cell.load = load;
            cell.replicates = spec.replicates;
            cell.throughput = harness::summarize(acc.throughput);
            cell.mean_wall_latency_ps = harness::summarize(acc.wall_latency);
            cell.mean_adjusted_latency_ps =
                harness::summarize(acc.adjusted_latency);
            cell.injected = acc.injected;
            cell.delivered = acc.delivered;
            cell.vbr_dropped = acc.vbr_dropped;
            cell.reroutes = acc.reroutes;
            cell.unroutable = acc.unroutable;
            cell.link_lost = acc.link_lost;
            cell.cbr_restored = acc.cbr_restored;
            cell.cbr_degraded = acc.cbr_degraded;
            cell.cbr_abandoned = acc.cbr_abandoned;
            cell.cbr_restore_retries = acc.cbr_restore_retries;
            cell.restore_lost = acc.restore_lost;
            cells.push_back(std::move(cell));
        }
    }
    return cells;
}

void
observeNetPoint(const NetSweepSpec& spec, int engine_threads,
                LanMetricsSeries& series)
{
    validateSpec(spec);

    // Grid point: topology 0, the highest load on the axis, replicate
    // 0. Runs are topo-major then load then replicate, so this point's
    // run_index — and with it every seed — matches the sweep's.
    size_t li = 0;
    for (size_t i = 1; i < spec.loads.size(); ++i)
        if (spec.loads[i] > spec.loads[li])
            li = i;
    const int run_index = static_cast<int>(li) * spec.replicates;

    Topology topo = spec.topos[0].make();
    runPoint(spec, topo, spec.loads[li], run_index, engine_threads,
             &series);
}

namespace {

void
writeAggregate(harness::JsonWriter& w, const char* name,
               const harness::Aggregate& a)
{
    w.key(name).beginObject();
    w.key("mean").value(a.mean);
    w.key("stddev").value(a.stddev);
    w.key("ci95").value(a.ci95);
    w.key("min").value(a.min);
    w.key("max").value(a.max);
    w.endObject();
}

}  // namespace

std::string
netSweepToJson(const NetSweepSpec& spec,
               const std::vector<NetCellSummary>& cells)
{
    harness::JsonWriter w;
    w.beginObject();

    w.key("meta").beginObject();
    w.key("schema").value("an2.netsweep.v1");
    w.key("experiment").value(spec.name);
    w.key("description").value(spec.description);
    w.key("workload").value(patternName(spec.pattern));
    w.key("frames").value(static_cast<int64_t>(spec.frames));
    w.key("frame_slots").value(spec.net.switch_frame_slots);
    w.key("cbr_cells_per_frame").value(spec.cbr_cells_per_frame);
    w.key("replicates").value(spec.replicates);
    w.key("base_seed").value(std::to_string(spec.base_seed));
    w.key("seeding")
        .value("seed(i, stream) = splitmix64(base_seed + phi64*(2i + stream "
               "+ 1)); lan (clocks/matchers/injection): stream 0, "
               "i = run_index; placement: stream 1, i = run_index; runs "
               "are topo-major, then load, then replicate");
    const bool faulted = !spec.faults.empty() || spec.chaos.enabled();
    if (!spec.faults.empty())
        w.key("faults").value(spec.faults.str());
    if (spec.chaos.enabled())
        w.key("chaos").value(spec.chaos.str());
    if (spec.restore) {
        w.key("restore").beginObject();
        w.key("retry_budget").value(spec.restore_policy.retry_budget);
        w.key("base_backoff_slots")
            .value(spec.restore_policy.base_backoff_slots);
        w.key("max_backoff_slots")
            .value(spec.restore_policy.max_backoff_slots);
        w.key("jitter_slots").value(spec.restore_policy.jitter_slots);
        w.key("allow_degraded").value(spec.restore_policy.allow_degraded);
        w.endObject();
    }
    w.endObject();

    w.key("axes").beginObject();
    w.key("topo").beginArray();
    for (const NetTopoSpec& t : spec.topos)
        w.value(t.name);
    w.endArray();
    w.key("load").beginArray();
    for (double l : spec.loads)
        w.value(l);
    w.endArray();
    w.endObject();

    w.key("cells").beginArray();
    for (const NetCellSummary& cell : cells) {
        w.beginObject();
        w.key("topo").value(cell.topo);
        w.key("load").value(cell.load);
        w.key("replicates").value(cell.replicates);
        writeAggregate(w, "throughput", cell.throughput);
        writeAggregate(w, "mean_wall_latency_ps", cell.mean_wall_latency_ps);
        writeAggregate(w, "mean_adjusted_latency_ps",
                       cell.mean_adjusted_latency_ps);
        w.key("injected").value(cell.injected);
        w.key("delivered").value(cell.delivered);
        w.key("vbr_dropped").value(cell.vbr_dropped);
        if (faulted) {
            w.key("reroutes").value(cell.reroutes);
            w.key("unroutable").value(cell.unroutable);
            w.key("link_lost").value(cell.link_lost);
        }
        if (spec.restore) {
            w.key("cbr_restored").value(cell.cbr_restored);
            w.key("cbr_degraded").value(cell.cbr_degraded);
            w.key("cbr_abandoned").value(cell.cbr_abandoned);
            w.key("cbr_restore_retries").value(cell.cbr_restore_retries);
            w.key("restore_lost").value(cell.restore_lost);
        }
        w.endObject();
    }
    w.endArray();

    w.endObject();
    return w.str();
}

}  // namespace an2::topo
