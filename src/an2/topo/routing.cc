#include "an2/topo/routing.h"

#include "an2/base/error.h"
#include "an2/base/rng.h"
#include "an2/matching/wordset.h"
#include "an2/obs/probe.h"
#include "an2/obs/recorder.h"

namespace an2::topo {

Router::Router(const Topology& topo) : topo_(topo)
{
    size_t bits = 2 * static_cast<size_t>(topo.numEdges());
    dir_alive_.assign((bits + 63) / 64, ~UINT64_C(0));
    dist_.resize(static_cast<size_t>(topo.numNodes()));
    dist_epoch_.assign(static_cast<size_t>(topo.numNodes()), 0);
}

void
Router::setEdgeDirAlive(int e, bool a_to_b, bool alive)
{
    AN2_REQUIRE(e >= 0 && e < topo_.numEdges(), "unknown edge " << e);
    int bit = 2 * e + (a_to_b ? 0 : 1);
    if (wordset::testBit(dir_alive_.data(), bit) == alive)
        return;
    if (alive)
        wordset::setBit(dir_alive_.data(), bit);
    else
        wordset::clearBit(dir_alive_.data(), bit);
    ++epoch_;
}

bool
Router::edgeDirAlive(int e, bool a_to_b) const
{
    AN2_REQUIRE(e >= 0 && e < topo_.numEdges(), "unknown edge " << e);
    return wordset::testBit(dir_alive_.data(), 2 * e + (a_to_b ? 0 : 1));
}

const std::vector<int32_t>&
Router::distField(NodeId dst) const
{
    auto d = static_cast<size_t>(dst);
    std::vector<int32_t>& field = dist_[d];
    if (dist_epoch_[d] == epoch_ && !field.empty())
        return field;

    // BFS from dst along *reverse* live directed edges: field[n] is the
    // live-hop distance from n to dst.
    field.assign(static_cast<size_t>(topo_.numNodes()), -1);
    field[d] = 0;
    bfs_queue_.clear();
    bfs_queue_.push_back(dst);
    for (size_t head = 0; head < bfs_queue_.size(); ++head) {
        NodeId n = bfs_queue_[head];
        int32_t dn = field[static_cast<size_t>(n)];
        for (const Neighbor& nb : topo_.neighbors(n)) {
            if (field[static_cast<size_t>(nb.node)] >= 0)
                continue;
            // The hop taken in routing is nb.node -> n; check that
            // direction of the edge.
            const TopoEdge& e = topo_.edge(nb.edge);
            bool m_is_a = (e.a == nb.node);
            if (!edgeDirAlive(nb.edge, m_is_a))
                continue;
            field[static_cast<size_t>(nb.node)] = dn + 1;
            bfs_queue_.push_back(nb.node);
        }
    }
    dist_epoch_[d] = epoch_;
    return field;
}

int
Router::distance(NodeId from, NodeId dst) const
{
    AN2_REQUIRE(from >= 0 && from < topo_.numNodes(),
                "unknown node " << from);
    AN2_REQUIRE(dst >= 0 && dst < topo_.numNodes(), "unknown node " << dst);
    return distField(dst)[static_cast<size_t>(from)];
}

void
Router::nextHops(NodeId at, NodeId dst, std::vector<Neighbor>& out) const
{
    out.clear();
    const std::vector<int32_t>& field = distField(dst);
    int32_t da = field[static_cast<size_t>(at)];
    if (da <= 0)  // unreachable, or already there
        return;
    for (const Neighbor& nb : topo_.neighbors(at)) {
        if (field[static_cast<size_t>(nb.node)] != da - 1)
            continue;
        const TopoEdge& e = topo_.edge(nb.edge);
        bool at_is_a = (e.a == at);
        if (!edgeDirAlive(nb.edge, at_is_a))
            continue;
        out.push_back(nb);
    }
}

size_t
Router::ecmpPick(FlowId flow, NodeId at, size_t n)
{
    AN2_ASSERT(n > 0, "ECMP pick over no candidates");
    uint64_t state = (static_cast<uint64_t>(static_cast<uint32_t>(flow))
                      << 32) |
                     static_cast<uint32_t>(at);
    return static_cast<size_t>(splitmix64(state) % n);
}

std::vector<NodeId>
Router::path(NodeId src, NodeId dst, FlowId flow) const
{
    AN2_REQUIRE(src != dst, "flow endpoints must differ");
    obs::count(obs::Counter::RouteLookups);
    std::vector<NodeId> out;
    if (distance(src, dst) < 0)
        return out;
    std::vector<Neighbor> hops;
    NodeId at = src;
    out.push_back(at);
    while (at != dst) {
        nextHops(at, dst, hops);
        AN2_ASSERT(!hops.empty(), "BFS field promised a next hop");
        at = hops[ecmpPick(flow, at, hops.size())].node;
        out.push_back(at);
    }
    return out;
}

}  // namespace an2::topo
