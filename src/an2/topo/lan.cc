#include "an2/topo/lan.h"

#include <algorithm>

#include "an2/base/error.h"
#include "an2/base/rng.h"
#include "an2/fault/restoration.h"
#include "an2/obs/probe.h"
#include "an2/obs/recorder.h"

namespace an2::topo {

namespace {

/** Independent seed stream `stream` for node `n` under `seed`. */
uint64_t
nodeSeed(uint64_t seed, NodeId n, uint64_t stream)
{
    uint64_t s = seed + UINT64_C(0x9e3779b97f4a7c15) * (stream + 1);
    splitmix64(s);
    s ^= static_cast<uint64_t>(static_cast<uint32_t>(n));
    return splitmix64(s);
}

}  // namespace

Lan::Lan(const Topology& topo, LanConfig config)
    : topo_(topo), config_(std::move(config)), net_(config_.net),
      router_(topo_)
{
    AN2_REQUIRE(config_.matcher != nullptr, "LanConfig needs a matcher");
    AN2_REQUIRE(config_.max_clock_error >= 0.0,
                "clock error must be non-negative");
    AN2_REQUIRE(topo_.numHosts() >= 2,
                "a LAN needs at least two hosts to talk");

    // Nodes in topology order, so NodeId values coincide.
    for (NodeId n = 0; n < topo_.numNodes(); ++n) {
        double err = 0.0;
        if (config_.max_clock_error > 0.0) {
            uint64_t s = nodeSeed(config_.seed, n, 0);
            double u = static_cast<double>(s >> 11) * 0x1.0p-53;
            err = config_.max_clock_error * (2.0 * u - 1.0);
        }
        PicoTime phase = 0;
        if (config_.phase_jitter) {
            uint64_t s = nodeSeed(config_.seed, n, 1);
            phase = static_cast<PicoTime>(
                s % static_cast<uint64_t>(config_.net.slot_ps));
        }
        if (topo_.isHost(n)) {
            NodeId id = net_.addController(err, nodeSeed(config_.seed, n, 2),
                                           phase);
            AN2_ASSERT(id == n, "node id mismatch");
        } else {
            int ports = topo_.degree(n);
            AN2_REQUIRE(ports > 0, "switch " << n << " has no edges");
            NodeId id = net_.addSwitch(
                ports, err,
                config_.matcher(ports, nodeSeed(config_.seed, n, 3)),
                phase);
            AN2_ASSERT(id == n, "node id mismatch");
        }
    }

    // Ports follow adjacency order: the port a node uses for edge e is
    // the rank of e in its adjacency list (hosts always use port 0).
    std::vector<PortId> next_port(static_cast<size_t>(topo_.numNodes()), 0);
    edge_links_.assign(2 * static_cast<size_t>(topo_.numEdges()), -1);
    for (int e = 0; e < topo_.numEdges(); ++e) {
        const TopoEdge& te = topo_.edge(e);
        PortId pa = next_port[static_cast<size_t>(te.a)]++;
        PortId pb = next_port[static_cast<size_t>(te.b)]++;
        int ab = net_.connect(te.a, pa, te.b, pb, te.latency_ps);
        int ba = net_.connect(te.b, pb, te.a, pa, te.latency_ps);
        edge_links_[2 * static_cast<size_t>(e)] = ab;
        edge_links_[2 * static_cast<size_t>(e) + 1] = ba;
    }
    link_edge_.assign(static_cast<size_t>(net_.numLinks()), EdgeDir{});
    for (int e = 0; e < topo_.numEdges(); ++e) {
        link_edge_[static_cast<size_t>(edge_links_[2 * static_cast<size_t>(
            e)])] = {e, true};
        link_edge_[static_cast<size_t>(
            edge_links_[2 * static_cast<size_t>(e) + 1])] = {e, false};
    }
}

Lan::~Lan() = default;

void
Lan::checkHost(NodeId n) const
{
    AN2_REQUIRE(n >= 0 && n < topo_.numNodes() && topo_.isHost(n),
                "node " << n << " is not a host");
}

int
Lan::netLinkIndex(int e, bool a_to_b) const
{
    AN2_REQUIRE(e >= 0 && e < topo_.numEdges(), "unknown edge " << e);
    return edge_links_[2 * static_cast<size_t>(e) + (a_to_b ? 0 : 1)];
}

FlowId
Lan::addCbrFlow(NodeId src_host, NodeId dst_host, int cells_per_frame)
{
    checkHost(src_host);
    checkHost(dst_host);
    FlowId flow = net_.nextFlowId();
    std::vector<NodeId> path = router_.path(src_host, dst_host, flow);
    AN2_REQUIRE(!path.empty(), "no route from host " << src_host
                                                     << " to " << dst_host);
    FlowId got = net_.addCbrFlow(path, cells_per_frame);
    if (got == kNoFlow)
        return kNoFlow;
    AN2_ASSERT(got == flow, "flow id drifted from nextFlowId()");
    flows_.push_back({src_host, dst_host, TrafficClass::CBR,
                      std::move(path), cells_per_frame, cells_per_frame});
    return flow;
}

FlowId
Lan::addVbrFlow(NodeId src_host, NodeId dst_host, double rate)
{
    checkHost(src_host);
    checkHost(dst_host);
    FlowId flow = net_.nextFlowId();
    std::vector<NodeId> path = router_.path(src_host, dst_host, flow);
    AN2_REQUIRE(!path.empty(), "no route from host " << src_host
                                                     << " to " << dst_host);
    FlowId got = net_.addVbrFlow(path, rate);
    AN2_ASSERT(got == flow, "flow id drifted from nextFlowId()");
    flows_.push_back({src_host, dst_host, TrafficClass::VBR,
                      std::move(path)});
    return flow;
}

int
Lan::placeMatrix(Pattern pattern, const TrafficSpec& spec, uint64_t seed,
                 double hot_fraction, int servers)
{
    std::vector<NodeId> hosts = topo_.hosts();
    const int h = static_cast<int>(hosts.size());
    Xoshiro256 rng(seed);
    int placed = 0;

    auto place = [&](NodeId src, NodeId dst) {
        if (src == dst)
            return;
        FlowId f = spec.cls == TrafficClass::CBR
                       ? addCbrFlow(src, dst, spec.cbr_cells_per_frame)
                       : addVbrFlow(src, dst, spec.vbr_rate);
        if (f != kNoFlow)
            ++placed;
    };

    switch (pattern) {
      case Pattern::Uniform:
        for (int i = 0; i < h; ++i) {
            // Uniform among the other h-1 hosts.
            auto pick = static_cast<int>(
                rng.nextBelow(static_cast<uint64_t>(h - 1)));
            if (pick >= i)
                ++pick;
            place(hosts[static_cast<size_t>(i)],
                  hosts[static_cast<size_t>(pick)]);
        }
        break;

      case Pattern::Hotspot: {
        AN2_REQUIRE(hot_fraction >= 0.0 && hot_fraction <= 1.0,
                    "hot fraction must be in [0, 1]");
        auto hot = static_cast<int>(
            rng.nextBelow(static_cast<uint64_t>(h)));
        for (int i = 0; i < h; ++i) {
            if (i == hot)
                continue;
            int dst;
            if (rng.nextBernoulli(hot_fraction)) {
                dst = hot;
            } else {
                dst = static_cast<int>(
                    rng.nextBelow(static_cast<uint64_t>(h - 1)));
                if (dst >= i)
                    ++dst;
            }
            place(hosts[static_cast<size_t>(i)],
                  hosts[static_cast<size_t>(dst)]);
        }
        break;
      }

      case Pattern::ClientServer: {
        AN2_REQUIRE(servers >= 1 && servers < h,
                    "need 1 <= servers < hosts");
        // Clients spread over the servers round-robin; each server
        // answers one random client (the reply direction).
        for (int i = servers; i < h; ++i)
            place(hosts[static_cast<size_t>(i)],
                  hosts[static_cast<size_t>((i - servers) % servers)]);
        for (int s = 0; s < servers; ++s) {
            auto c = static_cast<int>(rng.nextBelow(
                static_cast<uint64_t>(h - servers)));
            place(hosts[static_cast<size_t>(s)],
                  hosts[static_cast<size_t>(servers + c)]);
        }
        break;
      }
    }
    return placed;
}

void
Lan::scheduleFaults(const fault::FaultPlan& plan)
{
    AN2_REQUIRE(!plan.probabilistic(),
                "network fault plans support scripted link events only");
    for (const fault::FaultEvent& ev : plan.events) {
        AN2_REQUIRE(ev.kind == fault::FaultKind::LinkDown ||
                        ev.kind == fault::FaultKind::LinkUp,
                    "network fault plans support link events only (got "
                        << fault::faultKindName(ev.kind) << ")");
        AN2_REQUIRE(ev.target >= 0 && ev.target < net_.numLinks(),
                    "fault link target " << ev.target << " out of range");
        fault_events_.push_back(ev);
    }
    std::stable_sort(fault_events_.begin(), fault_events_.end(),
                     [](const fault::FaultEvent& x,
                        const fault::FaultEvent& y) {
                         return x.slot < y.slot;
                     });
    fault_cursor_ = 0;
}

void
Lan::installVbrPath(FlowId flow, const std::vector<NodeId>& path)
{
    for (size_t k = 1; k + 1 < path.size(); ++k) {
        int in_link = net_.linkIndexBetween(path[k - 1], path[k]);
        int out_link = net_.linkIndexBetween(path[k], path[k + 1]);
        AN2_ASSERT(in_link >= 0 && out_link >= 0,
                   "rerouted path uses a nonexistent link");
        PortId in_port = net_.linkEnds(in_link).to_port;
        PortId out_port = net_.linkEnds(out_link).from_port;
        NetSwitch& sw = net_.netSwitch(path[k]);
        if (sw.hasRoute(flow))
            sw.updateRoute(flow, out_port);
        else
            sw.addRoute(flow, in_port, out_port, TrafficClass::VBR, 0);
    }
}

void
Lan::applyFault(const fault::FaultEvent& ev)
{
    const bool up = ev.kind == fault::FaultKind::LinkUp;
    net_.setLinkUpByIndex(ev.target, up);
    const EdgeDir& ed = link_edge_[static_cast<size_t>(ev.target)];
    router_.setEdgeDirAlive(ed.edge, ed.a_to_b, up);
    obs::count(obs::Counter::FaultEvents);
    if (up)
        return;  // revived links serve future (re)routes only

    // Deterministic ECMP failover: every VBR flow whose current path
    // crosses the dead directed link re-paths, in flow-id order.
    for (FlowId f = 0; f < static_cast<FlowId>(flows_.size()); ++f) {
        FlowRecord& rec = flows_[static_cast<size_t>(f)];
        if (rec.cls != TrafficClass::VBR)
            continue;  // CBR reservations are pinned
        bool crosses = false;
        for (size_t k = 0; !crosses && k + 1 < rec.path.size(); ++k)
            crosses = net_.linkIndexBetween(rec.path[k], rec.path[k + 1]) ==
                      ev.target;
        if (!crosses)
            continue;
        std::vector<NodeId> fresh = router_.path(rec.src, rec.dst, f);
        if (fresh.empty()) {
            ++unroutable_;  // blackholed until something revives
            continue;
        }
        installVbrPath(f, fresh);
        rec.path = std::move(fresh);
        ++reroutes_;
        obs::count(obs::Counter::EcmpReroutes);
    }

    // CBR: with a restorer armed, revoke-and-re-admit end to end;
    // otherwise at least release the bandwidth the dead link strands at
    // every switch downstream of it (those frame slots could never carry
    // this flow's cells again, yet they would block other admissions).
    if (restorer_)
        restorer_->onLinkDown(ev.target, ev.slot);
    else
        releaseDownstream(ev.target);
}

void
Lan::releaseDownstream(int dead_link)
{
    for (FlowId f = 0; f < static_cast<FlowId>(flows_.size()); ++f) {
        FlowRecord& rec = flows_[static_cast<size_t>(f)];
        if (rec.cls != TrafficClass::CBR || rec.cbr_admitted == 0)
            continue;
        const std::vector<LinkId> links = pathLinks(rec.path);
        const size_t m = links.size();
        size_t h = SIZE_MAX;
        for (size_t i = 0; i < m; ++i) {
            if (links[i] == dead_link) {
                h = i;
                break;
            }
        }
        if (h == SIZE_MAX)
            continue;
        // links[i] joins path[i] -> path[i+1]: everything strictly past
        // the dead link — links [h+1, m) and switches path[h+1 .. m-1] —
        // is stranded. Clip against what an earlier fault already freed.
        const size_t start = h + 1;
        const size_t end = std::min(rec.revoked_from, m);
        if (start >= end) {
            rec.revoked_from = std::min(rec.revoked_from, start);
            continue;
        }
        const std::vector<LinkId> seg(links.begin() +
                                          static_cast<ptrdiff_t>(start),
                                      links.begin() +
                                          static_cast<ptrdiff_t>(end));
        net_.admission().release(seg, rec.cbr_admitted);
        downstream_released_ +=
            static_cast<int64_t>(rec.cbr_admitted) *
            static_cast<int64_t>(end - start);
        for (size_t p = start; p < end; ++p) {
            NetSwitch& sw = net_.netSwitch(rec.path[p]);
            sw.revokeCbrRoute(f);
            sw.purgeCbrFlow(f);
        }
        rec.revoked_from = start;
    }
}

void
Lan::runSegment(PicoTime until_ps, int threads)
{
    if (threads <= 1) {
        net_.run(until_ps);
        return;
    }
    if (!engine_ || engine_threads_ != threads) {
        engine_ = std::make_unique<ParallelNet>(net_, threads);
        engine_threads_ = threads;
    }
    engine_->run(until_ps);
}

void
Lan::run(PicoTime until_ps, int threads)
{
    // Interleave two deterministic event streams: scheduled fault events
    // and the restorer's retry timers. Both are pinned to nominal slot
    // times, and faults win ties, so the split points — and therefore
    // the run — are identical on every engine and thread count.
    const PicoTime slot_ps = config_.net.slot_ps;
    while (true) {
        const bool have_fault = fault_cursor_ < fault_events_.size();
        const PicoTime tf =
            have_fault ? fault_events_[fault_cursor_].slot * slot_ps : 0;
        const SlotTime rs =
            restorer_ ? restorer_->nextActionSlot() : SlotTime{-1};
        const bool have_retry = rs >= 0;
        const PicoTime tr = have_retry ? rs * slot_ps : 0;

        bool fault_first;
        PicoTime t;
        if (have_fault && (!have_retry || tf <= tr)) {
            fault_first = true;
            t = tf;
        } else if (have_retry) {
            fault_first = false;
            t = tr;
        } else {
            break;
        }
        if (t > until_ps)
            break;
        runSegment(t, threads);
        if (fault_first) {
            applyFault(fault_events_[fault_cursor_]);
            ++fault_cursor_;
        } else {
            restorer_->runPending(rs);
        }
    }
    runSegment(until_ps, threads);
}

void
Lan::runFrames(int64_t frames, int threads)
{
    AN2_REQUIRE(frames > 0, "must run at least one frame");
    run(frames * config_.net.switch_frame_slots * config_.net.slot_ps,
        threads);
}

LanStats
Lan::stats() const
{
    LanStats out;
    out.reroutes = reroutes_;
    out.unroutable = unroutable_;
    double wall_sum = 0.0;
    double adj_sum = 0.0;
    for (NodeId n = 0; n < topo_.numNodes(); ++n) {
        if (topo_.isHost(n)) {
            const Controller& c = net_.controller(n);
            for (const auto& [flow, st] : c.allDeliveryStats()) {
                out.delivered += st.delivered;
                out.order_violations += st.order_violations;
                wall_sum += st.wall_latency_ps.sum();
                adj_sum += st.adjusted_latency_ps.sum();
            }
        } else {
            const NetSwitch& sw = net_.netSwitch(n);
            out.cbr_forwarded += sw.cbrForwarded();
            out.vbr_forwarded += sw.vbrForwarded();
            out.vbr_dropped += sw.vbrDropped();
            out.restore_lost +=
                sw.restorationDropped() + sw.restorationPurged();
        }
    }
    if (restorer_) {
        const fault::RestoreStats& rs = restorer_->stats();
        out.cbr_restored = rs.restored;
        out.cbr_degraded = rs.degraded;
        out.cbr_abandoned = rs.abandoned;
        out.cbr_restore_retries = rs.retries;
        out.cbr_restore_pending = restorer_->pendingCount();
    }
    out.cbr_downstream_released = downstream_released_;
    // Per-class split in a second pass keyed by the flow table (the
    // aggregate sums above keep their original accumulation order, so
    // their floating-point results are unchanged).
    double cbr_wall_sum = 0.0;
    double vbr_wall_sum = 0.0;
    for (FlowId f = 0; f < static_cast<FlowId>(flows_.size()); ++f) {
        const FlowRecord& rec = flows_[static_cast<size_t>(f)];
        int64_t injected = net_.controller(rec.src).injectedCells(f);
        out.injected += injected;
        const Controller& sink = net_.controller(rec.dst);
        int64_t delivered = 0;
        double wall = 0.0;
        if (sink.hasDeliveries(f)) {
            const FlowDeliveryStats& st = sink.deliveryStats(f);
            delivered = st.delivered;
            wall = st.wall_latency_ps.sum();
        }
        if (rec.cls == TrafficClass::CBR) {
            out.cbr_injected += injected;
            out.cbr_delivered += delivered;
            cbr_wall_sum += wall;
        } else {
            out.vbr_injected += injected;
            out.vbr_delivered += delivered;
            vbr_wall_sum += wall;
        }
    }
    for (int l = 0; l < net_.numLinks(); ++l)
        out.link_lost += net_.linkAt(l).cellsLost();
    if (out.delivered > 0) {
        out.mean_wall_latency_ps =
            wall_sum / static_cast<double>(out.delivered);
        out.mean_adjusted_latency_ps =
            adj_sum / static_cast<double>(out.delivered);
    }
    if (out.cbr_delivered > 0)
        out.mean_cbr_wall_latency_ps =
            cbr_wall_sum / static_cast<double>(out.cbr_delivered);
    if (out.vbr_delivered > 0)
        out.mean_vbr_wall_latency_ps =
            vbr_wall_sum / static_cast<double>(out.vbr_delivered);
    return out;
}

const std::vector<NodeId>&
Lan::flowPath(FlowId flow) const
{
    AN2_REQUIRE(flow >= 0 && flow < static_cast<FlowId>(flows_.size()),
                "unknown flow " << flow);
    return flows_[static_cast<size_t>(flow)].path;
}

void
Lan::enableRestoration(const fault::RestorePolicy& policy)
{
    AN2_REQUIRE(restorer_ == nullptr, "restoration already enabled");
    restorer_ = std::make_unique<fault::PathRestorer>(*this, policy);
}

Lan::FlowInfo
Lan::flowInfo(FlowId flow) const
{
    AN2_REQUIRE(flow >= 0 && flow < static_cast<FlowId>(flows_.size()),
                "unknown flow " << flow);
    const FlowRecord& rec = flows_[static_cast<size_t>(flow)];
    return {rec.src, rec.dst, rec.cls, rec.cbr_cells, rec.cbr_admitted};
}

std::vector<LinkId>
Lan::pathLinks(const std::vector<NodeId>& path) const
{
    std::vector<LinkId> links;
    if (path.size() >= 2)
        links.reserve(path.size() - 1);
    for (size_t i = 0; i + 1 < path.size(); ++i) {
        int l = net_.linkIndexBetween(path[i], path[i + 1]);
        AN2_ASSERT(l >= 0, "path uses a nonexistent link");
        links.push_back(l);
    }
    return links;
}

int
Lan::revokeCbrPath(FlowId flow)
{
    AN2_REQUIRE(flow >= 0 && flow < static_cast<FlowId>(flows_.size()),
                "unknown flow " << flow);
    FlowRecord& rec = flows_[static_cast<size_t>(flow)];
    AN2_REQUIRE(rec.cls == TrafficClass::CBR,
                "flow " << flow << " is not CBR");
    const int k = rec.cbr_admitted;
    AN2_REQUIRE(k > 0, "flow " << flow << " holds no admitted reservation");
    for (size_t p = 1; p + 1 < rec.path.size(); ++p)
        net_.netSwitch(rec.path[p]).revokeCbrRoute(flow);
    net_.admission().release(pathLinks(rec.path), k);
    net_.controller(rec.src).setCbrActiveCells(flow, 0);
    rec.cbr_admitted = 0;
    return k;
}

void
Lan::installRestoredCbrPath(FlowId flow, const std::vector<NodeId>& path,
                            int cells_per_frame)
{
    AN2_REQUIRE(flow >= 0 && flow < static_cast<FlowId>(flows_.size()),
                "unknown flow " << flow);
    FlowRecord& rec = flows_[static_cast<size_t>(flow)];
    AN2_REQUIRE(rec.cls == TrafficClass::CBR && rec.cbr_admitted == 0,
                "flow " << flow << " is not awaiting restoration");
    AN2_REQUIRE(cells_per_frame >= 1 && cells_per_frame <= rec.cbr_cells,
                "restored rate " << cells_per_frame << " outside [1, "
                                 << rec.cbr_cells << "]");
    const bool ok =
        net_.admission().admit(pathLinks(path), cells_per_frame);
    AN2_ASSERT(ok, "restoration path was not admissible");

    // Switches the flow no longer crosses keep a revoked tombstone route
    // (in-flight cells shed there); their queues are purged for good.
    for (size_t p = 1; p + 1 < rec.path.size(); ++p) {
        NodeId n = rec.path[p];
        bool on_new = false;
        for (size_t q = 1; !on_new && q + 1 < path.size(); ++q)
            on_new = path[q] == n;
        if (!on_new)
            net_.netSwitch(n).purgeCbrFlow(flow);
    }
    // (Re-)reserve along the new path; by Slepian-Duguid this cannot
    // fail once admission accepted every link.
    for (size_t q = 1; q + 1 < path.size(); ++q) {
        int in_link = net_.linkIndexBetween(path[q - 1], path[q]);
        int out_link = net_.linkIndexBetween(path[q], path[q + 1]);
        AN2_ASSERT(in_link >= 0 && out_link >= 0,
                   "restored path uses a nonexistent link");
        const bool placed = net_.netSwitch(path[q]).restoreCbrRoute(
            flow, net_.linkEnds(in_link).to_port,
            net_.linkEnds(out_link).from_port, cells_per_frame);
        AN2_ASSERT(placed, "Slepian-Duguid re-reservation failed");
    }
    net_.controller(rec.src).setCbrActiveCells(flow, cells_per_frame);
    rec.path = path;
    rec.cbr_admitted = cells_per_frame;
}

void
Lan::abandonCbrFlow(FlowId flow)
{
    AN2_REQUIRE(flow >= 0 && flow < static_cast<FlowId>(flows_.size()),
                "unknown flow " << flow);
    FlowRecord& rec = flows_[static_cast<size_t>(flow)];
    AN2_REQUIRE(rec.cls == TrafficClass::CBR && rec.cbr_admitted == 0,
                "flow " << flow << " is not awaiting restoration");
    for (size_t p = 1; p + 1 < rec.path.size(); ++p)
        net_.netSwitch(rec.path[p]).purgeCbrFlow(flow);
}

}  // namespace an2::topo
