#include "an2/topo/lan.h"

#include <algorithm>

#include "an2/base/error.h"
#include "an2/base/rng.h"
#include "an2/obs/probe.h"
#include "an2/obs/recorder.h"

namespace an2::topo {

namespace {

/** Independent seed stream `stream` for node `n` under `seed`. */
uint64_t
nodeSeed(uint64_t seed, NodeId n, uint64_t stream)
{
    uint64_t s = seed + UINT64_C(0x9e3779b97f4a7c15) * (stream + 1);
    splitmix64(s);
    s ^= static_cast<uint64_t>(static_cast<uint32_t>(n));
    return splitmix64(s);
}

}  // namespace

Lan::Lan(const Topology& topo, LanConfig config)
    : topo_(topo), config_(std::move(config)), net_(config_.net),
      router_(topo_)
{
    AN2_REQUIRE(config_.matcher != nullptr, "LanConfig needs a matcher");
    AN2_REQUIRE(config_.max_clock_error >= 0.0,
                "clock error must be non-negative");
    AN2_REQUIRE(topo_.numHosts() >= 2,
                "a LAN needs at least two hosts to talk");

    // Nodes in topology order, so NodeId values coincide.
    for (NodeId n = 0; n < topo_.numNodes(); ++n) {
        double err = 0.0;
        if (config_.max_clock_error > 0.0) {
            uint64_t s = nodeSeed(config_.seed, n, 0);
            double u = static_cast<double>(s >> 11) * 0x1.0p-53;
            err = config_.max_clock_error * (2.0 * u - 1.0);
        }
        PicoTime phase = 0;
        if (config_.phase_jitter) {
            uint64_t s = nodeSeed(config_.seed, n, 1);
            phase = static_cast<PicoTime>(
                s % static_cast<uint64_t>(config_.net.slot_ps));
        }
        if (topo_.isHost(n)) {
            NodeId id = net_.addController(err, nodeSeed(config_.seed, n, 2),
                                           phase);
            AN2_ASSERT(id == n, "node id mismatch");
        } else {
            int ports = topo_.degree(n);
            AN2_REQUIRE(ports > 0, "switch " << n << " has no edges");
            NodeId id = net_.addSwitch(
                ports, err,
                config_.matcher(ports, nodeSeed(config_.seed, n, 3)),
                phase);
            AN2_ASSERT(id == n, "node id mismatch");
        }
    }

    // Ports follow adjacency order: the port a node uses for edge e is
    // the rank of e in its adjacency list (hosts always use port 0).
    std::vector<PortId> next_port(static_cast<size_t>(topo_.numNodes()), 0);
    edge_links_.assign(2 * static_cast<size_t>(topo_.numEdges()), -1);
    for (int e = 0; e < topo_.numEdges(); ++e) {
        const TopoEdge& te = topo_.edge(e);
        PortId pa = next_port[static_cast<size_t>(te.a)]++;
        PortId pb = next_port[static_cast<size_t>(te.b)]++;
        int ab = net_.connect(te.a, pa, te.b, pb, te.latency_ps);
        int ba = net_.connect(te.b, pb, te.a, pa, te.latency_ps);
        edge_links_[2 * static_cast<size_t>(e)] = ab;
        edge_links_[2 * static_cast<size_t>(e) + 1] = ba;
    }
    link_edge_.assign(static_cast<size_t>(net_.numLinks()), EdgeDir{});
    for (int e = 0; e < topo_.numEdges(); ++e) {
        link_edge_[static_cast<size_t>(edge_links_[2 * static_cast<size_t>(
            e)])] = {e, true};
        link_edge_[static_cast<size_t>(
            edge_links_[2 * static_cast<size_t>(e) + 1])] = {e, false};
    }
}

void
Lan::checkHost(NodeId n) const
{
    AN2_REQUIRE(n >= 0 && n < topo_.numNodes() && topo_.isHost(n),
                "node " << n << " is not a host");
}

int
Lan::netLinkIndex(int e, bool a_to_b) const
{
    AN2_REQUIRE(e >= 0 && e < topo_.numEdges(), "unknown edge " << e);
    return edge_links_[2 * static_cast<size_t>(e) + (a_to_b ? 0 : 1)];
}

FlowId
Lan::addCbrFlow(NodeId src_host, NodeId dst_host, int cells_per_frame)
{
    checkHost(src_host);
    checkHost(dst_host);
    FlowId flow = net_.nextFlowId();
    std::vector<NodeId> path = router_.path(src_host, dst_host, flow);
    AN2_REQUIRE(!path.empty(), "no route from host " << src_host
                                                     << " to " << dst_host);
    FlowId got = net_.addCbrFlow(path, cells_per_frame);
    if (got == kNoFlow)
        return kNoFlow;
    AN2_ASSERT(got == flow, "flow id drifted from nextFlowId()");
    flows_.push_back({src_host, dst_host, TrafficClass::CBR,
                      std::move(path)});
    return flow;
}

FlowId
Lan::addVbrFlow(NodeId src_host, NodeId dst_host, double rate)
{
    checkHost(src_host);
    checkHost(dst_host);
    FlowId flow = net_.nextFlowId();
    std::vector<NodeId> path = router_.path(src_host, dst_host, flow);
    AN2_REQUIRE(!path.empty(), "no route from host " << src_host
                                                     << " to " << dst_host);
    FlowId got = net_.addVbrFlow(path, rate);
    AN2_ASSERT(got == flow, "flow id drifted from nextFlowId()");
    flows_.push_back({src_host, dst_host, TrafficClass::VBR,
                      std::move(path)});
    return flow;
}

int
Lan::placeMatrix(Pattern pattern, const TrafficSpec& spec, uint64_t seed,
                 double hot_fraction, int servers)
{
    std::vector<NodeId> hosts = topo_.hosts();
    const int h = static_cast<int>(hosts.size());
    Xoshiro256 rng(seed);
    int placed = 0;

    auto place = [&](NodeId src, NodeId dst) {
        if (src == dst)
            return;
        FlowId f = spec.cls == TrafficClass::CBR
                       ? addCbrFlow(src, dst, spec.cbr_cells_per_frame)
                       : addVbrFlow(src, dst, spec.vbr_rate);
        if (f != kNoFlow)
            ++placed;
    };

    switch (pattern) {
      case Pattern::Uniform:
        for (int i = 0; i < h; ++i) {
            // Uniform among the other h-1 hosts.
            auto pick = static_cast<int>(
                rng.nextBelow(static_cast<uint64_t>(h - 1)));
            if (pick >= i)
                ++pick;
            place(hosts[static_cast<size_t>(i)],
                  hosts[static_cast<size_t>(pick)]);
        }
        break;

      case Pattern::Hotspot: {
        AN2_REQUIRE(hot_fraction >= 0.0 && hot_fraction <= 1.0,
                    "hot fraction must be in [0, 1]");
        auto hot = static_cast<int>(
            rng.nextBelow(static_cast<uint64_t>(h)));
        for (int i = 0; i < h; ++i) {
            if (i == hot)
                continue;
            int dst;
            if (rng.nextBernoulli(hot_fraction)) {
                dst = hot;
            } else {
                dst = static_cast<int>(
                    rng.nextBelow(static_cast<uint64_t>(h - 1)));
                if (dst >= i)
                    ++dst;
            }
            place(hosts[static_cast<size_t>(i)],
                  hosts[static_cast<size_t>(dst)]);
        }
        break;
      }

      case Pattern::ClientServer: {
        AN2_REQUIRE(servers >= 1 && servers < h,
                    "need 1 <= servers < hosts");
        // Clients spread over the servers round-robin; each server
        // answers one random client (the reply direction).
        for (int i = servers; i < h; ++i)
            place(hosts[static_cast<size_t>(i)],
                  hosts[static_cast<size_t>((i - servers) % servers)]);
        for (int s = 0; s < servers; ++s) {
            auto c = static_cast<int>(rng.nextBelow(
                static_cast<uint64_t>(h - servers)));
            place(hosts[static_cast<size_t>(s)],
                  hosts[static_cast<size_t>(servers + c)]);
        }
        break;
      }
    }
    return placed;
}

void
Lan::scheduleFaults(const fault::FaultPlan& plan)
{
    AN2_REQUIRE(!plan.probabilistic(),
                "network fault plans support scripted link events only");
    for (const fault::FaultEvent& ev : plan.events) {
        AN2_REQUIRE(ev.kind == fault::FaultKind::LinkDown ||
                        ev.kind == fault::FaultKind::LinkUp,
                    "network fault plans support link events only (got "
                        << fault::faultKindName(ev.kind) << ")");
        AN2_REQUIRE(ev.target >= 0 && ev.target < net_.numLinks(),
                    "fault link target " << ev.target << " out of range");
        fault_events_.push_back(ev);
    }
    std::stable_sort(fault_events_.begin(), fault_events_.end(),
                     [](const fault::FaultEvent& x,
                        const fault::FaultEvent& y) {
                         return x.slot < y.slot;
                     });
    fault_cursor_ = 0;
}

void
Lan::installVbrPath(FlowId flow, const std::vector<NodeId>& path)
{
    for (size_t k = 1; k + 1 < path.size(); ++k) {
        int in_link = net_.linkIndexBetween(path[k - 1], path[k]);
        int out_link = net_.linkIndexBetween(path[k], path[k + 1]);
        AN2_ASSERT(in_link >= 0 && out_link >= 0,
                   "rerouted path uses a nonexistent link");
        PortId in_port = net_.linkEnds(in_link).to_port;
        PortId out_port = net_.linkEnds(out_link).from_port;
        NetSwitch& sw = net_.netSwitch(path[k]);
        if (sw.hasRoute(flow))
            sw.updateRoute(flow, out_port);
        else
            sw.addRoute(flow, in_port, out_port, TrafficClass::VBR, 0);
    }
}

void
Lan::applyFault(const fault::FaultEvent& ev)
{
    const bool up = ev.kind == fault::FaultKind::LinkUp;
    net_.setLinkUpByIndex(ev.target, up);
    const EdgeDir& ed = link_edge_[static_cast<size_t>(ev.target)];
    router_.setEdgeDirAlive(ed.edge, ed.a_to_b, up);
    obs::count(obs::Counter::FaultEvents);
    if (up)
        return;  // revived links serve future (re)routes only

    // Deterministic ECMP failover: every VBR flow whose current path
    // crosses the dead directed link re-paths, in flow-id order.
    for (FlowId f = 0; f < static_cast<FlowId>(flows_.size()); ++f) {
        FlowRecord& rec = flows_[static_cast<size_t>(f)];
        if (rec.cls != TrafficClass::VBR)
            continue;  // CBR reservations are pinned
        bool crosses = false;
        for (size_t k = 0; !crosses && k + 1 < rec.path.size(); ++k)
            crosses = net_.linkIndexBetween(rec.path[k], rec.path[k + 1]) ==
                      ev.target;
        if (!crosses)
            continue;
        std::vector<NodeId> fresh = router_.path(rec.src, rec.dst, f);
        if (fresh.empty()) {
            ++unroutable_;  // blackholed until something revives
            continue;
        }
        installVbrPath(f, fresh);
        rec.path = std::move(fresh);
        ++reroutes_;
        obs::count(obs::Counter::EcmpReroutes);
    }
}

void
Lan::runSegment(PicoTime until_ps, int threads)
{
    if (threads <= 1) {
        net_.run(until_ps);
        return;
    }
    if (!engine_ || engine_threads_ != threads) {
        engine_ = std::make_unique<ParallelNet>(net_, threads);
        engine_threads_ = threads;
    }
    engine_->run(until_ps);
}

void
Lan::run(PicoTime until_ps, int threads)
{
    while (fault_cursor_ < fault_events_.size()) {
        const fault::FaultEvent& ev = fault_events_[fault_cursor_];
        PicoTime t = ev.slot * config_.net.slot_ps;
        if (t > until_ps)
            break;
        runSegment(t, threads);
        applyFault(ev);
        ++fault_cursor_;
    }
    runSegment(until_ps, threads);
}

void
Lan::runFrames(int64_t frames, int threads)
{
    AN2_REQUIRE(frames > 0, "must run at least one frame");
    run(frames * config_.net.switch_frame_slots * config_.net.slot_ps,
        threads);
}

LanStats
Lan::stats() const
{
    LanStats out;
    out.reroutes = reroutes_;
    out.unroutable = unroutable_;
    double wall_sum = 0.0;
    double adj_sum = 0.0;
    for (NodeId n = 0; n < topo_.numNodes(); ++n) {
        if (topo_.isHost(n)) {
            const Controller& c = net_.controller(n);
            for (const auto& [flow, st] : c.allDeliveryStats()) {
                out.delivered += st.delivered;
                out.order_violations += st.order_violations;
                wall_sum += st.wall_latency_ps.sum();
                adj_sum += st.adjusted_latency_ps.sum();
            }
        } else {
            const NetSwitch& sw = net_.netSwitch(n);
            out.cbr_forwarded += sw.cbrForwarded();
            out.vbr_forwarded += sw.vbrForwarded();
            out.vbr_dropped += sw.vbrDropped();
        }
    }
    // Per-class split in a second pass keyed by the flow table (the
    // aggregate sums above keep their original accumulation order, so
    // their floating-point results are unchanged).
    double cbr_wall_sum = 0.0;
    double vbr_wall_sum = 0.0;
    for (FlowId f = 0; f < static_cast<FlowId>(flows_.size()); ++f) {
        const FlowRecord& rec = flows_[static_cast<size_t>(f)];
        int64_t injected = net_.controller(rec.src).injectedCells(f);
        out.injected += injected;
        const Controller& sink = net_.controller(rec.dst);
        int64_t delivered = 0;
        double wall = 0.0;
        if (sink.hasDeliveries(f)) {
            const FlowDeliveryStats& st = sink.deliveryStats(f);
            delivered = st.delivered;
            wall = st.wall_latency_ps.sum();
        }
        if (rec.cls == TrafficClass::CBR) {
            out.cbr_injected += injected;
            out.cbr_delivered += delivered;
            cbr_wall_sum += wall;
        } else {
            out.vbr_injected += injected;
            out.vbr_delivered += delivered;
            vbr_wall_sum += wall;
        }
    }
    for (int l = 0; l < net_.numLinks(); ++l)
        out.link_lost += net_.linkAt(l).cellsLost();
    if (out.delivered > 0) {
        out.mean_wall_latency_ps =
            wall_sum / static_cast<double>(out.delivered);
        out.mean_adjusted_latency_ps =
            adj_sum / static_cast<double>(out.delivered);
    }
    if (out.cbr_delivered > 0)
        out.mean_cbr_wall_latency_ps =
            cbr_wall_sum / static_cast<double>(out.cbr_delivered);
    if (out.vbr_delivered > 0)
        out.mean_vbr_wall_latency_ps =
            vbr_wall_sum / static_cast<double>(out.vbr_delivered);
    return out;
}

const std::vector<NodeId>&
Lan::flowPath(FlowId flow) const
{
    AN2_REQUIRE(flow >= 0 && flow < static_cast<FlowId>(flows_.size()),
                "unknown flow " << flow);
    return flows_[static_cast<size_t>(flow)].path;
}

}  // namespace an2::topo
