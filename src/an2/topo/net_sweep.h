/**
 * @file
 * Declarative experiment sweeps over whole networks (topo::Lan), the
 * LAN-scale sibling of an2/harness/sweep.h.
 *
 * A NetSweepSpec names the axes — topologies and offered VBR loads —
 * plus a traffic pattern, replicate count, and the run length in switch
 * frames. Every run's seeds derive from the base seed and the run's
 * grid index through the harness's splitmix64 scheme, and the engine
 * thread count never enters any result: the emitted an2.netsweep.v1
 * document is byte-identical whether runs execute on the serial event
 * loop or the sharded parallel engine, on any thread count, with or
 * without a fault plan.
 */
#ifndef AN2_TOPO_NET_SWEEP_H
#define AN2_TOPO_NET_SWEEP_H

#include <functional>
#include <string>
#include <vector>

#include "an2/fault/chaos.h"
#include "an2/fault/fault_plan.h"
#include "an2/fault/restoration.h"
#include "an2/harness/aggregate.h"
#include "an2/topo/lan.h"
#include "an2/topo/topology.h"

namespace an2::topo {

/** One topology under comparison (axis 1). */
struct NetTopoSpec
{
    /** Display name, e.g. "fat-tree(16)"; lands in tables and JSON. */
    std::string name;

    std::function<Topology()> make;
};

/** Declarative description of a network-scale sweep. */
struct NetSweepSpec
{
    /** Experiment identifier, e.g. "netscale"; lands in the JSON meta. */
    std::string name;

    /** One-line description for reports. */
    std::string description;

    /** Traffic-matrix pattern every run places. */
    Pattern pattern = Pattern::Uniform;

    /** Topologies to compare (axis 1). */
    std::vector<NetTopoSpec> topos;

    /** Offered VBR rates, cells/slot per placed flow (axis 2). */
    std::vector<double> loads;

    /** Independent replicates per (topo, load) cell (axis 3). */
    int replicates = 1;

    /** Root of the deterministic seed derivation. */
    uint64_t base_seed = 1;

    /** Switch frames of nominal wall time per run. */
    int64_t frames = 20;

    /** Also reserve a CBR matrix of this many cells/frame (0 = none). */
    int cbr_cells_per_frame = 1;

    /** Slot duration, frame length, controller padding. */
    NetworkConfig net;

    /** Per-node clock error bound and phase jitter (see LanConfig). */
    double max_clock_error = 1e-4;
    bool phase_jitter = true;

    /** PIM iterations for every switch's VBR matcher. */
    int pim_iterations = 4;

    /**
     * Link fault scenario applied identically to every run (empty =
     * none). Targets are network link indices; scripted link events
     * only. Each run revalidates the plan against its topology.
     */
    fault::FaultPlan faults;

    /**
     * Seeded chaos churn (empty = none): expanded per run into a
     * concrete scripted FaultPlan against the run's own topology, over
     * the run's nominal horizon. The expansion depends only on the spec
     * and the topology, so the same grid point replays byte-identically
     * on any engine/thread count.
     */
    fault::ChaosSpec chaos;

    /**
     * Drive every run with a CBR PathRestorer (revoke / re-route /
     * re-admit with retry+backoff). The policy's seed, when left 0, is
     * derived per run as runSeed(base_seed, run_index, 2).
     */
    bool restore = false;
    fault::RestorePolicy restore_policy;
};

/** Aggregated results for one (topo, load) grid cell. */
struct NetCellSummary
{
    std::string topo;
    double load = 0.0;
    int replicates = 0;

    /** delivered / injected per replicate. */
    harness::Aggregate throughput;
    harness::Aggregate mean_wall_latency_ps;
    harness::Aggregate mean_adjusted_latency_ps;

    /** Totals across replicates. */
    int64_t injected = 0;
    int64_t delivered = 0;
    int64_t vbr_dropped = 0;

    /** Fault totals across replicates (JSON only under a fault plan). */
    int64_t reroutes = 0;
    int64_t unroutable = 0;
    int64_t link_lost = 0;

    /** Restoration totals across replicates (JSON only when
        spec.restore is set). */
    int64_t cbr_restored = 0;
    int64_t cbr_degraded = 0;
    int64_t cbr_abandoned = 0;
    int64_t cbr_restore_retries = 0;
    int64_t restore_lost = 0;
};

/**
 * Execute every run of the sweep. `engine_threads` <= 1 drives each
 * network with the serial event loop, more with the sharded engine —
 * a wall-clock choice only, invisible in the results.
 *
 * `on_progress`, if set, is called after each completed run with
 * (completed, total).
 */
std::vector<NetCellSummary> runNetSweep(
    const NetSweepSpec& spec, int engine_threads = 1,
    const std::function<void(int, int)>& on_progress = {});

/**
 * Serialize to the an2.netsweep.v1 schema: `{meta, axes, cells[]}`
 * like an2.sweep.v1, with topo/load axes and network-level metrics.
 * Deterministic; no engine, thread, or host data is emitted.
 */
std::string netSweepToJson(const NetSweepSpec& spec,
                           const std::vector<NetCellSummary>& cells);

class LanMetricsSeries;

/**
 * Re-run one grid point of the sweep — the first topology at its
 * highest load, replicate 0, with that run's exact seeds — sampling
 * cumulative LanStats into `series` every series.everySlots() slots.
 * Samples land at Lan::run() boundaries, which are full barriers in
 * both engines, so the series is byte-identical for any
 * `engine_threads`, with or without a fault plan.
 */
void observeNetPoint(const NetSweepSpec& spec, int engine_threads,
                     LanMetricsSeries& series);

/** Spec-form name of a traffic pattern ("uniform", ...). */
const char* patternName(Pattern pattern);

}  // namespace an2::topo

#endif  // AN2_TOPO_NET_SWEEP_H
