/**
 * @file
 * The Lan builder: instantiate a Network from a Topology and drive it
 * by *endpoints* instead of explicit paths.
 *
 * Lan owns the mapping between the abstract graph and the simulator:
 * hosts become Controllers, switches become NetSwitches with one port
 * per adjacent edge, and every topology edge becomes two directed
 * NetLinks. Flows are placed by (source host, destination host); the
 * Router picks the shortest path with deterministic ECMP tie-breaking,
 * so a flow's route is a pure function of the topology and its flow id.
 *
 * Traffic matrices place whole workloads in one call (uniform random
 * destinations, hotspot, client-server), seeded independently of the
 * node clocks so the same matrix lands on any topology deterministically.
 *
 * Faults: scheduleFaults() takes a fault::FaultPlan whose link events
 * target *network link indices* (see netLinkIndex). run() splits the
 * simulation at each event's nominal wall time, applies the event to
 * both the Network and the Router, and re-paths every VBR flow whose
 * current route crosses a dead link onto its next live ECMP path
 * (deterministic failover). CBR flows stay pinned — their frame-schedule
 * reservations cannot move without re-admission — and simply lose cells
 * while the link is down, exactly like the paper's reserved traffic.
 * Links that come back up are used by newly (re)routed flows only; no
 * flow moves back automatically.
 *
 * run(until, threads) drives the Network serially (threads <= 1) or on
 * the sharded ParallelNet engine — results are byte-identical either
 * way, including with fault plans.
 */
#ifndef AN2_TOPO_LAN_H
#define AN2_TOPO_LAN_H

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "an2/fault/fault_plan.h"
#include "an2/network/network.h"
#include "an2/topo/parallel_net.h"
#include "an2/topo/routing.h"
#include "an2/topo/topology.h"

namespace an2::fault {
class PathRestorer;
struct RestorePolicy;
}  // namespace an2::fault

namespace an2::topo {

/** Everything Lan needs beyond the graph itself. */
struct LanConfig
{
    /** Slot duration, frame length, controller padding. */
    NetworkConfig net;

    /** Per-node clock rate errors are drawn uniformly from
        [-max_clock_error, +max_clock_error] (seeded; 0 = synchronous). */
    double max_clock_error = 1e-4;

    /** Give each node a random slot-phase offset in [0, slot_ps). */
    bool phase_jitter = true;

    /** Seed for clock errors, phases, and controller VBR injection. */
    uint64_t seed = 1;

    /**
     * VBR matcher factory, called once per switch with its port count
     * and a per-switch seed. Required.
     */
    std::function<std::unique_ptr<Matcher>(int n_ports, uint64_t seed)>
        matcher;
};

/** Which hosts talk to which in a bulk traffic placement. */
enum class Pattern {
    Uniform,       ///< every host sends to one uniformly random other host
    Hotspot,       ///< a fraction of hosts all send to one hot host
    ClientServer,  ///< clients send to servers round-robin; servers reply
};

/** What each placed flow carries. */
struct TrafficSpec
{
    TrafficClass cls = TrafficClass::VBR;
    double vbr_rate = 0.05;        ///< cells/slot for VBR flows
    int cbr_cells_per_frame = 1;   ///< reservation for CBR flows
};

/** Totals across every sink in the network (reporting). */
struct LanStats
{
    int64_t injected = 0;
    int64_t delivered = 0;
    int64_t order_violations = 0;
    int64_t link_lost = 0;       ///< cells lost on downed links
    int64_t vbr_dropped = 0;     ///< cells dropped by VBR buffer caps
    int64_t cbr_forwarded = 0;   ///< switch forwards, CBR
    int64_t vbr_forwarded = 0;   ///< switch forwards, VBR
    int64_t reroutes = 0;        ///< ECMP failovers applied
    int64_t unroutable = 0;      ///< flows left pathless by faults

    /** Delivery-weighted mean end-to-end latency, wall picoseconds. */
    double mean_wall_latency_ps = 0.0;

    /** Delivery-weighted mean Appendix B adjusted latency. */
    double mean_adjusted_latency_ps = 0.0;

    // Per-traffic-class splits of the injection/delivery/latency totals
    // (the telemetry pipeline reports CBR and VBR separately; the
    // paper's reservation argument is about exactly this split).
    int64_t cbr_injected = 0;
    int64_t vbr_injected = 0;
    int64_t cbr_delivered = 0;
    int64_t vbr_delivered = 0;
    double mean_cbr_wall_latency_ps = 0.0;
    double mean_vbr_wall_latency_ps = 0.0;

    // CBR path restoration (all zero unless enableRestoration() ran;
    // see fault::PathRestorer).
    int64_t cbr_restored = 0;         ///< episodes re-admitted at full rate
    int64_t cbr_degraded = 0;         ///< episodes re-admitted degraded
    int64_t cbr_abandoned = 0;        ///< episodes given up
    int64_t cbr_restore_retries = 0;  ///< re-admission attempts made
    int64_t cbr_restore_pending = 0;  ///< episodes still pending
    /** Cells shed during restoration: dropped at revoked routes plus
        queued cells purged by re-pathing. */
    int64_t restore_lost = 0;
    /** Reservation slots released downstream of dead links before any
        restoration ran (the immediate-revocation fix; nonzero only when
        no restorer is armed). */
    int64_t cbr_downstream_released = 0;
};

/** A Topology instantiated as a runnable Network. */
class Lan
{
  public:
    Lan(const Topology& topo, LanConfig config);
    ~Lan();  // out of line: fault::PathRestorer is forward-declared

    const Topology& topology() const { return topo_; }
    Network& net() { return net_; }
    const Network& net() const { return net_; }
    Router& router() { return router_; }

    /**
     * Reserve a CBR flow of k cells/frame from one host to another,
     * routed on the flow's ECMP shortest path.
     * @return the flow id, or kNoFlow when admission fails.
     */
    FlowId addCbrFlow(NodeId src_host, NodeId dst_host, int cells_per_frame);

    /** Route a VBR flow injecting at `rate` cells/slot between hosts. */
    FlowId addVbrFlow(NodeId src_host, NodeId dst_host, double rate);

    /**
     * Place a whole traffic matrix (seeded, deterministic): one flow
     * per sending host per the pattern. Hotspot sends `hot_fraction`
     * of hosts to one hot host; ClientServer uses the first `servers`
     * hosts as servers.
     * @return flows actually placed (CBR admission can refuse some).
     */
    int placeMatrix(Pattern pattern, const TrafficSpec& spec,
                    uint64_t seed, double hot_fraction = 0.25,
                    int servers = 4);

    /**
     * Register a fault plan. Only scripted link_down/link_up events are
     * meaningful in a network (ports belong to the single-switch
     * simulator); targets are network link indices. Events are applied
     * at nominal wall time slot * slot_ps, identically under the serial
     * and parallel engines.
     */
    void scheduleFaults(const fault::FaultPlan& plan);

    /** The directed network link of edge `e`; a_to_b selects the
        direction (fault-plan target values). */
    int netLinkIndex(int e, bool a_to_b) const;

    /**
     * Run until wall time `until_ps`, applying scheduled fault events
     * on the way. threads <= 1 runs the serial Network loop; more runs
     * the sharded engine. Byte-identical results either way.
     */
    void run(PicoTime until_ps, int threads = 1);

    /** Run `frames` switch frames of nominal wall time. */
    void runFrames(int64_t frames, int threads = 1);

    /** Totals over every controller, link, and switch. */
    LanStats stats() const;

    /** Flows placed so far (flow ids are [0, numFlows)). */
    int numFlows() const { return static_cast<int>(flows_.size()); }

    /** Current routed path of a flow (endpoints included). */
    const std::vector<NodeId>& flowPath(FlowId flow) const;

    // ---- CBR path restoration ----------------------------------------

    /**
     * Arm a fault::PathRestorer: from now on, a link_down revokes every
     * CBR reservation crossing the dead link and re-admits each flow on
     * a fresh path under the policy's retry/backoff schedule. Must be
     * called before run(); fatal when called twice.
     */
    void enableRestoration(const fault::RestorePolicy& policy);

    /** The armed restorer, or null (state and telemetry inspection). */
    const fault::PathRestorer* restorer() const { return restorer_.get(); }

    /** Per-flow facts the restorer (and tests) read. */
    struct FlowInfo
    {
        NodeId src = -1;
        NodeId dst = -1;
        TrafficClass cls = TrafficClass::VBR;
        int cbr_cells = 0;     ///< registered reservation, cells/frame
        int cbr_admitted = 0;  ///< currently admitted rate (<= cbr_cells)
    };
    FlowInfo flowInfo(FlowId flow) const;

    /** Admission LinkIds of each consecutive node pair along `path`. */
    std::vector<LinkId> pathLinks(const std::vector<NodeId>& path) const;

    /**
     * Revoke a CBR flow end-to-end: every switch on its path drops the
     * reservation (frame slots return to the schedules), the admission
     * commitment is released on every link, and the source is muted.
     * @return the cells/frame released.
     */
    int revokeCbrPath(FlowId flow);

    /**
     * Re-admit a previously revoked CBR flow at `cells_per_frame` along
     * `path` (which the caller has checked admissible): reserve on every
     * link and switch, purge queues at switches the flow no longer
     * crosses, and un-mute the source. Fatal if admission refuses.
     */
    void installRestoredCbrPath(FlowId flow,
                                const std::vector<NodeId>& path,
                                int cells_per_frame);

    /** Give a revoked CBR flow up: purge its queues everywhere; the
        source stays muted and its route tombstones keep shedding
        in-flight cells. */
    void abandonCbrFlow(FlowId flow);

    /** ECMP failovers applied so far. */
    int64_t reroutes() const { return reroutes_; }

    /** Flows stranded without a live path by faults. */
    int64_t unroutable() const { return unroutable_; }

    /** Windows executed by the parallel engine (0 under serial runs). */
    int64_t shardWindows() const
    {
        return engine_ ? engine_->windows() : 0;
    }

  private:
    struct FlowRecord
    {
        NodeId src = -1;
        NodeId dst = -1;
        TrafficClass cls = TrafficClass::VBR;
        std::vector<NodeId> path;
        int cbr_cells = 0;     ///< registered CBR reservation
        int cbr_admitted = 0;  ///< currently admitted (0 mid-restoration)
        /** Without a restorer: smallest path-link index whose admission
            was already released downstream of a dead link (SIZE_MAX =
            nothing released). */
        size_t revoked_from = SIZE_MAX;
    };

    void checkHost(NodeId n) const;

    /** Immediate downstream revocation (no restorer armed): free the
        reservation slots a dead link strands at every switch and link
        past it. */
    void releaseDownstream(int dead_link);

    /** Install VBR routing state along `path` for `flow` (switches that
        already know the flow are repointed). */
    void installVbrPath(FlowId flow, const std::vector<NodeId>& path);

    /** Apply one fault event to net + router, rerouting VBR flows. */
    void applyFault(const fault::FaultEvent& ev);

    /** Drive the chosen engine to `until_ps` (no fault handling). */
    void runSegment(PicoTime until_ps, int threads);

    const Topology& topo_;
    LanConfig config_;
    Network net_;
    Router router_;
    /** Directed net link index per edge: [2e] = a->b, [2e+1] = b->a. */
    std::vector<int> edge_links_;
    /** Per net link: the (edge, a_to_b) it implements. */
    struct EdgeDir
    {
        int edge = -1;
        bool a_to_b = true;
    };
    std::vector<EdgeDir> link_edge_;
    std::vector<FlowRecord> flows_;  ///< indexed by FlowId
    std::vector<fault::FaultEvent> fault_events_;
    size_t fault_cursor_ = 0;
    int64_t reroutes_ = 0;
    int64_t unroutable_ = 0;
    std::unique_ptr<ParallelNet> engine_;
    int engine_threads_ = 0;
    std::unique_ptr<fault::PathRestorer> restorer_;
    int64_t downstream_released_ = 0;
};

}  // namespace an2::topo

#endif  // AN2_TOPO_LAN_H
