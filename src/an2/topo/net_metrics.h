/**
 * @file
 * Deterministic network-level metrics time series.
 *
 * The single-switch metrics ring samples an attached Recorder; a LAN run
 * has no per-thread recorder to sample (the sharded engine's workers are
 * observation-free by design). Instead, the series samples LanStats at
 * *nominal wall-time barriers*: runLanWithMetrics() drives Lan::run() in
 * segments of `every_slots` nominal slots and records the cumulative
 * totals after each segment. Lan::run() is byte-identical under the
 * serial and sharded engines — segment boundaries are full barriers in
 * both — so the exported `an2.metrics.v1` document is byte-identical
 * for any thread count, fault plan or not. That property is pinned by
 * the shard-merge identity test and the netscale CI check.
 */
#ifndef AN2_TOPO_NET_METRICS_H
#define AN2_TOPO_NET_METRICS_H

#include <cstdint>
#include <string>
#include <vector>

#include "an2/topo/lan.h"

namespace an2::topo {

/** One cumulative LanStats observation at a slot barrier. */
struct LanMetricsSample
{
    SlotTime slot = 0;
    LanStats stats;
};

/** Accumulates LAN samples and serializes an2.metrics.v1 documents. */
class LanMetricsSeries
{
  public:
    /** @param every_slots Sampling period in nominal slots (> 0). */
    explicit LanMetricsSeries(int64_t every_slots);

    int64_t everySlots() const { return every_slots_; }

    /** Record the cumulative `stats` observed at `slot`. */
    void sample(SlotTime slot, const LanStats& stats);

    size_t size() const { return samples_.size(); }

    const LanMetricsSample& at(size_t k) const { return samples_[k]; }

    /** All samples as an2.metrics.v1 JSON lines (source "lan"). */
    std::string toJsonLines() const;

    /** Prometheus-style exposition of the newest sample. */
    std::string toPrometheus() const;

  private:
    int64_t every_slots_;
    std::vector<LanMetricsSample> samples_;
};

/**
 * Run `lan` for `frames` switch frames on `threads` engine threads,
 * sampling into `series` every series.everySlots() nominal slots (plus
 * a final sample at the end when the total is not a period multiple).
 */
void runLanWithMetrics(Lan& lan, int64_t frames, int threads,
                       LanMetricsSeries& series);

}  // namespace an2::topo

#endif  // AN2_TOPO_NET_METRICS_H
