#include "an2/topo/parallel_net.h"

#include <barrier>
#include <limits>
#include <thread>

#include "an2/base/error.h"
#include "an2/obs/probe.h"
#include "an2/obs/recorder.h"

namespace an2::topo {

namespace {
constexpr PicoTime kNever = std::numeric_limits<PicoTime>::max();
}  // namespace

ParallelNet::ParallelNet(Network& net, int threads) : net_(net)
{
    AN2_REQUIRE(threads >= 1, "need at least one thread");
    AN2_REQUIRE(net.numNodes() > 0, "network has no nodes");
    threads_ = std::min(threads, net.numNodes());

    min_latency_ = kNever;
    for (int l = 0; l < net.numLinks(); ++l)
        min_latency_ = std::min(min_latency_, net.linkAt(l).latencyPs());
    AN2_REQUIRE(net.numLinks() > 0 && min_latency_ > 0,
                "the parallel engine needs every link latency positive "
                "(the conservative window is the minimum latency)");

    shards_.resize(static_cast<size_t>(threads_));
    for (NodeId n = 0; n < net.numNodes(); ++n)
        shards_[static_cast<size_t>(n % threads_)].nodes.push_back(n);
    for (int l = 0; l < net.numLinks(); ++l) {
        NodeId up = net.linkEnds(l).from;
        shards_[static_cast<size_t>(up % threads_)].links.push_back(l);
    }
}

PicoTime
ParallelNet::tickShard(int k, PicoTime end)
{
    PicoTime next = kNever;
    for (NodeId n : shards_[static_cast<size_t>(k)].nodes) {
        NetNode& node = net_.nodeAt(n);
        PicoTime t = node.nextTick();
        while (t <= end) {
            node.tick();
            t = node.nextTick();
        }
        next = std::min(next, t);
    }
    return next;
}

void
ParallelNet::commitShard(int k)
{
    for (int l : shards_[static_cast<size_t>(k)].links)
        net_.linkAt(l).commit();
}

void
ParallelNet::setWatchdog(int max_stalled_windows)
{
    AN2_REQUIRE(max_stalled_windows >= 0,
                "watchdog limit must be non-negative (0 disables)");
    watchdog_limit_ = max_stalled_windows;
}

void
ParallelNet::noteWindowAdvance(PicoTime prev_m, PicoTime m,
                               int& stalled) const
{
    if (watchdog_limit_ <= 0 || m == kNever || m > prev_m) {
        stalled = 0;
        return;
    }
    if (++stalled < watchdog_limit_)
        return;
    NodeId stuck = -1;
    for (NodeId n = 0; n < net_.numNodes() && stuck < 0; ++n)
        if (net_.nodeAt(n).nextTick() <= m)
            stuck = n;
    AN2_FATAL("ParallelNet watchdog: min next-tick stuck at "
              << m << " ps for " << stalled << " consecutive windows "
              << "(node " << stuck << ", shard " << stuck % threads_
              << " of " << threads_ << ")");
}

void
ParallelNet::run(PicoTime until_ps)
{
    // Sends go to the pending side for the duration of the run; leaving
    // deferred mode at the end re-enables plain Network::run use.
    int64_t windows_at_entry = windows_;
    for (int l = 0; l < net_.numLinks(); ++l)
        net_.linkAt(l).setDeferred(true);

    PicoTime m = kNever;
    for (NodeId n = 0; n < net_.numNodes(); ++n)
        m = std::min(m, net_.nodeAt(n).nextTick());

    int stalled = 0;
    if (threads_ == 1) {
        while (m <= until_ps) {
            PicoTime end = std::min(until_ps, m + min_latency_ - 1);
            PicoTime prev_m = m;
            m = tickShard(0, end);
            commitShard(0);
            ++windows_;
            noteWindowAdvance(prev_m, m, stalled);
        }
    } else {
        // Shared window state, published by the main thread (shard 0)
        // strictly between barrier phases. A shard that throws (e.g. an
        // invariant check) records the exception and keeps honoring the
        // barrier protocol so nobody deadlocks; the first error is
        // rethrown on the caller's thread after the pool drains.
        PicoTime window_end = 0;
        bool done = false;
        std::vector<PicoTime> local_min(static_cast<size_t>(threads_),
                                        kNever);
        std::vector<std::exception_ptr> errors(
            static_cast<size_t>(threads_));
        std::barrier sync(threads_);

        auto step = [&](int k) {
            auto idx = static_cast<size_t>(k);
            try {
                local_min[idx] = tickShard(k, window_end);
            } catch (...) {
                errors[idx] = std::current_exception();
                local_min[idx] = kNever;
            }
            sync.arrive_and_wait();  // all ticks done
            try {
                commitShard(k);
            } catch (...) {
                if (errors[idx] == nullptr)
                    errors[idx] = std::current_exception();
            }
            sync.arrive_and_wait();  // all commits done
        };

        auto worker = [&](int k) {
            while (true) {
                sync.arrive_and_wait();  // window published
                if (done)
                    return;
                step(k);
            }
        };

        std::vector<std::thread> pool;
        pool.reserve(static_cast<size_t>(threads_ - 1));
        for (int k = 1; k < threads_; ++k)
            pool.emplace_back(worker, k);

        std::exception_ptr failure;
        while (m <= until_ps) {
            window_end = std::min(until_ps, m + min_latency_ - 1);
            PicoTime prev_m = m;
            sync.arrive_and_wait();
            step(0);
            m = kNever;
            for (PicoTime t : local_min)
                m = std::min(m, t);
            ++windows_;
            for (const std::exception_ptr& e : errors)
                if (e != nullptr && failure == nullptr)
                    failure = e;
            // The watchdog must not throw past the barrier protocol
            // (workers would block forever at "window published"); route
            // it through the drain path like any shard error.
            try {
                noteWindowAdvance(prev_m, m, stalled);
            } catch (...) {
                if (failure == nullptr)
                    failure = std::current_exception();
            }
            if (failure != nullptr)
                break;
        }
        done = true;
        sync.arrive_and_wait();
        for (std::thread& t : pool)
            t.join();
        if (failure != nullptr) {
            for (int l = 0; l < net_.numLinks(); ++l)
                net_.linkAt(l).setDeferred(false);
            std::rethrow_exception(failure);
        }
    }

    obs::count(obs::Counter::ShardWindows, windows_ - windows_at_entry);
    for (int l = 0; l < net_.numLinks(); ++l)
        net_.linkAt(l).setDeferred(false);
}

}  // namespace an2::topo
