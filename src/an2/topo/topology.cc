#include "an2/topo/topology.h"

#include <set>
#include <utility>

#include "an2/base/error.h"
#include "an2/base/rng.h"

namespace an2::topo {

NodeId
Topology::addNode(NodeKind kind)
{
    auto id = static_cast<NodeId>(kind_.size());
    kind_.push_back(kind);
    adj_.emplace_back();
    if (kind == NodeKind::Host)
        ++n_hosts_;
    return id;
}

void
Topology::checkNode(NodeId n) const
{
    AN2_REQUIRE(n >= 0 && n < numNodes(), "unknown node " << n);
}

int
Topology::link(NodeId a, NodeId b, PicoTime latency_ps)
{
    checkNode(a);
    checkNode(b);
    AN2_REQUIRE(a != b, "self-edge at node " << a);
    AN2_REQUIRE(latency_ps > 0, "edge latency must be positive");
    for (const Neighbor& nb : adj_[static_cast<size_t>(a)])
        AN2_REQUIRE(nb.node != b,
                    "duplicate edge between " << a << " and " << b);
    AN2_REQUIRE(kind_[static_cast<size_t>(a)] != NodeKind::Host ||
                    adj_[static_cast<size_t>(a)].empty(),
                "host " << a << " already attached");
    AN2_REQUIRE(kind_[static_cast<size_t>(b)] != NodeKind::Host ||
                    adj_[static_cast<size_t>(b)].empty(),
                "host " << b << " already attached");
    int e = static_cast<int>(edges_.size());
    edges_.push_back({a, b, latency_ps});
    adj_[static_cast<size_t>(a)].push_back({b, e});
    adj_[static_cast<size_t>(b)].push_back({a, e});
    return e;
}

NodeKind
Topology::kind(NodeId n) const
{
    checkNode(n);
    return kind_[static_cast<size_t>(n)];
}

const TopoEdge&
Topology::edge(int e) const
{
    AN2_REQUIRE(e >= 0 && e < numEdges(), "unknown edge " << e);
    return edges_[static_cast<size_t>(e)];
}

const std::vector<Neighbor>&
Topology::neighbors(NodeId n) const
{
    checkNode(n);
    return adj_[static_cast<size_t>(n)];
}

std::vector<NodeId>
Topology::hosts() const
{
    std::vector<NodeId> out;
    out.reserve(static_cast<size_t>(n_hosts_));
    for (NodeId n = 0; n < numNodes(); ++n)
        if (kind_[static_cast<size_t>(n)] == NodeKind::Host)
            out.push_back(n);
    return out;
}

NodeId
Topology::hostSwitch(NodeId host) const
{
    AN2_REQUIRE(isHost(host), "node " << host << " is not a host");
    const auto& nb = adj_[static_cast<size_t>(host)];
    AN2_REQUIRE(nb.size() == 1, "host " << host << " is unattached");
    return nb[0].node;
}

PicoTime
Topology::minLatency() const
{
    AN2_REQUIRE(!edges_.empty(), "topology has no edges");
    PicoTime lo = edges_[0].latency_ps;
    for (const TopoEdge& e : edges_)
        lo = std::min(lo, e.latency_ps);
    return lo;
}

// ---- generators -----------------------------------------------------------

Topology
Topology::star(int leaves, int hosts_per_leaf, Latencies lat)
{
    AN2_REQUIRE(leaves >= 1 && hosts_per_leaf >= 1,
                "star needs at least one leaf and one host per leaf");
    Topology t("star(" + std::to_string(leaves) + "x" +
               std::to_string(hosts_per_leaf) + ")");
    NodeId core = t.addNode(NodeKind::Switch);
    std::vector<NodeId> leaf_ids;
    leaf_ids.reserve(static_cast<size_t>(leaves));
    for (int s = 0; s < leaves; ++s) {
        NodeId leaf = t.addNode(NodeKind::Switch);
        t.link(leaf, core, lat.trunk_ps);
        leaf_ids.push_back(leaf);
    }
    for (NodeId leaf : leaf_ids)
        for (int h = 0; h < hosts_per_leaf; ++h)
            t.link(t.addNode(NodeKind::Host), leaf, lat.host_ps);
    return t;
}

Topology
Topology::fatTree(int k, int hosts_per_edge, Latencies lat)
{
    AN2_REQUIRE(k >= 2 && k % 2 == 0, "fat-tree arity must be even");
    AN2_REQUIRE(hosts_per_edge >= 1, "need at least one host per edge");
    const int half = k / 2;
    Topology t("fat-tree(k=" + std::to_string(k) + ",h=" +
               std::to_string(hosts_per_edge) + ")");

    // Core switches first, then per pod: aggregation, then edge.
    std::vector<NodeId> core;
    core.reserve(static_cast<size_t>(half * half));
    for (int c = 0; c < half * half; ++c)
        core.push_back(t.addNode(NodeKind::Switch));

    std::vector<NodeId> edge_switches;
    for (int pod = 0; pod < k; ++pod) {
        std::vector<NodeId> agg;
        agg.reserve(static_cast<size_t>(half));
        for (int j = 0; j < half; ++j)
            agg.push_back(t.addNode(NodeKind::Switch));
        for (int j = 0; j < half; ++j) {
            NodeId e = t.addNode(NodeKind::Switch);
            edge_switches.push_back(e);
            for (int a = 0; a < half; ++a)
                t.link(e, agg[static_cast<size_t>(a)], lat.trunk_ps);
        }
        // Aggregation switch j reaches core group j.
        for (int j = 0; j < half; ++j)
            for (int c = 0; c < half; ++c)
                t.link(agg[static_cast<size_t>(j)],
                       core[static_cast<size_t>(j * half + c)],
                       lat.trunk_ps);
    }
    for (NodeId e : edge_switches)
        for (int h = 0; h < hosts_per_edge; ++h)
            t.link(t.addNode(NodeKind::Host), e, lat.host_ps);
    return t;
}

Topology
Topology::mesh(int rows, int cols, bool torus, int hosts_per_switch,
               Latencies lat)
{
    AN2_REQUIRE(rows >= 1 && cols >= 1, "mesh needs positive dimensions");
    if (torus)
        AN2_REQUIRE(rows >= 3 && cols >= 3,
                    "torus wraparound needs both dimensions >= 3");
    AN2_REQUIRE(hosts_per_switch >= 0, "negative hosts per switch");
    std::string name = torus ? "torus(" : "mesh(";
    Topology t(name + std::to_string(rows) + "x" + std::to_string(cols) +
               ",h=" + std::to_string(hosts_per_switch) + ")");

    auto at = [cols](int r, int c) { return static_cast<NodeId>(r * cols + c); };
    for (int r = 0; r < rows; ++r)
        for (int c = 0; c < cols; ++c)
            t.addNode(NodeKind::Switch);
    for (int r = 0; r < rows; ++r) {
        for (int c = 0; c < cols; ++c) {
            if (c + 1 < cols)
                t.link(at(r, c), at(r, c + 1), lat.trunk_ps);
            else if (torus)
                t.link(at(r, c), at(r, 0), lat.trunk_ps);
            if (r + 1 < rows)
                t.link(at(r, c), at(r + 1, c), lat.trunk_ps);
            else if (torus)
                t.link(at(r, c), at(0, c), lat.trunk_ps);
        }
    }
    for (int r = 0; r < rows; ++r)
        for (int c = 0; c < cols; ++c)
            for (int h = 0; h < hosts_per_switch; ++h)
                t.link(t.addNode(NodeKind::Host), at(r, c), lat.host_ps);
    return t;
}

Topology
Topology::ring(int switches, int hosts_per_switch, Latencies lat)
{
    AN2_REQUIRE(switches >= 3, "ring needs at least three switches");
    AN2_REQUIRE(hosts_per_switch >= 0, "negative hosts per switch");
    Topology t("ring(" + std::to_string(switches) + ",h=" +
               std::to_string(hosts_per_switch) + ")");
    for (int s = 0; s < switches; ++s)
        t.addNode(NodeKind::Switch);
    for (int s = 0; s < switches; ++s)
        t.link(static_cast<NodeId>(s),
               static_cast<NodeId>((s + 1) % switches), lat.trunk_ps);
    for (int s = 0; s < switches; ++s)
        for (int h = 0; h < hosts_per_switch; ++h)
            t.link(t.addNode(NodeKind::Host), static_cast<NodeId>(s),
                   lat.host_ps);
    return t;
}

Topology
Topology::randomRegular(int switches, int degree, int hosts_per_switch,
                        uint64_t seed, Latencies lat)
{
    AN2_REQUIRE(switches >= 2 && degree >= 1 && degree < switches,
                "d-regular graph needs 1 <= d < switches");
    AN2_REQUIRE((static_cast<int64_t>(switches) * degree) % 2 == 0,
                "switches * degree must be even");
    AN2_REQUIRE(hosts_per_switch >= 0, "negative hosts per switch");
    Topology t("random-regular(" + std::to_string(switches) + ",d=" +
               std::to_string(degree) + ",h=" +
               std::to_string(hosts_per_switch) + ")");
    for (int s = 0; s < switches; ++s)
        t.addNode(NodeKind::Switch);

    // Pairing model: shuffle d stubs per switch, pair consecutively,
    // resample whole shuffles until the pairing is simple. Expected
    // O(e^(d^2/4)) attempts — constant for the small degrees used here.
    Xoshiro256 rng(seed);
    std::vector<NodeId> stubs;
    stubs.reserve(static_cast<size_t>(switches) *
                  static_cast<size_t>(degree));
    for (int attempt = 0;; ++attempt) {
        AN2_REQUIRE(attempt < 10'000,
                    "pairing model failed to produce a simple "
                        << degree << "-regular graph on " << switches
                        << " switches");
        stubs.clear();
        for (int s = 0; s < switches; ++s)
            for (int d = 0; d < degree; ++d)
                stubs.push_back(static_cast<NodeId>(s));
        rng.shuffle(stubs);
        bool simple = true;
        std::set<std::pair<NodeId, NodeId>> seen;
        for (size_t i = 0; simple && i + 1 < stubs.size(); i += 2) {
            NodeId a = std::min(stubs[i], stubs[i + 1]);
            NodeId b = std::max(stubs[i], stubs[i + 1]);
            simple = a != b && seen.emplace(a, b).second;
        }
        if (!simple)
            continue;
        for (size_t i = 0; i + 1 < stubs.size(); i += 2)
            t.link(stubs[i], stubs[i + 1], lat.trunk_ps);
        break;
    }
    for (int s = 0; s < switches; ++s)
        for (int h = 0; h < hosts_per_switch; ++h)
            t.link(t.addNode(NodeKind::Host), static_cast<NodeId>(s),
                   lat.host_ps);
    return t;
}

}  // namespace an2::topo
