/**
 * @file
 * Bandwidth reservations for constant-bit-rate traffic (paper §4).
 *
 * Bandwidth is allocated in cells per *frame* (a fixed number of slots).
 * A reservation matrix is feasible exactly when no input row and no
 * output column exceeds the frame size — the Slepian-Duguid condition
 * under which a conflict-free frame schedule always exists.
 */
#ifndef AN2_CBR_RESERVATIONS_H
#define AN2_CBR_RESERVATIONS_H

#include "an2/base/matrix.h"
#include "an2/base/types.h"

namespace an2 {

/** Cells-per-frame reservations between every input/output pair. */
class ReservationMatrix
{
  public:
    /**
     * @param n Switch size (N x N).
     * @param frame_slots Slots per frame (the paper's prototype uses 1000).
     */
    ReservationMatrix(int n, int frame_slots);

    int size() const { return cells_.rows(); }
    int frameSlots() const { return frame_slots_; }

    /** Reserved cells/frame from input i to output j. */
    int reserved(PortId i, PortId j) const { return cells_.at(i, j); }

    /** Total reserved cells/frame departing input i. */
    int inputLoad(PortId i) const { return cells_.rowSum(i); }

    /** Total reserved cells/frame arriving at output j. */
    int outputLoad(PortId j) const { return cells_.colSum(j); }

    /** Unreserved slots on input i's link. */
    int inputSlack(PortId i) const { return frame_slots_ - inputLoad(i); }

    /** Unreserved slots on output j's link. */
    int outputSlack(PortId j) const { return frame_slots_ - outputLoad(j); }

    /**
     * True when adding k cells/frame from i to j keeps both the input and
     * the output within the frame budget (the admission criterion).
     */
    bool canAdd(PortId i, PortId j, int k) const;

    /** Add k cells/frame for (i,j); requires canAdd(i,j,k). */
    void add(PortId i, PortId j, int k);

    /** Remove k cells/frame for (i,j); at least k must be reserved. */
    void remove(PortId i, PortId j, int k);

    /** True when every row and column fits in the frame. */
    bool feasible() const;

    /** Total reserved cells per frame across the switch. */
    int total() const { return cells_.total(); }

  private:
    Matrix<int> cells_;
    int frame_slots_;
};

}  // namespace an2

#endif  // AN2_CBR_RESERVATIONS_H
