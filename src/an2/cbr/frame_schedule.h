/**
 * @file
 * The pre-computed CBR frame schedule (paper §4): for each slot of the
 * frame, a conflict-free set of input-output pairings. The switch repeats
 * this schedule every frame; CBR cells ride their scheduled slots, and
 * any slot capacity left over (or scheduled but idle) is filled with VBR
 * traffic by parallel iterative matching.
 */
#ifndef AN2_CBR_FRAME_SCHEDULE_H
#define AN2_CBR_FRAME_SCHEDULE_H

#include <vector>

#include "an2/base/types.h"
#include "an2/cbr/reservations.h"

namespace an2 {

/** A frame's worth of crossbar pairings, indexed by slot. */
class FrameSchedule
{
  public:
    /**
     * @param n Switch size.
     * @param frame_slots Slots per frame.
     */
    FrameSchedule(int n, int frame_slots);

    int size() const { return n_; }
    int frameSlots() const { return frame_slots_; }

    /** Output scheduled for input i in slot s, or kNoPort. */
    PortId outputAt(int s, PortId i) const;

    /** Input scheduled for output j in slot s, or kNoPort. */
    PortId inputAt(int s, PortId j) const;

    bool inputFree(int s, PortId i) const { return outputAt(s, i) == kNoPort; }
    bool outputFree(int s, PortId j) const { return inputAt(s, j) == kNoPort; }

    /** Schedule the pair (i,j) in slot s; both ports must be free. */
    void assign(int s, PortId i, PortId j);

    /** Remove the pairing (i,j) from slot s; it must be present. */
    void clear(int s, PortId i, PortId j);

    /** Remove every pairing (used when a composite schedule rebuilds). */
    void reset();

    /** Number of slots in which (i,j) is scheduled. */
    int slotsFor(PortId i, PortId j) const;

    /** Total scheduled pairings across the frame. */
    int totalAssignments() const { return total_; }

    /**
     * True when the schedule realizes the reservation matrix exactly:
     * every pair (i,j) appears in exactly reserved(i,j) slots (the
     * guarantee the Slepian-Duguid construction provides).
     */
    bool realizes(const ReservationMatrix& res) const;

  private:
    void checkSlot(int s) const;
    void checkPorts(PortId i, PortId j) const;

    int n_;
    int frame_slots_;
    /** per-slot input -> output. */
    std::vector<std::vector<PortId>> in2out_;
    /** per-slot output -> input. */
    std::vector<std::vector<PortId>> out2in_;
    int total_ = 0;
};

}  // namespace an2

#endif  // AN2_CBR_FRAME_SCHEDULE_H
