#include "an2/cbr/reservations.h"

#include "an2/base/error.h"

namespace an2 {

ReservationMatrix::ReservationMatrix(int n, int frame_slots)
    : cells_(n, n, 0), frame_slots_(frame_slots)
{
    AN2_REQUIRE(n > 0, "switch size must be positive");
    AN2_REQUIRE(frame_slots > 0, "frame must have at least one slot");
}

bool
ReservationMatrix::canAdd(PortId i, PortId j, int k) const
{
    AN2_REQUIRE(k >= 0, "reservation must be non-negative");
    return inputLoad(i) + k <= frame_slots_ &&
           outputLoad(j) + k <= frame_slots_;
}

void
ReservationMatrix::add(PortId i, PortId j, int k)
{
    AN2_REQUIRE(canAdd(i, j, k),
                "reservation of " << k << " cells/frame from " << i << " to "
                                  << j << " over-commits a link");
    cells_.at(i, j) += k;
}

void
ReservationMatrix::remove(PortId i, PortId j, int k)
{
    AN2_REQUIRE(k >= 0 && cells_.at(i, j) >= k,
                "cannot remove " << k << " cells/frame from (" << i << ","
                                 << j << "); only " << cells_.at(i, j)
                                 << " reserved");
    cells_.at(i, j) -= k;
}

bool
ReservationMatrix::feasible() const
{
    for (int i = 0; i < size(); ++i)
        if (inputLoad(i) > frame_slots_)
            return false;
    for (int j = 0; j < size(); ++j)
        if (outputLoad(j) > frame_slots_)
            return false;
    return true;
}

}  // namespace an2
