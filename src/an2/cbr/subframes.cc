#include "an2/cbr/subframes.h"

#include <algorithm>

#include "an2/base/error.h"

namespace an2 {

SubframeScheduler::SubframeScheduler(int n, int frame_slots,
                                     int num_subframes,
                                     SlotPlacement placement)
    : n_(n), frame_slots_(frame_slots), num_subframes_(num_subframes),
      combined_(n, frame_slots)
{
    AN2_REQUIRE(num_subframes >= 1, "need at least one subframe");
    AN2_REQUIRE(frame_slots % num_subframes == 0,
                "subframes must divide the frame evenly: " << frame_slots
                                                           << " % "
                                                           << num_subframes);
    for (int s = 0; s < num_subframes; ++s)
        subs_.push_back(std::make_unique<SlepianDuguidScheduler>(
            n, frame_slots / num_subframes, placement));
}

bool
SubframeScheduler::addFrameReservation(PortId i, PortId j, int k)
{
    AN2_REQUIRE(k >= 0, "reservation must be non-negative");
    // Feasibility: each subframe can host min(input, output) slack cells
    // of this pair.
    int capacity = 0;
    for (const auto& sub : subs_) {
        const ReservationMatrix& r = sub->reservations();
        capacity += std::min(r.inputSlack(i), r.outputSlack(j));
    }
    if (capacity < k)
        return false;

    // Distribute: always take the subframe with the most remaining slack
    // for the pair, which balances the cells across the frame.
    for (int c = 0; c < k; ++c) {
        int best = -1;
        int best_slack = 0;
        for (size_t s = 0; s < subs_.size(); ++s) {
            const ReservationMatrix& r = subs_[s]->reservations();
            int slack = std::min(r.inputSlack(i), r.outputSlack(j));
            if (slack > best_slack) {
                best_slack = slack;
                best = static_cast<int>(s);
            }
        }
        AN2_ASSERT(best >= 0, "capacity vanished during distribution");
        bool ok = subs_[static_cast<size_t>(best)]->addReservation(i, j, 1);
        AN2_ASSERT(ok, "subframe rejected a feasible cell");
    }
    rebuildCombined();
    return true;
}

bool
SubframeScheduler::addSubframeReservation(PortId i, PortId j, int q)
{
    AN2_REQUIRE(q >= 0, "reservation must be non-negative");
    for (const auto& sub : subs_)
        if (!sub->reservations().canAdd(i, j, q))
            return false;
    for (auto& sub : subs_) {
        bool ok = sub->addReservation(i, j, q);
        AN2_ASSERT(ok, "subframe rejected a pre-checked reservation");
    }
    rebuildCombined();
    return true;
}

int
SubframeScheduler::reservedPerFrame(PortId i, PortId j) const
{
    int total = 0;
    for (const auto& sub : subs_)
        total += sub->reservations().reserved(i, j);
    return total;
}

void
SubframeScheduler::rebuildCombined()
{
    combined_.reset();
    int sub_len = subframeSlots();
    for (size_t s = 0; s < subs_.size(); ++s) {
        const FrameSchedule& sched = subs_[s]->schedule();
        for (int slot = 0; slot < sub_len; ++slot) {
            for (PortId i = 0; i < n_; ++i) {
                PortId j = sched.outputAt(slot, i);
                if (j != kNoPort)
                    combined_.assign(static_cast<int>(s) * sub_len + slot,
                                     i, j);
            }
        }
    }
}

int
SubframeScheduler::maxGap(PortId i, PortId j) const
{
    std::vector<int> slots;
    for (int s = 0; s < frame_slots_; ++s)
        if (combined_.outputAt(s, i) == j)
            slots.push_back(s);
    if (slots.empty())
        return frame_slots_;
    int worst = 0;
    for (size_t c = 0; c < slots.size(); ++c) {
        int cur = slots[c];
        int next = c + 1 < slots.size() ? slots[c + 1]
                                        : slots.front() + frame_slots_;
        worst = std::max(worst, next - cur);
    }
    return worst;
}

}  // namespace an2
