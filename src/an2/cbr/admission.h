/**
 * @file
 * Network-level admission control for CBR reservations (paper §4).
 *
 * A request for k cells/frame is granted when there is a path from source
 * to destination on which every link still has k cells/frame of
 * uncommitted capacity. The controller tracks per-link commitments; the
 * per-switch schedules are then updated by SlepianDuguidScheduler (which
 * always succeeds for admitted flows, by the Slepian-Duguid theorem).
 */
#ifndef AN2_CBR_ADMISSION_H
#define AN2_CBR_ADMISSION_H

#include <vector>

#include "an2/base/error.h"
#include "an2/base/types.h"

namespace an2 {

/** Identifier of a unidirectional link in the admission database. */
using LinkId = int;

/** Tracks committed CBR bandwidth on every link of the network. */
class AdmissionController
{
  public:
    /**
     * @param frame_slots Slots per frame: the capacity of every link, in
     *        cells/frame. (A real deployment reserves a few slots for
     *        clock-drift padding; pass the reduced budget if desired.)
     */
    explicit AdmissionController(int frame_slots);

    /** Register a link; returns its LinkId. */
    LinkId addLink();

    /** Number of registered links. */
    int numLinks() const { return static_cast<int>(committed_.size()); }

    /** Committed cells/frame on a link. */
    int committed(LinkId link) const;

    /** Uncommitted cells/frame on a link. */
    int available(LinkId link) const;

    /** True when every link on the path can carry k more cells/frame. */
    bool canAdmit(const std::vector<LinkId>& path, int k) const;

    /**
     * Admit a reservation of k cells/frame along the path.
     * @return false (no state change) if some link lacks capacity.
     */
    bool admit(const std::vector<LinkId>& path, int k);

    /** Release a previously admitted reservation. */
    void release(const std::vector<LinkId>& path, int k);

    /** Largest k admissible along the path right now (0 when some link
        is full, frameSlots() for an empty path). Restoration uses this
        to pick the degraded rate after full re-admission keeps failing. */
    int maxAdmissible(const std::vector<LinkId>& path) const;

    /** Frame capacity per link. */
    int frameSlots() const { return frame_slots_; }

  private:
    void checkLink(LinkId link) const;

    int frame_slots_;
    std::vector<int> committed_;
};

}  // namespace an2

#endif  // AN2_CBR_ADMISSION_H
