#include "an2/cbr/timing.h"

#include <cmath>

#include "an2/base/error.h"

namespace an2 {

FrameTiming
makeFrameTiming(int switch_frame_slots, int controller_frame_slots,
                double slot_time, double clock_tolerance,
                double link_latency)
{
    AN2_REQUIRE(switch_frame_slots > 0, "switch frame must be non-empty");
    AN2_REQUIRE(controller_frame_slots >= switch_frame_slots,
                "controller frame cannot be shorter than switch frame");
    AN2_REQUIRE(slot_time > 0.0, "slot time must be positive");
    AN2_REQUIRE(clock_tolerance >= 0.0 && clock_tolerance < 1.0,
                "clock tolerance must be in [0,1)");
    AN2_REQUIRE(link_latency >= 0.0, "link latency must be non-negative");

    FrameTiming t{};
    // A clock running fast by factor (1+tol) finishes its frame early.
    t.f_s_min = switch_frame_slots * slot_time / (1.0 + clock_tolerance);
    t.f_s_max = switch_frame_slots * slot_time / (1.0 - clock_tolerance);
    t.f_c_min = controller_frame_slots * slot_time / (1.0 + clock_tolerance);
    t.f_c_max = controller_frame_slots * slot_time / (1.0 - clock_tolerance);
    t.link_latency = link_latency;
    AN2_REQUIRE(t.valid(),
                "controller frame too short for the clock tolerance: "
                "F_c-min = " << t.f_c_min << " <= F_s-max = " << t.f_s_max
                             << "; add padding slots");
    return t;
}

int
minControllerPadding(int switch_frame_slots, double clock_tolerance)
{
    AN2_REQUIRE(switch_frame_slots > 0, "switch frame must be non-empty");
    AN2_REQUIRE(clock_tolerance >= 0.0 && clock_tolerance < 1.0,
                "clock tolerance must be in [0,1)");
    if (clock_tolerance == 0.0) {
        // Even with perfect clocks, F_c-min must strictly exceed F_s-max.
        return 1;
    }
    double needed = switch_frame_slots * 2.0 * clock_tolerance /
                    (1.0 - clock_tolerance);
    return static_cast<int>(std::floor(needed)) + 1;
}

double
latencyBound(const FrameTiming& t, int path_hops)
{
    AN2_REQUIRE(path_hops >= 0, "path length must be non-negative");
    return 2.0 * path_hops * (t.f_s_max + t.link_latency);
}

double
maxActiveFrames(const FrameTiming& t, int path_hops)
{
    AN2_REQUIRE(t.valid(), "invalid frame timing");
    AN2_REQUIRE(path_hops >= 0, "path length must be non-negative");
    double numer = (2.0 * t.f_s_max + t.link_latency) * path_hops + t.f_c_max;
    return 1.0 + std::floor(numer / (t.f_c_min - t.f_s_max));
}

double
bufferBound(const FrameTiming& t, int path_hops)
{
    AN2_REQUIRE(t.valid(), "invalid frame timing");
    AN2_REQUIRE(path_hops >= 0, "path length must be non-negative");
    double numer = (2.0 * t.f_s_max + t.link_latency) * path_hops + t.f_c_max;
    double drift_ratio = (t.f_s_max - t.f_s_min) / t.f_s_min;
    return 4.0 + drift_ratio * (2.0 + numer / (t.f_c_min - t.f_s_max));
}

}  // namespace an2
