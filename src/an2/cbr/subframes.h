/**
 * @file
 * Subdivided frames — the §4 future-work scheme, implemented: "We are
 * considering schemes in which a large frame is subdivided into smaller
 * frames. This would allow each application to trade off a guarantee of
 * lower latency against a smaller granularity of allocation."
 *
 * The frame of F slots is split into m equal subframes. Two reservation
 * classes coexist:
 *
 *  - *Frame class* (the original §4 service): k cells anywhere in the
 *    frame; finest granularity (1 cell/frame = 1/F of the link), latency
 *    bounded by ~2 frames per hop.
 *  - *Subframe class* (low latency): q cells in *every* subframe, i.e.
 *    q*m cells/frame; the flow is served within every subframe, so its
 *    per-hop delay bound shrinks by a factor m — but bandwidth comes in
 *    granules of m cells/frame.
 *
 * Internally each subframe is its own Slepian-Duguid problem of F/m
 * slots; the public schedule() is the concatenation, drop-in compatible
 * with InputQueuedSwitch.
 */
#ifndef AN2_CBR_SUBFRAMES_H
#define AN2_CBR_SUBFRAMES_H

#include <memory>
#include <vector>

#include "an2/cbr/slepian_duguid.h"

namespace an2 {

/** Frame scheduler with per-subframe low-latency reservations. */
class SubframeScheduler
{
  public:
    /**
     * @param n Switch size.
     * @param frame_slots Slots per full frame.
     * @param num_subframes Equal subdivisions (must divide frame_slots).
     * @param placement Slot placement within each subframe.
     */
    SubframeScheduler(int n, int frame_slots, int num_subframes,
                      SlotPlacement placement = SlotPlacement::Spread);

    int size() const { return n_; }
    int frameSlots() const { return frame_slots_; }
    int numSubframes() const { return num_subframes_; }
    int subframeSlots() const { return frame_slots_ / num_subframes_; }

    /**
     * Reserve k cells per full frame (frame class): placed wherever
     * capacity exists across the subframes.
     * @return false (no state change) when capacity is insufficient.
     */
    bool addFrameReservation(PortId i, PortId j, int k);

    /**
     * Reserve q cells in *every* subframe (subframe class): q*m cells
     * per frame with an m-times tighter service guarantee.
     * @return false (no state change) when any subframe lacks capacity.
     */
    bool addSubframeReservation(PortId i, PortId j, int q);

    /** Total cells/frame currently reserved for (i,j), both classes. */
    int reservedPerFrame(PortId i, PortId j) const;

    /**
     * The concatenated full-frame schedule (valid until the next
     * reservation change; pointer-stable for the switch models).
     */
    const FrameSchedule& schedule() const { return combined_; }

    /**
     * Worst gap between consecutive scheduled slots of (i,j) across the
     * full frame (cyclically); the delay-jitter metric.
     */
    int maxGap(PortId i, PortId j) const;

  private:
    /** Rebuild the concatenated schedule after a reservation change. */
    void rebuildCombined();

    int n_;
    int frame_slots_;
    int num_subframes_;
    std::vector<std::unique_ptr<SlepianDuguidScheduler>> subs_;
    FrameSchedule combined_;
};

}  // namespace an2

#endif  // AN2_CBR_SUBFRAMES_H
