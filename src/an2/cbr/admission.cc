#include "an2/cbr/admission.h"

#include <algorithm>

namespace an2 {

AdmissionController::AdmissionController(int frame_slots)
    : frame_slots_(frame_slots)
{
    AN2_REQUIRE(frame_slots > 0, "frame must have at least one slot");
}

LinkId
AdmissionController::addLink()
{
    committed_.push_back(0);
    return static_cast<LinkId>(committed_.size()) - 1;
}

void
AdmissionController::checkLink(LinkId link) const
{
    AN2_REQUIRE(link >= 0 && link < numLinks(),
                "unknown link " << link);
}

int
AdmissionController::committed(LinkId link) const
{
    checkLink(link);
    return committed_[static_cast<size_t>(link)];
}

int
AdmissionController::available(LinkId link) const
{
    return frame_slots_ - committed(link);
}

bool
AdmissionController::canAdmit(const std::vector<LinkId>& path, int k) const
{
    AN2_REQUIRE(k >= 0, "reservation must be non-negative");
    for (LinkId link : path)
        if (available(link) < k)
            return false;
    return true;
}

bool
AdmissionController::admit(const std::vector<LinkId>& path, int k)
{
    if (!canAdmit(path, k))
        return false;
    for (LinkId link : path)
        committed_[static_cast<size_t>(link)] += k;
    return true;
}

int
AdmissionController::maxAdmissible(const std::vector<LinkId>& path) const
{
    int k = frame_slots_;
    for (LinkId link : path)
        k = std::min(k, available(link));
    return k;
}

void
AdmissionController::release(const std::vector<LinkId>& path, int k)
{
    for (LinkId link : path) {
        checkLink(link);
        AN2_REQUIRE(committed_[static_cast<size_t>(link)] >= k,
                    "releasing more than committed on link " << link);
    }
    for (LinkId link : path)
        committed_[static_cast<size_t>(link)] -= k;
}

}  // namespace an2
