#include "an2/cbr/frame_schedule.h"

#include <algorithm>

#include "an2/base/error.h"

namespace an2 {

FrameSchedule::FrameSchedule(int n, int frame_slots)
    : n_(n), frame_slots_(frame_slots),
      in2out_(static_cast<size_t>(frame_slots),
              std::vector<PortId>(static_cast<size_t>(n), kNoPort)),
      out2in_(static_cast<size_t>(frame_slots),
              std::vector<PortId>(static_cast<size_t>(n), kNoPort))
{
    AN2_REQUIRE(n > 0, "switch size must be positive");
    AN2_REQUIRE(frame_slots > 0, "frame must have at least one slot");
}

void
FrameSchedule::checkSlot(int s) const
{
    AN2_REQUIRE(s >= 0 && s < frame_slots_, "slot " << s << " out of frame");
}

void
FrameSchedule::checkPorts(PortId i, PortId j) const
{
    AN2_REQUIRE(i >= 0 && i < n_, "input " << i << " out of range");
    AN2_REQUIRE(j >= 0 && j < n_, "output " << j << " out of range");
}

PortId
FrameSchedule::outputAt(int s, PortId i) const
{
    checkSlot(s);
    AN2_REQUIRE(i >= 0 && i < n_, "input " << i << " out of range");
    return in2out_[static_cast<size_t>(s)][static_cast<size_t>(i)];
}

PortId
FrameSchedule::inputAt(int s, PortId j) const
{
    checkSlot(s);
    AN2_REQUIRE(j >= 0 && j < n_, "output " << j << " out of range");
    return out2in_[static_cast<size_t>(s)][static_cast<size_t>(j)];
}

void
FrameSchedule::assign(int s, PortId i, PortId j)
{
    checkSlot(s);
    checkPorts(i, j);
    AN2_ASSERT(inputFree(s, i),
               "slot " << s << " input " << i << " already scheduled");
    AN2_ASSERT(outputFree(s, j),
               "slot " << s << " output " << j << " already scheduled");
    in2out_[static_cast<size_t>(s)][static_cast<size_t>(i)] = j;
    out2in_[static_cast<size_t>(s)][static_cast<size_t>(j)] = i;
    ++total_;
}

void
FrameSchedule::clear(int s, PortId i, PortId j)
{
    checkSlot(s);
    checkPorts(i, j);
    AN2_ASSERT(outputAt(s, i) == j,
               "slot " << s << " does not schedule (" << i << "," << j << ")");
    in2out_[static_cast<size_t>(s)][static_cast<size_t>(i)] = kNoPort;
    out2in_[static_cast<size_t>(s)][static_cast<size_t>(j)] = kNoPort;
    --total_;
}

void
FrameSchedule::reset()
{
    for (auto& row : in2out_)
        std::fill(row.begin(), row.end(), kNoPort);
    for (auto& row : out2in_)
        std::fill(row.begin(), row.end(), kNoPort);
    total_ = 0;
}

int
FrameSchedule::slotsFor(PortId i, PortId j) const
{
    checkPorts(i, j);
    int count = 0;
    for (int s = 0; s < frame_slots_; ++s)
        if (outputAt(s, i) == j)
            ++count;
    return count;
}

bool
FrameSchedule::realizes(const ReservationMatrix& res) const
{
    if (res.size() != n_ || res.frameSlots() != frame_slots_)
        return false;
    for (PortId i = 0; i < n_; ++i)
        for (PortId j = 0; j < n_; ++j)
            if (slotsFor(i, j) != res.reserved(i, j))
                return false;
    return true;
}

}  // namespace an2
