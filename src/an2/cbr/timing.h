/**
 * @file
 * Frame-timing analysis under unsynchronized clocks (paper Appendix B).
 *
 * Every switch and controller runs its frame off a local clock whose rate
 * is only known to lie within a tolerance of nominal. Controllers append
 * extra empty slots to their frames so that even the fastest controller's
 * frame takes longer than the slowest switch's frame (F_c-min > F_s-max);
 * this caps the long-run cell arrival rate and yields the closed-form
 * end-to-end latency bound (Formula 3) and per-switch buffer bound
 * (Formula 5) implemented here.
 */
#ifndef AN2_CBR_TIMING_H
#define AN2_CBR_TIMING_H

#include "an2/base/types.h"

namespace an2 {

/** Wall-clock frame parameters of a network (Appendix B, Table 3). */
struct FrameTiming
{
    double f_s_min;  ///< minimum wall-clock time of a switch frame
    double f_s_max;  ///< maximum wall-clock time of a switch frame
    double f_c_min;  ///< minimum wall-clock time of a controller frame
    double f_c_max;  ///< maximum wall-clock time of a controller frame
    double link_latency;  ///< max link latency + switch overhead (l)

    /** True when the padding constraint F_c-min > F_s-max holds. */
    bool valid() const { return f_c_min > f_s_max && f_s_min > 0.0; }
};

/**
 * Build FrameTiming from network parameters.
 *
 * A node with clock-rate error r in [-tol, +tol] runs a frame of S slots
 * in S * slot_time / (1 + r) wall-clock time.
 *
 * @param switch_frame_slots Slots per switch frame.
 * @param controller_frame_slots Slots per controller frame (switch frame
 *        plus padding; must exceed switch_frame_slots enough to satisfy
 *        F_c-min > F_s-max).
 * @param slot_time Nominal slot duration (any consistent unit).
 * @param clock_tolerance Fractional clock-rate tolerance (e.g. 1e-4).
 * @param link_latency Max link latency + per-cell switch overhead.
 */
FrameTiming makeFrameTiming(int switch_frame_slots,
                            int controller_frame_slots, double slot_time,
                            double clock_tolerance, double link_latency);

/**
 * Minimum number of padding slots a controller must append to a frame of
 * `switch_frame_slots` so that F_c-min > F_s-max given the clock
 * tolerance (the "extra empty slots" of §4).
 */
int minControllerPadding(int switch_frame_slots, double clock_tolerance);

/**
 * Appendix B Formula 3: end-to-end adjusted-latency bound for a flow
 * crossing p switches: L <= 2p(F_s-max + l).
 */
double latencyBound(const FrameTiming& t, int path_hops);

/**
 * Appendix B: maximum number of consecutive active frames at a switch
 * (first displayed formula of §B.2).
 */
double maxActiveFrames(const FrameTiming& t, int path_hops);

/**
 * Appendix B Formula 5: bound on buffer space (in cells) needed at a
 * switch per cell/frame of reservation, for a flow with path length p.
 */
double bufferBound(const FrameTiming& t, int path_hops);

}  // namespace an2

#endif  // AN2_CBR_TIMING_H
