/**
 * @file
 * Incremental frame-schedule construction via the Slepian-Duguid swap
 * algorithm (paper §4, after Hui 1990).
 *
 * The Slepian-Duguid theorem guarantees a conflict-free frame schedule
 * exists for any reservation pattern in which no input or output link is
 * over-committed. Reservations are added one cell/frame at a time: if a
 * slot exists where both ports are free the cell is placed there;
 * otherwise a slot where the input is free and a slot where the output is
 * free are chosen, and existing pairings are swapped between the two
 * slots along an alternating chain until the conflict disappears. The
 * chain is a simple alternating path, so at most 2N swaps occur; the
 * paper cites O(k * N) steps to add a k cells/frame reservation.
 */
#ifndef AN2_CBR_SLEPIAN_DUGUID_H
#define AN2_CBR_SLEPIAN_DUGUID_H

#include "an2/cbr/frame_schedule.h"
#include "an2/cbr/reservations.h"

namespace an2 {

/**
 * Where in the frame new pairings are placed. The Slepian-Duguid
 * guarantee (the reserved *number* of cells per frame) is independent of
 * slot positions, so placement is a quality-of-service knob: spreading a
 * flow's slots evenly across the frame reduces intra-frame jitter and
 * per-flow burstiness on the output link, at identical throughput.
 */
enum class SlotPlacement {
    /** Use the first feasible slot (simplest; the paper's algorithm). */
    FirstFit,
    /** Aim each of the k cells at an evenly spaced target position. */
    Spread,
};

/** Maintains a frame schedule realizing a mutable reservation matrix. */
class SlepianDuguidScheduler
{
  public:
    /**
     * @param n Switch size.
     * @param frame_slots Slots per frame.
     * @param placement Slot placement policy for new reservations.
     */
    SlepianDuguidScheduler(int n, int frame_slots,
                           SlotPlacement placement = SlotPlacement::FirstFit);

    /**
     * Try to reserve k cells/frame from input i to output j.
     * @return false (with no state change) when either link lacks
     *         capacity; true once the schedule has been updated.
     */
    bool addReservation(PortId i, PortId j, int k);

    /**
     * Release k cells/frame of the (i,j) reservation; at least k must be
     * reserved. Freed slots become available to VBR traffic immediately.
     */
    void removeReservation(PortId i, PortId j, int k);

    /** The reservations currently in force. */
    const ReservationMatrix& reservations() const { return res_; }

    /** The schedule realizing them. */
    const FrameSchedule& schedule() const { return sched_; }

    /** Cumulative pairings moved by swap chains (complexity metric). */
    int64_t totalSwaps() const { return total_swaps_; }

    /**
     * Largest gap (in slots, cyclically) between consecutive scheduled
     * slots of the pair (i,j); frame_slots when nothing is scheduled.
     * With a perfectly smooth schedule of k cells this is frame/k; the
     * jitter metric for comparing placement policies.
     */
    int maxGap(PortId i, PortId j) const;

  private:
    /**
     * Place one additional (i,j) cell, swapping as needed.
     * @param target Preferred slot position (Spread placement); pass 0
     *        for FirstFit.
     */
    void placeOne(PortId i, PortId j, int target);

    /** Slot where both i and j are free, nearest `target`, or -1. */
    int findFreeSlot(PortId i, PortId j, int target) const;

    /** Slot where input i is free, nearest `target`; must exist. */
    int findInputFreeSlot(PortId i, int target) const;

    /** Slot where output j is free, nearest `target`; must exist. */
    int findOutputFreeSlot(PortId j, int target) const;

    ReservationMatrix res_;
    FrameSchedule sched_;
    SlotPlacement placement_;
    int64_t total_swaps_ = 0;
};

}  // namespace an2

#endif  // AN2_CBR_SLEPIAN_DUGUID_H
