#include "an2/cbr/slepian_duguid.h"

#include <algorithm>
#include <vector>

#include "an2/base/error.h"

namespace an2 {

namespace {

/** Cyclic distance between two slot indices in a frame of F slots. */
int
cyclicDistance(int a, int b, int frame)
{
    int d = std::abs(a - b);
    return std::min(d, frame - d);
}

}  // namespace

SlepianDuguidScheduler::SlepianDuguidScheduler(int n, int frame_slots,
                                               SlotPlacement placement)
    : res_(n, frame_slots), sched_(n, frame_slots), placement_(placement)
{
}

bool
SlepianDuguidScheduler::addReservation(PortId i, PortId j, int k)
{
    AN2_REQUIRE(k >= 0, "reservation must be non-negative");
    if (!res_.canAdd(i, j, k))
        return false;
    int already = res_.reserved(i, j);
    for (int c = 0; c < k; ++c) {
        int target = 0;
        if (placement_ == SlotPlacement::Spread) {
            // Aim the (already + c)-th cell of the pair at an evenly
            // spaced position for the final total of already + k cells.
            int total = already + k;
            target = static_cast<int>(
                (static_cast<int64_t>(already + c) * sched_.frameSlots() +
                 sched_.frameSlots() / 2) /
                total % sched_.frameSlots());
        }
        placeOne(i, j, target);
        res_.add(i, j, 1);
    }
    return true;
}

void
SlepianDuguidScheduler::removeReservation(PortId i, PortId j, int k)
{
    AN2_REQUIRE(res_.reserved(i, j) >= k,
                "cannot release " << k << " cells/frame; only "
                                  << res_.reserved(i, j) << " reserved");
    int remaining = k;
    for (int s = 0; s < sched_.frameSlots() && remaining > 0; ++s) {
        if (sched_.outputAt(s, i) == j) {
            sched_.clear(s, i, j);
            --remaining;
        }
    }
    AN2_ASSERT(remaining == 0, "schedule out of sync with reservations");
    res_.remove(i, j, k);
}

int
SlepianDuguidScheduler::maxGap(PortId i, PortId j) const
{
    std::vector<int> slots;
    for (int s = 0; s < sched_.frameSlots(); ++s)
        if (sched_.outputAt(s, i) == j)
            slots.push_back(s);
    if (slots.empty())
        return sched_.frameSlots();
    int worst = 0;
    for (size_t c = 0; c < slots.size(); ++c) {
        int cur = slots[c];
        int next = c + 1 < slots.size()
                       ? slots[c + 1]
                       : slots.front() + sched_.frameSlots();
        worst = std::max(worst, next - cur);
    }
    return worst;
}

int
SlepianDuguidScheduler::findFreeSlot(PortId i, PortId j, int target) const
{
    int best = -1;
    int best_dist = sched_.frameSlots() + 1;
    for (int s = 0; s < sched_.frameSlots(); ++s) {
        if (!sched_.inputFree(s, i) || !sched_.outputFree(s, j))
            continue;
        int dist = cyclicDistance(s, target, sched_.frameSlots());
        if (dist < best_dist) {
            best_dist = dist;
            best = s;
        }
    }
    return best;
}

int
SlepianDuguidScheduler::findInputFreeSlot(PortId i, int target) const
{
    int best = -1;
    int best_dist = sched_.frameSlots() + 1;
    for (int s = 0; s < sched_.frameSlots(); ++s) {
        if (!sched_.inputFree(s, i))
            continue;
        int dist = cyclicDistance(s, target, sched_.frameSlots());
        if (dist < best_dist) {
            best_dist = dist;
            best = s;
        }
    }
    AN2_ASSERT(best >= 0, "no input-free slot despite available capacity");
    return best;
}

int
SlepianDuguidScheduler::findOutputFreeSlot(PortId j, int target) const
{
    int best = -1;
    int best_dist = sched_.frameSlots() + 1;
    for (int s = 0; s < sched_.frameSlots(); ++s) {
        if (!sched_.outputFree(s, j))
            continue;
        int dist = cyclicDistance(s, target, sched_.frameSlots());
        if (dist < best_dist) {
            best_dist = dist;
            best = s;
        }
    }
    AN2_ASSERT(best >= 0, "no output-free slot despite available capacity");
    return best;
}

void
SlepianDuguidScheduler::placeOne(PortId i, PortId j, int target)
{
    // Easy case: some slot has both ports free.
    int both = findFreeSlot(i, j, target);
    if (both >= 0) {
        sched_.assign(both, i, j);
        return;
    }

    // Swap case: slot a has input i free, slot b has output j free (both
    // must exist because neither link is over-committed). Insert (i,j)
    // into slot a and ripple the displaced pairings back and forth
    // between a and b along the alternating chain. When inserting into
    // slot a the input endpoint is always free and the conflict (if any)
    // is on the output; when inserting into slot b the roles reverse.
    int slot_a = findInputFreeSlot(i, target);
    int slot_b = findOutputFreeSlot(j, target);
    AN2_ASSERT(slot_a != slot_b,
               "slot with both ports free should have been found");

    PortId x = i;
    PortId y = j;
    int cur = slot_a;
    bool conflict_on_output = true;
    // An alternating chain visits each port of each slot at most once,
    // so 4N+4 steps is a safe termination bound.
    int guard = 4 * sched_.size() + 4;
    while (guard-- > 0) {
        if (conflict_on_output) {
            PortId displaced_in = sched_.inputAt(cur, y);
            if (displaced_in == kNoPort) {
                sched_.assign(cur, x, y);
                return;
            }
            sched_.clear(cur, displaced_in, y);
            sched_.assign(cur, x, y);
            ++total_swaps_;
            x = displaced_in;  // displaced pairing (displaced_in, y)
        } else {
            PortId displaced_out = sched_.outputAt(cur, x);
            if (displaced_out == kNoPort) {
                sched_.assign(cur, x, y);
                return;
            }
            sched_.clear(cur, x, displaced_out);
            sched_.assign(cur, x, y);
            ++total_swaps_;
            y = displaced_out;  // displaced pairing (x, displaced_out)
        }
        cur = cur == slot_a ? slot_b : slot_a;
        conflict_on_output = !conflict_on_output;
    }
    AN2_PANIC("Slepian-Duguid swap chain failed to terminate");
}

}  // namespace an2
