#include "an2/matching/serial_greedy.h"

#include <numeric>

#include "an2/base/error.h"
#include "an2/matching/wordset.h"
#include "an2/obs/recorder.h"

namespace an2 {

namespace {

constexpr int kMaxFastPorts = 1024;

}  // namespace

SerialGreedyMatcher::SerialGreedyMatcher(bool randomize, uint64_t seed,
                                         MatcherBackend backend,
                                         WarmStart warm)
    : randomize_(randomize),
      backend_(backend),
      warm_(warm),
      rng_(std::make_unique<Xoshiro256>(seed))
{
}

std::string
SerialGreedyMatcher::name() const
{
    std::string n = randomize_ ? "Greedy(random-order" : "Greedy(fixed-order";
    if (warm_ == WarmStart::On)
        n += ",warm";
    n += ")";
    return n;
}

void
SerialGreedyMatcher::reset()
{
    warm_state_.invalidate();
}

Matching
SerialGreedyMatcher::match(const RequestMatrix& req)
{
    Matching m(req.numInputs(), req.numOutputs());
    matchInto(req, m);
    return m;
}

void
SerialGreedyMatcher::matchInto(const RequestMatrix& req, Matching& out)
{
    const int n_in = req.numInputs();
    const int n_out = req.numOutputs();
    out.reset(n_in, n_out);

    obs::Recorder* const rec = obs::current();
    const bool warm = warm_ == WarmStart::On;
    // Warm tier 1: unchanged matrix object — replay the previous
    // matching wholesale (still legal and maximal); no shuffle, no
    // PRNG draws.
    if (warm && warm_state_.unchanged(req)) {
        const int replayed = warm_state_.replay(out);
        if (rec) {
            rec->add(obs::Counter::MatchEdgesReused, replayed);
            rec->add(obs::Counter::WarmStartFullReuses, 1);
            rec->matchIteration(obs::MatchAlg::Greedy, 0, 0, 0, 0,
                                out.size());
        }
        return;
    }

    input_order_.resize(static_cast<size_t>(n_in));
    std::iota(input_order_.begin(), input_order_.end(), 0);
    if (randomize_)
        rng_->shuffle(input_order_);

    // The single greedy pass reports as iteration 0 of the obs probe
    // layer; requests are counted at the moment each input is visited
    // (serial semantics), identically in both cores. Warm tier 2 seeds
    // the matching before the pass; seeded inputs are already matched
    // when visited and consume no draw — the residual pass is the cold
    // algorithm restricted to the free ports, so the result stays
    // maximal.
    int reused = 0;
    int requests_seen = 0;
    int grants_issued = 0;

    bool fast = backend_ != MatcherBackend::Reference &&
                n_in <= kMaxFastPorts && n_out <= kMaxFastPorts;
    if (backend_ == MatcherBackend::WordParallel) {
        AN2_REQUIRE(fast,
                    "word-parallel greedy supports at most 1024 ports");
    }

    if (fast) {
        using namespace wordset;
        const int rw = req.rowWords();
        free_out_.resize(static_cast<size_t>(rw));
        candidates_.resize(static_cast<size_t>(rw));
        fillFirst(free_out_.data(), rw, n_out);
        if (warm) {
            reused = warm_state_.seed(req, out);
            for (PortId i = 0; i < n_in; ++i)
                if (PortId j = out.outputOf(i); j != kNoPort)
                    clearBit(free_out_.data(), j);
        }
        for (PortId i : input_order_) {
            if (out.isInputMatched(i))
                continue;  // warm-seeded (never taken on the cold path)
            const uint64_t* row = req.rowMask(i);
            uint64_t any = 0;
            for (int w = 0; w < rw; ++w) {
                candidates_[static_cast<size_t>(w)] =
                    row[w] & free_out_[static_cast<size_t>(w)];
                any |= candidates_[static_cast<size_t>(w)];
            }
            if (any == 0)
                continue;
            if (rec) {
                requests_seen += popcountAll(candidates_.data(), rw);
                ++grants_issued;
            }
            // Same choice as the scalar core: the k-th candidate in
            // ascending output order, with one PRNG draw per matched
            // input (or the lowest index when not randomizing).
            int j;
            if (randomize_) {
                int cnt = popcountAll(candidates_.data(), rw);
                j = selectBit(candidates_.data(), rw,
                              static_cast<int>(rng_->nextBelow(
                                  static_cast<uint64_t>(cnt))));
            } else {
                j = firstSet(candidates_.data(), rw);
            }
            out.add(i, j);
            clearBit(free_out_.data(), j);
        }
        if (warm)
            warm_state_.remember(req, out);
        if (rec) {
            if (warm) {
                rec->add(obs::Counter::MatchEdgesReused, reused);
                rec->add(obs::Counter::MatchEdgesRepaired,
                         out.size() - reused);
            }
            rec->matchIteration(obs::MatchAlg::Greedy, 0, requests_seen,
                                grants_issued, out.size() - reused,
                                out.size());
        }
        return;
    }

    if (warm)
        reused = warm_state_.seed(req, out);
    std::vector<PortId> candidates;
    for (PortId i : input_order_) {
        if (out.isInputMatched(i))
            continue;  // warm-seeded (never taken on the cold path)
        candidates.clear();
        for (PortId j = 0; j < n_out; ++j)
            if (req.has(i, j) && !out.isOutputSaturated(j))
                candidates.push_back(j);
        if (candidates.empty())
            continue;
        if (rec) {
            requests_seen += static_cast<int>(candidates.size());
            ++grants_issued;
        }
        PortId j = randomize_ ? candidates[rng_->nextBelow(candidates.size())]
                              : candidates.front();
        out.add(i, j);
    }
    if (warm)
        warm_state_.remember(req, out);
    if (rec) {
        if (warm) {
            rec->add(obs::Counter::MatchEdgesReused, reused);
            rec->add(obs::Counter::MatchEdgesRepaired, out.size() - reused);
        }
        rec->matchIteration(obs::MatchAlg::Greedy, 0, requests_seen,
                            grants_issued, out.size() - reused, out.size());
    }
}

}  // namespace an2
