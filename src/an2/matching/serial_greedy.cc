#include "an2/matching/serial_greedy.h"

#include <numeric>
#include <vector>

namespace an2 {

SerialGreedyMatcher::SerialGreedyMatcher(bool randomize, uint64_t seed)
    : randomize_(randomize), rng_(std::make_unique<Xoshiro256>(seed))
{
}

std::string
SerialGreedyMatcher::name() const
{
    return randomize_ ? "Greedy(random-order)" : "Greedy(fixed-order)";
}

Matching
SerialGreedyMatcher::match(const RequestMatrix& req)
{
    const int n_in = req.numInputs();
    const int n_out = req.numOutputs();
    Matching m(n_in, n_out);

    std::vector<PortId> input_order(static_cast<size_t>(n_in));
    std::iota(input_order.begin(), input_order.end(), 0);
    if (randomize_)
        rng_->shuffle(input_order);

    std::vector<PortId> candidates;
    for (PortId i : input_order) {
        candidates.clear();
        for (PortId j = 0; j < n_out; ++j)
            if (req.has(i, j) && !m.isOutputSaturated(j))
                candidates.push_back(j);
        if (candidates.empty())
            continue;
        PortId j = randomize_ ? candidates[rng_->nextBelow(candidates.size())]
                              : candidates.front();
        m.add(i, j);
    }
    return m;
}

}  // namespace an2
