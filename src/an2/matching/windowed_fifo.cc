#include "an2/matching/windowed_fifo.h"

#include "an2/base/error.h"

namespace an2 {

WindowedFifoResult
windowedFifoMatch(const std::vector<std::vector<PortId>>& window_dests,
                  int n_outputs, int rounds, Rng& rng)
{
    const int n_in = static_cast<int>(window_dests.size());
    AN2_REQUIRE(n_in > 0, "need at least one input");
    AN2_REQUIRE(n_outputs > 0, "need at least one output");
    AN2_REQUIRE(rounds >= 1, "need at least one round");

    WindowedFifoResult result{Matching(n_in, n_outputs),
                              std::vector<int>(static_cast<size_t>(n_in), -1)};
    // cursor[i]: queue position the input will submit next round.
    std::vector<int> cursor(static_cast<size_t>(n_in), 0);

    for (int round = 0; round < rounds; ++round) {
        // Collect submissions per output.
        std::vector<std::vector<PortId>> contenders(
            static_cast<size_t>(n_outputs));
        bool any = false;
        for (PortId i = 0; i < n_in; ++i) {
            if (result.matching.isInputMatched(i))
                continue;
            const auto& dests = window_dests[static_cast<size_t>(i)];
            int c = cursor[static_cast<size_t>(i)];
            if (c >= static_cast<int>(dests.size()))
                continue;  // window exhausted
            PortId d = dests[static_cast<size_t>(c)];
            AN2_REQUIRE(d >= 0 && d < n_outputs,
                        "destination " << d << " out of range");
            if (result.matching.isOutputSaturated(d)) {
                // The output was claimed in an earlier round; this cell
                // loses immediately and the input moves down its queue.
                ++cursor[static_cast<size_t>(i)];
                continue;
            }
            contenders[static_cast<size_t>(d)].push_back(i);
            any = true;
        }
        if (!any)
            break;

        // Each contended output picks one winner at random; losers step
        // their cursor to the next queued cell.
        for (PortId j = 0; j < n_outputs; ++j) {
            auto& inputs = contenders[static_cast<size_t>(j)];
            if (inputs.empty())
                continue;
            size_t win = rng.nextBelow(inputs.size());
            for (size_t k = 0; k < inputs.size(); ++k) {
                PortId i = inputs[k];
                if (k == win) {
                    result.matching.add(i, j);
                    result.positions[static_cast<size_t>(i)] =
                        cursor[static_cast<size_t>(i)];
                } else {
                    ++cursor[static_cast<size_t>(i)];
                }
            }
        }
    }
    return result;
}

}  // namespace an2
