#include "an2/matching/warm_start.h"

#include "an2/base/error.h"
#include "an2/matching/wordset.h"

namespace an2 {

int
WarmStartState::replay(Matching& out) const
{
    AN2_ASSERT(valid_, "replay() without a remembered matching");
    int replayed = 0;
    const int n = static_cast<int>(prev_.size());
    for (PortId i = 0; i < n; ++i) {
        PortId j = prev_[static_cast<size_t>(i)];
        if (j == kNoPort)
            continue;
        out.add(i, j);
        ++replayed;
    }
    return replayed;
}

int
WarmStartState::seed(const RequestMatrix& req, Matching& out,
                     uint64_t* free_in, uint64_t* free_out) const
{
    if (!validFor(req))
        return 0;
    int reused = 0;
    const int n = static_cast<int>(prev_.size());
    for (PortId i = 0; i < n; ++i) {
        PortId j = prev_[static_cast<size_t>(i)];
        if (j == kNoPort)
            continue;
        // One bit test: still requested and both ports live. An edge
        // hidden by a mid-run port death fails here and is not reused.
        if (!req.has(i, j))
            continue;
        out.add(i, j);
        wordset::clearBit(free_in, i);
        wordset::clearBit(free_out, j);
        ++reused;
    }
    return reused;
}

int
WarmStartState::seed(const RequestMatrix& req, Matching& out) const
{
    if (!validFor(req))
        return 0;
    int reused = 0;
    const int n = static_cast<int>(prev_.size());
    for (PortId i = 0; i < n; ++i) {
        PortId j = prev_[static_cast<size_t>(i)];
        if (j == kNoPort || !req.has(i, j))
            continue;
        out.add(i, j);
        ++reused;
    }
    return reused;
}

void
WarmStartState::remember(const RequestMatrix& req, const Matching& out)
{
    const int n_in = req.numInputs();
    prev_.resize(static_cast<size_t>(n_in));
    for (PortId i = 0; i < n_in; ++i)
        prev_[static_cast<size_t>(i)] = out.outputOf(i);
    n_outputs_ = req.numOutputs();
    last_req_ = &req;
    req.clearDirty();
    last_epoch_ = req.epoch();
    valid_ = true;
}

}  // namespace an2
