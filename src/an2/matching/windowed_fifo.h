/**
 * @file
 * Windowed FIFO contention resolution — the iterative scheme of
 * Hui & Arthurs (1987) as extended by Karol et al. (paper §2.4).
 *
 * Each input exposes only the first `w` cells of a single FIFO queue. In
 * round one, every input submits the destination of its head cell; each
 * contended output picks one winner. Losers advance to their next queued
 * cell and try again in the next round. This reduces, but does not
 * eliminate, head-of-line blocking: only the first k cells of each queue
 * are ever eligible. PIM's random-access buffers remove the window
 * entirely, which is the comparison the paper draws.
 *
 * With window = rounds = 1 this degenerates to classic FIFO queueing with
 * random contention resolution (the Figure 1/3 baseline).
 */
#ifndef AN2_MATCHING_WINDOWED_FIFO_H
#define AN2_MATCHING_WINDOWED_FIFO_H

#include <vector>

#include "an2/base/rng.h"
#include "an2/matching/matching.h"

namespace an2 {

/** Result of a windowed-FIFO round: matching plus queue positions. */
struct WindowedFifoResult
{
    /** The conflict-free pairing found. */
    Matching matching;

    /**
     * For each input, the queue position (0 = head) of the cell that won,
     * or -1 if the input was not matched. Positions other than 0 imply a
     * cell departing from behind the head (Karol's windowing).
     */
    std::vector<int> positions;
};

/**
 * Run `rounds` rounds of windowed FIFO contention resolution.
 *
 * @param window_dests For each input, the destinations of its first
 *        queued cells, in FIFO order (at most the window size; shorter
 *        vectors mean shorter queues).
 * @param rounds Number of contention rounds (>= 1). An input that loses a
 *        round advances to its next queued cell, if any.
 * @param rng Randomness for choosing among contending inputs.
 */
WindowedFifoResult
windowedFifoMatch(const std::vector<std::vector<PortId>>& window_dests,
                  int n_outputs, int rounds, Rng& rng);

}  // namespace an2

#endif  // AN2_MATCHING_WINDOWED_FIFO_H
