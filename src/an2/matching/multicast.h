/**
 * @file
 * Multicast parallel iterative matching — the capability §2 mentions
 * ("Our network also supports multicast flows, but we will not discuss
 * that here"), reconstructed as the natural PIM generalization.
 *
 * A multicast cell at an input must reach a *set* of outputs. The
 * crossbar can replicate for free: one transmission from an input can
 * drive any subset of outputs simultaneously, but each output still
 * listens to at most one input per slot. The request/grant/accept rounds
 * generalize directly:
 *
 *  1. Each input requests every output in its cell's remaining fanout.
 *  2. Each unclaimed output grants one requesting input at random.
 *  3. An input accepts *all* grants it received — they are served by the
 *     same transmission.
 *
 * Two service disciplines from the multicast switching literature:
 *  - *Fanout splitting*: the cell departs toward whatever subset it won;
 *    the residue stays queued for later slots (higher throughput).
 *  - *No splitting* (one-shot): the cell goes only if it wins its entire
 *    fanout in one slot; otherwise it releases its grants and waits.
 */
#ifndef AN2_MATCHING_MULTICAST_H
#define AN2_MATCHING_MULTICAST_H

#include <memory>
#include <vector>

#include "an2/base/rng.h"
#include "an2/base/types.h"

namespace an2 {

/** One multicast head cell: an input and its remaining fanout set. */
struct MulticastRequest
{
    PortId input = kNoPort;
    std::vector<PortId> outputs;
};

/** Result of one multicast matching slot. */
struct MulticastMatch
{
    /**
     * For each request (same order as the input vector), the outputs the
     * transmission will reach this slot (empty = input idle).
     */
    std::vector<std::vector<PortId>> won;

    /** Total (input, output) deliveries this slot. */
    int deliveries = 0;

    /** Requests fully served (won their entire remaining fanout). */
    int completed = 0;
};

/** Configuration for the multicast scheduler. */
struct MulticastPimConfig
{
    /** Request/grant/accept iterations per slot. */
    int iterations = 4;

    /** Serve partial fanouts (true) or all-or-nothing (false). */
    bool fanout_splitting = true;

    /** PRNG seed. */
    uint64_t seed = 1;
};

/** Multicast PIM scheduler. */
class MulticastPim
{
  public:
    /**
     * @param n Switch size.
     * @param config Algorithm parameters.
     */
    MulticastPim(int n, const MulticastPimConfig& config = {});

    /**
     * Schedule one slot. Requests must have distinct inputs; fanout sets
     * must be non-empty with valid, distinct outputs.
     */
    MulticastMatch match(const std::vector<MulticastRequest>& requests);

    int size() const { return n_; }

  private:
    int n_;
    MulticastPimConfig config_;
    std::unique_ptr<Rng> rng_;
};

}  // namespace an2

#endif  // AN2_MATCHING_MULTICAST_H
