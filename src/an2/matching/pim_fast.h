/**
 * @file
 * Bitmask-optimized parallel iterative matching — the software analogue
 * of the paper's §3.3 observation that the request/grant/accept wiring is
 * one bit per port pair. Port sets are uint64 masks (multi-word for more
 * than 64 ports, up to 1024); request columns, grant rows, and the
 * matched-port sets are updated with bitwise operations, making one
 * iteration O(N·N/64) word operations instead of O(N^2) scalar scans.
 *
 * Semantics match PimMatcher with AcceptPolicy::Random and unit output
 * capacity: identical legality/maximality guarantees and statistically
 * identical behaviour (grants and accepts are uniform over the same
 * sets); the exact matchings differ because random draws are consumed in
 * a different order — this core skips the draw for singleton sets. The
 * equivalence is pinned down by differential tests rather than
 * bit-identical replay. (PimMatcher's own word-parallel backend, by
 * contrast, replays the reference draw sequence exactly.)
 */
#ifndef AN2_MATCHING_PIM_FAST_H
#define AN2_MATCHING_PIM_FAST_H

#include <cstdint>
#include <memory>
#include <vector>

#include "an2/base/rng.h"
#include "an2/matching/matcher.h"
#include "an2/matching/warm_start.h"

namespace an2 {

/** Bitmask PIM: N <= 1024, random accept, unit output capacity. */
class FastPimMatcher final : public Matcher
{
  public:
    /**
     * @param iterations Iterations per slot (0 = run to completion).
     * @param seed PRNG seed.
     * @param warm WarmStart::On seeds each slot from the previous slot's
     *             surviving edges; the PIM iterations then arbitrate only
     *             the remaining free ports (see matcher.h). FastPIM is
     *             already only statistically equivalent to the reference
     *             PIM, so a warm variant fits its contract — PimMatcher
     *             itself stays cold-only.
     */
    explicit FastPimMatcher(int iterations = 4, uint64_t seed = 1,
                            WarmStart warm = WarmStart::Off);

    Matching match(const RequestMatrix& req) override;
    void matchInto(const RequestMatrix& req, Matching& out) override;
    std::string name() const override;
    void reset() override;

    /**
     * Single-word fast path: request columns as bitmasks (cols[j] has bit
     * i set when input i requests output j). Returns the matching as
     * out_to_in[j] = input index or -1. Used directly by the speed
     * benchmark; matchInto() runs the equivalent multi-word core on the
     * RequestMatrix's own column masks.
     *
     * @param cols Request columns, `n` entries.
     * @param n Switch size (<= 64).
     * @param out_to_in Output array of `n` entries.
     */
    void matchMasks(const uint64_t* cols, int n, int* out_to_in);

  private:
    int iterations_;
    Xoshiro256 rng_;
    WarmStart warm_;
    WarmStartState warm_state_;

    // Multi-word scratch, reused across slots.
    std::vector<uint64_t> free_in_;     ///< unmatched inputs
    std::vector<uint64_t> free_out_;    ///< unmatched outputs
    std::vector<uint64_t> granted_;     ///< inputs granted this round
    std::vector<uint64_t> requesters_;  ///< per-output scratch
    std::vector<uint64_t> grant_rows_;  ///< outputs granting each input
};

}  // namespace an2

#endif  // AN2_MATCHING_PIM_FAST_H
