#include "an2/matching/request_matrix.h"

#include <algorithm>

namespace an2 {

RequestMatrix::RequestMatrix(int n_inputs, int n_outputs)
    : counts_(n_inputs, n_outputs, 0),
      row_words_(wordset::numWords(n_outputs)),
      col_words_(wordset::numWords(n_inputs)),
      row_masks_(static_cast<size_t>(n_inputs) *
                     static_cast<size_t>(row_words_),
                 0),
      col_masks_(static_cast<size_t>(n_outputs) *
                     static_cast<size_t>(col_words_),
                 0),
      live_in_(static_cast<size_t>(col_words_), 0),
      live_out_(static_cast<size_t>(row_words_), 0),
      dirty_rows_(static_cast<size_t>(col_words_), 0),
      dirty_cols_(static_cast<size_t>(row_words_), 0)
{
    AN2_REQUIRE(n_inputs > 0 && n_outputs > 0,
                "request matrix must have positive dimensions");
    wordset::fillFirst(live_in_.data(), col_words_, n_inputs);
    wordset::fillFirst(live_out_.data(), row_words_, n_outputs);
}

RequestMatrix::RequestMatrix(const RequestMatrix& other)
    : counts_(other.counts_),
      row_words_(other.row_words_),
      col_words_(other.col_words_),
      row_masks_(other.row_masks_),
      col_masks_(other.col_masks_),
      live_in_(other.live_in_),
      live_out_(other.live_out_),
      dead_ports_(other.dead_ports_),
      edges_(other.edges_),
      dirty_rows_(other.dirty_rows_),
      dirty_cols_(other.dirty_cols_),
      epoch_(other.epoch_)
{
    // Conservative: the new object's content was wholesale-assigned.
    wordset::fillFirst(dirty_rows_.data(), col_words_, numInputs());
    wordset::fillFirst(dirty_cols_.data(), row_words_, numOutputs());
    ++epoch_;
}

RequestMatrix&
RequestMatrix::operator=(const RequestMatrix& other)
{
    if (this == &other)
        return *this;
    const uint64_t own_epoch = epoch_;
    counts_ = other.counts_;
    row_words_ = other.row_words_;
    col_words_ = other.col_words_;
    row_masks_ = other.row_masks_;
    col_masks_ = other.col_masks_;
    live_in_ = other.live_in_;
    live_out_ = other.live_out_;
    dead_ports_ = other.dead_ports_;
    edges_ = other.edges_;
    dirty_rows_ = other.dirty_rows_;
    dirty_cols_ = other.dirty_cols_;
    // Conservative: any visible edge may have changed, and the epoch must
    // advance past every value a consumer of *this* may have snapshotted
    // (a recycled scratch matrix is overwritten every slot).
    wordset::fillFirst(dirty_rows_.data(), col_words_, numInputs());
    wordset::fillFirst(dirty_cols_.data(), row_words_, numOutputs());
    epoch_ = std::max(own_epoch, other.epoch_) + 1;
    return *this;
}

void
RequestMatrix::set(PortId i, PortId j, int count)
{
    AN2_REQUIRE(count >= 0, "request count must be non-negative");
    int& cell = counts_.at(i, j);
    const bool was = cell > 0;
    const bool now = count > 0;
    cell = count;
    if (was == now)
        return;
    // Requests touching a dead port stay hidden: the masks and the edge
    // count track only the visible view.
    if (dead_ports_ > 0 && (!inputLive(i) || !outputLive(j)))
        return;
    if (now) {
        wordset::setBit(rowMaskMut(i), j);
        wordset::setBit(colMaskMut(j), i);
        ++edges_;
    } else {
        wordset::clearBit(rowMaskMut(i), j);
        wordset::clearBit(colMaskMut(j), i);
        --edges_;
    }
    markDirty(i, j);
}

void
RequestMatrix::decrement(PortId i, PortId j)
{
    int& cell = counts_.at(i, j);
    AN2_ASSERT(cell > 0,
               "decrement of empty request cell (" << i << "," << j << ")");
    if (--cell == 0) {
        if (dead_ports_ > 0 && (!inputLive(i) || !outputLive(j)))
            return;  // hidden edge: nothing visible to clear
        wordset::clearBit(rowMaskMut(i), j);
        wordset::clearBit(colMaskMut(j), i);
        --edges_;
        markDirty(i, j);
    }
}

void
RequestMatrix::setInputLive(PortId i, bool live)
{
    AN2_REQUIRE(i >= 0 && i < numInputs(),
                "input port " << i << " out of range");
    if (inputLive(i) == live)
        return;
    uint64_t* row = rowMaskMut(i);
    if (!live) {
        // Hide row i: drop its visible edges from the column masks. Each
        // hidden edge is an edge-set transition, so the dirty sets record
        // it — a warm-started matcher must not reuse a pairing whose
        // input just died.
        wordset::forEachSet(row, row_words_, [&](int j) {
            wordset::clearBit(colMaskMut(j), i);
            --edges_;
            markDirty(i, j);
        });
        wordset::clearAll(row, row_words_);
        wordset::clearBit(live_in_.data(), i);
        ++dead_ports_;
    } else {
        wordset::setBit(live_in_.data(), i);
        --dead_ports_;
        // Re-expose the surviving requests toward live outputs; each
        // re-exposed edge is a transition the dirty sets must record
        // (hidden-then-revived requests reappear without any count
        // change, so the set/decrement paths never see them).
        for (PortId j = 0; j < numOutputs(); ++j) {
            if (counts_.at(i, j) > 0 && outputLive(j)) {
                wordset::setBit(row, j);
                wordset::setBit(colMaskMut(j), i);
                ++edges_;
                markDirty(i, j);
            }
        }
    }
}

void
RequestMatrix::setOutputLive(PortId j, bool live)
{
    AN2_REQUIRE(j >= 0 && j < numOutputs(),
                "output port " << j << " out of range");
    if (outputLive(j) == live)
        return;
    uint64_t* col = colMaskMut(j);
    if (!live) {
        wordset::forEachSet(col, col_words_, [&](int i) {
            wordset::clearBit(rowMaskMut(i), j);
            --edges_;
            markDirty(i, j);
        });
        wordset::clearAll(col, col_words_);
        wordset::clearBit(live_out_.data(), j);
        ++dead_ports_;
    } else {
        wordset::setBit(live_out_.data(), j);
        --dead_ports_;
        for (PortId i = 0; i < numInputs(); ++i) {
            if (counts_.at(i, j) > 0 && inputLive(i)) {
                wordset::setBit(rowMaskMut(i), j);
                wordset::setBit(col, i);
                ++edges_;
                markDirty(i, j);
            }
        }
    }
}

void
RequestMatrix::clear()
{
    counts_.fill(0);
    std::fill(row_masks_.begin(), row_masks_.end(), 0);
    std::fill(col_masks_.begin(), col_masks_.end(), 0);
    edges_ = 0;
    // Conservatively mark everything dirty: a wholesale wipe changes (or
    // may change) every row and column.
    wordset::fillFirst(dirty_rows_.data(), col_words_, numInputs());
    wordset::fillFirst(dirty_cols_.data(), row_words_, numOutputs());
    ++epoch_;
}

void
RequestMatrix::clearRow(PortId i)
{
    uint64_t* row = rowMaskMut(i);
    wordset::forEachSet(row, row_words_, [&](int j) {
        counts_.at(i, j) = 0;
        wordset::clearBit(colMaskMut(j), i);
        --edges_;
        markDirty(i, j);
    });
    wordset::clearAll(row, row_words_);
    if (dead_ports_ > 0) {
        // Also zero requests hidden behind dead ports (the mask walk
        // above cannot see them); only paid when faults are active.
        for (PortId j = 0; j < numOutputs(); ++j)
            counts_.at(i, j) = 0;
    }
}

void
RequestMatrix::clearColumn(PortId j)
{
    uint64_t* col = colMaskMut(j);
    wordset::forEachSet(col, col_words_, [&](int i) {
        counts_.at(i, j) = 0;
        wordset::clearBit(rowMaskMut(i), j);
        --edges_;
        markDirty(i, j);
    });
    wordset::clearAll(col, col_words_);
    if (dead_ports_ > 0) {
        for (PortId i = 0; i < numInputs(); ++i)
            counts_.at(i, j) = 0;
    }
}

RequestMatrix
RequestMatrix::bernoulli(int n, double p, Rng& rng)
{
    RequestMatrix req(n);
    for (int i = 0; i < n; ++i)
        for (int j = 0; j < n; ++j)
            if (rng.nextBernoulli(p))
                req.set(i, j, 1);
    return req;
}

}  // namespace an2
