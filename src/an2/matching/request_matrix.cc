#include "an2/matching/request_matrix.h"

#include <algorithm>

namespace an2 {

RequestMatrix::RequestMatrix(int n_inputs, int n_outputs)
    : counts_(n_inputs, n_outputs, 0),
      row_words_(wordset::numWords(n_outputs)),
      col_words_(wordset::numWords(n_inputs)),
      row_masks_(static_cast<size_t>(n_inputs) *
                     static_cast<size_t>(row_words_),
                 0),
      col_masks_(static_cast<size_t>(n_outputs) *
                     static_cast<size_t>(col_words_),
                 0)
{
    AN2_REQUIRE(n_inputs > 0 && n_outputs > 0,
                "request matrix must have positive dimensions");
}

void
RequestMatrix::set(PortId i, PortId j, int count)
{
    AN2_REQUIRE(count >= 0, "request count must be non-negative");
    int& cell = counts_.at(i, j);
    const bool was = cell > 0;
    const bool now = count > 0;
    cell = count;
    if (was == now)
        return;
    if (now) {
        wordset::setBit(rowMaskMut(i), j);
        wordset::setBit(colMaskMut(j), i);
        ++edges_;
    } else {
        wordset::clearBit(rowMaskMut(i), j);
        wordset::clearBit(colMaskMut(j), i);
        --edges_;
    }
}

void
RequestMatrix::decrement(PortId i, PortId j)
{
    int& cell = counts_.at(i, j);
    AN2_ASSERT(cell > 0,
               "decrement of empty request cell (" << i << "," << j << ")");
    if (--cell == 0) {
        wordset::clearBit(rowMaskMut(i), j);
        wordset::clearBit(colMaskMut(j), i);
        --edges_;
    }
}

void
RequestMatrix::clear()
{
    counts_.fill(0);
    std::fill(row_masks_.begin(), row_masks_.end(), 0);
    std::fill(col_masks_.begin(), col_masks_.end(), 0);
    edges_ = 0;
}

void
RequestMatrix::clearRow(PortId i)
{
    uint64_t* row = rowMaskMut(i);
    wordset::forEachSet(row, row_words_, [&](int j) {
        counts_.at(i, j) = 0;
        wordset::clearBit(colMaskMut(j), i);
        --edges_;
    });
    wordset::clearAll(row, row_words_);
}

void
RequestMatrix::clearColumn(PortId j)
{
    uint64_t* col = colMaskMut(j);
    wordset::forEachSet(col, col_words_, [&](int i) {
        counts_.at(i, j) = 0;
        wordset::clearBit(rowMaskMut(i), j);
        --edges_;
    });
    wordset::clearAll(col, col_words_);
}

RequestMatrix
RequestMatrix::bernoulli(int n, double p, Rng& rng)
{
    RequestMatrix req(n);
    for (int i = 0; i < n; ++i)
        for (int j = 0; j < n; ++j)
            if (rng.nextBernoulli(p))
                req.set(i, j, 1);
    return req;
}

}  // namespace an2
