#include "an2/matching/request_matrix.h"

namespace an2 {

RequestMatrix::RequestMatrix(int n_inputs, int n_outputs)
    : counts_(n_inputs, n_outputs, 0)
{
    AN2_REQUIRE(n_inputs > 0 && n_outputs > 0,
                "request matrix must have positive dimensions");
}

void
RequestMatrix::set(PortId i, PortId j, int count)
{
    AN2_REQUIRE(count >= 0, "request count must be non-negative");
    counts_.at(i, j) = count;
}

void
RequestMatrix::decrement(PortId i, PortId j)
{
    AN2_ASSERT(counts_.at(i, j) > 0,
               "decrement of empty request cell (" << i << "," << j << ")");
    --counts_.at(i, j);
}

int
RequestMatrix::numEdges() const
{
    int edges = 0;
    for (int i = 0; i < numInputs(); ++i)
        for (int j = 0; j < numOutputs(); ++j)
            if (has(i, j))
                ++edges;
    return edges;
}

RequestMatrix
RequestMatrix::bernoulli(int n, double p, Rng& rng)
{
    RequestMatrix req(n);
    for (int i = 0; i < n; ++i)
        for (int j = 0; j < n; ++j)
            if (rng.nextBernoulli(p))
                req.set(i, j, 1);
    return req;
}

}  // namespace an2
