#include "an2/matching/hopcroft_karp.h"

#include <limits>
#include <queue>
#include <vector>

namespace an2 {

namespace {

constexpr int kInf = std::numeric_limits<int>::max();

/** Internal solver state for one run. */
struct Solver
{
    const RequestMatrix& req;
    int n_in;
    int n_out;
    std::vector<std::vector<PortId>> adj;  // input -> requested outputs
    std::vector<PortId> match_in;          // input -> output or kNoPort
    std::vector<PortId> match_out;         // output -> input or kNoPort
    std::vector<int> dist;

    explicit Solver(const RequestMatrix& r)
        : req(r), n_in(r.numInputs()), n_out(r.numOutputs()),
          adj(static_cast<size_t>(n_in)),
          match_in(static_cast<size_t>(n_in), kNoPort),
          match_out(static_cast<size_t>(n_out), kNoPort),
          dist(static_cast<size_t>(n_in), 0)
    {
        for (PortId i = 0; i < n_in; ++i)
            for (PortId j = 0; j < n_out; ++j)
                if (req.has(i, j))
                    adj[static_cast<size_t>(i)].push_back(j);
    }

    /** BFS layering from free inputs; true if an augmenting path exists. */
    bool
    bfs()
    {
        std::queue<PortId> q;
        bool found = false;
        for (PortId i = 0; i < n_in; ++i) {
            if (match_in[static_cast<size_t>(i)] == kNoPort) {
                dist[static_cast<size_t>(i)] = 0;
                q.push(i);
            } else {
                dist[static_cast<size_t>(i)] = kInf;
            }
        }
        while (!q.empty()) {
            PortId i = q.front();
            q.pop();
            for (PortId j : adj[static_cast<size_t>(i)]) {
                PortId next = match_out[static_cast<size_t>(j)];
                if (next == kNoPort) {
                    found = true;
                } else if (dist[static_cast<size_t>(next)] == kInf) {
                    dist[static_cast<size_t>(next)] =
                        dist[static_cast<size_t>(i)] + 1;
                    q.push(next);
                }
            }
        }
        return found;
    }

    /** DFS along the BFS layering, augmenting where possible. */
    bool
    dfs(PortId i)
    {
        for (PortId j : adj[static_cast<size_t>(i)]) {
            PortId next = match_out[static_cast<size_t>(j)];
            if (next == kNoPort ||
                (dist[static_cast<size_t>(next)] ==
                     dist[static_cast<size_t>(i)] + 1 &&
                 dfs(next))) {
                match_in[static_cast<size_t>(i)] = j;
                match_out[static_cast<size_t>(j)] = i;
                return true;
            }
        }
        dist[static_cast<size_t>(i)] = kInf;
        return false;
    }

    void
    solve()
    {
        while (bfs()) {
            for (PortId i = 0; i < n_in; ++i)
                if (match_in[static_cast<size_t>(i)] == kNoPort)
                    dfs(i);
        }
    }
};

}  // namespace

Matching
HopcroftKarpMatcher::match(const RequestMatrix& req)
{
    Solver solver(req);
    solver.solve();
    Matching m(req.numInputs(), req.numOutputs());
    for (PortId i = 0; i < req.numInputs(); ++i)
        if (solver.match_in[static_cast<size_t>(i)] != kNoPort)
            m.add(i, solver.match_in[static_cast<size_t>(i)]);
    return m;
}

int
maximumMatchingSize(const RequestMatrix& req)
{
    HopcroftKarpMatcher matcher;
    return matcher.match(req).size();
}

}  // namespace an2
