/**
 * @file
 * Sequential greedy maximal matching: the "obvious" centralized algorithm
 * PIM competes against. It visits inputs in (optionally random) order and
 * pairs each with a free requested output. The result is always maximal,
 * but the algorithm is inherently serial — O(N^2) sequential work per
 * slot — which is why the paper dismisses centralized schedulers as a
 * bottleneck (§2.2). It serves as a match-quality reference.
 */
#ifndef AN2_MATCHING_SERIAL_GREEDY_H
#define AN2_MATCHING_SERIAL_GREEDY_H

#include <cstdint>
#include <memory>
#include <vector>

#include "an2/base/rng.h"
#include "an2/matching/matcher.h"
#include "an2/matching/warm_start.h"

namespace an2 {

/** Centralized greedy maximal matcher. */
class SerialGreedyMatcher final : public Matcher
{
  public:
    /**
     * @param randomize Visit inputs and outputs in random order (fairer);
     *                  when false, lowest index wins every tie.
     * @param seed PRNG seed used when randomizing.
     * @param backend Implementation core; Auto uses the word-parallel
     *                core up to 1024 ports (bit-identical matchings —
     *                same shuffle and same PRNG draw per input).
     * @param warm WarmStart::On seeds each slot from the previous slot's
     *             surviving edges; seeded inputs skip their visit (and
     *             their PRNG draw). See matcher.h.
     */
    explicit SerialGreedyMatcher(bool randomize = true, uint64_t seed = 1,
                                 MatcherBackend backend =
                                     MatcherBackend::Auto,
                                 WarmStart warm = WarmStart::Off);

    Matching match(const RequestMatrix& req) override;
    void matchInto(const RequestMatrix& req, Matching& out) override;
    std::string name() const override;
    void reset() override;

  private:
    bool randomize_;
    MatcherBackend backend_;
    WarmStart warm_;
    WarmStartState warm_state_;
    std::unique_ptr<Rng> rng_;

    // Reused scratch (no steady-state heap traffic).
    std::vector<PortId> input_order_;
    std::vector<uint64_t> free_out_;    ///< unsaturated outputs
    std::vector<uint64_t> candidates_;  ///< per-input scratch
};

}  // namespace an2

#endif  // AN2_MATCHING_SERIAL_GREEDY_H
