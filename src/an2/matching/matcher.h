/**
 * @file
 * The scheduling-strategy interface: switches are parameterized by a
 * Matcher so that every experiment can swap algorithms (PIM, iSLIP,
 * greedy, maximum matching, ...) without touching the simulator.
 */
#ifndef AN2_MATCHING_MATCHER_H
#define AN2_MATCHING_MATCHER_H

#include <string>

#include "an2/matching/matching.h"
#include "an2/matching/request_matrix.h"

namespace an2 {

/**
 * Which implementation core a matcher runs on. The word-parallel cores
 * produce bit-identical matchings to the reference (scalar) cores — they
 * consume PRNG draws and rotate pointers in exactly the same order — so
 * Auto is always safe; Reference exists for differential testing and for
 * configurations the fast cores do not cover (e.g. output capacity > 1).
 */
enum class MatcherBackend {
    /** Word-parallel when the configuration allows, reference otherwise. */
    Auto,
    /** Always the scalar reference implementation. */
    Reference,
    /** Require the word-parallel core (errors if unsupported). */
    WordParallel,
};

/**
 * Cross-slot warm starting (temporal locality). At steady load the
 * request matrix changes by O(N) edges per slot; with WarmStart::On a
 * matcher seeds each slot's matching with the previous slot's surviving
 * edges (pairs still requested and not hidden by a dead port) and runs a
 * repair pass over the remaining free ports, touching O(changed) state
 * instead of recomputing from empty. The result is always legal and
 * *maximal*, but it is a different scheduling policy from the cold
 * algorithm (reused edges skip re-arbitration), so the knob defaults to
 * Off and every existing sweep/golden stays byte-identical.
 *
 * Supported by IslipMatcher, SerialGreedyMatcher, and FastPimMatcher.
 * PimMatcher deliberately has no warm mode: its word-parallel backend's
 * contract is exact RNG-draw replay of the reference core, and a warm
 * seed would change which draws are consumed.
 */
enum class WarmStart {
    Off,
    On,
};

/** A switch-scheduling algorithm: request matrix in, legal matching out. */
class Matcher
{
  public:
    virtual ~Matcher() = default;

    /**
     * Compute a matching for one time slot. Must return a matching that is
     * legal for `req`. Implementations may keep internal state across
     * calls (round-robin pointers, PRNG state).
     */
    virtual Matching match(const RequestMatrix& req) = 0;

    /**
     * Compute the matching for one slot into `out` (re-dimensioned as
     * needed). The hot-path entry point: implementations that override it
     * perform no heap allocation in steady state; the default simply
     * wraps match().
     */
    virtual void matchInto(const RequestMatrix& req, Matching& out)
    {
        out = match(req);
    }

    /** Human-readable algorithm name for reports. */
    virtual std::string name() const = 0;

    /** Reset internal state (pointers etc.); PRNG state is preserved. */
    virtual void reset() {}
};

}  // namespace an2

#endif  // AN2_MATCHING_MATCHER_H
