/**
 * @file
 * The scheduling-strategy interface: switches are parameterized by a
 * Matcher so that every experiment can swap algorithms (PIM, iSLIP,
 * greedy, maximum matching, ...) without touching the simulator.
 */
#ifndef AN2_MATCHING_MATCHER_H
#define AN2_MATCHING_MATCHER_H

#include <string>

#include "an2/matching/matching.h"
#include "an2/matching/request_matrix.h"

namespace an2 {

/** A switch-scheduling algorithm: request matrix in, legal matching out. */
class Matcher
{
  public:
    virtual ~Matcher() = default;

    /**
     * Compute a matching for one time slot. Must return a matching that is
     * legal for `req`. Implementations may keep internal state across
     * calls (round-robin pointers, PRNG state).
     */
    virtual Matching match(const RequestMatrix& req) = 0;

    /** Human-readable algorithm name for reports. */
    virtual std::string name() const = 0;

    /** Reset internal state (pointers etc.); PRNG state is preserved. */
    virtual void reset() {}
};

}  // namespace an2

#endif  // AN2_MATCHING_MATCHER_H
