/**
 * @file
 * Word-parallel bit-set primitives shared by the fast matcher backends
 * and the incremental request bookkeeping.
 *
 * A port set over `bits` ports is stored as `numWords(bits)` uint64
 * words, least-significant word first. The helpers keep the word loops
 * in one place so the PIM/iSLIP/greedy cores and the RequestMatrix row
 * and column masks all agree on layout, and so the one
 * architecture-sensitive operation — selecting the k-th set bit — has a
 * single implementation (BMI2 `_pdep_u64` when available, portable
 * popcount loop otherwise).
 */
#ifndef AN2_MATCHING_WORDSET_H
#define AN2_MATCHING_WORDSET_H

#include <bit>
#include <cstdint>

#ifdef __BMI2__
#include <immintrin.h>
#endif

#include "an2/base/error.h"

namespace an2::wordset {

inline constexpr int kWordBits = 64;

/** Words needed to hold a set over `bits` ports. */
inline constexpr int
numWords(int bits)
{
    return (bits + kWordBits - 1) / kWordBits;
}

/**
 * Index of the k-th (0-based) set bit of a single word; the word must
 * have more than k bits set. With BMI2, depositing the k-th unit bit
 * through the mask lands it on the k-th set position — one instruction
 * instead of an O(popcount) clear-lowest loop.
 */
inline int
selectBit64(uint64_t mask, int k)
{
#ifdef __BMI2__
    return std::countr_zero(_pdep_u64(uint64_t{1} << k, mask));
#else
    while (k-- > 0)
        mask &= mask - 1;  // clear lowest set bit
    return std::countr_zero(mask);
#endif
}

inline bool
testBit(const uint64_t* w, int bit)
{
    return (w[bit / kWordBits] >> (bit % kWordBits)) & 1u;
}

inline void
setBit(uint64_t* w, int bit)
{
    w[bit / kWordBits] |= uint64_t{1} << (bit % kWordBits);
}

inline void
clearBit(uint64_t* w, int bit)
{
    w[bit / kWordBits] &= ~(uint64_t{1} << (bit % kWordBits));
}

inline void
clearAll(uint64_t* w, int n_words)
{
    for (int i = 0; i < n_words; ++i)
        w[i] = 0;
}

/** Set bits [0, bits), clear every bit at or above `bits`. */
inline void
fillFirst(uint64_t* w, int n_words, int bits)
{
    int full = bits / kWordBits;
    for (int i = 0; i < n_words; ++i)
        w[i] = i < full ? ~uint64_t{0} : 0;
    int tail = bits % kWordBits;
    if (tail != 0 && full < n_words)
        w[full] = (uint64_t{1} << tail) - 1;
}

inline bool
anySet(const uint64_t* w, int n_words)
{
    for (int i = 0; i < n_words; ++i)
        if (w[i] != 0)
            return true;
    return false;
}

inline int
popcountAll(const uint64_t* w, int n_words)
{
    int total = 0;
    for (int i = 0; i < n_words; ++i)
        total += std::popcount(w[i]);
    return total;
}

/** Lowest set bit index, or -1 when the set is empty. */
inline int
firstSet(const uint64_t* w, int n_words)
{
    for (int i = 0; i < n_words; ++i)
        if (w[i] != 0)
            return i * kWordBits + std::countr_zero(w[i]);
    return -1;
}

/** Index of the k-th (0-based) set bit; the set must have > k bits. */
inline int
selectBit(const uint64_t* w, int n_words, int k)
{
    for (int i = 0; i < n_words; ++i) {
        int pc = std::popcount(w[i]);
        if (k < pc)
            return i * kWordBits + selectBit64(w[i], k);
        k -= pc;
    }
    AN2_PANIC("selectBit: fewer set bits than requested rank");
}

/**
 * First set bit at or after `start` searching circularly over a set of
 * `bits` ports (bits above `bits` must be clear). Returns -1 when the
 * set is empty. This is the rotating-pointer primitive of iSLIP and the
 * round-robin accept policy.
 */
inline int
firstSetAtOrAfter(const uint64_t* w, int n_words, int bits, int start)
{
    AN2_ASSERT(start >= 0 && start < bits, "pointer out of range");
    int word = start / kWordBits;
    uint64_t masked = w[word] & (~uint64_t{0} << (start % kWordBits));
    if (masked != 0)
        return word * kWordBits + std::countr_zero(masked);
    for (int i = word + 1; i < n_words; ++i)
        if (w[i] != 0)
            return i * kWordBits + std::countr_zero(w[i]);
    // Wrap: [0, start).
    for (int i = 0; i <= word; ++i)
        if (w[i] != 0)
            return i * kWordBits + std::countr_zero(w[i]);
    return -1;
}

/** Invoke fn(bit) for every set bit in ascending order. */
template <typename Fn>
inline void
forEachSet(const uint64_t* w, int n_words, Fn&& fn)
{
    for (int i = 0; i < n_words; ++i)
        for (uint64_t word = w[i]; word != 0; word &= word - 1)
            fn(i * kWordBits + std::countr_zero(word));
}

}  // namespace an2::wordset

#endif  // AN2_MATCHING_WORDSET_H
