#include "an2/matching/pim_fast.h"

#include <bit>

#include "an2/base/error.h"

namespace an2 {

namespace {

/** Index of the k-th (0-based) set bit of mask; mask must have > k bits. */
int
selectBit(uint64_t mask, int k)
{
    while (k-- > 0)
        mask &= mask - 1;  // clear lowest set bit
    return std::countr_zero(mask);
}

/** Uniformly random set-bit index of a non-empty mask. */
int
randomBit(uint64_t mask, Rng& rng)
{
    int bits = std::popcount(mask);
    if (bits == 1)
        return std::countr_zero(mask);
    return selectBit(mask,
                     static_cast<int>(rng.nextBelow(
                         static_cast<uint64_t>(bits))));
}

}  // namespace

FastPimMatcher::FastPimMatcher(int iterations, uint64_t seed)
    : iterations_(iterations), rng_(seed)
{
    AN2_REQUIRE(iterations >= 0,
                "iterations must be >= 0 (0 = to completion)");
}

std::string
FastPimMatcher::name() const
{
    std::string n = "FastPIM(";
    n += iterations_ == 0 ? "complete" : std::to_string(iterations_);
    n += ")";
    return n;
}

void
FastPimMatcher::matchMasks(const uint64_t* cols, int n, int* out_to_in)
{
    AN2_REQUIRE(n >= 1 && n <= 64, "FastPIM supports 1..64 ports");
    uint64_t free_inputs = n == 64 ? ~0ULL : (1ULL << n) - 1;
    for (int j = 0; j < n; ++j)
        out_to_in[j] = -1;
    uint64_t free_outputs = free_inputs;

    for (int it = 0; iterations_ == 0 || it < iterations_; ++it) {
        // Grant phase: every free output with free requesters grants one
        // uniformly. grants[i] accumulates the outputs granting input i.
        uint64_t grants[64];
        uint64_t granted_inputs = 0;
        for (uint64_t outs = free_outputs; outs != 0; outs &= outs - 1) {
            int j = std::countr_zero(outs);
            uint64_t requesters = cols[j] & free_inputs;
            if (requesters == 0)
                continue;
            int pick = randomBit(requesters, rng_);
            if ((granted_inputs & (1ULL << pick)) == 0) {
                granted_inputs |= 1ULL << pick;
                grants[pick] = 0;
            }
            grants[pick] |= 1ULL << j;
        }
        if (granted_inputs == 0)
            break;  // maximal: no free output sees a free requester

        // Accept phase: every granted input accepts one grant uniformly.
        for (uint64_t ins = granted_inputs; ins != 0; ins &= ins - 1) {
            int i = std::countr_zero(ins);
            int j = randomBit(grants[i], rng_);
            out_to_in[j] = i;
            free_inputs &= ~(1ULL << i);
            free_outputs &= ~(1ULL << j);
        }
    }
}

Matching
FastPimMatcher::match(const RequestMatrix& req)
{
    const int n_in = req.numInputs();
    const int n_out = req.numOutputs();
    AN2_REQUIRE(n_in == n_out, "FastPIM expects a square switch");
    AN2_REQUIRE(n_in >= 1 && n_in <= 64, "FastPIM supports 1..64 ports");
    uint64_t cols[64];
    for (PortId j = 0; j < n_out; ++j) {
        uint64_t mask = 0;
        for (PortId i = 0; i < n_in; ++i)
            if (req.has(i, j))
                mask |= 1ULL << i;
        cols[j] = mask;
    }
    int out_to_in[64];
    matchMasks(cols, n_in, out_to_in);
    Matching m(n_in, n_out);
    for (PortId j = 0; j < n_out; ++j)
        if (out_to_in[j] >= 0)
            m.add(out_to_in[j], j);
    return m;
}

}  // namespace an2
