#include "an2/matching/pim_fast.h"

#include <bit>

#include "an2/base/error.h"
#include "an2/matching/wordset.h"
#include "an2/obs/recorder.h"

namespace an2 {

namespace {

/**
 * Uniformly random set-bit index of a non-empty single-word mask. Skips
 * the PRNG draw for singleton sets — an intentional semantic difference
 * from PimMatcher's reference core, pinned by the pim_fast golden tests.
 */
int
randomBit(uint64_t mask, Rng& rng)
{
    int bits = std::popcount(mask);
    if (bits == 1)
        return std::countr_zero(mask);
    return wordset::selectBit64(mask,
                                static_cast<int>(rng.nextBelow(
                                    static_cast<uint64_t>(bits))));
}

/** Multi-word randomBit with the same singleton-skip semantics. */
int
randomBitWords(const uint64_t* w, int n_words, Rng& rng)
{
    int bits = wordset::popcountAll(w, n_words);
    if (bits == 1)
        return wordset::firstSet(w, n_words);
    return wordset::selectBit(w, n_words,
                              static_cast<int>(rng.nextBelow(
                                  static_cast<uint64_t>(bits))));
}

}  // namespace

FastPimMatcher::FastPimMatcher(int iterations, uint64_t seed, WarmStart warm)
    : iterations_(iterations), rng_(seed), warm_(warm)
{
    AN2_REQUIRE(iterations >= 0,
                "iterations must be >= 0 (0 = to completion)");
}

std::string
FastPimMatcher::name() const
{
    std::string n = "FastPIM(";
    n += iterations_ == 0 ? "complete" : std::to_string(iterations_);
    if (warm_ == WarmStart::On)
        n += ",warm";
    n += ")";
    return n;
}

void
FastPimMatcher::reset()
{
    warm_state_.invalidate();
}

void
FastPimMatcher::matchMasks(const uint64_t* cols, int n, int* out_to_in)
{
    AN2_REQUIRE(n >= 1 && n <= 64, "matchMasks supports 1..64 ports");
    uint64_t free_inputs = n == 64 ? ~0ULL : (1ULL << n) - 1;
    for (int j = 0; j < n; ++j)
        out_to_in[j] = -1;
    uint64_t free_outputs = free_inputs;

    for (int it = 0; iterations_ == 0 || it < iterations_; ++it) {
        // Grant phase: every free output with free requesters grants one
        // uniformly. grants[i] accumulates the outputs granting input i.
        uint64_t grants[64];
        uint64_t granted_inputs = 0;
        for (uint64_t outs = free_outputs; outs != 0; outs &= outs - 1) {
            int j = std::countr_zero(outs);
            uint64_t requesters = cols[j] & free_inputs;
            if (requesters == 0)
                continue;
            int pick = randomBit(requesters, rng_);
            if ((granted_inputs & (1ULL << pick)) == 0) {
                granted_inputs |= 1ULL << pick;
                grants[pick] = 0;
            }
            grants[pick] |= 1ULL << j;
        }
        if (granted_inputs == 0)
            break;  // maximal: no free output sees a free requester

        // Accept phase: every granted input accepts one grant uniformly.
        for (uint64_t ins = granted_inputs; ins != 0; ins &= ins - 1) {
            int i = std::countr_zero(ins);
            int j = randomBit(grants[i], rng_);
            out_to_in[j] = i;
            free_inputs &= ~(1ULL << i);
            free_outputs &= ~(1ULL << j);
        }
    }
}

Matching
FastPimMatcher::match(const RequestMatrix& req)
{
    Matching m(req.numInputs(), req.numOutputs());
    matchInto(req, m);
    return m;
}

void
FastPimMatcher::matchInto(const RequestMatrix& req, Matching& out)
{
    using namespace wordset;
    const int n_in = req.numInputs();
    const int n_out = req.numOutputs();
    AN2_REQUIRE(n_in == n_out, "FastPIM expects a square switch");
    AN2_REQUIRE(n_in >= 1 && n_in <= 1024,
                "FastPIM supports 1..1024 ports");
    out.reset(n_in, n_out);

    const int cw = req.colWords();
    const int rw = req.rowWords();
    free_in_.resize(static_cast<size_t>(cw));
    free_out_.resize(static_cast<size_t>(rw));
    granted_.resize(static_cast<size_t>(cw));
    requesters_.resize(static_cast<size_t>(cw));
    grant_rows_.resize(static_cast<size_t>(n_in) *
                       static_cast<size_t>(rw));
    fillFirst(free_in_.data(), cw, n_in);
    fillFirst(free_out_.data(), rw, n_out);
    uint64_t* granted = granted_.data();
    uint64_t* reqsters = requesters_.data();

    obs::Recorder* const rec = obs::current();
    int reused = 0;
    if (warm_ == WarmStart::On) {
        // Replay wholesale when the matrix is untouched since the last
        // slot; otherwise seed with the surviving previous edges and let
        // the PIM iterations below arbitrate only the free ports.
        if (warm_state_.unchanged(req)) {
            reused = warm_state_.replay(out);
            if (rec) {
                rec->add(obs::Counter::MatchEdgesReused, reused);
                rec->add(obs::Counter::WarmStartFullReuses, 1);
            }
            return;
        }
        reused =
            warm_state_.seed(req, out, free_in_.data(), free_out_.data());
    }

    // Word-for-word the matchMasks algorithm, over multi-word masks; it
    // reads the RequestMatrix's incrementally-maintained column masks
    // directly, so there is no per-slot matrix-to-mask conversion.
    for (int it = 0; iterations_ == 0 || it < iterations_; ++it) {
        clearAll(granted, cw);
        forEachSet(free_out_.data(), rw, [&](int j) {
            const uint64_t* col = req.colMask(j);
            uint64_t any = 0;
            for (int w = 0; w < cw; ++w) {
                reqsters[w] = col[w] & free_in_[static_cast<size_t>(w)];
                any |= reqsters[w];
            }
            if (any == 0)
                return;
            int pick = randomBitWords(reqsters, cw, rng_);
            uint64_t* row = grant_rows_.data() +
                            static_cast<size_t>(pick) *
                                static_cast<size_t>(rw);
            if (!testBit(granted, pick)) {
                setBit(granted, pick);
                clearAll(row, rw);
            }
            setBit(row, j);
        });
        if (!anySet(granted, cw))
            break;

        forEachSet(granted, cw, [&](int i) {
            uint64_t* row = grant_rows_.data() +
                            static_cast<size_t>(i) *
                                static_cast<size_t>(rw);
            int j = randomBitWords(row, rw, rng_);
            out.add(i, j);
            clearBit(free_in_.data(), i);
            clearBit(free_out_.data(), j);
        });
    }
    if (warm_ == WarmStart::On) {
        warm_state_.remember(req, out);
        if (rec) {
            rec->add(obs::Counter::MatchEdgesReused, reused);
            rec->add(obs::Counter::MatchEdgesRepaired, out.size() - reused);
        }
    }
}

}  // namespace an2
