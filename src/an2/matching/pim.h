/**
 * @file
 * Parallel Iterative Matching (paper §3) — the primary contribution.
 *
 * Each iteration runs three phases over all unmatched ports in parallel:
 *
 *  1. Request: every unmatched input requests every output for which it
 *     has a buffered cell.
 *  2. Grant: every unmatched output that received requests grants one,
 *     chosen uniformly at random (the randomness is what yields the
 *     O(log N) expected completion bound of Appendix A).
 *  3. Accept: every input that received grants accepts one.
 *
 * Matches made in earlier iterations are retained; iterations "fill in the
 * gaps". The hardware keep-grant optimization of §3.3 (an input that
 * accepted keeps requesting only that output, and the output keeps
 * granting it) is behaviourally identical to retaining matches, which is
 * how this implementation models it.
 *
 * The output-capacity generalization of §3.1 (replicated banyan: up to k
 * grants per output) is supported via PimConfig::output_capacity.
 */
#ifndef AN2_MATCHING_PIM_H
#define AN2_MATCHING_PIM_H

#include <cstdint>
#include <memory>
#include <vector>

#include "an2/base/rng.h"
#include "an2/matching/matcher.h"

namespace an2 {

/** How an input chooses among the grants it received (step 3). */
enum class AcceptPolicy {
    /** Uniformly at random among granting outputs. */
    Random,
    /**
     * Rotating pointer per input: accept the first granting output at or
     * after the pointer, then advance it. The paper recommends
     * "round-robin or other fair fashion" to guarantee no starvation.
     */
    RoundRobin,
};

/** Configuration for a PimMatcher. */
struct PimConfig
{
    /**
     * Number of request/grant/accept iterations per slot; 0 means iterate
     * to completion (a maximal match). The AN2 prototype uses 4.
     */
    int iterations = 4;

    /** Input-side accept policy. */
    AcceptPolicy accept = AcceptPolicy::Random;

    /** Max cells deliverable to one output per slot (replicated fabric). */
    int output_capacity = 1;

    /** PRNG seed for the default xoshiro256** engine. */
    uint64_t seed = 1;

    /**
     * Implementation core. Auto uses the word-parallel core (bit-identical
     * results, same PRNG draw sequence) whenever output_capacity == 1 and
     * the switch fits 1024 ports; larger capacities fall back to the
     * scalar reference core.
     */
    MatcherBackend backend = MatcherBackend::Auto;
};

/** Per-call diagnostics from PimMatcher::matchDetailed. */
struct PimRunStats
{
    /** Cumulative matched pairs after each executed iteration. */
    std::vector<int> matches_after_iteration;

    /** Iterations actually executed (early exit once maximal). */
    int iterations_run = 0;

    /** True when the returned matching is maximal for the request set. */
    bool reached_maximal = false;
};

/** Parallel iterative matching scheduler. */
class PimMatcher final : public Matcher
{
  public:
    /**
     * @param config Algorithm parameters.
     * @param rng Optional engine override (e.g. WeakLcg for the §3.3
     *            PRNG-sensitivity ablation); defaults to xoshiro256**
     *            seeded from config.seed.
     */
    explicit PimMatcher(const PimConfig& config = PimConfig{},
                        std::unique_ptr<Rng> rng = nullptr);

    Matching match(const RequestMatrix& req) override;
    void matchInto(const RequestMatrix& req, Matching& out) override;
    std::string name() const override;
    void reset() override;

    /**
     * Run PIM and also report per-iteration progress; used by the Table 1
     * and Appendix A experiments.
     *
     * @param req The request pattern.
     * @param stats Out-parameter filled with per-iteration match counts.
     * @param max_iterations Overrides config (0 = to completion).
     */
    Matching matchDetailed(const RequestMatrix& req, PimRunStats& stats,
                           int max_iterations);

  private:
    /** True when this request matrix runs on the word-parallel core. */
    bool useFastCore(const RequestMatrix& req) const;

    /** Validate/initialize the per-input accept pointers for n inputs. */
    void ensureAcceptPtrs(int n_in);

    /** Size and initialize the word-parallel scratch for `req`. */
    void prepareFastState(const RequestMatrix& req);

    /** One scalar request/grant/accept round; returns matches added.
        `it` is the iteration index reported to the obs probe layer. */
    int runIteration(const RequestMatrix& req, Matching& m, int it);

    /** One word-parallel round; bit-identical to runIteration, including
        the per-iteration obs counters. */
    int runIterationFast(const RequestMatrix& req, Matching& m, int it);

    PimConfig config_;
    std::unique_ptr<Rng> rng_;
    std::vector<int> accept_ptr_;  ///< per-input round-robin pointer

    // Word-parallel scratch, reused across slots (no steady-state heap
    // traffic). Column masks run over inputs (col_words_ words); grant
    // rows run over outputs (row_words_ words).
    int col_words_ = 0;
    int row_words_ = 0;
    std::vector<uint64_t> free_in_;     ///< unmatched inputs
    std::vector<uint64_t> free_out_;    ///< unsaturated outputs
    std::vector<uint64_t> granted_;     ///< inputs granted this round
    std::vector<uint64_t> requesters_;  ///< per-output scratch
    std::vector<uint64_t> grant_rows_;  ///< outputs granting each input
};

}  // namespace an2

#endif  // AN2_MATCHING_PIM_H
