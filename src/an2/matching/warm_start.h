/**
 * @file
 * Cross-slot warm-start state shared by the incremental matcher paths
 * (WarmStart::On in iSLIP, serial-greedy, and FastPIM).
 *
 * The state remembers the previous slot's matching as a dense in->out
 * array plus the request matrix's epoch at the moment the deltas were
 * acknowledged. Two reuse tiers:
 *
 *  - unchanged(): the same matrix object with an unchanged epoch means
 *    no visible edge changed since the last matching, so the previous
 *    matching can be replayed wholesale — it is still legal and still
 *    maximal. O(1) to detect.
 *  - seed(): otherwise, each remembered edge is validated against the
 *    current matrix with one has() bit test (liveness-aware: an edge
 *    whose port died since last slot fails the test and is dropped) and
 *    the survivors are pre-added to the matching, clearing their bits
 *    from the caller's free-port masks. The caller then repairs only the
 *    remaining free ports.
 *
 * The related work this mirrors: SERENADE derives slot t's matching by
 * merging slot t-1's with a fresh candidate; QPS-r shows cheap reuse
 * plus sparse sampling matches far more expensive maximal matching.
 */
#ifndef AN2_MATCHING_WARM_START_H
#define AN2_MATCHING_WARM_START_H

#include <cstdint>
#include <vector>

#include "an2/base/types.h"
#include "an2/matching/matching.h"
#include "an2/matching/request_matrix.h"

namespace an2 {

/** Previous-slot matching snapshot + change acknowledgment. */
class WarmStartState
{
  public:
    /** True when a matching has been remembered and its dimensions fit
        `req` (a re-dimensioned matrix silently invalidates the state). */
    bool validFor(const RequestMatrix& req) const
    {
        return valid_ && static_cast<int>(prev_.size()) == req.numInputs() &&
               n_outputs_ == req.numOutputs();
    }

    /**
     * True when `req` is the same matrix object, unchanged (by epoch)
     * since the last remember(): the previous matching may be replayed
     * wholesale via replay().
     */
    bool unchanged(const RequestMatrix& req) const
    {
        return validFor(req) && last_req_ == &req &&
               req.epoch() == last_epoch_;
    }

    /** Replay the remembered matching into `out` (already reset).
        Requires unchanged(); returns the number of edges replayed. */
    int replay(Matching& out) const;

    /**
     * Validate the remembered edges against `req`, add the survivors to
     * `out` (already reset), and clear each survivor's bits from the
     * caller's free-input/free-output masks. Returns the number of edges
     * reused; a state that is not validFor(req) reuses nothing.
     */
    int seed(const RequestMatrix& req, Matching& out, uint64_t* free_in,
             uint64_t* free_out) const;

    /** Mask-free seed for the scalar cores: same validation and the same
        reused edge set; callers track free ports through `out` itself
        (isInputMatched / isOutputSaturated). */
    int seed(const RequestMatrix& req, Matching& out) const;

    /** Snapshot `out` as the previous matching and acknowledge the
        matrix's deltas (clearDirty + epoch capture). */
    void remember(const RequestMatrix& req, const Matching& out);

    /** Drop the remembered matching (reset(), fault-plan restarts). */
    void invalidate() { valid_ = false; }

  private:
    std::vector<PortId> prev_;  ///< previous matching, in -> out
    const RequestMatrix* last_req_ = nullptr;
    uint64_t last_epoch_ = 0;
    int n_outputs_ = 0;
    bool valid_ = false;
};

}  // namespace an2

#endif  // AN2_MATCHING_WARM_START_H
