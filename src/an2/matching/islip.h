/**
 * @file
 * iSLIP — the rotating-pointer descendant of PIM (McKeown, 1995/99),
 * included as an ablation baseline: it replaces PIM's random grant/accept
 * choices with round-robin pointers that "desynchronize" under load,
 * trading PIM's per-slot randomness for deterministic hardware.
 *
 * Not part of the 1992 paper itself; an2sim ships it because the paper's
 * §3.3 discussion of implementing random selection in hardware is exactly
 * the problem iSLIP was later designed to avoid, making it the natural
 * design-alternative ablation.
 */
#ifndef AN2_MATCHING_ISLIP_H
#define AN2_MATCHING_ISLIP_H

#include <vector>

#include "an2/matching/matcher.h"

namespace an2 {

/** The iSLIP scheduler with a configurable iteration count. */
class IslipMatcher final : public Matcher
{
  public:
    /** @param iterations Grant/accept rounds per slot (>= 1). */
    explicit IslipMatcher(int iterations = 4);

    Matching match(const RequestMatrix& req) override;
    std::string name() const override;
    void reset() override;

  private:
    int iterations_;
    std::vector<int> grant_ptr_;   ///< per-output rotating grant pointer
    std::vector<int> accept_ptr_;  ///< per-input rotating accept pointer
};

}  // namespace an2

#endif  // AN2_MATCHING_ISLIP_H
