/**
 * @file
 * iSLIP — the rotating-pointer descendant of PIM (McKeown, 1995/99),
 * included as an ablation baseline: it replaces PIM's random grant/accept
 * choices with round-robin pointers that "desynchronize" under load,
 * trading PIM's per-slot randomness for deterministic hardware.
 *
 * Not part of the 1992 paper itself; an2sim ships it because the paper's
 * §3.3 discussion of implementing random selection in hardware is exactly
 * the problem iSLIP was later designed to avoid, making it the natural
 * design-alternative ablation.
 */
#ifndef AN2_MATCHING_ISLIP_H
#define AN2_MATCHING_ISLIP_H

#include <cstdint>
#include <vector>

#include "an2/matching/matcher.h"
#include "an2/matching/warm_start.h"

namespace an2 {

/** The iSLIP scheduler with a configurable iteration count. */
class IslipMatcher final : public Matcher
{
  public:
    /**
     * @param iterations Grant/accept rounds per slot (>= 1).
     * @param backend Implementation core; Auto uses the word-parallel
     *                core up to 1024 ports (identical matchings — the
     *                algorithm is deterministic given the pointers).
     * @param warm WarmStart::On seeds each slot from the previous slot's
     *             surviving edges and repairs only the free ports (a
     *             different policy from cold iSLIP; see matcher.h). Both
     *             backends make identical warm decisions.
     */
    explicit IslipMatcher(int iterations = 4,
                          MatcherBackend backend = MatcherBackend::Auto,
                          WarmStart warm = WarmStart::Off);

    Matching match(const RequestMatrix& req) override;
    void matchInto(const RequestMatrix& req, Matching& out) override;
    std::string name() const override;
    void reset() override;

  private:
    /** One scalar grant/accept round; returns matches added. */
    int runIteration(const RequestMatrix& req, Matching& m, int it);

    /** One word-parallel round; identical decisions to runIteration. */
    int runIterationFast(const RequestMatrix& req, Matching& m, int it);

    /** The WarmStart::On slot: replay, or seed + one repair pass. */
    void matchWarm(const RequestMatrix& req, Matching& out, bool fast);

    int iterations_;
    MatcherBackend backend_;
    WarmStart warm_;
    WarmStartState warm_state_;
    std::vector<int> grant_ptr_;   ///< per-output rotating grant pointer
    std::vector<int> accept_ptr_;  ///< per-input rotating accept pointer

    // Word-parallel scratch, reused across slots.
    int col_words_ = 0;
    int row_words_ = 0;
    std::vector<uint64_t> free_in_;     ///< unmatched inputs
    std::vector<uint64_t> free_out_;    ///< unmatched outputs
    std::vector<uint64_t> granted_;     ///< inputs granted this round
    std::vector<uint64_t> requesters_;  ///< per-output scratch
    std::vector<uint64_t> grant_rows_;  ///< outputs granting each input
};

}  // namespace an2

#endif  // AN2_MATCHING_ISLIP_H
