#include "an2/matching/islip.h"

#include "an2/base/error.h"

namespace an2 {

IslipMatcher::IslipMatcher(int iterations) : iterations_(iterations)
{
    AN2_REQUIRE(iterations >= 1, "iSLIP needs at least one iteration");
}

std::string
IslipMatcher::name() const
{
    return "iSLIP(" + std::to_string(iterations_) + ")";
}

void
IslipMatcher::reset()
{
    grant_ptr_.clear();
    accept_ptr_.clear();
}

Matching
IslipMatcher::match(const RequestMatrix& req)
{
    const int n_in = req.numInputs();
    const int n_out = req.numOutputs();
    if (grant_ptr_.empty()) {
        grant_ptr_.assign(static_cast<size_t>(n_out), 0);
        accept_ptr_.assign(static_cast<size_t>(n_in), 0);
    }
    AN2_REQUIRE(static_cast<int>(grant_ptr_.size()) == n_out &&
                    static_cast<int>(accept_ptr_.size()) == n_in,
                "request matrix size changed without reset()");

    Matching m(n_in, n_out);
    for (int it = 0; it < iterations_; ++it) {
        // Grant phase: each unmatched output grants to the requesting
        // unmatched input nearest at-or-after its pointer.
        std::vector<std::vector<PortId>> grants_to(
            static_cast<size_t>(n_in));
        for (PortId j = 0; j < n_out; ++j) {
            if (m.isOutputSaturated(j))
                continue;
            int best_dist = n_in;
            PortId pick = kNoPort;
            for (PortId i = 0; i < n_in; ++i) {
                if (m.isInputMatched(i) || !req.has(i, j))
                    continue;
                int dist = (i - grant_ptr_[static_cast<size_t>(j)] + n_in) %
                           n_in;
                if (dist < best_dist) {
                    best_dist = dist;
                    pick = i;
                }
            }
            if (pick != kNoPort)
                grants_to[static_cast<size_t>(pick)].push_back(j);
        }

        // Accept phase: each input accepts the granting output nearest
        // at-or-after its pointer. Pointers move only for matches made in
        // the first iteration (the standard iSLIP rule, which guarantees
        // that the most recently served connection has lowest priority).
        int added = 0;
        for (PortId i = 0; i < n_in; ++i) {
            const auto& grants = grants_to[static_cast<size_t>(i)];
            if (grants.empty())
                continue;
            int best_dist = n_out;
            PortId chosen = grants.front();
            for (PortId j : grants) {
                int dist = (j - accept_ptr_[static_cast<size_t>(i)] + n_out) %
                           n_out;
                if (dist < best_dist) {
                    best_dist = dist;
                    chosen = j;
                }
            }
            m.add(i, chosen);
            ++added;
            if (it == 0) {
                accept_ptr_[static_cast<size_t>(i)] = (chosen + 1) % n_out;
                grant_ptr_[static_cast<size_t>(chosen)] = (i + 1) % n_in;
            }
        }
        if (added == 0)
            break;
    }
    return m;
}

}  // namespace an2
