#include "an2/matching/islip.h"

#include "an2/base/error.h"
#include "an2/matching/wordset.h"
#include "an2/obs/recorder.h"

namespace an2 {

namespace {

constexpr int kMaxFastPorts = 1024;

}  // namespace

IslipMatcher::IslipMatcher(int iterations, MatcherBackend backend,
                           WarmStart warm)
    : iterations_(iterations), backend_(backend), warm_(warm)
{
    AN2_REQUIRE(iterations >= 1, "iSLIP needs at least one iteration");
}

std::string
IslipMatcher::name() const
{
    std::string n = "iSLIP(" + std::to_string(iterations_);
    if (warm_ == WarmStart::On)
        n += ",warm";
    n += ")";
    return n;
}

void
IslipMatcher::reset()
{
    grant_ptr_.clear();
    accept_ptr_.clear();
    warm_state_.invalidate();
}

Matching
IslipMatcher::match(const RequestMatrix& req)
{
    Matching m(req.numInputs(), req.numOutputs());
    matchInto(req, m);
    return m;
}

void
IslipMatcher::matchInto(const RequestMatrix& req, Matching& out)
{
    const int n_in = req.numInputs();
    const int n_out = req.numOutputs();
    if (grant_ptr_.empty()) {
        grant_ptr_.assign(static_cast<size_t>(n_out), 0);
        accept_ptr_.assign(static_cast<size_t>(n_in), 0);
    }
    AN2_REQUIRE(static_cast<int>(grant_ptr_.size()) == n_out &&
                    static_cast<int>(accept_ptr_.size()) == n_in,
                "request matrix size changed without reset()");
    out.reset(n_in, n_out);

    bool fast = backend_ != MatcherBackend::Reference &&
                n_in <= kMaxFastPorts && n_out <= kMaxFastPorts;
    if (backend_ == MatcherBackend::WordParallel) {
        AN2_REQUIRE(fast, "word-parallel iSLIP supports at most 1024 ports");
    }
    if (warm_ == WarmStart::On) {
        matchWarm(req, out, fast);
        return;
    }
    if (fast) {
        col_words_ = req.colWords();
        row_words_ = req.rowWords();
        free_in_.resize(static_cast<size_t>(col_words_));
        free_out_.resize(static_cast<size_t>(row_words_));
        granted_.resize(static_cast<size_t>(col_words_));
        requesters_.resize(static_cast<size_t>(col_words_));
        grant_rows_.resize(static_cast<size_t>(n_in) *
                           static_cast<size_t>(row_words_));
        wordset::fillFirst(free_in_.data(), col_words_, n_in);
        wordset::fillFirst(free_out_.data(), row_words_, n_out);
        for (int it = 0; it < iterations_; ++it)
            if (runIterationFast(req, out, it) == 0)
                break;
    } else {
        for (int it = 0; it < iterations_; ++it)
            if (runIteration(req, out, it) == 0)
                break;
    }
}

void
IslipMatcher::matchWarm(const RequestMatrix& req, Matching& out, bool fast)
{
    using namespace wordset;
    const int n_in = req.numInputs();
    const int n_out = req.numOutputs();
    obs::Recorder* const rec = obs::current();

    // Tier 1: the matrix object is untouched since the last remember()
    // (epoch check; copies bump the epoch conservatively), so the
    // previous matching is replayed wholesale — still legal, still
    // maximal, O(N) with no arbitration at all.
    if (warm_state_.unchanged(req)) {
        const int replayed = warm_state_.replay(out);
        if (rec) {
            rec->add(obs::Counter::MatchEdgesReused, replayed);
            rec->add(obs::Counter::WarmStartFullReuses, 1);
            rec->matchIteration(obs::MatchAlg::Islip, 0, 0, 0, 0,
                                out.size());
        }
        return;
    }

    // Tier 2: seed with the previous edges that survive validation, then
    // one repair pass over the remaining free outputs in ascending
    // order. Each free output grants-and-matches the free requesting
    // input nearest at-or-after its grant pointer — the same decision in
    // both cores — and both pointers rotate past a repaired pair. The
    // result is maximal: an input left free at the end was free when any
    // output j was visited, so a leftover requested (i, j) pair with j
    // free would have produced a repair at j.
    int reused = 0;
    int repaired = 0;
    int requests_seen = 0;
    if (fast) {
        col_words_ = req.colWords();
        row_words_ = req.rowWords();
        free_in_.resize(static_cast<size_t>(col_words_));
        free_out_.resize(static_cast<size_t>(row_words_));
        requesters_.resize(static_cast<size_t>(col_words_));
        fillFirst(free_in_.data(), col_words_, n_in);
        fillFirst(free_out_.data(), row_words_, n_out);
        reused =
            warm_state_.seed(req, out, free_in_.data(), free_out_.data());
        const int cw = col_words_;
        uint64_t* reqsters = requesters_.data();
        forEachSet(free_out_.data(), row_words_, [&](int j) {
            const uint64_t* col = req.colMask(j);
            uint64_t any = 0;
            for (int w = 0; w < cw; ++w) {
                reqsters[w] = col[w] & free_in_[static_cast<size_t>(w)];
                any |= reqsters[w];
            }
            if (any == 0)
                return;
            if (rec)
                requests_seen += popcountAll(reqsters, cw);
            int pick = firstSetAtOrAfter(reqsters, cw, n_in,
                                         grant_ptr_[static_cast<size_t>(j)]);
            out.add(pick, j);
            ++repaired;
            grant_ptr_[static_cast<size_t>(j)] = (pick + 1) % n_in;
            accept_ptr_[static_cast<size_t>(pick)] = (j + 1) % n_out;
            clearBit(free_in_.data(), pick);
        });
    } else {
        reused = warm_state_.seed(req, out);
        for (PortId j = 0; j < n_out; ++j) {
            if (out.isOutputSaturated(j))
                continue;
            int best_dist = n_in;
            PortId pick = kNoPort;
            for (PortId i = 0; i < n_in; ++i) {
                if (out.isInputMatched(i) || !req.has(i, j))
                    continue;
                if (rec)
                    ++requests_seen;
                int dist = (i - grant_ptr_[static_cast<size_t>(j)] + n_in) %
                           n_in;
                if (dist < best_dist) {
                    best_dist = dist;
                    pick = i;
                }
            }
            if (pick != kNoPort) {
                out.add(pick, j);
                ++repaired;
                grant_ptr_[static_cast<size_t>(j)] = (pick + 1) % n_in;
                accept_ptr_[static_cast<size_t>(pick)] = (j + 1) % n_out;
            }
        }
    }
    warm_state_.remember(req, out);
    if (rec) {
        rec->add(obs::Counter::MatchEdgesReused, reused);
        rec->add(obs::Counter::MatchEdgesRepaired, repaired);
        rec->matchIteration(obs::MatchAlg::Islip, 0, requests_seen,
                            repaired, repaired, out.size());
    }
}

int
IslipMatcher::runIteration(const RequestMatrix& req, Matching& m, int it)
{
    const int n_in = req.numInputs();
    const int n_out = req.numOutputs();
    obs::Recorder* const rec = obs::current();
    int requests_seen = 0;
    int grants_issued = 0;

    // Grant phase: each unmatched output grants to the requesting
    // unmatched input nearest at-or-after its pointer.
    std::vector<std::vector<PortId>> grants_to(static_cast<size_t>(n_in));
    for (PortId j = 0; j < n_out; ++j) {
        if (m.isOutputSaturated(j))
            continue;
        int best_dist = n_in;
        PortId pick = kNoPort;
        for (PortId i = 0; i < n_in; ++i) {
            if (m.isInputMatched(i) || !req.has(i, j))
                continue;
            if (rec)
                ++requests_seen;
            int dist = (i - grant_ptr_[static_cast<size_t>(j)] + n_in) %
                       n_in;
            if (dist < best_dist) {
                best_dist = dist;
                pick = i;
            }
        }
        if (pick != kNoPort) {
            grants_to[static_cast<size_t>(pick)].push_back(j);
            if (rec)
                ++grants_issued;
        }
    }

    // Accept phase: each input accepts the granting output nearest
    // at-or-after its pointer. Pointers move only for matches made in
    // the first iteration (the standard iSLIP rule, which guarantees
    // that the most recently served connection has lowest priority).
    int added = 0;
    for (PortId i = 0; i < n_in; ++i) {
        const auto& grants = grants_to[static_cast<size_t>(i)];
        if (grants.empty())
            continue;
        int best_dist = n_out;
        PortId chosen = grants.front();
        for (PortId j : grants) {
            int dist = (j - accept_ptr_[static_cast<size_t>(i)] + n_out) %
                       n_out;
            if (dist < best_dist) {
                best_dist = dist;
                chosen = j;
            }
        }
        m.add(i, chosen);
        ++added;
        if (it == 0) {
            accept_ptr_[static_cast<size_t>(i)] = (chosen + 1) % n_out;
            grant_ptr_[static_cast<size_t>(chosen)] = (i + 1) % n_in;
        }
    }
    if (rec)
        rec->matchIteration(obs::MatchAlg::Islip, it, requests_seen,
                            grants_issued, added, m.size());
    return added;
}

int
IslipMatcher::runIterationFast(const RequestMatrix& req, Matching& m, int it)
{
    using namespace wordset;
    const int n_in = req.numInputs();
    const int n_out = req.numOutputs();
    const int cw = col_words_;
    const int rw = row_words_;
    uint64_t* granted = granted_.data();
    uint64_t* reqsters = requesters_.data();
    obs::Recorder* const rec = obs::current();
    int requests_seen = 0;
    int grants_issued = 0;

    // Grant phase: "nearest at-or-after the pointer" is a circular
    // first-set-bit search over (requesters & free inputs).
    clearAll(granted, cw);
    forEachSet(free_out_.data(), rw, [&](int j) {
        const uint64_t* col = req.colMask(j);
        uint64_t any = 0;
        for (int w = 0; w < cw; ++w) {
            reqsters[w] = col[w] & free_in_[static_cast<size_t>(w)];
            any |= reqsters[w];
        }
        if (any == 0)
            return;
        if (rec) {
            requests_seen += popcountAll(reqsters, cw);
            ++grants_issued;
        }
        int pick = firstSetAtOrAfter(reqsters, cw, n_in,
                                     grant_ptr_[static_cast<size_t>(j)]);
        uint64_t* row = grant_rows_.data() +
                        static_cast<size_t>(pick) * static_cast<size_t>(rw);
        if (!testBit(granted, pick)) {
            setBit(granted, pick);
            clearAll(row, rw);
        }
        setBit(row, j);
    });
    if (!anySet(granted, cw)) {
        if (rec)
            rec->matchIteration(obs::MatchAlg::Islip, it, 0, 0, 0, m.size());
        return 0;
    }

    // Accept phase; pointer-update rule identical to the scalar core.
    int added = 0;
    forEachSet(granted, cw, [&](int i) {
        uint64_t* row = grant_rows_.data() +
                        static_cast<size_t>(i) * static_cast<size_t>(rw);
        int chosen = firstSetAtOrAfter(row, rw, n_out,
                                       accept_ptr_[static_cast<size_t>(i)]);
        m.add(i, chosen);
        ++added;
        if (it == 0) {
            accept_ptr_[static_cast<size_t>(i)] = (chosen + 1) % n_out;
            grant_ptr_[static_cast<size_t>(chosen)] = (i + 1) % n_in;
        }
        clearBit(free_in_.data(), i);
        clearBit(free_out_.data(), chosen);
    });
    if (rec)
        rec->matchIteration(obs::MatchAlg::Islip, it, requests_seen,
                            grants_issued, added, m.size());
    return added;
}

}  // namespace an2
