/**
 * @file
 * The scheduling problem input: which input-output pairs have queued cells.
 *
 * Switch scheduling is bipartite matching (paper §3.4): inputs and outputs
 * are the two node sets, and an edge (i,j) exists when input i has at least
 * one cell queued for output j. The RequestMatrix records the number of
 * queued cells per pair; schedulers only care whether it is non-zero, but
 * counts are kept for diagnostics and weighted policies.
 *
 * Alongside the dense counts the matrix maintains, incrementally on every
 * mutation, the bit-parallel view the fast matcher backends consume: a
 * row mask per input (bit j set when input i requests output j), a column
 * mask per output (bit i set when input i requests output j), and the
 * edge count. This mirrors the AN2 hardware, where the request state is
 * literally one wire per port pair (§3.3), and lets a switch patch the
 * matrix as cells arrive and depart instead of rebuilding O(N^2) state
 * every slot.
 *
 * Port liveness (fault injection): setInputLive/setOutputLive mark ports
 * dead, which *hides* their requests — has() returns false, the row and
 * column masks exclude them, and numEdges() counts only visible edges —
 * without discarding the underlying counts. Both matcher backend styles
 * consume only has()/rowMask()/colMask(), so a dead port can never be
 * granted by any matcher. Reviving a port re-exposes its surviving
 * queued requests. Liveness survives clear() and copy assignment.
 *
 * Delta tracking (temporal locality): every mutation that changes the
 * *visible* edge set — a count crossing zero, clearRow/clearColumn,
 * clear(), and liveness flips hiding or re-exposing edges — marks the
 * affected input in a dirty-row set, the affected output in a dirty-col
 * set, and bumps an epoch counter. A warm-starting matcher can thus ask
 * "which rows/columns changed since my last matching?" in O(words) and
 * detect a completely unchanged matrix in O(1) via epoch(). Count
 * changes that do not cross zero (2 -> 1 queued cells) leave the edge
 * set intact and mark nothing. The dirty sets are acknowledgment state
 * for a single consumer: clearDirty() is const (the members are
 * mutable) so the matcher can acknowledge deltas on a const matrix.
 */
#ifndef AN2_MATCHING_REQUEST_MATRIX_H
#define AN2_MATCHING_REQUEST_MATRIX_H

#include <cstdint>
#include <vector>

#include "an2/base/error.h"
#include "an2/base/matrix.h"
#include "an2/base/rng.h"
#include "an2/base/types.h"
#include "an2/matching/wordset.h"

namespace an2 {

/** Occupancy of the virtual output queues: requests for the next slot. */
class RequestMatrix
{
  public:
    /** Empty n_inputs x n_outputs request matrix. */
    RequestMatrix(int n_inputs, int n_outputs);

    /** Square n x n request matrix. */
    explicit RequestMatrix(int n) : RequestMatrix(n, n) {}

    /**
     * Copying conservatively marks every row and column dirty and bumps
     * the destination's epoch past both operands: an overwrite may change
     * any visible edge without an individually recorded transition, so a
     * warm-started matcher must never wholesale-reuse a matching across a
     * copy (the per-edge seeding path remains valid). Moves are exact.
     */
    RequestMatrix(const RequestMatrix& other);
    RequestMatrix& operator=(const RequestMatrix& other);
    RequestMatrix(RequestMatrix&&) = default;
    RequestMatrix& operator=(RequestMatrix&&) = default;

    int numInputs() const { return counts_.rows(); }
    int numOutputs() const { return counts_.cols(); }

    /** True when input i has at least one cell queued for output j and
        both ports are live. One bit test against the incrementally
        maintained row mask (the masks hold exactly the visible edges),
        so per-edge legality checks never touch the dense count matrix. */
    bool has(PortId i, PortId j) const
    {
        AN2_ASSERT(i >= 0 && i < numInputs() && j >= 0 && j < numOutputs(),
                   "request (" << i << "," << j << ") out of range");
        return wordset::testBit(rowMask(i), j);
    }

    /** Number of cells queued from i to j. */
    int count(PortId i, PortId j) const { return counts_.at(i, j); }

    /** Set the queued-cell count for (i,j). */
    void set(PortId i, PortId j, int count);

    /** Add one queued cell for (i,j). */
    void increment(PortId i, PortId j) { set(i, j, count(i, j) + 1); }

    /** Remove one queued cell for (i,j); count must be positive. */
    void decrement(PortId i, PortId j);

    /** Number of (i,j) pairs with at least one visible request (O(1));
        requests hidden by dead ports are excluded. */
    int numEdges() const { return edges_; }

    /**
     * Mark input i live or dead. Killing a port hides its requests from
     * has()/masks/numEdges() in O(row edges); reviving re-exposes the
     * surviving counts in O(numOutputs). Idempotent.
     */
    void setInputLive(PortId i, bool live);

    /** Mark output j live or dead (see setInputLive). */
    void setOutputLive(PortId j, bool live);

    bool inputLive(PortId i) const
    {
        return wordset::testBit(live_in_.data(), i);
    }

    bool outputLive(PortId j) const
    {
        return wordset::testBit(live_out_.data(), j);
    }

    /** True when no port has been marked dead. */
    bool allPortsLive() const { return dead_ports_ == 0; }

    /** Total queued cells across all pairs. */
    int totalCells() const { return counts_.total(); }

    /** Clear all requests. */
    void clear();

    /** Zero every request from input i (counts and masks). */
    void clearRow(PortId i);

    /** Zero every request to output j (counts and masks). */
    void clearColumn(PortId j);

    /** Words per row mask (over outputs). */
    int rowWords() const { return row_words_; }

    /** Words per column mask (over inputs). */
    int colWords() const { return col_words_; }

    /** Row mask of input i: bit j set iff has(i, j). */
    const uint64_t* rowMask(PortId i) const
    {
        return row_masks_.data() +
               static_cast<size_t>(i) * static_cast<size_t>(row_words_);
    }

    /** Column mask of output j: bit i set iff has(i, j). */
    const uint64_t* colMask(PortId j) const
    {
        return col_masks_.data() +
               static_cast<size_t>(j) * static_cast<size_t>(col_words_);
    }

    // ---- delta tracking (see the file comment) ------------------------

    /** Inputs whose visible row changed since clearDirty() (bit i set);
        colWords() words. */
    const uint64_t* dirtyRows() const { return dirty_rows_.data(); }

    /** Outputs whose visible column changed since clearDirty() (bit j
        set); rowWords() words. */
    const uint64_t* dirtyCols() const { return dirty_cols_.data(); }

    bool rowDirty(PortId i) const
    {
        return wordset::testBit(dirty_rows_.data(), i);
    }

    bool colDirty(PortId j) const
    {
        return wordset::testBit(dirty_cols_.data(), j);
    }

    /** True when any visible edge changed since clearDirty(). */
    bool anyDirty() const
    {
        return wordset::anySet(dirty_rows_.data(), col_words_) ||
               wordset::anySet(dirty_cols_.data(), row_words_);
    }

    /**
     * Monotonic change counter: bumped on every visible-edge transition.
     * Never reset (clearDirty() leaves it alone), so a consumer holding a
     * stale snapshot can detect "anything changed?" in O(1) even if some
     * other consumer acknowledged the dirty sets in between.
     */
    uint64_t epoch() const { return epoch_; }

    /** Acknowledge all deltas (single-consumer contract; const because
        the matcher holds the matrix by const reference). */
    void clearDirty() const
    {
        wordset::clearAll(dirty_rows_.data(), col_words_);
        wordset::clearAll(dirty_cols_.data(), row_words_);
    }

    /**
     * Generate a random pattern: each pair independently has one request
     * with probability p (the Table 1 workload).
     */
    static RequestMatrix bernoulli(int n, double p, Rng& rng);

  private:
    /** Record a visible-edge transition on (i, j). */
    void markDirty(PortId i, PortId j)
    {
        wordset::setBit(dirty_rows_.data(), i);
        wordset::setBit(dirty_cols_.data(), j);
        ++epoch_;
    }

    uint64_t* rowMaskMut(PortId i)
    {
        return row_masks_.data() +
               static_cast<size_t>(i) * static_cast<size_t>(row_words_);
    }

    uint64_t* colMaskMut(PortId j)
    {
        return col_masks_.data() +
               static_cast<size_t>(j) * static_cast<size_t>(col_words_);
    }

    Matrix<int> counts_;
    int row_words_;
    int col_words_;
    std::vector<uint64_t> row_masks_;  ///< numInputs x row_words_
    std::vector<uint64_t> col_masks_;  ///< numOutputs x col_words_
    std::vector<uint64_t> live_in_;    ///< bit i set = input i live
    std::vector<uint64_t> live_out_;   ///< bit j set = output j live
    int dead_ports_ = 0;               ///< dead inputs + dead outputs
    int edges_ = 0;

    // Delta tracking; mutable so a const consumer can acknowledge.
    mutable std::vector<uint64_t> dirty_rows_;  ///< inputs, col_words_
    mutable std::vector<uint64_t> dirty_cols_;  ///< outputs, row_words_
    uint64_t epoch_ = 0;
};

}  // namespace an2

#endif  // AN2_MATCHING_REQUEST_MATRIX_H
