/**
 * @file
 * The scheduling problem input: which input-output pairs have queued cells.
 *
 * Switch scheduling is bipartite matching (paper §3.4): inputs and outputs
 * are the two node sets, and an edge (i,j) exists when input i has at least
 * one cell queued for output j. The RequestMatrix records the number of
 * queued cells per pair; schedulers only care whether it is non-zero, but
 * counts are kept for diagnostics and weighted policies.
 */
#ifndef AN2_MATCHING_REQUEST_MATRIX_H
#define AN2_MATCHING_REQUEST_MATRIX_H

#include "an2/base/matrix.h"
#include "an2/base/rng.h"
#include "an2/base/types.h"

namespace an2 {

/** Occupancy of the virtual output queues: requests for the next slot. */
class RequestMatrix
{
  public:
    /** Empty n_inputs x n_outputs request matrix. */
    RequestMatrix(int n_inputs, int n_outputs);

    /** Square n x n request matrix. */
    explicit RequestMatrix(int n) : RequestMatrix(n, n) {}

    int numInputs() const { return counts_.rows(); }
    int numOutputs() const { return counts_.cols(); }

    /** True when input i has at least one cell queued for output j. */
    bool has(PortId i, PortId j) const { return counts_.at(i, j) > 0; }

    /** Number of cells queued from i to j. */
    int count(PortId i, PortId j) const { return counts_.at(i, j); }

    /** Set the queued-cell count for (i,j). */
    void set(PortId i, PortId j, int count);

    /** Add one queued cell for (i,j). */
    void increment(PortId i, PortId j) { set(i, j, count(i, j) + 1); }

    /** Remove one queued cell for (i,j); count must be positive. */
    void decrement(PortId i, PortId j);

    /** Number of (i,j) pairs with at least one request. */
    int numEdges() const;

    /** Total queued cells across all pairs. */
    int totalCells() const { return counts_.total(); }

    /** Clear all requests. */
    void clear() { counts_.fill(0); }

    /**
     * Generate a random pattern: each pair independently has one request
     * with probability p (the Table 1 workload).
     */
    static RequestMatrix bernoulli(int n, double p, Rng& rng);

  private:
    Matrix<int> counts_;
};

}  // namespace an2

#endif  // AN2_MATCHING_REQUEST_MATRIX_H
