#include "an2/matching/matching.h"

#include <algorithm>

#include "an2/base/error.h"

namespace an2 {

Matching::Matching(int n_inputs, int n_outputs, int output_capacity)
    : in2out_(static_cast<size_t>(n_inputs), kNoPort),
      out2ins_(static_cast<size_t>(n_outputs)),
      out_degree_(static_cast<size_t>(n_outputs), 0),
      output_capacity_(output_capacity)
{
    AN2_REQUIRE(n_inputs > 0 && n_outputs > 0,
                "matching must have positive dimensions");
    AN2_REQUIRE(output_capacity >= 1, "output capacity must be >= 1");
}

void
Matching::reset(int n_inputs, int n_outputs, int output_capacity)
{
    AN2_REQUIRE(n_inputs > 0 && n_outputs > 0,
                "matching must have positive dimensions");
    AN2_REQUIRE(output_capacity >= 1, "output capacity must be >= 1");
    in2out_.assign(static_cast<size_t>(n_inputs), kNoPort);
    out2ins_.resize(static_cast<size_t>(n_outputs));
    for (auto& ins : out2ins_)
        ins.clear();  // keeps each inner vector's capacity
    out_degree_.assign(static_cast<size_t>(n_outputs), 0);
    output_capacity_ = output_capacity;
    size_ = 0;
}

void
Matching::add(PortId i, PortId j)
{
    AN2_REQUIRE(i >= 0 && i < numInputs(), "input " << i << " out of range");
    AN2_REQUIRE(j >= 0 && j < numOutputs(),
                "output " << j << " out of range");
    AN2_ASSERT(!isInputMatched(i), "input " << i << " already matched");
    AN2_ASSERT(!isOutputSaturated(j), "output " << j << " saturated");
    in2out_[static_cast<size_t>(i)] = j;
    out2ins_[static_cast<size_t>(j)].push_back(i);
    ++out_degree_[static_cast<size_t>(j)];
    ++size_;
}

void
Matching::removeInput(PortId i)
{
    AN2_REQUIRE(i >= 0 && i < numInputs(), "input " << i << " out of range");
    PortId j = in2out_[static_cast<size_t>(i)];
    AN2_ASSERT(j != kNoPort, "input " << i << " is not matched");
    in2out_[static_cast<size_t>(i)] = kNoPort;
    auto& ins = out2ins_[static_cast<size_t>(j)];
    ins.erase(std::find(ins.begin(), ins.end(), i));
    --out_degree_[static_cast<size_t>(j)];
    --size_;
}

const std::vector<PortId>&
Matching::inputsOf(PortId j) const
{
    AN2_REQUIRE(j >= 0 && j < numOutputs(), "output " << j << " out of range");
    return out2ins_[static_cast<size_t>(j)];
}

PortId
Matching::inputOf(PortId j) const
{
    const auto& ins = inputsOf(j);
    return ins.empty() ? kNoPort : ins.front();
}

std::vector<std::pair<PortId, PortId>>
Matching::pairs() const
{
    std::vector<std::pair<PortId, PortId>> result;
    result.reserve(static_cast<size_t>(size_));
    for (PortId i = 0; i < numInputs(); ++i)
        if (in2out_[static_cast<size_t>(i)] != kNoPort)
            result.emplace_back(i, in2out_[static_cast<size_t>(i)]);
    return result;
}

bool
Matching::isLegalFor(const RequestMatrix& req) const
{
    if (req.numInputs() != numInputs() || req.numOutputs() != numOutputs())
        return false;
    for (PortId i = 0; i < numInputs(); ++i) {
        PortId j = in2out_[static_cast<size_t>(i)];
        if (j != kNoPort && !req.has(i, j))
            return false;
    }
    return true;
}

bool
Matching::isMaximalFor(const RequestMatrix& req) const
{
    for (PortId i = 0; i < numInputs(); ++i) {
        if (isInputMatched(i))
            continue;
        for (PortId j = 0; j < numOutputs(); ++j)
            if (req.has(i, j) && !isOutputSaturated(j))
                return false;
    }
    return true;
}

}  // namespace an2
