#include "an2/matching/pim.h"

#include <algorithm>

#include "an2/matching/wordset.h"
#include "an2/obs/recorder.h"

namespace an2 {

namespace {

/** Largest port count the word-parallel core dispatches for. */
constexpr int kMaxFastPorts = 1024;

}  // namespace

PimMatcher::PimMatcher(const PimConfig& config, std::unique_ptr<Rng> rng)
    : config_(config),
      rng_(rng ? std::move(rng) : std::make_unique<Xoshiro256>(config.seed))
{
    AN2_REQUIRE(config_.iterations >= 0,
                "iterations must be >= 0 (0 = to completion)");
    AN2_REQUIRE(config_.output_capacity >= 1,
                "output capacity must be >= 1");
}

std::string
PimMatcher::name() const
{
    std::string n = "PIM(";
    n += config_.iterations == 0 ? "complete"
                                 : std::to_string(config_.iterations);
    if (config_.accept == AcceptPolicy::RoundRobin)
        n += ",rr-accept";
    if (config_.output_capacity > 1)
        n += ",k=" + std::to_string(config_.output_capacity);
    n += ")";
    return n;
}

void
PimMatcher::reset()
{
    accept_ptr_.clear();
}

bool
PimMatcher::useFastCore(const RequestMatrix& req) const
{
    if (config_.backend == MatcherBackend::Reference)
        return false;
    const bool supported = config_.output_capacity == 1 &&
                           req.numInputs() <= kMaxFastPorts &&
                           req.numOutputs() <= kMaxFastPorts;
    if (config_.backend == MatcherBackend::WordParallel) {
        AN2_REQUIRE(supported, "word-parallel PIM requires unit output "
                               "capacity and at most 1024 ports");
    }
    return supported;
}

void
PimMatcher::ensureAcceptPtrs(int n_in)
{
    if (accept_ptr_.empty())
        accept_ptr_.assign(static_cast<size_t>(n_in), 0);
    AN2_REQUIRE(static_cast<int>(accept_ptr_.size()) == n_in,
                "request matrix size changed without reset()");
}

void
PimMatcher::prepareFastState(const RequestMatrix& req)
{
    const int n_in = req.numInputs();
    const int n_out = req.numOutputs();
    col_words_ = req.colWords();
    row_words_ = req.rowWords();
    free_in_.resize(static_cast<size_t>(col_words_));
    free_out_.resize(static_cast<size_t>(row_words_));
    granted_.resize(static_cast<size_t>(col_words_));
    requesters_.resize(static_cast<size_t>(col_words_));
    grant_rows_.resize(static_cast<size_t>(n_in) *
                       static_cast<size_t>(row_words_));
    wordset::fillFirst(free_in_.data(), col_words_, n_in);
    wordset::fillFirst(free_out_.data(), row_words_, n_out);
}

Matching
PimMatcher::match(const RequestMatrix& req)
{
    Matching m(req.numInputs(), req.numOutputs(), config_.output_capacity);
    matchInto(req, m);
    return m;
}

void
PimMatcher::matchInto(const RequestMatrix& req, Matching& out)
{
    const int n_in = req.numInputs();
    const int n_out = req.numOutputs();
    out.reset(n_in, n_out, config_.output_capacity);
    ensureAcceptPtrs(n_in);

    // An iteration with unresolved requests always adds at least one match
    // (some output grants, some input accepts), so "no progress" implies
    // maximality and the loop terminates for iterations == 0.
    if (useFastCore(req)) {
        prepareFastState(req);
        for (int it = 0;
             config_.iterations == 0 || it < config_.iterations; ++it)
            if (runIterationFast(req, out, it) == 0)
                break;
    } else {
        for (int it = 0;
             config_.iterations == 0 || it < config_.iterations; ++it)
            if (runIteration(req, out, it) == 0)
                break;
    }
}

Matching
PimMatcher::matchDetailed(const RequestMatrix& req, PimRunStats& stats,
                          int max_iterations)
{
    const int n_in = req.numInputs();
    const int n_out = req.numOutputs();
    Matching m(n_in, n_out, config_.output_capacity);
    ensureAcceptPtrs(n_in);

    stats = PimRunStats{};
    const bool fast = useFastCore(req);
    if (fast)
        prepareFastState(req);
    for (int it = 0; max_iterations == 0 || it < max_iterations; ++it) {
        int added = fast ? runIterationFast(req, m, it)
                         : runIteration(req, m, it);
        ++stats.iterations_run;
        stats.matches_after_iteration.push_back(m.size());
        if (added == 0)
            break;
    }
    stats.reached_maximal = m.isMaximalFor(req);
    return m;
}

int
PimMatcher::runIteration(const RequestMatrix& req, Matching& m, int it)
{
    const int n_in = req.numInputs();
    const int n_out = req.numOutputs();
    obs::Recorder* const rec = obs::current();
    int requests_seen = 0;
    int grants_issued = 0;

    // Phase 1+2 (request + grant). Conceptually each unmatched input
    // broadcasts requests and each output chooses among them; we evaluate
    // the grant decision at the output, which sees exactly the requests
    // from currently-unmatched inputs.
    //
    // grants_to[i] lists the outputs granting to input i this iteration.
    std::vector<std::vector<PortId>> grants_to(static_cast<size_t>(n_in));
    std::vector<PortId> requesters;
    requesters.reserve(static_cast<size_t>(n_in));
    for (PortId j = 0; j < n_out; ++j) {
        int capacity_left = m.outputCapacity() - m.outputDegree(j);
        if (capacity_left <= 0)
            continue;
        requesters.clear();
        for (PortId i = 0; i < n_in; ++i)
            if (!m.isInputMatched(i) && req.has(i, j))
                requesters.push_back(i);
        if (requesters.empty())
            continue;
        if (rec)
            requests_seen += static_cast<int>(requesters.size());
        if (capacity_left == 1) {
            PortId pick = requesters[rng_->nextBelow(requesters.size())];
            grants_to[static_cast<size_t>(pick)].push_back(j);
            if (rec)
                ++grants_issued;
        } else {
            // Replicated-fabric generalization: grant up to k distinct
            // requesters, chosen uniformly without replacement.
            rng_->shuffle(requesters);
            int grants = std::min<int>(capacity_left,
                                       static_cast<int>(requesters.size()));
            for (int g = 0; g < grants; ++g)
                grants_to[static_cast<size_t>(requesters[static_cast<size_t>(g)])]
                    .push_back(j);
            if (rec)
                grants_issued += grants;
        }
    }

    // Phase 3 (accept): each input that received grants accepts one.
    int added = 0;
    for (PortId i = 0; i < n_in; ++i) {
        auto& grants = grants_to[static_cast<size_t>(i)];
        if (grants.empty())
            continue;
        PortId chosen;
        if (config_.accept == AcceptPolicy::Random) {
            chosen = grants[rng_->nextBelow(grants.size())];
        } else {
            // Round-robin: first granting output at or after the pointer.
            int ptr = accept_ptr_[static_cast<size_t>(i)];
            chosen = grants.front();
            int best_dist = n_out;
            for (PortId j : grants) {
                int dist = (j - ptr + n_out) % n_out;
                if (dist < best_dist) {
                    best_dist = dist;
                    chosen = j;
                }
            }
            accept_ptr_[static_cast<size_t>(i)] = (chosen + 1) % n_out;
        }
        m.add(i, chosen);
        ++added;
    }
    if (rec)
        rec->matchIteration(obs::MatchAlg::Pim, it, requests_seen,
                            grants_issued, added, m.size());
    return added;
}

int
PimMatcher::runIterationFast(const RequestMatrix& req, Matching& m, int it)
{
    using namespace wordset;
    const int n_out = req.numOutputs();
    const int cw = col_words_;
    const int rw = row_words_;
    uint64_t* granted = granted_.data();
    uint64_t* reqsters = requesters_.data();
    obs::Recorder* const rec = obs::current();
    int requests_seen = 0;
    int grants_issued = 0;

    // Grant phase: every free output with free requesters grants one
    // uniformly. The draw sequence matches the scalar core exactly —
    // outputs visited in ascending order, one nextBelow(#requesters)
    // draw per granting output.
    clearAll(granted, cw);
    forEachSet(free_out_.data(), rw, [&](int j) {
        const uint64_t* col = req.colMask(j);
        uint64_t any = 0;
        for (int w = 0; w < cw; ++w) {
            reqsters[w] = col[w] & free_in_[static_cast<size_t>(w)];
            any |= reqsters[w];
        }
        if (any == 0)
            return;
        int cnt = popcountAll(reqsters, cw);
        if (rec) {
            requests_seen += cnt;
            ++grants_issued;
        }
        int pick = selectBit(
            reqsters, cw,
            static_cast<int>(rng_->nextBelow(static_cast<uint64_t>(cnt))));
        uint64_t* row = grant_rows_.data() +
                        static_cast<size_t>(pick) * static_cast<size_t>(rw);
        if (!testBit(granted, pick)) {
            setBit(granted, pick);
            clearAll(row, rw);
        }
        setBit(row, j);
    });
    if (!anySet(granted, cw)) {
        if (rec)
            rec->matchIteration(obs::MatchAlg::Pim, it, 0, 0, 0, m.size());
        return 0;
    }

    // Accept phase: every granted input accepts one grant — uniformly at
    // random, or the first at/after its round-robin pointer.
    int added = 0;
    forEachSet(granted, cw, [&](int i) {
        uint64_t* row = grant_rows_.data() +
                        static_cast<size_t>(i) * static_cast<size_t>(rw);
        int chosen;
        if (config_.accept == AcceptPolicy::Random) {
            int cnt = popcountAll(row, rw);
            chosen = selectBit(row, rw,
                               static_cast<int>(rng_->nextBelow(
                                   static_cast<uint64_t>(cnt))));
        } else {
            chosen = firstSetAtOrAfter(row, rw, n_out,
                                       accept_ptr_[static_cast<size_t>(i)]);
            accept_ptr_[static_cast<size_t>(i)] = (chosen + 1) % n_out;
        }
        m.add(i, chosen);
        clearBit(free_in_.data(), i);
        clearBit(free_out_.data(), chosen);
        ++added;
    });
    if (rec)
        rec->matchIteration(obs::MatchAlg::Pim, it, requests_seen,
                            grants_issued, added, m.size());
    return added;
}

}  // namespace an2
