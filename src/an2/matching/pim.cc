#include "an2/matching/pim.h"

#include <algorithm>

namespace an2 {

PimMatcher::PimMatcher(const PimConfig& config, std::unique_ptr<Rng> rng)
    : config_(config),
      rng_(rng ? std::move(rng) : std::make_unique<Xoshiro256>(config.seed))
{
    AN2_REQUIRE(config_.iterations >= 0,
                "iterations must be >= 0 (0 = to completion)");
    AN2_REQUIRE(config_.output_capacity >= 1,
                "output capacity must be >= 1");
}

std::string
PimMatcher::name() const
{
    std::string n = "PIM(";
    n += config_.iterations == 0 ? "complete"
                                 : std::to_string(config_.iterations);
    if (config_.accept == AcceptPolicy::RoundRobin)
        n += ",rr-accept";
    if (config_.output_capacity > 1)
        n += ",k=" + std::to_string(config_.output_capacity);
    n += ")";
    return n;
}

void
PimMatcher::reset()
{
    accept_ptr_.clear();
}

Matching
PimMatcher::match(const RequestMatrix& req)
{
    PimRunStats stats;
    return matchDetailed(req, stats, config_.iterations);
}

Matching
PimMatcher::matchDetailed(const RequestMatrix& req, PimRunStats& stats,
                          int max_iterations)
{
    const int n_in = req.numInputs();
    const int n_out = req.numOutputs();
    Matching m(n_in, n_out, config_.output_capacity);
    if (accept_ptr_.empty())
        accept_ptr_.assign(static_cast<size_t>(n_in), 0);
    AN2_REQUIRE(static_cast<int>(accept_ptr_.size()) == n_in,
                "request matrix size changed without reset()");

    stats = PimRunStats{};
    // An iteration with unresolved requests always adds at least one match
    // (some output grants, some input accepts), so "no progress" implies
    // maximality and the loop below terminates for max_iterations == 0.
    for (int it = 0; max_iterations == 0 || it < max_iterations; ++it) {
        int added = runIteration(req, m);
        ++stats.iterations_run;
        stats.matches_after_iteration.push_back(m.size());
        if (added == 0)
            break;
    }
    stats.reached_maximal = m.isMaximalFor(req);
    return m;
}

int
PimMatcher::runIteration(const RequestMatrix& req, Matching& m)
{
    const int n_in = req.numInputs();
    const int n_out = req.numOutputs();

    // Phase 1+2 (request + grant). Conceptually each unmatched input
    // broadcasts requests and each output chooses among them; we evaluate
    // the grant decision at the output, which sees exactly the requests
    // from currently-unmatched inputs.
    //
    // grants_to[i] lists the outputs granting to input i this iteration.
    std::vector<std::vector<PortId>> grants_to(static_cast<size_t>(n_in));
    std::vector<PortId> requesters;
    requesters.reserve(static_cast<size_t>(n_in));
    for (PortId j = 0; j < n_out; ++j) {
        int capacity_left = m.outputCapacity() - m.outputDegree(j);
        if (capacity_left <= 0)
            continue;
        requesters.clear();
        for (PortId i = 0; i < n_in; ++i)
            if (!m.isInputMatched(i) && req.has(i, j))
                requesters.push_back(i);
        if (requesters.empty())
            continue;
        if (capacity_left == 1) {
            PortId pick = requesters[rng_->nextBelow(requesters.size())];
            grants_to[static_cast<size_t>(pick)].push_back(j);
        } else {
            // Replicated-fabric generalization: grant up to k distinct
            // requesters, chosen uniformly without replacement.
            rng_->shuffle(requesters);
            int grants = std::min<int>(capacity_left,
                                       static_cast<int>(requesters.size()));
            for (int g = 0; g < grants; ++g)
                grants_to[static_cast<size_t>(requesters[static_cast<size_t>(g)])]
                    .push_back(j);
        }
    }

    // Phase 3 (accept): each input that received grants accepts one.
    int added = 0;
    for (PortId i = 0; i < n_in; ++i) {
        auto& grants = grants_to[static_cast<size_t>(i)];
        if (grants.empty())
            continue;
        PortId chosen;
        if (config_.accept == AcceptPolicy::Random) {
            chosen = grants[rng_->nextBelow(grants.size())];
        } else {
            // Round-robin: first granting output at or after the pointer.
            int ptr = accept_ptr_[static_cast<size_t>(i)];
            chosen = grants.front();
            int best_dist = n_out;
            for (PortId j : grants) {
                int dist = (j - ptr + n_out) % n_out;
                if (dist < best_dist) {
                    best_dist = dist;
                    chosen = j;
                }
            }
            accept_ptr_[static_cast<size_t>(i)] = (chosen + 1) % n_out;
        }
        m.add(i, chosen);
        ++added;
    }
    return added;
}

}  // namespace an2
