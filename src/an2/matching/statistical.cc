#include "an2/matching/statistical.h"

#include <algorithm>
#include <cmath>

namespace an2 {

double
statisticalOneRoundFraction(int units)
{
    double miss = std::pow((units - 1.0) / units, units);  // -> 1/e
    return 1.0 - miss;
}

double
statisticalTwoRoundFraction(int units)
{
    double miss = std::pow((units - 1.0) / units, units);
    return (1.0 - miss) * (1.0 + miss * miss);
}

StatisticalMatcher::StatisticalMatcher(Matrix<int> allocation,
                                       const StatisticalConfig& config,
                                       std::unique_ptr<Rng> rng)
    : alloc_(std::move(allocation)), config_(config),
      rng_(rng ? std::move(rng) : std::make_unique<Xoshiro256>(config.seed))
{
    AN2_REQUIRE(config_.units >= 2, "need at least two bandwidth units");
    AN2_REQUIRE(config_.rounds >= 1 && config_.rounds <= 2,
                "rounds must be 1 or 2");
    AN2_REQUIRE(alloc_.rows() > 0 && alloc_.rows() == alloc_.cols(),
                "allocation matrix must be square and non-empty");
    rebuildTables();
}

std::string
StatisticalMatcher::name() const
{
    return "Statistical(" + std::to_string(config_.rounds) + "-round,X=" +
           std::to_string(config_.units) + ")";
}

void
StatisticalMatcher::setAllocation(PortId i, PortId j, int alloc_units)
{
    AN2_REQUIRE(alloc_units >= 0, "allocation must be non-negative");
    // Validate before mutating so a rejected update leaves the matcher
    // in its previous, consistent state.
    int delta = alloc_units - alloc_.at(i, j);
    AN2_REQUIRE(alloc_.rowSum(i) + delta <= config_.units,
                "input " << i << " would be over-allocated");
    AN2_REQUIRE(alloc_.colSum(j) + delta <= config_.units,
                "output " << j << " would be over-allocated");
    alloc_.at(i, j) = alloc_units;
    rebuildTables();
}

void
StatisticalMatcher::rebuildTables()
{
    const int n = alloc_.rows();
    const int X = config_.units;
    for (int i = 0; i < n; ++i) {
        AN2_REQUIRE(alloc_.rowSum(i) <= X,
                    "input " << i << " over-allocated: " << alloc_.rowSum(i)
                             << " > " << X);
    }
    for (int j = 0; j < n; ++j) {
        AN2_REQUIRE(alloc_.colSum(j) <= X,
                    "output " << j << " over-allocated: " << alloc_.colSum(j)
                              << " > " << X);
    }

    // Per-output cumulative allocations for the grant lottery.
    col_cum_.assign(static_cast<size_t>(n), {});
    for (int j = 0; j < n; ++j) {
        auto& cum = col_cum_[static_cast<size_t>(j)];
        cum.resize(static_cast<size_t>(n));
        int acc = 0;
        for (int i = 0; i < n; ++i) {
            acc += alloc_.at(i, j);
            cum[static_cast<size_t>(i)] = acc;
        }
    }

    // Binomial virtual-grant tables. pmf(m) for Binomial(n_units, 1/X) is
    // computed iteratively; the conditional-given-grant CDF rescales the
    // m >= 1 tail by X/n_units per Appendix C, with the remainder at m=0.
    auto binomial_cdf = [X](int n_units) {
        std::vector<double> cdf;
        if (n_units <= 0) {
            cdf.push_back(1.0);  // always zero virtual grants
            return cdf;
        }
        double q = (X - 1.0) / X;
        double pmf = std::pow(q, n_units);  // m = 0
        double acc = pmf;
        cdf.push_back(acc);
        for (int m = 0; m < n_units; ++m) {
            pmf *= static_cast<double>(n_units - m) /
                   (static_cast<double>(m + 1) * (X - 1.0));
            acc += pmf;
            cdf.push_back(std::min(acc, 1.0));
            if (1.0 - acc < 1e-15)
                break;  // negligible tail
        }
        cdf.back() = 1.0;
        return cdf;
    };

    cond_cdf_.assign(static_cast<size_t>(n) * static_cast<size_t>(n), {});
    for (int i = 0; i < n; ++i) {
        for (int j = 0; j < n; ++j) {
            int units = alloc_.at(i, j);
            if (units == 0)
                continue;
            auto uncond = binomial_cdf(units);
            // cond(m) = pmf(m) * X/units for m >= 1; cond(0) = 1 - rest.
            std::vector<double> cond(uncond.size());
            double scale = static_cast<double>(X) / units;
            double tail = 0.0;
            for (size_t m = uncond.size(); m-- > 1;) {
                double pmf = uncond[m] - uncond[m - 1];
                tail += pmf * scale;
            }
            cond[0] = std::max(0.0, 1.0 - tail);
            double acc = cond[0];
            for (size_t m = 1; m < uncond.size(); ++m) {
                double pmf = uncond[m] - uncond[m - 1];
                acc += pmf * scale;
                cond[m] = std::min(acc, 1.0);
            }
            cond.back() = 1.0;
            cond_cdf_[static_cast<size_t>(i) * static_cast<size_t>(n) +
                      static_cast<size_t>(j)] = std::move(cond);
        }
    }

    imag_cdf_.assign(static_cast<size_t>(n), {});
    for (int i = 0; i < n; ++i) {
        int slack = X - alloc_.rowSum(i);
        imag_cdf_[static_cast<size_t>(i)] = binomial_cdf(slack);
    }
}

namespace {

/** Sample an index from a CDF table with one uniform draw. */
int
sampleCdf(const std::vector<double>& cdf, double u)
{
    auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
    if (it == cdf.end())
        --it;
    return static_cast<int>(it - cdf.begin());
}

}  // namespace

int
StatisticalMatcher::sampleVirtualGrants(PortId i, PortId j) const
{
    const auto& cdf =
        cond_cdf_[static_cast<size_t>(i) * static_cast<size_t>(alloc_.rows()) +
                  static_cast<size_t>(j)];
    AN2_ASSERT(!cdf.empty(), "virtual-grant table missing for allocated pair");
    return sampleCdf(cdf, rng_->nextDouble());
}

int
StatisticalMatcher::sampleImaginaryGrants(PortId i) const
{
    return sampleCdf(imag_cdf_[static_cast<size_t>(i)], rng_->nextDouble());
}

void
StatisticalMatcher::runRound(std::vector<PortId>& in2out) const
{
    const int n = alloc_.rows();
    const int X = config_.units;
    in2out.assign(static_cast<size_t>(n), kNoPort);

    // Grant phase: each output picks input i with probability X[i][j]/X;
    // residual probability is a grant to the imaginary input (no grant).
    std::vector<std::vector<PortId>> grants_to(static_cast<size_t>(n));
    for (PortId j = 0; j < n; ++j) {
        const auto& cum = col_cum_[static_cast<size_t>(j)];
        int total = cum.back();
        if (total == 0)
            continue;
        auto ticket = static_cast<int>(rng_->nextBelow(
            static_cast<uint64_t>(X)));
        if (ticket >= total)
            continue;  // imaginary input
        auto it = std::upper_bound(cum.begin(), cum.end(), ticket);
        auto i = static_cast<PortId>(it - cum.begin());
        grants_to[static_cast<size_t>(i)].push_back(j);
    }

    // Accept phase: weight each granting output by its virtual-grant
    // count; unreserved input bandwidth competes as an imaginary output.
    std::vector<int> weights;
    for (PortId i = 0; i < n; ++i) {
        const auto& grants = grants_to[static_cast<size_t>(i)];
        int imag = sampleImaginaryGrants(i);
        if (grants.empty() && imag == 0)
            continue;
        weights.assign(grants.size() + 1, 0);
        int total = imag;
        weights.back() = imag;
        for (size_t g = 0; g < grants.size(); ++g) {
            int m = sampleVirtualGrants(i, grants[g]);
            weights[g] = m;
            total += m;
        }
        if (total == 0)
            continue;  // no virtual grants at all: unmatched
        size_t pick = rng_->pickWeighted(weights);
        if (pick < grants.size())
            in2out[static_cast<size_t>(i)] = grants[pick];
        // else: accepted the imaginary output; stays unmatched.
    }
}

Matching
StatisticalMatcher::matchAllocated()
{
    const int n = alloc_.rows();
    std::vector<PortId> round1;
    runRound(round1);

    Matching m(n, n);
    std::vector<bool> out_taken(static_cast<size_t>(n), false);
    for (PortId i = 0; i < n; ++i) {
        PortId j = round1[static_cast<size_t>(i)];
        if (j != kNoPort) {
            m.add(i, j);
            out_taken[static_cast<size_t>(j)] = true;
        }
    }

    if (config_.rounds == 2) {
        // Independent second round; keep only matches whose input and
        // output were both left unmatched by round one.
        std::vector<PortId> round2;
        runRound(round2);
        for (PortId i = 0; i < n; ++i) {
            PortId j = round2[static_cast<size_t>(i)];
            if (j == kNoPort || m.isInputMatched(i) ||
                out_taken[static_cast<size_t>(j)])
                continue;
            m.add(i, j);
            out_taken[static_cast<size_t>(j)] = true;
        }
    }
    return m;
}

Matching
StatisticalMatcher::match(const RequestMatrix& req)
{
    AN2_REQUIRE(req.numInputs() == alloc_.rows() &&
                    req.numOutputs() == alloc_.cols(),
                "request matrix size does not match allocation");
    Matching scheduled = matchAllocated();
    Matching m(req.numInputs(), req.numOutputs());
    for (auto [i, j] : scheduled.pairs())
        if (req.has(i, j))
            m.add(i, j);
    return m;
}

}  // namespace an2
