/**
 * @file
 * The scheduling result: a conflict-free pairing of inputs to outputs.
 *
 * A Matching assigns each input to at most one output. Each output is
 * normally matched to at most one input; an output capacity k > 1 models
 * the replicated-fabric generalization of paper §3.1, where up to k cells
 * may be delivered to one output in a slot (requiring output buffers).
 */
#ifndef AN2_MATCHING_MATCHING_H
#define AN2_MATCHING_MATCHING_H

#include <utility>
#include <vector>

#include "an2/base/types.h"
#include "an2/matching/request_matrix.h"

namespace an2 {

/** A legal crossbar configuration for one time slot. */
class Matching
{
  public:
    /**
     * @param n_inputs Number of input ports.
     * @param n_outputs Number of output ports.
     * @param output_capacity Max inputs matched to one output (default 1).
     */
    Matching(int n_inputs, int n_outputs, int output_capacity = 1);

    /** Square n x n matching with unit output capacity. */
    explicit Matching(int n) : Matching(n, n, 1) {}

    /**
     * Empty the matching and re-dimension it, preserving allocated
     * capacity when the dimensions are unchanged — the per-slot reuse
     * path of the switch hot loop (no heap traffic in steady state).
     */
    void reset(int n_inputs, int n_outputs, int output_capacity = 1);

    int numInputs() const { return static_cast<int>(in2out_.size()); }
    int numOutputs() const
    {
        return static_cast<int>(out_degree_.size());
    }

    /** Max inputs that may be matched to a single output. */
    int outputCapacity() const { return output_capacity_; }

    /**
     * Pair input i with output j. The input must be unmatched and the
     * output must have remaining capacity.
     */
    void add(PortId i, PortId j);

    /** Remove the pairing of input i (which must be matched). */
    void removeInput(PortId i);

    /** Output matched to input i, or kNoPort. */
    PortId outputOf(PortId i) const { return in2out_.at(static_cast<size_t>(i)); }

    /** Inputs matched to output j (empty if unmatched). */
    const std::vector<PortId>& inputsOf(PortId j) const;

    /** The single input matched to output j, or kNoPort (capacity-1 use). */
    PortId inputOf(PortId j) const;

    bool isInputMatched(PortId i) const { return outputOf(i) != kNoPort; }

    /** Number of inputs currently matched to output j. */
    int outputDegree(PortId j) const
    {
        return out_degree_.at(static_cast<size_t>(j));
    }

    /** True when output j has no remaining capacity. */
    bool isOutputSaturated(PortId j) const
    {
        return outputDegree(j) >= output_capacity_;
    }

    /** Number of matched (input, output) pairs. */
    int size() const { return size_; }

    /** All matched pairs as (input, output), in input order. */
    std::vector<std::pair<PortId, PortId>> pairs() const;

    /**
     * True when every pairing corresponds to a request in `req` (the
     * matching never connects ports with nothing to send).
     */
    bool isLegalFor(const RequestMatrix& req) const;

    /**
     * True when no pairing can be trivially added: every requested (i,j)
     * has input i matched or output j saturated. This is the "maximal
     * match" property of paper §3.4.
     */
    bool isMaximalFor(const RequestMatrix& req) const;

  private:
    std::vector<PortId> in2out_;
    std::vector<std::vector<PortId>> out2ins_;
    std::vector<int> out_degree_;
    int output_capacity_;
    int size_ = 0;
};

}  // namespace an2

#endif  // AN2_MATCHING_MATCHING_H
