/**
 * @file
 * Composite scheduling (§5.2): "Any slot not used by statistical
 * matching can be filled with other traffic by parallel iterative
 * matching." The FillInMatcher runs a primary scheduler (typically
 * statistical matching, whose weighted dice intentionally idle ~28% of
 * allocated capacity) and hands the leftover ports to a secondary
 * scheduler (typically PIM) in the same slot, so reserved shares are
 * honored *and* the switch stays work-conserving.
 */
#ifndef AN2_MATCHING_FILL_IN_H
#define AN2_MATCHING_FILL_IN_H

#include <memory>

#include "an2/matching/matcher.h"

namespace an2 {

/** Primary scheduler with a secondary filling the ports it leaves idle. */
class FillInMatcher final : public Matcher
{
  public:
    /**
     * @param primary Scheduler with first claim on the slot (owned).
     * @param secondary Scheduler for the leftover ports (owned).
     */
    FillInMatcher(std::unique_ptr<Matcher> primary,
                  std::unique_ptr<Matcher> secondary);

    Matching match(const RequestMatrix& req) override;
    std::string name() const override;
    void reset() override;

    /** Pairs contributed by the primary scheduler so far. */
    int64_t primaryPairs() const { return primary_pairs_; }

    /** Pairs contributed by the fill-in scheduler so far. */
    int64_t fillInPairs() const { return fill_in_pairs_; }

    /** The primary scheduler (e.g. to adjust allocations on the fly). */
    Matcher& primary() { return *primary_; }

  private:
    std::unique_ptr<Matcher> primary_;
    std::unique_ptr<Matcher> secondary_;
    int64_t primary_pairs_ = 0;
    int64_t fill_in_pairs_ = 0;
};

}  // namespace an2

#endif  // AN2_MATCHING_FILL_IN_H
