#include "an2/matching/fill_in.h"

#include "an2/base/error.h"

namespace an2 {

FillInMatcher::FillInMatcher(std::unique_ptr<Matcher> primary,
                             std::unique_ptr<Matcher> secondary)
    : primary_(std::move(primary)), secondary_(std::move(secondary))
{
    AN2_REQUIRE(primary_ != nullptr && secondary_ != nullptr,
                "both schedulers are required");
}

std::string
FillInMatcher::name() const
{
    return primary_->name() + "+" + secondary_->name();
}

void
FillInMatcher::reset()
{
    primary_->reset();
    secondary_->reset();
}

Matching
FillInMatcher::match(const RequestMatrix& req)
{
    Matching m = primary_->match(req);
    AN2_ASSERT(m.isLegalFor(req), "primary returned an illegal matching");
    primary_pairs_ += m.size();

    // Hand the secondary scheduler only the requests between ports the
    // primary left idle.
    RequestMatrix residual(req.numInputs(), req.numOutputs());
    bool any = false;
    for (PortId i = 0; i < req.numInputs(); ++i) {
        if (m.isInputMatched(i))
            continue;
        for (PortId j = 0; j < req.numOutputs(); ++j) {
            if (m.isOutputSaturated(j))
                continue;
            int count = req.count(i, j);
            if (count > 0) {
                residual.set(i, j, count);
                any = true;
            }
        }
    }
    if (!any)
        return m;

    Matching fill = secondary_->match(residual);
    AN2_ASSERT(fill.isLegalFor(residual),
               "fill-in returned an illegal matching");
    for (auto [i, j] : fill.pairs()) {
        m.add(i, j);
        ++fill_in_pairs_;
    }
    return m;
}

}  // namespace an2
