#include "an2/matching/multicast.h"

#include <algorithm>

#include "an2/base/error.h"

namespace an2 {

MulticastPim::MulticastPim(int n, const MulticastPimConfig& config)
    : n_(n), config_(config),
      rng_(std::make_unique<Xoshiro256>(config.seed))
{
    AN2_REQUIRE(n > 0, "switch size must be positive");
    AN2_REQUIRE(config.iterations >= 1, "need at least one iteration");
}

namespace {

/** True when request r's fanout contains output j. */
bool
wants(const MulticastRequest& r, PortId j)
{
    return std::find(r.outputs.begin(), r.outputs.end(), j) !=
           r.outputs.end();
}

}  // namespace

MulticastMatch
MulticastPim::match(const std::vector<MulticastRequest>& requests)
{
    std::vector<bool> input_seen(static_cast<size_t>(n_), false);
    for (const auto& r : requests) {
        AN2_REQUIRE(r.input >= 0 && r.input < n_,
                    "input " << r.input << " out of range");
        AN2_REQUIRE(!input_seen[static_cast<size_t>(r.input)],
                    "duplicate multicast request for input " << r.input);
        input_seen[static_cast<size_t>(r.input)] = true;
        AN2_REQUIRE(!r.outputs.empty(), "empty fanout set");
        std::vector<bool> out_seen(static_cast<size_t>(n_), false);
        for (PortId j : r.outputs) {
            AN2_REQUIRE(j >= 0 && j < n_, "output " << j << " out of range");
            AN2_REQUIRE(!out_seen[static_cast<size_t>(j)],
                        "duplicate output " << j << " in fanout set");
            out_seen[static_cast<size_t>(j)] = true;
        }
    }

    MulticastMatch result;
    result.won.assign(requests.size(), {});

    if (config_.fanout_splitting) {
        // With splitting, one grant round settles everything: each
        // contended output picks a requester, and every grant is served
        // by that input's single (replicated) transmission, so no output
        // ever goes back into contention.
        std::vector<int> requesters;
        for (PortId j = 0; j < n_; ++j) {
            requesters.clear();
            for (size_t r = 0; r < requests.size(); ++r)
                if (wants(requests[r], j))
                    requesters.push_back(static_cast<int>(r));
            if (requesters.empty())
                continue;
            int pick = requesters[rng_->nextBelow(requesters.size())];
            result.won[static_cast<size_t>(pick)].push_back(j);
        }
    } else {
        // All-or-nothing: iterate tentative grant rounds. A request
        // locks in when it wins its entire fanout; a request that lost
        // an output to a *locked* transmission can never complete this
        // slot and withdraws, freeing its other outputs for rivals.
        std::vector<bool> locked_out(static_cast<size_t>(n_), false);
        enum class State { Candidate, Locked, Withdrawn };
        std::vector<State> state(requests.size(), State::Candidate);
        for (int it = 0; it < config_.iterations; ++it) {
            // Tentative grants among surviving candidates.
            std::vector<int> tentative_owner(static_cast<size_t>(n_), -1);
            std::vector<int> requesters;
            for (PortId j = 0; j < n_; ++j) {
                if (locked_out[static_cast<size_t>(j)])
                    continue;
                requesters.clear();
                for (size_t r = 0; r < requests.size(); ++r)
                    if (state[r] == State::Candidate &&
                        wants(requests[r], j))
                        requesters.push_back(static_cast<int>(r));
                if (requesters.empty())
                    continue;
                tentative_owner[static_cast<size_t>(j)] =
                    requesters[rng_->nextBelow(requesters.size())];
            }
            // Lock complete winners; everyone else releases.
            for (size_t r = 0; r < requests.size(); ++r) {
                if (state[r] != State::Candidate)
                    continue;
                bool complete = true;
                for (PortId j : requests[r].outputs) {
                    if (tentative_owner[static_cast<size_t>(j)] !=
                        static_cast<int>(r)) {
                        complete = false;
                        break;
                    }
                }
                if (complete) {
                    state[r] = State::Locked;
                    for (PortId j : requests[r].outputs) {
                        locked_out[static_cast<size_t>(j)] = true;
                        result.won[r].push_back(j);
                    }
                }
            }
            // Candidates blocked by a locked output can never complete.
            int candidates_left = 0;
            for (size_t r = 0; r < requests.size(); ++r) {
                if (state[r] != State::Candidate)
                    continue;
                for (PortId j : requests[r].outputs) {
                    if (locked_out[static_cast<size_t>(j)]) {
                        state[r] = State::Withdrawn;
                        break;
                    }
                }
                if (state[r] == State::Candidate)
                    ++candidates_left;
            }
            // Even a lock-free round is worth retrying: fresh random
            // grants can break the tie next iteration. Stop only when
            // nobody is left trying.
            if (candidates_left == 0)
                break;
        }
    }

    for (size_t r = 0; r < requests.size(); ++r) {
        std::sort(result.won[r].begin(), result.won[r].end());
        result.deliveries += static_cast<int>(result.won[r].size());
        if (result.won[r].size() == requests[r].outputs.size())
            ++result.completed;
    }
    return result;
}

}  // namespace an2
