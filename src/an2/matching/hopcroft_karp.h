/**
 * @file
 * Hopcroft–Karp maximum bipartite matching, the §3.4 upper-bound
 * comparator. The paper argues that maximum matching is (a) too slow for a
 * per-slot hardware scheduler and (b) can starve connections; this
 * implementation lets the benches quantify (a) and demonstrate (b), and
 * lets tests verify that PIM's maximal matches are within the classic 2x
 * bound of the maximum.
 */
#ifndef AN2_MATCHING_HOPCROFT_KARP_H
#define AN2_MATCHING_HOPCROFT_KARP_H

#include "an2/matching/matcher.h"

namespace an2 {

/** Exact maximum matching in O(E * sqrt(V)). Deterministic. */
class HopcroftKarpMatcher final : public Matcher
{
  public:
    Matching match(const RequestMatrix& req) override;
    std::string name() const override { return "HopcroftKarp(maximum)"; }
};

/** Size of a maximum matching for `req` (convenience wrapper). */
int maximumMatchingSize(const RequestMatrix& req);

}  // namespace an2

#endif  // AN2_MATCHING_HOPCROFT_KARP_H
