/**
 * @file
 * Statistical matching (paper §5, Appendix C): PIM with weighted dice.
 *
 * Bandwidth per link is divided into X discrete units; X[i][j] units are
 * allocated to traffic from input i to output j. Each slot:
 *
 *  1. Every output grants to input i with probability X[i][j]/X (possibly
 *     granting to an imaginary input, i.e. nobody, when under-allocated).
 *  2. Every granted input reinterprets the grant as a binomially
 *     distributed number of "virtual grants" — arranged so the input sees
 *     exactly the virtual-grant distribution it would see if each of the
 *     X[i][j] units granted independently with probability 1/X — and then
 *     accepts one virtual grant uniformly at random. Unreserved input
 *     bandwidth behaves as virtual grants from an imaginary output.
 *
 * One round delivers (1 - 1/e) ~ 63% of each allocation; an independent
 * second round (conflicting matches discarded) raises this to
 * (1 - 1/e)(1 + 1/e^2) ~ 72%. Unlike the Slepian–Duguid frame schedule,
 * changing a rate only involves the two ports of the flow, which is what
 * makes the scheme suitable for rapidly changing allocations and fairness.
 */
#ifndef AN2_MATCHING_STATISTICAL_H
#define AN2_MATCHING_STATISTICAL_H

#include <memory>
#include <vector>

#include "an2/base/matrix.h"
#include "an2/base/rng.h"
#include "an2/matching/matcher.h"

namespace an2 {

/** Theoretical delivered fraction of allocation after one round. */
double statisticalOneRoundFraction(int units);

/** Theoretical guaranteed fraction after two rounds (the 72% figure). */
double statisticalTwoRoundFraction(int units);

/** Configuration for a StatisticalMatcher. */
struct StatisticalConfig
{
    /** Number of discrete bandwidth units X per link. */
    int units = 1000;

    /** Grant/accept rounds (1 or 2; more adds insignificant throughput). */
    int rounds = 2;

    /** PRNG seed. */
    uint64_t seed = 1;
};

/** The statistical matching scheduler. */
class StatisticalMatcher final : public Matcher
{
  public:
    /**
     * @param allocation n x n matrix of allocated units X[i][j]; every row
     *        and column must sum to at most config.units.
     * @param config Algorithm parameters.
     * @param rng Optional engine override.
     */
    StatisticalMatcher(Matrix<int> allocation,
                       const StatisticalConfig& config = StatisticalConfig{},
                       std::unique_ptr<Rng> rng = nullptr);

    /**
     * Run statistical matching, then drop any matched pair that has no
     * queued cell in `req` (the freed slots are available to a PIM
     * fill-in pass, as §5.2 prescribes).
     */
    Matching match(const RequestMatrix& req) override;

    std::string name() const override;

    /**
     * Run pure allocation-driven matching (as if every allocated pair
     * always had a queued cell). This is the Appendix C experiment.
     */
    Matching matchAllocated();

    /**
     * Change the allocation for one pair — the cheap dynamic-rate update
     * §5 advertises (only the two ports involved are affected).
     * Row/column sums must remain within the unit budget.
     */
    void setAllocation(PortId i, PortId j, int alloc_units);

    /** Current allocation for (i,j). */
    int allocation(PortId i, PortId j) const { return alloc_.at(i, j); }

    /** The unit budget X. */
    int units() const { return config_.units; }

  private:
    /** Recompute cached tables after an allocation change. */
    void rebuildTables();

    /**
     * Run one grant/accept round; out-parameter vectors receive the
     * matched partner per input / per output (kNoPort when unmatched).
     */
    void runRound(std::vector<PortId>& in2out) const;

    /** Sample the virtual-grant count for a granted pair (i,j). */
    int sampleVirtualGrants(PortId i, PortId j) const;

    /** Sample virtual grants from input i's imaginary output. */
    int sampleImaginaryGrants(PortId i) const;

    Matrix<int> alloc_;
    StatisticalConfig config_;
    mutable std::unique_ptr<Rng> rng_;

    /**
     * Conditional CDF of the virtual-grant count given a grant, per pair
     * with a positive allocation: cond_cdf_[i*n+j][m] = Pr{count <= m}.
     */
    std::vector<std::vector<double>> cond_cdf_;

    /** Unconditional binomial CDF for each input's imaginary output. */
    std::vector<std::vector<double>> imag_cdf_;

    /** Per-output cumulative allocation over inputs, for grant choice. */
    std::vector<std::vector<int>> col_cum_;
};

}  // namespace an2

#endif  // AN2_MATCHING_STATISTICAL_H
