#include "an2/network/link.h"

#include "an2/base/error.h"

namespace an2 {

NetLink::NetLink(PicoTime latency_ps) : latency_ps_(latency_ps)
{
    AN2_REQUIRE(latency_ps >= 0, "link latency must be non-negative");
}

void
NetLink::send(const Cell& cell, PicoTime now_ps)
{
    if (!up_) {
        ++cells_lost_;
        return;
    }
    // Transmissions from one upstream port are naturally ordered in time,
    // so both queues stay sorted by arrival.
    PicoTime arrives = now_ps + latency_ps_;
    RingQueue<TimedCell>& q = deferred_ ? pending_ : in_flight_;
    AN2_ASSERT(q.empty() || q.back().arrives_ps <= arrives,
               "link send out of time order");
    q.push_back({cell, arrives});
    ++cells_carried_;
}

void
NetLink::setDeferred(bool deferred)
{
    if (deferred_ && !deferred)
        commit();
    deferred_ = deferred;
}

void
NetLink::commit()
{
    while (!pending_.empty()) {
        const TimedCell& tc = pending_.front();
        AN2_ASSERT(in_flight_.empty() ||
                       in_flight_.back().arrives_ps <= tc.arrives_ps,
                   "link commit out of time order");
        in_flight_.push_back(tc);
        pending_.pop_front();
    }
}

void
NetLink::setUp(bool up)
{
    if (up_ == up)
        return;
    up_ = up;
    if (!up_) {
        cells_lost_ +=
            static_cast<int64_t>(in_flight_.size() + pending_.size());
        in_flight_.clear();
        pending_.clear();
    }
}

void
NetLink::deliverInto(PicoTime now_ps, std::vector<Cell>& out)
{
    while (!in_flight_.empty() && in_flight_.front().arrives_ps <= now_ps) {
        out.push_back(in_flight_.front().cell);
        in_flight_.pop_front();
    }
}

std::vector<Cell>
NetLink::deliverUpTo(PicoTime now_ps)
{
    std::vector<Cell> out;
    deliverInto(now_ps, out);
    return out;
}

}  // namespace an2
