#include "an2/network/link.h"

#include "an2/base/error.h"

namespace an2 {

NetLink::NetLink(PicoTime latency_ps) : latency_ps_(latency_ps)
{
    AN2_REQUIRE(latency_ps >= 0, "link latency must be non-negative");
}

void
NetLink::send(const Cell& cell, PicoTime now_ps)
{
    if (!up_) {
        ++cells_lost_;
        return;
    }
    // Transmissions from one upstream port are naturally ordered in time,
    // so the in-flight queue stays sorted by arrival.
    PicoTime arrives = now_ps + latency_ps_;
    AN2_ASSERT(in_flight_.empty() || in_flight_.back().arrives_ps <= arrives,
               "link send out of time order");
    in_flight_.push_back({cell, arrives});
    ++cells_carried_;
}

void
NetLink::setUp(bool up)
{
    if (up_ == up)
        return;
    up_ = up;
    if (!up_) {
        cells_lost_ += static_cast<int64_t>(in_flight_.size());
        in_flight_.clear();
    }
}

std::vector<Cell>
NetLink::deliverUpTo(PicoTime now_ps)
{
    std::vector<Cell> out;
    while (!in_flight_.empty() && in_flight_.front().arrives_ps <= now_ps) {
        out.push_back(in_flight_.front().cell);
        in_flight_.pop_front();
    }
    return out;
}

}  // namespace an2
