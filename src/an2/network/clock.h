/**
 * @file
 * Per-node local clocks with bounded rate error (paper Appendix B).
 *
 * Every switch and controller runs its slot/frame machinery off its own
 * crystal, whose rate is only guaranteed to be within a tolerance of
 * nominal. A node with rate error e executes its k-th slot at wall time
 * phase + k * nominal_slot / (1 + e): fast clocks (e > 0) tick early.
 */
#ifndef AN2_NETWORK_CLOCK_H
#define AN2_NETWORK_CLOCK_H

#include <cmath>

#include "an2/base/error.h"
#include "an2/base/types.h"

namespace an2 {

/** A drifting local slot clock. */
class LocalClock
{
  public:
    /**
     * @param nominal_slot_ps Nominal slot duration (wall picoseconds).
     * @param rate_error Fractional clock-rate error in (-1, 1);
     *        +1e-4 means the clock runs 100 ppm fast.
     * @param phase_ps Wall time of slot 0.
     */
    LocalClock(PicoTime nominal_slot_ps, double rate_error,
               PicoTime phase_ps = 0);

    /** Wall time at which local slot k begins. */
    PicoTime slotStart(int64_t k) const;

    /** Wall time of the next unexecuted slot. */
    PicoTime nextTick() const { return slotStart(next_slot_); }

    /** Index of the next unexecuted slot. */
    int64_t nextSlot() const { return next_slot_; }

    /** Mark the next slot as executed and advance. */
    int64_t
    advance()
    {
        return next_slot_++;
    }

    /** Actual slot period in wall picoseconds. */
    double periodPs() const { return period_ps_; }

  private:
    double period_ps_;
    PicoTime phase_ps_;
    int64_t next_slot_ = 0;
};

}  // namespace an2

#endif  // AN2_NETWORK_CLOCK_H
