#include "an2/network/net_switch.h"

#include <algorithm>

#include "an2/base/error.h"
#include "an2/fault/invariants.h"
#include "an2/matching/request_matrix.h"

namespace an2 {

NetSwitch::NetSwitch(NodeId id, LocalClock clock, int n_ports,
                     int frame_slots, std::unique_ptr<Matcher> vbr_matcher,
                     bool fifo_merge)
    : NetNode(id, clock), n_ports_(n_ports), frame_slots_(frame_slots),
      fifo_merge_(fifo_merge), vbr_matcher_(std::move(vbr_matcher)),
      cbr_(n_ports, frame_slots),
      in_links_(static_cast<size_t>(n_ports), nullptr),
      out_links_(static_cast<size_t>(n_ports), nullptr),
      in_busy_(static_cast<size_t>(n_ports), 0),
      out_busy_(static_cast<size_t>(n_ports), 0), req_(n_ports),
      match_(n_ports)
{
    AN2_REQUIRE(n_ports > 0, "switch needs at least one port");
    AN2_REQUIRE(frame_slots > 0, "frame must be non-empty");
    AN2_REQUIRE(vbr_matcher_ != nullptr, "a VBR matcher is required");
    cbr_bufs_.reserve(static_cast<size_t>(n_ports));
    vbr_bufs_.reserve(static_cast<size_t>(n_ports));
    for (int p = 0; p < n_ports; ++p) {
        cbr_bufs_.emplace_back(n_ports);
        vbr_bufs_.emplace_back(n_ports);
    }
    occupancy_.max_cbr_per_input.assign(static_cast<size_t>(n_ports), 0);
    occupancy_.max_vbr_per_input.assign(static_cast<size_t>(n_ports), 0);
}

void
NetSwitch::checkPort(PortId p) const
{
    AN2_REQUIRE(p >= 0 && p < n_ports_, "port " << p << " out of range");
}

void
NetSwitch::setInLink(PortId p, NetLink* link)
{
    checkPort(p);
    AN2_REQUIRE(in_links_[static_cast<size_t>(p)] == nullptr,
                "input port " << p << " already connected");
    in_links_[static_cast<size_t>(p)] = link;
}

void
NetSwitch::setOutLink(PortId p, NetLink* link)
{
    checkPort(p);
    AN2_REQUIRE(out_links_[static_cast<size_t>(p)] == nullptr,
                "output port " << p << " already connected");
    out_links_[static_cast<size_t>(p)] = link;
}

bool
NetSwitch::addRoute(FlowId flow, PortId in_port, PortId out_port,
                    TrafficClass cls, int cells_per_frame)
{
    checkPort(in_port);
    checkPort(out_port);
    AN2_REQUIRE(!routes_.contains(flow),
                "flow " << flow << " already routed through this switch");
    if (cls == TrafficClass::CBR) {
        if (!cbr_.addReservation(in_port, out_port, cells_per_frame))
            return false;
    }
    routes_[flow] = {out_port, cls,
                     cls == TrafficClass::CBR ? cells_per_frame : 0, in_port,
                     false};
    return true;
}

void
NetSwitch::revokeCbrRoute(FlowId flow)
{
    Route* route = routes_.get(flow);
    AN2_REQUIRE(route != nullptr && route->cls == TrafficClass::CBR,
                "flow " << flow
                        << " has no CBR route through this switch");
    if (route->revoked)
        return;
    cbr_.removeReservation(route->in_port, route->out_port,
                           route->cells_per_frame);
    route->revoked = true;
    fault::InvariantChecker::checkScheduleRealizes(
        cbr_.schedule(), cbr_.reservations(), "NetSwitch revoke");
}

bool
NetSwitch::restoreCbrRoute(FlowId flow, PortId in_port, PortId out_port,
                           int cells_per_frame)
{
    checkPort(in_port);
    checkPort(out_port);
    AN2_REQUIRE(cells_per_frame > 0, "restored reservation must be positive");
    Route* route = routes_.get(flow);
    if (route == nullptr) {
        // This switch is new to the flow: a plain install.
        return addRoute(flow, in_port, out_port, TrafficClass::CBR,
                        cells_per_frame);
    }
    AN2_REQUIRE(route->cls == TrafficClass::CBR && route->revoked,
                "flow " << flow << " has a live route; revoke before "
                        << "restoring");
    if (!cbr_.addReservation(in_port, out_port, cells_per_frame))
        return false;
    // Cells queued before the fault: still valid when the flow enters by
    // the same port (retag to the new output, FIFO order kept); purged
    // when the ingress moved — their (input, output) schedule slots no
    // longer exist.
    for (PortId p = 0; p < n_ports_; ++p) {
        if (p == in_port)
            cbr_bufs_[static_cast<size_t>(p)].rebindFlow(flow, out_port);
        else
            purgeCbrQueueAt(p, flow);
    }
    route->in_port = in_port;
    route->out_port = out_port;
    route->cells_per_frame = cells_per_frame;
    route->revoked = false;
    fault::InvariantChecker::checkScheduleRealizes(
        cbr_.schedule(), cbr_.reservations(), "NetSwitch restore");
    return true;
}

int
NetSwitch::purgeCbrQueueAt(PortId p, FlowId flow)
{
    int n = cbr_bufs_[static_cast<size_t>(p)].purgeFlow(flow);
    if (n > 0) {
        restore_purged_ += n;
        int& cur = flow_occupancy_[flow];
        cur -= n;
        AN2_ASSERT(cur >= 0, "negative flow occupancy after purge");
    }
    return n;
}

int
NetSwitch::purgeCbrFlow(FlowId flow)
{
    int purged = 0;
    for (PortId p = 0; p < n_ports_; ++p)
        purged += purgeCbrQueueAt(p, flow);
    return purged;
}

bool
NetSwitch::cbrRouteRevoked(FlowId flow) const
{
    const Route* route = routes_.get(flow);
    return route != nullptr && route->revoked;
}

void
NetSwitch::updateRoute(FlowId flow, PortId out_port)
{
    checkPort(out_port);
    Route* route = routes_.get(flow);
    AN2_REQUIRE(route != nullptr,
                "flow " << flow << " not routed through this switch");
    AN2_REQUIRE(route->cls == TrafficClass::VBR,
                "CBR flow " << flow << " is pinned to its reservation");
    AN2_REQUIRE(!fifo_merge_,
                "cannot reroute flows inside FIFO-merged buffers");
    if (route->out_port == out_port)
        return;
    route->out_port = out_port;
    // Cells already buffered follow the new route too; the flow lives in
    // at most one input buffer, the rest are hash-miss no-ops.
    for (auto& buf : vbr_bufs_)
        buf.rebindFlow(flow, out_port);
}

PortId
NetSwitch::routeOutPort(FlowId flow) const
{
    const Route* route = routes_.get(flow);
    AN2_REQUIRE(route != nullptr,
                "flow " << flow << " not routed through this switch");
    return route->out_port;
}

void
NetSwitch::setVbrBufferLimit(int cells)
{
    AN2_REQUIRE(cells >= 0, "buffer limit must be non-negative");
    vbr_buffer_limit_ = cells;
}

void
NetSwitch::noteOccupancy(const Cell& cell, int delta)
{
    if (cell.cls != TrafficClass::CBR)
        return;
    int& cur = flow_occupancy_[cell.flow];
    cur += delta;
    AN2_ASSERT(cur >= 0, "negative flow occupancy");
    int& peak = occupancy_.max_per_cbr_flow[cell.flow];
    peak = std::max(peak, cur);
}

void
NetSwitch::acceptArrivals(PicoTime now)
{
    for (PortId p = 0; p < n_ports_; ++p) {
        NetLink* link = in_links_[static_cast<size_t>(p)];
        if (link == nullptr)
            continue;
        arrivals_.clear();
        link->deliverInto(now, arrivals_);
        for (Cell c : arrivals_) {
            const Route* route = routes_.get(c.flow);
            AN2_REQUIRE(route != nullptr,
                        "cell of unrouted flow " << c.flow << " at switch "
                                                 << id_);
            if (route->revoked) {
                // Mid-restoration: the reservation is gone, so the cell
                // has no schedule slot to ride. It is shed here rather
                // than parked — the restorer re-sources the flow once a
                // new path is admitted.
                ++restore_dropped_;
                continue;
            }
            c.input = p;
            c.output = route->out_port;
            if (route->cls == TrafficClass::CBR) {
                cbr_bufs_[static_cast<size_t>(p)].enqueue(c);
                noteOccupancy(c, +1);
                auto& peak =
                    occupancy_.max_cbr_per_input[static_cast<size_t>(p)];
                peak = std::max(
                    peak, cbr_bufs_[static_cast<size_t>(p)].totalCells());
            } else {
                auto& vb = vbr_bufs_[static_cast<size_t>(p)];
                if (vbr_buffer_limit_ > 0 &&
                    vb.totalCells() >= vbr_buffer_limit_) {
                    ++vbr_dropped_;  // flow-controlled datagram buffer full
                    continue;
                }
                if (fifo_merge_) {
                    // One FIFO per (input, output) pair, all flows mixed.
                    auto key = static_cast<FlowId>(c.output);
                    vbr_bufs_[static_cast<size_t>(p)].enqueueAs(key, c);
                } else {
                    vbr_bufs_[static_cast<size_t>(p)].enqueue(c);
                }
                auto& peak =
                    occupancy_.max_vbr_per_input[static_cast<size_t>(p)];
                peak = std::max(
                    peak, vbr_bufs_[static_cast<size_t>(p)].totalCells());
            }
        }
    }
}

void
NetSwitch::tick()
{
    PicoTime now = clock_.nextTick();
    int64_t slot = clock_.advance();
    acceptArrivals(now);

    auto fs = static_cast<int>(slot % frame_slots_);
    // Frame boundary: close out the Appendix B active-frame runs.
    if (fs == 0) {
        for (auto& [flow, active] : active_this_frame_) {
            int& run = active_run_[flow];
            run = active ? run + 1 : 0;
            int& peak = occupancy_.max_active_frames[flow];
            peak = std::max(peak, run);
            active = false;
        }
    }
    // T(c, s_n): end of this switch's current frame.
    PicoTime frame_end =
        clock_.slotStart((slot / frame_slots_ + 1) * frame_slots_);

    // Phase 1: CBR cells ride their scheduled pairings.
    std::fill(in_busy_.begin(), in_busy_.end(), uint8_t{0});
    std::fill(out_busy_.begin(), out_busy_.end(), uint8_t{0});
    const FrameSchedule& sched = cbr_.schedule();
    for (PortId i = 0; i < n_ports_; ++i) {
        PortId j = sched.outputAt(fs, i);
        if (j == kNoPort)
            continue;
        auto& buf = cbr_bufs_[static_cast<size_t>(i)];
        if (!buf.hasCellFor(j))
            continue;
        Cell c = buf.dequeueFor(j);
        noteOccupancy(c, -1);
        // Appendix B active-frame accounting for the flow's class 0.
        const Route* route = routes_.get(c.flow);
        if (route != nullptr && route->cells_per_frame > 0 &&
            c.seq % route->cells_per_frame == 0)
            active_this_frame_[c.flow] = true;
        c.frame_end_ps = frame_end;
        ++c.hops;
        AN2_ASSERT(out_links_[static_cast<size_t>(j)] != nullptr,
                   "scheduled output " << j << " has no link");
        out_links_[static_cast<size_t>(j)]->send(c, now);
        in_busy_[static_cast<size_t>(i)] = 1;
        out_busy_[static_cast<size_t>(j)] = 1;
        ++cbr_forwarded_;
    }

    // Phase 2: VBR matching over the remaining ports.
    req_.clear();
    for (PortId i = 0; i < n_ports_; ++i) {
        if (in_busy_[static_cast<size_t>(i)])
            continue;
        const auto& buf = vbr_bufs_[static_cast<size_t>(i)];
        if (buf.totalCells() == 0)
            continue;
        for (PortId j = 0; j < n_ports_; ++j) {
            if (out_busy_[static_cast<size_t>(j)] ||
                out_links_[static_cast<size_t>(j)] == nullptr)
                continue;
            int count = buf.cellCountFor(j);
            if (count > 0)
                req_.set(i, j, count);
        }
    }
    vbr_matcher_->matchInto(req_, match_);
    AN2_ASSERT(match_.isLegalFor(req_), "matcher returned illegal match");
    for (PortId i = 0; i < n_ports_; ++i) {
        PortId j = match_.outputOf(i);
        if (j == kNoPort)
            continue;
        Cell c = vbr_bufs_[static_cast<size_t>(i)].dequeueFor(j);
        c.frame_end_ps = frame_end;
        ++c.hops;
        out_links_[static_cast<size_t>(j)]->send(c, now);
        ++vbr_forwarded_;
    }
}

}  // namespace an2
