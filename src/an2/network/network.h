/**
 * @file
 * The arbitrary-topology network simulator: switches and host controllers
 * on independently drifting clocks, joined by point-to-point links, with
 * flow-based routing and end-to-end CBR admission (paper §2, §4, App. B).
 */
#ifndef AN2_NETWORK_NETWORK_H
#define AN2_NETWORK_NETWORK_H

#include <memory>
#include <unordered_map>
#include <vector>

#include "an2/base/types.h"
#include "an2/cbr/admission.h"
#include "an2/matching/matcher.h"
#include "an2/network/controller.h"
#include "an2/network/net_switch.h"

namespace an2 {

/** Network-wide parameters. */
struct NetworkConfig
{
    /** Nominal slot duration (wall picoseconds). */
    PicoTime slot_ps = kSlotPicosAt1Gbps;

    /** Switch frame length in slots. */
    int switch_frame_slots = 100;

    /**
     * Padding slots appended to every controller frame; must satisfy
     * F_c-min > F_s-max for the worst clock pairing (see
     * minControllerPadding() in an2/cbr/timing.h).
     */
    int controller_padding = 2;
};

/** A network of switches and controllers under simulation. */
class Network
{
  public:
    explicit Network(const NetworkConfig& config);

    /**
     * Add a switch.
     * @param n_ports Port count.
     * @param clock_rate_error Fractional clock error (e.g. +1e-4 = fast).
     * @param vbr_matcher Datagram scheduler for this switch (owned).
     * @param phase_ps Wall time of the switch's slot 0.
     * @param fifo_merge Merge all VBR flows of an (input, output) pair
     *        into one FIFO (Figure 9 discipline) instead of per-flow
     *        queues with round-robin service.
     */
    NodeId addSwitch(int n_ports, double clock_rate_error,
                     std::unique_ptr<Matcher> vbr_matcher,
                     PicoTime phase_ps = 0, bool fifo_merge = false);

    /**
     * Add a host controller (single full-duplex port).
     * @param clock_rate_error Fractional clock error.
     * @param seed PRNG seed for VBR injection.
     * @param phase_ps Wall time of the controller's slot 0.
     */
    NodeId addController(double clock_rate_error, uint64_t seed,
                         PicoTime phase_ps = 0);

    /**
     * Create a directed link from `from`'s output port to `to`'s input
     * port. Controller ports must be 0.
     * @return the link index (dense, in connect order; also the
     *         admission-control LinkId and the FaultPlan link target).
     */
    int connect(NodeId from, PortId from_port, NodeId to, PortId to_port,
                PicoTime latency_ps);

    /**
     * Reserve and route a CBR flow of k cells/frame along `path`
     * (controller, switches..., controller). Consecutive nodes must be
     * joined by exactly one link in path direction.
     * @return the flow id, or kNoFlow if some link lacks capacity.
     */
    FlowId addCbrFlow(const std::vector<NodeId>& path, int cells_per_frame);

    /** Route a VBR flow injecting at `rate` cells/slot along `path`. */
    FlowId addVbrFlow(const std::vector<NodeId>& path, double rate);

    /**
     * Take the unique link from `from` to `to` down or up. Downing a
     * link loses its in-flight cells (see NetLink::setUp); fatal if no
     * such link exists.
     */
    void setLinkUp(NodeId from, NodeId to, bool up);

    /** The unique link from `from` to `to` (state inspection). */
    const NetLink& linkBetween(NodeId from, NodeId to) const;

    /** Run the event loop until wall time `until_ps`. */
    void run(PicoTime until_ps);

    /** Run approximately `frames` switch frames of nominal wall time. */
    void runFrames(int64_t frames);

    /** Typed node access. */
    Controller& controller(NodeId id);
    const Controller& controller(NodeId id) const;
    NetSwitch& netSwitch(NodeId id);
    const NetSwitch& netSwitch(NodeId id) const;

    // ---- engine access (the sharded engine and the topo layer) --------

    /** Number of nodes. */
    int numNodes() const { return static_cast<int>(nodes_.size()); }

    /** Number of directed links. */
    int numLinks() const { return static_cast<int>(edges_.size()); }

    /** True when node `id` is a switch (else a controller). */
    bool isSwitchNode(NodeId id) const
    {
        return is_switch_[static_cast<size_t>(id)];
    }

    /** Untyped node access (ticking by an external engine). */
    NetNode& nodeAt(NodeId id) { return node(id); }

    /** Link access by dense link index. */
    NetLink& linkAt(int link);
    const NetLink& linkAt(int link) const;

    /** Endpoints and ports of a link, by dense link index. */
    struct LinkEnds
    {
        NodeId from;
        PortId from_port;
        NodeId to;
        PortId to_port;
    };
    LinkEnds linkEnds(int link) const;

    /**
     * Index of the unique link from `from` to `to`, or -1 when absent;
     * fatal when multiple parallel links make the pair ambiguous. O(1)
     * via the (from, to) hash index.
     */
    int linkIndexBetween(NodeId from, NodeId to) const;

    /** Take a link up or down by dense index (fault-plan targets). */
    void setLinkUpByIndex(int link, bool up);

    /** The id the next successfully admitted flow will get (the topo
        layer hashes it for ECMP before creating the flow). */
    FlowId nextFlowId() const { return next_flow_; }

    /** The CBR admission database. Mutable access exists for the path
        restorer, which releases and re-admits reservations as topology
        dies and revives; everything else should treat it as read-only. */
    AdmissionController& admission() { return admission_; }
    const AdmissionController& admission() const { return admission_; }

    const NetworkConfig& config() const { return config_; }

    /** Controller frame length (switch frame + padding). */
    int controllerFrameSlots() const
    {
        return config_.switch_frame_slots + config_.controller_padding;
    }

  private:
    struct Edge
    {
        NodeId from;
        PortId from_port;
        NodeId to;
        PortId to_port;
        std::unique_ptr<NetLink> link;
    };

    /** Index of the unique edge from `from` to `to`; fatal if absent. */
    int findEdge(NodeId from, NodeId to) const;

    NetNode& node(NodeId id);

    /** Hash key of a directed (from, to) node pair. */
    static uint64_t edgeKey(NodeId from, NodeId to)
    {
        return (static_cast<uint64_t>(static_cast<uint32_t>(from)) << 32) |
               static_cast<uint32_t>(to);
    }

    /** edge_index_ value marking parallel links between the same pair. */
    static constexpr int kAmbiguousEdge = -2;

    NetworkConfig config_;
    std::vector<std::unique_ptr<NetNode>> nodes_;
    std::vector<bool> is_switch_;
    std::vector<Edge> edges_;
    /** (from, to) -> edge index; fault sweeps over large topologies hit
        this on every event, so lookups are O(1), not a scan. */
    std::unordered_map<uint64_t, int> edge_index_;
    AdmissionController admission_;
    FlowId next_flow_ = 0;
};

}  // namespace an2

#endif  // AN2_NETWORK_NETWORK_H
