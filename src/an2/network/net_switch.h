/**
 * @file
 * A switch node in the drifting-clock network: VOQ input buffers, a
 * Slepian-Duguid frame schedule for CBR traffic, and a pluggable matcher
 * (PIM or statistical matching) for VBR traffic — the full AN2 switch of
 * §3-§5 embedded in a multi-hop topology.
 */
#ifndef AN2_NETWORK_NET_SWITCH_H
#define AN2_NETWORK_NET_SWITCH_H

#include <map>
#include <memory>
#include <vector>

#include "an2/base/flat_map.h"
#include "an2/cbr/slepian_duguid.h"
#include "an2/matching/matcher.h"
#include "an2/network/node.h"
#include "an2/queueing/voq.h"

namespace an2 {

/** Buffer-occupancy statistics for one switch. */
struct SwitchOccupancy
{
    /** Peak CBR cells queued per input port. */
    std::vector<int> max_cbr_per_input;

    /** Peak VBR cells queued per input port. */
    std::vector<int> max_vbr_per_input;

    /** Peak queued cells per CBR flow (Appendix B buffer bound). */
    std::map<FlowId, int> max_per_cbr_flow;

    /**
     * Longest run of consecutive *active* frames per CBR flow, measured
     * for the flow's class-0 cells (cells with seq % k == 0). Appendix B
     * analyzes a k cells/frame flow as k independent one-cell-per-frame
     * classes and bounds each class's run length (the first displayed
     * formula of §B.2) — the quantity that caps buffer build-up under
     * clock drift.
     */
    std::map<FlowId, int> max_active_frames;
};

/** Switch node with per-flow routing and CBR + VBR scheduling. */
class NetSwitch final : public NetNode
{
  public:
    /**
     * @param id Node id.
     * @param clock Local clock.
     * @param n_ports Port count.
     * @param frame_slots Switch frame length (CBR schedule period).
     * @param vbr_matcher Scheduler for datagram traffic (owned).
     * @param fifo_merge When true, VBR cells arriving on one input for
     *        one output share a single FIFO queue regardless of flow (the
     *        Figure 9 merge discipline) instead of AN2's per-flow queues
     *        with round-robin service.
     */
    NetSwitch(NodeId id, LocalClock clock, int n_ports, int frame_slots,
              std::unique_ptr<Matcher> vbr_matcher,
              bool fifo_merge = false);

    int ports() const { return n_ports_; }

    /** Attach the incoming link feeding port p. */
    void setInLink(PortId p, NetLink* link);

    /** Attach the outgoing link driven by port p. */
    void setOutLink(PortId p, NetLink* link);

    /**
     * Install the route for a flow crossing this switch and, for CBR
     * flows, reserve cells_per_frame in the frame schedule.
     * @return false if the CBR reservation cannot be accommodated.
     */
    bool addRoute(FlowId flow, PortId in_port, PortId out_port,
                  TrafficClass cls, int cells_per_frame);

    /**
     * Repoint an installed VBR route at a different output port (ECMP
     * failover after a link fault). Cells already buffered keep their
     * original output — they drain, or are lost if that link is down —
     * while cells arriving after the update take the new port. Fatal for
     * unknown flows and for CBR routes (reservations are pinned).
     */
    void updateRoute(FlowId flow, PortId out_port);

    /** True when `flow` is routed through this switch. */
    bool hasRoute(FlowId flow) const { return routes_.contains(flow); }

    /** Output port a flow is currently routed to; fatal if unrouted. */
    PortId routeOutPort(FlowId flow) const;

    void tick() override;

    /**
     * Cap the VBR buffer at each input to `cells` (0 = unlimited, the
     * default). Arriving datagram cells beyond the cap are dropped and
     * counted — the paper's "VBR cells use a different set of buffers,
     * which are subject to flow control" (§4). CBR buffers are statically
     * allocated by admission control and never drop.
     */
    void setVbrBufferLimit(int cells);

    /** Datagram cells dropped by the VBR buffer cap. */
    int64_t vbrDropped() const { return vbr_dropped_; }

    /** Occupancy statistics. */
    const SwitchOccupancy& occupancy() const { return occupancy_; }

    /** The CBR scheduler (reservations and schedule inspection). */
    const SlepianDuguidScheduler& cbrScheduler() const { return cbr_; }

    /** Cells forwarded, per class. */
    int64_t cbrForwarded() const { return cbr_forwarded_; }
    int64_t vbrForwarded() const { return vbr_forwarded_; }

    // ---- CBR path restoration (driven by fault::PathRestorer) ---------

    /**
     * Revoke a CBR flow's reservation here without removing the route
     * entry: its frame slots return to the Slepian-Duguid schedule, and
     * cells of the flow that still arrive (already in flight, or queued
     * upstream) are dropped at ingress and counted under
     * restorationDropped(). Idempotent; fatal for VBR/unknown flows.
     */
    void revokeCbrRoute(FlowId flow);

    /**
     * (Re-)install a CBR route during restoration: reserve
     * `cells_per_frame` on (in_port, out_port) and re-activate the route.
     * Cells still queued from before the fault are rebound to the new
     * output when the input is unchanged, and purged (counted under
     * restorationPurged()) when the flow now enters by a different port —
     * their old schedule slots no longer exist. Works both for flows with
     * a revoked route here and for switches new to the flow.
     * @return false (no state change) if the reservation does not fit.
     */
    bool restoreCbrRoute(FlowId flow, PortId in_port, PortId out_port,
                         int cells_per_frame);

    /**
     * Discard every queued cell of a CBR flow here (the switch left the
     * flow's path for good). @return cells purged (also added to
     * restorationPurged()).
     */
    int purgeCbrFlow(FlowId flow);

    /** True when the flow's route here is revoked (mid-restoration). */
    bool cbrRouteRevoked(FlowId flow) const;

    /** Cells dropped at ingress because their route was revoked. */
    int64_t restorationDropped() const { return restore_dropped_; }

    /** Queued cells purged by restoration re-pathing. */
    int64_t restorationPurged() const { return restore_purged_; }

  private:
    struct Route
    {
        PortId out_port = kNoPort;
        TrafficClass cls = TrafficClass::VBR;
        int cells_per_frame = 0;   ///< CBR reservation (0 for VBR)
        PortId in_port = kNoPort;  ///< ingress port (CBR restoration)
        bool revoked = false;      ///< reservation revoked, not yet rebuilt
    };

    void checkPort(PortId p) const;

    /** Pull arrived cells off the in-links into the input buffers. */
    void acceptArrivals(PicoTime now);

    /** Purge a CBR flow's queue at one input, fixing the occupancy
        ledger and the restoration loss counter. */
    int purgeCbrQueueAt(PortId p, FlowId flow);

    /** Track per-flow and per-input occupancy highs. */
    void noteOccupancy(const Cell& cell, int delta);

    int n_ports_;
    int frame_slots_;
    bool fifo_merge_;
    std::unique_ptr<Matcher> vbr_matcher_;
    SlepianDuguidScheduler cbr_;
    std::vector<NetLink*> in_links_;
    std::vector<NetLink*> out_links_;
    std::vector<InputBuffer> cbr_bufs_;
    std::vector<InputBuffer> vbr_bufs_;
    /** Flow -> route, looked up per arriving cell (O(1), no tree walk). */
    FlatMap<Route> routes_;
    std::map<FlowId, int> flow_occupancy_;
    /** Per-flow activity in the current frame / current run length. */
    std::map<FlowId, bool> active_this_frame_;
    std::map<FlowId, int> active_run_;
    SwitchOccupancy occupancy_;
    int vbr_buffer_limit_ = 0;
    int64_t vbr_dropped_ = 0;
    int64_t cbr_forwarded_ = 0;
    int64_t vbr_forwarded_ = 0;
    int64_t restore_dropped_ = 0;
    int64_t restore_purged_ = 0;
    // Per-tick scratch, persistent so the slot loop never allocates.
    std::vector<Cell> arrivals_;
    std::vector<uint8_t> in_busy_;
    std::vector<uint8_t> out_busy_;
    RequestMatrix req_;
    Matching match_;
};

}  // namespace an2

#endif  // AN2_NETWORK_NET_SWITCH_H
