#include "an2/network/network.h"

#include <limits>

#include "an2/base/error.h"

namespace an2 {

Network::Network(const NetworkConfig& config)
    : config_(config), admission_(config.switch_frame_slots)
{
    AN2_REQUIRE(config.slot_ps > 0, "slot duration must be positive");
    AN2_REQUIRE(config.switch_frame_slots > 0, "frame must be non-empty");
    AN2_REQUIRE(config.controller_padding >= 0,
                "padding must be non-negative");
}

NodeId
Network::addSwitch(int n_ports, double clock_rate_error,
                   std::unique_ptr<Matcher> vbr_matcher, PicoTime phase_ps,
                   bool fifo_merge)
{
    auto id = static_cast<NodeId>(nodes_.size());
    nodes_.push_back(std::make_unique<NetSwitch>(
        id, LocalClock(config_.slot_ps, clock_rate_error, phase_ps),
        n_ports, config_.switch_frame_slots, std::move(vbr_matcher),
        fifo_merge));
    is_switch_.push_back(true);
    return id;
}

NodeId
Network::addController(double clock_rate_error, uint64_t seed,
                       PicoTime phase_ps)
{
    auto id = static_cast<NodeId>(nodes_.size());
    nodes_.push_back(std::make_unique<Controller>(
        id, LocalClock(config_.slot_ps, clock_rate_error, phase_ps),
        controllerFrameSlots(), config_.switch_frame_slots, seed));
    is_switch_.push_back(false);
    return id;
}

NetNode&
Network::node(NodeId id)
{
    AN2_REQUIRE(id >= 0 && id < static_cast<NodeId>(nodes_.size()),
                "unknown node " << id);
    return *nodes_[static_cast<size_t>(id)];
}

Controller&
Network::controller(NodeId id)
{
    AN2_REQUIRE(id >= 0 && id < static_cast<NodeId>(nodes_.size()) &&
                    !is_switch_[static_cast<size_t>(id)],
                "node " << id << " is not a controller");
    return static_cast<Controller&>(*nodes_[static_cast<size_t>(id)]);
}

const Controller&
Network::controller(NodeId id) const
{
    return const_cast<Network*>(this)->controller(id);
}

NetSwitch&
Network::netSwitch(NodeId id)
{
    AN2_REQUIRE(id >= 0 && id < static_cast<NodeId>(nodes_.size()) &&
                    is_switch_[static_cast<size_t>(id)],
                "node " << id << " is not a switch");
    return static_cast<NetSwitch&>(*nodes_[static_cast<size_t>(id)]);
}

const NetSwitch&
Network::netSwitch(NodeId id) const
{
    return const_cast<Network*>(this)->netSwitch(id);
}

int
Network::connect(NodeId from, PortId from_port, NodeId to, PortId to_port,
                 PicoTime latency_ps)
{
    node(from);  // bounds checks
    node(to);
    auto link = std::make_unique<NetLink>(latency_ps);
    NetLink* raw = link.get();
    if (is_switch_[static_cast<size_t>(from)]) {
        netSwitch(from).setOutLink(from_port, raw);
    } else {
        AN2_REQUIRE(from_port == 0, "controllers have a single port 0");
        controller(from).setOutLink(raw);
    }
    if (is_switch_[static_cast<size_t>(to)]) {
        netSwitch(to).setInLink(to_port, raw);
    } else {
        AN2_REQUIRE(to_port == 0, "controllers have a single port 0");
        controller(to).setInLink(raw);
    }
    int index = static_cast<int>(edges_.size());
    edges_.push_back({from, from_port, to, to_port, std::move(link)});
    auto [it, inserted] = edge_index_.try_emplace(edgeKey(from, to), index);
    if (!inserted)
        it->second = kAmbiguousEdge;  // parallel links; lookups are fatal
    LinkId lid = admission_.addLink();
    AN2_ASSERT(lid == static_cast<LinkId>(index),
               "edge/admission link id mismatch");
    return index;
}

int
Network::linkIndexBetween(NodeId from, NodeId to) const
{
    auto it = edge_index_.find(edgeKey(from, to));
    if (it == edge_index_.end())
        return -1;
    AN2_REQUIRE(it->second != kAmbiguousEdge,
                "multiple links from " << from << " to " << to
                                       << "; path is ambiguous");
    return it->second;
}

int
Network::findEdge(NodeId from, NodeId to) const
{
    int found = linkIndexBetween(from, to);
    AN2_REQUIRE(found >= 0, "no link from " << from << " to " << to);
    return found;
}

NetLink&
Network::linkAt(int link)
{
    AN2_REQUIRE(link >= 0 && link < numLinks(),
                "unknown link index " << link);
    return *edges_[static_cast<size_t>(link)].link;
}

const NetLink&
Network::linkAt(int link) const
{
    return const_cast<Network*>(this)->linkAt(link);
}

Network::LinkEnds
Network::linkEnds(int link) const
{
    AN2_REQUIRE(link >= 0 && link < numLinks(),
                "unknown link index " << link);
    const Edge& e = edges_[static_cast<size_t>(link)];
    return {e.from, e.from_port, e.to, e.to_port};
}

void
Network::setLinkUpByIndex(int link, bool up)
{
    linkAt(link).setUp(up);
}

void
Network::setLinkUp(NodeId from, NodeId to, bool up)
{
    edges_[static_cast<size_t>(findEdge(from, to))].link->setUp(up);
}

const NetLink&
Network::linkBetween(NodeId from, NodeId to) const
{
    return *edges_[static_cast<size_t>(findEdge(from, to))].link;
}

FlowId
Network::addCbrFlow(const std::vector<NodeId>& path, int cells_per_frame)
{
    AN2_REQUIRE(path.size() >= 2, "path needs a source and destination");
    AN2_REQUIRE(!is_switch_[static_cast<size_t>(path.front())] &&
                    !is_switch_[static_cast<size_t>(path.back())],
                "path must start and end at controllers");

    std::vector<LinkId> links;
    for (size_t k = 0; k + 1 < path.size(); ++k)
        links.push_back(findEdge(path[k], path[k + 1]));
    if (!admission_.admit(links, cells_per_frame))
        return kNoFlow;

    FlowId flow = next_flow_++;
    for (size_t k = 1; k + 1 < path.size(); ++k) {
        const Edge& in_edge = edges_[static_cast<size_t>(links[k - 1])];
        const Edge& out_edge = edges_[static_cast<size_t>(links[k])];
        bool ok = netSwitch(path[k]).addRoute(flow, in_edge.to_port,
                                              out_edge.from_port,
                                              TrafficClass::CBR,
                                              cells_per_frame);
        // Link admission passed, so per the Slepian-Duguid theorem the
        // switch schedules can always accommodate the reservation.
        AN2_ASSERT(ok, "switch reservation failed after link admission");
    }
    controller(path.front()).addCbrSource(flow, cells_per_frame);
    return flow;
}

FlowId
Network::addVbrFlow(const std::vector<NodeId>& path, double rate)
{
    AN2_REQUIRE(path.size() >= 2, "path needs a source and destination");
    AN2_REQUIRE(!is_switch_[static_cast<size_t>(path.front())] &&
                    !is_switch_[static_cast<size_t>(path.back())],
                "path must start and end at controllers");

    FlowId flow = next_flow_++;
    for (size_t k = 1; k + 1 < path.size(); ++k) {
        int in_edge_idx = findEdge(path[k - 1], path[k]);
        int out_edge_idx = findEdge(path[k], path[k + 1]);
        const Edge& in_edge = edges_[static_cast<size_t>(in_edge_idx)];
        const Edge& out_edge = edges_[static_cast<size_t>(out_edge_idx)];
        bool ok = netSwitch(path[k]).addRoute(flow, in_edge.to_port,
                                              out_edge.from_port,
                                              TrafficClass::VBR, 0);
        AN2_ASSERT(ok, "VBR route installation failed");
    }
    controller(path.front()).addVbrSource(flow, rate);
    return flow;
}

void
Network::run(PicoTime until_ps)
{
    AN2_REQUIRE(!nodes_.empty(), "network has no nodes");
    while (true) {
        PicoTime best = std::numeric_limits<PicoTime>::max();
        NetNode* next = nullptr;
        for (auto& n : nodes_) {
            PicoTime t = n->nextTick();
            if (t < best) {
                best = t;
                next = n.get();
            }
        }
        if (best > until_ps)
            break;
        next->tick();
    }
}

void
Network::runFrames(int64_t frames)
{
    AN2_REQUIRE(frames > 0, "must run at least one frame");
    run(frames * config_.switch_frame_slots * config_.slot_ps);
}

}  // namespace an2
