/**
 * @file
 * Unidirectional point-to-point links with propagation latency. A cell
 * placed on a link at wall time t becomes eligible for forwarding at the
 * downstream node at t + latency (the paper's l includes per-cell switch
 * overhead; fold that into the latency here).
 */
#ifndef AN2_NETWORK_LINK_H
#define AN2_NETWORK_LINK_H

#include <deque>
#include <vector>

#include "an2/base/types.h"
#include "an2/cell/cell.h"

namespace an2 {

/** Identifier of a node in a Network. */
using NodeId = int;

/** A cell in flight on a link. */
struct TimedCell
{
    Cell cell;
    PicoTime arrives_ps;
};

/** One directed link between two node ports. */
class NetLink
{
  public:
    /**
     * @param latency_ps Propagation latency plus downstream per-cell
     *        processing overhead (wall picoseconds).
     */
    explicit NetLink(PicoTime latency_ps);

    /** Place a cell on the link at wall time now. A downed link carries
        nothing: the cell is lost and counted in cellsLost(). */
    void send(const Cell& cell, PicoTime now_ps);

    /** Remove and return all cells that have arrived by `now`. */
    std::vector<Cell> deliverUpTo(PicoTime now_ps);

    /**
     * Take the link down or bring it back up. Taking it down loses every
     * cell currently in flight (a fiber cut does not preserve photons);
     * bringing it up resumes carriage from the next send.
     */
    void setUp(bool up);

    bool isUp() const { return up_; }

    /** Cells currently in flight. */
    int inFlight() const { return static_cast<int>(in_flight_.size()); }

    PicoTime latencyPs() const { return latency_ps_; }

    /** Total cells ever carried. */
    int64_t cellsCarried() const { return cells_carried_; }

    /** Cells lost to link outages (in flight at down, or sent while down). */
    int64_t cellsLost() const { return cells_lost_; }

  private:
    PicoTime latency_ps_;
    std::deque<TimedCell> in_flight_;
    bool up_ = true;
    int64_t cells_carried_ = 0;
    int64_t cells_lost_ = 0;
};

}  // namespace an2

#endif  // AN2_NETWORK_LINK_H
