/**
 * @file
 * Unidirectional point-to-point links with propagation latency. A cell
 * placed on a link at wall time t becomes eligible for forwarding at the
 * downstream node at t + latency (the paper's l includes per-cell switch
 * overhead; fold that into the latency here).
 *
 * Concurrency contract (the sharded engine, an2/topo/parallel_net.h):
 * in *deferred* mode, send() appends to a staging queue touched only by
 * the upstream node's shard, while deliverInto()/deliverUpTo() pop from
 * the in-flight queue touched only by the downstream node's shard;
 * commit() — called at a barrier, when no node is ticking — publishes
 * staged cells into the in-flight queue. Immediate mode (the default)
 * keeps the classic serial semantics: send() publishes directly.
 */
#ifndef AN2_NETWORK_LINK_H
#define AN2_NETWORK_LINK_H

#include <vector>

#include "an2/base/ring.h"
#include "an2/base/types.h"
#include "an2/cell/cell.h"

namespace an2 {

/** Identifier of a node in a Network. */
using NodeId = int;

/** A cell in flight on a link. */
struct TimedCell
{
    Cell cell;
    PicoTime arrives_ps;
};

/** One directed link between two node ports. */
class NetLink
{
  public:
    /**
     * @param latency_ps Propagation latency plus downstream per-cell
     *        processing overhead (wall picoseconds).
     */
    explicit NetLink(PicoTime latency_ps);

    /** Place a cell on the link at wall time now. A downed link carries
        nothing: the cell is lost and counted in cellsLost(). */
    void send(const Cell& cell, PicoTime now_ps);

    /**
     * Append every cell that has arrived by `now` to `out` (which is
     * not cleared) and remove it from the link. The steady-state
     * delivery path: no heap allocation once `out` has grown to its
     * working capacity.
     */
    void deliverInto(PicoTime now_ps, std::vector<Cell>& out);

    /** Remove and return all cells that have arrived by `now`
        (convenience wrapper over deliverInto; allocates). */
    std::vector<Cell> deliverUpTo(PicoTime now_ps);

    /**
     * Switch between immediate mode (send publishes straight to the
     * in-flight queue; the default) and deferred mode (send stages, a
     * later commit() publishes). Used by the sharded engine so upstream
     * and downstream shards never touch the same queue within a
     * synchronization window. Pending cells are committed on the switch
     * back to immediate mode.
     */
    void setDeferred(bool deferred);

    /** Publish staged cells into the in-flight queue (deferred mode). */
    void commit();

    /**
     * Take the link down or bring it back up. Taking it down loses every
     * cell currently in flight — staged or published (a fiber cut does
     * not preserve photons); bringing it up resumes carriage from the
     * next send.
     */
    void setUp(bool up);

    bool isUp() const { return up_; }

    /** Cells currently in flight (published; excludes staged cells). */
    int inFlight() const { return static_cast<int>(in_flight_.size()); }

    /** Cells staged in deferred mode, not yet committed. */
    int pendingCount() const { return static_cast<int>(pending_.size()); }

    PicoTime latencyPs() const { return latency_ps_; }

    /** Total cells ever carried. */
    int64_t cellsCarried() const { return cells_carried_; }

    /** Cells lost to link outages (in flight at down, or sent while down). */
    int64_t cellsLost() const { return cells_lost_; }

  private:
    PicoTime latency_ps_;
    RingQueue<TimedCell> in_flight_;
    RingQueue<TimedCell> pending_;
    bool up_ = true;
    bool deferred_ = false;
    int64_t cells_carried_ = 0;
    int64_t cells_lost_ = 0;
};

}  // namespace an2

#endif  // AN2_NETWORK_LINK_H
