/**
 * @file
 * Base class for nodes (switches and host controllers) in the
 * unsynchronized-clock network simulator.
 */
#ifndef AN2_NETWORK_NODE_H
#define AN2_NETWORK_NODE_H

#include "an2/base/types.h"
#include "an2/network/clock.h"
#include "an2/network/link.h"

namespace an2 {

/** A network node driven by its own local clock. */
class NetNode
{
  public:
    /**
     * @param id Node identifier within the Network.
     * @param clock The node's local slot clock (moved in).
     */
    NetNode(NodeId id, LocalClock clock) : id_(id), clock_(clock) {}

    virtual ~NetNode() = default;

    NodeId id() const { return id_; }

    /** Wall time of the node's next slot boundary. */
    PicoTime nextTick() const { return clock_.nextTick(); }

    /** Execute one local slot. */
    virtual void tick() = 0;

  protected:
    NodeId id_;
    LocalClock clock_;
};

}  // namespace an2

#endif  // AN2_NETWORK_NODE_H
