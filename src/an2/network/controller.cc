#include "an2/network/controller.h"

#include "an2/base/error.h"
#include "an2/obs/recorder.h"

namespace an2 {

Controller::Controller(NodeId id, LocalClock clock, int frame_slots,
                       int schedulable_slots, uint64_t seed)
    : NetNode(id, clock), frame_slots_(frame_slots),
      schedulable_slots_(schedulable_slots), rng_(seed)
{
    AN2_REQUIRE(frame_slots > 0, "controller frame must be non-empty");
    AN2_REQUIRE(schedulable_slots > 0 && schedulable_slots <= frame_slots,
                "schedulable slots must fit in the frame");
}

void
Controller::addCbrSource(FlowId flow, int cells_per_frame,
                         int attempted_per_frame)
{
    AN2_REQUIRE(cells_per_frame > 0, "CBR reservation must be positive");
    AN2_REQUIRE(cbr_assigned_ + cells_per_frame <= schedulable_slots_,
                "controller link over-committed: "
                    << cbr_assigned_ + cells_per_frame << " > "
                    << schedulable_slots_);
    if (attempted_per_frame == 0)
        attempted_per_frame = cells_per_frame;
    AN2_REQUIRE(attempted_per_frame >= cells_per_frame,
                "application cannot attempt less than the paced rate");
    cbr_sources_.push_back(
        {flow, cells_per_frame, attempted_per_frame, cells_per_frame,
         cbr_assigned_, 0, 0, 0});
    cbr_assigned_ += cells_per_frame;
}

int64_t
Controller::policedDrops(FlowId flow) const
{
    for (const auto& src : cbr_sources_)
        if (src.flow == flow)
            return src.policed_drops;
    AN2_FATAL("flow " << flow << " does not originate here");
}

void
Controller::setCbrActiveCells(FlowId flow, int cells)
{
    for (auto& src : cbr_sources_) {
        if (src.flow != flow)
            continue;
        AN2_REQUIRE(cells >= 0 && cells <= src.cells_per_frame,
                    "active cells " << cells << " outside [0, "
                                    << src.cells_per_frame << "] for flow "
                                    << flow);
        src.active_cells = cells;
        return;
    }
    AN2_FATAL("flow " << flow << " does not originate here");
}

void
Controller::addVbrSource(FlowId flow, double rate)
{
    AN2_REQUIRE(rate >= 0.0 && rate <= 1.0, "VBR rate must be in [0,1]");
    AN2_REQUIRE(total_vbr_rate_ + rate <= 1.0 + 1e-12,
                "total VBR rate exceeds the link");
    vbr_sources_.push_back({flow, rate, 0, 0});
    total_vbr_rate_ += rate;
}

void
Controller::drainSink(PicoTime now)
{
    if (in_link_ == nullptr)
        return;
    arrivals_.clear();
    in_link_->deliverInto(now, arrivals_);
    obs::Recorder* rec = obs::current();  // hoisted: one load per drain
    for (const Cell& c : arrivals_) {
        FlowDeliveryStats& st = delivered_[c.flow];
        ++st.delivered;
        st.wall_latency_ps.add(static_cast<double>(now - c.inject_ps));
        if (rec != nullptr)
            // Wall latency in nominal slot units, like the single-switch
            // probe; the last hop's output port keys the port histogram.
            rec->latencySample(c.cls, c.output,
                               (now - c.inject_ps) / kSlotPicosAt1Gbps);
        st.adjusted_latency_ps.add(
            static_cast<double>(c.frame_end_ps - c.src_frame_end_ps));
        if (c.seq != st.next_expected_seq)
            ++st.order_violations;
        st.next_expected_seq = c.seq + 1;
    }
}

void
Controller::emit(FlowId flow, TrafficClass cls, int64_t seq, PicoTime now,
                 int64_t slot)
{
    AN2_ASSERT(out_link_ != nullptr, "controller has no outgoing link");
    Cell c;
    c.flow = flow;
    c.cls = cls;
    c.seq = seq;
    c.inject_ps = now;
    c.inject_slot = slot;
    // T(c, s_0): end of the controller frame carrying this cell.
    int64_t frame_index = slot / frame_slots_;
    c.src_frame_end_ps = clock_.slotStart((frame_index + 1) * frame_slots_);
    c.frame_end_ps = c.src_frame_end_ps;
    out_link_->send(c, now);
}

void
Controller::tick()
{
    PicoTime now = clock_.nextTick();
    int64_t slot = clock_.advance();
    drainSink(now);

    if (out_link_ == nullptr)
        return;
    auto fs = static_cast<int>(slot % frame_slots_);

    // CBR pacing: each source owns a contiguous slot range per frame and
    // is always backlogged, so it sends exactly k cells per frame. A
    // misbehaving application (attempted > reserved) generates extra
    // cells each frame; the controller's meter drops the excess at the
    // frame boundary, so the network only ever carries the reservation.
    if (fs == 0) {
        for (auto& src : cbr_sources_) {
            int excess = src.attempted_per_frame - src.cells_per_frame;
            if (excess > 0) {
                src.policed_drops += excess;
                src.next_seq += excess;  // dropped cells consume sequence
            }
        }
    }
    for (auto& src : cbr_sources_) {
        if (fs >= src.first_slot && fs < src.first_slot + src.active_cells) {
            emit(src.flow, TrafficClass::CBR, src.next_seq++, now, slot);
            ++src.injected;
            return;  // one cell per slot on the link
        }
    }

    // Padding slots stay empty; CBR-unassigned schedulable slots carry VBR.
    if (fs >= schedulable_slots_)
        return;
    double u = rng_.nextDouble();
    for (auto& src : vbr_sources_) {
        if (u < src.rate) {
            emit(src.flow, TrafficClass::VBR, src.next_seq++, now, slot);
            ++src.injected;
            return;
        }
        u -= src.rate;
    }
}

const FlowDeliveryStats&
Controller::deliveryStats(FlowId flow) const
{
    const FlowDeliveryStats* st = delivered_.get(flow);
    AN2_REQUIRE(st != nullptr,
                "no cells of flow " << flow << " delivered here");
    return *st;
}

int64_t
Controller::injectedCells(FlowId flow) const
{
    for (const auto& src : cbr_sources_)
        if (src.flow == flow)
            return src.injected;
    for (const auto& src : vbr_sources_)
        if (src.flow == flow)
            return src.injected;
    AN2_FATAL("flow " << flow << " does not originate here");
}

}  // namespace an2
