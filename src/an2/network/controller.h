/**
 * @file
 * Host network controller (paper §2, §4, Appendix B).
 *
 * The controller is the traffic source and sink at the network edge. For
 * CBR flows it injects up to the reserved number of cells per *controller
 * frame*; the controller frame carries extra empty padding slots at its
 * end so that even the fastest controller's frame takes longer than the
 * slowest switch's frame (F_c-min > F_s-max), which is what bounds
 * downstream buffer build-up under clock drift. VBR flows inject cells as
 * a Bernoulli process in the slots CBR leaves free.
 *
 * As a sink, the controller records per-flow delivery statistics,
 * including the Appendix B adjusted latency and FIFO-order violations.
 */
#ifndef AN2_NETWORK_CONTROLLER_H
#define AN2_NETWORK_CONTROLLER_H

#include <map>
#include <vector>

#include "an2/base/flat_map.h"
#include "an2/base/rng.h"
#include "an2/base/stats.h"
#include "an2/cell/cell.h"
#include "an2/network/node.h"

namespace an2 {

/** Per-flow statistics gathered at the destination controller. */
struct FlowDeliveryStats
{
    int64_t delivered = 0;

    /** True end-to-end latency (delivery - injection), wall picoseconds. */
    RunningStats wall_latency_ps;

    /** Adjusted latency L(c, s_p) of Appendix B, wall picoseconds. */
    RunningStats adjusted_latency_ps;

    /** Cells that arrived out of per-flow FIFO order. */
    int64_t order_violations = 0;

    int64_t next_expected_seq = 0;
};

/** A host controller: paced CBR source, Bernoulli VBR source, and sink. */
class Controller final : public NetNode
{
  public:
    /**
     * @param id Node id.
     * @param clock Local clock.
     * @param frame_slots Controller frame length in slots (switch frame
     *        plus clock-drift padding).
     * @param schedulable_slots CBR-usable slots at the head of the frame
     *        (the switch frame length); the remainder is padding.
     * @param seed PRNG seed for VBR injection.
     */
    Controller(NodeId id, LocalClock clock, int frame_slots,
               int schedulable_slots, uint64_t seed);

    /** Attach the outgoing link (source side). */
    void setOutLink(NetLink* link) { out_link_ = link; }

    /** Attach the incoming link (sink side). */
    void setInLink(NetLink* link) { in_link_ = link; }

    /**
     * Register a CBR flow originating here with k cells/frame. Flows are
     * assigned contiguous slot ranges in registration order; the total
     * must fit in the schedulable portion of the frame. The source is
     * modeled as always backlogged (worst case for downstream buffers).
     *
     * @param attempted_per_frame Cells the application *tries* to send
     *        per frame; anything beyond cells_per_frame is dropped by the
     *        controller's meter (paper §4: "if the application exceeds
     *        its reservation, the excess cells may be dropped"). Defaults
     *        to exactly the reservation (a well-behaved source).
     */
    void addCbrSource(FlowId flow, int cells_per_frame,
                      int attempted_per_frame = 0);

    /** Cells of `flow` dropped by the metering policer so far. */
    int64_t policedDrops(FlowId flow) const;

    /**
     * Throttle a CBR source to `cells` cells/frame without disturbing its
     * frame-slot assignment (path restoration: 0 mutes the source while
     * its path is being rebuilt; a value below the registered reservation
     * models a degraded re-admission). Skipped slots consume no sequence
     * numbers, so delivery stays FIFO-clean across a pause. `cells` must
     * be in [0, cells_per_frame]; fatal if no such source exists here.
     */
    void setCbrActiveCells(FlowId flow, int cells);

    /**
     * Register a VBR flow originating here injecting with probability
     * `rate` per free slot. Total VBR rate must not exceed 1.
     */
    void addVbrSource(FlowId flow, double rate);

    void tick() override;

    /** Delivery statistics for a flow terminating here. */
    const FlowDeliveryStats& deliveryStats(FlowId flow) const;

    /** True when at least one cell of `flow` was delivered here. */
    bool hasDeliveries(FlowId flow) const
    {
        return delivered_.contains(flow);
    }

    /** All sink-side statistics, ordered by flow (reporting; copies). */
    std::map<FlowId, FlowDeliveryStats> allDeliveryStats() const
    {
        return delivered_.toMap();
    }

    /** Cells injected so far, per flow. */
    int64_t injectedCells(FlowId flow) const;

  private:
    struct CbrSource
    {
        FlowId flow;
        int cells_per_frame;
        int attempted_per_frame;
        int active_cells;  ///< cells actually emitted per frame (<= k)
        int first_slot;    ///< first frame slot assigned to this flow
        int64_t next_seq = 0;
        int64_t injected = 0;
        int64_t policed_drops = 0;
    };

    struct VbrSource
    {
        FlowId flow;
        double rate;
        int64_t next_seq = 0;
        int64_t injected = 0;
    };

    /** Receive and account cells that have arrived by `now`. */
    void drainSink(PicoTime now);

    /** Emit a cell for `flow` with class `cls` at wall time now. */
    void emit(FlowId flow, TrafficClass cls, int64_t seq, PicoTime now,
              int64_t slot);

    int frame_slots_;
    int schedulable_slots_;
    int cbr_assigned_ = 0;
    NetLink* out_link_ = nullptr;
    NetLink* in_link_ = nullptr;
    std::vector<CbrSource> cbr_sources_;
    std::vector<VbrSource> vbr_sources_;
    double total_vbr_rate_ = 0.0;
    /** Flow-indexed flat table: the per-cell sink accounting path stays
        allocation-free once every terminating flow has been seen. */
    FlatMap<FlowDeliveryStats> delivered_;
    /** Arrival scratch, persistent across ticks. */
    std::vector<Cell> arrivals_;
    Xoshiro256 rng_;
};

}  // namespace an2

#endif  // AN2_NETWORK_CONTROLLER_H
