#include "an2/network/clock.h"

namespace an2 {

LocalClock::LocalClock(PicoTime nominal_slot_ps, double rate_error,
                       PicoTime phase_ps)
    : phase_ps_(phase_ps)
{
    AN2_REQUIRE(nominal_slot_ps > 0, "slot duration must be positive");
    AN2_REQUIRE(rate_error > -1.0 && rate_error < 1.0,
                "clock rate error must be in (-1,1)");
    period_ps_ = static_cast<double>(nominal_slot_ps) / (1.0 + rate_error);
}

PicoTime
LocalClock::slotStart(int64_t k) const
{
    // Computed from the slot index each time (not accumulated) so that
    // rounding cannot drift over long runs.
    return phase_ps_ +
           static_cast<PicoTime>(std::llround(static_cast<double>(k) *
                                              period_ps_));
}

}  // namespace an2
