#include "an2/harness/aggregate.h"

#include <algorithm>
#include <cmath>

#include "an2/base/error.h"
#include "an2/harness/json_writer.h"

namespace an2::harness {

Aggregate
summarize(const RunningStats& s)
{
    Aggregate a;
    a.n = s.count();
    a.mean = s.mean();
    a.stddev = s.stddev();
    a.ci95 = s.count() >= 2
                 ? 1.96 * s.stddev() / std::sqrt(static_cast<double>(s.count()))
                 : 0.0;
    a.min = s.count() > 0 ? s.min() : 0.0;
    a.max = s.count() > 0 ? s.max() : 0.0;
    return a;
}

std::vector<CellSummary>
aggregate(const SweepSpec& spec, const SweepResult& result)
{
    AN2_REQUIRE(result.grid.size() == result.results.size(),
                "sweep result is incomplete");

    struct CellAccum
    {
        RunningStats mean_delay;
        RunningStats p99_delay;
        RunningStats throughput;
        RunningStats offered;
        int64_t injected = 0;
        int64_t delivered = 0;
        int max_occupancy = 0;
        int64_t fault_dropped = 0;
        int64_t fault_corrupted = 0;
        int64_t switch_dropped = 0;
    };

    const size_t cell_count =
        spec.archs.size() * spec.sizes.size() * spec.loads.size();
    std::vector<CellAccum> accums(cell_count);

    // The grid is replicate-minor, so a run's cell is run_index / R.
    for (size_t i = 0; i < result.grid.size(); ++i) {
        const SimResult& r = result.results[i];
        CellAccum& acc =
            accums[i / static_cast<size_t>(spec.replicates)];
        acc.mean_delay.add(r.mean_delay);
        acc.p99_delay.add(r.p99_delay);
        acc.throughput.add(r.throughput);
        acc.offered.add(r.offered);
        acc.injected += r.injected;
        acc.delivered += r.delivered;
        acc.max_occupancy = std::max(acc.max_occupancy, r.max_occupancy);
        acc.fault_dropped += r.fault_dropped;
        acc.fault_corrupted += r.fault_corrupted;
        acc.switch_dropped += r.switch_dropped;
    }

    std::vector<CellSummary> cells;
    cells.reserve(cell_count);
    size_t c = 0;
    for (const ArchSpec& arch : spec.archs) {
        for (int n : spec.sizes) {
            for (double load : spec.loads) {
                const CellAccum& acc = accums[c++];
                CellSummary cell;
                cell.arch = arch.name;
                cell.size = n;
                cell.load = load;
                cell.replicates = spec.replicates;
                cell.mean_delay = summarize(acc.mean_delay);
                cell.p99_delay = summarize(acc.p99_delay);
                cell.throughput = summarize(acc.throughput);
                cell.offered = summarize(acc.offered);
                cell.injected = acc.injected;
                cell.delivered = acc.delivered;
                cell.max_occupancy = acc.max_occupancy;
                cell.fault_dropped = acc.fault_dropped;
                cell.fault_corrupted = acc.fault_corrupted;
                cell.switch_dropped = acc.switch_dropped;
                cells.push_back(std::move(cell));
            }
        }
    }
    return cells;
}

namespace {

void
writeAggregate(JsonWriter& w, const char* name, const Aggregate& a)
{
    w.key(name).beginObject();
    w.key("mean").value(a.mean);
    w.key("stddev").value(a.stddev);
    w.key("ci95").value(a.ci95);
    w.key("min").value(a.min);
    w.key("max").value(a.max);
    w.endObject();
}

}  // namespace

std::string
sweepToJson(const SweepSpec& spec, const std::vector<CellSummary>& cells)
{
    JsonWriter w;
    w.beginObject();

    w.key("meta").beginObject();
    w.key("schema").value("an2.sweep.v1");
    w.key("experiment").value(spec.name);
    w.key("description").value(spec.description);
    w.key("workload").value(spec.workload);
    w.key("slots").value(static_cast<int64_t>(spec.slots));
    w.key("warmup").value(static_cast<int64_t>(spec.warmup));
    w.key("replicates").value(spec.replicates);
    w.key("base_seed").value(std::to_string(spec.base_seed));
    w.key("seeding")
        .value("seed(i, stream) = splitmix64(base_seed + phi64*(2i + stream "
               "+ 1)); switch: stream 0, i = run_index; traffic: stream 1, "
               "i = (size_idx*|loads| + load_idx)*replicates + replicate "
               "(common random numbers across architectures)");
    const bool faulted = !spec.faults.empty();
    if (faulted)
        w.key("faults").value(spec.faults.str());
    // CIOQ annotations, gated like faults: absent unless set, so every
    // pre-CIOQ an2.sweep.v1 document stays byte-identical.
    if (spec.speedup > 0)
        w.key("speedup").value(spec.speedup);
    if (!spec.service.empty())
        w.key("service").value(spec.service);
    w.endObject();

    w.key("axes").beginObject();
    w.key("arch").beginArray();
    for (const ArchSpec& a : spec.archs)
        w.value(a.name);
    w.endArray();
    w.key("size").beginArray();
    for (int n : spec.sizes)
        w.value(n);
    w.endArray();
    w.key("load").beginArray();
    for (double l : spec.loads)
        w.value(l);
    w.endArray();
    w.endObject();

    w.key("cells").beginArray();
    for (const CellSummary& cell : cells) {
        w.beginObject();
        w.key("arch").value(cell.arch);
        w.key("size").value(cell.size);
        w.key("load").value(cell.load);
        w.key("replicates").value(cell.replicates);
        writeAggregate(w, "mean_delay", cell.mean_delay);
        writeAggregate(w, "p99_delay", cell.p99_delay);
        writeAggregate(w, "throughput", cell.throughput);
        writeAggregate(w, "offered", cell.offered);
        w.key("injected").value(cell.injected);
        w.key("delivered").value(cell.delivered);
        w.key("max_occupancy").value(cell.max_occupancy);
        if (faulted) {
            w.key("fault_dropped").value(cell.fault_dropped);
            w.key("fault_corrupted").value(cell.fault_corrupted);
            w.key("switch_dropped").value(cell.switch_dropped);
        }
        w.endObject();
    }
    w.endArray();

    w.endObject();
    return w.str();
}

}  // namespace an2::harness
