#include "an2/harness/cli.h"

#include <cstdio>
#include <cstring>

#include "an2/base/error.h"
#include "an2/base/parse.h"

namespace an2::harness {

void
printSweepCliHelp(const char* prog, bool with_experiment)
{
    std::printf("usage: %s [options]\n", prog);
    if (with_experiment) {
        std::printf("  --experiment NAME   experiment to run "
                    "(--list shows them)\n");
        std::printf("  --list              list available experiments\n");
    }
    std::printf("  --json PATH         write results as an2.sweep.v1 JSON\n");
    std::printf("  --threads N         worker threads "
                "(default: hardware concurrency;\n"
                "                      results are identical for any N)\n");
    std::printf("  --replicates R      independent replicates per cell\n");
    std::printf("  --slots S           slots per run\n");
    std::printf("  --warmup W          warmup slots excluded from metrics\n");
    std::printf("  --seed X            base seed for deterministic "
                "seeding\n");
    std::printf("  --loads A,B,...     override the load axis\n");
    std::printf("  --size N            override the switch size\n");
    std::printf("  --arch A            architecture override: cioq "
                "(combined\n"
                "                      input-output queued switch; see "
                "--speedup)\n");
    std::printf("  --speedup S         CIOQ crossbar speedup, 1..4 "
                "(default 2;\n"
                "                      requires --arch cioq)\n");
    std::printf("  --service D         CIOQ output scheduling: strict | wrr\n"
                "                      (default strict; requires --arch "
                "cioq)\n");
    std::printf("  --frames F          switch frames per run (network "
                "experiments)\n");
    std::printf("  --engine E          network engine: serial | parallel "
                "(network\n"
                "                      experiments; results are identical "
                "either way)\n");
    std::printf("  --faults SPEC       fault scenario applied to every run, "
                "e.g.\n"
                "                      "
                "out_down(3)@40000,out_up(3)@60000,drop(0.001)\n"
                "                      events: in_down in_up out_down out_up "
                "link_down\n"
                "                      link_up (port/link)@slot; modes: "
                "drop(p) corrupt(p)\n");
    std::printf("  --chaos SPEC        seeded random churn for network "
                "experiments, e.g.\n"
                "                      chaos(7,2.5,link+switch+storm) — "
                "SEED, expected\n"
                "                      episodes per 1000 slots, '+'-joined "
                "kinds from\n"
                "                      port link switch storm; expands to a "
                "concrete\n"
                "                      fault plan and enables CBR path "
                "restoration\n");
    if (with_experiment) {
        std::printf("  --trace FILE        after the sweep, re-run one grid "
                    "point with probes\n"
                    "                      attached and write an an2.trace.v1 "
                    "Chrome trace\n");
        std::printf("  --trace-arch NAME   architecture to observe (default: "
                    "first PIM arch)\n");
        std::printf("  --trace-capacity N  event-ring capacity "
                    "(default 65536, drop-oldest)\n");
        std::printf("  --snapshot FILE     write an2.snapshot.v1 JSON-lines "
                    "(VOQ heatmap,\n"
                    "                      backlog, match-size histogram)\n");
        std::printf("  --snapshot-every K  slots between snapshots "
                    "(default 1000)\n");
        std::printf("  --metrics FILE      write an an2.metrics.v1 JSON-lines "
                    "time series\n"
                    "                      for the observed run (counters, "
                    "gauges, latency\n"
                    "                      p50/p99/p999 per traffic class)\n");
        std::printf("  --metrics-every K   slots between metrics samples "
                    "(default 1000;\n"
                    "                      network experiments default to one "
                    "frame)\n");
        std::printf("  --metrics-prom FILE write a Prometheus-style text "
                    "exposition of the\n"
                    "                      observed run's final state\n");
        std::printf("  --blackbox FILE     arm the flight recorder: dump an "
                    "an2.blackbox.v1\n"
                    "                      post-mortem on invariant failure "
                    "or scripted\n"
                    "                      port/link death\n");
    }
    std::printf("  --help              this message\n");
}

bool
parseLoadList(const char* arg, std::vector<double>& out, std::string& err)
{
    out.clear();
    const std::string text(arg);
    size_t pos = 0;
    while (pos <= text.size()) {
        size_t comma = text.find(',', pos);
        if (comma == std::string::npos)
            comma = text.size();
        const std::string token = text.substr(pos, comma - pos);
        double v = 0.0;
        if (!parseDouble(token, v) || v <= 0.0 || v > 1.0) {
            err = "bad load list '" + text + "': offending token '" + token +
                  "' (loads are in (0, 1])";
            return false;
        }
        out.push_back(v);
        pos = comma + 1;
    }
    return true;
}

namespace {

/** Format "--flag: malformed value 'v' (expected ...)" into err. */
std::string
badValue(const char* flag, const char* v, const char* expected)
{
    return std::string(flag) + ": malformed value '" + v + "' (expected " +
           expected + ")";
}

}  // namespace

bool
parseSweepCli(int argc, char** argv, SweepCli& cli, std::string& err)
{
    auto need = [&](int& i) -> const char* {
        if (i + 1 >= argc) {
            err = std::string(argv[i]) + " needs an argument";
            return nullptr;
        }
        return argv[++i];
    };
    // `--flag=value` form (the observability flags are documented this
    // way); returns the value or nullptr if `arg` is not `flag=...`.
    auto eqval = [](const char* arg, const char* flag) -> const char* {
        size_t n = std::strlen(flag);
        if (!std::strncmp(arg, flag, n) && arg[n] == '=')
            return arg + n + 1;
        return nullptr;
    };
    // Repeated flags are an error, not last-wins: `--slots 100 --slots
    // 900` silently dropping one value has burned enough scripts. The
    // idempotent --help/--list toggles stay exempt.
    std::vector<std::string> seen;
    for (int i = 1; i < argc; ++i) {
        const char* a = argv[i];
        const char* v = nullptr;
        if (std::strncmp(a, "--", 2) == 0 && a[2] != '\0') {
            std::string flag(a);
            if (size_t eq = flag.find('='); eq != std::string::npos)
                flag.resize(eq);
            if (flag != "--help" && flag != "--list") {
                for (const std::string& s : seen) {
                    if (s == flag) {
                        err = "duplicate option: " + flag +
                              " was given more than once";
                        return false;
                    }
                }
                seen.push_back(flag);
            }
        }
        if (!std::strcmp(a, "--help") || !std::strcmp(a, "-h")) {
            cli.help = true;
        } else if (!std::strcmp(a, "--list")) {
            cli.list = true;
        } else if (!std::strcmp(a, "--experiment")) {
            if (!(v = need(i)))
                return false;
            cli.experiment = v;
        } else if (!std::strcmp(a, "--json")) {
            if (!(v = need(i)))
                return false;
            cli.json_path = v;
        } else if (!std::strcmp(a, "--threads")) {
            if (!(v = need(i)))
                return false;
            if (!parseInt(v, cli.threads) || cli.threads < 0) {
                err = badValue("--threads", v, "an integer >= 0");
                return false;
            }
        } else if (!std::strcmp(a, "--replicates")) {
            if (!(v = need(i)))
                return false;
            if (!parseInt(v, cli.replicates) || cli.replicates <= 0) {
                err = badValue("--replicates", v, "a positive integer");
                return false;
            }
        } else if (!std::strcmp(a, "--slots")) {
            if (!(v = need(i)))
                return false;
            int64_t slots = 0;
            if (!parseInt64(v, slots) || slots <= 0) {
                err = badValue("--slots", v, "a positive integer");
                return false;
            }
            cli.slots = slots;
        } else if (!std::strcmp(a, "--warmup")) {
            if (!(v = need(i)))
                return false;
            int64_t warmup = 0;
            if (!parseInt64(v, warmup) || warmup < 0) {
                err = badValue("--warmup", v, "an integer >= 0");
                return false;
            }
            cli.warmup = warmup;
        } else if (!std::strcmp(a, "--seed")) {
            if (!(v = need(i)))
                return false;
            if (!parseUint64(v, cli.seed)) {
                err = badValue("--seed", v, "an unsigned 64-bit integer");
                return false;
            }
            cli.seed_set = true;
        } else if (!std::strcmp(a, "--loads")) {
            if (!(v = need(i)))
                return false;
            if (!parseLoadList(v, cli.loads, err)) {
                err = "--loads: " + err;
                return false;
            }
        } else if (!std::strcmp(a, "--size")) {
            if (!(v = need(i)))
                return false;
            if (!parseInt(v, cli.size) || cli.size <= 0) {
                err = badValue("--size", v, "a positive integer");
                return false;
            }
        } else if (!std::strcmp(a, "--arch")) {
            if (!(v = need(i)))
                return false;
            if (std::strcmp(v, "cioq")) {
                err = badValue("--arch", v, "'cioq'");
                return false;
            }
            cli.arch = v;
        } else if (!std::strcmp(a, "--speedup")) {
            if (!(v = need(i)))
                return false;
            if (!parseInt(v, cli.speedup) || cli.speedup < 1 ||
                cli.speedup > 4) {
                err = badValue("--speedup", v, "an integer in 1..4");
                return false;
            }
        } else if (!std::strcmp(a, "--service")) {
            if (!(v = need(i)))
                return false;
            if (std::strcmp(v, "strict") && std::strcmp(v, "wrr")) {
                err = badValue("--service", v, "'strict' or 'wrr'");
                return false;
            }
            cli.service = v;
        } else if (!std::strcmp(a, "--frames")) {
            if (!(v = need(i)))
                return false;
            int64_t frames = 0;
            if (!parseInt64(v, frames) || frames <= 0) {
                err = badValue("--frames", v, "a positive integer");
                return false;
            }
            cli.frames = frames;
        } else if (!std::strcmp(a, "--engine")) {
            if (!(v = need(i)))
                return false;
            if (std::strcmp(v, "serial") && std::strcmp(v, "parallel")) {
                err = badValue("--engine", v, "'serial' or 'parallel'");
                return false;
            }
            cli.engine = v;
        } else if (!std::strcmp(a, "--faults") ||
                   (v = eqval(a, "--faults")) != nullptr) {
            if (!v && !(v = need(i)))
                return false;
            try {
                cli.faults = fault::FaultPlan::parse(v);
            } catch (const UsageError& e) {
                err = std::string("--faults: ") + e.what();
                return false;
            }
            cli.faults_spec = v;
        } else if (!std::strcmp(a, "--chaos") ||
                   (v = eqval(a, "--chaos")) != nullptr) {
            if (!v && !(v = need(i)))
                return false;
            try {
                cli.chaos = fault::ChaosSpec::parse(v);
            } catch (const UsageError& e) {
                err = std::string("--chaos: ") + e.what();
                return false;
            }
            cli.chaos_spec = v;
        } else if (!std::strcmp(a, "--trace") ||
                   (v = eqval(a, "--trace")) != nullptr) {
            if (!v && !(v = need(i)))
                return false;
            cli.trace_path = v;
        } else if (!std::strcmp(a, "--trace-arch") ||
                   (v = eqval(a, "--trace-arch")) != nullptr) {
            if (!v && !(v = need(i)))
                return false;
            cli.trace_arch = v;
        } else if (!std::strcmp(a, "--trace-capacity") ||
                   (v = eqval(a, "--trace-capacity")) != nullptr) {
            if (!v && !(v = need(i)))
                return false;
            int64_t cap = 0;
            if (!parseInt64(v, cap) || cap <= 0) {
                err = badValue("--trace-capacity", v, "a positive integer");
                return false;
            }
            cli.trace_capacity = cap;
        } else if (!std::strcmp(a, "--snapshot") ||
                   (v = eqval(a, "--snapshot")) != nullptr) {
            if (!v && !(v = need(i)))
                return false;
            cli.snapshot_path = v;
        } else if (!std::strcmp(a, "--snapshot-every") ||
                   (v = eqval(a, "--snapshot-every")) != nullptr) {
            if (!v && !(v = need(i)))
                return false;
            if (!parseInt(v, cli.snapshot_every) ||
                cli.snapshot_every <= 0) {
                err = badValue("--snapshot-every", v, "a positive integer");
                return false;
            }
        } else if (!std::strcmp(a, "--metrics") ||
                   (v = eqval(a, "--metrics")) != nullptr) {
            if (!v && !(v = need(i)))
                return false;
            cli.metrics_path = v;
        } else if (!std::strcmp(a, "--metrics-every") ||
                   (v = eqval(a, "--metrics-every")) != nullptr) {
            if (!v && !(v = need(i)))
                return false;
            if (!parseInt(v, cli.metrics_every) || cli.metrics_every <= 0) {
                err = badValue("--metrics-every", v, "a positive integer");
                return false;
            }
        } else if (!std::strcmp(a, "--metrics-prom") ||
                   (v = eqval(a, "--metrics-prom")) != nullptr) {
            if (!v && !(v = need(i)))
                return false;
            cli.metrics_prom_path = v;
        } else if (!std::strcmp(a, "--blackbox") ||
                   (v = eqval(a, "--blackbox")) != nullptr) {
            if (!v && !(v = need(i)))
                return false;
            cli.blackbox_path = v;
        } else {
            err = std::string("unknown option: ") + a;
            return false;
        }
    }
    if ((cli.speedup > 0 || !cli.service.empty()) && cli.arch.empty()) {
        err = cli.speedup > 0
                  ? "--speedup requires --arch cioq"
                  : "--service requires --arch cioq";
        return false;
    }
    return true;
}

void
applyCli(const SweepCli& cli, SweepSpec& spec)
{
    if (cli.replicates > 0)
        spec.replicates = cli.replicates;
    if (cli.slots > 0)
        spec.slots = cli.slots;
    if (cli.warmup >= 0)
        spec.warmup = cli.warmup;
    if (cli.seed_set)
        spec.base_seed = cli.seed;
    if (!cli.loads.empty())
        spec.loads = cli.loads;
    if (cli.size > 0)
        spec.sizes = {cli.size};
    if (!cli.faults.empty())
        spec.faults = cli.faults;
}

}  // namespace an2::harness
