/**
 * @file
 * The command-line vocabulary shared by `an2_sweep` and the
 * harness-backed bench binaries (`--json`, `--threads`, `--replicates`,
 * `--faults`, ...).
 *
 * Parsing is strict: an unknown flag or a malformed numeric value is an
 * error naming the offending token, never a silent zero (the atoi-based
 * predecessor accepted `--threads banana` as 0). Numeric values must
 * consume their whole token and fit their type; fault specs are parsed
 * through fault::FaultPlan::parse, whose errors also quote the bad
 * token. A flag given more than once is an error naming the flag —
 * last-wins would silently discard one of two conflicting values.
 */
#ifndef AN2_HARNESS_CLI_H
#define AN2_HARNESS_CLI_H

#include <cstdint>
#include <string>
#include <vector>

#include "an2/fault/chaos.h"
#include "an2/fault/fault_plan.h"
#include "an2/harness/sweep.h"

namespace an2::harness {

/** Options common to `an2_sweep` and the harness-backed bench binaries. */
struct SweepCli
{
    std::string experiment;       ///< an2_sweep only
    std::string json_path;        ///< write sweep JSON here if non-empty
    int threads = 0;              ///< 0 = hardware concurrency
    int replicates = 0;           ///< 0 = keep spec default
    long long slots = 0;          ///< 0 = keep spec default
    long long warmup = -1;        ///< -1 = keep spec default
    uint64_t seed = 0;
    bool seed_set = false;
    std::vector<double> loads;    ///< empty = keep spec default
    int size = 0;                 ///< 0 = keep spec default
    long long frames = 0;         ///< 0 = keep spec default (net sweeps)
    bool list = false;
    bool help = false;

    /** Architecture override (--arch): "" keeps the spec's archs;
        "cioq" swaps in a CIOQ switch at --speedup / --service. */
    std::string arch;
    int speedup = 0;              ///< 0 = default (2); CIOQ arch only
    std::string service;          ///< "" = default ("strict") | "wrr"

    /**
     * Network engine selection for topology experiments: "serial"
     * forces the single-threaded event loop, "parallel" the sharded
     * engine on `threads` workers, "" (default) picks parallel when
     * threads != 1. Results are byte-identical either way.
     */
    std::string engine;

    /** Fault scenario (--faults SPEC), already validated by parse. */
    fault::FaultPlan faults;
    std::string faults_spec;      ///< the raw spec, for reporting

    /**
     * Seeded chaos churn (--chaos 'chaos(SEED,RATE,KINDS)'): expanded
     * into a concrete FaultPlan per run and driven with CBR path
     * restoration enabled (network experiments only). Same spec, same
     * run => same plan, byte-identical on any engine/thread count.
     */
    fault::ChaosSpec chaos;
    std::string chaos_spec;       ///< the raw spec, for reporting

    // Observability (an2_sweep): re-run one grid point with a Recorder
    // attached after the sweep. The sweep results themselves are
    // untouched — worker threads never observe.
    std::string trace_path;          ///< write an2.trace.v1 here
    std::string snapshot_path;       ///< write an2.snapshot.v1 lines here
    std::string trace_arch;          ///< arch to observe ("" = auto)
    long long trace_capacity = 1 << 16;  ///< event-ring size
    int snapshot_every = 0;          ///< 0 = default (1000) when snapshotting

    // Telemetry (an2_sweep): metrics time series and flight recorder for
    // the same observed grid point (or, for network experiments, for an
    // observed run of the first topology at the highest load).
    std::string metrics_path;        ///< write an2.metrics.v1 JSON lines
    std::string metrics_prom_path;   ///< write Prometheus text exposition
    int metrics_every = 0;           ///< 0 = default (1000 slots / 1 frame)
    std::string blackbox_path;       ///< arm flight recorder, dump here
};

/** Print the option summary for `prog` to stdout. */
void printSweepCliHelp(const char* prog, bool with_experiment);

/**
 * Parse a comma-separated load list (each in (0, 1]) into `out`.
 * Returns false with `err` naming the offending token on failure.
 */
bool parseLoadList(const char* arg, std::vector<double>& out,
                   std::string& err);

/**
 * Parse argv into `cli`. Returns false with a diagnostic in `err` —
 * naming the unknown flag or the malformed value — on failure.
 */
bool parseSweepCli(int argc, char** argv, SweepCli& cli, std::string& err);

/** Overlay the CLI's overrides onto a sweep spec. */
void applyCli(const SweepCli& cli, SweepSpec& spec);

}  // namespace an2::harness

#endif  // AN2_HARNESS_CLI_H
