#include "an2/harness/json_writer.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "an2/base/error.h"

namespace an2::harness {

std::string
jsonEscape(const std::string& s)
{
    std::string out;
    out.reserve(s.size());
    for (unsigned char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\b':
            out += "\\b";
            break;
          case '\f':
            out += "\\f";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    return out;
}

std::string
jsonNumber(double v)
{
    if (!std::isfinite(v))
        return "null";
    // Shortest round-trip: the first precision whose output parses back
    // to the identical bit pattern. "%.17g" always round-trips, so the
    // loop terminates.
    char buf[40];
    for (int prec = 1; prec <= 17; ++prec) {
        std::snprintf(buf, sizeof buf, "%.*g", prec, v);
        if (std::strtod(buf, nullptr) == v)
            break;
    }
    return buf;
}

JsonWriter&
JsonWriter::beginObject()
{
    beforeValue();
    out_ += '{';
    push(Scope::Object);
    return *this;
}

JsonWriter&
JsonWriter::endObject()
{
    pop(Scope::Object);
    out_ += '}';
    return *this;
}

JsonWriter&
JsonWriter::beginArray()
{
    beforeValue();
    out_ += '[';
    push(Scope::Array);
    return *this;
}

JsonWriter&
JsonWriter::endArray()
{
    pop(Scope::Array);
    out_ += ']';
    return *this;
}

JsonWriter&
JsonWriter::key(const std::string& name)
{
    AN2_ASSERT(!stack_.empty() && stack_.back().scope == Scope::Object,
               "JSON key outside an object");
    AN2_ASSERT(!stack_.back().key_pending, "two JSON keys in a row");
    if (!stack_.back().empty)
        out_ += ',';
    stack_.back().empty = false;
    indent();
    out_ += '"';
    out_ += jsonEscape(name);
    out_ += style_ == JsonStyle::Compact ? "\":" : "\": ";
    stack_.back().key_pending = true;
    return *this;
}

JsonWriter&
JsonWriter::value(const std::string& s)
{
    beforeValue();
    out_ += '"';
    out_ += jsonEscape(s);
    out_ += '"';
    return *this;
}

JsonWriter&
JsonWriter::value(const char* s)
{
    return value(std::string(s));
}

JsonWriter&
JsonWriter::value(double v)
{
    beforeValue();
    out_ += jsonNumber(v);
    return *this;
}

JsonWriter&
JsonWriter::value(int64_t v)
{
    beforeValue();
    out_ += std::to_string(v);
    return *this;
}

JsonWriter&
JsonWriter::value(bool b)
{
    beforeValue();
    out_ += b ? "true" : "false";
    return *this;
}

JsonWriter&
JsonWriter::null()
{
    beforeValue();
    out_ += "null";
    return *this;
}

std::string
JsonWriter::str() const
{
    AN2_ASSERT(stack_.empty() && root_done_, "unfinished JSON document");
    return out_ + "\n";
}

void
JsonWriter::beforeValue()
{
    if (stack_.empty()) {
        AN2_ASSERT(!root_done_, "second root value in JSON document");
        root_done_ = true;
        return;
    }
    Frame& top = stack_.back();
    if (top.scope == Scope::Object) {
        AN2_ASSERT(top.key_pending, "JSON object value without a key");
        top.key_pending = false;
    } else {
        if (!top.empty)
            out_ += ',';
        top.empty = false;
        indent();
    }
}

void
JsonWriter::indent()
{
    if (style_ == JsonStyle::Compact)
        return;
    out_ += '\n';
    out_.append(2 * stack_.size(), ' ');
}

void
JsonWriter::push(Scope s)
{
    stack_.push_back(Frame{s});
}

void
JsonWriter::pop(Scope s)
{
    AN2_ASSERT(!stack_.empty() && stack_.back().scope == s,
               "mismatched JSON end");
    AN2_ASSERT(!stack_.back().key_pending, "JSON key without a value");
    bool was_empty = stack_.back().empty;
    stack_.pop_back();
    if (!was_empty)
        indent();
}

}  // namespace an2::harness
