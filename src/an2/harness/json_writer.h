/**
 * @file
 * A tiny dependency-free JSON emitter for the experiment harness.
 *
 * Output is fully deterministic: keys appear in insertion order, doubles
 * are printed with the shortest representation that round-trips, and no
 * wall-clock or environment data is ever emitted. Two runs of the same
 * sweep therefore produce byte-identical documents regardless of thread
 * count or machine.
 */
#ifndef AN2_HARNESS_JSON_WRITER_H
#define AN2_HARNESS_JSON_WRITER_H

#include <cstdint>
#include <string>
#include <vector>

namespace an2::harness {

/** Escape `s` for embedding inside a JSON string (quotes not added). */
std::string jsonEscape(const std::string& s);

/**
 * Shortest decimal representation of `v` that parses back to exactly the
 * same double (tries increasing precision, 1..17 significant digits).
 * Non-finite values map to "null" (JSON has no NaN/Inf).
 */
std::string jsonNumber(double v);

/** Output layout of a JsonWriter document. */
enum class JsonStyle {
    /** 2-space indentation, one key/element per line (the default). */
    Pretty,
    /** No whitespace at all: one physical line, for JSON-lines sinks. */
    Compact,
};

/**
 * Streaming JSON document builder with 2-space pretty printing, or — for
 * JSON-lines output such as the observability snapshots — a compact
 * single-line mode.
 *
 * Usage:
 *     JsonWriter w;
 *     w.beginObject().key("answer").value(42).endObject();
 *     std::string doc = w.str();
 *
 * Structural misuse (a value where a key is required, unbalanced
 * begin/end, reading an unfinished document) trips an AN2_ASSERT.
 */
class JsonWriter
{
  public:
    JsonWriter() = default;
    explicit JsonWriter(JsonStyle style) : style_(style) {}

    JsonWriter& beginObject();
    JsonWriter& endObject();
    JsonWriter& beginArray();
    JsonWriter& endArray();

    /** Emit an object key; must be inside an object, before its value. */
    JsonWriter& key(const std::string& name);

    JsonWriter& value(const std::string& s);
    JsonWriter& value(const char* s);
    JsonWriter& value(double v);
    JsonWriter& value(int64_t v);
    JsonWriter& value(int v) { return value(static_cast<int64_t>(v)); }
    JsonWriter& value(bool b);
    JsonWriter& null();

    /** The finished document; all scopes must be closed. */
    std::string str() const;

  private:
    enum class Scope { Object, Array };

    void beforeValue();
    void indent();
    void push(Scope s);
    void pop(Scope s);

    struct Frame
    {
        Scope scope;
        bool empty = true;
        bool key_pending = false;  ///< object scope: key emitted, value due
    };

    JsonStyle style_ = JsonStyle::Pretty;
    std::string out_;
    std::vector<Frame> stack_;
    bool root_done_ = false;
};

}  // namespace an2::harness

#endif  // AN2_HARNESS_JSON_WRITER_H
