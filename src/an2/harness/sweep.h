/**
 * @file
 * Declarative experiment sweeps over the single-switch simulator.
 *
 * A SweepSpec names the axes of an experiment — switch architectures,
 * switch sizes, offered loads, and replicate count — plus a workload
 * factory and the per-run simulation length. expandGrid() unrolls the
 * axes into a flat run list; runSweep() executes the runs on a pool of
 * worker threads.
 *
 * Determinism: every run's PRNG seeds are derived from the spec's base
 * seed and the run's grid coordinates alone (splitmix64 mixing — the
 * switch/scheduler seed from the run index, the traffic seed from the
 * workload coordinate so all architectures face identical arrivals),
 * and results are stored by grid index. The outcome is therefore
 * bit-identical regardless of thread count or OS scheduling —
 * `--threads 8` is purely a wall-clock optimization.
 */
#ifndef AN2_HARNESS_SWEEP_H
#define AN2_HARNESS_SWEEP_H

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "an2/base/types.h"
#include "an2/fault/fault_plan.h"
#include "an2/sim/simulator.h"
#include "an2/sim/switch.h"
#include "an2/sim/traffic.h"

namespace an2::harness {

/** Builds the switch under test for one run. */
using SwitchFactory =
    std::function<std::unique_ptr<SwitchModel>(int n, uint64_t seed)>;

/** Builds the workload for one run. */
using TrafficFactory = std::function<std::unique_ptr<TrafficGenerator>(
    int n, double load, uint64_t seed)>;

/** One switch architecture under comparison (one axis value). */
struct ArchSpec
{
    /** Display name, e.g. "PIM(4)"; used in tables and JSON. */
    std::string name;

    SwitchFactory make;
};

/** Declarative description of a full experiment sweep. */
struct SweepSpec
{
    /** Experiment identifier, e.g. "fig3"; lands in the JSON meta. */
    std::string name;

    /** One-line description for reports. */
    std::string description;

    /** Workload name for the JSON meta, e.g. "uniform". */
    std::string workload;

    /** Architectures to compare (axis 1). */
    std::vector<ArchSpec> archs;

    /** Switch sizes N (axis 2). */
    std::vector<int> sizes{16};

    /** Offered loads (axis 3). */
    std::vector<double> loads;

    /** Independent replicates per (arch, size, load) cell (axis 4). */
    int replicates = 1;

    /** Root of the deterministic seed derivation. */
    uint64_t base_seed = 1;

    /** Slots to simulate per run. */
    SlotTime slots = 120'000;

    /** Warmup slots excluded from metrics. */
    SlotTime warmup = 20'000;

    /** Workload factory shared by all runs. */
    TrafficFactory make_traffic;

    /**
     * Fault scenario applied identically to every run (empty = none).
     * Each run gets its own FaultInjector seeded from stream 2 of the
     * run index, so the probabilistic modes replay deterministically on
     * any thread count.
     */
    fault::FaultPlan faults;

    /**
     * CIOQ annotations for the JSON meta (set by the --arch cioq glue):
     * speedup 0 / service "" mean "not a CIOQ sweep" and the keys are
     * omitted entirely, keeping pre-CIOQ documents byte-stable.
     */
    int speedup = 0;
    std::string service;
};

/** One point of the expanded run grid. */
struct RunPoint
{
    /** Dense grid index; also the result slot and the seed input. */
    int run_index = 0;

    int arch_index = 0;
    int size_index = 0;
    int load_index = 0;
    int replicate = 0;

    uint64_t switch_seed = 0;
    uint64_t traffic_seed = 0;
    uint64_t fault_seed = 0;
};

/**
 * Derive the seed for (`index`, `stream`) under `base_seed` via
 * splitmix64. Streams separate independent PRNG consumers: stream 0
 * (switch/scheduler) is keyed by the run index; stream 1 (traffic) is
 * keyed by the workload coordinate
 * `(size_index * |loads| + load_index) * replicates + replicate`,
 * giving every architecture the identical arrival sequence at a cell
 * (common random numbers); stream 2 (fault injection) is keyed by the
 * run index.
 */
uint64_t runSeed(uint64_t base_seed, int index, uint64_t stream);

/**
 * Unroll the spec's axes into the run grid, ordered arch-major:
 * arch, then size, then load, then replicate. Validates the spec.
 */
std::vector<RunPoint> expandGrid(const SweepSpec& spec);

/** All outcomes of a sweep, ordered by run_index. */
struct SweepResult
{
    std::vector<RunPoint> grid;
    std::vector<SimResult> results;  ///< parallel to grid

    /** Worker threads actually used (reporting only; not in JSON). */
    int threads_used = 0;
};

/**
 * Execute every run of the sweep on `threads` worker threads
 * (0 = std::thread::hardware_concurrency). Results are bit-identical
 * for any thread count. The first exception thrown by a run (e.g. a
 * UsageError from an invalid spec) is rethrown on the calling thread
 * after the pool drains.
 *
 * `on_progress`, if set, is called after each completed run with
 * (completed, total); calls are serialized but may come from any order
 * of run completion.
 */
SweepResult runSweep(const SweepSpec& spec, int threads = 0,
                     const std::function<void(int, int)>& on_progress = {});

}  // namespace an2::harness

#endif  // AN2_HARNESS_SWEEP_H
