/**
 * @file
 * Per-cell aggregation of sweep results across replicates, and the
 * stable JSON schema (`{meta, axes, cells[]}`) the harness emits for
 * the `BENCH_*.json` perf trajectory.
 */
#ifndef AN2_HARNESS_AGGREGATE_H
#define AN2_HARNESS_AGGREGATE_H

#include <cstdint>
#include <string>
#include <vector>

#include "an2/base/stats.h"
#include "an2/harness/sweep.h"

namespace an2::harness {

/** Summary of one scalar metric across a cell's replicates. */
struct Aggregate
{
    int64_t n = 0;       ///< replicates
    double mean = 0.0;
    double stddev = 0.0; ///< unbiased sample stddev (0 for n < 2)
    double ci95 = 0.0;   ///< 95% CI half-width: 1.96 * stddev / sqrt(n)
    double min = 0.0;
    double max = 0.0;
};

/** Collapse a RunningStats accumulator into an Aggregate. */
Aggregate summarize(const RunningStats& s);

/** Aggregated results for one (arch, size, load) grid cell. */
struct CellSummary
{
    std::string arch;
    int size = 0;
    double load = 0.0;
    int replicates = 0;

    Aggregate mean_delay;
    Aggregate p99_delay;
    Aggregate throughput;
    Aggregate offered;

    /** Totals across replicates. */
    int64_t injected = 0;
    int64_t delivered = 0;

    /** Largest buffer occupancy seen in any replicate. */
    int max_occupancy = 0;

    /** Totals lost to faults across replicates (see SimResult). Only
        emitted to JSON when the spec carries a fault plan. */
    int64_t fault_dropped = 0;
    int64_t fault_corrupted = 0;
    int64_t switch_dropped = 0;
};

/**
 * Aggregate a sweep's per-run results into per-cell summaries using
 * Welford accumulation over replicates. Cells are ordered exactly as
 * the grid: arch-major, then size, then load.
 */
std::vector<CellSummary> aggregate(const SweepSpec& spec,
                                   const SweepResult& result);

/**
 * Serialize a sweep to the harness JSON schema, deterministically:
 *
 *     {
 *       "meta":  { schema, experiment, description, workload, slots,
 *                  warmup, replicates, base_seed, seeding },
 *       "axes":  { "arch": [...], "size": [...], "load": [...] },
 *       "cells": [ { arch, size, load, replicates,
 *                    mean_delay: {mean, stddev, ci95, min, max},
 *                    p99_delay:  {...}, throughput: {...}, offered: {...},
 *                    injected, delivered, max_occupancy }, ... ]
 *     }
 *
 * base_seed is emitted as a decimal string (uint64 exceeds the exact
 * range of JSON doubles). No timing or host data is included, so the
 * document is byte-identical across thread counts and machines.
 *
 * When the spec carries a fault plan, meta gains a "faults" string (the
 * canonical plan) and every cell gains fault_dropped, fault_corrupted
 * and switch_dropped totals; fault-free sweeps emit the schema
 * unchanged, byte for byte.
 */
std::string sweepToJson(const SweepSpec& spec,
                        const std::vector<CellSummary>& cells);

}  // namespace an2::harness

#endif  // AN2_HARNESS_AGGREGATE_H
