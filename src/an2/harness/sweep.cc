#include "an2/harness/sweep.h"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

#include "an2/base/error.h"
#include "an2/base/rng.h"

namespace an2::harness {

uint64_t
runSeed(uint64_t base_seed, int index, uint64_t stream)
{
    // Golden-ratio spacing keeps (index, stream) pairs on distinct
    // splitmix64 trajectories; splitmix64 then decorrelates them fully.
    uint64_t state = base_seed +
                     0x9E3779B97F4A7C15ull *
                         (2 * static_cast<uint64_t>(index) + stream + 1);
    return splitmix64(state);
}

std::vector<RunPoint>
expandGrid(const SweepSpec& spec)
{
    AN2_REQUIRE(!spec.archs.empty(), "sweep needs at least one architecture");
    AN2_REQUIRE(!spec.sizes.empty(), "sweep needs at least one switch size");
    AN2_REQUIRE(!spec.loads.empty(), "sweep needs at least one load");
    AN2_REQUIRE(spec.replicates > 0, "sweep needs at least one replicate");
    AN2_REQUIRE(static_cast<bool>(spec.make_traffic),
                "sweep needs a traffic factory");
    for (const ArchSpec& a : spec.archs)
        AN2_REQUIRE(static_cast<bool>(a.make),
                    "architecture '" << a.name << "' has no factory");
    for (int n : spec.sizes)
        AN2_REQUIRE(n > 0, "switch size must be positive, got " << n);

    std::vector<RunPoint> grid;
    grid.reserve(spec.archs.size() * spec.sizes.size() * spec.loads.size() *
                 static_cast<size_t>(spec.replicates));
    const int n_loads = static_cast<int>(spec.loads.size());
    int idx = 0;
    for (size_t a = 0; a < spec.archs.size(); ++a) {
        for (size_t s = 0; s < spec.sizes.size(); ++s) {
            for (size_t l = 0; l < spec.loads.size(); ++l) {
                for (int r = 0; r < spec.replicates; ++r) {
                    RunPoint p;
                    p.run_index = idx;
                    p.arch_index = static_cast<int>(a);
                    p.size_index = static_cast<int>(s);
                    p.load_index = static_cast<int>(l);
                    p.replicate = r;
                    p.switch_seed = runSeed(spec.base_seed, idx, 0);
                    // Common random numbers: the traffic seed depends on
                    // the workload coordinate only, so every architecture
                    // compared at a (size, load, replicate) cell sees the
                    // identical arrival sequence (paired comparison, as
                    // the paper's own evaluation does).
                    int workload =
                        (static_cast<int>(s) * n_loads +
                         static_cast<int>(l)) *
                            spec.replicates +
                        r;
                    p.traffic_seed = runSeed(spec.base_seed, workload, 1);
                    p.fault_seed = runSeed(spec.base_seed, idx, 2);
                    grid.push_back(p);
                    ++idx;
                }
            }
        }
    }
    return grid;
}

SweepResult
runSweep(const SweepSpec& spec, int threads,
         const std::function<void(int, int)>& on_progress)
{
    SweepResult out;
    out.grid = expandGrid(spec);
    out.results.resize(out.grid.size());

    const int total = static_cast<int>(out.grid.size());
    if (threads <= 0) {
        threads = static_cast<int>(std::thread::hardware_concurrency());
        if (threads <= 0)
            threads = 1;
    }
    if (threads > total)
        threads = total;
    out.threads_used = threads;

    std::atomic<int> next{0};
    std::atomic<int> done{0};
    std::atomic<bool> aborted{false};
    std::mutex mu;  // guards first_error and on_progress
    std::exception_ptr first_error;

    auto worker = [&]() {
        while (!aborted.load(std::memory_order_relaxed)) {
            int idx = next.fetch_add(1, std::memory_order_relaxed);
            if (idx >= total)
                return;
            const RunPoint& p = out.grid[static_cast<size_t>(idx)];
            try {
                int n = spec.sizes[static_cast<size_t>(p.size_index)];
                double load = spec.loads[static_cast<size_t>(p.load_index)];
                auto sw = spec.archs[static_cast<size_t>(p.arch_index)].make(
                    n, p.switch_seed);
                auto traffic = spec.make_traffic(n, load, p.traffic_seed);
                SimConfig cfg;
                cfg.slots = spec.slots;
                cfg.warmup = spec.warmup;
                std::unique_ptr<fault::FaultInjector> injector;
                if (!spec.faults.empty()) {
                    spec.faults.validatePorts(n);
                    injector = std::make_unique<fault::FaultInjector>(
                        n, spec.faults, p.fault_seed);
                    cfg.faults = injector.get();
                }
                out.results[static_cast<size_t>(idx)] =
                    runSimulation(*sw, *traffic, cfg);
            } catch (...) {
                std::lock_guard<std::mutex> lock(mu);
                if (!first_error)
                    first_error = std::current_exception();
                aborted.store(true, std::memory_order_relaxed);
                return;
            }
            int completed = done.fetch_add(1, std::memory_order_relaxed) + 1;
            if (on_progress) {
                std::lock_guard<std::mutex> lock(mu);
                on_progress(completed, total);
            }
        }
    };

    if (threads == 1) {
        // In-line execution keeps single-threaded runs debuggable and
        // exercises the identical code path the invariance tests compare.
        worker();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(static_cast<size_t>(threads));
        for (int t = 0; t < threads; ++t)
            pool.emplace_back(worker);
        for (std::thread& t : pool)
            t.join();
    }

    if (first_error)
        std::rethrow_exception(first_error);
    return out;
}

}  // namespace an2::harness
