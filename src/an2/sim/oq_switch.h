/**
 * @file
 * Perfect output queueing — the optimal-performance reference (paper
 * §2.4/§3.5). The fabric is assumed to have enough internal bandwidth to
 * deliver any number of simultaneous arrivals to an output's queue, so a
 * cell is delayed only by other cells bound for the same output link.
 * Infeasible to build at gigabit speeds, but the lower envelope every
 * scheduling algorithm is measured against in Figures 3 and 4.
 */
#ifndef AN2_SIM_OQ_SWITCH_H
#define AN2_SIM_OQ_SWITCH_H

#include <vector>

#include "an2/fault/invariants.h"
#include "an2/queueing/output_queue.h"
#include "an2/sim/switch.h"

namespace an2 {

/** Ideal output-queued switch: N-speedup fabric, FIFO output queues. */
class OutputQueuedSwitch final : public SwitchModel
{
  public:
    explicit OutputQueuedSwitch(int n);

    void acceptCell(const Cell& cell) override;
    const std::vector<Cell>& runSlot(SlotTime slot) override;
    int bufferedCells() const override;
    std::string name() const override { return "OutputQueued"; }
    int size() const override { return n_; }

    void setInputPortLive(PortId i, bool live) override;
    void setOutputPortLive(PortId j, bool live) override;
    bool inputPortLive(PortId i) const override;
    bool outputPortLive(PortId j) const override;
    int64_t droppedCells() const override { return checker_.dropped(); }

    /** The per-slot invariant ledger (conservation totals). */
    const fault::InvariantChecker& invariants() const { return checker_; }

  private:
    int n_;
    std::vector<OutputQueue> queues_;
    std::vector<Cell> departed_;  ///< runSlot return buffer, reused

    // Fault state: a dead output stops draining (its queue holds until
    // revival); arrivals touching a dead port are dropped on entry.
    std::vector<uint8_t> in_live_;
    std::vector<uint8_t> out_live_;
    bool any_dead_ = false;
    fault::InvariantChecker checker_;
};

}  // namespace an2

#endif  // AN2_SIM_OQ_SWITCH_H
