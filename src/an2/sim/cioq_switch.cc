#include "an2/sim/cioq_switch.h"

#include <sstream>

#include "an2/base/error.h"
#include "an2/matching/wordset.h"
#include "an2/obs/recorder.h"

namespace an2 {

CioqSwitch::CioqSwitch(const CioqSwitchConfig& config,
                       std::unique_ptr<Matcher> matcher)
    : config_(config), matcher_(std::move(matcher)), crossbar_(config.n),
      req_(config.n),
      out_q_(static_cast<size_t>(config.n) * kNumTrafficClasses),
      wrr_cls_(static_cast<size_t>(config.n), 0),
      wrr_credit_(static_cast<size_t>(config.n), 0),
      match_(config.n, config.n),
      mask_words_(wordset::numWords(config.n)),
      dead_in_(static_cast<size_t>(mask_words_), 0),
      dead_out_(static_cast<size_t>(mask_words_), 0)
{
    AN2_REQUIRE(config_.n > 0, "switch size must be positive");
    AN2_REQUIRE(config_.speedup >= 1 && config_.speedup <= 4,
                "CIOQ speedup must be in 1..4, got " << config_.speedup);
    AN2_REQUIRE(matcher_ != nullptr, "a matcher is required");
    for (int w : config_.wrr_weights)
        AN2_REQUIRE(w > 0, "WRR weights must be positive");
    bufs_.reserve(static_cast<size_t>(config_.n));
    for (int i = 0; i < config_.n; ++i)
        bufs_.emplace_back(config_.n);
    for (PortId j = 0; j < config_.n; ++j)
        wrr_credit_[static_cast<size_t>(j)] = config_.wrr_weights[0];
    departed_.reserve(static_cast<size_t>(config_.n));
}

std::string
CioqSwitch::name() const
{
    std::ostringstream oss;
    oss << "CIOQ[" << matcher_->name() << ",S=" << config_.speedup << ","
        << (config_.service == ServiceDiscipline::Strict ? "strict"
                                                         : "wrr")
        << "]";
    return oss.str();
}

void
CioqSwitch::setInputPortLive(PortId i, bool live)
{
    AN2_REQUIRE(i >= 0 && i < config_.n,
                "input port " << i << " out of range");
    if (live)
        wordset::clearBit(dead_in_.data(), i);
    else
        wordset::setBit(dead_in_.data(), i);
    req_.setInputLive(i, live);
    any_dead_ = wordset::popcountAll(dead_in_.data(), mask_words_) +
                    wordset::popcountAll(dead_out_.data(), mask_words_) >
                0;
}

void
CioqSwitch::setOutputPortLive(PortId j, bool live)
{
    AN2_REQUIRE(j >= 0 && j < config_.n,
                "output port " << j << " out of range");
    if (live)
        wordset::clearBit(dead_out_.data(), j);
    else
        wordset::setBit(dead_out_.data(), j);
    req_.setOutputLive(j, live);
    any_dead_ = wordset::popcountAll(dead_in_.data(), mask_words_) +
                    wordset::popcountAll(dead_out_.data(), mask_words_) >
                0;
}

bool
CioqSwitch::inputPortLive(PortId i) const
{
    return !wordset::testBit(dead_in_.data(), i);
}

bool
CioqSwitch::outputPortLive(PortId j) const
{
    return !wordset::testBit(dead_out_.data(), j);
}

void
CioqSwitch::acceptCell(const Cell& cell)
{
    AN2_REQUIRE(cell.input >= 0 && cell.input < config_.n,
                "cell input " << cell.input << " out of range");
    if (any_dead_ && (wordset::testBit(dead_in_.data(), cell.input) ||
                      wordset::testBit(dead_out_.data(), cell.output))) {
        // Dead port: the cell is lost at the line card, not buffered.
        checker_.noteDropped();
        obs::count(obs::Counter::CellsDroppedByFaults);
        return;
    }
    checker_.noteAccepted();
    bufs_[static_cast<size_t>(cell.input)].enqueue(cell);
    req_.increment(cell.input, cell.output);
    obs::cellEnqueued(cell);
}

bool
CioqSwitch::serveOutput(PortId j)
{
    if (config_.service == ServiceDiscipline::Strict) {
        for (int cls = 0; cls < kNumTrafficClasses; ++cls) {
            RingQueue<Cell>& q =
                outQueue(j, static_cast<TrafficClass>(cls));
            if (q.empty())
                continue;
            departed_.push_back(q.front());
            q.pop_front();
            return true;
        }
        return false;
    }
    // Deterministic WRR: the pointer rests on a class with some credit;
    // serving costs one credit, and an exhausted or empty class passes
    // the pointer on with a fresh grant of that class's weight. At most
    // kNumTrafficClasses + 1 probes reach a cell whenever one exists, so
    // the discipline stays work-conserving.
    auto sj = static_cast<size_t>(j);
    for (int probes = 0; probes <= kNumTrafficClasses; ++probes) {
        int cls = wrr_cls_[sj];
        RingQueue<Cell>& q = outQueue(j, static_cast<TrafficClass>(cls));
        if (wrr_credit_[sj] > 0 && !q.empty()) {
            --wrr_credit_[sj];
            departed_.push_back(q.front());
            q.pop_front();
            return true;
        }
        int next = (cls + 1) % kNumTrafficClasses;
        wrr_cls_[sj] = static_cast<uint8_t>(next);
        wrr_credit_[sj] = config_.wrr_weights[static_cast<size_t>(next)];
    }
    return false;
}

const std::vector<Cell>&
CioqSwitch::runSlot(SlotTime slot)
{
    const int n = config_.n;
    obs::slotBegin(slot);

    // Phase 1..S: match, configure the crossbar, and cross the matched
    // cells into the output queues. Each phase sees the request matrix
    // left by the previous one, so a hot (i,j) pair can cross up to S
    // cells per slot.
    int crossed = 0;
    int cbr_crossed = 0;
    for (int phase = 0; phase < config_.speedup; ++phase) {
        if (req_.numEdges() == 0)
            break;
        obs::count(obs::Counter::SpeedupPhases);
        ++phases_run_;
        matcher_->matchInto(req_, match_);
        AN2_ASSERT(match_.isLegalFor(req_),
                   "matcher returned illegal match");
        if (match_.size() == 0)
            break;
        if (any_dead_)
            fault::InvariantChecker::checkMatchingAvoidsDead(
                match_, dead_in_.data(), dead_out_.data(), "CioqSwitch");
        crossbar_.configure(match_);
        for (PortId i = 0; i < n; ++i) {
            PortId j = match_.outputOf(i);
            if (j == kNoPort)
                continue;
            Cell c = bufs_[static_cast<size_t>(i)].dequeueFor(j);
            obs::cellDequeued(c);
            req_.decrement(i, j);
            crossbar_.forward(c);
            outQueue(j, c.cls).push_back(c);
            ++crossed;
            if (c.cls == TrafficClass::CBR)
                ++cbr_crossed;
        }
    }

    // Output service: one departure per live output per slot; a dead
    // output holds its queues until revival.
    departed_.clear();
    for (PortId j = 0; j < n; ++j) {
        if (any_dead_ && wordset::testBit(dead_out_.data(), j))
            continue;
        serveOutput(j);
    }

    // Backlog high-water mark across all outputs (post-departure).
    for (PortId j = 0; j < n; ++j) {
        int64_t depth = 0;
        for (int cls = 0; cls < kNumTrafficClasses; ++cls)
            depth += static_cast<int64_t>(
                outQueue(j, static_cast<TrafficClass>(cls)).size());
        if (depth > out_hwm_)
            out_hwm_ = depth;
    }

    checker_.noteDeparted(static_cast<int64_t>(departed_.size()));
    checker_.checkConservation(bufferedCells(), "CioqSwitch");

    if (obs::Recorder* rec = obs::current()) {
        rec->set(obs::Gauge::OutputQueueHwm, out_hwm_);
        rec->endSlot(crossed, cbr_crossed, crossed);
        if (rec->snapshotDue(slot))
            takeSnapshot(*rec, slot);
    }
    return departed_;
}

void
CioqSwitch::runSlots(SlotTime first, SlotTime count, SlotDriver& driver)
{
    // Identical to the base loop, but compiled against the final class
    // (see InputQueuedSwitch::runSlots).
    for (SlotTime s = first; s < first + count; ++s) {
        const std::vector<Cell>& arrivals = driver.beginSlot(s);
        for (const Cell& c : arrivals)
            acceptCell(c);
        driver.endSlot(s, runSlot(s));
    }
}

void
CioqSwitch::fillOccupancy(int32_t* voq, int32_t* backlog) const
{
    const int n = config_.n;
    for (PortId j = 0; j < n; ++j) {
        int32_t queued = 0;
        for (int cls = 0; cls < kNumTrafficClasses; ++cls)
            queued += static_cast<int32_t>(
                outQueue(j, static_cast<TrafficClass>(cls)).size());
        backlog[j] = queued;
    }
    for (PortId i = 0; i < n; ++i) {
        for (PortId j = 0; j < n; ++j) {
            int32_t cells =
                bufs_[static_cast<size_t>(i)].cellCountFor(j);
            voq[static_cast<size_t>(i) * static_cast<size_t>(n) +
                static_cast<size_t>(j)] = cells;
            backlog[j] += cells;
        }
    }
}

void
CioqSwitch::takeSnapshot(obs::Recorder& rec, SlotTime slot) const
{
    AN2_REQUIRE(rec.ports() == config_.n,
                "recorder snapshot ports do not match the switch size");
    fillOccupancy(rec.voqMatrix(), rec.outputBacklog());
    rec.commitSnapshot(slot, bufferedCells());
}

int
CioqSwitch::bufferedCells() const
{
    int total = 0;
    for (const auto& b : bufs_)
        total += b.totalCells();
    for (const auto& q : out_q_)
        total += static_cast<int>(q.size());
    return total;
}

}  // namespace an2
