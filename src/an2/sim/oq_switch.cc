#include "an2/sim/oq_switch.h"

#include "an2/base/error.h"

namespace an2 {

OutputQueuedSwitch::OutputQueuedSwitch(int n)
    : n_(n), queues_(static_cast<size_t>(n))
{
    AN2_REQUIRE(n > 0, "switch size must be positive");
}

void
OutputQueuedSwitch::acceptCell(const Cell& cell)
{
    AN2_REQUIRE(cell.output >= 0 && cell.output < n_,
                "cell output " << cell.output << " out of range");
    // Perfect fabric: the cell crosses to its output queue immediately.
    queues_[static_cast<size_t>(cell.output)].push(cell);
}

const std::vector<Cell>&
OutputQueuedSwitch::runSlot(SlotTime)
{
    departed_.clear();
    for (auto& q : queues_) {
        q.noteOccupancy();
        if (!q.empty())
            departed_.push_back(q.pop());
    }
    return departed_;
}

int
OutputQueuedSwitch::bufferedCells() const
{
    int total = 0;
    for (const auto& q : queues_)
        total += q.size();
    return total;
}

}  // namespace an2
