#include "an2/sim/oq_switch.h"

#include <algorithm>

#include "an2/base/error.h"
#include "an2/obs/recorder.h"

namespace an2 {

OutputQueuedSwitch::OutputQueuedSwitch(int n)
    : n_(n), queues_(static_cast<size_t>(n)),
      in_live_(static_cast<size_t>(n), 1), out_live_(static_cast<size_t>(n), 1)
{
    AN2_REQUIRE(n > 0, "switch size must be positive");
}

void
OutputQueuedSwitch::setInputPortLive(PortId i, bool live)
{
    AN2_REQUIRE(i >= 0 && i < n_, "input port " << i << " out of range");
    in_live_[static_cast<size_t>(i)] = live ? 1 : 0;
    any_dead_ = std::count(in_live_.begin(), in_live_.end(), 0) +
                    std::count(out_live_.begin(), out_live_.end(), 0) >
                0;
}

void
OutputQueuedSwitch::setOutputPortLive(PortId j, bool live)
{
    AN2_REQUIRE(j >= 0 && j < n_, "output port " << j << " out of range");
    out_live_[static_cast<size_t>(j)] = live ? 1 : 0;
    any_dead_ = std::count(in_live_.begin(), in_live_.end(), 0) +
                    std::count(out_live_.begin(), out_live_.end(), 0) >
                0;
}

bool
OutputQueuedSwitch::inputPortLive(PortId i) const
{
    return in_live_[static_cast<size_t>(i)] != 0;
}

bool
OutputQueuedSwitch::outputPortLive(PortId j) const
{
    return out_live_[static_cast<size_t>(j)] != 0;
}

void
OutputQueuedSwitch::acceptCell(const Cell& cell)
{
    AN2_REQUIRE(cell.input >= 0 && cell.input < n_,
                "cell input " << cell.input << " out of range");
    AN2_REQUIRE(cell.output >= 0 && cell.output < n_,
                "cell output " << cell.output << " out of range");
    if (any_dead_ && (!inputPortLive(cell.input) ||
                      !outputPortLive(cell.output))) {
        checker_.noteDropped();
        obs::count(obs::Counter::CellsDroppedByFaults);
        return;
    }
    checker_.noteAccepted();
    // Perfect fabric: the cell crosses to its output queue immediately.
    queues_[static_cast<size_t>(cell.output)].push(cell);
}

const std::vector<Cell>&
OutputQueuedSwitch::runSlot(SlotTime)
{
    departed_.clear();
    for (PortId j = 0; j < n_; ++j) {
        auto& q = queues_[static_cast<size_t>(j)];
        q.noteOccupancy();
        // A dead output link transmits nothing; its queue holds.
        if (any_dead_ && !outputPortLive(j))
            continue;
        if (!q.empty())
            departed_.push_back(q.pop());
    }
    checker_.noteDeparted(static_cast<int64_t>(departed_.size()));
    checker_.checkConservation(bufferedCells(), "OutputQueuedSwitch");
    return departed_;
}

int
OutputQueuedSwitch::bufferedCells() const
{
    int total = 0;
    for (const auto& q : queues_)
        total += q.size();
    return total;
}

}  // namespace an2
