#include "an2/sim/fifo_switch.h"

#include <algorithm>
#include <sstream>

#include "an2/matching/windowed_fifo.h"
#include "an2/matching/wordset.h"
#include "an2/obs/recorder.h"

namespace an2 {

FifoSwitch::FifoSwitch(int n, uint64_t seed, int window, int rounds)
    : n_(n), window_(window), rounds_(rounds),
      queues_(static_cast<size_t>(n)), crossbar_(n), rng_(seed),
      dead_in_(static_cast<size_t>(wordset::numWords(n)), 0),
      dead_out_(static_cast<size_t>(wordset::numWords(n)), 0)
{
    AN2_REQUIRE(n > 0, "switch size must be positive");
    AN2_REQUIRE(window >= 1, "window must be >= 1");
    AN2_REQUIRE(rounds >= 1, "rounds must be >= 1");
}

void
FifoSwitch::setInputPortLive(PortId i, bool live)
{
    AN2_REQUIRE(i >= 0 && i < n_, "input port " << i << " out of range");
    if (live)
        wordset::clearBit(dead_in_.data(), i);
    else
        wordset::setBit(dead_in_.data(), i);
    const int w = wordset::numWords(n_);
    any_dead_ = wordset::popcountAll(dead_in_.data(), w) +
                    wordset::popcountAll(dead_out_.data(), w) >
                0;
}

void
FifoSwitch::setOutputPortLive(PortId j, bool live)
{
    AN2_REQUIRE(j >= 0 && j < n_, "output port " << j << " out of range");
    if (live)
        wordset::clearBit(dead_out_.data(), j);
    else
        wordset::setBit(dead_out_.data(), j);
    const int w = wordset::numWords(n_);
    any_dead_ = wordset::popcountAll(dead_in_.data(), w) +
                    wordset::popcountAll(dead_out_.data(), w) >
                0;
}

bool
FifoSwitch::inputPortLive(PortId i) const
{
    return !wordset::testBit(dead_in_.data(), i);
}

bool
FifoSwitch::outputPortLive(PortId j) const
{
    return !wordset::testBit(dead_out_.data(), j);
}

void
FifoSwitch::acceptCell(const Cell& cell)
{
    AN2_REQUIRE(cell.input >= 0 && cell.input < n_,
                "cell input " << cell.input << " out of range");
    AN2_REQUIRE(cell.output >= 0 && cell.output < n_,
                "cell output " << cell.output << " out of range");
    if (any_dead_ && (wordset::testBit(dead_in_.data(), cell.input) ||
                      wordset::testBit(dead_out_.data(), cell.output))) {
        checker_.noteDropped();
        obs::count(obs::Counter::CellsDroppedByFaults);
        return;
    }
    checker_.noteAccepted();
    queues_[static_cast<size_t>(cell.input)].push_back(cell);
}

const std::vector<Cell>&
FifoSwitch::runSlot(SlotTime)
{
    departed_.clear();
    // Expose the first `window` destinations of each FIFO. A dead input
    // exposes nothing; a cell bound for a dead output cannot be served
    // and, being a FIFO, blocks everything behind it (the window is
    // truncated there — HOL blocking extends to failures).
    std::vector<std::vector<PortId>> window_dests(static_cast<size_t>(n_));
    for (PortId i = 0; i < n_; ++i) {
        if (any_dead_ && wordset::testBit(dead_in_.data(), i))
            continue;
        const auto& q = queues_[static_cast<size_t>(i)];
        auto take = std::min<size_t>(q.size(), static_cast<size_t>(window_));
        auto& dests = window_dests[static_cast<size_t>(i)];
        dests.reserve(take);
        for (size_t k = 0; k < take; ++k) {
            if (any_dead_ && wordset::testBit(dead_out_.data(), q[k].output))
                break;
            dests.push_back(q[k].output);
        }
    }

    WindowedFifoResult res = windowedFifoMatch(window_dests, n_, rounds_,
                                               rng_);
    crossbar_.configure(res.matching);

    for (PortId i = 0; i < n_; ++i) {
        int pos = res.positions[static_cast<size_t>(i)];
        if (pos < 0)
            continue;
        auto& q = queues_[static_cast<size_t>(i)];
        AN2_ASSERT(pos < static_cast<int>(q.size()),
                   "matched position beyond queue");
        Cell c = q[static_cast<size_t>(pos)];
        q.erase(q.begin() + pos);
        crossbar_.forward(c);
        departed_.push_back(c);
    }
    if (any_dead_)
        fault::InvariantChecker::checkMatchingAvoidsDead(
            res.matching, dead_in_.data(), dead_out_.data(), "FifoSwitch");
    checker_.noteDeparted(static_cast<int64_t>(departed_.size()));
    checker_.checkConservation(bufferedCells(), "FifoSwitch");
    return departed_;
}

int
FifoSwitch::bufferedCells() const
{
    int total = 0;
    for (const auto& q : queues_)
        total += static_cast<int>(q.size());
    return total;
}

std::string
FifoSwitch::name() const
{
    std::ostringstream oss;
    oss << "FIFO";
    if (window_ > 1)
        oss << "(window=" << window_ << ",rounds=" << rounds_ << ")";
    return oss.str();
}

}  // namespace an2
