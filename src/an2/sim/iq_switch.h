/**
 * @file
 * The AN2 input-queued switch model (paper §3-§4): random-access input
 * buffers, a pluggable scheduling algorithm for datagram (VBR) traffic,
 * and an optional pre-computed frame schedule for reserved (CBR) traffic.
 *
 * Slot sequence (matching the hardware's pipeline):
 *  1. CBR service — the frame schedule's pairings for this slot forward a
 *     queued CBR cell, if one is present, claiming their ports.
 *  2. VBR matching — the scheduler (typically PIM) runs over the ports
 *     left free, including scheduled-but-idle CBR pairings, so VBR fills
 *     every slot CBR does not use (§4).
 *  3. Forwarding across the crossbar; departures leave on output links.
 *
 * With output_speedup k > 1 (replicated fabric, §3.1) up to k cells reach
 * an output per slot and drain through an output queue at one per slot.
 *
 * The scheduling input is a persistent RequestMatrix patched as cells
 * arrive and depart (one increment per enqueue, one decrement per
 * dequeue), mirroring the hardware's per-port-pair request wires; the
 * O(N^2) per-slot rebuild of earlier revisions is gone, and steady-state
 * runSlot() performs no heap allocation.
 */
#ifndef AN2_SIM_IQ_SWITCH_H
#define AN2_SIM_IQ_SWITCH_H

#include <cstdint>
#include <memory>
#include <vector>

#include "an2/cbr/frame_schedule.h"
#include "an2/fabric/crossbar.h"
#include "an2/fault/invariants.h"
#include "an2/matching/matcher.h"
#include "an2/queueing/output_queue.h"
#include "an2/queueing/voq.h"
#include "an2/sim/switch.h"

namespace an2 {

namespace obs {
class Recorder;
}  // namespace obs

/** Configuration for an InputQueuedSwitch. */
struct IqSwitchConfig
{
    /** Switch size N. */
    int n = 16;

    /** Cells deliverable to one output per slot (1 = plain crossbar). */
    int output_speedup = 1;

    /**
     * Model the hardware scheduling pipeline: the matching used in slot
     * t is computed during slot t-1 ("there is a fixed amount of time to
     * schedule the switch -- the time to receive one cell", §3.2), so
     * datagram cells see one extra slot of latency and a cell arriving
     * in slot t is first eligible in slot t+1. CBR cells are unaffected
     * (their schedule is precomputed). Off by default: the unpipelined
     * model shifts every VBR delay by the same constant.
     */
    bool pipelined = false;
};

/** The AN2 switch: VOQ input buffers + pluggable matcher + CBR schedule. */
class InputQueuedSwitch final : public SwitchModel
{
  public:
    /**
     * @param config Switch parameters.
     * @param matcher VBR scheduling algorithm (owned).
     * @param cbr_schedule Optional frame schedule for CBR traffic; not
     *        owned, may be updated externally between slots (reservation
     *        changes). Must outlive the switch. Output speedup > 1 cannot
     *        be combined with a CBR schedule.
     */
    InputQueuedSwitch(const IqSwitchConfig& config,
                      std::unique_ptr<Matcher> matcher,
                      const FrameSchedule* cbr_schedule = nullptr);

    void acceptCell(const Cell& cell) override;
    const std::vector<Cell>& runSlot(SlotTime slot) override;
    void runSlots(SlotTime first, SlotTime count,
                  SlotDriver& driver) override;
    int bufferedCells() const override;
    std::string name() const override;
    int size() const override { return config_.n; }

    void setInputPortLive(PortId i, bool live) override;
    void setOutputPortLive(PortId j, bool live) override;
    bool inputPortLive(PortId i) const override;
    bool outputPortLive(PortId j) const override;
    int64_t droppedCells() const override { return checker_.dropped(); }

    /** CBR cells among droppedCells() (lost reserved traffic). */
    int64_t cbrCellsLost() const { return cbr_cells_lost_; }

    /** The per-slot invariant ledger (conservation totals). */
    const fault::InvariantChecker& invariants() const { return checker_; }

    /** CBR cells forwarded so far. */
    int64_t cbrForwarded() const { return cbr_forwarded_; }

    /** VBR cells forwarded so far. */
    int64_t vbrForwarded() const { return vbr_forwarded_; }

    /** VBR cells forwarded inside scheduled-but-idle CBR slots. */
    int64_t vbrInCbrSlots() const { return vbr_in_cbr_slots_; }

    /** The crossbar fabric (utilization statistics). */
    const Crossbar& crossbar() const { return crossbar_; }

    /** The VBR scheduler. */
    Matcher& matcher() { return *matcher_; }

    /** The persistent VBR request matrix (patched incrementally). */
    const RequestMatrix& vbrRequests() const { return vbr_req_; }

    /** Real VOQ occupancy (VBR + CBR buffers, plus speedup output
        queues in the backlog). */
    void fillOccupancy(int32_t* voq, int32_t* backlog) const override;

  private:
    /** Serve the frame schedule's pairings for `slot` into forwarded_,
        marking claimed ports in in_busy_/out_busy_; returns count. */
    int serveCbr(SlotTime slot);

    /** Predict the ports the frame schedule will claim in `slot`,
        marking them in next_in_/next_out_; returns true if any. */
    bool predictCbrBusy(SlotTime slot);

    /** Dequeue the VBR cell behind pairing (i,j) and log statistics. */
    void forwardVbr(SlotTime slot, PortId i, PortId j);

    /**
     * Compute a VBR matching into `out`, excluding the ports whose bits
     * are set in the given busy masks (`any_busy` false = all free).
     */
    void computeVbrMatch(const uint64_t* in_busy, const uint64_t* out_busy,
                         bool any_busy, Matching& out);

    /** Fill the recorder's VOQ/backlog scratch with the current queue
        state and commit one snapshot line for `slot`. */
    void takeSnapshot(obs::Recorder& rec, SlotTime slot) const;

    IqSwitchConfig config_;
    std::unique_ptr<Matcher> matcher_;
    const FrameSchedule* cbr_schedule_;
    std::vector<InputBuffer> vbr_bufs_;
    std::vector<InputBuffer> cbr_bufs_;
    std::vector<OutputQueue> out_queues_;  ///< used when speedup > 1
    Crossbar crossbar_;

    /**
     * Requests for the VBR scheduler: count(i,j) = VBR cells queued at
     * input i for output j. Incremented in acceptCell, decremented as
     * cells cross the fabric — never rebuilt.
     */
    RequestMatrix vbr_req_;
    /** Scratch copy of vbr_req_ with CBR-claimed ports cleared. */
    RequestMatrix masked_req_;

    // Per-slot scratch, reused so steady-state slots never allocate.
    int busy_words_;                   ///< words per port bitmask
    std::vector<uint64_t> in_busy_;    ///< inputs claimed by CBR
    std::vector<uint64_t> out_busy_;   ///< outputs claimed by CBR
    std::vector<uint64_t> next_in_;    ///< predicted busy, next slot
    std::vector<uint64_t> next_out_;   ///< predicted busy, next slot
    Matching vbr_match_;               ///< matcher output buffer
    Matching combined_;                ///< CBR + VBR crossbar setting
    std::vector<Cell> forwarded_;      ///< cells crossing this slot
    std::vector<Cell> departed_;       ///< runSlot return (speedup > 1)

    /** Pipelined mode: the matching precomputed for the next slot. */
    Matching pending_vbr_;
    bool has_pending_ = false;

    // Fault state: dead-port bitmasks mirrored into vbr_req_'s liveness,
    // plus the always-on conservation ledger.
    std::vector<uint64_t> dead_in_;
    std::vector<uint64_t> dead_out_;
    bool any_dead_ = false;
    fault::InvariantChecker checker_;
    int64_t cbr_cells_lost_ = 0;

    int64_t cbr_forwarded_ = 0;
    int64_t vbr_forwarded_ = 0;
    int64_t vbr_in_cbr_slots_ = 0;
};

}  // namespace an2

#endif  // AN2_SIM_IQ_SWITCH_H
