/**
 * @file
 * The AN2 input-queued switch model (paper §3-§4): random-access input
 * buffers, a pluggable scheduling algorithm for datagram (VBR) traffic,
 * and an optional pre-computed frame schedule for reserved (CBR) traffic.
 *
 * Slot sequence (matching the hardware's pipeline):
 *  1. CBR service — the frame schedule's pairings for this slot forward a
 *     queued CBR cell, if one is present, claiming their ports.
 *  2. VBR matching — the scheduler (typically PIM) runs over the ports
 *     left free, including scheduled-but-idle CBR pairings, so VBR fills
 *     every slot CBR does not use (§4).
 *  3. Forwarding across the crossbar; departures leave on output links.
 *
 * With output_speedup k > 1 (replicated fabric, §3.1) up to k cells reach
 * an output per slot and drain through an output queue at one per slot.
 */
#ifndef AN2_SIM_IQ_SWITCH_H
#define AN2_SIM_IQ_SWITCH_H

#include <cstdint>
#include <memory>
#include <vector>

#include "an2/cbr/frame_schedule.h"
#include "an2/fabric/crossbar.h"
#include "an2/matching/matcher.h"
#include "an2/queueing/output_queue.h"
#include "an2/queueing/voq.h"
#include "an2/sim/switch.h"

namespace an2 {

/** Configuration for an InputQueuedSwitch. */
struct IqSwitchConfig
{
    /** Switch size N. */
    int n = 16;

    /** Cells deliverable to one output per slot (1 = plain crossbar). */
    int output_speedup = 1;

    /**
     * Model the hardware scheduling pipeline: the matching used in slot
     * t is computed during slot t-1 ("there is a fixed amount of time to
     * schedule the switch -- the time to receive one cell", §3.2), so
     * datagram cells see one extra slot of latency and a cell arriving
     * in slot t is first eligible in slot t+1. CBR cells are unaffected
     * (their schedule is precomputed). Off by default: the unpipelined
     * model shifts every VBR delay by the same constant.
     */
    bool pipelined = false;
};

/** The AN2 switch: VOQ input buffers + pluggable matcher + CBR schedule. */
class InputQueuedSwitch final : public SwitchModel
{
  public:
    /**
     * @param config Switch parameters.
     * @param matcher VBR scheduling algorithm (owned).
     * @param cbr_schedule Optional frame schedule for CBR traffic; not
     *        owned, may be updated externally between slots (reservation
     *        changes). Must outlive the switch. Output speedup > 1 cannot
     *        be combined with a CBR schedule.
     */
    InputQueuedSwitch(const IqSwitchConfig& config,
                      std::unique_ptr<Matcher> matcher,
                      const FrameSchedule* cbr_schedule = nullptr);

    void acceptCell(const Cell& cell) override;
    std::vector<Cell> runSlot(SlotTime slot) override;
    int bufferedCells() const override;
    std::string name() const override;
    int size() const override { return config_.n; }

    /** CBR cells forwarded so far. */
    int64_t cbrForwarded() const { return cbr_forwarded_; }

    /** VBR cells forwarded so far. */
    int64_t vbrForwarded() const { return vbr_forwarded_; }

    /** VBR cells forwarded inside scheduled-but-idle CBR slots. */
    int64_t vbrInCbrSlots() const { return vbr_in_cbr_slots_; }

    /** The crossbar fabric (utilization statistics). */
    const Crossbar& crossbar() const { return crossbar_; }

    /** The VBR scheduler. */
    Matcher& matcher() { return *matcher_; }

  private:
    /** Serve the frame schedule's pairings for `slot`; returns cells. */
    std::vector<Cell> serveCbr(SlotTime slot, std::vector<bool>& in_busy,
                               std::vector<bool>& out_busy);

    /** Predict the ports the frame schedule will claim in `slot`. */
    void predictCbrBusy(SlotTime slot, std::vector<bool>& in_busy,
                        std::vector<bool>& out_busy) const;

    /** Compute a VBR matching avoiding the given busy ports. */
    Matching computeVbrMatch(const std::vector<bool>& in_busy,
                             const std::vector<bool>& out_busy);

    IqSwitchConfig config_;
    std::unique_ptr<Matcher> matcher_;
    const FrameSchedule* cbr_schedule_;
    std::vector<InputBuffer> vbr_bufs_;
    std::vector<InputBuffer> cbr_bufs_;
    std::vector<OutputQueue> out_queues_;  ///< used when speedup > 1
    Crossbar crossbar_;
    /** Pipelined mode: the matching precomputed for the next slot. */
    std::unique_ptr<Matching> pending_vbr_;
    int64_t cbr_forwarded_ = 0;
    int64_t vbr_forwarded_ = 0;
    int64_t vbr_in_cbr_slots_ = 0;
};

}  // namespace an2

#endif  // AN2_SIM_IQ_SWITCH_H
