/**
 * @file
 * The switch-architecture interface for the slot-synchronous simulator.
 *
 * A slot proceeds as: (1) the simulator feeds each arriving cell to
 * acceptCell(); (2) runSlot() schedules and forwards cells, returning the
 * cells that depart the switch in this slot. Delay of a cell is its
 * departure slot minus its injection slot.
 */
#ifndef AN2_SIM_SWITCH_H
#define AN2_SIM_SWITCH_H

#include <string>
#include <vector>

#include "an2/cell/cell.h"

namespace an2 {

/** Abstract N x N switch architecture under test. */
class SwitchModel
{
  public:
    virtual ~SwitchModel() = default;

    /** Accept a cell arriving at the start of the current slot. */
    virtual void acceptCell(const Cell& cell) = 0;

    /**
     * Schedule and forward for slot `slot`; returns the departing cells.
     * Called once per slot, after all of the slot's arrivals. The
     * reference points at a buffer owned by the switch and is valid until
     * the next runSlot() call — implementations reuse it so that
     * steady-state slots perform no heap allocation.
     */
    virtual const std::vector<Cell>& runSlot(SlotTime slot) = 0;

    /** Cells currently buffered anywhere in the switch. */
    virtual int bufferedCells() const = 0;

    /** Architecture name for reports. */
    virtual std::string name() const = 0;

    /** Number of ports. */
    virtual int size() const = 0;

    // ---- fault plumbing (graceful degradation) ------------------------
    //
    // A dead port carries nothing: arrivals at a dead input or bound for
    // a dead output are dropped and counted in droppedCells(); cells
    // already queued toward a dead output stay buffered until it
    // revives. The base defaults model a fault-oblivious switch (all
    // ports permanently live, nothing dropped), so existing models work
    // unchanged; models that participate override all five.

    /** Mark input port `i` live or dead. */
    virtual void setInputPortLive(PortId i, bool live)
    {
        (void)i;
        (void)live;
    }

    /** Mark output port `j` live or dead. */
    virtual void setOutputPortLive(PortId j, bool live)
    {
        (void)j;
        (void)live;
    }

    virtual bool inputPortLive(PortId i) const
    {
        (void)i;
        return true;
    }

    virtual bool outputPortLive(PortId j) const
    {
        (void)j;
        return true;
    }

    /** Cells discarded by the switch (dead ports, buffer policy). */
    virtual int64_t droppedCells() const { return 0; }
};

}  // namespace an2

#endif  // AN2_SIM_SWITCH_H
