/**
 * @file
 * The switch-architecture interface for the slot-synchronous simulator.
 *
 * A slot proceeds as: (1) the simulator feeds each arriving cell to
 * acceptCell(); (2) runSlot() schedules and forwards cells, returning the
 * cells that depart the switch in this slot. Delay of a cell is its
 * departure slot minus its injection slot.
 */
#ifndef AN2_SIM_SWITCH_H
#define AN2_SIM_SWITCH_H

#include <string>
#include <vector>

#include "an2/cell/cell.h"

namespace an2 {

/** Abstract N x N switch architecture under test. */
class SwitchModel
{
  public:
    virtual ~SwitchModel() = default;

    /** Accept a cell arriving at the start of the current slot. */
    virtual void acceptCell(const Cell& cell) = 0;

    /**
     * Schedule and forward for slot `slot`; returns the departing cells.
     * Called once per slot, after all of the slot's arrivals. The
     * reference points at a buffer owned by the switch and is valid until
     * the next runSlot() call — implementations reuse it so that
     * steady-state slots perform no heap allocation.
     */
    virtual const std::vector<Cell>& runSlot(SlotTime slot) = 0;

    /** Cells currently buffered anywhere in the switch. */
    virtual int bufferedCells() const = 0;

    /** Architecture name for reports. */
    virtual std::string name() const = 0;

    /** Number of ports. */
    virtual int size() const = 0;
};

}  // namespace an2

#endif  // AN2_SIM_SWITCH_H
