/**
 * @file
 * The switch-architecture interface for the slot-synchronous simulator.
 *
 * A slot proceeds as: (1) the simulator feeds each arriving cell to
 * acceptCell(); (2) runSlot() schedules and forwards cells, returning the
 * cells that depart the switch in this slot. Delay of a cell is its
 * departure slot minus its injection slot.
 */
#ifndef AN2_SIM_SWITCH_H
#define AN2_SIM_SWITCH_H

#include <cstdint>
#include <string>
#include <vector>

#include "an2/cell/cell.h"

namespace an2 {

/**
 * Per-slot callbacks for the batched slot loop (SwitchModel::runSlots).
 * The driver supplies each slot's arrivals and consumes its departures;
 * batching many slots into one virtual call amortizes the per-slot
 * dispatch, and a `final` switch class devirtualizes its own slot
 * internals inside the batch.
 */
class SlotDriver
{
  public:
    virtual ~SlotDriver() = default;

    /**
     * Arrivals for `slot` (cells already past any admission/fault
     * filtering — every returned cell is fed to the switch). The buffer
     * must stay valid until the same slot's endSlot() returns; drivers
     * reuse one buffer so steady-state slots perform no allocation.
     */
    virtual const std::vector<Cell>& beginSlot(SlotTime slot) = 0;

    /** Departures of `slot` (the switch's runSlot() return buffer). */
    virtual void endSlot(SlotTime slot,
                         const std::vector<Cell>& departed) = 0;
};

/** Abstract N x N switch architecture under test. */
class SwitchModel
{
  public:
    virtual ~SwitchModel() = default;

    /** Accept a cell arriving at the start of the current slot. */
    virtual void acceptCell(const Cell& cell) = 0;

    /**
     * Schedule and forward for slot `slot`; returns the departing cells.
     * Called once per slot, after all of the slot's arrivals. The
     * reference points at a buffer owned by the switch and is valid until
     * the next runSlot() call — implementations reuse it so that
     * steady-state slots perform no heap allocation.
     */
    virtual const std::vector<Cell>& runSlot(SlotTime slot) = 0;

    /**
     * Run `count` consecutive slots starting at `first`, pulling each
     * slot's arrivals from `driver` and handing its departures back —
     * semantically identical to the acceptCell()/runSlot() loop below.
     * Final implementations override this so the per-cell accept calls
     * and the slot body devirtualize inside one virtual dispatch per
     * batch instead of several per slot.
     */
    virtual void runSlots(SlotTime first, SlotTime count, SlotDriver& driver)
    {
        for (SlotTime s = first; s < first + count; ++s) {
            const std::vector<Cell>& arrivals = driver.beginSlot(s);
            for (const Cell& c : arrivals)
                acceptCell(c);
            driver.endSlot(s, runSlot(s));
        }
    }

    /** Cells currently buffered anywhere in the switch. */
    virtual int bufferedCells() const = 0;

    /** Architecture name for reports. */
    virtual std::string name() const = 0;

    /** Number of ports. */
    virtual int size() const = 0;

    // ---- fault plumbing (graceful degradation) ------------------------
    //
    // A dead port carries nothing: arrivals at a dead input or bound for
    // a dead output are dropped and counted in droppedCells(); cells
    // already queued toward a dead output stay buffered until it
    // revives. The base defaults model a fault-oblivious switch (all
    // ports permanently live, nothing dropped), so existing models work
    // unchanged; models that participate override all five.

    /** Mark input port `i` live or dead. */
    virtual void setInputPortLive(PortId i, bool live)
    {
        (void)i;
        (void)live;
    }

    /** Mark output port `j` live or dead. */
    virtual void setOutputPortLive(PortId j, bool live)
    {
        (void)j;
        (void)live;
    }

    virtual bool inputPortLive(PortId i) const
    {
        (void)i;
        return true;
    }

    virtual bool outputPortLive(PortId j) const
    {
        (void)j;
        return true;
    }

    /** Cells discarded by the switch (dead ports, buffer policy). */
    virtual int64_t droppedCells() const { return 0; }

    // ---- diagnostics ---------------------------------------------------

    /**
     * Fill `voq` (size() x size() entries, row-major by input) with
     * per-(input, output) queue occupancy and `backlog` (size() entries)
     * with per-output queued-cell totals. Diagnostic path only (periodic
     * snapshots, flight-recorder post-mortems), never the slot loop. The
     * base zero-fills: architectures without per-connection queues
     * report an empty matrix.
     */
    virtual void fillOccupancy(int32_t* voq, int32_t* backlog) const
    {
        const size_t n = static_cast<size_t>(size());
        for (size_t k = 0; k < n * n; ++k)
            voq[k] = 0;
        for (size_t j = 0; j < n; ++j)
            backlog[j] = 0;
    }
};

}  // namespace an2

#endif  // AN2_SIM_SWITCH_H
