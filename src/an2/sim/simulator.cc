#include "an2/sim/simulator.h"

#include "an2/base/error.h"
#include "an2/obs/recorder.h"

namespace an2 {

SimResult
runSimulation(SwitchModel& sw, TrafficGenerator& traffic,
              const SimConfig& config)
{
    AN2_REQUIRE(config.slots > 0, "simulation needs at least one slot, got "
                                      << config.slots);
    AN2_REQUIRE(config.warmup >= 0,
                "warmup must be non-negative, got " << config.warmup);
    AN2_REQUIRE(config.warmup < config.slots,
                "warmup (" << config.warmup
                           << ") must be shorter than the simulation ("
                           << config.slots
                           << " slots); no slots would be measured");

    MetricsCollector metrics(config.warmup, sw.size());
    int64_t injected_total = 0;
    int64_t delivered_total = 0;

    std::vector<Cell> arrivals;
    for (SlotTime slot = 0; slot < config.slots; ++slot) {
        arrivals.clear();
        traffic.generate(slot, arrivals);
        for (const Cell& c : arrivals) {
            sw.acceptCell(c);
            metrics.noteInjected(c);
            ++injected_total;
        }
        const std::vector<Cell>& departed = sw.runSlot(slot);
        for (const Cell& c : departed) {
            metrics.noteDelivered(c, slot);
            ++delivered_total;
            if (config.on_delivered)
                config.on_delivered(c, slot);
        }
        int buffered = sw.bufferedCells();
        metrics.noteOccupancy(buffered);
        obs::setGauge(obs::Gauge::BufferedCells, buffered);
    }

    AN2_ASSERT(injected_total == delivered_total + sw.bufferedCells(),
               "cell conservation violated: " << injected_total
                                              << " injected, "
                                              << delivered_total
                                              << " delivered, "
                                              << sw.bufferedCells()
                                              << " buffered");

    SimResult result;
    result.mean_delay = metrics.meanDelay();
    result.p99_delay =
        metrics.delayStats().count() > 0 ? metrics.delayQuantile(0.99) : 0.0;
    result.injected = metrics.injected();
    result.delivered = metrics.delivered();
    result.measured_slots = config.slots - config.warmup;
    auto denom = static_cast<double>(result.measured_slots) * sw.size();
    result.throughput = static_cast<double>(result.delivered) / denom;
    result.offered = static_cast<double>(result.injected) / denom;
    result.max_occupancy = metrics.maxOccupancy();
    result.per_connection = metrics.deliveredPerConnection();
    result.per_flow = metrics.deliveredPerFlow();
    return result;
}

}  // namespace an2
