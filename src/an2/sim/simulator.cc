#include "an2/sim/simulator.h"

#include "an2/base/error.h"
#include "an2/obs/recorder.h"

namespace an2 {

SimResult
runSimulation(SwitchModel& sw, TrafficGenerator& traffic,
              const SimConfig& config)
{
    AN2_REQUIRE(config.slots > 0, "simulation needs at least one slot, got "
                                      << config.slots);
    AN2_REQUIRE(config.warmup >= 0,
                "warmup must be non-negative, got " << config.warmup);
    AN2_REQUIRE(config.warmup < config.slots,
                "warmup (" << config.warmup
                           << ") must be shorter than the simulation ("
                           << config.slots
                           << " slots); no slots would be measured");

    MetricsCollector metrics(config.warmup, sw.size());
    int64_t injected_total = 0;
    int64_t delivered_total = 0;

    // Loss baselines, so a reused switch/injector accounts only this run.
    const int64_t sw_dropped0 = sw.droppedCells();
    const int64_t fi_dropped0 =
        config.faults ? config.faults->cellsDropped() : 0;
    const int64_t fi_corrupted0 =
        config.faults ? config.faults->cellsCorrupted() : 0;

    std::vector<Cell> arrivals;
    for (SlotTime slot = 0; slot < config.slots; ++slot) {
        if (config.faults)
            config.faults->beginSlot(slot, &sw);
        arrivals.clear();
        traffic.generate(slot, arrivals);
        for (const Cell& c : arrivals) {
            metrics.noteInjected(c);
            ++injected_total;
            if (config.faults &&
                config.faults->classifyArrival(c) !=
                    fault::FaultInjector::Verdict::Deliver)
                continue;  // lost on the way in: dead port, drop, corrupt
            sw.acceptCell(c);
        }
        const std::vector<Cell>& departed = sw.runSlot(slot);
        for (const Cell& c : departed) {
            metrics.noteDelivered(c, slot);
            ++delivered_total;
            if (config.on_delivered)
                config.on_delivered(c, slot);
        }
        int buffered = sw.bufferedCells();
        metrics.noteOccupancy(buffered);
        obs::setGauge(obs::Gauge::BufferedCells, buffered);
    }

    SimResult result;
    result.switch_dropped = sw.droppedCells() - sw_dropped0;
    if (config.faults) {
        result.fault_dropped = config.faults->cellsDropped() - fi_dropped0;
        result.fault_corrupted =
            config.faults->cellsCorrupted() - fi_corrupted0;
    }

    const int64_t lost =
        result.fault_dropped + result.fault_corrupted + result.switch_dropped;
    AN2_ASSERT(injected_total ==
                   delivered_total + sw.bufferedCells() + lost,
               "cell conservation violated: " << injected_total
                                              << " injected, "
                                              << delivered_total
                                              << " delivered, "
                                              << sw.bufferedCells()
                                              << " buffered, " << lost
                                              << " lost to faults");

    result.mean_delay = metrics.meanDelay();
    result.p99_delay =
        metrics.delayStats().count() > 0 ? metrics.delayQuantile(0.99) : 0.0;
    result.injected = metrics.injected();
    result.delivered = metrics.delivered();
    result.measured_slots = config.slots - config.warmup;
    auto denom = static_cast<double>(result.measured_slots) * sw.size();
    result.throughput = static_cast<double>(result.delivered) / denom;
    result.offered = static_cast<double>(result.injected) / denom;
    result.max_occupancy = metrics.maxOccupancy();
    result.per_connection = metrics.deliveredPerConnection();
    result.per_flow = metrics.deliveredPerFlow();
    return result;
}

}  // namespace an2
