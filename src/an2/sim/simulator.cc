#include "an2/sim/simulator.h"

#include "an2/base/error.h"
#include "an2/obs/recorder.h"

namespace an2 {

namespace {

/**
 * The simulator's per-slot work as a SlotDriver, so the switch's batched
 * runSlots() owns the loop. Semantically identical to the historical
 * generate/classify/accept/runSlot sequence: arrivals are classified in
 * generation order (the fault injector's PRNG draws are unchanged), and
 * a dropped arrival emits only counters — no trace-ring events — so
 * filtering before acceptance leaves every observable byte the same.
 */
class SimDriver final : public SlotDriver
{
  public:
    SimDriver(SwitchModel& sw, TrafficGenerator& traffic,
              const SimConfig& config, MetricsCollector& metrics)
        : sw_(sw), traffic_(traffic), config_(config), metrics_(metrics)
    {
    }

    const std::vector<Cell>& beginSlot(SlotTime slot) override
    {
        if (config_.faults)
            config_.faults->beginSlot(slot, &sw_);
        arrivals_.clear();
        traffic_.generate(slot, arrivals_);
        if (!config_.faults) {
            for (const Cell& c : arrivals_) {
                metrics_.noteInjected(c);
                ++injected_;
            }
            return arrivals_;
        }
        accepted_.clear();
        for (const Cell& c : arrivals_) {
            metrics_.noteInjected(c);
            ++injected_;
            if (config_.faults->classifyArrival(c) !=
                fault::FaultInjector::Verdict::Deliver)
                continue;  // lost on the way in: dead port, drop, corrupt
            accepted_.push_back(c);
        }
        return accepted_;
    }

    void endSlot(SlotTime slot, const std::vector<Cell>& departed) override
    {
        obs::Recorder* rec = obs::current();  // hoisted: one load per slot
        for (const Cell& c : departed) {
            metrics_.noteDelivered(c, slot);
            ++delivered_;
            if (rec != nullptr)
                rec->cellDelivered(c, slot);
            if (config_.on_delivered)
                config_.on_delivered(c, slot);
        }
        int buffered = sw_.bufferedCells();
        metrics_.noteOccupancy(buffered);
        obs::setGauge(obs::Gauge::BufferedCells, buffered);
    }

    int64_t injected() const { return injected_; }
    int64_t delivered() const { return delivered_; }

  private:
    SwitchModel& sw_;
    TrafficGenerator& traffic_;
    const SimConfig& config_;
    MetricsCollector& metrics_;
    std::vector<Cell> arrivals_;
    std::vector<Cell> accepted_;  ///< arrivals surviving fault classification
    int64_t injected_ = 0;
    int64_t delivered_ = 0;
};

}  // namespace

SimResult
runSimulation(SwitchModel& sw, TrafficGenerator& traffic,
              const SimConfig& config)
{
    AN2_REQUIRE(config.slots > 0, "simulation needs at least one slot, got "
                                      << config.slots);
    AN2_REQUIRE(config.warmup >= 0,
                "warmup must be non-negative, got " << config.warmup);
    AN2_REQUIRE(config.warmup < config.slots,
                "warmup (" << config.warmup
                           << ") must be shorter than the simulation ("
                           << config.slots
                           << " slots); no slots would be measured");

    MetricsCollector metrics(config.warmup, sw.size());

    // Loss baselines, so a reused switch/injector accounts only this run.
    const int64_t sw_dropped0 = sw.droppedCells();
    const int64_t fi_dropped0 =
        config.faults ? config.faults->cellsDropped() : 0;
    const int64_t fi_corrupted0 =
        config.faults ? config.faults->cellsCorrupted() : 0;

    SimDriver driver(sw, traffic, config, metrics);
    sw.runSlots(0, config.slots, driver);
    const int64_t injected_total = driver.injected();
    const int64_t delivered_total = driver.delivered();

    SimResult result;
    result.switch_dropped = sw.droppedCells() - sw_dropped0;
    if (config.faults) {
        result.fault_dropped = config.faults->cellsDropped() - fi_dropped0;
        result.fault_corrupted =
            config.faults->cellsCorrupted() - fi_corrupted0;
    }

    const int64_t lost =
        result.fault_dropped + result.fault_corrupted + result.switch_dropped;
    AN2_ASSERT(injected_total ==
                   delivered_total + sw.bufferedCells() + lost,
               "cell conservation violated: " << injected_total
                                              << " injected, "
                                              << delivered_total
                                              << " delivered, "
                                              << sw.bufferedCells()
                                              << " buffered, " << lost
                                              << " lost to faults");

    result.mean_delay = metrics.meanDelay();
    result.p99_delay =
        metrics.delayStats().count() > 0 ? metrics.delayQuantile(0.99) : 0.0;
    result.injected = metrics.injected();
    result.delivered = metrics.delivered();
    result.measured_slots = config.slots - config.warmup;
    auto denom = static_cast<double>(result.measured_slots) * sw.size();
    result.throughput = static_cast<double>(result.delivered) / denom;
    result.offered = static_cast<double>(result.injected) / denom;
    result.max_occupancy = metrics.maxOccupancy();
    result.per_connection = metrics.deliveredPerConnection();
    result.per_flow = metrics.deliveredPerFlow();
    return result;
}

}  // namespace an2
