/**
 * @file
 * Input-queued switch with per-input FIFO buffers — the head-of-line
 * blocking baseline of Figures 1 and 3 (paper §2.4).
 *
 * Only the cell at the head of each input FIFO is eligible each slot
 * (window = 1); contention for an output is resolved uniformly at random.
 * A window w > 1 models the Hui & Arthurs / Karol iterative scheme in
 * which an input that loses a round bids its next queued cell, which
 * mitigates — but cannot eliminate — HOL blocking.
 */
#ifndef AN2_SIM_FIFO_SWITCH_H
#define AN2_SIM_FIFO_SWITCH_H

#include <deque>
#include <memory>

#include "an2/base/rng.h"
#include "an2/fabric/crossbar.h"
#include "an2/sim/switch.h"

namespace an2 {

/** FIFO-input-queued switch with optional lookahead window. */
class FifoSwitch final : public SwitchModel
{
  public:
    /**
     * @param n Ports.
     * @param seed PRNG seed for contention resolution.
     * @param window Queue positions eligible per slot (1 = strict FIFO).
     * @param rounds Contention rounds per slot (>= 1; ignored beyond the
     *        window since a loser needs a next cell to bid).
     */
    FifoSwitch(int n, uint64_t seed, int window = 1, int rounds = 1);

    void acceptCell(const Cell& cell) override;
    const std::vector<Cell>& runSlot(SlotTime slot) override;
    int bufferedCells() const override;
    std::string name() const override;
    int size() const override { return n_; }

  private:
    int n_;
    int window_;
    int rounds_;
    std::vector<std::deque<Cell>> queues_;
    Crossbar crossbar_;
    Xoshiro256 rng_;
    std::vector<Cell> departed_;  ///< runSlot return buffer, reused
};

}  // namespace an2

#endif  // AN2_SIM_FIFO_SWITCH_H
