/**
 * @file
 * Input-queued switch with per-input FIFO buffers — the head-of-line
 * blocking baseline of Figures 1 and 3 (paper §2.4).
 *
 * Only the cell at the head of each input FIFO is eligible each slot
 * (window = 1); contention for an output is resolved uniformly at random.
 * A window w > 1 models the Hui & Arthurs / Karol iterative scheme in
 * which an input that loses a round bids its next queued cell, which
 * mitigates — but cannot eliminate — HOL blocking.
 */
#ifndef AN2_SIM_FIFO_SWITCH_H
#define AN2_SIM_FIFO_SWITCH_H

#include <cstdint>
#include <deque>
#include <memory>

#include "an2/base/rng.h"
#include "an2/fabric/crossbar.h"
#include "an2/fault/invariants.h"
#include "an2/sim/switch.h"

namespace an2 {

/** FIFO-input-queued switch with optional lookahead window. */
class FifoSwitch final : public SwitchModel
{
  public:
    /**
     * @param n Ports.
     * @param seed PRNG seed for contention resolution.
     * @param window Queue positions eligible per slot (1 = strict FIFO).
     * @param rounds Contention rounds per slot (>= 1; ignored beyond the
     *        window since a loser needs a next cell to bid).
     */
    FifoSwitch(int n, uint64_t seed, int window = 1, int rounds = 1);

    void acceptCell(const Cell& cell) override;
    const std::vector<Cell>& runSlot(SlotTime slot) override;
    int bufferedCells() const override;
    std::string name() const override;
    int size() const override { return n_; }

    void setInputPortLive(PortId i, bool live) override;
    void setOutputPortLive(PortId j, bool live) override;
    bool inputPortLive(PortId i) const override;
    bool outputPortLive(PortId j) const override;
    int64_t droppedCells() const override { return checker_.dropped(); }

    /** The per-slot invariant ledger (conservation totals). */
    const fault::InvariantChecker& invariants() const { return checker_; }

  private:
    int n_;
    int window_;
    int rounds_;
    std::vector<std::deque<Cell>> queues_;
    Crossbar crossbar_;
    Xoshiro256 rng_;
    std::vector<Cell> departed_;  ///< runSlot return buffer, reused

    // Fault state. A dead input exposes nothing; a head-of-line cell for
    // a dead output blocks the cells behind it (FIFO HOL semantics — the
    // exposed window is truncated at the first dead-output cell).
    std::vector<uint64_t> dead_in_;
    std::vector<uint64_t> dead_out_;
    bool any_dead_ = false;
    fault::InvariantChecker checker_;
};

}  // namespace an2

#endif  // AN2_SIM_FIFO_SWITCH_H
