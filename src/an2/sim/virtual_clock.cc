#include "an2/sim/virtual_clock.h"

#include <algorithm>

#include "an2/base/error.h"

namespace an2 {

VirtualClockSwitch::VirtualClockSwitch(int n)
    : n_(n), queues_(static_cast<size_t>(n))
{
    AN2_REQUIRE(n > 0, "switch size must be positive");
}

void
VirtualClockSwitch::setFlowRate(FlowId flow, double rate)
{
    AN2_REQUIRE(rate > 0.0 && rate <= 1.0, "rate must be in (0,1]");
    rates_[flow] = rate;
}

void
VirtualClockSwitch::setDefaultRate(double rate)
{
    AN2_REQUIRE(rate > 0.0 && rate <= 1.0, "rate must be in (0,1]");
    default_rate_ = rate;
}

void
VirtualClockSwitch::acceptCell(const Cell& cell)
{
    AN2_REQUIRE(cell.output >= 0 && cell.output < n_,
                "cell output " << cell.output << " out of range");
    auto rate_it = rates_.find(cell.flow);
    double rate = rate_it == rates_.end() ? default_rate_ : rate_it->second;

    // Zhang's update: VC <- max(VC, now) + 1/rate. Using max() with the
    // arrival time keeps an idle flow from hoarding priority credit.
    double now = static_cast<double>(cell.arrival_slot);
    double& vc = virtual_clock_[cell.flow];
    vc = std::max(vc, now) + 1.0 / rate;

    queues_[static_cast<size_t>(cell.output)].push(
        {cell, vc, arrivals_seen_++});
    ++buffered_;
}

const std::vector<Cell>&
VirtualClockSwitch::runSlot(SlotTime)
{
    departed_.clear();
    for (auto& q : queues_) {
        if (q.empty())
            continue;
        departed_.push_back(q.top().cell);
        q.pop();
        --buffered_;
    }
    return departed_;
}

int
VirtualClockSwitch::bufferedCells() const
{
    return buffered_;
}

}  // namespace an2
