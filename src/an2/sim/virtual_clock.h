/**
 * @file
 * Virtual clock scheduling (Zhang 1991) on a perfect output-queued
 * switch — the fairness baseline §5.1 compares statistical matching
 * against. Each flow is assigned a rate; every arriving cell is stamped
 * with the flow's virtual clock (advanced by 1/rate per cell), and each
 * output transmits the pending cell with the earliest stamp. The paper's
 * point: virtual clock presumes an output-queued switch where "each
 * output link can select arbitrarily among any of the cells queued for
 * it"; statistical matching achieves comparable allocations in an
 * input-buffered switch.
 */
#ifndef AN2_SIM_VIRTUAL_CLOCK_H
#define AN2_SIM_VIRTUAL_CLOCK_H

#include <map>
#include <queue>
#include <vector>

#include "an2/sim/switch.h"

namespace an2 {

/** Output-queued switch scheduling cells by virtual clock stamps. */
class VirtualClockSwitch final : public SwitchModel
{
  public:
    explicit VirtualClockSwitch(int n);

    /**
     * Assign a flow's guaranteed rate in cells/slot (0 < rate <= 1).
     * Cells of unregistered flows get a default best-effort rate.
     */
    void setFlowRate(FlowId flow, double rate);

    /** Rate used for flows never registered (default 0.01). */
    void setDefaultRate(double rate);

    void acceptCell(const Cell& cell) override;
    const std::vector<Cell>& runSlot(SlotTime slot) override;
    int bufferedCells() const override;
    std::string name() const override { return "VirtualClock(OQ)"; }
    int size() const override { return n_; }

  private:
    struct Stamped
    {
        Cell cell;
        double stamp;
        int64_t arrival_order;  ///< tie-break: FIFO among equal stamps

        bool
        operator>(const Stamped& other) const
        {
            if (stamp != other.stamp)
                return stamp > other.stamp;
            return arrival_order > other.arrival_order;
        }
    };

    using MinHeap = std::priority_queue<Stamped, std::vector<Stamped>,
                                        std::greater<Stamped>>;

    int n_;
    double default_rate_ = 0.01;
    std::map<FlowId, double> rates_;
    std::map<FlowId, double> virtual_clock_;
    std::vector<MinHeap> queues_;
    std::vector<Cell> departed_;  ///< runSlot return buffer, reused
    int buffered_ = 0;
    int64_t arrivals_seen_ = 0;
};

}  // namespace an2

#endif  // AN2_SIM_VIRTUAL_CLOCK_H
