#include "an2/sim/iq_switch.h"

#include <sstream>

#include "an2/base/error.h"

namespace an2 {

InputQueuedSwitch::InputQueuedSwitch(const IqSwitchConfig& config,
                                     std::unique_ptr<Matcher> matcher,
                                     const FrameSchedule* cbr_schedule)
    : config_(config), matcher_(std::move(matcher)),
      cbr_schedule_(cbr_schedule), crossbar_(config.n)
{
    AN2_REQUIRE(config_.n > 0, "switch size must be positive");
    AN2_REQUIRE(config_.output_speedup >= 1, "speedup must be >= 1");
    AN2_REQUIRE(matcher_ != nullptr, "a matcher is required");
    AN2_REQUIRE(config_.output_speedup == 1 || cbr_schedule_ == nullptr,
                "output speedup cannot be combined with a CBR schedule");
    if (cbr_schedule_ != nullptr) {
        AN2_REQUIRE(cbr_schedule_->size() == config_.n,
                    "frame schedule size does not match switch");
    }
    vbr_bufs_.reserve(static_cast<size_t>(config_.n));
    cbr_bufs_.reserve(static_cast<size_t>(config_.n));
    for (int i = 0; i < config_.n; ++i) {
        vbr_bufs_.emplace_back(config_.n);
        cbr_bufs_.emplace_back(config_.n);
    }
    if (config_.output_speedup > 1)
        out_queues_.resize(static_cast<size_t>(config_.n));
}

std::string
InputQueuedSwitch::name() const
{
    std::ostringstream oss;
    oss << "IQ[" << matcher_->name();
    if (config_.output_speedup > 1)
        oss << ",speedup=" << config_.output_speedup;
    if (cbr_schedule_ != nullptr)
        oss << ",CBR";
    if (config_.pipelined)
        oss << ",pipelined";
    oss << "]";
    return oss.str();
}

void
InputQueuedSwitch::acceptCell(const Cell& cell)
{
    AN2_REQUIRE(cell.input >= 0 && cell.input < config_.n,
                "cell input " << cell.input << " out of range");
    if (cell.cls == TrafficClass::CBR) {
        AN2_REQUIRE(cbr_schedule_ != nullptr,
                    "CBR cell arrived at a switch with no frame schedule");
        cbr_bufs_[static_cast<size_t>(cell.input)].enqueue(cell);
    } else {
        vbr_bufs_[static_cast<size_t>(cell.input)].enqueue(cell);
    }
}

std::vector<Cell>
InputQueuedSwitch::serveCbr(SlotTime slot, std::vector<bool>& in_busy,
                            std::vector<bool>& out_busy)
{
    std::vector<Cell> forwarded;
    if (cbr_schedule_ == nullptr)
        return forwarded;
    int fs = static_cast<int>(slot % cbr_schedule_->frameSlots());
    for (PortId i = 0; i < config_.n; ++i) {
        PortId j = cbr_schedule_->outputAt(fs, i);
        if (j == kNoPort)
            continue;
        auto& buf = cbr_bufs_[static_cast<size_t>(i)];
        if (!buf.hasCellFor(j))
            continue;  // idle reservation: the slot falls to VBR
        Cell c = buf.dequeueFor(j);
        in_busy[static_cast<size_t>(i)] = true;
        out_busy[static_cast<size_t>(j)] = true;
        forwarded.push_back(c);
        ++cbr_forwarded_;
    }
    return forwarded;
}

void
InputQueuedSwitch::predictCbrBusy(SlotTime slot, std::vector<bool>& in_busy,
                                  std::vector<bool>& out_busy) const
{
    // Ports the frame schedule will claim in `slot`, predicted from the
    // CBR cells queued right now (CBR buffers only drain at their own
    // scheduled slots, so a cell present now is still present then; a
    // cell arriving later makes the prediction optimistic, and the
    // transmit path re-checks with CBR priority).
    if (cbr_schedule_ == nullptr)
        return;
    int fs = static_cast<int>(slot % cbr_schedule_->frameSlots());
    for (PortId i = 0; i < config_.n; ++i) {
        PortId j = cbr_schedule_->outputAt(fs, i);
        if (j == kNoPort || !cbr_bufs_[static_cast<size_t>(i)].hasCellFor(j))
            continue;
        in_busy[static_cast<size_t>(i)] = true;
        out_busy[static_cast<size_t>(j)] = true;
    }
}

Matching
InputQueuedSwitch::computeVbrMatch(const std::vector<bool>& in_busy,
                                   const std::vector<bool>& out_busy)
{
    const int n = config_.n;
    RequestMatrix req(n);
    for (PortId i = 0; i < n; ++i) {
        if (in_busy[static_cast<size_t>(i)])
            continue;
        const auto& buf = vbr_bufs_[static_cast<size_t>(i)];
        if (buf.totalCells() == 0)
            continue;
        for (PortId j = 0; j < n; ++j) {
            if (out_busy[static_cast<size_t>(j)])
                continue;
            int count = buf.cellCountFor(j);
            if (count > 0)
                req.set(i, j, count);
        }
    }
    Matching m = matcher_->match(req);
    AN2_ASSERT(m.isLegalFor(req), "matcher returned illegal match");
    return m;
}

std::vector<Cell>
InputQueuedSwitch::runSlot(SlotTime slot)
{
    const int n = config_.n;

    // Phase 1: CBR service from the frame schedule.
    std::vector<bool> in_busy(static_cast<size_t>(n), false);
    std::vector<bool> out_busy(static_cast<size_t>(n), false);
    std::vector<Cell> forwarded = serveCbr(slot, in_busy, out_busy);

    // Phase 2: the VBR matching for this slot — computed now, or (in
    // pipelined mode) taken from the previous slot's computation.
    std::vector<std::pair<PortId, PortId>> vbr_pairs;
    if (!config_.pipelined) {
        for (auto [i, j] : computeVbrMatch(in_busy, out_busy).pairs())
            vbr_pairs.emplace_back(i, j);
    } else if (pending_vbr_ != nullptr) {
        for (auto [i, j] : pending_vbr_->pairs()) {
            // A CBR cell that arrived after the matching was computed
            // reclaims its scheduled ports: CBR has priority.
            if (in_busy[static_cast<size_t>(i)] ||
                out_busy[static_cast<size_t>(j)])
                continue;
            vbr_pairs.emplace_back(i, j);
        }
    }

    // Phase 3: forward across the crossbar.
    Matching combined(n, n, config_.output_speedup);
    for (const Cell& c : forwarded)
        combined.add(c.input, c.output);
    std::vector<Cell> vbr_cells;
    for (auto [i, j] : vbr_pairs) {
        combined.add(i, j);
        AN2_ASSERT(vbr_bufs_[static_cast<size_t>(i)].hasCellFor(j),
                   "pipelined matching references a vanished cell");
        Cell c = vbr_bufs_[static_cast<size_t>(i)].dequeueFor(j);
        ++vbr_forwarded_;
        if (cbr_schedule_ != nullptr) {
            int fs = static_cast<int>(slot % cbr_schedule_->frameSlots());
            if (cbr_schedule_->outputAt(fs, i) == j)
                ++vbr_in_cbr_slots_;
        }
        vbr_cells.push_back(c);
    }
    crossbar_.configure(combined);
    for (const Cell& c : forwarded)
        crossbar_.forward(c);
    for (const Cell& c : vbr_cells)
        crossbar_.forward(c);
    forwarded.insert(forwarded.end(), vbr_cells.begin(), vbr_cells.end());

    // Pipelined mode: while this slot's cells cross the fabric, the
    // scheduler computes the matching the *next* slot will use.
    if (config_.pipelined) {
        std::vector<bool> next_in(static_cast<size_t>(n), false);
        std::vector<bool> next_out(static_cast<size_t>(n), false);
        predictCbrBusy(slot + 1, next_in, next_out);
        pending_vbr_ =
            std::make_unique<Matching>(computeVbrMatch(next_in, next_out));
    }

    // Departures: direct with a plain crossbar; via output queues with a
    // replicated fabric (one cell leaves each output link per slot).
    if (config_.output_speedup == 1)
        return forwarded;

    for (const Cell& c : forwarded)
        out_queues_[static_cast<size_t>(c.output)].push(c);
    std::vector<Cell> departed;
    for (auto& q : out_queues_) {
        q.noteOccupancy();
        if (!q.empty())
            departed.push_back(q.pop());
    }
    return departed;
}

int
InputQueuedSwitch::bufferedCells() const
{
    int total = 0;
    for (const auto& b : vbr_bufs_)
        total += b.totalCells();
    for (const auto& b : cbr_bufs_)
        total += b.totalCells();
    for (const auto& q : out_queues_)
        total += q.size();
    return total;
}

}  // namespace an2
