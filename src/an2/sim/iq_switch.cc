#include "an2/sim/iq_switch.h"

#include <sstream>

#include "an2/base/error.h"
#include "an2/matching/wordset.h"
#include "an2/obs/recorder.h"

namespace an2 {

InputQueuedSwitch::InputQueuedSwitch(const IqSwitchConfig& config,
                                     std::unique_ptr<Matcher> matcher,
                                     const FrameSchedule* cbr_schedule)
    : config_(config), matcher_(std::move(matcher)),
      cbr_schedule_(cbr_schedule), crossbar_(config.n), vbr_req_(config.n),
      masked_req_(config.n), busy_words_(wordset::numWords(config.n)),
      in_busy_(static_cast<size_t>(busy_words_), 0),
      out_busy_(static_cast<size_t>(busy_words_), 0),
      next_in_(static_cast<size_t>(busy_words_), 0),
      next_out_(static_cast<size_t>(busy_words_), 0),
      vbr_match_(config.n, config.n),
      combined_(config.n, config.n, config.output_speedup),
      pending_vbr_(config.n, config.n),
      dead_in_(static_cast<size_t>(busy_words_), 0),
      dead_out_(static_cast<size_t>(busy_words_), 0)
{
    AN2_REQUIRE(config_.n > 0, "switch size must be positive");
    AN2_REQUIRE(config_.output_speedup >= 1, "speedup must be >= 1");
    AN2_REQUIRE(matcher_ != nullptr, "a matcher is required");
    AN2_REQUIRE(config_.output_speedup == 1 || cbr_schedule_ == nullptr,
                "output speedup cannot be combined with a CBR schedule");
    if (cbr_schedule_ != nullptr) {
        AN2_REQUIRE(cbr_schedule_->size() == config_.n,
                    "frame schedule size does not match switch");
    }
    vbr_bufs_.reserve(static_cast<size_t>(config_.n));
    cbr_bufs_.reserve(static_cast<size_t>(config_.n));
    for (int i = 0; i < config_.n; ++i) {
        vbr_bufs_.emplace_back(config_.n);
        cbr_bufs_.emplace_back(config_.n);
    }
    if (config_.output_speedup > 1)
        out_queues_.resize(static_cast<size_t>(config_.n));
    forwarded_.reserve(static_cast<size_t>(config_.n) *
                       static_cast<size_t>(config_.output_speedup));
}

std::string
InputQueuedSwitch::name() const
{
    std::ostringstream oss;
    oss << "IQ[" << matcher_->name();
    if (config_.output_speedup > 1)
        oss << ",speedup=" << config_.output_speedup;
    if (cbr_schedule_ != nullptr)
        oss << ",CBR";
    if (config_.pipelined)
        oss << ",pipelined";
    oss << "]";
    return oss.str();
}

void
InputQueuedSwitch::setInputPortLive(PortId i, bool live)
{
    AN2_REQUIRE(i >= 0 && i < config_.n,
                "input port " << i << " out of range");
    if (live)
        wordset::clearBit(dead_in_.data(), i);
    else
        wordset::setBit(dead_in_.data(), i);
    vbr_req_.setInputLive(i, live);
    any_dead_ = wordset::popcountAll(dead_in_.data(), busy_words_) +
                    wordset::popcountAll(dead_out_.data(), busy_words_) >
                0;
}

void
InputQueuedSwitch::setOutputPortLive(PortId j, bool live)
{
    AN2_REQUIRE(j >= 0 && j < config_.n,
                "output port " << j << " out of range");
    if (live)
        wordset::clearBit(dead_out_.data(), j);
    else
        wordset::setBit(dead_out_.data(), j);
    vbr_req_.setOutputLive(j, live);
    any_dead_ = wordset::popcountAll(dead_in_.data(), busy_words_) +
                    wordset::popcountAll(dead_out_.data(), busy_words_) >
                0;
}

bool
InputQueuedSwitch::inputPortLive(PortId i) const
{
    return !wordset::testBit(dead_in_.data(), i);
}

bool
InputQueuedSwitch::outputPortLive(PortId j) const
{
    return !wordset::testBit(dead_out_.data(), j);
}

void
InputQueuedSwitch::acceptCell(const Cell& cell)
{
    AN2_REQUIRE(cell.input >= 0 && cell.input < config_.n,
                "cell input " << cell.input << " out of range");
    if (any_dead_ && (wordset::testBit(dead_in_.data(), cell.input) ||
                      wordset::testBit(dead_out_.data(), cell.output))) {
        // Dead port: the cell is lost at the line card, not buffered.
        checker_.noteDropped();
        if (cell.cls == TrafficClass::CBR)
            ++cbr_cells_lost_;
        obs::count(obs::Counter::CellsDroppedByFaults);
        return;
    }
    checker_.noteAccepted();
    if (cell.cls == TrafficClass::CBR) {
        AN2_REQUIRE(cbr_schedule_ != nullptr,
                    "CBR cell arrived at a switch with no frame schedule");
        cbr_bufs_[static_cast<size_t>(cell.input)].enqueue(cell);
    } else {
        vbr_bufs_[static_cast<size_t>(cell.input)].enqueue(cell);
        // Patch the persistent request matrix; the matching dequeue-side
        // decrement happens in forwardVbr().
        vbr_req_.increment(cell.input, cell.output);
    }
    obs::cellEnqueued(cell);
}

int
InputQueuedSwitch::serveCbr(SlotTime slot)
{
    int fs = static_cast<int>(slot % cbr_schedule_->frameSlots());
    int served = 0;
    for (PortId i = 0; i < config_.n; ++i) {
        PortId j = cbr_schedule_->outputAt(fs, i);
        if (j == kNoPort)
            continue;
        // A reservation whose schedule has not yet been repaired may
        // still pair a dead port; it cannot be served.
        if (any_dead_ && (wordset::testBit(dead_in_.data(), i) ||
                          wordset::testBit(dead_out_.data(), j)))
            continue;
        auto& buf = cbr_bufs_[static_cast<size_t>(i)];
        if (!buf.hasCellFor(j))
            continue;  // idle reservation: the slot falls to VBR
        forwarded_.push_back(buf.dequeueFor(j));
        obs::cellDequeued(forwarded_.back());
        obs::count(obs::Counter::CbrCellsForwarded);
        wordset::setBit(in_busy_.data(), i);
        wordset::setBit(out_busy_.data(), j);
        ++cbr_forwarded_;
        ++served;
    }
    return served;
}

bool
InputQueuedSwitch::predictCbrBusy(SlotTime slot)
{
    // Ports the frame schedule will claim in `slot`, predicted from the
    // CBR cells queued right now (CBR buffers only drain at their own
    // scheduled slots, so a cell present now is still present then; a
    // cell arriving later makes the prediction optimistic, and the
    // transmit path re-checks with CBR priority).
    int fs = static_cast<int>(slot % cbr_schedule_->frameSlots());
    bool any = false;
    for (PortId i = 0; i < config_.n; ++i) {
        PortId j = cbr_schedule_->outputAt(fs, i);
        if (j == kNoPort || !cbr_bufs_[static_cast<size_t>(i)].hasCellFor(j))
            continue;
        if (any_dead_ && (wordset::testBit(dead_in_.data(), i) ||
                          wordset::testBit(dead_out_.data(), j)))
            continue;  // dead pairing cannot claim ports next slot
        wordset::setBit(next_in_.data(), i);
        wordset::setBit(next_out_.data(), j);
        any = true;
    }
    return any;
}

void
InputQueuedSwitch::computeVbrMatch(const uint64_t* in_busy,
                                   const uint64_t* out_busy, bool any_busy,
                                   Matching& out)
{
    const RequestMatrix* req = &vbr_req_;
    if (any_busy) {
        // Copy-assign reuses masked_req_'s capacity (same dimensions
        // every slot), then strip the CBR-claimed ports.
        masked_req_ = vbr_req_;
        wordset::forEachSet(in_busy, busy_words_,
                            [&](int i) { masked_req_.clearRow(i); });
        wordset::forEachSet(out_busy, busy_words_,
                            [&](int j) { masked_req_.clearColumn(j); });
        req = &masked_req_;
        if (obs::Recorder* rec = obs::current())
            rec->cbrMasked(wordset::popcountAll(in_busy, busy_words_),
                           wordset::popcountAll(out_busy, busy_words_));
    }
    matcher_->matchInto(*req, out);
    AN2_ASSERT(out.isLegalFor(*req), "matcher returned illegal match");
}

void
InputQueuedSwitch::forwardVbr(SlotTime slot, PortId i, PortId j)
{
    AN2_ASSERT(vbr_bufs_[static_cast<size_t>(i)].hasCellFor(j),
               "pipelined matching references a vanished cell");
    Cell c = vbr_bufs_[static_cast<size_t>(i)].dequeueFor(j);
    obs::cellDequeued(c);
    vbr_req_.decrement(i, j);
    ++vbr_forwarded_;
    if (cbr_schedule_ != nullptr) {
        int fs = static_cast<int>(slot % cbr_schedule_->frameSlots());
        if (cbr_schedule_->outputAt(fs, i) == j)
            ++vbr_in_cbr_slots_;
    }
    forwarded_.push_back(c);
}

const std::vector<Cell>&
InputQueuedSwitch::runSlot(SlotTime slot)
{
    const int n = config_.n;
    forwarded_.clear();
    obs::slotBegin(slot);

    // Phase 1: CBR service from the frame schedule.
    bool cbr_busy = false;
    if (cbr_schedule_ != nullptr) {
        wordset::clearAll(in_busy_.data(), busy_words_);
        wordset::clearAll(out_busy_.data(), busy_words_);
        cbr_busy = serveCbr(slot) > 0;
    }
    const size_t n_cbr = forwarded_.size();

    // Phase 2: the VBR matching for this slot — computed now, or (in
    // pipelined mode) taken from the previous slot's computation — is
    // merged with the CBR pairings into the crossbar setting.
    combined_.reset(n, n, config_.output_speedup);
    for (size_t k = 0; k < n_cbr; ++k)
        combined_.add(forwarded_[k].input, forwarded_[k].output);
    if (!config_.pipelined) {
        computeVbrMatch(in_busy_.data(), out_busy_.data(), cbr_busy,
                        vbr_match_);
        for (PortId i = 0; i < n; ++i) {
            PortId j = vbr_match_.outputOf(i);
            if (j == kNoPort)
                continue;
            combined_.add(i, j);
            forwardVbr(slot, i, j);
        }
    } else if (has_pending_) {
        for (PortId i = 0; i < n; ++i) {
            PortId j = pending_vbr_.outputOf(i);
            if (j == kNoPort)
                continue;
            // A CBR cell that arrived after the matching was computed
            // reclaims its scheduled ports: CBR has priority.
            if (cbr_busy && (wordset::testBit(in_busy_.data(), i) ||
                             wordset::testBit(out_busy_.data(), j)))
                continue;
            // A port killed after the matching was computed (mask flip
            // mid-pipeline) invalidates its pairings.
            if (any_dead_ && (wordset::testBit(dead_in_.data(), i) ||
                              wordset::testBit(dead_out_.data(), j)))
                continue;
            combined_.add(i, j);
            forwardVbr(slot, i, j);
        }
    }

    // Phase 3: forward across the crossbar (CBR cells first, then VBR,
    // exactly the order they were appended to forwarded_).
    crossbar_.configure(combined_);
    for (const Cell& c : forwarded_)
        crossbar_.forward(c);

    // Pipelined mode: while this slot's cells cross the fabric, the
    // scheduler computes the matching the *next* slot will use.
    if (config_.pipelined) {
        bool any_next = false;
        if (cbr_schedule_ != nullptr) {
            wordset::clearAll(next_in_.data(), busy_words_);
            wordset::clearAll(next_out_.data(), busy_words_);
            any_next = predictCbrBusy(slot + 1);
        }
        computeVbrMatch(next_in_.data(), next_out_.data(), any_next,
                        pending_vbr_);
        has_pending_ = true;
    }

    // Departures: direct with a plain crossbar; via output queues with a
    // replicated fabric (one cell leaves each output link per slot).
    const std::vector<Cell>* result = &forwarded_;
    if (config_.output_speedup > 1) {
        for (const Cell& c : forwarded_)
            out_queues_[static_cast<size_t>(c.output)].push(c);
        departed_.clear();
        for (auto& q : out_queues_) {
            q.noteOccupancy();
            if (!q.empty())
                departed_.push_back(q.pop());
        }
        result = &departed_;
    }

    // Always-on invariants: the crossbar setting never touches a dead
    // port, and the conservation ledger balances every slot.
    if (any_dead_)
        fault::InvariantChecker::checkMatchingAvoidsDead(
            combined_, dead_in_.data(), dead_out_.data(), "InputQueuedSwitch");
    checker_.noteDeparted(static_cast<int64_t>(result->size()));
    checker_.checkConservation(bufferedCells(), "InputQueuedSwitch");

    // Slot-boundary probes; the periodic snapshot samples the post-slot
    // queue state.
    if (obs::Recorder* rec = obs::current()) {
        rec->endSlot(static_cast<int>(forwarded_.size()),
                     static_cast<int>(n_cbr),
                     combined_.size() - static_cast<int>(n_cbr));
        if (rec->snapshotDue(slot))
            takeSnapshot(*rec, slot);
    }
    return *result;
}

void
InputQueuedSwitch::runSlots(SlotTime first, SlotTime count,
                            SlotDriver& driver)
{
    // Identical to the base loop, but compiled against the final class:
    // the per-cell acceptCell calls and the runSlot body are direct
    // (inlinable) calls here, so a k-slot batch pays one virtual
    // dispatch instead of ~arrivals+1 per slot.
    for (SlotTime s = first; s < first + count; ++s) {
        const std::vector<Cell>& arrivals = driver.beginSlot(s);
        for (const Cell& c : arrivals)
            acceptCell(c);
        driver.endSlot(s, runSlot(s));
    }
}

void
InputQueuedSwitch::fillOccupancy(int32_t* voq, int32_t* backlog) const
{
    const int n = config_.n;
    for (PortId j = 0; j < n; ++j)
        backlog[j] = out_queues_.empty()
                         ? 0
                         : static_cast<int32_t>(
                               out_queues_[static_cast<size_t>(j)].size());
    for (PortId i = 0; i < n; ++i) {
        for (PortId j = 0; j < n; ++j) {
            int32_t cells =
                vbr_bufs_[static_cast<size_t>(i)].cellCountFor(j) +
                cbr_bufs_[static_cast<size_t>(i)].cellCountFor(j);
            voq[static_cast<size_t>(i) * static_cast<size_t>(n) +
                static_cast<size_t>(j)] = cells;
            backlog[j] += cells;
        }
    }
}

void
InputQueuedSwitch::takeSnapshot(obs::Recorder& rec, SlotTime slot) const
{
    AN2_REQUIRE(rec.ports() == config_.n,
                "recorder snapshot ports do not match the switch size");
    fillOccupancy(rec.voqMatrix(), rec.outputBacklog());
    rec.commitSnapshot(slot, bufferedCells());
}

int
InputQueuedSwitch::bufferedCells() const
{
    int total = 0;
    for (const auto& b : vbr_bufs_)
        total += b.totalCells();
    // CBR cells can only be accepted when a frame schedule is present,
    // so the CBR buffers are provably empty otherwise (and this runs
    // twice per slot on the conservation-check path).
    if (cbr_schedule_ != nullptr)
        for (const auto& b : cbr_bufs_)
            total += b.totalCells();
    for (const auto& q : out_queues_)
        total += q.size();
    return total;
}

}  // namespace an2
