/**
 * @file
 * The single-switch slot-synchronous simulation harness: wires a traffic
 * generator into a switch model and collects metrics, the way the paper's
 * §3.5 evaluation does.
 */
#ifndef AN2_SIM_SIMULATOR_H
#define AN2_SIM_SIMULATOR_H

#include <functional>
#include <map>

#include "an2/base/matrix.h"
#include "an2/base/types.h"
#include "an2/fault/injector.h"
#include "an2/sim/metrics.h"
#include "an2/sim/switch.h"
#include "an2/sim/traffic.h"

namespace an2 {

/** Simulation run parameters. */
struct SimConfig
{
    /** Total slots to simulate. */
    SlotTime slots = 100'000;

    /** Cells injected before this slot are excluded from metrics. */
    SlotTime warmup = 10'000;

    /** Optional observer invoked for every delivered cell. */
    std::function<void(const Cell&, SlotTime)> on_delivered;

    /**
     * Optional fault injector (not owned). When set, its scripted events
     * are applied at each slot boundary (dead ports propagate into the
     * switch via SwitchModel::set*PortLive) and every generated cell is
     * classified before reaching the switch: cells touching a dead port
     * or losing the drop/corrupt draw never arrive. Conservation then
     * reads injected = delivered + buffered + dropped (all causes).
     */
    fault::FaultInjector* faults = nullptr;
};

/** Results of one simulation run. */
struct SimResult
{
    /** Mean queueing delay in slots (measured cells only). */
    double mean_delay = 0.0;

    /** 99th-percentile delay in slots. */
    double p99_delay = 0.0;

    /** Cells injected / delivered after warmup. */
    int64_t injected = 0;
    int64_t delivered = 0;

    /** Delivered cells per output link per measured slot (utilization). */
    double throughput = 0.0;

    /** Injected cells per input link per measured slot. */
    double offered = 0.0;

    /** Peak total buffer occupancy. */
    int max_occupancy = 0;

    /**
     * Delivered cells per (input, output) connection (post-warmup),
     * as a dense N x N matrix indexed [input][output].
     */
    Matrix<int64_t> per_connection;

    /** Delivered cells per flow (post-warmup). */
    std::map<FlowId, int64_t> per_flow;

    /** Slots over which metrics were accumulated. */
    SlotTime measured_slots = 0;

    // ---- fault accounting (whole run, warmup included) ----------------

    /** Cells lost before the switch: dead port or drop draw. */
    int64_t fault_dropped = 0;

    /** Cells discarded for a corrupted header (HEC check). */
    int64_t fault_corrupted = 0;

    /** Cells the switch itself discarded (its ports died). */
    int64_t switch_dropped = 0;
};

/**
 * Run `traffic` through `sw` for config.slots slots.
 *
 * Verifies cell conservation (injected = delivered + still buffered) and
 * returns the collected metrics.
 */
SimResult runSimulation(SwitchModel& sw, TrafficGenerator& traffic,
                        const SimConfig& config);

}  // namespace an2

#endif  // AN2_SIM_SIMULATOR_H
