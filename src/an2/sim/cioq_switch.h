/**
 * @file
 * Combined input-output queued (CIOQ) switch: VOQ inputs, a pluggable
 * matcher run S times per slot (crossbar speedup S, Cogill & Lall), and
 * per-output, per-class queues drained at one cell per output per slot.
 *
 * Slot sequence:
 *  1. Up to `speedup` matching phases. Each phase computes a matching
 *     over the live request matrix, configures the crossbar, and moves
 *     the matched cells from the VOQs into the output queues — so an
 *     input can send (and an output receive) up to S cells per slot.
 *  2. Output service. Every live output transmits at most one cell,
 *     chosen among its three class queues (CBR > VBR > best-effort) by
 *     strict priority or deterministic weighted round-robin.
 *
 * With a maximal matcher and S = 2 the mean delay tracks the ideal
 * output-queued switch (the Cogill–Lall bound); S = 1 degenerates to an
 * input-queued switch with an output queue, S >= N would emulate output
 * queueing exactly.
 *
 * The request matrix is persistent (incremented on arrival, decremented
 * as cells cross), the output queues are preallocated rings, and every
 * per-slot scratch buffer is reused: steady-state runSlot() performs no
 * heap allocation. Dead ports follow the IQ switch's contract: arrivals
 * at dead ports are dropped at the line card, matchers never grant a
 * dead port, and a dead output holds its queues until revival.
 */
#ifndef AN2_SIM_CIOQ_SWITCH_H
#define AN2_SIM_CIOQ_SWITCH_H

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "an2/base/ring.h"
#include "an2/fabric/crossbar.h"
#include "an2/fault/invariants.h"
#include "an2/matching/matcher.h"
#include "an2/queueing/voq.h"
#include "an2/sim/switch.h"

namespace an2 {

namespace obs {
class Recorder;
}  // namespace obs

/** How a CIOQ output picks among its class queues each slot. */
enum class ServiceDiscipline : uint8_t {
    Strict,  ///< CBR before VBR before best-effort, always
    Wrr,     ///< weighted round-robin over non-empty classes
};

/** Configuration for a CioqSwitch. */
struct CioqSwitchConfig
{
    /** Switch size N. */
    int n = 16;

    /** Matching phases per slot (crossbar speedup), 1..4. */
    int speedup = 2;

    /** Output scheduling discipline across the class queues. */
    ServiceDiscipline service = ServiceDiscipline::Strict;

    /** WRR weights per TrafficClass (cells served before the pointer
        advances); ignored under strict priority. */
    std::array<int, kNumTrafficClasses> wrr_weights = {4, 2, 1};
};

/** CIOQ switch: VOQs + matcher at speedup S + per-class output queues. */
class CioqSwitch final : public SwitchModel
{
  public:
    CioqSwitch(const CioqSwitchConfig& config,
               std::unique_ptr<Matcher> matcher);

    void acceptCell(const Cell& cell) override;
    const std::vector<Cell>& runSlot(SlotTime slot) override;
    void runSlots(SlotTime first, SlotTime count,
                  SlotDriver& driver) override;
    int bufferedCells() const override;
    std::string name() const override;
    int size() const override { return config_.n; }

    void setInputPortLive(PortId i, bool live) override;
    void setOutputPortLive(PortId j, bool live) override;
    bool inputPortLive(PortId i) const override;
    bool outputPortLive(PortId j) const override;
    int64_t droppedCells() const override { return checker_.dropped(); }

    /** The per-slot invariant ledger (conservation totals). */
    const fault::InvariantChecker& invariants() const { return checker_; }

    /** The scheduler run each phase. */
    Matcher& matcher() { return *matcher_; }

    /** The persistent request matrix (patched incrementally). */
    const RequestMatrix& requests() const { return req_; }

    /** Matching phases executed so far (<= speedup per slot). */
    int64_t phasesRun() const { return phases_run_; }

    /** Largest single-output backlog (all classes) seen at any slot
        boundary. */
    int64_t outputQueueHighWaterMark() const { return out_hwm_; }

    /** Cells currently queued at output j in class `cls`. */
    int outputQueueDepth(PortId j, TrafficClass cls) const
    {
        return static_cast<int>(outQueue(j, cls).size());
    }

    /** VOQ occupancy plus output-queue backlog. */
    void fillOccupancy(int32_t* voq, int32_t* backlog) const override;

  private:
    RingQueue<Cell>& outQueue(PortId j, TrafficClass cls)
    {
        return out_q_[static_cast<size_t>(j) * kNumTrafficClasses +
                      static_cast<size_t>(cls)];
    }

    const RingQueue<Cell>& outQueue(PortId j, TrafficClass cls) const
    {
        return out_q_[static_cast<size_t>(j) * kNumTrafficClasses +
                      static_cast<size_t>(cls)];
    }

    /** Serve one cell from output j per its discipline; false if every
        class queue at j is empty. */
    bool serveOutput(PortId j);

    /** Fill the recorder's VOQ/backlog scratch and commit one snapshot
        line for `slot`. */
    void takeSnapshot(obs::Recorder& rec, SlotTime slot) const;

    CioqSwitchConfig config_;
    std::unique_ptr<Matcher> matcher_;
    std::vector<InputBuffer> bufs_;
    Crossbar crossbar_;

    /** count(i,j) = cells queued at input i for output j (all classes).
        Incremented in acceptCell, decremented as cells cross. */
    RequestMatrix req_;

    /** Per-output, per-class FIFO rings, class-major within an output. */
    std::vector<RingQueue<Cell>> out_q_;

    // WRR state per output: the class the pointer rests on and the
    // credit it has left there.
    std::vector<uint8_t> wrr_cls_;
    std::vector<int32_t> wrr_credit_;

    // Per-slot scratch, reused so steady-state slots never allocate.
    Matching match_;               ///< one phase's matching
    std::vector<Cell> departed_;   ///< runSlot return buffer

    // Fault state, mirrored into req_'s liveness masks.
    int mask_words_;
    std::vector<uint64_t> dead_in_;
    std::vector<uint64_t> dead_out_;
    bool any_dead_ = false;
    fault::InvariantChecker checker_;

    int64_t phases_run_ = 0;
    int64_t out_hwm_ = 0;
};

}  // namespace an2

#endif  // AN2_SIM_CIOQ_SWITCH_H
