/**
 * @file
 * Measurement plumbing for the switch simulations: queueing delay,
 * per-connection and per-flow throughput, buffer occupancy.
 */
#ifndef AN2_SIM_METRICS_H
#define AN2_SIM_METRICS_H

#include <cstdint>
#include <map>

#include "an2/base/flat_counts.h"
#include "an2/base/matrix.h"
#include "an2/base/stats.h"
#include "an2/base/types.h"
#include "an2/cell/cell.h"

namespace an2 {

/** Collects simulation measurements after a configurable warmup. */
class MetricsCollector
{
  public:
    /**
     * @param warmup_slots Cells injected before this slot are ignored,
     *        eliminating the initial transient (paper §3.5 does the same).
     * @param ports Switch size N; per-connection counts are kept in a
     *        dense N x N matrix (a map lookup per delivered cell was the
     *        collector's hot path).
     * @param delay_hist_bins Number of 1-slot histogram bins for delay
     *        quantiles; delays beyond this land in the overflow bucket.
     */
    MetricsCollector(SlotTime warmup_slots, int ports,
                     int delay_hist_bins = 16384);

    /** Record a cell injected into the switch. */
    void noteInjected(const Cell& cell);

    /** Record a cell delivered from output `output` at slot `slot`. */
    void noteDelivered(const Cell& cell, SlotTime slot);

    /** Record total buffered cells at a slot boundary. */
    void noteOccupancy(int buffered_cells);

    /** Cells injected after warmup. */
    int64_t injected() const { return injected_; }

    /** Cells delivered after warmup (regardless of injection time). */
    int64_t delivered() const { return delivered_; }

    /** Mean queueing delay in slots over measured cells. */
    double meanDelay() const { return delay_.mean(); }

    /** Delay quantile (e.g. 0.99) in slots. */
    double delayQuantile(double q) const { return delay_hist_.quantile(q); }

    /** Full delay statistics. */
    const RunningStats& delayStats() const { return delay_; }

    /** Largest total buffer occupancy observed. */
    int maxOccupancy() const { return max_occupancy_; }

    /**
     * Measured cells delivered per (input, output) connection, as a
     * dense ports x ports matrix indexed [input][output].
     */
    const Matrix<int64_t>& deliveredPerConnection() const
    {
        return per_connection_;
    }

    /** Measured cells delivered per flow (materialized per call). */
    std::map<FlowId, int64_t> deliveredPerFlow() const
    {
        return per_flow_.toMap();
    }

    /** First slot at which measurement starts. */
    SlotTime warmupSlots() const { return warmup_; }

  private:
    static int checkPorts(int ports);

    SlotTime warmup_;
    int64_t injected_ = 0;
    int64_t delivered_ = 0;
    RunningStats delay_;
    Histogram delay_hist_;
    int max_occupancy_ = 0;
    Matrix<int64_t> per_connection_;
    /**
     * Per-flow delivery counts in a presized flat table: incrementing a
     * flow seen before costs no allocation (a std::map here allocated a
     * node on first touch of each flow mid-run). Sized for ~2 flows per
     * connection; rarer populations rehash once and stay flat after.
     */
    FlatCounts per_flow_;
};

}  // namespace an2

#endif  // AN2_SIM_METRICS_H
