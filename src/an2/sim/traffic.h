/**
 * @file
 * Workload generators for the single-switch experiments (paper §3.5).
 *
 * Each generator produces at most one cell per input per slot (cells
 * arrive at link speed). Offered load is the probability that a cell
 * arrives on a given link in a given slot. Generators register one VBR
 * flow per (input, output) connection they use, so per-flow FIFO order
 * and per-connection throughput are measurable.
 */
#ifndef AN2_SIM_TRAFFIC_H
#define AN2_SIM_TRAFFIC_H

#include <istream>
#include <memory>
#include <string>
#include <vector>

#include "an2/base/matrix.h"
#include "an2/base/rng.h"
#include "an2/cell/cell.h"
#include "an2/cell/flow.h"

namespace an2 {

/** Produces the cells arriving at each input in each slot. */
class TrafficGenerator
{
  public:
    virtual ~TrafficGenerator() = default;

    /**
     * Append the cells arriving in `slot` to `out` (at most one per
     * input), fully stamped (flow, ports, inject_slot, seq).
     */
    virtual void generate(SlotTime slot, std::vector<Cell>& out) = 0;

    /** Workload name for reports. */
    virtual std::string name() const = 0;

    /** Flows this generator injects on. */
    const FlowTable& flows() const { return flows_; }

    /** Cells injected so far. */
    int64_t cellsInjected() const { return cells_injected_; }

  protected:
    TrafficGenerator(int n_inputs, int n_outputs);

    /** Build and account a VBR cell on the (i,j) connection flow. */
    Cell makeCell(PortId i, PortId j, SlotTime slot);

    /**
     * Build and account a cell of class `cls` on the (i,j) connection
     * flow. A connection's class is fixed by its first cell (the flow
     * registers with that class); callers must pass a class that is a
     * pure function of (i,j).
     */
    Cell makeCell(PortId i, PortId j, SlotTime slot, TrafficClass cls);

    int n_inputs_;
    int n_outputs_;

  private:
    /**
     * Per-connection state, one record so stamping a cell touches one
     * cache line: the lazily-created flow id and the next FIFO sequence
     * number.
     */
    struct ConnState
    {
        FlowId flow = kNoFlow;
        int64_t seq = 0;
    };

    FlowTable flows_;
    Matrix<ConnState> conn_;
    int64_t cells_injected_ = 0;
};

/**
 * Bernoulli-uniform workload (Figure 3): every input independently
 * receives a cell with probability `load` each slot; destinations are
 * uniform over all outputs.
 */
class UniformTraffic final : public TrafficGenerator
{
  public:
    UniformTraffic(int n, double load, uint64_t seed);

    void generate(SlotTime slot, std::vector<Cell>& out) override;
    std::string name() const override;

  private:
    double load_;
    Xoshiro256 rng_;
};

/**
 * Bernoulli-uniform workload carrying a CBR/VBR/best-effort mix for the
 * CIOQ per-class service experiments. Arrivals are drawn exactly as in
 * UniformTraffic (same seed, same PRNG stream — common random numbers
 * across architectures); each connection's class is a pure splitmix64
 * hash of (i, j) against the mix fractions, so the class assignment is
 * deterministic and independent of the arrival draws. No frame schedule
 * is involved: CBR cells here are simply the top service class at a
 * CIOQ/OQ output (do not offer them to a schedule-less IQ switch).
 */
class MultiClassUniformTraffic final : public TrafficGenerator
{
  public:
    /**
     * @param n Switch size.
     * @param load Arrival probability per input per slot (all classes).
     * @param seed PRNG seed.
     * @param cbr_fraction Fraction of connections assigned CBR.
     * @param be_fraction Fraction assigned best-effort; the rest is VBR.
     */
    MultiClassUniformTraffic(int n, double load, uint64_t seed,
                             double cbr_fraction = 0.2,
                             double be_fraction = 0.3);

    void generate(SlotTime slot, std::vector<Cell>& out) override;
    std::string name() const override;

    /** The deterministic class of connection (i, j). */
    TrafficClass classOf(PortId i, PortId j) const;

  private:
    double load_;
    double cbr_fraction_;
    double be_fraction_;
    Xoshiro256 rng_;
};

/**
 * Client-server workload (Figure 4): the first `num_servers` ports are
 * servers; destination weights make client-client connections carry only
 * `client_client_ratio` (default 5%) of the traffic of connections that
 * involve a server. `server_load` is the resulting offered load on a
 * server's output link; per-input arrival rates are calibrated from it.
 */
class ClientServerTraffic final : public TrafficGenerator
{
  public:
    ClientServerTraffic(int n, int num_servers, double server_load,
                        uint64_t seed, double client_client_ratio = 0.05);

    void generate(SlotTime slot, std::vector<Cell>& out) override;
    std::string name() const override;

    /** Per-input arrival probability implied by the calibration. */
    double arrivalRate() const { return arrival_rate_; }

  private:
    bool isServer(PortId p) const { return p < num_servers_; }

    int num_servers_;
    double server_load_;
    double arrival_rate_;
    /** Destination CDF per input. */
    std::vector<std::vector<double>> dest_cdf_;
    Xoshiro256 rng_;
};

/**
 * Adversarial periodic workload (Figure 1, after Li 1988): every input
 * receives (with probability `load`) cells for the *same* rotating
 * output, in bursts of `burst` consecutive slots per output
 * (destination = (slot / burst) mod N). With burst >= N, FIFO queues
 * stay synchronized on the same head destination and aggregate switch
 * throughput degenerates toward a single link (stationary blocking);
 * random-access buffers sustain full utilization. (With burst = 1 the
 * queues self-skew into a perfect schedule and even FIFO survives —
 * which is why the paper's example uses bursts.)
 */
class PeriodicBurstTraffic final : public TrafficGenerator
{
  public:
    /**
     * @param n Switch size.
     * @param load Arrival probability per input per slot.
     * @param seed PRNG seed.
     * @param burst Consecutive slots aimed at one output before rotating;
     *        0 (default) means n * n, comfortably past the
     *        self-synchronization horizon.
     */
    PeriodicBurstTraffic(int n, double load, uint64_t seed, int burst = 0);

    void generate(SlotTime slot, std::vector<Cell>& out) override;
    std::string name() const override;

  private:
    double load_;
    int burst_;
    Xoshiro256 rng_;
};

/**
 * Hotspot workload: a fraction of all traffic converges on one output
 * (client-server in the extreme); the rest is uniform.
 */
class HotspotTraffic final : public TrafficGenerator
{
  public:
    HotspotTraffic(int n, double load, PortId hotspot,
                   double hotspot_fraction, uint64_t seed);

    void generate(SlotTime slot, std::vector<Cell>& out) override;
    std::string name() const override;

  private:
    double load_;
    PortId hotspot_;
    double hotspot_fraction_;
    Xoshiro256 rng_;
};

/**
 * Trace replay: arrivals scripted as (slot, input, output) records, for
 * reproducing captured workloads or constructing adversarial patterns by
 * hand. Records may be given in any order; at most one cell per input
 * per slot is enforced (the input link carries one cell per slot).
 */
class TraceTraffic final : public TrafficGenerator
{
  public:
    /** One scripted arrival. */
    struct Record
    {
        SlotTime slot;
        PortId input;
        PortId output;
    };

    /**
     * @param n Switch size.
     * @param records The scripted arrivals (validated on construction).
     */
    TraceTraffic(int n, std::vector<Record> records);

    /**
     * Parse records from CSV text: one `slot,input,output` triple per
     * line; blank lines and lines starting with '#' are ignored.
     */
    static TraceTraffic fromCsv(int n, std::istream& in);

    void generate(SlotTime slot, std::vector<Cell>& out) override;
    std::string name() const override;

    /** Total scripted records. */
    int64_t records() const { return static_cast<int64_t>(records_.size()); }

  private:
    std::vector<Record> records_;
    size_t cursor_ = 0;
    SlotTime last_slot_ = -1;
};

/**
 * Two-state on/off bursty workload: each input alternates between OFF and
 * ON; during an ON burst (geometric length, mean `mean_burst`), cells
 * arrive every slot for a single destination drawn at burst start. The
 * OFF period length is set so the long-run load matches `load`.
 */
class BurstyTraffic final : public TrafficGenerator
{
  public:
    BurstyTraffic(int n, double load, double mean_burst, uint64_t seed);

    void generate(SlotTime slot, std::vector<Cell>& out) override;
    std::string name() const override;

  private:
    struct State
    {
        bool on = false;
        PortId dest = 0;
    };

    double p_on_to_off_;   ///< per-slot probability an ON burst ends
    double p_off_to_on_;   ///< per-slot probability an OFF period ends
    std::vector<State> state_;
    Xoshiro256 rng_;
    double load_;
    double mean_burst_;
};

}  // namespace an2

#endif  // AN2_SIM_TRAFFIC_H
