#include "an2/sim/traffic.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace an2 {

TrafficGenerator::TrafficGenerator(int n_inputs, int n_outputs)
    : n_inputs_(n_inputs), n_outputs_(n_outputs),
      conn_(n_inputs, n_outputs, ConnState{})
{
    AN2_REQUIRE(n_inputs > 0 && n_outputs > 0,
                "traffic generator needs positive dimensions");
}

Cell
TrafficGenerator::makeCell(PortId i, PortId j, SlotTime slot)
{
    return makeCell(i, j, slot, TrafficClass::VBR);
}

Cell
TrafficGenerator::makeCell(PortId i, PortId j, SlotTime slot,
                           TrafficClass cls)
{
    ConnState& cs = conn_.at(i, j);
    if (cs.flow == kNoFlow)
        cs.flow = flows_.addFlow(i, j, cls);
    Cell c;
    c.flow = cs.flow;
    c.input = i;
    c.output = j;
    c.cls = cls;
    c.seq = cs.seq++;
    c.inject_slot = slot;
    c.arrival_slot = slot;
    ++cells_injected_;
    return c;
}

// ---------------------------------------------------------------- uniform

UniformTraffic::UniformTraffic(int n, double load, uint64_t seed)
    : TrafficGenerator(n, n), load_(load), rng_(seed)
{
    AN2_REQUIRE(load >= 0.0 && load <= 1.0, "load must be in [0,1]");
}

std::string
UniformTraffic::name() const
{
    std::ostringstream oss;
    oss << "uniform(load=" << load_ << ")";
    return oss.str();
}

void
UniformTraffic::generate(SlotTime slot, std::vector<Cell>& out)
{
    for (PortId i = 0; i < n_inputs_; ++i) {
        if (!rng_.nextBernoulli(load_))
            continue;
        auto j = static_cast<PortId>(
            rng_.nextBelow(static_cast<uint64_t>(n_outputs_)));
        out.push_back(makeCell(i, j, slot));
    }
}

// ------------------------------------------------------ multi-class uniform

MultiClassUniformTraffic::MultiClassUniformTraffic(int n, double load,
                                                   uint64_t seed,
                                                   double cbr_fraction,
                                                   double be_fraction)
    : TrafficGenerator(n, n), load_(load), cbr_fraction_(cbr_fraction),
      be_fraction_(be_fraction), rng_(seed)
{
    AN2_REQUIRE(load >= 0.0 && load <= 1.0, "load must be in [0,1]");
    AN2_REQUIRE(cbr_fraction >= 0.0 && be_fraction >= 0.0 &&
                    cbr_fraction + be_fraction <= 1.0,
                "class fractions must be non-negative and sum to <= 1");
}

std::string
MultiClassUniformTraffic::name() const
{
    std::ostringstream oss;
    oss << "uniform3(load=" << load_ << ",cbr=" << cbr_fraction_
        << ",be=" << be_fraction_ << ")";
    return oss.str();
}

TrafficClass
MultiClassUniformTraffic::classOf(PortId i, PortId j) const
{
    uint64_t state =
        (static_cast<uint64_t>(static_cast<uint32_t>(i)) << 32) |
        static_cast<uint32_t>(j);
    uint64_t h = splitmix64(state);
    double u = static_cast<double>(h >> 11) * 0x1.0p-53;
    if (u < cbr_fraction_)
        return TrafficClass::CBR;
    if (u < cbr_fraction_ + be_fraction_)
        return TrafficClass::BE;
    return TrafficClass::VBR;
}

void
MultiClassUniformTraffic::generate(SlotTime slot, std::vector<Cell>& out)
{
    for (PortId i = 0; i < n_inputs_; ++i) {
        if (!rng_.nextBernoulli(load_))
            continue;
        auto j = static_cast<PortId>(
            rng_.nextBelow(static_cast<uint64_t>(n_outputs_)));
        out.push_back(makeCell(i, j, slot, classOf(i, j)));
    }
}

// ----------------------------------------------------------- client-server

ClientServerTraffic::ClientServerTraffic(int n, int num_servers,
                                         double server_load, uint64_t seed,
                                         double client_client_ratio)
    : TrafficGenerator(n, n), num_servers_(num_servers),
      server_load_(server_load), arrival_rate_(0.0), rng_(seed)
{
    AN2_REQUIRE(num_servers > 0 && num_servers < n,
                "need at least one server and one client");
    AN2_REQUIRE(server_load >= 0.0 && server_load <= 1.0,
                "server load must be in [0,1]");
    AN2_REQUIRE(client_client_ratio > 0.0 && client_client_ratio <= 1.0,
                "client-client ratio must be in (0,1]");

    // Destination weights: connections touching a server have weight 1;
    // client-client connections have weight `ratio`; no self-traffic.
    auto weight = [&](PortId i, PortId j) {
        if (i == j)
            return 0.0;
        bool srv = i < num_servers_ || j < num_servers_;
        return srv ? 1.0 : client_client_ratio;
    };

    dest_cdf_.resize(static_cast<size_t>(n));
    std::vector<double> row_total(static_cast<size_t>(n), 0.0);
    for (PortId i = 0; i < n; ++i) {
        auto& cdf = dest_cdf_[static_cast<size_t>(i)];
        cdf.resize(static_cast<size_t>(n));
        double acc = 0.0;
        for (PortId j = 0; j < n; ++j) {
            acc += weight(i, j);
            cdf[static_cast<size_t>(j)] = acc;
        }
        row_total[static_cast<size_t>(i)] = acc;
        for (auto& v : cdf)
            v /= acc;
    }

    // Calibrate the per-input arrival rate so a server output link sees
    // `server_load`: load(server j) = rate * sum_i weight(i,j)/W_i.
    double coeff = 0.0;
    PortId probe_server = 0;
    for (PortId i = 0; i < n; ++i)
        coeff += weight(i, probe_server) / row_total[static_cast<size_t>(i)];
    AN2_ASSERT(coeff > 0.0, "degenerate client-server weights");
    arrival_rate_ = server_load / coeff;
    AN2_REQUIRE(arrival_rate_ <= 1.0,
                "server load " << server_load
                               << " requires per-input arrival rate "
                               << arrival_rate_ << " > 1; infeasible");
}

std::string
ClientServerTraffic::name() const
{
    std::ostringstream oss;
    oss << "client-server(servers=" << num_servers_
        << ",server_load=" << server_load_ << ")";
    return oss.str();
}

void
ClientServerTraffic::generate(SlotTime slot, std::vector<Cell>& out)
{
    for (PortId i = 0; i < n_inputs_; ++i) {
        if (!rng_.nextBernoulli(arrival_rate_))
            continue;
        const auto& cdf = dest_cdf_[static_cast<size_t>(i)];
        double u = rng_.nextDouble();
        auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
        auto j = static_cast<PortId>(std::min<size_t>(
            static_cast<size_t>(it - cdf.begin()), cdf.size() - 1));
        out.push_back(makeCell(i, j, slot));
    }
}

// ----------------------------------------------------------------- periodic

PeriodicBurstTraffic::PeriodicBurstTraffic(int n, double load, uint64_t seed,
                                           int burst)
    : TrafficGenerator(n, n), load_(load),
      burst_(burst == 0 ? n * n : burst), rng_(seed)
{
    AN2_REQUIRE(load >= 0.0 && load <= 1.0, "load must be in [0,1]");
    AN2_REQUIRE(burst >= 0, "burst must be non-negative");
}

std::string
PeriodicBurstTraffic::name() const
{
    std::ostringstream oss;
    oss << "periodic(load=" << load_ << ",burst=" << burst_ << ")";
    return oss.str();
}

void
PeriodicBurstTraffic::generate(SlotTime slot, std::vector<Cell>& out)
{
    // Every input targets the same rotating output, in bursts: the
    // stationary blocking pattern of Figure 1.
    auto j = static_cast<PortId>((slot / burst_) % n_outputs_);
    for (PortId i = 0; i < n_inputs_; ++i) {
        if (!rng_.nextBernoulli(load_))
            continue;
        out.push_back(makeCell(i, j, slot));
    }
}

// ------------------------------------------------------------------ hotspot

HotspotTraffic::HotspotTraffic(int n, double load, PortId hotspot,
                               double hotspot_fraction, uint64_t seed)
    : TrafficGenerator(n, n), load_(load), hotspot_(hotspot),
      hotspot_fraction_(hotspot_fraction), rng_(seed)
{
    AN2_REQUIRE(load >= 0.0 && load <= 1.0, "load must be in [0,1]");
    AN2_REQUIRE(hotspot >= 0 && hotspot < n, "hotspot out of range");
    AN2_REQUIRE(hotspot_fraction >= 0.0 && hotspot_fraction <= 1.0,
                "hotspot fraction must be in [0,1]");
}

std::string
HotspotTraffic::name() const
{
    std::ostringstream oss;
    oss << "hotspot(load=" << load_ << ",frac=" << hotspot_fraction_ << ")";
    return oss.str();
}

void
HotspotTraffic::generate(SlotTime slot, std::vector<Cell>& out)
{
    for (PortId i = 0; i < n_inputs_; ++i) {
        if (!rng_.nextBernoulli(load_))
            continue;
        PortId j = rng_.nextBernoulli(hotspot_fraction_)
                       ? hotspot_
                       : static_cast<PortId>(rng_.nextBelow(
                             static_cast<uint64_t>(n_outputs_)));
        out.push_back(makeCell(i, j, slot));
    }
}

// -------------------------------------------------------------- trace replay

TraceTraffic::TraceTraffic(int n, std::vector<Record> records)
    : TrafficGenerator(n, n), records_(std::move(records))
{
    std::sort(records_.begin(), records_.end(),
              [](const Record& a, const Record& b) {
                  if (a.slot != b.slot)
                      return a.slot < b.slot;
                  return a.input < b.input;
              });
    for (size_t k = 0; k < records_.size(); ++k) {
        const Record& r = records_[k];
        AN2_REQUIRE(r.slot >= 0, "trace slot must be non-negative");
        AN2_REQUIRE(r.input >= 0 && r.input < n,
                    "trace input " << r.input << " out of range");
        AN2_REQUIRE(r.output >= 0 && r.output < n,
                    "trace output " << r.output << " out of range");
        if (k > 0 && records_[k - 1].slot == r.slot)
            AN2_REQUIRE(records_[k - 1].input != r.input,
                        "two trace cells at input " << r.input << " in slot "
                                                    << r.slot);
    }
}

TraceTraffic
TraceTraffic::fromCsv(int n, std::istream& in)
{
    std::vector<Record> records;
    std::string line;
    int line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        if (line.empty() || line[0] == '#')
            continue;
        Record r{};
        long long slot = 0;
        int input = 0;
        int output = 0;
        if (std::sscanf(line.c_str(), "%lld,%d,%d", &slot, &input,
                        &output) != 3) {
            AN2_FATAL("trace line " << line_no << " is not 'slot,input,"
                                    << "output': " << line);
        }
        r.slot = slot;
        r.input = input;
        r.output = output;
        records.push_back(r);
    }
    return TraceTraffic(n, std::move(records));
}

std::string
TraceTraffic::name() const
{
    std::ostringstream oss;
    oss << "trace(" << records_.size() << " records)";
    return oss.str();
}

void
TraceTraffic::generate(SlotTime slot, std::vector<Cell>& out)
{
    AN2_REQUIRE(slot > last_slot_,
                "trace generator must be driven with increasing slots");
    last_slot_ = slot;
    while (cursor_ < records_.size() && records_[cursor_].slot < slot)
        ++cursor_;  // records for skipped slots are not replayed
    while (cursor_ < records_.size() && records_[cursor_].slot == slot) {
        const Record& r = records_[cursor_++];
        out.push_back(makeCell(r.input, r.output, slot));
    }
}

// ------------------------------------------------------------------- bursty

BurstyTraffic::BurstyTraffic(int n, double load, double mean_burst,
                             uint64_t seed)
    : TrafficGenerator(n, n), state_(static_cast<size_t>(n)), rng_(seed),
      load_(load), mean_burst_(mean_burst)
{
    AN2_REQUIRE(load >= 0.0 && load < 1.0, "bursty load must be in [0,1)");
    AN2_REQUIRE(mean_burst >= 1.0, "mean burst length must be >= 1");
    p_on_to_off_ = 1.0 / mean_burst;
    // Stationary P(on) = p_off_on / (p_off_on + p_on_off) = load.
    p_off_to_on_ = load * p_on_to_off_ / (1.0 - load);
    p_off_to_on_ = std::min(p_off_to_on_, 1.0);
}

std::string
BurstyTraffic::name() const
{
    std::ostringstream oss;
    oss << "bursty(load=" << load_ << ",mean_burst=" << mean_burst_ << ")";
    return oss.str();
}

void
BurstyTraffic::generate(SlotTime slot, std::vector<Cell>& out)
{
    for (PortId i = 0; i < n_inputs_; ++i) {
        State& st = state_[static_cast<size_t>(i)];
        if (st.on) {
            if (rng_.nextBernoulli(p_on_to_off_))
                st.on = false;
        } else if (rng_.nextBernoulli(p_off_to_on_)) {
            st.on = true;
            st.dest = static_cast<PortId>(
                rng_.nextBelow(static_cast<uint64_t>(n_outputs_)));
        }
        if (st.on)
            out.push_back(makeCell(i, st.dest, slot));
    }
}

}  // namespace an2
