#include "an2/sim/metrics.h"

#include <algorithm>

namespace an2 {

MetricsCollector::MetricsCollector(SlotTime warmup_slots, int ports,
                                   int delay_hist_bins)
    : warmup_(warmup_slots), delay_hist_(1.0, delay_hist_bins),
      per_connection_(checkPorts(ports), ports),
      per_flow_(std::max(128, 2 * ports * ports))
{
    AN2_REQUIRE(warmup_slots >= 0, "warmup must be non-negative");
}

int
MetricsCollector::checkPorts(int ports)
{
    AN2_REQUIRE(ports > 0, "metrics need a positive port count, got "
                               << ports);
    return ports;
}

void
MetricsCollector::noteInjected(const Cell& cell)
{
    if (cell.inject_slot < warmup_)
        return;
    ++injected_;
}

void
MetricsCollector::noteDelivered(const Cell& cell, SlotTime slot)
{
    auto d = static_cast<double>(slot - cell.inject_slot);
    AN2_ASSERT(d >= 0.0, "cell delivered before injection");
    // Throughput-style counts filter on *delivery* time so that, at
    // saturation, service slots spent draining the warmup backlog are
    // still credited. Delay statistics filter on *injection* time so the
    // initial transient cannot bias them.
    if (slot >= warmup_) {
        ++delivered_;
        ++per_connection_(cell.input, cell.output);
        ++per_flow_[cell.flow];
    }
    if (cell.inject_slot >= warmup_) {
        delay_.add(d);
        delay_hist_.add(d);
    }
}

void
MetricsCollector::noteOccupancy(int buffered_cells)
{
    max_occupancy_ = std::max(max_occupancy_, buffered_cells);
}

}  // namespace an2
