#include "an2/fabric/cost_model.h"

#include "an2/base/error.h"

namespace an2 {

std::string
costUnitName(CostUnit unit)
{
    switch (unit) {
      case CostUnit::Optoelectronics: return "Optoelectronics";
      case CostUnit::Crossbar: return "Crossbar";
      case CostUnit::BufferRam: return "Buffer RAM/Logic";
      case CostUnit::SchedulingLogic: return "Scheduling Logic";
      case CostUnit::ControlCpu: return "Routing/Control CPU";
    }
    AN2_PANIC("unknown cost unit");
}

double
CostModel::unitCost(CostUnit unit, int n) const
{
    AN2_REQUIRE(n > 0, "switch size must be positive");
    auto nd = static_cast<double>(n);
    switch (unit) {
      case CostUnit::Optoelectronics:
        return params_.opto_per_port * nd;
      case CostUnit::Crossbar:
        return params_.crosspoint * nd * nd;
      case CostUnit::BufferRam:
        return params_.buffer_per_port * nd;
      case CostUnit::SchedulingLogic:
        return params_.sched_per_wire * nd * nd + params_.sched_per_port * nd;
      case CostUnit::ControlCpu:
        return params_.control_cpu;
    }
    AN2_PANIC("unknown cost unit");
}

double
CostModel::totalCost(int n) const
{
    double total = 0.0;
    for (int u = 0; u < kNumCostUnits; ++u)
        total += unitCost(static_cast<CostUnit>(u), n);
    return total;
}

std::vector<CostShare>
CostModel::shares(int n) const
{
    double total = totalCost(n);
    std::vector<CostShare> result;
    result.reserve(kNumCostUnits);
    for (int u = 0; u < kNumCostUnits; ++u) {
        auto unit = static_cast<CostUnit>(u);
        result.push_back({unit, unitCost(unit, n) / total});
    }
    return result;
}

// Both parameter sets are calibrated so that a 16x16 switch reproduces
// the paper's Table 2 percentages exactly (total = 100 cost units at
// N = 16). Scheduling cost is split evenly between the O(N^2)
// request/grant wiring and the O(N) per-port selection logic.

CostParams
CostModel::prototypeParams()
{
    return CostParams{
        /*opto_per_port=*/48.0 / 16,
        /*crosspoint=*/4.0 / 256,
        /*buffer_per_port=*/21.0 / 16,
        /*sched_per_wire=*/5.0 / 256,
        /*sched_per_port=*/5.0 / 16,
        /*control_cpu=*/17.0,
    };
}

CostParams
CostModel::productionParams()
{
    return CostParams{
        /*opto_per_port=*/63.0 / 16,
        /*crosspoint=*/5.0 / 256,
        /*buffer_per_port=*/19.0 / 16,
        /*sched_per_wire=*/1.5 / 256,
        /*sched_per_port=*/1.5 / 16,
        /*control_cpu=*/10.0,
    };
}

}  // namespace an2
