/**
 * @file
 * The internally non-blocking data-forwarding fabric (paper §2.2).
 *
 * The AN2 prototype uses a crossbar: any set of cells may be forwarded in
 * a slot provided no two share an input or (beyond the configured
 * capacity) an output. The crossbar is reconfigured from a Matching at
 * every slot boundary; routing a cell through an unconfigured crosspoint
 * is an internal error. The class also tracks utilization statistics.
 */
#ifndef AN2_FABRIC_CROSSBAR_H
#define AN2_FABRIC_CROSSBAR_H

#include <cstdint>
#include <vector>

#include "an2/base/types.h"
#include "an2/cell/cell.h"
#include "an2/matching/matching.h"

namespace an2 {

/** An N_in x N_out crossbar with per-slot configuration. */
class Crossbar
{
  public:
    /**
     * @param n_inputs Input ports.
     * @param n_outputs Output ports.
     */
    Crossbar(int n_inputs, int n_outputs);

    /** Square N x N crossbar. */
    explicit Crossbar(int n) : Crossbar(n, n) {}

    int numInputs() const { return n_inputs_; }
    int numOutputs() const { return n_outputs_; }

    /**
     * Reconfigure the crosspoints for the next slot. The matching's
     * dimensions must equal the crossbar's.
     */
    void configure(const Matching& matching);

    /** Output currently connected to input i, or kNoPort. */
    PortId routeOf(PortId i) const;

    /**
     * Forward a cell from its input across the configured crosspoint.
     * The crossbar must be configured with input `cell.input` connected
     * to `cell.output`; this is the hardware's "cells only move where the
     * scheduler told them to" invariant.
     */
    void forward(const Cell& cell);

    /** Slots configured so far. */
    int64_t slots() const { return slots_; }

    /** Total cells forwarded so far. */
    int64_t cellsForwarded() const { return cells_forwarded_; }

    /**
     * Mean fraction of output links used per configured slot
     * (cells forwarded / (slots * N_out)).
     */
    double utilization() const;

    /** Number of crosspoints (the O(N^2) hardware cost driver, §2.2). */
    int64_t crosspoints() const
    {
        return static_cast<int64_t>(n_inputs_) * n_outputs_;
    }

  private:
    int n_inputs_;
    int n_outputs_;
    std::vector<PortId> route_;  ///< input -> connected output
    int64_t slots_ = 0;
    int64_t cells_forwarded_ = 0;
};

}  // namespace an2

#endif  // AN2_FABRIC_CROSSBAR_H
