#include "an2/fabric/crossbar.h"

#include "an2/base/error.h"

namespace an2 {

Crossbar::Crossbar(int n_inputs, int n_outputs)
    : n_inputs_(n_inputs), n_outputs_(n_outputs),
      route_(static_cast<size_t>(n_inputs), kNoPort)
{
    AN2_REQUIRE(n_inputs > 0 && n_outputs > 0,
                "crossbar must have positive dimensions");
}

void
Crossbar::configure(const Matching& matching)
{
    AN2_REQUIRE(matching.numInputs() == n_inputs_ &&
                    matching.numOutputs() == n_outputs_,
                "matching dimensions do not fit the crossbar");
    for (PortId i = 0; i < n_inputs_; ++i)
        route_[static_cast<size_t>(i)] = matching.outputOf(i);
    ++slots_;
}

PortId
Crossbar::routeOf(PortId i) const
{
    AN2_REQUIRE(i >= 0 && i < n_inputs_, "input " << i << " out of range");
    return route_[static_cast<size_t>(i)];
}

void
Crossbar::forward(const Cell& cell)
{
    AN2_REQUIRE(cell.input >= 0 && cell.input < n_inputs_,
                "cell input " << cell.input << " out of range");
    PortId configured = route_[static_cast<size_t>(cell.input)];
    AN2_ASSERT(configured == cell.output,
               "cell from input " << cell.input << " destined for output "
                                  << cell.output
                                  << " but crosspoint routes to "
                                  << configured);
    ++cells_forwarded_;
}

double
Crossbar::utilization() const
{
    if (slots_ == 0)
        return 0.0;
    return static_cast<double>(cells_forwarded_) /
           (static_cast<double>(slots_) * n_outputs_);
}

}  // namespace an2
