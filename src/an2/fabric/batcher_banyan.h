/**
 * @file
 * Self-routing fabrics (paper §2.2): a banyan (omega) network, a Batcher
 * bitonic sorting network, and their combination.
 *
 * A banyan network routes each cell from any input to the output encoded
 * in its header, but suffers *internal blocking*: two cells bound for
 * different outputs can collide at an interior 2x2 element. Huang &
 * Knauer's observation (used by Starlite and Sunshine) is that a banyan
 * is internally non-blocking when the cells presented to it are sorted
 * by destination and placed on consecutive inputs — which a Batcher
 * sorting network does in hardware. The AN2 prototype uses a crossbar
 * instead, but its scheduling algorithm only assumes *some* non-blocking
 * fabric; this module lets the claim be exercised and tested.
 */
#ifndef AN2_FABRIC_BATCHER_BANYAN_H
#define AN2_FABRIC_BATCHER_BANYAN_H

#include <cstdint>
#include <vector>

#include "an2/base/types.h"

namespace an2 {

/** One cell's trip through a self-routing fabric. */
struct FabricCell
{
    PortId input = kNoPort;   ///< presented at this fabric input
    PortId output = kNoPort;  ///< destination in the header

    /**
     * Caller-owned identifier carried through sorting and routing; lets
     * callers correlate delivered cells with what they injected (the
     * Batcher stage re-positions cells, overwriting `input`).
     */
    int64_t tag = 0;
};

/** Result of routing one slot's worth of cells through a fabric. */
struct FabricResult
{
    /** Cells that reached their destination output. */
    std::vector<FabricCell> delivered;

    /** Cells lost to internal blocking (never happens behind a Batcher). */
    std::vector<FabricCell> blocked;

    /** Total 2x2-element conflicts encountered. */
    int conflicts = 0;
};

/**
 * An N x N omega (banyan) network of log2(N) stages of 2x2 elements.
 * N must be a power of two.
 */
class BanyanNetwork
{
  public:
    explicit BanyanNetwork(int n);

    int size() const { return n_; }

    /** Number of 2x2 switching stages (log2 N). */
    int stages() const { return stages_; }

    /**
     * Route one slot of cells. Inputs must be distinct; outputs need not
     * be (the fabric itself has no output arbitration — callers that
     * allow duplicate outputs will see conflicts). A cell losing a 2x2
     * conflict is dropped, exactly like a bufferless hardware banyan.
     */
    FabricResult route(const std::vector<FabricCell>& cells) const;

  private:
    int n_;
    int stages_;
};

/**
 * A Batcher bitonic sorting network over cell destinations, modeled at
 * the compare-exchange level (not std::sort) so the hardware structure
 * is what is actually exercised: log2(N)*(log2(N)+1)/2 stages.
 */
class BatcherSorter
{
  public:
    explicit BatcherSorter(int n);

    int size() const { return n_; }

    /** Number of compare-exchange stages. */
    int stages() const { return stages_; }

    /**
     * Sort cells by destination onto consecutive low-numbered outputs.
     * Vacant inputs sort behind all real cells. Returns the cells in
     * their sorted positions (position index = new fabric input).
     */
    std::vector<FabricCell> sort(const std::vector<FabricCell>& cells) const;

  private:
    int n_;
    int stages_;
};

/**
 * The Batcher-banyan combination: sort, concentrate onto consecutive
 * inputs, then self-route. Internally non-blocking for any set of cells
 * with distinct outputs (the property the paper's scheduler relies on).
 */
class BatcherBanyanFabric
{
  public:
    explicit BatcherBanyanFabric(int n);

    int size() const { return n_; }

    /**
     * Route one slot of cells with distinct inputs and distinct outputs.
     * Guaranteed conflict-free; an internal conflict here is a bug (and
     * throws InternalError).
     */
    FabricResult route(const std::vector<FabricCell>& cells) const;

  private:
    int n_;
    BatcherSorter sorter_;
    BanyanNetwork banyan_;
};

/** True when v is a power of two (fabric size requirement). */
bool isPowerOfTwo(int v);

}  // namespace an2

#endif  // AN2_FABRIC_BATCHER_BANYAN_H
