#include "an2/fabric/batcher_banyan.h"

#include <limits>

#include "an2/base/error.h"

namespace an2 {

bool
isPowerOfTwo(int v)
{
    return v > 0 && (v & (v - 1)) == 0;
}

namespace {

int
log2OfPowerOfTwo(int n)
{
    int k = 0;
    while ((1 << k) < n)
        ++k;
    return k;
}

}  // namespace

// --------------------------------------------------------------- banyan

BanyanNetwork::BanyanNetwork(int n) : n_(n), stages_(log2OfPowerOfTwo(n))
{
    AN2_REQUIRE(isPowerOfTwo(n) && n >= 2,
                "banyan size must be a power of two >= 2");
}

FabricResult
BanyanNetwork::route(const std::vector<FabricCell>& cells) const
{
    FabricResult result;
    // Track each live cell's current wire position through the stages.
    struct Live
    {
        FabricCell cell;
        int pos;
    };
    std::vector<Live> live;
    live.reserve(cells.size());
    std::vector<bool> input_used(static_cast<size_t>(n_), false);
    for (const FabricCell& c : cells) {
        AN2_REQUIRE(c.input >= 0 && c.input < n_,
                    "fabric input " << c.input << " out of range");
        AN2_REQUIRE(c.output >= 0 && c.output < n_,
                    "fabric output " << c.output << " out of range");
        AN2_REQUIRE(!input_used[static_cast<size_t>(c.input)],
                    "two cells presented at fabric input " << c.input);
        input_used[static_cast<size_t>(c.input)] = true;
        live.push_back({c, c.input});
    }

    // Omega network: each stage applies the perfect shuffle to the wire
    // positions, then every 2x2 element forwards its cells to the upper
    // or lower exit selected by the destination bit for that stage.
    // After log2(N) stages a cell's position equals its destination.
    for (int s = 0; s < stages_ && !live.empty(); ++s) {
        // exit_taken[element][bit]: index into `live` or -1.
        std::vector<int> exit_taken(static_cast<size_t>(n_), -1);
        std::vector<bool> lost(live.size(), false);
        for (size_t c = 0; c < live.size(); ++c) {
            int p = live[c].pos;
            int shuffled = ((p << 1) | (p >> (stages_ - 1))) & (n_ - 1);
            int element = shuffled >> 1;
            int bit = (live[c].cell.output >> (stages_ - 1 - s)) & 1;
            int exit_wire = (element << 1) | bit;
            int& holder = exit_taken[static_cast<size_t>(exit_wire)];
            if (holder >= 0) {
                // Internal blocking: the element's exit is taken. The
                // earlier cell keeps it (hardware: fixed priority).
                lost[c] = true;
                ++result.conflicts;
            } else {
                holder = static_cast<int>(c);
                live[c].pos = exit_wire;
            }
        }
        std::vector<Live> survivors;
        survivors.reserve(live.size());
        for (size_t c = 0; c < live.size(); ++c) {
            if (lost[c])
                result.blocked.push_back(live[c].cell);
            else
                survivors.push_back(live[c]);
        }
        live.swap(survivors);
    }

    for (const Live& l : live) {
        AN2_ASSERT(l.pos == l.cell.output,
                   "banyan self-routing failed: cell for output "
                       << l.cell.output << " emerged at " << l.pos);
        result.delivered.push_back(l.cell);
    }
    return result;
}

// --------------------------------------------------------------- batcher

BatcherSorter::BatcherSorter(int n) : n_(n)
{
    AN2_REQUIRE(isPowerOfTwo(n) && n >= 2,
                "sorter size must be a power of two >= 2");
    int k = log2OfPowerOfTwo(n);
    stages_ = k * (k + 1) / 2;
}

std::vector<FabricCell>
BatcherSorter::sort(const std::vector<FabricCell>& cells) const
{
    constexpr int kVacant = std::numeric_limits<int>::max();
    // Lay the cells onto their input wires; vacant wires sort last.
    std::vector<FabricCell> wire(static_cast<size_t>(n_));
    std::vector<int> key(static_cast<size_t>(n_), kVacant);
    for (const FabricCell& c : cells) {
        AN2_REQUIRE(c.input >= 0 && c.input < n_,
                    "fabric input " << c.input << " out of range");
        AN2_REQUIRE(key[static_cast<size_t>(c.input)] == kVacant,
                    "two cells presented at fabric input " << c.input);
        wire[static_cast<size_t>(c.input)] = c;
        key[static_cast<size_t>(c.input)] = c.output;
    }

    // Bitonic sorting network: the canonical compare-exchange schedule.
    for (int block = 2; block <= n_; block <<= 1) {
        for (int dist = block >> 1; dist > 0; dist >>= 1) {
            for (int i = 0; i < n_; ++i) {
                int partner = i ^ dist;
                if (partner <= i)
                    continue;
                bool ascending = (i & block) == 0;
                bool out_of_order =
                    ascending ? key[static_cast<size_t>(i)] >
                                    key[static_cast<size_t>(partner)]
                              : key[static_cast<size_t>(i)] <
                                    key[static_cast<size_t>(partner)];
                if (out_of_order) {
                    std::swap(key[static_cast<size_t>(i)],
                              key[static_cast<size_t>(partner)]);
                    std::swap(wire[static_cast<size_t>(i)],
                              wire[static_cast<size_t>(partner)]);
                }
            }
        }
    }

    std::vector<FabricCell> sorted;
    for (int i = 0; i < n_; ++i) {
        if (key[static_cast<size_t>(i)] == kVacant)
            break;
        FabricCell c = wire[static_cast<size_t>(i)];
        c.input = i;  // concentrated onto consecutive low inputs
        sorted.push_back(c);
    }
    AN2_ASSERT(sorted.size() == cells.size(),
               "sorter lost cells: " << sorted.size() << " of "
                                     << cells.size());
    return sorted;
}

// -------------------------------------------------------- batcher-banyan

BatcherBanyanFabric::BatcherBanyanFabric(int n)
    : n_(n), sorter_(n), banyan_(n)
{
}

FabricResult
BatcherBanyanFabric::route(const std::vector<FabricCell>& cells) const
{
    std::vector<bool> out_used(static_cast<size_t>(n_), false);
    for (const FabricCell& c : cells) {
        AN2_REQUIRE(c.output >= 0 && c.output < n_,
                    "fabric output " << c.output << " out of range");
        AN2_REQUIRE(!out_used[static_cast<size_t>(c.output)],
                    "two cells bound for output "
                        << c.output
                        << "; schedule a conflict-free matching first");
        out_used[static_cast<size_t>(c.output)] = true;
    }
    std::vector<FabricCell> sorted = sorter_.sort(cells);
    FabricResult result = banyan_.route(sorted);
    AN2_ASSERT(result.conflicts == 0 && result.blocked.empty(),
               "batcher-banyan blocked internally: sorted concentrated "
               "distinct-output cells must be conflict-free");
    return result;
}

}  // namespace an2
