/**
 * @file
 * Switch hardware cost model reproducing Table 2 of the paper.
 *
 * Table 2 reports the cost of each functional unit of the 16x16 AN2
 * switch as a share of total switch cost, for the FPGA prototype and an
 * estimated custom-CMOS production version. We cannot measure 1992
 * hardware prices, so — per the substitution rule — we model them: each
 * functional unit's cost is a simple function of switch size N with
 * per-unit price parameters. The default parameter sets are calibrated so
 * that N = 16 reproduces the paper's published percentages exactly; the
 * model then extrapolates how shares shift with N (e.g. the O(N^2)
 * crossbar and scheduling wiring overtaking optics for very large N),
 * supporting the paper's moderate-switch-size argument in §2.1-2.2.
 */
#ifndef AN2_FABRIC_COST_MODEL_H
#define AN2_FABRIC_COST_MODEL_H

#include <array>
#include <string>
#include <vector>

namespace an2 {

/** The functional units of Table 2. */
enum class CostUnit {
    Optoelectronics,
    Crossbar,
    BufferRam,
    SchedulingLogic,
    ControlCpu,
};

/** Number of functional units in the model. */
inline constexpr int kNumCostUnits = 5;

/** Human-readable name of a functional unit. */
std::string costUnitName(CostUnit unit);

/**
 * Per-unit price parameters. Costs are in arbitrary consistent currency:
 * only shares are meaningful.
 */
struct CostParams
{
    double opto_per_port;       ///< optoelectronic devices, per port
    double crosspoint;          ///< crossbar, per crosspoint (N^2 of them)
    double buffer_per_port;     ///< buffer RAM + management logic, per port
    double sched_per_wire;      ///< request/grant wiring, per wire (N^2)
    double sched_per_port;      ///< per-port scheduling logic
    double control_cpu;         ///< routing/control processor (fixed)
};

/** One row of the reproduced Table 2. */
struct CostShare
{
    CostUnit unit;
    double share;  ///< fraction of total switch cost in [0,1]
};

/** Parameterized switch cost model. */
class CostModel
{
  public:
    explicit CostModel(const CostParams& params) : params_(params) {}

    /** Absolute modeled cost of one functional unit for an N x N switch. */
    double unitCost(CostUnit unit, int n) const;

    /** Total modeled switch cost. */
    double totalCost(int n) const;

    /** Cost shares for all units, in Table 2 row order. */
    std::vector<CostShare> shares(int n) const;

    /**
     * Parameters calibrated to the paper's *prototype* column at N = 16
     * (Xilinx FPGAs for the random logic).
     */
    static CostParams prototypeParams();

    /**
     * Parameters calibrated to the paper's *production estimate* column at
     * N = 16 (custom CMOS shrinks the scheduling and control logic).
     */
    static CostParams productionParams();

  private:
    CostParams params_;
};

}  // namespace an2

#endif  // AN2_FABRIC_COST_MODEL_H
