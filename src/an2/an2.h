/**
 * @file
 * Umbrella header: the public API of an2sim in one include.
 *
 *     #include "an2/an2.h"
 *
 * Groups (see README.md for the architecture overview):
 *  - base:      PRNG, statistics, matrices, error handling
 *  - cell:      cells, flows, routing tables
 *  - matching:  PIM, statistical matching, multicast PIM, baselines
 *  - queueing:  per-flow FIFOs, VOQ input buffers, output queues
 *  - fabric:    crossbar, Batcher-banyan, cost model
 *  - cbr:       reservations, Slepian-Duguid schedules, subframes,
 *               admission control, Appendix B timing bounds
 *  - sim:       slot-synchronous switch simulator and workloads
 *  - harness:   parallel deterministic experiment sweeps + JSON results
 *  - network:   multi-hop simulator with drifting clocks
 */
#ifndef AN2_AN2_H
#define AN2_AN2_H

#include "an2/base/error.h"
#include "an2/base/matrix.h"
#include "an2/base/rng.h"
#include "an2/base/stats.h"
#include "an2/base/types.h"

#include "an2/cell/cell.h"
#include "an2/cell/flow.h"

#include "an2/matching/fill_in.h"
#include "an2/matching/hopcroft_karp.h"
#include "an2/matching/islip.h"
#include "an2/matching/matcher.h"
#include "an2/matching/matching.h"
#include "an2/matching/multicast.h"
#include "an2/matching/pim.h"
#include "an2/matching/pim_fast.h"
#include "an2/matching/request_matrix.h"
#include "an2/matching/serial_greedy.h"
#include "an2/matching/statistical.h"
#include "an2/matching/windowed_fifo.h"

#include "an2/queueing/flow_queue.h"
#include "an2/queueing/output_queue.h"
#include "an2/queueing/voq.h"

#include "an2/fabric/batcher_banyan.h"
#include "an2/fabric/cost_model.h"
#include "an2/fabric/crossbar.h"

#include "an2/cbr/admission.h"
#include "an2/cbr/frame_schedule.h"
#include "an2/cbr/reservations.h"
#include "an2/cbr/slepian_duguid.h"
#include "an2/cbr/subframes.h"
#include "an2/cbr/timing.h"

#include "an2/sim/cioq_switch.h"
#include "an2/sim/fifo_switch.h"
#include "an2/sim/iq_switch.h"
#include "an2/sim/metrics.h"
#include "an2/sim/oq_switch.h"
#include "an2/sim/simulator.h"
#include "an2/sim/switch.h"
#include "an2/sim/traffic.h"
#include "an2/sim/virtual_clock.h"

#include "an2/harness/aggregate.h"
#include "an2/harness/json_writer.h"
#include "an2/harness/sweep.h"

#include "an2/network/clock.h"
#include "an2/network/controller.h"
#include "an2/network/link.h"
#include "an2/network/net_switch.h"
#include "an2/network/network.h"
#include "an2/network/node.h"

#endif  // AN2_AN2_H
