/**
 * @file
 * The observation sink behind the probe layer: a counter/gauge registry,
 * a fixed-capacity binary event ring (drop-oldest), per-slot convergence
 * and match-size histograms, and periodic state snapshots.
 *
 * Everything touched from the switch hot loop is preallocated in the
 * constructor; beginSlot/endSlot/matchIteration/cell events perform no
 * heap allocation (proved by tests/zero_alloc_test.cc with a recorder
 * attached). Snapshot serialization is the one exception — it appends
 * JSON lines to a string — and runs only every `snapshot_every` slots
 * when explicitly enabled.
 */
#ifndef AN2_OBS_RECORDER_H
#define AN2_OBS_RECORDER_H

#include <cstdint>
#include <string>
#include <vector>

#include "an2/base/types.h"
#include "an2/cell/cell.h"
#include "an2/obs/latency.h"
#include "an2/obs/probe.h"
#include "an2/obs/timeseries.h"

namespace an2::obs {

/** Construction-time sizing for a Recorder. */
struct RecorderConfig
{
    /** Event-ring capacity in events; 0 disables event tracing (counters
        and histograms still accumulate). Oldest events are dropped once
        full; droppedEvents() reports how many. */
    size_t trace_capacity = 0;

    /** Emit a state snapshot every K slots (at slots K-1, 2K-1, ...);
        0 disables snapshots. Requires `ports`. */
    int snapshot_every = 0;

    /** Switch size N; sizes the snapshot VOQ matrix and the match-size
        histogram. Required when snapshot_every > 0. */
    int ports = 0;

    /** Bins of the iterations-to-convergence histogram (counts clamp
        into the last bin). */
    int max_iterations = 64;

    /** Track delivery-latency and per-hop-delay histograms (log-linear,
        keyed by traffic class; per-output-port breakdowns additionally
        require `ports`). All bins preallocate here. */
    bool track_latency = false;

    /** Sample all counters/gauges/latency quantiles into the metrics
        ring at every slot S > 0 with S %% metrics_every == 0 (i.e. at
        window boundaries); 0 disables the time series. */
    int metrics_every = 0;

    /** Metrics-ring capacity in samples (drop-oldest once full). */
    size_t metrics_capacity = 4096;
};

/** Collects probe output for one observed thread. */
class Recorder
{
  public:
    Recorder() : Recorder(RecorderConfig{}) {}
    explicit Recorder(const RecorderConfig& config);

    /** Detaches itself if still the thread's current recorder. */
    ~Recorder();

    Recorder(const Recorder&) = delete;
    Recorder& operator=(const Recorder&) = delete;

    // ---- counters and gauges -------------------------------------------

    void add(Counter c, int64_t delta)
    {
        counters_[static_cast<size_t>(c)] += delta;
    }

    void set(Gauge g, int64_t value)
    {
        gauges_[static_cast<size_t>(g)] = value;
    }

    int64_t counter(Counter c) const
    {
        return counters_[static_cast<size_t>(c)];
    }

    int64_t gauge(Gauge g) const
    {
        return gauges_[static_cast<size_t>(g)];
    }

    // ---- slot lifecycle (called by the switch) --------------------------

    /** Mark the start of `slot`; stamps subsequent events. */
    void beginSlot(SlotTime slot);

    /**
     * Mark the end of the current slot.
     * @param forwarded Cells that crossed the fabric this slot.
     * @param cbr_forwarded CBR subset of `forwarded`.
     * @param match_size Size of the slot's VBR matching.
     */
    void endSlot(int forwarded, int cbr_forwarded, int match_size);

    /** Slot stamped on new events (-1 before the first beginSlot). */
    SlotTime currentSlot() const { return slot_; }

    // ---- matcher probes --------------------------------------------------

    /**
     * Record one request/grant/accept iteration. `matched_total` is the
     * matching size after the iteration; `matched_total - accepts` is
     * the keep-grant retention (matches held from earlier iterations).
     */
    void matchIteration(MatchAlg alg, int iter, int requests, int grants,
                        int accepts, int matched_total);

    /** Record CBR frame-reservation masking of the VBR request matrix. */
    void cbrMasked(int masked_inputs, int masked_outputs);

    // ---- fault probes ----------------------------------------------------

    /** Record one applied fault event (`kind` is a fault::FaultKind). */
    void faultEvent(int kind, int target);

    // ---- queue probes ----------------------------------------------------

    void cellEnqueued(const Cell& cell);
    void cellDequeued(const Cell& cell);

    // ---- latency probes --------------------------------------------------

    /**
     * Record one end-to-end delivery: counts CellsDelivered always and,
     * when latency tracking is on, adds `delay_slots` to the class (and,
     * if `output` is in [0, ports), the per-output) histogram.
     */
    void latencySample(TrafficClass cls, PortId output, int64_t delay_slots);

    /** Delivery of `cell` at `slot` (delay = slot - inject_slot). */
    void cellDelivered(const Cell& cell, SlotTime slot)
    {
        latencySample(cell.cls, cell.output, slot - cell.inject_slot);
    }

    bool latencyEnabled() const { return track_latency_; }

    /** End-to-end delivery latency per class (empty when untracked). */
    const LogHistogram& latencyHistogram(TrafficClass cls) const
    {
        return lat_class_[static_cast<size_t>(cls)];
    }

    /** Per-output delivery latency, or nullptr when per-port tracking is
        unavailable (latency untracked, ports == 0, or out of range). */
    const LogHistogram* portLatencyHistogram(TrafficClass cls,
                                             PortId output) const;

    /** Per-hop queueing delay (dequeue slot - arrival slot) per class. */
    const LogHistogram& hopDelayHistogram(TrafficClass cls) const
    {
        return hop_class_[static_cast<size_t>(cls)];
    }

    // ---- metrics time series ---------------------------------------------

    bool metricsEnabled() const { return metrics_.enabled(); }

    const TimeSeries& metrics() const { return metrics_; }

    /**
     * Take one sample stamped `slot` right now. beginSlot() calls this
     * at window boundaries; callers invoke it directly after a run to
     * flush the final partial window. Duplicate slots are ignored, so
     * flushing after an exact boundary is harmless.
     */
    void sampleMetricsNow(SlotTime slot);

    // ---- event ring ------------------------------------------------------

    bool tracing() const { return capacity_ > 0; }

    /** Events currently retained (<= capacity). */
    size_t eventCount() const { return size_; }

    /** The k-th oldest retained event, k in [0, eventCount()). */
    const Event& event(size_t k) const;

    /** Events overwritten because the ring was full. */
    int64_t droppedEvents() const { return dropped_; }

    // ---- histograms ------------------------------------------------------

    /**
     * Histogram of productive matcher iterations per completed slot
     * (index = iterations that added a match; the paper's
     * iterations-to-convergence distribution when the matcher runs to
     * completion). Final bin also holds all larger counts.
     */
    const std::vector<int64_t>& iterationsPerSlotHistogram() const
    {
        return iter_hist_;
    }

    /** Histogram of VBR match size per completed slot (index = size,
        sized ports+1; empty when ports == 0). */
    const std::vector<int64_t>& matchSizeHistogram() const
    {
        return match_hist_;
    }

    // ---- snapshots -------------------------------------------------------

    bool snapshotsEnabled() const { return snapshot_every_ > 0; }

    /** True when the switch should fill and commit a snapshot at `slot`. */
    bool snapshotDue(SlotTime slot) const
    {
        return snapshot_every_ > 0 &&
               (slot + 1) % snapshot_every_ == 0;
    }

    int ports() const { return ports_; }

    /** VOQ occupancy scratch (ports x ports, row-major by input); the
        switch fills every entry before commitSnapshot(). */
    int32_t* voqMatrix() { return voq_.data(); }

    /** Per-output backlog scratch (ports entries). */
    int32_t* outputBacklog() { return backlog_.data(); }

    /** Serialize the filled scratch as one an2.snapshot.v1 JSON line. */
    void commitSnapshot(SlotTime slot, int buffered_cells);

    /** Accumulated snapshot JSON lines (one document per line). */
    const std::string& snapshotLines() const { return snapshot_jsonl_; }

  private:
    void record(EventType type, MatchAlg alg, uint16_t iter, int32_t a,
                int32_t b, int32_t c, int32_t d);

    std::vector<int64_t> counters_;
    std::vector<int64_t> gauges_;

    std::vector<Event> ring_;
    size_t capacity_ = 0;
    size_t head_ = 0;  ///< index of the oldest retained event
    size_t size_ = 0;
    int64_t dropped_ = 0;

    SlotTime slot_ = -1;
    int slot_productive_iters_ = 0;
    std::vector<int64_t> iter_hist_;
    std::vector<int64_t> match_hist_;

    int snapshot_every_ = 0;
    int ports_ = 0;
    std::vector<int32_t> voq_;
    std::vector<int32_t> backlog_;
    std::string snapshot_jsonl_;

    bool track_latency_ = false;
    std::array<LogHistogram, kNumTrafficClasses> lat_class_;  ///< by class
    std::array<LogHistogram, kNumTrafficClasses> hop_class_;  ///< by class
    /** Per-output latency, class-major (kNumTrafficClasses * ports
        entries); empty unless track_latency and ports > 0. */
    std::vector<LogHistogram> lat_port_;

    int metrics_every_ = 0;
    TimeSeries metrics_;
    SlotTime last_sample_slot_ = -1;
    MetricsSample sample_scratch_;
};

// ---- inline probe helpers (the instrumented-code entry points) -----------
//
// Each helper is one current() load and one branch when unattached;
// under AN2_OBS_DISABLED current() is a constant nullptr and the helper
// disappears entirely. Probe arguments that are costly to derive must be
// computed behind an explicit current() check at the call site instead.

inline void
count(Counter c, int64_t delta = 1)
{
    if (Recorder* r = current())
        r->add(c, delta);
}

inline void
setGauge(Gauge g, int64_t value)
{
    if (Recorder* r = current())
        r->set(g, value);
}

inline void
slotBegin(SlotTime slot)
{
    if (Recorder* r = current())
        r->beginSlot(slot);
}

inline void
slotEnd(int forwarded, int cbr_forwarded, int match_size)
{
    if (Recorder* r = current())
        r->endSlot(forwarded, cbr_forwarded, match_size);
}

inline void
cellEnqueued(const Cell& cell)
{
    if (Recorder* r = current())
        r->cellEnqueued(cell);
}

inline void
cellDequeued(const Cell& cell)
{
    if (Recorder* r = current())
        r->cellDequeued(cell);
}

inline void
faultEvent(int kind, int target)
{
    if (Recorder* r = current())
        r->faultEvent(kind, target);
}

inline void
cellDelivered(const Cell& cell, SlotTime slot)
{
    if (Recorder* r = current())
        r->cellDelivered(cell, slot);
}

inline void
latencySample(TrafficClass cls, PortId output, int64_t delay_slots)
{
    if (Recorder* r = current())
        r->latencySample(cls, output, delay_slots);
}

}  // namespace an2::obs

#endif  // AN2_OBS_RECORDER_H
