#include "an2/obs/trace_export.h"

#include <algorithm>
#include <cstdio>

#include "an2/harness/json_writer.h"

namespace an2::obs {

namespace {

using harness::JsonWriter;

/** Deterministic timestamp for an event: slot base + in-slot offset that
    reflects the pipeline order (begin, mask, matcher, forward, arrivals,
    end). Slots before the first beginSlot clamp to slot 0. */
int64_t
eventTs(const Event& e)
{
    int64_t base = std::max<int64_t>(e.slot, 0) * kSlotTicks;
    switch (e.type) {
      case EventType::SlotBegin:
        return base;
      case EventType::CbrMask:
        return base + 100;
      case EventType::MatchIter:
        // One tick per iteration keeps to-completion runs ordered while
        // staying inside the slot span.
        return base + 200 + std::min<int64_t>(e.iter, 600);
      case EventType::Dequeue:
        return base + 900;
      case EventType::Enqueue:
        // Arrivals are buffered between runSlot calls; they carry the
        // slot of the preceding boundary.
        return base + 950;
      case EventType::Fault:
        // Injector events fire at the slot boundary, before the switch's
        // own beginSlot, so they carry the preceding slot's stamp.
        return base + 990;
      case EventType::SlotEnd:
        return base + kSlotTicks;
    }
    return base;
}

/** Span name for a fault transition, e.g. "fault:out3"; `down` reports
    whether the event opens (down) or closes (up) the outage span. */
const char*
faultSpanName(int kind, int target, bool& down, char* buf, size_t len)
{
    // Kinds follow fault::FaultKind: in_down, in_up, out_down, out_up,
    // link_down, link_up. Even = down, odd = up.
    down = (kind % 2) == 0;
    const char* side = kind <= 1 ? "in" : (kind <= 3 ? "out" : "link");
    std::snprintf(buf, len, "fault:%s%d", side, target);
    return buf;
}

const char*
matchIterName(uint8_t alg)
{
    switch (static_cast<MatchAlg>(alg)) {
      case MatchAlg::Pim:    return "pim.iter";
      case MatchAlg::Islip:  return "islip.iter";
      case MatchAlg::Greedy: return "greedy.pass";
    }
    return "match.iter";
}

/** Common prefix of every trace event: name, phase, ts, pid, tid. */
void
eventHead(JsonWriter& w, const char* name, const char* ph, int64_t ts,
          int tid)
{
    w.beginObject();
    w.key("name").value(name);
    w.key("ph").value(ph);
    w.key("ts").value(ts);
    w.key("pid").value(0);
    w.key("tid").value(tid);
}

void
writeEvent(JsonWriter& w, const Event& e)
{
    const int64_t ts = eventTs(e);
    switch (e.type) {
      case EventType::SlotBegin:
        eventHead(w, "slot", "B", ts, 0);
        w.key("args").beginObject();
        w.key("slot").value(static_cast<int64_t>(e.slot));
        w.endObject();
        w.endObject();
        break;
      case EventType::SlotEnd:
        eventHead(w, "slot", "E", ts, 0);
        w.key("args").beginObject();
        w.key("forwarded").value(e.a);
        w.key("cbr").value(e.b);
        w.key("match_size").value(e.c);
        w.endObject();
        w.endObject();
        // A parallel counter series makes the match-size trajectory
        // directly plottable in the viewer.
        eventHead(w, "match_size", "C", ts - kSlotTicks, 0);
        w.key("args").beginObject();
        w.key("size").value(e.c);
        w.endObject();
        w.endObject();
        break;
      case EventType::MatchIter:
        eventHead(w, matchIterName(e.alg), "i", ts, 1);
        w.key("s").value("t");
        w.key("args").beginObject();
        w.key("iter").value(static_cast<int>(e.iter));
        w.key("requests").value(e.a);
        w.key("grants").value(e.b);
        w.key("accepts").value(e.c);
        w.key("matched").value(e.d);
        w.key("kept").value(e.d - e.c);
        w.endObject();
        w.endObject();
        break;
      case EventType::CbrMask:
        eventHead(w, "cbr_mask", "i", ts, 0);
        w.key("s").value("t");
        w.key("args").beginObject();
        w.key("inputs").value(e.a);
        w.key("outputs").value(e.b);
        w.endObject();
        w.endObject();
        break;
      case EventType::Enqueue:
      case EventType::Dequeue:
        eventHead(w, e.type == EventType::Enqueue ? "enqueue" : "dequeue",
                  "i", ts, 2);
        w.key("s").value("t");
        w.key("args").beginObject();
        w.key("input").value(e.a);
        w.key("output").value(e.b);
        w.key("flow").value(e.c);
        w.key("seq").value(e.d);
        w.endObject();
        w.endObject();
        break;
      case EventType::Fault: {
        // Outage spans on a dedicated fault track: the down transition
        // opens the span, the up transition closes it. The ring may clip
        // either end; the checker tolerates unbalanced fault spans.
        char buf[48];
        bool down = false;
        const char* name = faultSpanName(e.a, e.b, down, buf, sizeof buf);
        eventHead(w, name, down ? "B" : "E", ts, 3);
        w.key("args").beginObject();
        w.key("kind").value(e.a);
        w.key("target").value(e.b);
        w.endObject();
        w.endObject();
        break;
      }
    }
}

}  // namespace

std::string
toChromeTraceJson(const Recorder& recorder)
{
    // Compact: trace documents can hold millions of events, and the
    // viewers do not care about whitespace.
    JsonWriter w(harness::JsonStyle::Compact);
    w.beginObject();
    w.key("schema").value("an2.trace.v1");
    w.key("displayTimeUnit").value("ms");
    w.key("otherData").beginObject();
    w.key("slot_ticks").value(kSlotTicks);
    w.key("dropped_events").value(recorder.droppedEvents());
    w.key("counters").beginObject();
    for (int c = 0; c < static_cast<int>(Counter::kCount); ++c)
        w.key(counterName(static_cast<Counter>(c)))
            .value(recorder.counter(static_cast<Counter>(c)));
    w.endObject();
    w.key("gauges").beginObject();
    for (int g = 0; g < static_cast<int>(Gauge::kCount); ++g)
        w.key(gaugeName(static_cast<Gauge>(g)))
            .value(recorder.gauge(static_cast<Gauge>(g)));
    w.endObject();
    w.key("iterations_per_slot_hist").beginArray();
    for (int64_t n : recorder.iterationsPerSlotHistogram())
        w.value(n);
    w.endArray();
    w.endObject();
    w.key("traceEvents").beginArray();
    for (size_t k = 0; k < recorder.eventCount(); ++k)
        writeEvent(w, recorder.event(k));
    w.endArray();
    w.endObject();
    return w.str();
}

}  // namespace an2::obs
