#include "an2/obs/timeseries.h"

#include <cstdio>

#include "an2/base/error.h"
#include "an2/harness/json_writer.h"
#include "an2/obs/recorder.h"

namespace an2::obs {

using harness::JsonStyle;
using harness::JsonWriter;

TimeSeries::TimeSeries(int every, size_t capacity)
    : every_(every), capacity_(capacity)
{
    AN2_REQUIRE(every > 0, "time-series period must be positive");
    AN2_REQUIRE(capacity > 0, "time-series ring must hold a sample");
    ring_.resize(capacity_);
}

void
TimeSeries::push(const MetricsSample& s)
{
    if (capacity_ == 0)
        return;
    size_t pos;
    if (size_ < capacity_) {
        pos = (head_ + size_) % capacity_;
        ++size_;
    } else {
        pos = head_;
        head_ = (head_ + 1) % capacity_;
        ++dropped_;
    }
    ring_[pos] = s;
}

const MetricsSample&
TimeSeries::sample(size_t k) const
{
    AN2_REQUIRE(k < size_, "sample index out of range");
    return ring_[(head_ + k) % capacity_];
}

namespace {

const char* kClassNames[kNumTrafficClasses] = {"cbr", "vbr", "be"};

void
writeSummary(JsonWriter& w, const LatencySummary& s)
{
    w.beginObject();
    w.key("count").value(s.count);
    w.key("p50").value(s.p50);
    w.key("p99").value(s.p99);
    w.key("p999").value(s.p999);
    w.key("max").value(s.max);
    w.endObject();
}

}  // namespace

std::string
metricsToJsonLines(const Recorder& recorder)
{
    const TimeSeries& ts = recorder.metrics();
    std::string out;
    for (size_t k = 0; k < ts.size(); ++k) {
        const MetricsSample& s = ts.sample(k);
        JsonWriter w(JsonStyle::Compact);
        w.beginObject();
        w.key("schema").value("an2.metrics.v1");
        w.key("source").value("switch");
        w.key("slot").value(static_cast<int64_t>(s.slot));
        w.key("window").value(ts.every());
        w.key("dropped_samples").value(s.dropped_samples);
        w.key("counters").beginObject();
        for (size_t c = 0; c < kNumCounters; ++c)
            w.key(counterName(static_cast<Counter>(c))).value(s.counters[c]);
        w.endObject();
        w.key("gauges").beginObject();
        for (size_t g = 0; g < kNumGauges; ++g)
            w.key(gaugeName(static_cast<Gauge>(g))).value(s.gauges[g]);
        w.endObject();
        if (recorder.latencyEnabled()) {
            w.key("latency").beginObject();
            for (size_t cls = 0; cls < static_cast<size_t>(kNumTrafficClasses); ++cls) {
                w.key(kClassNames[cls]);
                writeSummary(w, s.latency[cls]);
            }
            w.endObject();
            w.key("hop_delay").beginObject();
            for (size_t cls = 0; cls < static_cast<size_t>(kNumTrafficClasses); ++cls) {
                w.key(kClassNames[cls]);
                writeSummary(w, s.hop_delay[cls]);
            }
            w.endObject();
        }
        w.endObject();
        out += w.str();  // Compact str() ends with the newline.
    }
    return out;
}

namespace {

/** `name{class="cbr",quantile="0.5"} value` exposition lines for one
    histogram; `port` >= 0 adds a port label. */
void
promHistogram(std::string& out, const char* name, const char* cls,
              int port, const LogHistogram& h)
{
    char labels[64];
    if (port >= 0)
        std::snprintf(labels, sizeof labels, "class=\"%s\",port=\"%d\"",
                      cls, port);
    else
        std::snprintf(labels, sizeof labels, "class=\"%s\"", cls);
    char line[160];
    static const struct
    {
        const char* q;
        double v;
    } kQuantiles[] = {{"0.5", 0.50}, {"0.99", 0.99}, {"0.999", 0.999}};
    for (const auto& q : kQuantiles) {
        std::snprintf(line, sizeof line,
                      "%s{%s,quantile=\"%s\"} %lld\n", name, labels, q.q,
                      static_cast<long long>(h.quantile(q.v)));
        out += line;
    }
    std::snprintf(line, sizeof line, "%s_count{%s} %lld\n", name, labels,
                  static_cast<long long>(h.count()));
    out += line;
}

}  // namespace

std::string
metricsToPrometheus(const Recorder& recorder)
{
    std::string out;
    char line[160];
    for (size_t c = 0; c < kNumCounters; ++c) {
        const char* name = counterName(static_cast<Counter>(c));
        std::snprintf(line, sizeof line,
                      "# TYPE an2_%s counter\nan2_%s %lld\n", name, name,
                      static_cast<long long>(
                          recorder.counter(static_cast<Counter>(c))));
        out += line;
    }
    for (size_t g = 0; g < kNumGauges; ++g) {
        const char* name = gaugeName(static_cast<Gauge>(g));
        std::snprintf(line, sizeof line,
                      "# TYPE an2_%s gauge\nan2_%s %lld\n", name, name,
                      static_cast<long long>(
                          recorder.gauge(static_cast<Gauge>(g))));
        out += line;
    }
    if (!recorder.latencyEnabled())
        return out;
    out += "# TYPE an2_latency_slots summary\n";
    for (size_t cls = 0; cls < static_cast<size_t>(kNumTrafficClasses); ++cls) {
        TrafficClass tc = static_cast<TrafficClass>(cls);
        promHistogram(out, "an2_latency_slots", kClassNames[cls], -1,
                      recorder.latencyHistogram(tc));
        // Per-port breakdowns, ports with samples only (bounded output).
        for (int p = 0; p < recorder.ports(); ++p) {
            const LogHistogram* h = recorder.portLatencyHistogram(tc, p);
            if (h != nullptr && h->count() > 0)
                promHistogram(out, "an2_latency_slots", kClassNames[cls],
                              p, *h);
        }
    }
    out += "# TYPE an2_hop_delay_slots summary\n";
    for (size_t cls = 0; cls < static_cast<size_t>(kNumTrafficClasses); ++cls)
        promHistogram(out, "an2_hop_delay_slots", kClassNames[cls], -1,
                      recorder.hopDelayHistogram(
                          static_cast<TrafficClass>(cls)));
    return out;
}

}  // namespace an2::obs
