/**
 * @file
 * an2.trace.v1 — export a Recorder's binary event ring as Chrome
 * trace_event JSON, loadable in chrome://tracing and Perfetto.
 *
 * Document layout (object format; extra top-level keys are ignored by
 * the viewers):
 *
 *   {
 *     "schema": "an2.trace.v1",
 *     "displayTimeUnit": "ms",
 *     "otherData": { "slot_ticks": 1000, "dropped_events": D,
 *                    "counters": {...}, "gauges": {...} },
 *     "traceEvents": [ ... ]
 *   }
 *
 * Time base: one cell slot spans 1000 ticks (microseconds in the
 * viewer), so ts = slot * 1000 plus a small deterministic offset that
 * orders events within the slot. Track layout (all pid 0):
 *
 *   tid 0  "slot"      B/E pair per runSlot (args on E: forwarded, cbr,
 *                      match_size), "cbr_mask" instants, and a
 *                      "match_size" counter series ("C" events).
 *   tid 1  matcher     one "pim.iter" / "islip.iter" / "greedy.pass"
 *                      instant per iteration with args {iter, requests,
 *                      grants, accepts, matched, kept}.
 *   tid 2  queues      "enqueue"/"dequeue" instants with args
 *                      {input, output, flow, seq}.
 *
 * The export is fully deterministic: two identically-seeded runs produce
 * byte-identical documents (pinned by the golden-trace test), which is
 * also what lets the conformance suite diff Reference vs WordParallel
 * backends at the trace level.
 */
#ifndef AN2_OBS_TRACE_EXPORT_H
#define AN2_OBS_TRACE_EXPORT_H

#include <string>

#include "an2/obs/recorder.h"

namespace an2::obs {

/** Ticks per cell slot in exported timestamps. */
inline constexpr int64_t kSlotTicks = 1000;

/** Render the recorder's retained events as an an2.trace.v1 document. */
std::string toChromeTraceJson(const Recorder& recorder);

}  // namespace an2::obs

#endif  // AN2_OBS_TRACE_EXPORT_H
