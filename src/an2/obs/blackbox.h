/**
 * @file
 * The flight recorder: a post-mortem black box over a Recorder.
 *
 * The Recorder's drop-oldest event ring already *is* a last-K-slots
 * flight buffer; what a failure investigation lacks is a dump of that
 * buffer captured at the moment something went wrong, with the switch
 * state that the counters alone cannot reconstruct. A Blackbox arms two
 * triggers and serializes one `an2.blackbox.v1` document per firing:
 *
 *  - invariant panics: installs the base-layer panic hook, so any
 *    AN2_CHECK / AN2_ASSERT / AN2_PANIC on the observed thread dumps
 *    the post-mortem *before* the InternalError unwinds the state;
 *  - scripted faults: as a fault::FaultListener on a FaultInjector,
 *    port- and link-death events dump on arrival.
 *
 * A dump holds the failure reason, all counters plus their deltas since
 * the baseline (construction or the last rebaseline()), gauges, the
 * live-port masks and VOQ occupancy heatmap pulled from the switch via
 * SwitchModel::fillOccupancy, latency quantiles when tracked, and the
 * most recent trace events, newest window last. When a dump path is
 * configured each dump (best-effort) overwrites that file, so the file
 * always holds the latest post-mortem.
 *
 * Triggers fire on the construction thread only (probes and the panic
 * hook are thread-local). Dump serialization allocates freely — it runs
 * once, on the way down.
 */
#ifndef AN2_OBS_BLACKBOX_H
#define AN2_OBS_BLACKBOX_H

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "an2/base/error.h"
#include "an2/base/types.h"
#include "an2/fault/injector.h"
#include "an2/obs/probe.h"

namespace an2 {

class SwitchModel;

namespace obs {

class Recorder;

/** Trigger and output configuration for a Blackbox. */
struct BlackboxConfig
{
    /** Dump when a scripted port or link death is observed. */
    bool dump_on_fault = true;

    /** Install the panic hook: dump when an invariant fires. */
    bool arm_panic_hook = true;

    /** File to (over)write with each dump; empty keeps dumps in memory
        only (lastDump()). */
    std::string path;

    /** Most recent trace events decoded into a dump. */
    size_t max_events = 256;
};

/** Captures an2.blackbox.v1 post-mortems from a Recorder + switch. */
class Blackbox final : public fault::FaultListener
{
  public:
    /**
     * @param recorder The observed thread's recorder (must outlive this).
     * @param sw Switch to pull VOQ occupancy and port masks from; may be
     *        null (those sections are omitted).
     * @param config Triggers and output path.
     */
    explicit Blackbox(Recorder& recorder, const SwitchModel* sw = nullptr,
                      BlackboxConfig config = {});

    /** Restores the previously installed panic hook. */
    ~Blackbox() override;

    Blackbox(const Blackbox&) = delete;
    Blackbox& operator=(const Blackbox&) = delete;

    // ---- fault::FaultListener triggers -------------------------------

    void onPortDown(bool is_input, PortId port, SlotTime slot) override;
    void onLinkDown(int link, SlotTime slot) override;

    // ---- manual capture ----------------------------------------------

    /** Capture a dump now; returns the serialized document. */
    const std::string& dump(const std::string& reason, SlotTime slot);

    /** The most recent dump ("" before the first trigger). */
    const std::string& lastDump() const { return last_dump_; }

    /** Dumps captured so far. */
    int64_t dumps() const { return dumps_; }

    /** Reset the counter-delta baseline to the counters' current values
        (done once at construction). */
    void rebaseline();

  private:
    static void panicTrampoline(void* ctx, const std::string& msg);

    Recorder& rec_;
    const SwitchModel* sw_;
    BlackboxConfig cfg_;
    std::array<int64_t, kNumCounters> baseline_{};
    std::vector<int32_t> voq_;
    std::vector<int32_t> backlog_;
    std::string last_dump_;
    int64_t dumps_ = 0;
    bool hook_armed_ = false;
    PanicHook prev_hook_ = nullptr;
    void* prev_ctx_ = nullptr;
};

}  // namespace obs
}  // namespace an2

#endif  // AN2_OBS_BLACKBOX_H
