#include "an2/obs/blackbox.h"

#include <algorithm>
#include <cstdio>

#include "an2/harness/json_writer.h"
#include "an2/obs/recorder.h"
#include "an2/sim/switch.h"

namespace an2::obs {

using harness::JsonStyle;
using harness::JsonWriter;

namespace {

const char*
eventTypeName(EventType t)
{
    switch (t) {
      case EventType::SlotBegin: return "slot_begin";
      case EventType::SlotEnd:   return "slot_end";
      case EventType::MatchIter: return "match_iter";
      case EventType::CbrMask:   return "cbr_mask";
      case EventType::Enqueue:   return "enqueue";
      case EventType::Dequeue:   return "dequeue";
      case EventType::Fault:     return "fault";
    }
    return "unknown";
}

void
writeLatency(JsonWriter& w, const char* key, const LogHistogram& h)
{
    w.key(key).beginObject();
    w.key("count").value(h.count());
    w.key("p50").value(h.quantile(0.50));
    w.key("p99").value(h.quantile(0.99));
    w.key("p999").value(h.quantile(0.999));
    w.key("max").value(h.max());
    w.endObject();
}

}  // namespace

Blackbox::Blackbox(Recorder& recorder, const SwitchModel* sw,
                   BlackboxConfig config)
    : rec_(recorder), sw_(sw), cfg_(std::move(config))
{
    if (sw_ != nullptr) {
        const size_t n = static_cast<size_t>(sw_->size());
        voq_.assign(n * n, 0);
        backlog_.assign(n, 0);
    }
    rebaseline();
    if (cfg_.arm_panic_hook) {
        prev_hook_ = setPanicHook(&Blackbox::panicTrampoline, this,
                                  &prev_ctx_);
        hook_armed_ = true;
    }
}

Blackbox::~Blackbox()
{
    if (hook_armed_)
        setPanicHook(prev_hook_, prev_ctx_);
}

void
Blackbox::rebaseline()
{
    for (size_t c = 0; c < kNumCounters; ++c)
        baseline_[c] = rec_.counter(static_cast<Counter>(c));
}

void
Blackbox::panicTrampoline(void* ctx, const std::string& msg)
{
    auto* self = static_cast<Blackbox*>(ctx);
    self->dump(msg, self->rec_.currentSlot());
}

void
Blackbox::onPortDown(bool is_input, PortId port, SlotTime slot)
{
    if (!cfg_.dump_on_fault)
        return;
    char reason[48];
    std::snprintf(reason, sizeof reason, "fault: %s port %d down",
                  is_input ? "input" : "output", port);
    dump(reason, slot);
}

void
Blackbox::onLinkDown(int link, SlotTime slot)
{
    if (!cfg_.dump_on_fault)
        return;
    char reason[48];
    std::snprintf(reason, sizeof reason, "fault: link %d down", link);
    dump(reason, slot);
}

const std::string&
Blackbox::dump(const std::string& reason, SlotTime slot)
{
    ++dumps_;
    rec_.add(Counter::BlackboxDumps, 1);

    JsonWriter w(JsonStyle::Pretty);
    w.beginObject();
    w.key("schema").value("an2.blackbox.v1");
    w.key("reason").value(reason);
    w.key("slot").value(static_cast<int64_t>(slot));
    w.key("dump_index").value(dumps_);

    w.key("counters").beginObject();
    for (size_t c = 0; c < kNumCounters; ++c)
        w.key(counterName(static_cast<Counter>(c)))
            .value(rec_.counter(static_cast<Counter>(c)));
    w.endObject();
    // Deltas since the baseline, nonzero only: "what changed since
    // things were last known-good" is the first post-mortem question.
    w.key("counter_deltas").beginObject();
    for (size_t c = 0; c < kNumCounters; ++c) {
        int64_t delta =
            rec_.counter(static_cast<Counter>(c)) - baseline_[c];
        if (delta != 0)
            w.key(counterName(static_cast<Counter>(c))).value(delta);
    }
    w.endObject();
    w.key("gauges").beginObject();
    for (size_t g = 0; g < kNumGauges; ++g)
        w.key(gaugeName(static_cast<Gauge>(g)))
            .value(rec_.gauge(static_cast<Gauge>(g)));
    w.endObject();

    if (sw_ != nullptr) {
        const int n = sw_->size();
        w.key("ports").value(n);
        w.key("live_inputs").beginArray();
        for (PortId i = 0; i < n; ++i)
            w.value(sw_->inputPortLive(i) ? 1 : 0);
        w.endArray();
        w.key("live_outputs").beginArray();
        for (PortId j = 0; j < n; ++j)
            w.value(sw_->outputPortLive(j) ? 1 : 0);
        w.endArray();
        sw_->fillOccupancy(voq_.data(), backlog_.data());
        w.key("voq").beginArray();
        for (PortId i = 0; i < n; ++i) {
            w.beginArray();
            for (PortId j = 0; j < n; ++j)
                w.value(voq_[static_cast<size_t>(i) *
                                 static_cast<size_t>(n) +
                             static_cast<size_t>(j)]);
            w.endArray();
        }
        w.endArray();
        w.key("output_backlog").beginArray();
        for (PortId j = 0; j < n; ++j)
            w.value(backlog_[static_cast<size_t>(j)]);
        w.endArray();
        w.key("buffered_cells").value(sw_->bufferedCells());
        w.key("dropped_cells").value(sw_->droppedCells());
    }

    if (rec_.latencyEnabled()) {
        w.key("latency").beginObject();
        writeLatency(w, "cbr", rec_.latencyHistogram(TrafficClass::CBR));
        writeLatency(w, "vbr", rec_.latencyHistogram(TrafficClass::VBR));
        writeLatency(w, "be", rec_.latencyHistogram(TrafficClass::BE));
        w.endObject();
    }

    // The tail of the event ring, oldest-first; the ring's own
    // drop-oldest policy already kept the most recent window.
    size_t count = std::min(rec_.eventCount(), cfg_.max_events);
    size_t first = rec_.eventCount() - count;
    w.key("dropped_events").value(rec_.droppedEvents());
    w.key("events_omitted")
        .value(static_cast<int64_t>(first));
    w.key("events").beginArray();
    for (size_t k = first; k < rec_.eventCount(); ++k) {
        const Event& e = rec_.event(k);
        w.beginObject();
        w.key("slot").value(static_cast<int64_t>(e.slot));
        w.key("type").value(eventTypeName(e.type));
        w.key("a").value(e.a);
        w.key("b").value(e.b);
        w.key("c").value(e.c);
        w.key("d").value(e.d);
        if (e.type == EventType::MatchIter) {
            w.key("alg").value(static_cast<int>(e.alg));
            w.key("iter").value(static_cast<int>(e.iter));
        }
        w.endObject();
    }
    w.endArray();
    w.endObject();
    last_dump_ = w.str();

    if (!cfg_.path.empty()) {
        // Best-effort: a failed write must not mask the original panic.
        if (std::FILE* f = std::fopen(cfg_.path.c_str(), "w")) {
            std::fwrite(last_dump_.data(), 1, last_dump_.size(), f);
            std::fclose(f);
        }
    }
    return last_dump_;
}

}  // namespace an2::obs
