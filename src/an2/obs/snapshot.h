/**
 * @file
 * an2.snapshot.v1 — periodic switch-state snapshots as JSON lines.
 *
 * Every snapshot is one compact JSON document on one physical line:
 *
 *   {"schema":"an2.snapshot.v1","slot":S,"ports":N,"buffered":B,
 *    "voq":[[..N..],..N rows..],"output_backlog":[..N..],
 *    "match_size_hist":[..N+1..]}
 *
 *  - voq            dense N x N VOQ occupancy heatmap, row = input port,
 *                   column = output port (cells queued for that pair,
 *                   CBR + VBR).
 *  - output_backlog cells destined to each output (VOQ column sums plus
 *                   any output-queue occupancy under speedup > 1).
 *  - match_size_hist cumulative histogram of VBR match size per slot
 *                   since the recorder was created (index = size).
 *
 * Lines stream into a `.jsonl` file via `an2_sweep --snapshot`; each
 * parses independently, so a consumer can tail a running simulation.
 */
#ifndef AN2_OBS_SNAPSHOT_H
#define AN2_OBS_SNAPSHOT_H

#include <cstdint>
#include <string>
#include <vector>

#include "an2/base/types.h"

namespace an2::obs {

/**
 * Serialize one snapshot as a single JSON line (trailing newline
 * included). `voq` is ports x ports row-major; `backlog` has `ports`
 * entries; `match_hist` is indexed by match size.
 */
std::string snapshotLine(SlotTime slot, int ports, const int32_t* voq,
                         const int32_t* backlog, int buffered_cells,
                         const std::vector<int64_t>& match_hist);

}  // namespace an2::obs

#endif  // AN2_OBS_SNAPSHOT_H
