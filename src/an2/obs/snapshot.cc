#include "an2/obs/snapshot.h"

#include "an2/base/error.h"
#include "an2/harness/json_writer.h"

namespace an2::obs {

std::string
snapshotLine(SlotTime slot, int ports, const int32_t* voq,
             const int32_t* backlog, int buffered_cells,
             const std::vector<int64_t>& match_hist)
{
    AN2_REQUIRE(ports > 0, "snapshot needs a positive port count");
    harness::JsonWriter w(harness::JsonStyle::Compact);
    w.beginObject();
    w.key("schema").value("an2.snapshot.v1");
    w.key("slot").value(static_cast<int64_t>(slot));
    w.key("ports").value(ports);
    w.key("buffered").value(buffered_cells);
    w.key("voq").beginArray();
    for (int i = 0; i < ports; ++i) {
        w.beginArray();
        for (int j = 0; j < ports; ++j)
            w.value(voq[static_cast<size_t>(i) * static_cast<size_t>(ports) +
                        static_cast<size_t>(j)]);
        w.endArray();
    }
    w.endArray();
    w.key("output_backlog").beginArray();
    for (int j = 0; j < ports; ++j)
        w.value(backlog[static_cast<size_t>(j)]);
    w.endArray();
    w.key("match_size_hist").beginArray();
    for (int64_t n : match_hist)
        w.value(n);
    w.endArray();
    w.endObject();
    return w.str();  // str() appends the newline: one line per snapshot
}

}  // namespace an2::obs
