/**
 * @file
 * Log-linear (HDR-style) latency histogram for delay-in-slots samples.
 *
 * The bin layout is the classic two-level scheme: values below
 * 2^kSubBits land in exact unit bins; above that, each power-of-two
 * range is split into kSubBuckets equal sub-buckets, so the relative
 * quantization error is bounded by 1/kSubBuckets (~3%) at every scale.
 * All bins are preallocated in the constructor — add() touches one
 * counter and never allocates, which is what lets the slot loop keep
 * latency tracking attached under the zero-alloc test.
 *
 * Quantiles return the *lower bound* of the bin holding the requested
 * rank — an integer, deterministic across platforms, so exported
 * p50/p99/p999 values are byte-stable in JSON.
 */
#ifndef AN2_OBS_LATENCY_H
#define AN2_OBS_LATENCY_H

#include <algorithm>
#include <bit>
#include <cstdint>
#include <vector>

namespace an2::obs {

class LogHistogram
{
  public:
    /** Sub-bucket resolution: 2^5 = 32 buckets per power of two. */
    static constexpr int kSubBits = 5;
    static constexpr int64_t kSubBuckets = int64_t{1} << kSubBits;

    /** Values at or above 2^kValueBits clamp into the last bin (a delay
        of 2^34 slots is ~3 months of simulated time at 424 ns/slot). */
    static constexpr int kValueBits = 34;

    /** Total bins: the exact range plus kSubBuckets per extra octave. */
    static constexpr size_t kBins =
        static_cast<size_t>(kSubBuckets) +
        static_cast<size_t>(kValueBits - kSubBits) *
            static_cast<size_t>(kSubBuckets);

    LogHistogram() : bins_(kBins, 0) {}

    /** Bin index for `v` (negatives clamp to 0, huge values to last). */
    static size_t binOf(int64_t v)
    {
        if (v < kSubBuckets)
            return static_cast<size_t>(std::max<int64_t>(v, 0));
        // msb >= kSubBits here; shifting by (msb - kSubBits) renormalizes
        // v into [kSubBuckets, 2*kSubBuckets).
        int msb = 63 - std::countl_zero(static_cast<uint64_t>(v));
        int shift = msb - kSubBits;
        int64_t sub = v >> shift;
        size_t bin = static_cast<size_t>(shift + 1) *
                         static_cast<size_t>(kSubBuckets) +
                     static_cast<size_t>(sub - kSubBuckets);
        return std::min(bin, kBins - 1);
    }

    /** Smallest value mapping into bin `b` (the quantile estimate). */
    static int64_t binLowerBound(size_t b)
    {
        if (b < static_cast<size_t>(kSubBuckets))
            return static_cast<int64_t>(b);
        int shift = static_cast<int>(b >> kSubBits) - 1;
        int64_t sub =
            kSubBuckets + static_cast<int64_t>(b & (kSubBuckets - 1));
        return sub << shift;
    }

    void add(int64_t v)
    {
        ++bins_[binOf(v)];
        ++count_;
        sum_ += std::max<int64_t>(v, 0);
        max_ = std::max(max_, v);
    }

    int64_t count() const { return count_; }
    int64_t sum() const { return sum_; }
    int64_t max() const { return max_; }

    /** Mean of the exact samples (not the binned estimate); 0 if empty. */
    double mean() const
    {
        return count_ == 0 ? 0.0
                           : static_cast<double>(sum_) /
                                 static_cast<double>(count_);
    }

    /**
     * Value at quantile `q` in [0, 1]: the lower bound of the bin that
     * contains the ceil(q * count)-th smallest sample (rank clamps to at
     * least 1). Returns 0 when the histogram is empty.
     */
    int64_t quantile(double q) const
    {
        if (count_ == 0)
            return 0;
        int64_t rank = static_cast<int64_t>(
            static_cast<double>(count_) * q + 0.9999999999);
        rank = std::clamp<int64_t>(rank, 1, count_);
        int64_t seen = 0;
        for (size_t b = 0; b < kBins; ++b) {
            seen += bins_[b];
            if (seen >= rank)
                return binLowerBound(b);
        }
        return binLowerBound(kBins - 1);
    }

    /** Add every sample of `other` into this histogram. */
    void merge(const LogHistogram& other)
    {
        for (size_t b = 0; b < kBins; ++b)
            bins_[b] += other.bins_[b];
        count_ += other.count_;
        sum_ += other.sum_;
        max_ = std::max(max_, other.max_);
    }

    void reset()
    {
        std::fill(bins_.begin(), bins_.end(), 0);
        count_ = 0;
        sum_ = 0;
        max_ = 0;
    }

    const std::vector<int64_t>& bins() const { return bins_; }

  private:
    std::vector<int64_t> bins_;
    int64_t count_ = 0;
    int64_t sum_ = 0;
    int64_t max_ = 0;
};

}  // namespace an2::obs

#endif  // AN2_OBS_LATENCY_H
