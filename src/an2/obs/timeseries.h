/**
 * @file
 * Windowed metrics time series: every K slots the Recorder copies all
 * counters, gauges, and latency-quantile summaries into one POD
 * MetricsSample and pushes it onto a preallocated ring (drop-oldest).
 * Sampling happens at slot-multiples of K — in network runs those line
 * up with engine window barriers, so the exported series is
 * byte-identical for any thread count.
 *
 * Exported forms (exporters live in timeseries.cc and allocate freely;
 * the ring itself never does after construction):
 *
 *  - metricsToJsonLines(): one `an2.metrics.v1` JSON document per line,
 *    cumulative counters, suitable for offline diffing and plotting.
 *  - metricsToPrometheus(): point-in-time text exposition of the
 *    recorder's current state (counters, gauges, latency quantiles).
 */
#ifndef AN2_OBS_TIMESERIES_H
#define AN2_OBS_TIMESERIES_H

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "an2/base/types.h"
#include "an2/obs/probe.h"

namespace an2::obs {

class Recorder;

/** Per-class latency summary inside a sample (delay in slots). */
struct LatencySummary
{
    int64_t count = 0;
    int64_t p50 = 0;
    int64_t p99 = 0;
    int64_t p999 = 0;
    int64_t max = 0;
};

/** One windowed sample: the recorder's cumulative state at `slot`. */
struct MetricsSample
{
    SlotTime slot = 0;
    int64_t dropped_samples = 0;  ///< ring evictions before this sample
    std::array<int64_t, kNumCounters> counters{};
    std::array<int64_t, kNumGauges> gauges{};
    /** Delivery latency per class, indexed by TrafficClass value. */
    std::array<LatencySummary, kNumTrafficClasses> latency{};
    /** Per-hop queueing delay per class, indexed by TrafficClass value. */
    std::array<LatencySummary, kNumTrafficClasses> hop_delay{};
};

/** Fixed-capacity drop-oldest ring of MetricsSamples. */
class TimeSeries
{
  public:
    TimeSeries() = default;

    TimeSeries(int every, size_t capacity);

    /** Sampling period in slots; 0 means the series is disabled. */
    int every() const { return every_; }

    bool enabled() const { return every_ > 0; }

    /** Append `s` (drop-oldest once full; no allocation). */
    void push(const MetricsSample& s);

    size_t size() const { return size_; }

    /** The k-th oldest retained sample, k in [0, size()). */
    const MetricsSample& sample(size_t k) const;

    /** Samples evicted because the ring was full. */
    int64_t dropped() const { return dropped_; }

  private:
    std::vector<MetricsSample> ring_;
    int every_ = 0;
    size_t capacity_ = 0;
    size_t head_ = 0;
    size_t size_ = 0;
    int64_t dropped_ = 0;
};

/** All retained samples as an2.metrics.v1 JSON lines (source "switch"). */
std::string metricsToJsonLines(const Recorder& recorder);

/** Prometheus-style text exposition of the recorder's current state. */
std::string metricsToPrometheus(const Recorder& recorder);

}  // namespace an2::obs

#endif  // AN2_OBS_TIMESERIES_H
