/**
 * @file
 * The zero-overhead probe layer: named monotonic counters, gauges, and
 * fixed-size binary trace events that instrument the scheduler hot path
 * without perturbing it.
 *
 * Design contract (enforced by tests/zero_alloc_test.cc and the CI
 * perf-smoke bench row):
 *
 *  - Compiled out entirely under -DAN2_OBS_DISABLED: current() folds to a
 *    constant nullptr, so every probe site is dead code.
 *  - Enabled but *unattached* (no Recorder for this thread): each probe
 *    costs one thread-local load plus one predictable branch. No work is
 *    done to compute probe arguments on this path — instrumented code
 *    fetches current() first and only derives counts when it is non-null.
 *  - Attached: counters and gauges are plain array slots, trace events
 *    land in a preallocated ring (drop-oldest) — zero heap allocations in
 *    steady state. Only snapshot serialization (off by default) builds
 *    strings.
 *
 * Attachment is per *thread* (thread_local), so the sweep harness's
 * worker pool stays observation-free while a foreground traced run on
 * another thread records. A Recorder must outlive its attachment.
 */
#ifndef AN2_OBS_PROBE_H
#define AN2_OBS_PROBE_H

#include <cstdint>

#include "an2/base/types.h"

namespace an2::obs {

/**
 * Monotonic counters, one slot each in the attached Recorder. The
 * match-phase counters (RequestsSeen .. KeepGrantRetained) are defined
 * identically for the Reference and WordParallel matcher backends; the
 * obs conformance test pins the two to byte-identical values.
 */
enum class Counter : int {
    /** runSlot() completions. */
    SlotsRun = 0,
    /** Cells accepted into input buffers. */
    CellsEnqueued,
    /** Cells dequeued toward the fabric (CBR + VBR). */
    CellsDequeued,
    /** CBR cells forwarded by the frame schedule. */
    CbrCellsForwarded,
    /** Matcher iterations executed (request/grant/accept rounds). */
    MatchIterations,
    /** Iterations that added at least one match. */
    ProductiveIterations,
    /** (free input, free output) request pairs seen by grant arbiters. */
    RequestsSeen,
    /** Grants issued by output arbiters. */
    GrantsIssued,
    /** Grants accepted by input arbiters (matches added). */
    AcceptsIssued,
    /** Matches retained from earlier iterations of the same slot (the
        §3.3 keep-grant optimization, summed at each iteration end). */
    KeepGrantRetained,
    /** Input ports masked from VBR matching by CBR reservations. */
    CbrMaskedInputs,
    /** Output ports masked from VBR matching by CBR reservations. */
    CbrMaskedOutputs,
    /** Periodic state snapshots emitted. */
    SnapshotsTaken,
    /** Scripted fault events applied by the injector. */
    FaultEvents,
    /** Cells lost to faults (dead ports, in-flight loss). */
    CellsDroppedByFaults,
    /** Cells discarded by the HEC corruption check. */
    CellsCorrupted,
    /** CBR reservations revoked by port failures. */
    CbrReservationsRevoked,
    /** CBR reservations re-placed after port revivals. */
    CbrReservationsRebooked,
    /** ECMP route computations (topo::Router::path calls). */
    RouteLookups,
    /** Flows re-pathed around a dead link (ECMP failover). */
    EcmpReroutes,
    /** Conservative windows executed by the sharded network engine. */
    ShardWindows,
    /** Warm start: previous-slot edges reused to seed a matching. */
    MatchEdgesReused,
    /** Warm start: edges added by the repair pass over free ports. */
    MatchEdgesRepaired,
    /** Warm start: slots whose matching was replayed wholesale because
        the request matrix was unchanged since the previous slot. */
    WarmStartFullReuses,
    /** Cells delivered to their final sink (latency samples taken). */
    CellsDelivered,
    /** Trace-ring events overwritten because the ring was full
        (drop-oldest eviction; a truncated trace is detectable here). */
    TraceEventsDropped,
    /** Time-series samples taken into the metrics ring. */
    MetricsSamples,
    /** Flight-recorder post-mortems captured. */
    BlackboxDumps,
    /** CBR flows whose path was rebuilt after a fault (full rate). */
    CbrRestorations,
    /** Re-admission attempts made by the path restorer. */
    CbrRestoreRetries,
    /** CBR flows abandoned after the retry budget ran out. */
    CbrAbandoned,
    /** Matcher phases executed by a CIOQ switch (speedup S runs S per
        slot; an IQ switch never bumps this). */
    SpeedupPhases,
    /** Delivered cells by class (sampled where CellsDelivered is). */
    CbrCellsDelivered,
    VbrCellsDelivered,
    BeCellsDelivered,
    kCount,
};

/** Number of counters, for sizing flat sample arrays. */
inline constexpr size_t kNumCounters = static_cast<size_t>(Counter::kCount);

/** Point-in-time gauges (last written value wins). */
enum class Gauge : int {
    /** Total cells buffered in the switch at the last slot boundary. */
    BufferedCells = 0,
    /** Size of the most recent slot's VBR matching. */
    LastMatchSize,
    /** High-water mark of any single output queue (CIOQ switches). */
    OutputQueueHwm,
    kCount,
};

/** Number of gauges, for sizing flat sample arrays. */
inline constexpr size_t kNumGauges = static_cast<size_t>(Gauge::kCount);

/** Stable probe names for JSON export and reports. */
const char* counterName(Counter c);
const char* gaugeName(Gauge g);

/** Binary trace event kinds recorded into the ring. */
enum class EventType : uint8_t {
    SlotBegin = 0,  ///< a=0 b=0 c=0 d=0
    SlotEnd,        ///< a=cells forwarded, b=CBR forwarded, c=VBR match size
    MatchIter,      ///< a=requests b=grants c=accepts d=total matched after
    CbrMask,        ///< a=masked inputs, b=masked outputs
    Enqueue,        ///< a=input b=output c=flow d=seq (low 32 bits)
    Dequeue,        ///< a=input b=output c=flow d=seq (low 32 bits)
    Fault,          ///< a=FaultKind b=target port/link
};

/** Which algorithm emitted a MatchIter event. */
enum class MatchAlg : uint8_t {
    Pim = 0,
    Islip = 1,
    Greedy = 2,
};

/**
 * One fixed-size binary trace record. Plain POD so conformance tests can
 * memcmp sequences and the ring is a flat preallocated array.
 */
struct Event
{
    SlotTime slot = 0;   ///< recorder's current slot when recorded
    int32_t a = 0;
    int32_t b = 0;
    int32_t c = 0;
    int32_t d = 0;
    EventType type = EventType::SlotBegin;
    uint8_t alg = 0;     ///< MatchAlg for MatchIter events
    uint16_t iter = 0;   ///< iteration index for MatchIter events
};

class Recorder;

#ifdef AN2_OBS_DISABLED

/** Compiled out: probes fold to `if (nullptr)` and vanish. */
constexpr Recorder*
current()
{
    return nullptr;
}

inline void
attach(Recorder*)
{
}

inline void
detach()
{
}

#else

namespace detail {
extern thread_local Recorder* tls_recorder;
}  // namespace detail

/** The Recorder observing this thread, or nullptr (the common case). */
inline Recorder*
current()
{
    return detail::tls_recorder;
}

/** Attach `r` to this thread's probes; pass nullptr to detach. */
void attach(Recorder* r);

/** Detach this thread's Recorder (probes become no-ops again). */
void detach();

#endif  // AN2_OBS_DISABLED

}  // namespace an2::obs

#endif  // AN2_OBS_PROBE_H
