#include "an2/obs/recorder.h"

#include <algorithm>

#include "an2/base/error.h"
#include "an2/obs/snapshot.h"

namespace an2::obs {

#ifndef AN2_OBS_DISABLED

namespace detail {
thread_local Recorder* tls_recorder = nullptr;
}  // namespace detail

void
attach(Recorder* r)
{
    detail::tls_recorder = r;
}

void
detach()
{
    detail::tls_recorder = nullptr;
}

#endif  // AN2_OBS_DISABLED

const char*
counterName(Counter c)
{
    switch (c) {
      case Counter::SlotsRun:             return "slots_run";
      case Counter::CellsEnqueued:        return "cells_enqueued";
      case Counter::CellsDequeued:        return "cells_dequeued";
      case Counter::CbrCellsForwarded:    return "cbr_cells_forwarded";
      case Counter::MatchIterations:      return "match_iterations";
      case Counter::ProductiveIterations: return "productive_iterations";
      case Counter::RequestsSeen:         return "requests_seen";
      case Counter::GrantsIssued:         return "grants_issued";
      case Counter::AcceptsIssued:        return "accepts_issued";
      case Counter::KeepGrantRetained:    return "keep_grant_retained";
      case Counter::CbrMaskedInputs:      return "cbr_masked_inputs";
      case Counter::CbrMaskedOutputs:     return "cbr_masked_outputs";
      case Counter::SnapshotsTaken:       return "snapshots_taken";
      case Counter::FaultEvents:          return "fault_events";
      case Counter::CellsDroppedByFaults: return "cells_dropped_by_faults";
      case Counter::CellsCorrupted:       return "cells_corrupted";
      case Counter::CbrReservationsRevoked:
          return "cbr_reservations_revoked";
      case Counter::CbrReservationsRebooked:
          return "cbr_reservations_rebooked";
      case Counter::RouteLookups:         return "route_lookups";
      case Counter::EcmpReroutes:         return "ecmp_reroutes";
      case Counter::ShardWindows:         return "shard_windows";
      case Counter::MatchEdgesReused:     return "match_edges_reused";
      case Counter::MatchEdgesRepaired:   return "match_edges_repaired";
      case Counter::WarmStartFullReuses:  return "warm_start_full_reuses";
      case Counter::CellsDelivered:       return "cells_delivered";
      case Counter::TraceEventsDropped:   return "trace_events_dropped";
      case Counter::MetricsSamples:       return "metrics_samples";
      case Counter::BlackboxDumps:        return "blackbox_dumps";
      case Counter::CbrRestorations:      return "cbr_restorations";
      case Counter::CbrRestoreRetries:    return "cbr_restore_retries";
      case Counter::CbrAbandoned:         return "cbr_abandoned";
      case Counter::SpeedupPhases:        return "speedup_phases";
      case Counter::CbrCellsDelivered:    return "cbr_cells_delivered";
      case Counter::VbrCellsDelivered:    return "vbr_cells_delivered";
      case Counter::BeCellsDelivered:     return "be_cells_delivered";
      case Counter::kCount:               break;
    }
    return "unknown";
}

const char*
gaugeName(Gauge g)
{
    switch (g) {
      case Gauge::BufferedCells:  return "buffered_cells";
      case Gauge::LastMatchSize:  return "last_match_size";
      case Gauge::OutputQueueHwm: return "output_queue_hwm";
      case Gauge::kCount:         break;
    }
    return "unknown";
}

Recorder::Recorder(const RecorderConfig& config)
    : counters_(static_cast<size_t>(Counter::kCount), 0),
      gauges_(static_cast<size_t>(Gauge::kCount), 0),
      capacity_(config.trace_capacity),
      snapshot_every_(config.snapshot_every),
      ports_(config.ports),
      track_latency_(config.track_latency),
      metrics_every_(config.metrics_every)
{
    AN2_REQUIRE(config.max_iterations > 0,
                "iterations histogram needs at least one bin");
    AN2_REQUIRE(config.snapshot_every >= 0,
                "snapshot period must be non-negative");
    AN2_REQUIRE(config.ports >= 0, "ports must be non-negative");
    AN2_REQUIRE(config.snapshot_every == 0 || config.ports > 0,
                "snapshots need the switch size (RecorderConfig::ports)");
    AN2_REQUIRE(config.metrics_every >= 0,
                "metrics period must be non-negative");
    AN2_REQUIRE(config.metrics_every == 0 || config.metrics_capacity > 0,
                "metrics sampling needs a non-empty ring");
    if (track_latency_ && ports_ > 0)
        lat_port_.assign(static_cast<size_t>(kNumTrafficClasses) *
                             static_cast<size_t>(ports_),
                         LogHistogram{});
    if (metrics_every_ > 0)
        metrics_ = TimeSeries(metrics_every_, config.metrics_capacity);
    ring_.resize(capacity_);
    iter_hist_.assign(static_cast<size_t>(config.max_iterations), 0);
    if (ports_ > 0) {
        match_hist_.assign(static_cast<size_t>(ports_) + 1, 0);
        voq_.assign(static_cast<size_t>(ports_) *
                        static_cast<size_t>(ports_),
                    0);
        backlog_.assign(static_cast<size_t>(ports_), 0);
    }
}

Recorder::~Recorder()
{
    if (current() == this)
        detach();
}

const Event&
Recorder::event(size_t k) const
{
    AN2_REQUIRE(k < size_, "event index out of range");
    return ring_[(head_ + k) % capacity_];
}

void
Recorder::record(EventType type, MatchAlg alg, uint16_t iter, int32_t a,
                 int32_t b, int32_t c, int32_t d)
{
    if (capacity_ == 0)
        return;
    size_t pos;
    if (size_ < capacity_) {
        pos = (head_ + size_) % capacity_;
        ++size_;
    } else {
        // Full: overwrite the oldest (drop-oldest keeps the most recent
        // window, which is what a post-mortem wants).
        pos = head_;
        head_ = (head_ + 1) % capacity_;
        ++dropped_;
        add(Counter::TraceEventsDropped, 1);
    }
    Event& e = ring_[pos];
    e.slot = slot_;
    e.a = a;
    e.b = b;
    e.c = c;
    e.d = d;
    e.type = type;
    e.alg = static_cast<uint8_t>(alg);
    e.iter = iter;
}

void
Recorder::beginSlot(SlotTime slot)
{
    // Sample at the *start* of a window-boundary slot so the sample
    // covers everything through the previous slot, including deliveries
    // the driver records after runSlot() returns.
    if (metrics_every_ > 0 && slot > 0 && slot % metrics_every_ == 0)
        sampleMetricsNow(slot);
    slot_ = slot;
    slot_productive_iters_ = 0;
    record(EventType::SlotBegin, MatchAlg::Pim, 0, 0, 0, 0, 0);
}

void
Recorder::endSlot(int forwarded, int cbr_forwarded, int match_size)
{
    add(Counter::SlotsRun, 1);
    set(Gauge::LastMatchSize, match_size);
    size_t ibin = std::min<size_t>(
        static_cast<size_t>(std::max(slot_productive_iters_, 0)),
        iter_hist_.size() - 1);
    ++iter_hist_[ibin];
    if (!match_hist_.empty()) {
        size_t mbin = std::min<size_t>(
            static_cast<size_t>(std::max(match_size, 0)),
            match_hist_.size() - 1);
        ++match_hist_[mbin];
    }
    record(EventType::SlotEnd, MatchAlg::Pim, 0, forwarded, cbr_forwarded,
           match_size, 0);
}

void
Recorder::matchIteration(MatchAlg alg, int iter, int requests, int grants,
                         int accepts, int matched_total)
{
    add(Counter::MatchIterations, 1);
    add(Counter::RequestsSeen, requests);
    add(Counter::GrantsIssued, grants);
    add(Counter::AcceptsIssued, accepts);
    add(Counter::KeepGrantRetained, matched_total - accepts);
    if (accepts > 0) {
        add(Counter::ProductiveIterations, 1);
        ++slot_productive_iters_;
    }
    record(EventType::MatchIter, alg, static_cast<uint16_t>(iter), requests,
           grants, accepts, matched_total);
}

void
Recorder::cbrMasked(int masked_inputs, int masked_outputs)
{
    add(Counter::CbrMaskedInputs, masked_inputs);
    add(Counter::CbrMaskedOutputs, masked_outputs);
    record(EventType::CbrMask, MatchAlg::Pim, 0, masked_inputs,
           masked_outputs, 0, 0);
}

void
Recorder::faultEvent(int kind, int target)
{
    add(Counter::FaultEvents, 1);
    record(EventType::Fault, MatchAlg::Pim, 0, kind, target, 0, 0);
}

void
Recorder::cellEnqueued(const Cell& cell)
{
    add(Counter::CellsEnqueued, 1);
    record(EventType::Enqueue, MatchAlg::Pim, 0, cell.input, cell.output,
           cell.flow, static_cast<int32_t>(cell.seq));
}

void
Recorder::cellDequeued(const Cell& cell)
{
    add(Counter::CellsDequeued, 1);
    if (track_latency_)
        hop_class_[static_cast<size_t>(cell.cls)].add(
            std::max<int64_t>(slot_ - cell.arrival_slot, 0));
    record(EventType::Dequeue, MatchAlg::Pim, 0, cell.input, cell.output,
           cell.flow, static_cast<int32_t>(cell.seq));
}

void
Recorder::latencySample(TrafficClass cls, PortId output, int64_t delay_slots)
{
    add(Counter::CellsDelivered, 1);
    // Per-class delivery counters sit contiguously after
    // CbrCellsDelivered in TrafficClass order.
    add(static_cast<Counter>(
            static_cast<int>(Counter::CbrCellsDelivered) +
            static_cast<int>(cls)),
        1);
    if (!track_latency_)
        return;
    int64_t d = std::max<int64_t>(delay_slots, 0);
    lat_class_[static_cast<size_t>(cls)].add(d);
    if (!lat_port_.empty() && output >= 0 && output < ports_)
        lat_port_[static_cast<size_t>(cls) * static_cast<size_t>(ports_) +
                  static_cast<size_t>(output)]
            .add(d);
}

const LogHistogram*
Recorder::portLatencyHistogram(TrafficClass cls, PortId output) const
{
    if (lat_port_.empty() || output < 0 || output >= ports_)
        return nullptr;
    return &lat_port_[static_cast<size_t>(cls) *
                          static_cast<size_t>(ports_) +
                      static_cast<size_t>(output)];
}

namespace {

/** Fill one per-class summary from a histogram. */
void
summarize(const LogHistogram& h, LatencySummary& out)
{
    out.count = h.count();
    out.p50 = h.quantile(0.50);
    out.p99 = h.quantile(0.99);
    out.p999 = h.quantile(0.999);
    out.max = h.max();
}

}  // namespace

void
Recorder::sampleMetricsNow(SlotTime slot)
{
    if (!metrics_.enabled() || slot == last_sample_slot_)
        return;
    last_sample_slot_ = slot;
    add(Counter::MetricsSamples, 1);
    MetricsSample& s = sample_scratch_;
    s.slot = slot;
    s.dropped_samples = metrics_.dropped();
    for (size_t c = 0; c < kNumCounters; ++c)
        s.counters[c] = counters_[c];
    for (size_t g = 0; g < kNumGauges; ++g)
        s.gauges[g] = gauges_[g];
    for (size_t cls = 0; cls < static_cast<size_t>(kNumTrafficClasses);
         ++cls) {
        summarize(lat_class_[cls], s.latency[cls]);
        summarize(hop_class_[cls], s.hop_delay[cls]);
    }
    metrics_.push(s);
}

void
Recorder::commitSnapshot(SlotTime slot, int buffered_cells)
{
    AN2_REQUIRE(snapshotsEnabled(), "snapshots were not configured");
    add(Counter::SnapshotsTaken, 1);
    snapshot_jsonl_ +=
        snapshotLine(slot, ports_, voq_.data(), backlog_.data(),
                     buffered_cells, match_hist_);
}

}  // namespace an2::obs
