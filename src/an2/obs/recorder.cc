#include "an2/obs/recorder.h"

#include <algorithm>

#include "an2/base/error.h"
#include "an2/obs/snapshot.h"

namespace an2::obs {

#ifndef AN2_OBS_DISABLED

namespace detail {
thread_local Recorder* tls_recorder = nullptr;
}  // namespace detail

void
attach(Recorder* r)
{
    detail::tls_recorder = r;
}

void
detach()
{
    detail::tls_recorder = nullptr;
}

#endif  // AN2_OBS_DISABLED

const char*
counterName(Counter c)
{
    switch (c) {
      case Counter::SlotsRun:             return "slots_run";
      case Counter::CellsEnqueued:        return "cells_enqueued";
      case Counter::CellsDequeued:        return "cells_dequeued";
      case Counter::CbrCellsForwarded:    return "cbr_cells_forwarded";
      case Counter::MatchIterations:      return "match_iterations";
      case Counter::ProductiveIterations: return "productive_iterations";
      case Counter::RequestsSeen:         return "requests_seen";
      case Counter::GrantsIssued:         return "grants_issued";
      case Counter::AcceptsIssued:        return "accepts_issued";
      case Counter::KeepGrantRetained:    return "keep_grant_retained";
      case Counter::CbrMaskedInputs:      return "cbr_masked_inputs";
      case Counter::CbrMaskedOutputs:     return "cbr_masked_outputs";
      case Counter::SnapshotsTaken:       return "snapshots_taken";
      case Counter::FaultEvents:          return "fault_events";
      case Counter::CellsDroppedByFaults: return "cells_dropped_by_faults";
      case Counter::CellsCorrupted:       return "cells_corrupted";
      case Counter::CbrReservationsRevoked:
          return "cbr_reservations_revoked";
      case Counter::CbrReservationsRebooked:
          return "cbr_reservations_rebooked";
      case Counter::RouteLookups:         return "route_lookups";
      case Counter::EcmpReroutes:         return "ecmp_reroutes";
      case Counter::ShardWindows:         return "shard_windows";
      case Counter::MatchEdgesReused:     return "match_edges_reused";
      case Counter::MatchEdgesRepaired:   return "match_edges_repaired";
      case Counter::WarmStartFullReuses:  return "warm_start_full_reuses";
      case Counter::kCount:               break;
    }
    return "unknown";
}

const char*
gaugeName(Gauge g)
{
    switch (g) {
      case Gauge::BufferedCells: return "buffered_cells";
      case Gauge::LastMatchSize: return "last_match_size";
      case Gauge::kCount:        break;
    }
    return "unknown";
}

Recorder::Recorder(const RecorderConfig& config)
    : counters_(static_cast<size_t>(Counter::kCount), 0),
      gauges_(static_cast<size_t>(Gauge::kCount), 0),
      capacity_(config.trace_capacity),
      snapshot_every_(config.snapshot_every),
      ports_(config.ports)
{
    AN2_REQUIRE(config.max_iterations > 0,
                "iterations histogram needs at least one bin");
    AN2_REQUIRE(config.snapshot_every >= 0,
                "snapshot period must be non-negative");
    AN2_REQUIRE(config.ports >= 0, "ports must be non-negative");
    AN2_REQUIRE(config.snapshot_every == 0 || config.ports > 0,
                "snapshots need the switch size (RecorderConfig::ports)");
    ring_.resize(capacity_);
    iter_hist_.assign(static_cast<size_t>(config.max_iterations), 0);
    if (ports_ > 0) {
        match_hist_.assign(static_cast<size_t>(ports_) + 1, 0);
        voq_.assign(static_cast<size_t>(ports_) *
                        static_cast<size_t>(ports_),
                    0);
        backlog_.assign(static_cast<size_t>(ports_), 0);
    }
}

Recorder::~Recorder()
{
    if (current() == this)
        detach();
}

const Event&
Recorder::event(size_t k) const
{
    AN2_REQUIRE(k < size_, "event index out of range");
    return ring_[(head_ + k) % capacity_];
}

void
Recorder::record(EventType type, MatchAlg alg, uint16_t iter, int32_t a,
                 int32_t b, int32_t c, int32_t d)
{
    if (capacity_ == 0)
        return;
    size_t pos;
    if (size_ < capacity_) {
        pos = (head_ + size_) % capacity_;
        ++size_;
    } else {
        // Full: overwrite the oldest (drop-oldest keeps the most recent
        // window, which is what a post-mortem wants).
        pos = head_;
        head_ = (head_ + 1) % capacity_;
        ++dropped_;
    }
    Event& e = ring_[pos];
    e.slot = slot_;
    e.a = a;
    e.b = b;
    e.c = c;
    e.d = d;
    e.type = type;
    e.alg = static_cast<uint8_t>(alg);
    e.iter = iter;
}

void
Recorder::beginSlot(SlotTime slot)
{
    slot_ = slot;
    slot_productive_iters_ = 0;
    record(EventType::SlotBegin, MatchAlg::Pim, 0, 0, 0, 0, 0);
}

void
Recorder::endSlot(int forwarded, int cbr_forwarded, int match_size)
{
    add(Counter::SlotsRun, 1);
    set(Gauge::LastMatchSize, match_size);
    size_t ibin = std::min<size_t>(
        static_cast<size_t>(std::max(slot_productive_iters_, 0)),
        iter_hist_.size() - 1);
    ++iter_hist_[ibin];
    if (!match_hist_.empty()) {
        size_t mbin = std::min<size_t>(
            static_cast<size_t>(std::max(match_size, 0)),
            match_hist_.size() - 1);
        ++match_hist_[mbin];
    }
    record(EventType::SlotEnd, MatchAlg::Pim, 0, forwarded, cbr_forwarded,
           match_size, 0);
}

void
Recorder::matchIteration(MatchAlg alg, int iter, int requests, int grants,
                         int accepts, int matched_total)
{
    add(Counter::MatchIterations, 1);
    add(Counter::RequestsSeen, requests);
    add(Counter::GrantsIssued, grants);
    add(Counter::AcceptsIssued, accepts);
    add(Counter::KeepGrantRetained, matched_total - accepts);
    if (accepts > 0) {
        add(Counter::ProductiveIterations, 1);
        ++slot_productive_iters_;
    }
    record(EventType::MatchIter, alg, static_cast<uint16_t>(iter), requests,
           grants, accepts, matched_total);
}

void
Recorder::cbrMasked(int masked_inputs, int masked_outputs)
{
    add(Counter::CbrMaskedInputs, masked_inputs);
    add(Counter::CbrMaskedOutputs, masked_outputs);
    record(EventType::CbrMask, MatchAlg::Pim, 0, masked_inputs,
           masked_outputs, 0, 0);
}

void
Recorder::faultEvent(int kind, int target)
{
    add(Counter::FaultEvents, 1);
    record(EventType::Fault, MatchAlg::Pim, 0, kind, target, 0, 0);
}

void
Recorder::cellEnqueued(const Cell& cell)
{
    add(Counter::CellsEnqueued, 1);
    record(EventType::Enqueue, MatchAlg::Pim, 0, cell.input, cell.output,
           cell.flow, static_cast<int32_t>(cell.seq));
}

void
Recorder::cellDequeued(const Cell& cell)
{
    add(Counter::CellsDequeued, 1);
    record(EventType::Dequeue, MatchAlg::Pim, 0, cell.input, cell.output,
           cell.flow, static_cast<int32_t>(cell.seq));
}

void
Recorder::commitSnapshot(SlotTime slot, int buffered_cells)
{
    AN2_REQUIRE(snapshotsEnabled(), "snapshots were not configured");
    add(Counter::SnapshotsTaken, 1);
    snapshot_jsonl_ +=
        snapshotLine(slot, ports_, voq_.data(), backlog_.data(),
                     buffered_cells, match_hist_);
}

}  // namespace an2::obs
