/**
 * @file
 * Per-flow FIFO cell queue (paper §3.1/§3.3).
 *
 * The AN2 switch keeps a FIFO queue per flow so that cells within a flow
 * are never re-ordered, while cells of different flows may overtake each
 * other freely. Only the head cell of a flow is eligible for transfer.
 */
#ifndef AN2_QUEUEING_FLOW_QUEUE_H
#define AN2_QUEUEING_FLOW_QUEUE_H

#include <deque>

#include "an2/base/error.h"
#include "an2/cell/cell.h"

namespace an2 {

/** FIFO queue of cells belonging to a single flow. */
class FlowQueue
{
  public:
    /** Append a cell (most recently arrived). */
    void push(const Cell& cell) { cells_.push_back(cell); }

    /** The head cell; queue must be non-empty. */
    const Cell& front() const;

    /** Remove and return the head cell; queue must be non-empty. */
    Cell pop();

    bool empty() const { return cells_.empty(); }

    int size() const { return static_cast<int>(cells_.size()); }

  private:
    std::deque<Cell> cells_;
};

}  // namespace an2

#endif  // AN2_QUEUEING_FLOW_QUEUE_H
