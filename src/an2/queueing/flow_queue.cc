#include "an2/queueing/flow_queue.h"

namespace an2 {

const Cell&
FlowQueue::front() const
{
    AN2_ASSERT(!cells_.empty(), "front() on empty flow queue");
    return cells_.front();
}

Cell
FlowQueue::pop()
{
    AN2_ASSERT(!cells_.empty(), "pop() on empty flow queue");
    Cell c = cells_.front();
    cells_.pop_front();
    return c;
}

}  // namespace an2
