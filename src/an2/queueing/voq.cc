#include "an2/queueing/voq.h"

#include "an2/base/error.h"
#include "an2/matching/wordset.h"

namespace an2 {

InputBuffer::InputBuffer(int n_outputs)
    : n_outputs_(n_outputs), eligible_(static_cast<size_t>(n_outputs)),
      cells_per_output_(static_cast<size_t>(n_outputs), 0),
      occ_(static_cast<size_t>(wordset::numWords(n_outputs)), 0)
{
    AN2_REQUIRE(n_outputs > 0, "input buffer needs at least one output");
}

InputBuffer::PerFlow&
InputBuffer::flowState(FlowId f)
{
    return flows_[f];
}

void
InputBuffer::enqueue(const Cell& cell)
{
    enqueueAs(cell.flow, cell);
}

void
InputBuffer::enqueueAs(FlowId queue_key, const Cell& cell)
{
    AN2_REQUIRE(cell.output >= 0 && cell.output < n_outputs_,
                "cell routed to invalid output " << cell.output);
    AN2_REQUIRE(queue_key != kNoFlow, "cell has no queue key");
    PerFlow& st = flowState(queue_key);
    // All cells of a flow take the same path (paper §2): the routing
    // table maps each flow to exactly one output.
    if (st.output == kNoPort)
        st.output = cell.output;
    AN2_REQUIRE(st.output == cell.output,
                "queue " << queue_key << " routed to output " << st.output
                         << " but cell claims output " << cell.output);
    st.cells.push_back(cell);
    ++total_cells_;
    if (++cells_per_output_[static_cast<size_t>(cell.output)] == 1)
        wordset::setBit(occ_.data(), cell.output);
    if (!st.eligible_listed) {
        eligible_[static_cast<size_t>(cell.output)].push_back(queue_key);
        st.eligible_listed = true;
    }
}

bool
InputBuffer::hasCellFor(PortId j) const
{
    return cellCountFor(j) > 0;
}

int
InputBuffer::cellCountFor(PortId j) const
{
    AN2_REQUIRE(j >= 0 && j < n_outputs_, "output " << j << " out of range");
    return cells_per_output_[static_cast<size_t>(j)];
}

int
InputBuffer::eligibleFlowsFor(PortId j) const
{
    AN2_REQUIRE(j >= 0 && j < n_outputs_, "output " << j << " out of range");
    const auto& list = eligible_[static_cast<size_t>(j)];
    int n = 0;
    for (size_t k = 0; k < list.size(); ++k) {
        auto it = flows_.find(list.at(k));
        if (it != flows_.end() && !it->second.cells.empty())
            ++n;
    }
    return n;
}

void
InputBuffer::noteDequeued(PortId j)
{
    --total_cells_;
    if (--cells_per_output_[static_cast<size_t>(j)] == 0)
        wordset::clearBit(occ_.data(), j);
}

Cell
InputBuffer::dequeueFor(PortId j)
{
    AN2_REQUIRE(hasCellFor(j), "no cell queued for output " << j);
    auto& list = eligible_[static_cast<size_t>(j)];
    while (true) {
        AN2_ASSERT(!list.empty(),
                   "eligible list empty despite queued cells for " << j);
        FlowId f = list.front();
        list.pop_front();
        PerFlow& st = flowState(f);
        if (st.cells.empty()) {
            // Stale entry left behind by dequeueFlow(); lazily discard.
            st.eligible_listed = false;
            continue;
        }
        Cell c = st.cells.front();
        st.cells.pop_front();
        noteDequeued(j);
        if (!st.cells.empty()) {
            list.push_back(f);  // round-robin: rotate to the back
        } else {
            st.eligible_listed = false;
        }
        return c;
    }
}

bool
InputBuffer::flowHasCell(FlowId f) const
{
    auto it = flows_.find(f);
    return it != flows_.end() && !it->second.cells.empty();
}

void
InputBuffer::rebindFlow(FlowId f, PortId new_output)
{
    AN2_REQUIRE(new_output >= 0 && new_output < n_outputs_,
                "rebind to invalid output " << new_output);
    auto it = flows_.find(f);
    if (it == flows_.end())
        return;
    PerFlow& st = it->second;
    if (st.output == kNoPort || st.output == new_output)
        return;
    PortId old = st.output;

    // Drop the flow's seat in the old eligible list (stale entries from
    // dequeueFlow() included); the rotation keeps the others in order.
    if (st.eligible_listed) {
        RingQueue<FlowId>& list = eligible_[static_cast<size_t>(old)];
        for (size_t i = 0, sz = list.size(); i < sz; ++i) {
            FlowId x = list.front();
            list.pop_front();
            if (x != f)
                list.push_back(x);
        }
        st.eligible_listed = false;
    }

    auto n = static_cast<int>(st.cells.size());
    if (n == 0) {
        st.output = kNoPort;  // next enqueue binds fresh
        return;
    }
    // Retag queued cells in place; a full rotation keeps FIFO order.
    for (int i = 0; i < n; ++i) {
        Cell c = st.cells.front();
        st.cells.pop_front();
        c.output = new_output;
        st.cells.push_back(c);
    }
    if ((cells_per_output_[static_cast<size_t>(old)] -= n) == 0)
        wordset::clearBit(occ_.data(), old);
    if ((cells_per_output_[static_cast<size_t>(new_output)] += n) == n)
        wordset::setBit(occ_.data(), new_output);
    st.output = new_output;
    eligible_[static_cast<size_t>(new_output)].push_back(f);
    st.eligible_listed = true;
}

Cell
InputBuffer::dequeueFlow(FlowId f)
{
    AN2_REQUIRE(flowHasCell(f), "flow " << f << " has no queued cell");
    PerFlow& st = flowState(f);
    Cell c = st.cells.front();
    st.cells.pop_front();
    noteDequeued(c.output);
    // If the flow is now empty, its eligible-list entry (if any) becomes
    // stale and is discarded lazily by dequeueFor().
    return c;
}

}  // namespace an2
