#include "an2/queueing/voq.h"

#include "an2/base/error.h"
#include "an2/matching/wordset.h"

namespace an2 {

InputBuffer::InputBuffer(int n_outputs)
    : n_outputs_(n_outputs), flow_index_(n_outputs),
      eligible_(static_cast<size_t>(n_outputs)),
      per_output_(static_cast<size_t>(n_outputs)),
      occ_(static_cast<size_t>(wordset::numWords(n_outputs)), 0)
{
    AN2_REQUIRE(n_outputs > 0, "input buffer needs at least one output");
}

int32_t
InputBuffer::flowSlot(FlowId f)
{
    int32_t& idx = flow_index_[f];
    if (idx == 0) {
        slots_.emplace_back();
        slots_.back().flow = f;
        idx = static_cast<int32_t>(slots_.size());
    }
    return idx - 1;
}

void
InputBuffer::reconcileSole(PerOutput& po, PortId j)
{
    AN2_ASSERT(po.sole > 0, "reconcile on an output that is not single-flow");
    PerFlow& prev = slots_[static_cast<size_t>(po.sole - 1)];
    const bool should = !prev.cells.empty();
    if (prev.eligible_listed != should) {
        auto& list = eligible_[static_cast<size_t>(j)];
        if (should) {
            list.push_back(po.sole - 1);
        } else {
            // The direct paths froze the flow's seat from its first
            // enqueue; a single-flow output's ring holds nothing else.
            AN2_ASSERT(list.size() == 1 && list.front() == po.sole - 1,
                       "single-flow eligible ring out of sync for output "
                           << j);
            list.pop_front();
        }
        prev.eligible_listed = should;
    }
    po.sole = -1;
}

void
InputBuffer::enqueue(const Cell& cell)
{
    enqueueAs(cell.flow, cell);
}

void
InputBuffer::enqueueAs(FlowId queue_key, const Cell& cell)
{
    AN2_REQUIRE(cell.output >= 0 && cell.output < n_outputs_,
                "cell routed to invalid output " << cell.output);
    AN2_REQUIRE(queue_key != kNoFlow, "cell has no queue key");
    PerOutput& po = per_output_[static_cast<size_t>(cell.output)];
    if (po.sole > 0) {
        PerFlow& st = slots_[static_cast<size_t>(po.sole - 1)];
        if (st.flow == queue_key) {
            // Direct: the output's only flow. Its eligible seat from the
            // first enqueue still stands, so no list maintenance.
            st.cells.push_back(cell);
            ++total_cells_;
            if (++po.cells == 1)
                wordset::setBit(occ_.data(), cell.output);
            return;
        }
    }
    const int32_t slot = flowSlot(queue_key);
    PerFlow& st = slots_[static_cast<size_t>(slot)];
    // All cells of a flow take the same path (paper §2): the routing
    // table maps each flow to exactly one output.
    if (st.output == kNoPort) {
        st.output = cell.output;
        if (po.sole == 0)
            po.sole = slot + 1;
        else if (po.sole > 0)
            reconcileSole(po, cell.output);  // second flow for this output
    }
    AN2_REQUIRE(st.output == cell.output,
                "queue " << queue_key << " routed to output " << st.output
                         << " but cell claims output " << cell.output);
    st.cells.push_back(cell);
    ++total_cells_;
    if (++po.cells == 1)
        wordset::setBit(occ_.data(), cell.output);
    if (!st.eligible_listed) {
        eligible_[static_cast<size_t>(cell.output)].push_back(slot);
        st.eligible_listed = true;
    }
}

bool
InputBuffer::hasCellFor(PortId j) const
{
    return cellCountFor(j) > 0;
}

int
InputBuffer::cellCountFor(PortId j) const
{
    AN2_REQUIRE(j >= 0 && j < n_outputs_, "output " << j << " out of range");
    return per_output_[static_cast<size_t>(j)].cells;
}

int
InputBuffer::eligibleFlowsFor(PortId j) const
{
    AN2_REQUIRE(j >= 0 && j < n_outputs_, "output " << j << " out of range");
    const auto& list = eligible_[static_cast<size_t>(j)];
    int n = 0;
    for (size_t k = 0; k < list.size(); ++k)
        if (!slots_[static_cast<size_t>(list.at(k))].cells.empty())
            ++n;
    return n;
}

void
InputBuffer::noteDequeued(PortId j)
{
    --total_cells_;
    if (--per_output_[static_cast<size_t>(j)].cells == 0)
        wordset::clearBit(occ_.data(), j);
}

Cell
InputBuffer::dequeueFor(PortId j)
{
    AN2_REQUIRE(hasCellFor(j), "no cell queued for output " << j);
    PerOutput& po = per_output_[static_cast<size_t>(j)];
    if (po.sole > 0) {
        // Direct: the output's only flow owns every queued cell, and a
        // round-robin among one flow is the identity — skip the ring.
        PerFlow& st = slots_[static_cast<size_t>(po.sole - 1)];
        AN2_ASSERT(!st.cells.empty(),
                   "single-flow count out of sync for output " << j);
        Cell c = st.cells.front();
        st.cells.pop_front();
        --total_cells_;
        if (--po.cells == 0)
            wordset::clearBit(occ_.data(), j);
        return c;
    }
    auto& list = eligible_[static_cast<size_t>(j)];
    while (true) {
        AN2_ASSERT(!list.empty(),
                   "eligible list empty despite queued cells for " << j);
        int32_t s = list.front();
        list.pop_front();
        PerFlow& st = slots_[static_cast<size_t>(s)];
        if (st.cells.empty()) {
            // Stale entry left behind by dequeueFlow(); lazily discard.
            st.eligible_listed = false;
            continue;
        }
        Cell c = st.cells.front();
        st.cells.pop_front();
        noteDequeued(j);
        if (!st.cells.empty()) {
            list.push_back(s);  // round-robin: rotate to the back
        } else {
            st.eligible_listed = false;
        }
        return c;
    }
}

bool
InputBuffer::flowHasCell(FlowId f) const
{
    const int32_t* idx = flow_index_.get(f);
    return idx != nullptr &&
           !slots_[static_cast<size_t>(*idx - 1)].cells.empty();
}

void
InputBuffer::rebindFlow(FlowId f, PortId new_output)
{
    AN2_REQUIRE(new_output >= 0 && new_output < n_outputs_,
                "rebind to invalid output " << new_output);
    int32_t* idx = flow_index_.get(f);
    if (idx == nullptr)
        return;
    const int32_t slot = *idx - 1;
    PerFlow& st = slots_[static_cast<size_t>(slot)];
    if (st.output == kNoPort || st.output == new_output)
        return;
    PortId old = st.output;

    // Drop the flow's seat in the old eligible list (stale entries from
    // dequeueFlow() included); the rotation keeps the others in order.
    if (st.eligible_listed) {
        RingQueue<int32_t>& list = eligible_[static_cast<size_t>(old)];
        for (size_t i = 0, sz = list.size(); i < sz; ++i) {
            int32_t x = list.front();
            list.pop_front();
            if (x != slot)
                list.push_back(x);
        }
        st.eligible_listed = false;
    }
    PerOutput& po_old = per_output_[static_cast<size_t>(old)];
    if (po_old.sole == slot + 1)
        po_old.sole = 0;  // the old output loses its only flow

    auto n = static_cast<int>(st.cells.size());
    if (n == 0) {
        st.output = kNoPort;  // next enqueue binds fresh
        return;
    }
    // Retag queued cells in place; a full rotation keeps FIFO order.
    for (int i = 0; i < n; ++i) {
        Cell c = st.cells.front();
        st.cells.pop_front();
        c.output = new_output;
        st.cells.push_back(c);
    }
    PerOutput& po_new = per_output_[static_cast<size_t>(new_output)];
    if ((po_old.cells -= n) == 0)
        wordset::clearBit(occ_.data(), old);
    if ((po_new.cells += n) == n)
        wordset::setBit(occ_.data(), new_output);
    st.output = new_output;
    if (po_new.sole == 0)
        po_new.sole = slot + 1;
    else if (po_new.sole > 0)
        reconcileSole(po_new, new_output);  // second flow for this output
    eligible_[static_cast<size_t>(new_output)].push_back(slot);
    st.eligible_listed = true;
}

int
InputBuffer::purgeFlow(FlowId f)
{
    int32_t* idx = flow_index_.get(f);
    if (idx == nullptr)
        return 0;
    const int32_t slot = *idx - 1;
    PerFlow& st = slots_[static_cast<size_t>(slot)];
    const PortId out = st.output;
    if (out == kNoPort)
        return 0;  // never bound (or already purged): nothing queued
    if (st.eligible_listed) {
        RingQueue<int32_t>& list = eligible_[static_cast<size_t>(out)];
        for (size_t i = 0, sz = list.size(); i < sz; ++i) {
            int32_t x = list.front();
            list.pop_front();
            if (x != slot)
                list.push_back(x);
        }
        st.eligible_listed = false;
    }
    PerOutput& po = per_output_[static_cast<size_t>(out)];
    if (po.sole == slot + 1)
        po.sole = 0;  // the output loses its only flow
    const auto n = static_cast<int>(st.cells.size());
    while (!st.cells.empty())
        st.cells.pop_front();
    if (n > 0) {
        if ((po.cells -= n) == 0)
            wordset::clearBit(occ_.data(), out);
        total_cells_ -= n;
    }
    st.output = kNoPort;  // next enqueue binds fresh
    return n;
}

Cell
InputBuffer::dequeueFlow(FlowId f)
{
    AN2_REQUIRE(flowHasCell(f), "flow " << f << " has no queued cell");
    PerFlow& st =
        slots_[static_cast<size_t>(*flow_index_.get(f) - 1)];
    Cell c = st.cells.front();
    st.cells.pop_front();
    noteDequeued(c.output);
    // If the flow is now empty, its eligible-list entry (if any) becomes
    // stale and is discarded lazily by dequeueFor().
    return c;
}

}  // namespace an2
