/**
 * @file
 * Random-access input buffer for one switch input port (paper §3.3).
 *
 * The buffer is organized exactly as the paper describes the hardware:
 * each flow has its own FIFO queue of cells; per output, a round-robin
 * list of *eligible* flows (flows with at least one queued cell) is
 * maintained. The input requests output j during matching iff the
 * eligible list for j is non-empty; when the request is granted, the next
 * eligible flow is served round-robin.
 *
 * Viewed per output, this structure is a virtual output queue (VOQ);
 * the class name reflects that common framing.
 */
#ifndef AN2_QUEUEING_VOQ_H
#define AN2_QUEUEING_VOQ_H

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "an2/base/ring.h"
#include "an2/cell/cell.h"
#include "an2/cell/flow.h"

namespace an2 {

/** Input buffer with per-flow FIFOs and per-output eligible-flow lists. */
class InputBuffer
{
  public:
    /** @param n_outputs Number of switch outputs. */
    explicit InputBuffer(int n_outputs);

    /**
     * Buffer an arriving cell. The cell's `output` field routes it to the
     * appropriate eligible list.
     */
    void enqueue(const Cell& cell);

    /**
     * Buffer a cell under an explicit queue key instead of its flow id.
     * Cells sharing a key share one FIFO queue and one round-robin seat;
     * used to model switches that merge all of an input's traffic into a
     * single FIFO per output (the Figure 9 "round-robin among input
     * ports" discipline) rather than AN2's per-flow queues. The key must
     * consistently map to one output, like a flow.
     */
    void enqueueAs(FlowId queue_key, const Cell& cell);

    /** True when some flow has a cell queued for output j. */
    bool hasCellFor(PortId j) const;

    /** Number of cells queued for output j (across all flows). */
    int cellCountFor(PortId j) const;

    /** Total buffered cells at this input. */
    int totalCells() const { return total_cells_; }

    /**
     * Occupancy bitmask: bit j set iff some cell is queued for output j.
     * Maintained incrementally on enqueue/dequeue; this is the input's
     * request row, read directly by the switch to patch its persistent
     * request matrix instead of rescanning every (input, output) pair.
     */
    const uint64_t* occupancyMask() const { return occ_.data(); }

    /** Number of 64-bit words in occupancyMask(). */
    int occupancyWords() const { return static_cast<int>(occ_.size()); }

    /** Number of distinct eligible flows for output j. */
    int eligibleFlowsFor(PortId j) const;

    /**
     * Serve output j: pick the next eligible flow round-robin, dequeue its
     * head cell, and maintain the eligible list. Requires hasCellFor(j).
     */
    Cell dequeueFor(PortId j);

    /** True when a specific flow has at least one queued cell. */
    bool flowHasCell(FlowId f) const;

    /**
     * Dequeue the head cell of a specific flow (used by the CBR frame
     * schedule, which reserves slots per flow). Requires flowHasCell(f).
     */
    Cell dequeueFlow(FlowId f);

    /**
     * Repoint a flow at a new output (VBR rerouting). Queued cells are
     * retagged in FIFO order and the per-output counts, occupancy bits,
     * and eligible lists move with them; a no-op when the flow has no
     * state here or is already bound to `new_output`.
     */
    void rebindFlow(FlowId f, PortId new_output);

  private:
    struct PerFlow
    {
        /** Per-flow FIFO; a ring so steady-state churn never allocates
            (std::deque slides through 512-byte blocks as it rotates). */
        RingQueue<Cell> cells;
        bool eligible_listed = false;  ///< present in an eligible list
        PortId output = kNoPort;       ///< the flow's routed output
    };

    PerFlow& flowState(FlowId f);

    /** Record one fewer cell for output j, keeping occ_ in sync. */
    void noteDequeued(PortId j);

    int n_outputs_;
    int total_cells_ = 0;
    std::unordered_map<FlowId, PerFlow> flows_;
    /**
     * Round-robin eligible-flow list per output. A ring (not a deque)
     * so steady-state rotation never allocates.
     */
    std::vector<RingQueue<FlowId>> eligible_;
    /** Cells queued per output, maintained incrementally. */
    std::vector<int> cells_per_output_;
    /** Bit j set iff cells_per_output_[j] > 0. */
    std::vector<uint64_t> occ_;
};

}  // namespace an2

#endif  // AN2_QUEUEING_VOQ_H
