/**
 * @file
 * Random-access input buffer for one switch input port (paper §3.3).
 *
 * The buffer is organized exactly as the paper describes the hardware:
 * each flow has its own FIFO queue of cells; per output, a round-robin
 * list of *eligible* flows (flows with at least one queued cell) is
 * maintained. The input requests output j during matching iff the
 * eligible list for j is non-empty; when the request is granted, the next
 * eligible flow is served round-robin.
 *
 * Viewed per output, this structure is a virtual output queue (VOQ);
 * the class name reflects that common framing.
 *
 * Layout: per-flow state lives in a dense append-only vector; a flat
 * integer-keyed index maps flow ids to vector slots, and the per-output
 * eligible rings store slot indices directly. Enqueue therefore costs
 * one linear-probe lookup, and dequeue — the matching-driven hot path —
 * touches no hash structure at all.
 *
 * Single-flow fast path: most workloads route exactly one flow to each
 * (input, output) pair, so each per-output record carries the slot of
 * the *sole* flow bound to that output (sticky: it degrades to "many"
 * the moment a second flow binds and never recovers). While an output
 * is single-flow, enqueue skips the flow-index probe and dequeue skips
 * the eligible ring entirely — the round-robin among one flow is the
 * identity — and the transition to many flows restores the eligible
 * list to exactly the state the general path would have maintained.
 */
#ifndef AN2_QUEUEING_VOQ_H
#define AN2_QUEUEING_VOQ_H

#include <cstdint>
#include <vector>

#include "an2/base/flat_map.h"
#include "an2/base/ring.h"
#include "an2/cell/cell.h"
#include "an2/cell/flow.h"

namespace an2 {

/** Input buffer with per-flow FIFOs and per-output eligible-flow lists. */
class InputBuffer
{
  public:
    /** @param n_outputs Number of switch outputs. */
    explicit InputBuffer(int n_outputs);

    /**
     * Buffer an arriving cell. The cell's `output` field routes it to the
     * appropriate eligible list.
     */
    void enqueue(const Cell& cell);

    /**
     * Buffer a cell under an explicit queue key instead of its flow id.
     * Cells sharing a key share one FIFO queue and one round-robin seat;
     * used to model switches that merge all of an input's traffic into a
     * single FIFO per output (the Figure 9 "round-robin among input
     * ports" discipline) rather than AN2's per-flow queues. The key must
     * consistently map to one output, like a flow.
     */
    void enqueueAs(FlowId queue_key, const Cell& cell);

    /** True when some flow has a cell queued for output j. */
    bool hasCellFor(PortId j) const;

    /** Number of cells queued for output j (across all flows). */
    int cellCountFor(PortId j) const;

    /** Total buffered cells at this input. */
    int totalCells() const { return total_cells_; }

    /**
     * Occupancy bitmask: bit j set iff some cell is queued for output j.
     * Maintained incrementally on enqueue/dequeue; this is the input's
     * request row, read directly by the switch to patch its persistent
     * request matrix instead of rescanning every (input, output) pair.
     */
    const uint64_t* occupancyMask() const { return occ_.data(); }

    /** Number of 64-bit words in occupancyMask(). */
    int occupancyWords() const { return static_cast<int>(occ_.size()); }

    /** Number of distinct eligible flows for output j. */
    int eligibleFlowsFor(PortId j) const;

    /**
     * Serve output j: pick the next eligible flow round-robin, dequeue its
     * head cell, and maintain the eligible list. Requires hasCellFor(j).
     */
    Cell dequeueFor(PortId j);

    /** True when a specific flow has at least one queued cell. */
    bool flowHasCell(FlowId f) const;

    /**
     * Dequeue the head cell of a specific flow (used by the CBR frame
     * schedule, which reserves slots per flow). Requires flowHasCell(f).
     */
    Cell dequeueFlow(FlowId f);

    /**
     * Repoint a flow at a new output (VBR rerouting). Queued cells are
     * retagged in FIFO order and the per-output counts, occupancy bits,
     * and eligible lists move with them; a no-op when the flow has no
     * state here or is already bound to `new_output`.
     */
    void rebindFlow(FlowId f, PortId new_output);

    /**
     * Discard every queued cell of a flow (CBR path restoration: cells
     * buffered at a switch that left the flow's path can never be
     * scheduled again). Counts, occupancy bits, and eligible lists are
     * maintained; the flow's slot survives for later re-use.
     * @return the number of cells discarded.
     */
    int purgeFlow(FlowId f);

  private:
    struct PerFlow
    {
        /** Per-flow FIFO; a ring so steady-state churn never allocates
            (std::deque slides through 512-byte blocks as it rotates). */
        RingQueue<Cell> cells;
        bool eligible_listed = false;  ///< present in an eligible list
        PortId output = kNoPort;       ///< the flow's routed output
        FlowId flow = kNoFlow;         ///< the flow this slot belongs to
    };

    /**
     * Per-output bookkeeping, one cache-resident record combining the
     * queued-cell count with the single-flow fast-path hint so the hot
     * paths touch one line per output instead of two arrays.
     */
    struct PerOutput
    {
        int32_t cells = 0;  ///< cells queued for this output (all flows)
        /** slots_ index + 1 of the only flow ever bound to this output;
            0 = none yet, -1 = two or more (sticky). */
        int32_t sole = 0;
    };

    /** Index into slots_ for flow f, creating the slot on first touch. */
    int32_t flowSlot(FlowId f);

    /** Record one fewer cell for output j, keeping occ_ in sync. */
    void noteDequeued(PortId j);

    /**
     * Output j is gaining a second flow: re-establish the general-path
     * eligible-list invariant (listed iff non-empty) that the direct
     * single-flow paths elide, then mark the output multi-flow.
     */
    void reconcileSole(PerOutput& po, PortId j);

    int n_outputs_;
    int total_cells_ = 0;
    /**
     * FlowId -> slots_ index + 1 (0 = absent). A linear-probe flat map,
     * so the enqueue path's lookup is one multiply and a short probe;
     * the map is consulted only when a cell arrives or a caller names a
     * flow explicitly — the dequeue path below never hashes at all.
     */
    FlatMap<int32_t> flow_index_;
    /** Per-flow state, append-only (flows are never removed, matching
        the paper's per-connection queue model). */
    std::vector<PerFlow> slots_;
    /**
     * Round-robin eligible list per output, holding slots_ *indices*
     * (not flow ids): serving an output is ring-pop + direct vector
     * access. A ring (not a deque) so steady-state rotation never
     * allocates.
     */
    std::vector<RingQueue<int32_t>> eligible_;
    /** Count + single-flow hint per output, maintained incrementally. */
    std::vector<PerOutput> per_output_;
    /** Bit j set iff per_output_[j].cells > 0. */
    std::vector<uint64_t> occ_;
};

}  // namespace an2

#endif  // AN2_QUEUEING_VOQ_H
