#include "an2/queueing/output_queue.h"

namespace an2 {

Cell
OutputQueue::pop()
{
    AN2_ASSERT(!cells_.empty(), "pop() on empty output queue");
    Cell c = cells_.front();
    cells_.pop_front();
    return c;
}

}  // namespace an2
