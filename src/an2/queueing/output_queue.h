/**
 * @file
 * FIFO output queue, used by the perfect-output-queueing reference switch
 * (paper §2.4) and by input-queued switches with output speedup k > 1
 * (replicated fabric, §3.1), where up to k cells may arrive at an output
 * in a slot but only one may depart.
 */
#ifndef AN2_QUEUEING_OUTPUT_QUEUE_H
#define AN2_QUEUEING_OUTPUT_QUEUE_H

#include <algorithm>
#include <deque>

#include "an2/base/error.h"
#include "an2/cell/cell.h"

namespace an2 {

/** FIFO queue at one output port; one departure per slot. */
class OutputQueue
{
  public:
    /** Accept a cell delivered across the fabric. */
    void push(const Cell& cell) { cells_.push_back(cell); }

    bool empty() const { return cells_.empty(); }

    int size() const { return static_cast<int>(cells_.size()); }

    /** Largest backlog ever observed (buffer-sizing diagnostics). */
    int maxOccupancy() const { return max_occupancy_; }

    /** Record the occupancy at a slot boundary. */
    void
    noteOccupancy()
    {
        max_occupancy_ = std::max(max_occupancy_, size());
    }

    /** Depart the head cell; queue must be non-empty. */
    Cell pop();

  private:
    std::deque<Cell> cells_;
    int max_occupancy_ = 0;
};

}  // namespace an2

#endif  // AN2_QUEUEING_OUTPUT_QUEUE_H
