/**
 * @file
 * Harness sweep specifications for the paper's delay-vs-load experiments
 * (Figures 3-5), shared by the `an2_sweep` CLI and the per-figure bench
 * binaries, plus the small command-line vocabulary they all speak
 * (`--json`, `--threads`, `--replicates`, ...).
 */
#ifndef AN2_BENCH_SWEEP_SPECS_H
#define AN2_BENCH_SWEEP_SPECS_H

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "an2/fault/injector.h"
#include "an2/harness/aggregate.h"
#include "an2/harness/cli.h"
#include "an2/harness/sweep.h"
#include "an2/matching/islip.h"
#include "an2/matching/serial_greedy.h"
#include "an2/obs/blackbox.h"
#include "an2/obs/recorder.h"
#include "an2/obs/timeseries.h"
#include "an2/obs/trace_export.h"
#include "an2/sim/cioq_switch.h"
#include "an2/sim/fifo_switch.h"
#include "an2/sim/oq_switch.h"
#include "bench_common.h"

namespace an2::bench {

// ---------------------------------------------------------------------------
// Architecture and workload factories

inline harness::ArchSpec
fifoArch()
{
    return {"FIFO", [](int n, uint64_t seed) -> std::unique_ptr<SwitchModel> {
                return std::make_unique<FifoSwitch>(n, seed);
            }};
}

/** PIM input-queued switch; `iterations` 0 means run to completion. */
inline harness::ArchSpec
pimArch(int iterations)
{
    std::string name = iterations > 0
                           ? "PIM(" + std::to_string(iterations) + ")"
                           : "PIM(inf)";
    return {std::move(name),
            [iterations](int n, uint64_t seed) -> std::unique_ptr<SwitchModel> {
                return std::make_unique<InputQueuedSwitch>(
                    IqSwitchConfig{.n = n}, makePim(iterations, seed));
            }};
}

inline harness::ArchSpec
oqArch()
{
    return {"OutputQueued",
            [](int n, uint64_t) -> std::unique_ptr<SwitchModel> {
                return std::make_unique<OutputQueuedSwitch>(n);
            }};
}

/** iSLIP input-queued switch with the given iteration count. */
inline harness::ArchSpec
islipArch(int iterations)
{
    return {"iSLIP(" + std::to_string(iterations) + ")",
            [iterations](int n, uint64_t) -> std::unique_ptr<SwitchModel> {
                return std::make_unique<InputQueuedSwitch>(
                    IqSwitchConfig{.n = n},
                    std::make_unique<IslipMatcher>(iterations));
            }};
}

/**
 * CIOQ switch at crossbar speedup S with the greedy maximal matcher
 * (the Cogill-Lall setting: maximal matching, S = 2). `service` picks
 * the output discipline across the class queues: "strict" or "wrr".
 */
inline harness::ArchSpec
cioqArch(int speedup, const std::string& service = "strict")
{
    ServiceDiscipline disc = service == "wrr" ? ServiceDiscipline::Wrr
                                              : ServiceDiscipline::Strict;
    std::string name =
        "CIOQ(S=" + std::to_string(speedup) + "," + service + ")";
    return {std::move(name),
            [speedup,
             disc](int n, uint64_t seed) -> std::unique_ptr<SwitchModel> {
                CioqSwitchConfig cfg;
                cfg.n = n;
                cfg.speedup = speedup;
                cfg.service = disc;
                return std::make_unique<CioqSwitch>(
                    cfg, std::make_unique<SerialGreedyMatcher>(
                             /*randomize=*/true, seed));
            }};
}

inline harness::TrafficFactory
uniformWorkload()
{
    return [](int n, double load, uint64_t seed) {
        return std::make_unique<UniformTraffic>(n, load, seed);
    };
}

inline harness::TrafficFactory
clientServerWorkload(int servers)
{
    return [servers](int n, double load, uint64_t seed) {
        return std::make_unique<ClientServerTraffic>(n, servers, load, seed);
    };
}

/** Uniform arrivals with a CBR/VBR/best-effort class mix per flow. */
inline harness::TrafficFactory
multiClassWorkload()
{
    return [](int n, double load, uint64_t seed) {
        return std::make_unique<MultiClassUniformTraffic>(n, load, seed);
    };
}

// ---------------------------------------------------------------------------
// The paper's experiments as sweep specs

/** Figure 3: FIFO vs PIM(4) vs output queueing, uniform workload. */
inline harness::SweepSpec
fig3Spec()
{
    harness::SweepSpec spec;
    spec.name = "fig3";
    spec.description =
        "mean queueing delay vs offered load, uniform workload, 16x16";
    spec.workload = "uniform";
    spec.archs = {fifoArch(), pimArch(4), oqArch()};
    spec.loads.assign(kLoadSweep, kLoadSweep + kLoadSweepSize);
    spec.base_seed = 1003;
    spec.make_traffic = uniformWorkload();
    return spec;
}

/** Figure 4: same comparison under the client-server workload. */
inline harness::SweepSpec
fig4Spec()
{
    harness::SweepSpec spec;
    spec.name = "fig4";
    spec.description = "delay vs offered server-link load, client-server "
                       "workload, 16x16, 4 servers, 5% client-client ratio";
    spec.workload = "client-server(4)";
    spec.archs = {fifoArch(), pimArch(4), oqArch()};
    spec.loads.assign(kLoadSweep, kLoadSweep + kLoadSweepSize);
    spec.base_seed = 1004;
    spec.make_traffic = clientServerWorkload(4);
    return spec;
}

/** Figure 5: PIM iteration count 1..4 and to-completion, plus FIFO. */
inline harness::SweepSpec
fig5Spec()
{
    harness::SweepSpec spec;
    spec.name = "fig5";
    spec.description =
        "PIM delay vs offered load for 1..4 iterations, uniform, 16x16";
    spec.workload = "uniform";
    spec.archs = {pimArch(1), pimArch(2), pimArch(3), pimArch(4), pimArch(0),
                  fifoArch()};
    spec.loads.assign(kLoadSweep, kLoadSweep + kLoadSweepSize);
    spec.base_seed = 1005;
    spec.make_traffic = uniformWorkload();
    return spec;
}

/**
 * Latency-distribution study: PIM(1) vs PIM(4) vs iSLIP(4) on the
 * Figure 3 workload at the loads where the p99 knee appears. Meant to
 * be driven with `--metrics` (the sweep itself reports means; the
 * distributions come from the observed run's latency histograms).
 */
inline harness::SweepSpec
latdistSpec()
{
    harness::SweepSpec spec;
    spec.name = "latdist";
    spec.description = "delivery-latency distributions (p50/p99/p999), "
                       "uniform workload, 16x16";
    spec.workload = "uniform";
    spec.archs = {pimArch(1), pimArch(4), islipArch(4)};
    spec.loads = {0.50, 0.90, 0.99};
    spec.base_seed = 1008;
    spec.make_traffic = uniformWorkload();
    return spec;
}

/**
 * Speedup study: CIOQ at S = 1/2/4 with the greedy maximal matcher vs
 * the ideal output-queued switch, multi-class uniform workload. The
 * headline (Cogill & Lall) is that S = 2 already tracks output
 * queueing; S = 1 shows the input-queued gap, S = 4 buys almost
 * nothing over S = 2.
 */
inline harness::SweepSpec
speedupSpec()
{
    harness::SweepSpec spec;
    spec.name = "speedup";
    spec.description = "CIOQ crossbar speedup 1/2/4 vs output queueing, "
                       "multi-class uniform workload, 16x16";
    spec.workload = "uniform3";
    spec.archs = {oqArch(), cioqArch(1), cioqArch(2), cioqArch(4)};
    spec.loads.assign(kLoadSweep, kLoadSweep + kLoadSweepSize);
    spec.base_seed = 1010;
    spec.make_traffic = multiClassWorkload();
    return spec;
}

/** Registry entry for `an2_sweep --experiment NAME`. */
struct Experiment
{
    const char* name;
    const char* blurb;
    harness::SweepSpec (*make)();
};

inline const std::vector<Experiment>&
experiments()
{
    static const std::vector<Experiment> kExperiments = {
        {"fig3", "Figure 3: FIFO vs PIM(4) vs OutputQ, uniform", fig3Spec},
        {"fig4", "Figure 4: FIFO vs PIM(4) vs OutputQ, client-server",
         fig4Spec},
        {"fig5", "Figure 5: PIM iterations 1..4/inf vs FIFO, uniform",
         fig5Spec},
        {"latdist",
         "latency distributions: PIM(1)/PIM(4)/iSLIP(4), uniform",
         latdistSpec},
        {"speedup",
         "CIOQ speedup 1/2/4 vs OutputQ, multi-class uniform",
         speedupSpec},
    };
    return kExperiments;
}

inline const Experiment*
findExperiment(const std::string& name)
{
    for (const Experiment& e : experiments())
        if (name == e.name)
            return &e;
    return nullptr;
}

// ---------------------------------------------------------------------------
// Shared command line — the strict parser lives in an2/harness/cli.h;
// re-exported here so the bench binaries keep their unqualified names.

using harness::SweepCli;
using harness::applyCli;

/**
 * Apply the `--arch cioq` override: replace the experiment's
 * architecture axis with a single CIOQ switch at `--speedup` (default
 * 2) and `--service` (default strict), and stamp the gated
 * meta.speedup / meta.service keys into the JSON. The workload, loads,
 * and seeding stay the spec's own, so the CIOQ runs face the same
 * arrivals as the archs they replace. No-op when --arch was not given
 * (parseSweepCli already rejected values other than "cioq").
 */
inline void
applyArchOverride(const SweepCli& cli, harness::SweepSpec& spec)
{
    if (cli.arch.empty())
        return;
    const int speedup = cli.speedup > 0 ? cli.speedup : 2;
    const std::string service =
        cli.service.empty() ? "strict" : cli.service;
    spec.archs = {cioqArch(speedup, service)};
    spec.speedup = speedup;
    spec.service = service;
}

using harness::parseLoadList;
using harness::parseSweepCli;
using harness::printSweepCliHelp;

// ---------------------------------------------------------------------------
// Execution and reporting helpers

/** Run the sweep with a live run-counter on stderr; reports wall time. */
inline harness::SweepResult
runSweepWithProgress(const harness::SweepSpec& spec, int threads,
                     double* wall_seconds = nullptr)
{
    auto t0 = std::chrono::steady_clock::now();
    // The carriage-return ticker is for humans; skip it when stderr is
    // piped (e.g. into bench_output.txt).
    std::function<void(int, int)> progress;
    if (isatty(fileno(stderr)))
        progress = [](int done, int total) {
            std::fprintf(stderr, "\r  [%d/%d] runs complete", done, total);
            if (done == total)
                std::fprintf(stderr, "\n");
        };
    harness::SweepResult res = harness::runSweep(spec, threads, progress);
    auto t1 = std::chrono::steady_clock::now();
    double secs = std::chrono::duration<double>(t1 - t0).count();
    if (wall_seconds)
        *wall_seconds = secs;
    std::fprintf(stderr, "  %zu runs in %.2f s on %d thread(s)\n",
                 res.grid.size(), secs, res.threads_used);
    return res;
}

/** Cell lookup by (arch name, load); size defaults to the spec's first. */
inline const harness::CellSummary*
findCell(const std::vector<harness::CellSummary>& cells,
         const std::string& arch, double load)
{
    for (const harness::CellSummary& c : cells)
        if (c.arch == arch && c.load == load)
            return &c;
    return nullptr;
}

/** Print the classic delay-vs-load table (archs as columns) from cells. */
inline void
printDelayTable(const harness::SweepSpec& spec,
                const std::vector<harness::CellSummary>& cells)
{
    std::printf("  load");
    for (const harness::ArchSpec& a : spec.archs)
        std::printf("  %10s", a.name.c_str());
    std::printf("\n");
    for (double load : spec.loads) {
        std::printf("  %4.2f", load);
        for (const harness::ArchSpec& a : spec.archs) {
            const harness::CellSummary* c = findCell(cells, a.name, load);
            std::printf("  %10.2f", c ? c->mean_delay.mean : -1.0);
        }
        std::printf("\n");
    }
    if (spec.replicates > 1)
        std::printf("\n  (%d replicates per cell; stddev/CI95 in the JSON "
                    "output)\n",
                    spec.replicates);
}

/** Write sweep JSON to `path` ("-" = stdout); returns false on I/O error. */
inline bool
writeSweepJson(const std::string& path, const harness::SweepSpec& spec,
               const std::vector<harness::CellSummary>& cells)
{
    std::string doc = harness::sweepToJson(spec, cells);
    if (path == "-") {
        std::fwrite(doc.data(), 1, doc.size(), stdout);
        return true;
    }
    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (!f) {
        std::fprintf(stderr, "error: cannot open %s for writing\n",
                     path.c_str());
        return false;
    }
    size_t n = std::fwrite(doc.data(), 1, doc.size(), f);
    bool ok = (n == doc.size()) && std::fclose(f) == 0;
    if (ok)
        std::fprintf(stderr, "  wrote %s (%zu bytes)\n", path.c_str(),
                     doc.size());
    else
        std::fprintf(stderr, "error: short write to %s\n", path.c_str());
    return ok;
}

// ---------------------------------------------------------------------------
// Observed single runs (--trace / --snapshot)

/** Write `doc` to `path` ("-" = stdout); returns false on I/O error. */
inline bool
writeTextFile(const std::string& path, const std::string& doc,
              const char* what)
{
    if (path == "-") {
        std::fwrite(doc.data(), 1, doc.size(), stdout);
        return true;
    }
    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (!f) {
        std::fprintf(stderr, "error: cannot open %s for writing\n",
                     path.c_str());
        return false;
    }
    size_t n = std::fwrite(doc.data(), 1, doc.size(), f);
    bool ok = (n == doc.size()) && std::fclose(f) == 0;
    if (ok)
        std::fprintf(stderr, "  wrote %s %s (%zu bytes)\n", what,
                     path.c_str(), doc.size());
    else
        std::fprintf(stderr, "error: short write to %s\n", path.c_str());
    return ok;
}

/**
 * Re-run one grid point of `spec` with an obs::Recorder attached and
 * write the requested an2.trace.v1 / an2.snapshot.v1 files. The sweep
 * proper never observes (worker threads run unattached), so this extra
 * serial run is what `--trace` / `--snapshot` pay for.
 *
 * Point selection: the architecture named by `--trace-arch` (default:
 * the first arch with probes, i.e. whose name starts with PIM/iSLIP/
 * Greedy; else the first arch), at the first size, the highest load,
 * replicate 0 — narrow with `--size` / `--loads` to steer it. Seeds
 * come from the same expandGrid() derivation as the sweep, so the
 * observed run is bit-identical to the corresponding sweep run.
 */
inline bool
runObservedPoint(const harness::SweepSpec& spec, const SweepCli& cli)
{
    int arch = -1;
    if (!cli.trace_arch.empty()) {
        for (size_t k = 0; k < spec.archs.size(); ++k)
            if (spec.archs[k].name == cli.trace_arch)
                arch = static_cast<int>(k);
        if (arch < 0) {
            std::fprintf(stderr,
                         "error: --trace-arch %s: not in this experiment "
                         "(archs:",
                         cli.trace_arch.c_str());
            for (const harness::ArchSpec& a : spec.archs)
                std::fprintf(stderr, " %s", a.name.c_str());
            std::fprintf(stderr, ")\n");
            return false;
        }
    } else {
        for (size_t k = 0; k < spec.archs.size() && arch < 0; ++k) {
            const std::string& nm = spec.archs[k].name;
            if (nm.rfind("PIM", 0) == 0 || nm.rfind("iSLIP", 0) == 0 ||
                nm.rfind("Greedy", 0) == 0 || nm.rfind("CIOQ", 0) == 0)
                arch = static_cast<int>(k);
        }
        if (arch < 0)
            arch = 0;
    }

    const harness::RunPoint* pt = nullptr;
    std::vector<harness::RunPoint> grid = harness::expandGrid(spec);
    for (const harness::RunPoint& p : grid)
        if (p.arch_index == arch && p.size_index == 0 &&
            p.load_index == static_cast<int>(spec.loads.size()) - 1 &&
            p.replicate == 0)
            pt = &p;
    if (!pt) {
        std::fprintf(stderr, "error: empty sweep grid\n");
        return false;
    }

    const int n = spec.sizes[0];
    const double load = spec.loads[static_cast<size_t>(pt->load_index)];
    const bool want_metrics =
        !cli.metrics_path.empty() || !cli.metrics_prom_path.empty();
    obs::RecorderConfig rc;
    rc.trace_capacity = cli.trace_path.empty() && cli.blackbox_path.empty()
                            ? 0
                            : static_cast<size_t>(cli.trace_capacity);
    rc.snapshot_every =
        cli.snapshot_path.empty()
            ? 0
            : (cli.snapshot_every > 0 ? cli.snapshot_every : 1000);
    rc.ports = n;
    rc.track_latency = want_metrics;
    rc.metrics_every =
        want_metrics ? (cli.metrics_every > 0 ? cli.metrics_every : 1000)
                     : 0;
    obs::Recorder rec(rc);

    std::fprintf(stderr,
                 "  observing %s n=%d load=%.2f for %lld slots "
                 "(run %d, switch seed %llu, traffic seed %llu)\n",
                 spec.archs[static_cast<size_t>(arch)].name.c_str(), n,
                 load, static_cast<long long>(spec.slots), pt->run_index,
                 static_cast<unsigned long long>(pt->switch_seed),
                 static_cast<unsigned long long>(pt->traffic_seed));

    obs::attach(&rec);
    auto sw = spec.archs[static_cast<size_t>(arch)].make(n,
                                                         pt->switch_seed);
    auto traffic = spec.make_traffic(n, load, pt->traffic_seed);
    SimConfig sim;
    sim.slots = spec.slots;
    sim.warmup = spec.warmup;
    // Same fault scenario and fault seed as the corresponding sweep
    // run, so the observed run (and its trace's fault spans) replays
    // that run exactly.
    std::unique_ptr<fault::FaultInjector> injector;
    if (!spec.faults.empty()) {
        spec.faults.validatePorts(n);
        injector = std::make_unique<fault::FaultInjector>(n, spec.faults,
                                                          pt->fault_seed);
        sim.faults = injector.get();
    }
    // Flight recorder: dumps on invariant panic (hook) and, when the
    // scenario scripts port/link deaths, on each death event.
    std::unique_ptr<obs::Blackbox> blackbox;
    if (!cli.blackbox_path.empty()) {
        obs::BlackboxConfig bc;
        bc.path = cli.blackbox_path;
        blackbox = std::make_unique<obs::Blackbox>(rec, sw.get(), bc);
        if (injector)
            injector->addListener(blackbox.get());
    }
    try {
        runSimulation(*sw, *traffic, sim);
    } catch (const InternalError& e) {
        obs::detach();
        std::fprintf(stderr, "error: invariant fired: %s\n", e.what());
        if (blackbox && blackbox->dumps() > 0)
            std::fprintf(stderr, "  blackbox post-mortem written to %s\n",
                         cli.blackbox_path.c_str());
        return false;
    }
    rec.sampleMetricsNow(spec.slots);  // flush the final partial window
    obs::detach();

    std::fprintf(stderr, "  observed counters:\n");
    for (int c = 0; c < static_cast<int>(obs::Counter::kCount); ++c)
        std::fprintf(stderr, "    %-22s %lld\n",
                     obs::counterName(static_cast<obs::Counter>(c)),
                     static_cast<long long>(
                         rec.counter(static_cast<obs::Counter>(c))));
    if (rec.tracing() && rec.droppedEvents() > 0)
        std::fprintf(stderr,
                     "    (event ring dropped %lld oldest events; raise "
                     "--trace-capacity to keep more)\n",
                     static_cast<long long>(rec.droppedEvents()));

    if (rec.latencyEnabled()) {
        std::fprintf(stderr, "  delivery latency (slots):\n");
        static const char* kClsNames[kNumTrafficClasses] = {"cbr", "vbr",
                                                            "be"};
        for (int cls = 0; cls < kNumTrafficClasses; ++cls) {
            const obs::LogHistogram& h = rec.latencyHistogram(
                static_cast<TrafficClass>(cls));
            std::fprintf(stderr,
                         "    %s: count=%lld p50=%lld p99=%lld p999=%lld "
                         "max=%lld\n",
                         kClsNames[cls],
                         static_cast<long long>(h.count()),
                         static_cast<long long>(h.quantile(0.50)),
                         static_cast<long long>(h.quantile(0.99)),
                         static_cast<long long>(h.quantile(0.999)),
                         static_cast<long long>(h.max()));
        }
    }

    bool ok = true;
    if (!cli.trace_path.empty())
        ok = writeTextFile(cli.trace_path, obs::toChromeTraceJson(rec),
                           "an2.trace.v1") &&
             ok;
    if (!cli.snapshot_path.empty())
        ok = writeTextFile(cli.snapshot_path, rec.snapshotLines(),
                           "an2.snapshot.v1") &&
             ok;
    if (!cli.metrics_path.empty())
        ok = writeTextFile(cli.metrics_path, obs::metricsToJsonLines(rec),
                           "an2.metrics.v1") &&
             ok;
    if (!cli.metrics_prom_path.empty())
        ok = writeTextFile(cli.metrics_prom_path,
                           obs::metricsToPrometheus(rec),
                           "prometheus metrics") &&
             ok;
    if (blackbox && blackbox->dumps() > 0)
        std::fprintf(stderr, "  blackbox: %lld dump(s), latest in %s\n",
                     static_cast<long long>(blackbox->dumps()),
                     cli.blackbox_path.c_str());
    return ok;
}

}  // namespace an2::bench

#endif  // AN2_BENCH_SWEEP_SPECS_H
