/**
 * @file
 * an2_sweep — run any registered experiment sweep on the parallel
 * deterministic harness and emit a table plus optional an2.sweep.v1
 * JSON (`--json`). The JSON is byte-identical for any `--threads`
 * value; see EXPERIMENTS.md for the schema and the seeding scheme.
 *
 *     an2_sweep --list
 *     an2_sweep --experiment fig3 --threads 8 --json BENCH_fig3.json
 *     an2_sweep --experiment fig5 --replicates 5 --loads 0.9,0.95,0.99
 *
 * Network-scale experiments (whole topologies on topo::Lan) live in the
 * same registry namespace and speak the same flags, plus `--frames` and
 * `--engine serial|parallel`:
 *
 *     an2_sweep --experiment netscale --engine parallel --threads 8 \
 *               --json BENCH_netscale.json
 */
#include <cstdio>

#include "net_sweep_specs.h"
#include "sweep_specs.h"

int
main(int argc, char** argv)
{
    using namespace an2;
    using namespace an2::bench;

    SweepCli cli;
    std::string err;
    if (!parseSweepCli(argc, argv, cli, err)) {
        std::fprintf(stderr, "error: %s\n", err.c_str());
        printSweepCliHelp(argv[0], /*with_experiment=*/true);
        return 2;
    }
    if (cli.help) {
        printSweepCliHelp(argv[0], /*with_experiment=*/true);
        return 0;
    }
    if (cli.list) {
        std::printf("available experiments:\n");
        for (const Experiment& e : experiments())
            std::printf("  %-8s %s\n", e.name, e.blurb);
        for (const NetExperiment& e : netExperiments())
            std::printf("  %-8s %s\n", e.name, e.blurb);
        return 0;
    }
    if (cli.experiment.empty()) {
        std::fprintf(stderr,
                     "error: --experiment NAME required (--list shows "
                     "choices)\n");
        return 2;
    }
    if (const NetExperiment* net = findNetExperiment(cli.experiment)) {
        try {
            return runNetExperiment(*net, cli);
        } catch (const UsageError& e) {
            std::fprintf(stderr, "error: %s\n", e.what());
            return 2;
        }
    }
    const Experiment* exp = findExperiment(cli.experiment);
    if (!exp) {
        std::fprintf(stderr, "error: unknown experiment '%s' (--list shows "
                             "choices)\n",
                     cli.experiment.c_str());
        return 2;
    }

    harness::SweepSpec spec = exp->make();
    applyCli(cli, spec);
    applyArchOverride(cli, spec);

    // With --json - the document owns stdout; keep the table off it.
    const bool table = cli.json_path != "-";
    if (table) {
        banner("an2_sweep -- " + spec.name + ": " + spec.description,
               "harness sweep (" + spec.workload + " workload)");
        if (!spec.faults.empty())
            std::printf("  fault plan: %s\n", spec.faults.str().c_str());
        std::printf("  mean queueing delay in cell slots\n\n");
    }

    try {
        harness::SweepResult res = runSweepWithProgress(spec, cli.threads);
        auto cells = harness::aggregate(spec, res);
        if (table)
            printDelayTable(spec, cells);
        if (!cli.json_path.empty() &&
            !writeSweepJson(cli.json_path, spec, cells))
            return 1;
        if ((!cli.trace_path.empty() || !cli.snapshot_path.empty() ||
             !cli.metrics_path.empty() || !cli.metrics_prom_path.empty() ||
             !cli.blackbox_path.empty()) &&
            !runObservedPoint(spec, cli))
            return 1;
    } catch (const UsageError& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 2;
    }
    return 0;
}
