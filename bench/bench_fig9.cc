/**
 * @file
 * Figure 9: unfairness across an arbitrary-topology network ("parking
 * lot"). Four saturated flows a, b, c, d share a bottleneck link at the
 * end of a chain of three switches: d and c enter at the first switch, b
 * at the second, a at the last.
 *
 * Three per-switch disciplines are compared:
 *  - FIFO merge + PIM: the figure's assumption (all traffic on an input
 *    shares one queue; switches are fair between *ports*). Shares halve
 *    at every merge: a=1/2, b=1/4, c=d=1/8 — exactly the paper's numbers.
 *  - AN2 per-flow queues + PIM: AN2's round-robin among eligible flows
 *    equalizes flows sharing an input (b=c=d=1/6), but the port-level
 *    split still hands flow a half the bottleneck.
 *  - Statistical matching with flow-proportional allocations (Section 5)
 *    restores the fair 1/4 each.
 */
#include <cstdio>
#include <memory>

#include "an2/base/stats.h"
#include "an2/matching/statistical.h"
#include "an2/network/network.h"
#include "bench_common.h"

namespace {

using namespace an2;
using an2::bench::makePim;

struct ChainResult
{
    double share[4];  // a, b, c, d
    double jain;
};

/** Per-switch scheduling/queueing discipline for the chain. */
enum class Mode { FifoMergePim, PerFlowPim, Statistical };

/** Build the 3-switch parking-lot chain and run it under `mode`. */

ChainResult
runChain(Mode mode)
{
    NetworkConfig cfg;
    cfg.slot_ps = 1000;
    cfg.switch_frame_slots = 50;
    Network net(cfg);

    bool use_statistical = mode == Mode::Statistical;
    bool fifo_merge = mode == Mode::FifoMergePim;
    auto matcherFor = [&](int upstream_flows,
                          uint64_t seed) -> std::unique_ptr<Matcher> {
        if (!use_statistical)
            return makePim(4, seed);
        // Switch ports: 0 = upstream chain, 1 = local source, 2 = output.
        // Allocate the output link proportional to flows per input.
        Matrix<int> alloc(3, 3, 0);
        constexpr int kUnits = 1000;
        int total = upstream_flows + 1;
        alloc(0, 2) = kUnits * upstream_flows / total;
        alloc(1, 2) = kUnits / total;
        StatisticalConfig scfg;
        scfg.units = kUnits;
        scfg.rounds = 2;
        scfg.seed = seed;
        return std::make_unique<StatisticalMatcher>(alloc, scfg);
    };

    NodeId src_d = net.addController(0.0, 1);
    NodeId src_c = net.addController(0.0, 2);
    NodeId src_b = net.addController(0.0, 3);
    NodeId src_a = net.addController(0.0, 4);
    NodeId sink = net.addController(0.0, 5);
    // First switch merges c and d (2 single-flow inputs -> use PIM-fair
    // structure; for statistical, each input gets half).
    NodeId s1 = net.addSwitch(3, 0.0, [&]() -> std::unique_ptr<Matcher> {
        if (!use_statistical)
            return makePim(4, 11);
        Matrix<int> alloc(3, 3, 0);
        alloc(0, 2) = 500;
        alloc(1, 2) = 500;
        StatisticalConfig scfg;
        scfg.units = 1000;
        scfg.rounds = 2;
        scfg.seed = 11;
        return std::make_unique<StatisticalMatcher>(alloc, scfg);
    }(), 0, fifo_merge);
    NodeId s2 = net.addSwitch(3, 0.0, matcherFor(2, 12), 0, fifo_merge);
    NodeId s3 = net.addSwitch(3, 0.0, matcherFor(3, 13), 0, fifo_merge);

    net.connect(src_d, 0, s1, 0, 100);
    net.connect(src_c, 0, s1, 1, 100);
    net.connect(s1, 2, s2, 0, 100);
    net.connect(src_b, 0, s2, 1, 100);
    net.connect(s2, 2, s3, 0, 100);
    net.connect(src_a, 0, s3, 1, 100);
    net.connect(s3, 2, sink, 0, 100);

    FlowId fd = net.addVbrFlow({src_d, s1, s2, s3, sink}, 1.0);
    FlowId fc = net.addVbrFlow({src_c, s1, s2, s3, sink}, 1.0);
    FlowId fb = net.addVbrFlow({src_b, s2, s3, sink}, 1.0);
    FlowId fa = net.addVbrFlow({src_a, s3, sink}, 1.0);

    net.runFrames(2000);

    const Controller& c = net.controller(sink);
    double total = 0.0;
    double delivered[4] = {
        static_cast<double>(c.deliveryStats(fa).delivered),
        static_cast<double>(c.deliveryStats(fb).delivered),
        static_cast<double>(c.deliveryStats(fc).delivered),
        static_cast<double>(c.deliveryStats(fd).delivered),
    };
    for (double d : delivered)
        total += d;
    ChainResult res{};
    std::vector<double> shares;
    for (int k = 0; k < 4; ++k) {
        res.share[k] = delivered[k] / total;
        shares.push_back(res.share[k]);
    }
    res.jain = jainFairnessIndex(shares);
    return res;
}

}  // namespace

int
main()
{
    an2::bench::banner(
        "Figure 9 -- parking-lot unfairness across a 3-switch chain",
        "Anderson et al. 1992, Figure 9 / Section 5.1");
    std::printf("  Four saturated flows merge onto one bottleneck; shares"
                " of the bottleneck:\n\n");
    std::printf("  %-26s  %6s  %6s  %6s  %6s   %s\n", "per-switch scheduler",
                "a", "b", "c", "d", "Jain");
    ChainResult fifo = runChain(Mode::FifoMergePim);
    std::printf("  %-26s  %6.3f  %6.3f  %6.3f  %6.3f   %5.3f\n",
                "FIFO merge + PIM (paper)", fifo.share[0], fifo.share[1],
                fifo.share[2], fifo.share[3], fifo.jain);
    ChainResult pim = runChain(Mode::PerFlowPim);
    std::printf("  %-26s  %6.3f  %6.3f  %6.3f  %6.3f   %5.3f\n",
                "AN2 per-flow RR + PIM", pim.share[0], pim.share[1],
                pim.share[2], pim.share[3], pim.jain);
    ChainResult stat = runChain(Mode::Statistical);
    std::printf("  %-26s  %6.3f  %6.3f  %6.3f  %6.3f   %5.3f\n",
                "Statistical (flow-fair)", stat.share[0], stat.share[1],
                stat.share[2], stat.share[3], stat.jain);
    std::printf("\n  Paper: FIFO merging with port-fair switches gives"
                " a=1/2, b=1/4, c=d=1/8. AN2's\n  per-flow round-robin"
                " equalizes flows sharing an input (b=c=d=1/6) but the\n"
                "  port split still favors a; statistical matching restores"
                " the fair 1/4 each.\n");
    return 0;
}
