/**
 * @file
 * Ablation for the §3.1 generalization: replicated switching fabrics
 * (output speedup k). With k copies of the banyan, up to k cells can be
 * delivered to an output per slot (buffered at the output); PIM grants
 * up to k per output. The bench sweeps k over uniform and hotspot
 * workloads. Expected: modest delay gains under uniform traffic (PIM is
 * already near-optimal), larger gains under hotspots, at k times the
 * fabric cost.
 */
#include <cstdio>

#include "an2/sim/traffic.h"
#include "bench_common.h"

namespace {

using namespace an2;
using namespace an2::bench;

constexpr int kN = 16;

double
uniformDelay(int speedup, double load)
{
    InputQueuedSwitch sw({.n = kN, .output_speedup = speedup},
                         makePim(4, 10 + static_cast<uint64_t>(speedup),
                                 speedup));
    UniformTraffic traffic(kN, load, 20);
    SimConfig cfg;
    cfg.slots = 80'000;
    cfg.warmup = 15'000;
    return runSimulation(sw, traffic, cfg).mean_delay;
}

double
hotspotDelay(int speedup, double load)
{
    InputQueuedSwitch sw({.n = kN, .output_speedup = speedup},
                         makePim(4, 30 + static_cast<uint64_t>(speedup),
                                 speedup));
    HotspotTraffic traffic(kN, load, 0, 0.3, 40);
    SimConfig cfg;
    cfg.slots = 80'000;
    cfg.warmup = 15'000;
    return runSimulation(sw, traffic, cfg).mean_delay;
}

}  // namespace

int
main()
{
    an2::bench::banner(
        "Ablation -- output speedup k (replicated fabric, Section 3.1)",
        "Anderson et al. 1992, Section 3.1 generalization");
    std::printf("  mean delay in slots, 16x16, PIM(4) granting up to k per"
                " output\n\n");
    std::printf("  uniform workload:\n");
    std::printf("  %5s   %8s  %8s  %8s\n", "load", "k=1", "k=2", "k=4");
    for (double load : {0.70, 0.90, 0.99}) {
        std::printf("  %5.2f", load);
        for (int k : {1, 2, 4})
            std::printf("  %8.2f", uniformDelay(k, load));
        std::printf("\n");
    }
    // Keep the hot output link under-saturated: its load is
    // input_load * (N*f + 1 - f) = input_load * 5.5 for f = 0.3, N = 16.
    std::printf("\n  hotspot workload (30%% of cells to output 0; hot link"
                " load = 5.5 x input load):\n");
    std::printf("  %5s   %8s  %8s  %8s\n", "load", "k=1", "k=2", "k=4");
    for (double load : {0.12, 0.17}) {
        std::printf("  %5.2f", load);
        for (int k : {1, 2, 4})
            std::printf("  %8.2f", hotspotDelay(k, load));
        std::printf("\n");
    }
    std::printf("\n  Observed shape: speedup pays off exactly where the"
                " *matching* is the\n  bottleneck (uniform traffic near"
                " 100%% load, where k=2 closes most of the\n  gap to"
                " perfect output queueing); it cannot help a hotspot,"
                " whose bottleneck\n  is the output link itself. The"
                " paper keeps k=1 and spends hardware on\n  optics"
                " instead (Table 2).\n");
    return 0;
}
