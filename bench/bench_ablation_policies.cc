/**
 * @file
 * Ablation for the §3.3 implementation claims:
 *
 *  1. PRNG quality: "the number of iterations needed by parallel
 *     iterative matching is relatively insensitive to the technique used
 *     to approximate randomness" — compared by running PIM with the
 *     default xoshiro256** engine vs a deliberately weak 16-bit LCG.
 *  2. Accept policy: random vs round-robin accept pointers ("round-robin
 *     or other fair fashion" is what the no-starvation argument needs).
 */
#include <cstdio>

#include "an2/base/stats.h"
#include "an2/sim/traffic.h"
#include "bench_common.h"

namespace {

using namespace an2;
using namespace an2::bench;

void
prngSensitivity()
{
    std::printf("  1) Mean iterations to maximal match (16x16, dense"
                " requests, 20000 patterns):\n");
    std::printf("     %-18s  %10s  %10s\n", "engine", "mean iters",
                "p99 iters");
    for (bool weak : {false, true}) {
        std::unique_ptr<Rng> engine;
        if (weak)
            engine = std::make_unique<WeakLcg>(7);
        else
            engine = std::make_unique<Xoshiro256>(7);
        PimMatcher pim(PimConfig{.iterations = 0}, std::move(engine));
        Xoshiro256 pattern_rng(8);
        RunningStats iters;
        Histogram hist(1.0, 64);
        for (int t = 0; t < 20'000; ++t) {
            auto req = RequestMatrix::bernoulli(16, 1.0, pattern_rng);
            PimRunStats stats;
            pim.matchDetailed(req, stats, 0);
            iters.add(stats.iterations_run - 1);
            hist.add(stats.iterations_run - 1);
        }
        std::printf("     %-18s  %10.3f  %10.1f\n",
                    weak ? "WeakLcg (16-bit)" : "xoshiro256**",
                    iters.mean(), hist.quantile(0.99));
    }
}

void
acceptPolicyDelay()
{
    std::printf("\n  2) Mean delay (slots) vs load, accept policy"
                " (uniform workload, 16x16):\n");
    std::printf("     %5s  %12s  %12s\n", "load", "random", "round-robin");
    for (double load : {0.80, 0.95, 0.99}) {
        double delay[2];
        int idx = 0;
        for (AcceptPolicy policy :
             {AcceptPolicy::Random, AcceptPolicy::RoundRobin}) {
            InputQueuedSwitch sw({.n = 16}, makePim(4, 21, 1, policy));
            UniformTraffic traffic(16, load, 22);
            SimConfig cfg;
            cfg.slots = 80'000;
            cfg.warmup = 15'000;
            delay[idx++] = runSimulation(sw, traffic, cfg).mean_delay;
        }
        std::printf("     %5.2f  %12.2f  %12.2f\n", load, delay[0],
                    delay[1]);
    }
}

}  // namespace

int
main()
{
    an2::bench::banner(
        "Ablation -- randomness source and accept policy (Section 3.3)",
        "Anderson et al. 1992, Section 3.3 implementation discussion");
    prngSensitivity();
    acceptPolicyDelay();
    std::printf("\n  Expected: weak PRNG barely changes iteration counts;"
                " accept policies differ\n  little in delay (round-robin"
                " slightly smooths service).\n");
    return 0;
}
