/**
 * @file
 * Figure 3: mean queueing delay vs offered load under the uniform
 * workload, for FIFO queueing, parallel iterative matching (4
 * iterations), and perfect output queueing on a 16x16 switch.
 *
 * Expected shape: all three agree at low load; FIFO saturates near 60%
 * (head-of-line blocking); PIM tracks output queueing to ~99% load with
 * a modest delay gap. The paper's wall-clock claim — an average delay
 * under 13 us at 95% load with gigabit links — is checked by converting
 * slots to microseconds (424 ns per 53-byte cell at 1 Gb/s).
 *
 * Runs on the parallel deterministic sweep harness: `--threads N`
 * changes wall-clock only, never results; `--json PATH` emits the
 * an2.sweep.v1 document (see EXPERIMENTS.md).
 */
#include <cstdio>

#include "an2/base/types.h"
#include "sweep_specs.h"

int
main(int argc, char** argv)
{
    using namespace an2;
    using namespace an2::bench;

    SweepCli cli;
    std::string err;
    if (!parseSweepCli(argc, argv, cli, err)) {
        std::fprintf(stderr, "error: %s\n", err.c_str());
        printSweepCliHelp(argv[0], /*with_experiment=*/false);
        return 2;
    }
    if (cli.help) {
        printSweepCliHelp(argv[0], /*with_experiment=*/false);
        return 0;
    }

    harness::SweepSpec spec = fig3Spec();
    applyCli(cli, spec);

    // With --json - the document owns stdout; keep the table off it.
    const bool table = cli.json_path != "-";
    if (table) {
        banner("Figure 3 -- mean queueing delay vs offered load, uniform "
               "workload",
               "Anderson et al. 1992, Figure 3 (16x16 switch)");
        std::printf("  delay in cell slots; FIFO throughput shown to expose"
                    " saturation\n\n");
        std::printf("  load     FIFO        PIM(4)      OutputQ     "
                    "[FIFO tput]\n");
    }

    harness::SweepResult res = runSweepWithProgress(spec, cli.threads);
    auto cells = harness::aggregate(spec, res);

    if (table) {
        double pim_95 = 0.0;
        for (double load : spec.loads) {
            const harness::CellSummary* fifo = findCell(cells, "FIFO", load);
            const harness::CellSummary* pim = findCell(cells, "PIM(4)", load);
            const harness::CellSummary* oq =
                findCell(cells, "OutputQueued", load);
            std::printf("  %4.2f  %9.2f   %9.2f   %9.2f      %5.3f\n", load,
                        fifo->mean_delay.mean, pim->mean_delay.mean,
                        oq->mean_delay.mean, fifo->throughput.mean);
            if (load == 0.95)
                pim_95 = pim->mean_delay.mean;
        }
        std::printf("\n  PIM(4) delay at 95%% load: %.1f slots = %.1f us at"
                    " 1 Gb/s (paper: < 13 us)\n",
                    pim_95, slotsToMicros(pim_95));
        std::printf("  (FIFO delay at loads beyond ~0.6 grows with simulation"
                    " length: saturated.)\n");
        if (spec.replicates > 1)
            std::printf("  (%d replicates per cell; stddev/CI95 in the JSON"
                        " output)\n",
                        spec.replicates);
    }

    if (!cli.json_path.empty() && !writeSweepJson(cli.json_path, spec, cells))
        return 1;
    return 0;
}
