/**
 * @file
 * Figure 3: mean queueing delay vs offered load under the uniform
 * workload, for FIFO queueing, parallel iterative matching (4
 * iterations), and perfect output queueing on a 16x16 switch.
 *
 * Expected shape: all three agree at low load; FIFO saturates near 60%
 * (head-of-line blocking); PIM tracks output queueing to ~99% load with
 * a modest delay gap. The paper's wall-clock claim — an average delay
 * under 13 us at 95% load with gigabit links — is checked by converting
 * slots to microseconds (424 ns per 53-byte cell at 1 Gb/s).
 */
#include <cstdio>

#include "an2/base/types.h"
#include "an2/sim/fifo_switch.h"
#include "an2/sim/oq_switch.h"
#include "an2/sim/traffic.h"
#include "bench_common.h"

namespace {

using namespace an2;
using namespace an2::bench;

constexpr int kN = 16;

struct Row
{
    double load;
    double fifo;
    double pim;
    double oq;
    double fifo_tput;
};

Row
runLoad(double load)
{
    SimConfig cfg = standardSimConfig();
    Row row{};
    row.load = load;
    {
        FifoSwitch sw(kN, 101);
        UniformTraffic traffic(kN, load, 201);
        SimResult r = runSimulation(sw, traffic, cfg);
        row.fifo = r.mean_delay;
        row.fifo_tput = r.throughput;
    }
    {
        InputQueuedSwitch sw({.n = kN}, makePim(4, 102));
        UniformTraffic traffic(kN, load, 201);
        row.pim = runSimulation(sw, traffic, cfg).mean_delay;
    }
    {
        OutputQueuedSwitch sw(kN);
        UniformTraffic traffic(kN, load, 201);
        row.oq = runSimulation(sw, traffic, cfg).mean_delay;
    }
    return row;
}

}  // namespace

int
main()
{
    an2::bench::banner(
        "Figure 3 -- mean queueing delay vs offered load, uniform workload",
        "Anderson et al. 1992, Figure 3 (16x16 switch)");
    std::printf("  delay in cell slots; FIFO throughput shown to expose"
                " saturation\n\n");
    std::printf("  load     FIFO        PIM(4)      OutputQ     "
                "[FIFO tput]\n");
    double pim_95 = 0.0;
    for (int i = 0; i < kLoadSweepSize; ++i) {
        Row row = runLoad(kLoadSweep[i]);
        std::printf("  %4.2f  %9.2f   %9.2f   %9.2f      %5.3f\n", row.load,
                    row.fifo, row.pim, row.oq, row.fifo_tput);
        if (row.load == 0.95)
            pim_95 = row.pim;
    }
    std::printf("\n  PIM(4) delay at 95%% load: %.1f slots = %.1f us at"
                " 1 Gb/s (paper: < 13 us)\n",
                pim_95, slotsToMicros(pim_95));
    std::printf("  (FIFO delay at loads beyond ~0.6 grows with simulation"
                " length: saturated.)\n");
    return 0;
}
