/**
 * @file
 * Section 4 future work, implemented and measured: subdividing the frame
 * trades allocation granularity for guaranteed latency. Two flows with
 * the same bandwidth (16 cells per 128-slot frame) cross a 4x4 switch
 * under saturating datagram load; one is frame-class, the other
 * subframe-class (2 cells in each of 8 subframes). The bench reports the
 * delay distribution each flow's cells experience.
 */
#include <cstdio>
#include <memory>

#include "an2/base/stats.h"
#include "an2/cbr/subframes.h"
#include "an2/sim/iq_switch.h"
#include "bench_common.h"

namespace {

using namespace an2;
using an2::bench::makePim;

constexpr int kN = 4;
constexpr int kFrame = 128;
constexpr int kSubframes = 8;
constexpr int kCellsPerFrame = 16;

struct DelayResult
{
    double mean;
    double p99;
    double max;
};

DelayResult
run(bool subframe_class)
{
    SubframeScheduler ss(kN, kFrame, kSubframes);
    bool ok = subframe_class
                  ? ss.addSubframeReservation(1, 2,
                                              kCellsPerFrame / kSubframes)
                  : ss.addFrameReservation(1, 2, kCellsPerFrame);
    AN2_REQUIRE(ok, "reservation failed");
    InputQueuedSwitch sw({.n = kN}, makePim(4, 31), &ss.schedule());

    Xoshiro256 rng(32);
    RunningStats delay;
    Histogram hist(1.0, 4096);
    int64_t seq = 0;
    for (SlotTime slot = 0; slot < 500 * kFrame; ++slot) {
        // Paced CBR source: kCellsPerFrame spread evenly over the frame.
        if (slot % (kFrame / kCellsPerFrame) == 0) {
            Cell c;
            c.flow = 7;
            c.input = 1;
            c.output = 2;
            c.cls = TrafficClass::CBR;
            c.seq = seq++;
            c.inject_slot = slot;
            sw.acceptCell(c);
        }
        // Saturating datagram background.
        for (PortId i = 0; i < kN; ++i) {
            auto j = static_cast<PortId>(rng.nextBelow(kN));
            Cell v;
            v.flow = 100 + i * kN + j;
            v.input = i;
            v.output = j;
            v.inject_slot = slot;
            sw.acceptCell(v);
        }
        for (const Cell& d : sw.runSlot(slot)) {
            if (d.flow != 7)
                continue;
            auto dl = static_cast<double>(slot - d.inject_slot);
            delay.add(dl);
            hist.add(dl);
        }
    }
    return {delay.mean(), hist.quantile(0.99), delay.max()};
}

}  // namespace

int
main()
{
    an2::bench::banner(
        "Section 4 future work -- subdivided frames, measured",
        "Anderson et al. 1992, Section 4 (frame subdivision trade-off)");
    std::printf("  4x4 switch, %d-slot frame, %d cells/frame reserved,"
                " saturating VBR background.\n  CBR cell delay in slots:\n\n",
                kFrame, kCellsPerFrame);
    std::printf("  %-32s  %8s  %8s  %8s  %s\n", "service class", "mean",
                "p99", "max", "granule (cells/frame)");
    DelayResult frame_class = run(false);
    std::printf("  %-32s  %8.1f  %8.1f  %8.0f  %d\n",
                "frame class (any placement)", frame_class.mean,
                frame_class.p99, frame_class.max, 1);
    DelayResult sub_class = run(true);
    std::printf("  %-32s  %8.1f  %8.1f  %8.0f  %d\n",
                "subframe class (every subframe)", sub_class.mean,
                sub_class.p99, sub_class.max, kSubframes);
    std::printf("\n  The subframe-class flow's worst-case delay is bounded"
                " by ~2 subframes\n  (%d slots) instead of ~2 frames (%d"
                " slots), in exchange for allocating\n  bandwidth in"
                " granules of %d cells/frame instead of 1.\n",
                2 * kFrame / kSubframes, 2 * kFrame, kSubframes);
    return 0;
}
