/**
 * @file
 * Section 3.4 -- maximal vs maximum matching. Three results:
 *
 *  1. Match size: PIM's maximal matches are close to (and never more
 *     than ~a few percent below) the true maximum across densities, far
 *     better than the 50% worst case.
 *  2. Delay: even if maximum matching were free, the simulated delay
 *     advantage over PIM(4) is marginal, because PIM already tracks
 *     perfect output queueing closely.
 *  3. Starvation: under the Figure 2 pattern, maximum matching *never*
 *     serves connection (0,1); PIM serves it regularly.
 */
#include <cstdio>

#include "an2/matching/hopcroft_karp.h"
#include "an2/sim/traffic.h"
#include "bench_common.h"

namespace {

using namespace an2;
using namespace an2::bench;

void
matchSizeComparison()
{
    std::printf("  1) Match size, 16x16, 20000 random patterns per"
                " density:\n");
    std::printf("     %5s  %10s  %10s  %9s\n", "p", "PIM(4)", "maximum",
                "ratio");
    Xoshiro256 rng(55);
    for (double p : {0.1, 0.3, 0.5, 0.75, 1.0}) {
        PimMatcher pim(PimConfig{.iterations = 4, .seed = 66});
        HopcroftKarpMatcher hk;
        int64_t pim_total = 0;
        int64_t max_total = 0;
        for (int t = 0; t < 20'000; ++t) {
            auto req = RequestMatrix::bernoulli(16, p, rng);
            pim_total += pim.match(req).size();
            max_total += hk.match(req).size();
        }
        std::printf("     %5.2f  %10lld  %10lld  %9.4f\n", p,
                    static_cast<long long>(pim_total),
                    static_cast<long long>(max_total),
                    static_cast<double>(pim_total) /
                        static_cast<double>(max_total));
    }
}

void
delayComparison()
{
    std::printf("\n  2) Mean delay (slots) at high uniform load, 16x16:\n");
    std::printf("     %5s  %10s  %12s  %10s\n", "load", "PIM(4)",
                "maximum", "OutputQ-ish gap");
    for (double load : {0.90, 0.95}) {
        SimConfig cfg;
        cfg.slots = 60'000;
        cfg.warmup = 10'000;
        double pim_delay;
        double hk_delay;
        {
            InputQueuedSwitch sw({.n = 16}, makePim(4, 77));
            UniformTraffic traffic(16, load, 88);
            pim_delay = runSimulation(sw, traffic, cfg).mean_delay;
        }
        {
            InputQueuedSwitch sw({.n = 16},
                                 std::make_unique<HopcroftKarpMatcher>());
            UniformTraffic traffic(16, load, 88);
            hk_delay = runSimulation(sw, traffic, cfg).mean_delay;
        }
        std::printf("     %5.2f  %10.2f  %12.2f  %9.1f%%\n", load, pim_delay,
                    hk_delay, 100.0 * (pim_delay - hk_delay) / pim_delay);
    }
}

void
starvationDemo()
{
    std::printf("\n  3) Starvation (Figure 2 pattern: input 0 requests"
                " outputs {1,2};\n     input 1 requests {1}; all queues"
                " always backlogged):\n");
    RequestMatrix req(3);
    req.set(0, 1, 1);
    req.set(0, 2, 1);
    req.set(1, 1, 1);
    constexpr int kSlots = 100'000;
    {
        HopcroftKarpMatcher hk;
        int64_t served_01 = 0;
        for (int s = 0; s < kSlots; ++s)
            if (hk.match(req).outputOf(0) == 1)
                ++served_01;
        std::printf("     maximum matching served (0,1) in %lld of %d"
                    " slots\n",
                    static_cast<long long>(served_01), kSlots);
    }
    {
        PimMatcher pim(PimConfig{.iterations = 4, .seed = 99});
        int64_t served_01 = 0;
        for (int s = 0; s < kSlots; ++s)
            if (pim.match(req).outputOf(0) == 1)
                ++served_01;
        std::printf("     PIM(4)           served (0,1) in %lld of %d"
                    " slots (no starvation)\n",
                    static_cast<long long>(served_01), kSlots);
    }
}

}  // namespace

int
main()
{
    an2::bench::banner(
        "Section 3.4 -- maximal (PIM) vs maximum (Hopcroft-Karp) matching",
        "Anderson et al. 1992, Section 3.4");
    matchSizeComparison();
    delayComparison();
    starvationDemo();
    std::printf("\n  Paper: maximum matching offers only marginal benefit"
                " and can starve\n  connections; PIM cannot.\n");
    return 0;
}
