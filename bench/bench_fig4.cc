/**
 * @file
 * Figure 4: mean queueing delay vs offered load under the client-server
 * workload. Four of sixteen ports are servers; client-client connections
 * carry only 5% of the traffic of connections involving a server; the
 * load axis is the offered load on a *server* link. The paper's claim:
 * same qualitative ordering as Figure 3, with PIM even closer to output
 * queueing than in the uniform case.
 *
 * Runs on the parallel deterministic sweep harness: `--threads N`
 * changes wall-clock only, never results; `--json PATH` emits the
 * an2.sweep.v1 document (see EXPERIMENTS.md).
 */
#include <cstdio>

#include "sweep_specs.h"

int
main(int argc, char** argv)
{
    using namespace an2;
    using namespace an2::bench;

    SweepCli cli;
    std::string err;
    if (!parseSweepCli(argc, argv, cli, err)) {
        std::fprintf(stderr, "error: %s\n", err.c_str());
        printSweepCliHelp(argv[0], /*with_experiment=*/false);
        return 2;
    }
    if (cli.help) {
        printSweepCliHelp(argv[0], /*with_experiment=*/false);
        return 0;
    }

    harness::SweepSpec spec = fig4Spec();
    applyCli(cli, spec);

    // With --json - the document owns stdout; keep the table off it.
    const bool table = cli.json_path != "-";
    if (table) {
        banner("Figure 4 -- delay vs offered load, client-server workload",
               "Anderson et al. 1992, Figure 4 (16x16, 4 servers, 5% ratio)");
        std::printf("  load = offered load on a server link; delay in"
                    " slots\n\n");
    }

    harness::SweepResult res = runSweepWithProgress(spec, cli.threads);
    auto cells = harness::aggregate(spec, res);
    if (table) {
        printDelayTable(spec, cells);
        std::printf("\n  Expected: FIFO head-of-line limited; PIM close to"
                    " OutputQ (closer than Fig 3).\n");
    }

    if (!cli.json_path.empty() && !writeSweepJson(cli.json_path, spec, cells))
        return 1;
    return 0;
}
