/**
 * @file
 * Figure 4: mean queueing delay vs offered load under the client-server
 * workload. Four of sixteen ports are servers; client-client connections
 * carry only 5% of the traffic of connections involving a server; the
 * load axis is the offered load on a *server* link. The paper's claim:
 * same qualitative ordering as Figure 3, with PIM even closer to output
 * queueing than in the uniform case.
 */
#include <cstdio>

#include "an2/sim/fifo_switch.h"
#include "an2/sim/oq_switch.h"
#include "an2/sim/traffic.h"
#include "bench_common.h"

namespace {

using namespace an2;
using namespace an2::bench;

constexpr int kN = 16;
constexpr int kServers = 4;

}  // namespace

int
main()
{
    an2::bench::banner(
        "Figure 4 -- delay vs offered load, client-server workload",
        "Anderson et al. 1992, Figure 4 (16x16, 4 servers, 5% ratio)");
    std::printf("  load = offered load on a server link; delay in slots\n\n");
    std::printf("  load     FIFO        PIM(4)      OutputQ\n");
    SimConfig cfg = standardSimConfig();
    for (int i = 0; i < kLoadSweepSize; ++i) {
        double load = kLoadSweep[i];
        double fifo_delay;
        double pim_delay;
        double oq_delay;
        {
            FifoSwitch sw(kN, 301);
            ClientServerTraffic traffic(kN, kServers, load, 401);
            fifo_delay = runSimulation(sw, traffic, cfg).mean_delay;
        }
        {
            InputQueuedSwitch sw({.n = kN}, makePim(4, 302));
            ClientServerTraffic traffic(kN, kServers, load, 401);
            pim_delay = runSimulation(sw, traffic, cfg).mean_delay;
        }
        {
            OutputQueuedSwitch sw(kN);
            ClientServerTraffic traffic(kN, kServers, load, 401);
            oq_delay = runSimulation(sw, traffic, cfg).mean_delay;
        }
        std::printf("  %4.2f  %9.2f   %9.2f   %9.2f\n", load, fifo_delay,
                    pim_delay, oq_delay);
    }
    std::printf("\n  Expected: FIFO head-of-line limited; PIM close to"
                " OutputQ (closer than Fig 3).\n");
    return 0;
}
