/**
 * @file
 * Ablation for the §4 frame-size trade-off: "a larger frame size allows
 * for finer granularity in bandwidth allocation; smaller frames yield
 * lower latency." The bench sweeps frame size and reports, from the
 * Appendix B machinery: allocation granularity (fraction of a link per
 * cell/frame), the end-to-end CBR latency bound, the buffer bound, and
 * the controller padding overhead required by clock drift — quantifying
 * the trade-off the paper leaves as future work (subdividing frames).
 */
#include <cstdio>

#include "an2/base/types.h"
#include "an2/cbr/timing.h"
#include "bench_common.h"

namespace {

using namespace an2;

constexpr double kTol = 1e-4;  // 100 ppm clocks
constexpr double kSlotUs = 0.424;
constexpr double kLinkUs = 10.0;
constexpr int kHops = 4;

}  // namespace

int
main()
{
    an2::bench::banner(
        "Ablation -- CBR frame size vs latency, granularity, and padding",
        "Anderson et al. 1992, Section 4 trade-off discussion");
    std::printf("  %d-hop path, %.0f ppm clocks, %.0f us links, padding ="
                " max(min required, 1%%)\n\n",
                kHops, kTol * 1e6, kLinkUs);
    std::printf("  %7s  %12s  %13s  %13s  %10s\n", "frame",
                "granularity", "latency bound", "buffer bound", "padding");
    std::printf("  %7s  %12s  %13s  %13s  %10s\n", "(slots)",
                "(% of link)", "(us)", "(frames)", "(slots)");
    for (int frame : {50, 100, 250, 500, 1000, 2000, 4000}) {
        int pad = minControllerPadding(frame, kTol);
        pad = std::max(pad, frame / 100);  // at least 1% for a sane bound
        FrameTiming t = makeFrameTiming(frame, frame + pad, kSlotUs, kTol,
                                        kLinkUs);
        double granularity = 100.0 / frame;
        double lat_us = latencyBound(t, kHops);
        double buf_frames = bufferBound(t, kHops);
        std::printf("  %7d  %11.3f%%  %13.1f  %13.2f  %10d\n", frame,
                    granularity, lat_us, buf_frames, pad);
    }
    std::printf("\n  Smaller frames: lower guaranteed latency but coarser"
                " allocation and\n  proportionally more padding overhead."
                " The AN2 prototype picks 1000 slots\n  (~0.42 ms frames,"
                " 0.1%% granularity).\n");
    return 0;
}
