/**
 * @file
 * Graceful degradation under a port outage: throughput and delay
 * before, during, and after an output-port failure on the Figure-3
 * workload (16x16, uniform, PIM with 4 iterations), with CBR bookings
 * repaired through the incremental Slepian-Duguid scheduler.
 *
 * Scenario: output 3 dies at slot 40,000 and revives at slot 60,000
 * (out_down(3)@40000,out_up(3)@60000). While it is down, arrivals for
 * it are dropped at ingress and its CBR reservations are revoked; the
 * other 15 outputs keep their service. On revival the repair engine
 * re-places every revoked booking at a bounded number of placements per
 * slot and the measured repair latency is reported, together with the
 * count of reserved-traffic cells lost to the outage.
 *
 * Everything is seeded and scripted, so the numbers in EXPERIMENTS.md
 * ("Degradation under failures") reproduce exactly.
 */
#include <cstdio>
#include <memory>

#include "an2/cbr/admission.h"
#include "an2/cbr/slepian_duguid.h"
#include "an2/fault/cbr_repair.h"
#include "an2/fault/chaos.h"
#include "an2/fault/fault_plan.h"
#include "an2/fault/injector.h"
#include "an2/fault/restoration.h"
#include "an2/harness/sweep.h"
#include "an2/matching/pim.h"
#include "an2/sim/iq_switch.h"
#include "an2/sim/traffic.h"
#include "an2/topo/lan.h"
#include "an2/topo/topology.h"
#include "bench_common.h"

namespace an2::bench {
namespace {

constexpr int kN = 16;
constexpr int kFrame = 32;
constexpr SlotTime kSlots = 100'000;
constexpr SlotTime kWarmup = 10'000;
constexpr SlotTime kFailAt = 40'000;
constexpr SlotTime kReviveAt = 60'000;
constexpr PortId kDeadOutput = 3;

/** Per-window accumulation of the VBR service. */
struct Window
{
    const char* label;
    SlotTime begin;
    SlotTime end;
    int64_t injected = 0;
    int64_t delivered = 0;
    int64_t delay_sum = 0;

    bool contains(SlotTime slot) const
    {
        return slot >= begin && slot < end;
    }

    double throughput() const
    {
        // Delivered cells per live output per slot; the outage window
        // has only 15 live outputs, which is the point of the table.
        return static_cast<double>(delivered) /
               (static_cast<double>(end - begin) * kN);
    }

    double meanDelay() const
    {
        return delivered ? static_cast<double>(delay_sum) /
                               static_cast<double>(delivered)
                         : 0.0;
    }
};

int
run()
{
    // CBR control plane: one light booking per input plus a cluster of
    // reservations crossing the output that will fail.
    SlepianDuguidScheduler sched(kN, kFrame);
    AdmissionController adm(kFrame);
    fault::CbrRepairEngine repair(sched, adm, kN, /*ops_per_slot=*/2);
    for (PortId i = 0; i < kN; ++i)
        if (!repair.book(i, (i + 5) % kN, 1))
            return 1;
    for (PortId i : {1, 2, 4, 6})
        if (!repair.book(i, kDeadOutput, 1))
            return 1;
    const int total_bookings = repair.bookings();

    fault::FaultPlan plan = fault::FaultPlan::parse(
        "out_down(3)@40000,out_up(3)@60000");
    fault::FaultInjector injector(kN, plan, /*seed=*/2026);
    injector.addListener(&repair);

    // 0.8 uniform datagram load plus the CBR overlay puts the hottest
    // output (the one that will fail: 5 reserved cells per 32-slot
    // frame) at ~0.96 offered — loaded but stable, per Figure 3.
    InputQueuedSwitch sw(IqSwitchConfig{.n = kN}, makePim(4, 7),
                         &sched.schedule());
    UniformTraffic traffic(kN, 0.8, 11);

    Window windows[] = {
        {"before", kWarmup, kFailAt},
        {"outage", kFailAt, kReviveAt},
        {"after", kReviveAt, kSlots},
    };

    int64_t cbr_injected = 0, cbr_lost_ingress = 0, cbr_delivered = 0;
    std::vector<Cell> arrivals;
    int64_t cbr_seq = 0;
    for (SlotTime slot = 0; slot < kSlots; ++slot) {
        injector.beginSlot(slot, &sw);

        // Reserved traffic: each booking's source offers its k cells at
        // the top of every frame, oblivious to the outage (the endpoint
        // keeps transmitting until admission tells it otherwise).
        if (slot % kFrame == 0) {
            const auto offer = [&](PortId i, PortId j, int k) {
                for (int c = 0; c < k; ++c) {
                    Cell cell;
                    cell.flow = 100'000 + i * kN + j;
                    cell.input = i;
                    cell.output = j;
                    cell.cls = TrafficClass::CBR;
                    cell.seq = cbr_seq++;
                    cell.inject_slot = slot;
                    ++cbr_injected;
                    if (injector.classifyArrival(cell) ==
                        fault::FaultInjector::Verdict::Deliver)
                        sw.acceptCell(cell);
                    else
                        ++cbr_lost_ingress;
                }
            };
            for (PortId i = 0; i < kN; ++i)
                offer(i, (i + 5) % kN, 1);
            for (PortId i : {1, 2, 4, 6})
                offer(i, kDeadOutput, 1);
        }

        // Datagram background (Figure-3 workload).
        arrivals.clear();
        traffic.generate(slot, arrivals);
        for (const Cell& c : arrivals) {
            for (Window& w : windows)
                if (w.contains(slot))
                    ++w.injected;
            if (injector.classifyArrival(c) ==
                fault::FaultInjector::Verdict::Deliver)
                sw.acceptCell(c);
        }

        for (const Cell& c : sw.runSlot(slot)) {
            if (c.cls == TrafficClass::CBR) {
                ++cbr_delivered;
                continue;
            }
            for (Window& w : windows) {
                if (w.contains(slot)) {
                    ++w.delivered;
                    w.delay_sum += slot - c.inject_slot;
                }
            }
        }
    }

    banner("bench_fault_recovery -- service through an output-port outage",
           "robustness scenario on the Figure 3 workload (16x16, "
           "uniform 0.8 + CBR overlay, PIM(4))");
    std::printf("  output %d down at slot %lld, up at slot %lld; first %lld"
                " slots are warmup\n\n",
                kDeadOutput, static_cast<long long>(kFailAt),
                static_cast<long long>(kReviveAt),
                static_cast<long long>(kWarmup));
    std::printf("  window    slots     offered   tput/port   mean VBR "
                "delay (slots)\n");
    for (const Window& w : windows) {
        double offered = static_cast<double>(w.injected) /
                         (static_cast<double>(w.end - w.begin) * kN);
        std::printf("  %-8s  %6lld     %5.3f     %5.3f       %8.2f\n",
                    w.label, static_cast<long long>(w.end - w.begin),
                    offered, w.throughput(), w.meanDelay());
    }

    const fault::RepairStats& rs = repair.stats();
    std::printf("\n  CBR: %d bookings (%lld cells/frame offered); "
                "%lld injected, %lld delivered,\n"
                "       %lld lost at the dead port, %lld buffered\n",
                total_bookings, static_cast<long long>(kN + 4),
                static_cast<long long>(cbr_injected),
                static_cast<long long>(cbr_delivered),
                static_cast<long long>(cbr_lost_ingress +
                                       sw.cbrCellsLost()),
                static_cast<long long>(cbr_injected - cbr_delivered -
                                       cbr_lost_ingress -
                                       sw.cbrCellsLost()));
    std::printf("  repair: %lld reservations revoked at the failure, %lld "
                "re-placed after revival\n"
                "          (%lld failed), repair latency %lld slots at 2 "
                "placements/slot\n",
                static_cast<long long>(rs.revoked),
                static_cast<long long>(rs.rebooked),
                static_cast<long long>(rs.rebook_failed),
                static_cast<long long>(rs.last_repair_latency));
    std::printf("  datagram cells dropped at the dead port: %lld\n",
                static_cast<long long>(injector.cellsDropped() -
                                       cbr_lost_ingress));
    if (!repair.fullyRepaired()) {
        std::printf("  ERROR: repair incomplete at end of run\n");
        return 1;
    }
    return 0;
}

/**
 * Restoration at LAN scale: a 16-ary fat-tree under seeded chaos churn
 * (link + switch kills with revivals), CBR paths restored end to end by
 * the PathRestorer. One row per churn rate: terminal-state mix, retry
 * count, and the restoration-latency p50/p99 in slots. Fully seeded —
 * the table in EXPERIMENTS.md reproduces exactly.
 */
int
runLanRestoration()
{
    constexpr uint64_t kBaseSeed = 4001;
    constexpr int64_t kFrames = 20;
    const double kRates[] = {1.0, 4.0, 16.0};

    banner("bench_fault_recovery -- restoration at LAN scale",
           "fat-tree k=16 (320 switches, 512 hosts), uniform VBR+CBR "
           "matrix, seeded chaos(link+switch), CBR path restoration");
    std::printf("  churn rate = expected kill episodes per 1000 slots; "
                "%lld frames per run\n\n",
                static_cast<long long>(kFrames));
    std::printf("  rate   episodes  restored  degraded  abandoned  pending"
                "  retries   p50    p99  (slots)\n");

    topo::Topology topo = topo::Topology::fatTree(16, 4);
    int run_index = 0;
    for (double rate : kRates) {
        topo::LanConfig config;
        config.seed = harness::runSeed(kBaseSeed, run_index, 0);
        config.matcher = [](int n_ports, uint64_t seed) {
            PimConfig cfg;
            cfg.iterations = 4;
            cfg.seed = seed;
            return std::make_unique<PimMatcher>(cfg);
        };
        topo::Lan lan(topo, config);
        const uint64_t place_seed =
            harness::runSeed(kBaseSeed, run_index, 1);
        lan.placeMatrix(topo::Pattern::Uniform,
                        topo::TrafficSpec{TrafficClass::VBR, 0.05, 0},
                        place_seed);
        lan.placeMatrix(topo::Pattern::Uniform,
                        topo::TrafficSpec{TrafficClass::CBR, 0.0, 1},
                        place_seed + 1);

        fault::RestorePolicy policy;
        policy.seed = harness::runSeed(kBaseSeed, run_index, 2);
        lan.enableRestoration(policy);

        fault::ChaosSpec chaos;
        chaos.seed = 7;
        chaos.rate = rate;
        chaos.kinds = fault::kChaosLink | fault::kChaosSwitch;
        const SlotTime horizon =
            kFrames * lan.net().config().switch_frame_slots;
        lan.scheduleFaults(fault::expandChaos(
            chaos, fault::chaosEnvFor(lan.net(), horizon)));

        lan.runFrames(kFrames);
        const fault::RestoreStats& rs = lan.restorer()->stats();
        std::printf("  %4.1f   %8lld  %8lld  %8lld  %9lld  %7d  %7lld  "
                    "%5lld  %5lld\n",
                    rate, static_cast<long long>(rs.episodes),
                    static_cast<long long>(rs.restored),
                    static_cast<long long>(rs.degraded),
                    static_cast<long long>(rs.abandoned),
                    lan.restorer()->pendingCount(),
                    static_cast<long long>(rs.retries),
                    static_cast<long long>(rs.latency_slots.quantile(0.50)),
                    static_cast<long long>(rs.latency_slots.quantile(0.99)));
        ++run_index;
    }
    std::printf("\n  every episode ends Restored, Degraded, or Abandoned; "
                "the conservation\n  invariant (revoked == replaced + shed "
                "+ pending) is checked at each step\n");
    return 0;
}

}  // namespace
}  // namespace an2::bench

int
main()
{
    int rc = an2::bench::run();
    if (rc != 0)
        return rc;
    return an2::bench::runLanRestoration();
}
