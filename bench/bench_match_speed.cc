/**
 * @file
 * Scheduling-rate microbenchmark (paper §3.3, reinterpreted).
 *
 * The AN2 hardware schedules a 16x16 switch in one 424 ns cell time —
 * over 37 million cells per second. This software model cannot match
 * FPGA wiring, but the benchmark quantifies the per-slot cost of each
 * scheduling algorithm and the derived cells/second rate, demonstrating
 * the shape claim: 4-iteration PIM is cheap, near-linear in N^2, and far
 * cheaper than maximum matching.
 */
#include <benchmark/benchmark.h>

#include <vector>

#include "an2/matching/hopcroft_karp.h"
#include "an2/matching/islip.h"
#include "an2/matching/pim.h"
#include "an2/matching/pim_fast.h"
#include "an2/matching/serial_greedy.h"
#include "an2/matching/statistical.h"

namespace {

using namespace an2;

/** Pre-generate dense request patterns so the PRNG isn't benchmarked.
    Fewer patterns at large N keep the working set in memory bounds. */
std::vector<RequestMatrix>
patterns(int n, double p, int count)
{
    if (n > 64)
        count = 8;
    Xoshiro256 rng(1234);
    std::vector<RequestMatrix> reqs;
    reqs.reserve(static_cast<size_t>(count));
    for (int i = 0; i < count; ++i)
        reqs.push_back(RequestMatrix::bernoulli(n, p, rng));
    return reqs;
}

void
reportCellsPerSecond(benchmark::State& state, int64_t matched_total)
{
    state.counters["cells/s"] = benchmark::Counter(
        static_cast<double>(matched_total), benchmark::Counter::kIsRate);
}

template <typename MakeMatcher>
void
runMatcherBench(benchmark::State& state, MakeMatcher make)
{
    const auto n = static_cast<int>(state.range(0));
    auto reqs = patterns(n, 0.75, 64);
    auto matcher = make(n);
    Matching m(n, n);  // reused: the switch hot path calls matchInto
    int64_t matched = 0;
    size_t idx = 0;
    for (auto _ : state) {
        matcher->matchInto(reqs[idx], m);
        benchmark::DoNotOptimize(m.size());
        matched += m.size();
        idx = (idx + 1) % reqs.size();
    }
    reportCellsPerSecond(state, matched);
}

void
BM_Pim4(benchmark::State& state)
{
    runMatcherBench(state, [](int) {
        return std::make_unique<PimMatcher>(
            PimConfig{.iterations = 4, .seed = 7});
    });
}

void
BM_FastPim4(benchmark::State& state)
{
    runMatcherBench(state, [](int) {
        return std::make_unique<FastPimMatcher>(4, 7);
    });
}

void
BM_PimComplete(benchmark::State& state)
{
    runMatcherBench(state, [](int) {
        return std::make_unique<PimMatcher>(
            PimConfig{.iterations = 0, .seed = 7});
    });
}

void
BM_Islip4(benchmark::State& state)
{
    runMatcherBench(state,
                    [](int) { return std::make_unique<IslipMatcher>(4); });
}

void
BM_Greedy(benchmark::State& state)
{
    runMatcherBench(state, [](int) {
        return std::make_unique<SerialGreedyMatcher>(true, 7);
    });
}

void
BM_HopcroftKarp(benchmark::State& state)
{
    runMatcherBench(state, [](int) {
        return std::make_unique<HopcroftKarpMatcher>();
    });
}

void
BM_Pim4Reference(benchmark::State& state)
{
    // The scalar core the word-parallel backend replaced; kept
    // benchmarked so the speedup is visible in one report.
    runMatcherBench(state, [](int) {
        return std::make_unique<PimMatcher>(PimConfig{
            .iterations = 4, .seed = 7,
            .backend = MatcherBackend::Reference});
    });
}

void
BM_Islip4Reference(benchmark::State& state)
{
    runMatcherBench(state, [](int) {
        return std::make_unique<IslipMatcher>(4,
                                              MatcherBackend::Reference);
    });
}

/**
 * Slot-to-slot churn model for the warm-start rows: one persistent
 * matrix evolves by a few visible-edge flips per "slot" (the temporal
 * locality the switch hot loop exhibits — most queued requests survive
 * from one slot to the next), instead of rotating through independent
 * random patterns that would invalidate every remembered edge.
 */
template <typename MakeMatcher>
void
runChurnBench(benchmark::State& state, MakeMatcher make)
{
    const auto n = static_cast<int>(state.range(0));
    Xoshiro256 rng(1234);
    RequestMatrix req = RequestMatrix::bernoulli(n, 0.75, rng);
    auto matcher = make(n);
    Matching m(n, n);
    Xoshiro256 churn(99);
    const int churn_ops = n / 4 > 4 ? n / 4 : 4;
    int64_t matched = 0;
    for (auto _ : state) {
        for (int t = 0; t < churn_ops; ++t) {
            auto i = static_cast<PortId>(
                churn.nextBelow(static_cast<uint64_t>(n)));
            auto j = static_cast<PortId>(
                churn.nextBelow(static_cast<uint64_t>(n)));
            if (churn.nextBernoulli(0.5))
                req.increment(i, j);
            else if (req.count(i, j) > 0)
                req.decrement(i, j);
        }
        matcher->matchInto(req, m);
        benchmark::DoNotOptimize(m.size());
        matched += m.size();
    }
    reportCellsPerSecond(state, matched);
}

void
BM_Islip4Churn(benchmark::State& state)
{
    // Cold baseline on the churn workload, so the warm delta below is
    // measured on identical inputs.
    runChurnBench(state,
                  [](int) { return std::make_unique<IslipMatcher>(4); });
}

void
BM_Islip4Warm(benchmark::State& state)
{
    runChurnBench(state, [](int) {
        return std::make_unique<IslipMatcher>(4, MatcherBackend::Auto,
                                              WarmStart::On);
    });
}

void
BM_GreedyChurn(benchmark::State& state)
{
    runChurnBench(state, [](int) {
        return std::make_unique<SerialGreedyMatcher>(true, 7);
    });
}

void
BM_GreedyWarm(benchmark::State& state)
{
    runChurnBench(state, [](int) {
        return std::make_unique<SerialGreedyMatcher>(
            true, 7, MatcherBackend::Auto, WarmStart::On);
    });
}

void
BM_FastPim4Warm(benchmark::State& state)
{
    runChurnBench(state, [](int) {
        return std::make_unique<FastPimMatcher>(4, 7, WarmStart::On);
    });
}

void
BM_Statistical2(benchmark::State& state)
{
    runMatcherBench(state, [](int n) {
        Matrix<int> alloc(n, n, 1000 / n);
        StatisticalConfig cfg;
        cfg.units = 1000;
        cfg.rounds = 2;
        cfg.seed = 7;
        return std::make_unique<StatisticalMatcher>(alloc, cfg);
    });
}

// The word-parallel cores cover N up to 1024 (multi-word masks beyond
// 64); the reference cores are benchmarked alongside at the sizes where
// their O(N^2) scans stay tolerable.
BENCHMARK(BM_Pim4)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);
BENCHMARK(BM_FastPim4)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);
BENCHMARK(BM_PimComplete)->Arg(16)->Arg(64)->Arg(256);
BENCHMARK(BM_Islip4)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);
BENCHMARK(BM_Greedy)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);
BENCHMARK(BM_Pim4Reference)->Arg(16)->Arg(64)->Arg(256);
BENCHMARK(BM_Islip4Reference)->Arg(16)->Arg(64)->Arg(256);
BENCHMARK(BM_HopcroftKarp)->Arg(16)->Arg(64);
BENCHMARK(BM_Statistical2)->Arg(16)->Arg(64);

// Warm-start rows (churn model: the matrix evolves slot to slot).
BENCHMARK(BM_Islip4Churn)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);
BENCHMARK(BM_Islip4Warm)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);
BENCHMARK(BM_GreedyChurn)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);
BENCHMARK(BM_GreedyWarm)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);
BENCHMARK(BM_FastPim4Warm)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);

}  // namespace

BENCHMARK_MAIN();
