/**
 * @file
 * Table 2: AN2 switch component costs as a proportion of total switch
 * cost. 1992 hardware prices cannot be measured, so this bench prints
 * the parameterized cost model (calibrated to the paper's published
 * percentages at N = 16) and then uses the model to extrapolate how the
 * shares shift with switch size — quantifying the §2.1-2.2 argument that
 * optics dominate at moderate scale while the O(N^2) crossbar and
 * scheduling wiring stay negligible.
 */
#include <cstdio>

#include "an2/fabric/cost_model.h"
#include "bench_common.h"

namespace {

using namespace an2;

void
printShares(const char* label, const CostModel& model, int n)
{
    std::printf("  %-28s", label);
    for (const auto& s : model.shares(n))
        std::printf("  %5.1f%%", 100.0 * s.share);
    std::printf("\n");
}

}  // namespace

int
main()
{
    an2::bench::banner("Table 2 -- AN2 switch component costs",
                       "Anderson et al. 1992, Table 2 (cost model)");
    CostModel prototype(CostModel::prototypeParams());
    CostModel production(CostModel::productionParams());

    std::printf("  %-28s  %6s  %6s  %6s  %6s  %6s\n", "", "Opto", "Xbar",
                "Buffer", "Sched", "CPU");
    printShares("Prototype (16x16, FPGA)", prototype, 16);
    printShares("Production est. (16x16)", production, 16);
    std::printf("\n  Paper: prototype 48/4/21/10/17, production 63/5/19/3/10"
                " (percent)\n");

    std::printf("\n  Model extrapolation (production parameters):\n");
    std::printf("  %-28s  %6s  %6s  %6s  %6s  %6s\n", "", "Opto", "Xbar",
                "Buffer", "Sched", "CPU");
    for (int n : {8, 16, 32, 64, 128}) {
        char label[32];
        std::snprintf(label, sizeof label, "N = %d", n);
        printShares(label, production, n);
    }
    std::printf("\n  Note: shares are a calibrated model, not a measurement"
                " (see DESIGN.md).\n");
    return 0;
}
