/**
 * @file
 * Table 1: percentage of total matches found within K iterations of
 * parallel iterative matching, for a 16x16 switch under the uniform
 * request workload. For each request probability p, many random patterns
 * are generated; PIM runs to completion and the cumulative match count
 * after each of the first four iterations is compared with the final
 * (maximal) count. The paper reports, e.g., 64% / 88% / 97% / 99.9% for
 * p = 1.0.
 */
#include <algorithm>
#include <cstdio>
#include <vector>

#include "an2/matching/pim.h"
#include "bench_common.h"

namespace {

using namespace an2;

constexpr int kN = 16;
constexpr int kPatternsPerP = 100'000;

void
runForP(double p, PimMatcher& pim, Rng& pattern_rng)
{
    // Cumulative matches after iteration K (index K-1), and at completion.
    std::vector<int64_t> within(4, 0);
    int64_t complete = 0;
    for (int t = 0; t < kPatternsPerP; ++t) {
        auto req = RequestMatrix::bernoulli(kN, p, pattern_rng);
        PimRunStats stats;
        pim.matchDetailed(req, stats, 0);
        int final_size = stats.matches_after_iteration.empty()
                             ? 0
                             : stats.matches_after_iteration.back();
        complete += final_size;
        for (int k = 0; k < 4; ++k) {
            int idx = std::min<int>(k, stats.iterations_run - 1);
            within[static_cast<size_t>(k)] +=
                stats.matches_after_iteration.empty()
                    ? 0
                    : stats.matches_after_iteration[static_cast<size_t>(idx)];
        }
    }
    std::printf("  %4.2f    ", p);
    for (int k = 0; k < 4; ++k) {
        double pct = complete == 0 ? 100.0
                                   : 100.0 *
                                         static_cast<double>(
                                             within[static_cast<size_t>(k)]) /
                                         static_cast<double>(complete);
        std::printf("  %8.3f%%", pct);
    }
    std::printf("\n");
}

}  // namespace

int
main()
{
    an2::bench::banner(
        "Table 1 -- % of total matches found within K iterations (16x16)",
        "Anderson et al. 1992, Table 1 (uniform workload)");
    std::printf("  Pr{cell i->j}   K=1         K=2         K=3         K=4\n");
    PimMatcher pim(PimConfig{.iterations = 0, .seed = 20260707});
    Xoshiro256 pattern_rng(42);
    for (double p : {0.10, 0.25, 0.50, 0.75, 1.00})
        runForP(p, pim, pattern_rng);
    std::printf("\nPaper reference row (p=1.0): 64%% / 88%% / 97%% / 99.9%%\n");
    return 0;
}
