/**
 * @file
 * Figure 1: performance degradation due to FIFO queueing under periodic
 * traffic (Li's stationary blocking). Every input receives cells for the
 * same rotating output, in bursts of B slots per output. With FIFO input
 * buffers the queues stay synchronized on the same head destination and
 * aggregate throughput collapses toward a single link as B grows, while
 * random-access buffers (PIM) and output queueing sustain the full
 * switch. The bench prints aggregate throughput in units of links across
 * burst lengths.
 */
#include <cstdio>

#include "an2/sim/fifo_switch.h"
#include "an2/sim/oq_switch.h"
#include "an2/sim/traffic.h"
#include "bench_common.h"

namespace {

using namespace an2;
using an2::bench::makePim;

constexpr int kN = 16;

double
aggregateLinks(SwitchModel& sw, int burst, uint64_t seed)
{
    PeriodicBurstTraffic traffic(kN, 1.0, seed, burst);
    SimConfig cfg;
    cfg.slots = 30'000;
    cfg.warmup = 6'000;
    SimResult res = runSimulation(sw, traffic, cfg);
    return res.throughput * kN;  // links' worth of aggregate throughput
}

}  // namespace

int
main()
{
    an2::bench::banner(
        "Figure 1 -- FIFO stationary blocking under periodic traffic (16x16)",
        "Anderson et al. 1992, Figure 1 / Li 1988");
    std::printf("  All 16 inputs receive a cell every slot for output"
                " (slot / B) mod 16.\n  Aggregate throughput in links"
                " (max %d):\n\n", kN);
    std::printf("  %-26s", "architecture \\ burst B");
    const int bursts[] = {1, 16, 256, 2048};
    for (int b : bursts)
        std::printf("  %7d", b);
    std::printf("\n");

    std::printf("  %-26s", "FIFO");
    for (int b : bursts) {
        FifoSwitch fifo(kN, 1);
        std::printf("  %7.2f", aggregateLinks(fifo, b, 11));
    }
    std::printf("\n  %-26s", "FIFO(window=4,rounds=4)");
    for (int b : bursts) {
        FifoSwitch windowed(kN, 2, /*window=*/4, /*rounds=*/4);
        std::printf("  %7.2f", aggregateLinks(windowed, b, 12));
    }
    std::printf("\n  %-26s", "IQ[PIM(4)]");
    for (int b : bursts) {
        InputQueuedSwitch pim_sw({.n = kN}, makePim(4, 3));
        std::printf("  %7.2f", aggregateLinks(pim_sw, b, 13));
    }
    std::printf("\n  %-26s", "OutputQueued");
    for (int b : bursts) {
        OutputQueuedSwitch oq(kN);
        std::printf("  %7.2f", aggregateLinks(oq, b, 14));
    }
    std::printf("\n\n  Paper: under stationary blocking FIFO degrades"
                " toward 1-2 links (the longer\n  the bursts, the closer"
                " to a single link); without the FIFO restriction all\n"
                "  %d links stay fully utilized.\n", kN);
    return 0;
}
