/**
 * @file
 * Appendix C: statistical matching delivers at least (1 - 1/e) ~ 63% of
 * every allocation with one round and (1 - 1/e)(1 + 1/e^2) ~ 72% with
 * two rounds, in any allocation pattern. The bench measures the
 * delivered/allocated ratio per connection across several patterns —
 * fully-allocated uniform, skewed, random feasible, and partially
 * allocated — and reports the minimum and mean ratios.
 */
#include <algorithm>
#include <cstdio>
#include <vector>

#include "an2/base/stats.h"
#include "an2/matching/statistical.h"
#include "bench_common.h"

namespace {

using namespace an2;

constexpr int kN = 8;
constexpr int kUnits = 1000;
constexpr int kSlots = 150'000;

Matrix<int>
uniformFull()
{
    return Matrix<int>(kN, kN, kUnits / kN);
}

Matrix<int>
skewed()
{
    // Input i sends mostly to output i, a trickle elsewhere.
    Matrix<int> alloc(kN, kN, 20);
    for (int i = 0; i < kN; ++i)
        alloc(i, i) = kUnits - 20 * (kN - 1);
    return alloc;
}

Matrix<int>
randomFeasible(uint64_t seed)
{
    Xoshiro256 rng(seed);
    Matrix<int> alloc(kN, kN, 0);
    for (int step = 0; step < 4000; ++step) {
        auto i = static_cast<int>(rng.nextBelow(kN));
        auto j = static_cast<int>(rng.nextBelow(kN));
        int k = static_cast<int>(rng.nextBelow(40)) + 1;
        if (alloc.rowSum(i) + k <= kUnits && alloc.colSum(j) + k <= kUnits)
            alloc(i, j) += k;
    }
    return alloc;
}

Matrix<int>
halfAllocated()
{
    return Matrix<int>(kN, kN, kUnits / (2 * kN));
}

void
runPattern(const char* label, const Matrix<int>& alloc)
{
    for (int rounds : {1, 2}) {
        StatisticalConfig cfg;
        cfg.units = kUnits;
        cfg.rounds = rounds;
        cfg.seed = 3131 + static_cast<uint64_t>(rounds);
        StatisticalMatcher sm(alloc, cfg);
        Matrix<int64_t> matched(kN, kN, 0);
        for (int s = 0; s < kSlots; ++s)
            for (auto [i, j] : sm.matchAllocated().pairs())
                ++matched(i, j);
        double min_ratio = 1e9;
        RunningStats ratios;
        for (int i = 0; i < kN; ++i) {
            for (int j = 0; j < kN; ++j) {
                if (alloc.at(i, j) == 0)
                    continue;
                double allocated =
                    static_cast<double>(alloc.at(i, j)) / kUnits;
                double delivered =
                    static_cast<double>(matched(i, j)) / kSlots;
                double ratio = delivered / allocated;
                ratios.add(ratio);
                min_ratio = std::min(min_ratio, ratio);
            }
        }
        std::printf("  %-22s  %d      %6.3f      %6.3f     %6.3f\n", label,
                    rounds, ratios.mean(), min_ratio,
                    rounds == 1 ? statisticalOneRoundFraction(kUnits)
                                : statisticalTwoRoundFraction(kUnits));
    }
}

}  // namespace

int
main()
{
    an2::bench::banner(
        "Appendix C -- statistical matching delivered/allocated throughput",
        "Anderson et al. 1992, Section 5.2 and Appendix C (63% / 72%)");
    std::printf("  8x8 switch, X=%d units, %d slots per pattern\n\n", kUnits,
                kSlots);
    std::printf("  %-22s  rounds  mean ratio  min ratio  theory floor\n",
                "allocation pattern");
    runPattern("uniform, 100% booked", uniformFull());
    runPattern("skewed diagonal", skewed());
    runPattern("random feasible", randomFeasible(99));
    runPattern("uniform, 50% booked", halfAllocated());
    std::printf("\n  Every per-connection ratio should sit at or above the"
                " theory floor\n  ((1-1/e) for one round;"
                " (1-1/e)(1+1/e^2) for two), modulo sampling noise.\n");
    return 0;
}
