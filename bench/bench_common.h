/**
 * @file
 * Shared helpers for the experiment harnesses: fixed-width table
 * printing and canonical simulation wrappers. Every bench binary prints
 * the rows/series of the paper artifact it reproduces.
 */
#ifndef AN2_BENCH_BENCH_COMMON_H
#define AN2_BENCH_BENCH_COMMON_H

#include <cstdio>
#include <memory>
#include <string>

#include "an2/matching/pim.h"
#include "an2/sim/iq_switch.h"
#include "an2/sim/simulator.h"

namespace an2::bench {

/** Print a bench header banner. */
inline void
banner(const std::string& title, const std::string& paper_ref)
{
    std::printf("\n============================================================"
                "====================\n");
    std::printf("%s\n", title.c_str());
    std::printf("Reproduces: %s\n", paper_ref.c_str());
    std::printf("--------------------------------------------------------------"
                "------------------\n");
}

/** Construct a PIM matcher with the given iteration count and seed. */
inline std::unique_ptr<Matcher>
makePim(int iterations, uint64_t seed, int output_capacity = 1,
        AcceptPolicy accept = AcceptPolicy::Random)
{
    PimConfig cfg;
    cfg.iterations = iterations;
    cfg.seed = seed;
    cfg.output_capacity = output_capacity;
    cfg.accept = accept;
    return std::make_unique<PimMatcher>(cfg);
}

/** Canonical load sweep used by the Figure 3/4/5 benches. */
inline const double kLoadSweep[] = {0.20, 0.40, 0.60, 0.70, 0.80,
                                    0.90, 0.95, 0.99};
inline constexpr int kLoadSweepSize = 8;

/** Standard simulation length for the delay-vs-load experiments. */
inline SimConfig
standardSimConfig()
{
    SimConfig cfg;
    cfg.slots = 120'000;
    cfg.warmup = 20'000;
    return cfg;
}

}  // namespace an2::bench

#endif  // AN2_BENCH_BENCH_COMMON_H
