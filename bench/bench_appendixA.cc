/**
 * @file
 * Appendix A: parallel iterative matching completes in O(log N) expected
 * iterations, independent of the request pattern. The bench measures the
 * empirical mean (and maximum) number of iterations to reach a maximal
 * match against the proof's bound log2(N) + 4/3, for the full request
 * matrix (the adversarial dense case) and random patterns.
 */
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "an2/base/stats.h"
#include "an2/matching/pim.h"
#include "bench_common.h"

namespace {

using namespace an2;

struct IterStats
{
    double mean;
    double max;
};

IterStats
measure(int n, double p, int trials, PimMatcher& pim, Rng& rng)
{
    RunningStats iters;
    for (int t = 0; t < trials; ++t) {
        RequestMatrix req = p >= 1.0 ? RequestMatrix::bernoulli(n, 1.0, rng)
                                     : RequestMatrix::bernoulli(n, p, rng);
        PimRunStats stats;
        pim.matchDetailed(req, stats, 0);
        // The final iteration adds nothing; completion took one fewer.
        iters.add(std::max(stats.iterations_run - 1, 1));
    }
    return {iters.mean(), iters.max()};
}

}  // namespace

int
main()
{
    an2::bench::banner(
        "Appendix A -- PIM iterations to maximal match vs the O(log N) bound",
        "Anderson et al. 1992, Appendix A: E[C] <= log2(N) + 4/3");
    std::printf("  %4s  %9s  %19s  %19s\n", "N", "bound",
                "dense (p=1.0)", "sparse (p=0.3)");
    std::printf("  %4s  %9s  %9s %9s  %9s %9s\n", "", "", "mean", "max",
                "mean", "max");
    for (int n : {2, 4, 8, 16, 32, 64}) {
        PimMatcher pim(PimConfig{.iterations = 0,
                                 .seed = 900 + static_cast<uint64_t>(n)});
        Xoshiro256 rng(static_cast<uint64_t>(77 + n));
        int trials = n <= 16 ? 3000 : 600;
        IterStats dense = measure(n, 1.0, trials, pim, rng);
        IterStats sparse = measure(n, 0.3, trials, pim, rng);
        double bound = std::log2(n) + 4.0 / 3.0;
        std::printf("  %4d  %9.2f  %9.2f %9.0f  %9.2f %9.0f\n", n, bound,
                    dense.mean, dense.max, sparse.mean, sparse.max);
    }
    std::printf("\n  The empirical mean must stay below the bound for every"
                " N (it does, with\n  large margin: the proof's 3/4"
                " resolution factor is conservative).\n");
    return 0;
}
