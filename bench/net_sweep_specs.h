/**
 * @file
 * Network-scale sweep specifications (topo::Lan experiments), the
 * LAN-sized siblings of the single-switch specs in sweep_specs.h, plus
 * the registry and CLI glue `an2_sweep` uses to run them.
 */
#ifndef AN2_BENCH_NET_SWEEP_SPECS_H
#define AN2_BENCH_NET_SWEEP_SPECS_H

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "an2/harness/cli.h"
#include "an2/obs/blackbox.h"
#include "an2/obs/recorder.h"
#include "an2/topo/net_metrics.h"
#include "an2/topo/net_sweep.h"
#include "sweep_specs.h"

namespace an2::bench {

// ---------------------------------------------------------------------------
// Topology axis values

inline topo::NetTopoSpec
fatTreeTopo(int k, int hosts_per_edge)
{
    return {"fat-tree(k=" + std::to_string(k) + ",h=" +
                std::to_string(hosts_per_edge) + ")",
            [k, hosts_per_edge] {
                return topo::Topology::fatTree(k, hosts_per_edge);
            }};
}

inline topo::NetTopoSpec
starTopo(int leaves, int hosts_per_leaf)
{
    return {"star(" + std::to_string(leaves) + "x" +
                std::to_string(hosts_per_leaf) + ")",
            [leaves, hosts_per_leaf] {
                return topo::Topology::star(leaves, hosts_per_leaf);
            }};
}

inline topo::NetTopoSpec
torusTopo(int rows, int cols, int hosts_per_switch)
{
    return {"torus(" + std::to_string(rows) + "x" + std::to_string(cols) +
                ")",
            [rows, cols, hosts_per_switch] {
                return topo::Topology::mesh(rows, cols, /*torus=*/true,
                                            hosts_per_switch);
            }};
}

inline topo::NetTopoSpec
randomRegularTopo(int switches, int degree, int hosts_per_switch,
                  uint64_t seed)
{
    return {"random-regular(" + std::to_string(switches) + ",d=" +
                std::to_string(degree) + ")",
            [switches, degree, hosts_per_switch, seed] {
                return topo::Topology::randomRegular(
                    switches, degree, hosts_per_switch, seed);
            }};
}

// ---------------------------------------------------------------------------
// The network-scale experiments

/**
 * netscale: a 16-ary fat-tree with 16 hosts per edge switch — 320
 * switches and 2048 hosts — under a uniform VBR+CBR traffic matrix.
 * The flagship scale test for the sharded engine: `--engine parallel`
 * and `--engine serial` produce byte-identical JSON.
 */
inline topo::NetSweepSpec
netScaleSpec()
{
    topo::NetSweepSpec spec;
    spec.name = "netscale";
    spec.description =
        "LAN-scale fat-tree (320 switches, 2048 hosts), uniform "
        "VBR+CBR matrix, delivered throughput vs offered load";
    spec.topos = {fatTreeTopo(16, 16)};
    spec.loads = {0.05, 0.10};
    spec.frames = 10;
    spec.base_seed = 2001;
    return spec;
}

/** netshape: campus star vs torus vs random regular at matched scale. */
inline topo::NetSweepSpec
netShapeSpec()
{
    topo::NetSweepSpec spec;
    spec.name = "netshape";
    spec.description = "topology shootout at ~64 hosts: star-of-stars "
                       "vs torus vs random 4-regular, uniform matrix";
    spec.topos = {starTopo(16, 4), torusTopo(4, 4, 4),
                  randomRegularTopo(16, 4, 4, /*seed=*/11)};
    spec.loads = {0.05, 0.10, 0.20};
    spec.frames = 20;
    spec.base_seed = 2002;
    return spec;
}

/** Registry entry for `an2_sweep --experiment NAME` (network flavor). */
struct NetExperiment
{
    const char* name;
    const char* blurb;
    topo::NetSweepSpec (*make)();
};

inline const std::vector<NetExperiment>&
netExperiments()
{
    static const std::vector<NetExperiment> kExperiments = {
        {"netscale", "LAN-scale fat-tree (320 sw / 2048 hosts), uniform",
         netScaleSpec},
        {"netshape", "star vs torus vs random-regular topology shootout",
         netShapeSpec},
    };
    return kExperiments;
}

inline const NetExperiment*
findNetExperiment(const std::string& name)
{
    for (const NetExperiment& e : netExperiments())
        if (name == e.name)
            return &e;
    return nullptr;
}

// ---------------------------------------------------------------------------
// CLI glue

/** Overlay the shared CLI's overrides onto a net sweep spec. */
inline void
applyNetCli(const SweepCli& cli, topo::NetSweepSpec& spec)
{
    if (cli.replicates > 0)
        spec.replicates = cli.replicates;
    if (cli.frames > 0)
        spec.frames = cli.frames;
    if (cli.seed_set)
        spec.base_seed = cli.seed;
    if (!cli.loads.empty())
        spec.loads = cli.loads;
    if (!cli.faults.empty())
        spec.faults = cli.faults;
    if (cli.chaos.enabled()) {
        // Chaos without restoration is just attrition; --chaos always
        // arms the CBR path restorer (default retry/backoff policy).
        spec.chaos = cli.chaos;
        spec.restore = true;
    }
}

/** Engine thread count from --engine / --threads (1 = serial loop). */
inline int
netEngineThreads(const SweepCli& cli)
{
    if (cli.engine == "serial")
        return 1;
    int t = cli.threads;
    if (t <= 0)
        t = static_cast<int>(std::thread::hardware_concurrency());
    t = std::max(t, 1);
    if (cli.engine == "parallel")
        t = std::max(t, 2);
    return t;
}

/** Print the delivered-throughput table (topologies as columns). */
inline void
printNetTable(const topo::NetSweepSpec& spec,
              const std::vector<topo::NetCellSummary>& cells)
{
    std::printf("  load");
    for (const topo::NetTopoSpec& t : spec.topos)
        std::printf("  %24s", t.name.c_str());
    std::printf("\n");
    for (size_t li = 0; li < spec.loads.size(); ++li) {
        std::printf("  %4.2f", spec.loads[li]);
        for (size_t ti = 0; ti < spec.topos.size(); ++ti)
            std::printf("  %24.4f",
                        cells[ti * spec.loads.size() + li].throughput.mean);
        std::printf("\n");
    }
    if (spec.replicates > 1)
        std::printf("\n  (%d replicates per cell; stddev/CI95 in the JSON "
                    "output)\n",
                    spec.replicates);
}

/**
 * Run a network experiment end to end for `an2_sweep`: sweep, table,
 * optional an2.netsweep.v1 JSON. Returns the process exit code.
 */
inline int
runNetExperimentInner(const topo::NetSweepSpec& spec, const SweepCli& cli,
                      int engine_threads)
{
    const bool table = cli.json_path != "-";
    if (table) {
        banner("an2_sweep -- " + spec.name + ": " + spec.description,
               "network sweep (" +
                   std::string(topo::patternName(spec.pattern)) +
                   " traffic matrix)");
        if (!spec.faults.empty())
            std::printf("  fault plan: %s\n", spec.faults.str().c_str());
        if (spec.chaos.enabled())
            std::printf("  chaos: %s (CBR path restoration armed)\n",
                        spec.chaos.str().c_str());
        std::printf("  delivered/injected throughput; %s engine\n\n",
                    engine_threads > 1 ? "sharded parallel" : "serial");
    }

    std::function<void(int, int)> progress;
    if (isatty(fileno(stderr)))
        progress = [](int done, int total) {
            std::fprintf(stderr, "\r  [%d/%d] runs complete", done, total);
            if (done == total)
                std::fprintf(stderr, "\n");
        };
    auto t0 = std::chrono::steady_clock::now();
    std::vector<topo::NetCellSummary> cells =
        topo::runNetSweep(spec, engine_threads, progress);
    auto t1 = std::chrono::steady_clock::now();
    std::fprintf(stderr, "  %zu runs in %.2f s on %d engine thread(s)\n",
                 spec.topos.size() * spec.loads.size() *
                     static_cast<size_t>(spec.replicates),
                 std::chrono::duration<double>(t1 - t0).count(),
                 engine_threads);

    if (table)
        printNetTable(spec, cells);
    if (!cli.json_path.empty()) {
        std::string doc = topo::netSweepToJson(spec, cells);
        if (!writeTextFile(cli.json_path, doc, "an2.netsweep.v1"))
            return 1;
    }

    // --metrics / --metrics-prom: re-run the observed grid point (first
    // topology, highest load, replicate 0) sampling LanStats at frame
    // boundaries. The samples are byte-identical for any engine/thread
    // choice, so this doubles as the determinism check in CI.
    if (!cli.metrics_path.empty() || !cli.metrics_prom_path.empty()) {
        const int64_t every =
            cli.metrics_every > 0
                ? cli.metrics_every
                : static_cast<int64_t>(spec.net.switch_frame_slots);
        topo::LanMetricsSeries series(every);
        topo::observeNetPoint(spec, engine_threads, series);
        if (!cli.metrics_path.empty() &&
            !writeTextFile(cli.metrics_path, series.toJsonLines(),
                           "an2.metrics.v1"))
            return 1;
        if (!cli.metrics_prom_path.empty() &&
            !writeTextFile(cli.metrics_prom_path, series.toPrometheus(),
                           "metrics exposition"))
            return 1;
    }
    return 0;
}

/**
 * Run a network experiment end to end for `an2_sweep`. Under --chaos the
 * run is flown with a flight recorder: any invariant panic or engine
 * failure dumps an an2.blackbox.v1 post-mortem and prints the one-line
 * serial repro command before exiting nonzero.
 */
inline int
runNetExperiment(const NetExperiment& exp, const SweepCli& cli)
{
    topo::NetSweepSpec spec = exp.make();
    applyNetCli(cli, spec);
    const int engine_threads = netEngineThreads(cli);

    if (!spec.chaos.enabled())
        return runNetExperimentInner(spec, cli, engine_threads);

    // Chaos flight recorder. The panic hook covers invariants tripped on
    // this thread; failures rethrown from engine workers land in the
    // catch below and dump manually. Either way the newest post-mortem
    // is on disk next to a command that replays the exact run serially.
    obs::Recorder recorder{obs::RecorderConfig{}};
    obs::BlackboxConfig bb_cfg;
    bb_cfg.dump_on_fault = false;  // chaos churn is scripted, not fatal
    bb_cfg.path = cli.blackbox_path.empty() ? "an2_chaos_blackbox.json"
                                            : cli.blackbox_path;
    obs::Blackbox box(recorder, nullptr, bb_cfg);
    try {
        return runNetExperimentInner(spec, cli, engine_threads);
    } catch (const std::exception& e) {
        box.dump(e.what(), 0);
        std::fprintf(stderr,
                     "an2_sweep: chaos run failed: %s\n"
                     "  post-mortem: %s\n"
                     "  repro: an2_sweep --experiment %s --chaos '%s' "
                     "--seed %llu --frames %lld --engine serial\n",
                     e.what(), bb_cfg.path.c_str(), spec.name.c_str(),
                     spec.chaos.str().c_str(),
                     static_cast<unsigned long long>(spec.base_seed),
                     static_cast<long long>(spec.frames));
        return 1;
    }
}

}  // namespace an2::bench

#endif  // AN2_BENCH_NET_SWEEP_SPECS_H
