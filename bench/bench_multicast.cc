/**
 * @file
 * Extension bench: multicast scheduling (§2 mentions AN2 supports
 * multicast flows). Saturated multicast traffic with varying fanout,
 * three service models:
 *  - fanout splitting: residue is re-scheduled in later slots,
 *  - no splitting (all-or-nothing transmissions),
 *  - unicast replication: the source sends F separate copies (the
 *    fallback if the fabric could not replicate).
 * Reported: delivered copies per output link per slot.
 */
#include <algorithm>
#include <cstdio>
#include <deque>
#include <set>
#include <vector>

#include "an2/base/rng.h"
#include "an2/matching/multicast.h"
#include "an2/matching/pim.h"
#include "bench_common.h"

namespace {

using namespace an2;

constexpr int kN = 16;
constexpr int kSlots = 20'000;

/** Saturated per-input queue of multicast cells with fixed fanout. */
struct McQueue
{
    std::deque<std::vector<PortId>> cells;  // each = remaining fanout
};

double
runMulticast(int fanout, bool splitting)
{
    MulticastPimConfig cfg;
    cfg.fanout_splitting = splitting;
    cfg.iterations = 4;
    cfg.seed = 17;
    MulticastPim pim(kN, cfg);
    Xoshiro256 rng(23);

    std::vector<McQueue> queues(kN);
    auto refill = [&](McQueue& q) {
        while (q.cells.size() < 4) {
            std::set<PortId> outs;
            while (static_cast<int>(outs.size()) < fanout)
                outs.insert(static_cast<PortId>(rng.nextBelow(kN)));
            q.cells.emplace_back(outs.begin(), outs.end());
        }
    };

    int64_t delivered = 0;
    for (int slot = 0; slot < kSlots; ++slot) {
        std::vector<MulticastRequest> reqs;
        std::vector<int> req_input;
        for (PortId i = 0; i < kN; ++i) {
            refill(queues[static_cast<size_t>(i)]);
            reqs.push_back({i, queues[static_cast<size_t>(i)].cells.front()});
        }
        MulticastMatch m = pim.match(reqs);
        delivered += m.deliveries;
        for (size_t r = 0; r < reqs.size(); ++r) {
            if (m.won[r].empty())
                continue;
            auto& head = queues[static_cast<size_t>(reqs[r].input)]
                             .cells.front();
            std::vector<PortId> residue;
            for (PortId j : head)
                if (!std::binary_search(m.won[r].begin(), m.won[r].end(), j))
                    residue.push_back(j);
            if (residue.empty())
                queues[static_cast<size_t>(reqs[r].input)].cells.pop_front();
            else
                head = residue;
        }
    }
    return static_cast<double>(delivered) / (kSlots * kN);
}

double
runUnicastReplication(int fanout)
{
    // The source expands each multicast cell into `fanout` unicast cells
    // and PIM schedules them individually.
    PimMatcher pim(PimConfig{.iterations = 4, .seed = 29});
    Xoshiro256 rng(31);
    std::vector<std::deque<PortId>> queues(kN);
    auto refill = [&](std::deque<PortId>& q) {
        while (q.size() < 8) {
            std::set<PortId> outs;
            while (static_cast<int>(outs.size()) < fanout)
                outs.insert(static_cast<PortId>(rng.nextBelow(kN)));
            for (PortId j : outs)
                q.push_back(j);
        }
    };
    int64_t delivered = 0;
    for (int slot = 0; slot < kSlots; ++slot) {
        RequestMatrix req(kN);
        for (PortId i = 0; i < kN; ++i) {
            refill(queues[static_cast<size_t>(i)]);
            // VOQ view: all queued copies are eligible.
            for (PortId j : queues[static_cast<size_t>(i)])
                req.increment(i, j);
        }
        Matching m = pim.match(req);
        delivered += m.size();
        for (auto [i, j] : m.pairs()) {
            auto& q = queues[static_cast<size_t>(i)];
            q.erase(std::find(q.begin(), q.end(), j));
        }
    }
    return static_cast<double>(delivered) / (kSlots * kN);
}

}  // namespace

int
main()
{
    an2::bench::banner(
        "Extension -- multicast scheduling: splitting vs atomic vs unicast",
        "Anderson et al. 1992, Section 2 (multicast support, undescribed)");
    std::printf("  16x16, saturated multicast queues; delivered copies per"
                " output link per slot:\n\n");
    std::printf("  %7s  %12s  %12s  %12s\n", "fanout", "splitting",
                "no-split", "unicast-rep");
    for (int fanout : {1, 2, 4, 8}) {
        std::printf("  %7d  %12.3f  %12.3f  %12.3f\n", fanout,
                    runMulticast(fanout, true),
                    runMulticast(fanout, false),
                    runUnicastReplication(fanout));
    }
    std::printf(
        "\n  Reading the table: splitting utilization grows with fanout"
        " (more ways to\n  keep outputs busy) while all-or-nothing"
        " collapses - winning 8 grants at once\n  is hopeless. Unicast"
        " replication posts high *output* utilization because its\n"
        "  copies sit in VOQs (no multicast-FIFO HOL blocking), but every"
        " original cell\n  costs it F transmissions of the source link -"
        " under finite offered load the\n  replicating source saturates"
        " F times sooner than a true multicast one.\n");
    return 0;
}
