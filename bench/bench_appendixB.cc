/**
 * @file
 * Appendix B: end-to-end latency and buffer bounds for CBR traffic under
 * unsynchronized clocks. A chain of p switches with adversarial clock
 * errors (fast source controller, alternating fast/slow switches) carries
 * an always-backlogged CBR flow; the bench reports the measured maximum
 * adjusted latency against Formula 3's bound 2p(F_s-max + l), and the
 * measured peak per-switch buffer occupancy against Formula 5's bound.
 */
#include <cmath>
#include <cstdio>
#include <vector>

#include "an2/cbr/timing.h"
#include "an2/network/network.h"
#include "bench_common.h"

namespace {

using namespace an2;
using an2::bench::makePim;

constexpr double kTol = 0.005;       // 0.5% clock tolerance
constexpr int kFrame = 50;           // switch frame slots
constexpr PicoTime kSlotPs = 1000;   // arbitrary wall unit
constexpr PicoTime kLinkPs = 2000;   // link latency + switch overhead
constexpr int kCellsPerFrame = 5;

struct HopResult
{
    int hops;
    double measured_latency;
    double latency_bound;
    int measured_buffer;
    double buffer_bound;
    int measured_active_frames;
    double active_frames_bound;
    int64_t delivered;
    int64_t order_violations;
};

HopResult
runChain(int hops)
{
    NetworkConfig cfg;
    cfg.slot_ps = kSlotPs;
    cfg.switch_frame_slots = kFrame;
    cfg.controller_padding = minControllerPadding(kFrame, kTol);
    Network net(cfg);

    NodeId src = net.addController(+kTol, 1);
    std::vector<NodeId> switches;
    for (int h = 0; h < hops; ++h) {
        double err = (h % 2 == 0) ? -kTol : +kTol;
        switches.push_back(net.addSwitch(
            2, err, makePim(4, 100 + static_cast<uint64_t>(h))));
    }
    NodeId dst = net.addController(-kTol, 2);

    net.connect(src, 0, switches.front(), 0, kLinkPs);
    for (int h = 0; h + 1 < hops; ++h)
        net.connect(switches[static_cast<size_t>(h)], 1,
                    switches[static_cast<size_t>(h + 1)], 0, kLinkPs);
    net.connect(switches.back(), 1, dst, 0, kLinkPs);

    std::vector<NodeId> path;
    path.push_back(src);
    for (NodeId s : switches)
        path.push_back(s);
    path.push_back(dst);
    FlowId flow = net.addCbrFlow(path, kCellsPerFrame);

    net.runFrames(1500);

    FrameTiming t = makeFrameTiming(
        kFrame, kFrame + cfg.controller_padding,
        static_cast<double>(kSlotPs), kTol, static_cast<double>(kLinkPs));

    HopResult res{};
    res.hops = hops;
    const auto& stats = net.controller(dst).deliveryStats(flow);
    res.delivered = stats.delivered;
    res.order_violations = stats.order_violations;
    res.measured_latency = stats.adjusted_latency_ps.max();
    res.latency_bound = latencyBound(t, hops);
    res.buffer_bound = bufferBound(t, hops) * kCellsPerFrame;
    res.measured_buffer = 0;
    res.measured_active_frames = 0;
    res.active_frames_bound = maxActiveFrames(t, hops);
    for (NodeId s : switches) {
        const auto& occ = net.netSwitch(s).occupancy();
        auto it = occ.max_per_cbr_flow.find(flow);
        if (it != occ.max_per_cbr_flow.end())
            res.measured_buffer = std::max(res.measured_buffer, it->second);
        auto af = occ.max_active_frames.find(flow);
        if (af != occ.max_active_frames.end())
            res.measured_active_frames =
                std::max(res.measured_active_frames, af->second);
    }
    return res;
}

}  // namespace

int
main()
{
    an2::bench::banner(
        "Appendix B -- CBR latency & buffer bounds under clock drift",
        "Anderson et al. 1992, Appendix B, Formulas 3 and 5");
    std::printf("  chain of p switches, +/-%.1f%% clocks, frame=%d slots,"
                " reservation=%d cells/frame\n\n",
                100 * kTol, kFrame, kCellsPerFrame);
    std::printf("  %4s  %13s %12s   %9s %9s   %9s %9s   %8s %4s\n", "p",
                "adj.lat (max)", "bound (F.3)", "buf (max)", "bnd (F.5)",
                "actv.frm", "bound", "deliverd", "ooo");
    bool all_hold = true;
    for (int hops : {1, 2, 4, 6, 8}) {
        HopResult r = runChain(hops);
        bool ok = r.measured_latency <= r.latency_bound &&
                  r.measured_buffer <= std::ceil(r.buffer_bound) &&
                  r.measured_active_frames <= r.active_frames_bound &&
                  r.order_violations == 0;
        all_hold = all_hold && ok;
        std::printf("  %4d  %13.0f %12.0f   %9d %9.1f   %9d %9.0f   %8lld"
                    " %4lld%s\n",
                    r.hops, r.measured_latency, r.latency_bound,
                    r.measured_buffer, r.buffer_bound,
                    r.measured_active_frames, r.active_frames_bound,
                    static_cast<long long>(r.delivered),
                    static_cast<long long>(r.order_violations),
                    ok ? "" : "  ** BOUND VIOLATED **");
    }
    std::printf("\n  %s\n", all_hold
                                ? "All measured values within the Appendix B "
                                  "bounds; no reordering."
                                : "BOUND VIOLATION DETECTED -- investigate!");
    return all_hold ? 0 : 1;
}
