/**
 * @file
 * bench_network_scale — the LAN-scale stress experiment: a 16-ary
 * fat-tree (320 switches, 2048 hosts) carrying a uniform VBR+CBR
 * traffic matrix, driven by the sharded deterministic network engine.
 *
 *     bench_network_scale --engine parallel --threads 8 \
 *                         --json BENCH_netscale.json
 *     bench_network_scale --engine serial --json serial.json
 *
 * The two JSON documents above are byte-identical: the engine is a
 * wall-clock choice, never a results choice. `--faults` composes — a
 * link_down plan triggers deterministic ECMP failover on both engines.
 */
#include <cstdio>

#include "net_sweep_specs.h"

int
main(int argc, char** argv)
{
    using namespace an2;
    using namespace an2::bench;

    SweepCli cli;
    std::string err;
    if (!parseSweepCli(argc, argv, cli, err)) {
        std::fprintf(stderr, "error: %s\n", err.c_str());
        printSweepCliHelp(argv[0], /*with_experiment=*/false);
        return 2;
    }
    if (cli.help) {
        printSweepCliHelp(argv[0], /*with_experiment=*/false);
        return 0;
    }

    NetExperiment exp = {"netscale", "", netScaleSpec};
    try {
        return runNetExperiment(exp, cli);
    } catch (const UsageError& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 2;
    }
}
