/**
 * @file
 * Figure 5: impact of the number of PIM iterations on queueing delay
 * under the uniform workload (16x16). The paper's findings: even one
 * iteration beats FIFO queueing; four iterations are within 0.5% of
 * running to completion.
 */
#include <cstdio>
#include <vector>

#include "an2/sim/fifo_switch.h"
#include "an2/sim/traffic.h"
#include "bench_common.h"

namespace {

using namespace an2;
using namespace an2::bench;

constexpr int kN = 16;

}  // namespace

int
main()
{
    an2::bench::banner(
        "Figure 5 -- PIM delay vs offered load for 1..4 iterations",
        "Anderson et al. 1992, Figure 5 (uniform workload, 16x16)");
    std::printf("  delay in cell slots; 'inf' = run to completion\n\n");
    std::printf("  load   PIM(1)      PIM(2)      PIM(3)      PIM(4)      "
                "PIM(inf)    FIFO\n");
    SimConfig cfg = standardSimConfig();
    const int iteration_choices[] = {1, 2, 3, 4, 0};
    double pim4_99 = 0.0;
    double piminf_99 = 0.0;
    for (int i = 0; i < kLoadSweepSize; ++i) {
        double load = kLoadSweep[i];
        std::printf("  %4.2f", load);
        for (int iters : iteration_choices) {
            InputQueuedSwitch sw({.n = kN}, makePim(iters, 500 + iters));
            UniformTraffic traffic(kN, load, 601);
            double delay = runSimulation(sw, traffic, cfg).mean_delay;
            std::printf("  %9.2f ", delay);
            if (load == 0.99 && iters == 4)
                pim4_99 = delay;
            if (load == 0.99 && iters == 0)
                piminf_99 = delay;
        }
        FifoSwitch fifo(kN, 700);
        UniformTraffic traffic(kN, load, 601);
        std::printf("  %9.2f\n", runSimulation(fifo, traffic, cfg).mean_delay);
    }
    std::printf("\n  PIM(4) vs PIM(complete) at 99%% load: %.2f vs %.2f"
                " slots (paper: within 0.5%%)\n",
                pim4_99, piminf_99);
    return 0;
}
