/**
 * @file
 * Figure 5: impact of the number of PIM iterations on queueing delay
 * under the uniform workload (16x16). The paper's findings: even one
 * iteration beats FIFO queueing; four iterations are within 0.5% of
 * running to completion.
 *
 * Runs on the parallel deterministic sweep harness: `--threads N`
 * changes wall-clock only, never results; `--json PATH` emits the
 * an2.sweep.v1 document (see EXPERIMENTS.md).
 */
#include <cstdio>

#include "sweep_specs.h"

int
main(int argc, char** argv)
{
    using namespace an2;
    using namespace an2::bench;

    SweepCli cli;
    std::string err;
    if (!parseSweepCli(argc, argv, cli, err)) {
        std::fprintf(stderr, "error: %s\n", err.c_str());
        printSweepCliHelp(argv[0], /*with_experiment=*/false);
        return 2;
    }
    if (cli.help) {
        printSweepCliHelp(argv[0], /*with_experiment=*/false);
        return 0;
    }

    harness::SweepSpec spec = fig5Spec();
    applyCli(cli, spec);

    // With --json - the document owns stdout; keep the table off it.
    const bool table = cli.json_path != "-";
    if (table) {
        banner("Figure 5 -- PIM delay vs offered load for 1..4 iterations",
               "Anderson et al. 1992, Figure 5 (uniform workload, 16x16)");
        std::printf("  delay in cell slots; 'inf' = run to completion\n\n");
    }

    harness::SweepResult res = runSweepWithProgress(spec, cli.threads);
    auto cells = harness::aggregate(spec, res);
    if (table) {
        printDelayTable(spec, cells);
        const harness::CellSummary* pim4 = findCell(cells, "PIM(4)", 0.99);
        const harness::CellSummary* piminf = findCell(cells, "PIM(inf)", 0.99);
        if (pim4 && piminf)
            std::printf("\n  PIM(4) vs PIM(complete) at 99%% load: %.2f vs"
                        " %.2f slots (paper: within 0.5%%)\n",
                        pim4->mean_delay.mean, piminf->mean_delay.mean);
    }

    if (!cli.json_path.empty() && !writeSweepJson(cli.json_path, spec, cells))
        return 1;
    return 0;
}
