/**
 * @file
 * Iterations-to-convergence distribution for PIM, measured through the
 * obs probe layer rather than ad-hoc instrumentation: a Recorder is
 * attached, the switch runs the Figure 3 uniform workload at each load,
 * and the recorder's per-slot productive-iterations histogram gives the
 * distribution of how many request/grant/accept rounds did useful work
 * before the matching stopped growing.
 *
 * The paper (§3.2) argues log N iterations suffice; this bench shows the
 * distribution concentrating far below the budget at every load, which
 * is why PIM(4) tracks PIM(run-to-completion) so closely at N=16.
 */
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "an2/harness/json_writer.h"
#include "an2/obs/recorder.h"
#include "an2/sim/simulator.h"
#include "an2/sim/traffic.h"
#include "bench_common.h"

namespace {

using namespace an2;

struct Cli
{
    std::string json_path;
    long long slots = 50'000;
    long long warmup = 5'000;
    int size = 16;
    int iterations = 0;  ///< PIM budget; 0 = run to completion
    uint64_t seed = 404;
    std::vector<double> loads{0.30, 0.50, 0.70, 0.90, 0.99};
    bool help = false;
};

void
printHelp(const char* prog)
{
    std::printf("usage: %s [options]\n", prog);
    std::printf("  --json PATH       write an an2.convergence.v1 document\n");
    std::printf("  --slots S         measured slots per load "
                "(default 50000)\n");
    std::printf("  --warmup W        unmeasured warmup slots "
                "(default 5000)\n");
    std::printf("  --size N          switch size (default 16)\n");
    std::printf("  --iterations K    PIM iteration budget, 0 = run to "
                "completion (default 0)\n");
    std::printf("  --loads A,B,...   offered loads "
                "(default 0.3,0.5,0.7,0.9,0.99)\n");
    std::printf("  --seed X          base seed (default 404)\n");
    std::printf("  --help            this message\n");
}

bool
parseCli(int argc, char** argv, Cli& cli, std::string& err)
{
    auto need = [&](int& i) -> const char* {
        if (i + 1 >= argc) {
            err = std::string(argv[i]) + " needs an argument";
            return nullptr;
        }
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        const char* a = argv[i];
        const char* v = nullptr;
        if (!std::strcmp(a, "--help") || !std::strcmp(a, "-h")) {
            cli.help = true;
        } else if (!std::strcmp(a, "--json")) {
            if (!(v = need(i)))
                return false;
            cli.json_path = v;
        } else if (!std::strcmp(a, "--slots")) {
            if (!(v = need(i)))
                return false;
            cli.slots = std::atoll(v);
        } else if (!std::strcmp(a, "--warmup")) {
            if (!(v = need(i)))
                return false;
            cli.warmup = std::atoll(v);
        } else if (!std::strcmp(a, "--size")) {
            if (!(v = need(i)))
                return false;
            cli.size = std::atoi(v);
        } else if (!std::strcmp(a, "--iterations")) {
            if (!(v = need(i)))
                return false;
            cli.iterations = std::atoi(v);
        } else if (!std::strcmp(a, "--seed")) {
            if (!(v = need(i)))
                return false;
            cli.seed = std::strtoull(v, nullptr, 0);
        } else if (!std::strcmp(a, "--loads")) {
            if (!(v = need(i)))
                return false;
            cli.loads.clear();
            for (const char* p = v; *p != '\0';) {
                char* end = nullptr;
                cli.loads.push_back(std::strtod(p, &end));
                if (end == p) {
                    err = std::string("bad load list: ") + v;
                    return false;
                }
                p = (*end == ',') ? end + 1 : end;
            }
        } else {
            err = std::string("unknown option: ") + a;
            return false;
        }
    }
    if (cli.slots <= 0 || cli.warmup < 0 || cli.size <= 0 ||
        cli.iterations < 0 || cli.loads.empty()) {
        err = "slots/size must be positive, warmup/iterations >= 0, and "
              "at least one load given";
        return false;
    }
    return true;
}

struct LoadResult
{
    double load = 0.0;
    std::vector<int64_t> hist;  ///< productive iterations per slot
    double mean = 0.0;
    int p50 = 0;
    int p99 = 0;
    int max = 0;
};

int
quantileBin(const std::vector<int64_t>& hist, int64_t total, double q)
{
    int64_t target = static_cast<int64_t>(q * static_cast<double>(total));
    int64_t seen = 0;
    for (size_t k = 0; k < hist.size(); ++k) {
        seen += hist[k];
        if (seen > target)
            return static_cast<int>(k);
    }
    return static_cast<int>(hist.size()) - 1;
}

LoadResult
measureLoad(const Cli& cli, double load)
{
    // Warmup runs unobserved so the distribution covers steady state
    // only; the recorder attaches for the measured slots.
    auto sw = std::make_unique<InputQueuedSwitch>(
        IqSwitchConfig{.n = cli.size},
        bench::makePim(cli.iterations, cli.seed));
    UniformTraffic traffic(cli.size, load, cli.seed + 1);
    std::vector<Cell> arrivals;
    auto drive = [&](SlotTime from, SlotTime to) {
        for (SlotTime slot = from; slot < to; ++slot) {
            arrivals.clear();
            traffic.generate(slot, arrivals);
            for (const Cell& c : arrivals)
                sw->acceptCell(c);
            sw->runSlot(slot);
        }
    };
    drive(0, cli.warmup);

    obs::RecorderConfig rc;
    rc.ports = cli.size;
    rc.max_iterations = cli.size + 2;
    obs::Recorder rec(rc);
    obs::attach(&rec);
    drive(cli.warmup, cli.warmup + cli.slots);
    obs::detach();

    LoadResult r;
    r.load = load;
    r.hist = rec.iterationsPerSlotHistogram();
    int64_t total = 0;
    int64_t weighted = 0;
    for (size_t k = 0; k < r.hist.size(); ++k) {
        total += r.hist[k];
        weighted += r.hist[k] * static_cast<int64_t>(k);
        if (r.hist[k] > 0)
            r.max = static_cast<int>(k);
    }
    r.mean = total > 0
                 ? static_cast<double>(weighted) / static_cast<double>(total)
                 : 0.0;
    r.p50 = quantileBin(r.hist, total, 0.50);
    r.p99 = quantileBin(r.hist, total, 0.99);
    return r;
}

std::string
resultsToJson(const Cli& cli, const std::vector<LoadResult>& results)
{
    harness::JsonWriter w;
    w.beginObject();
    w.key("meta").beginObject();
    w.key("schema").value("an2.convergence.v1");
    w.key("description")
        .value("productive PIM iterations per slot (iterations to "
               "convergence), uniform workload");
    w.key("size").value(cli.size);
    w.key("iteration_budget").value(cli.iterations);
    w.key("slots").value(static_cast<int64_t>(cli.slots));
    w.key("warmup").value(static_cast<int64_t>(cli.warmup));
    w.key("base_seed").value(std::to_string(cli.seed));
    w.endObject();
    w.key("loads").beginArray();
    for (const LoadResult& r : results) {
        w.beginObject();
        w.key("load").value(r.load);
        w.key("mean").value(r.mean);
        w.key("p50").value(r.p50);
        w.key("p99").value(r.p99);
        w.key("max").value(r.max);
        w.key("hist").beginArray();
        for (int64_t c : r.hist)
            w.value(c);
        w.endArray();
        w.endObject();
    }
    w.endArray();
    w.endObject();
    return w.str();
}

}  // namespace

int
main(int argc, char** argv)
{
    Cli cli;
    std::string err;
    if (!parseCli(argc, argv, cli, err)) {
        std::fprintf(stderr, "error: %s\n", err.c_str());
        printHelp(argv[0]);
        return 2;
    }
    if (cli.help) {
        printHelp(argv[0]);
        return 0;
    }

    const bool table = cli.json_path != "-";
    if (table) {
        bench::banner("PIM iterations to convergence -- productive "
                      "iterations per slot",
                      "paper S3.2 (log N convergence), via src/an2/obs");
        std::printf("  %dx%d switch, PIM budget %s, %lld measured slots "
                    "per load\n\n",
                    cli.size, cli.size,
                    cli.iterations == 0
                        ? "unlimited (run to completion)"
                        : std::to_string(cli.iterations).c_str(),
                    cli.slots);
        std::printf("  %5s  %6s  %4s  %4s  %4s   distribution "
                    "(slots at 0,1,2,... iterations)\n",
                    "load", "mean", "p50", "p99", "max");
    }

    std::vector<LoadResult> results;
    for (double load : cli.loads) {
        LoadResult r = measureLoad(cli, load);
        if (table) {
            std::printf("  %5.2f  %6.2f  %4d  %4d  %4d  ", r.load, r.mean,
                        r.p50, r.p99, r.max);
            for (int k = 0; k <= r.max; ++k)
                std::printf(" %lld",
                            static_cast<long long>(
                                r.hist[static_cast<size_t>(k)]));
            std::printf("\n");
        }
        results.push_back(std::move(r));
    }

    if (!cli.json_path.empty()) {
        std::string doc = resultsToJson(cli, results);
        if (cli.json_path == "-") {
            std::fwrite(doc.data(), 1, doc.size(), stdout);
        } else {
            std::FILE* f = std::fopen(cli.json_path.c_str(), "wb");
            if (!f) {
                std::fprintf(stderr, "error: cannot open %s\n",
                             cli.json_path.c_str());
                return 1;
            }
            size_t n = std::fwrite(doc.data(), 1, doc.size(), f);
            if (n != doc.size() || std::fclose(f) != 0) {
                std::fprintf(stderr, "error: short write to %s\n",
                             cli.json_path.c_str());
                return 1;
            }
            std::fprintf(stderr, "  wrote %s (%zu bytes)\n",
                         cli.json_path.c_str(), doc.size());
        }
    }
    return 0;
}
