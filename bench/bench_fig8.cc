/**
 * @file
 * Figure 8: unfairness of parallel iterative matching on a single switch.
 *
 * Scenario (0-based ports on a 4x4 switch): inputs 0-2 hold queued cells
 * for output 0 only; input 3 holds queued cells for all four outputs.
 * Output 0 grants input 3 with probability 1/4, and input 3 — which
 * always holds grants from the uncontended outputs 1-3 — accepts with
 * probability 1/4, so connection (3,0) receives ~1/16 of the link while
 * input 3's other connections each receive ~5/16 ("five times this
 * bandwidth"). Statistical matching with equal per-connection
 * allocations on input 3's link restores ~equal shares.
 */
#include <cstdio>

#include "an2/base/stats.h"
#include "an2/matching/fill_in.h"
#include "an2/matching/statistical.h"
#include "an2/sim/virtual_clock.h"
#include "bench_common.h"

namespace {

using namespace an2;
using an2::bench::makePim;

constexpr int kN = 4;
constexpr SlotTime kSlots = 200'000;

Matrix<int64_t>
runSaturated(InputQueuedSwitch& sw)
{
    Matrix<int64_t> served(kN, kN, 0);
    // Keep each connection of the figure backlogged at a small standing
    // queue depth (the figure shows standing queues; topping up to a
    // fixed depth keeps memory bounded over the long run).
    Matrix<int> queued(kN, kN, 0);
    constexpr int kDepth = 4;
    auto topUp = [&](PortId i, PortId j, SlotTime slot) {
        while (queued.at(i, j) < kDepth) {
            Cell c;
            c.flow = static_cast<FlowId>(i * kN + j);
            c.input = i;
            c.output = j;
            c.inject_slot = slot;
            sw.acceptCell(c);
            ++queued.at(i, j);
        }
    };
    for (SlotTime slot = 0; slot < kSlots; ++slot) {
        for (PortId i = 0; i < 3; ++i)
            topUp(i, 0, slot);
        for (PortId j = 0; j < kN; ++j)
            topUp(3, j, slot);
        for (const Cell& d : sw.runSlot(slot)) {
            ++served(d.input, d.output);
            --queued.at(d.input, d.output);
        }
    }
    return served;
}

/**
 * The same contention pattern through Zhang's virtual clock on a perfect
 * output-queued switch (§5.1's comparison point). Arrivals respect the
 * input links (one cell per input per slot; input 3 rotates over its
 * four destinations), and every flow is assigned an equal 0.25 rate.
 */
Matrix<int64_t>
runVirtualClock()
{
    VirtualClockSwitch sw(kN);
    for (PortId i = 0; i < 3; ++i)
        sw.setFlowRate(i * kN + 0, 0.25);
    for (PortId j = 0; j < kN; ++j)
        sw.setFlowRate(3 * kN + j, 0.25);
    Matrix<int64_t> served(kN, kN, 0);
    for (SlotTime slot = 0; slot < kSlots; ++slot) {
        for (PortId i = 0; i < 3; ++i) {
            Cell c;
            c.flow = static_cast<FlowId>(i * kN);
            c.input = i;
            c.output = 0;
            c.arrival_slot = slot;
            sw.acceptCell(c);
        }
        auto j = static_cast<PortId>(slot % kN);
        Cell c;
        c.flow = static_cast<FlowId>(3 * kN + j);
        c.input = 3;
        c.output = j;
        c.arrival_slot = slot;
        sw.acceptCell(c);
        for (const Cell& d : sw.runSlot(slot))
            ++served(d.input, d.output);
    }
    return served;
}

void
printShares(const char* label, const Matrix<int64_t>& served)
{
    std::printf("  %-24s", label);
    std::vector<double> input3_shares;
    for (PortId j = 0; j < kN; ++j) {
        double share = static_cast<double>(served.at(3, j)) / kSlots;
        std::printf("  %6.4f", share);
        input3_shares.push_back(share);
    }
    std::printf("   %5.3f\n", jainFairnessIndex(input3_shares));
}

}  // namespace

int
main()
{
    an2::bench::banner(
        "Figure 8 -- single-switch unfairness of PIM vs statistical matching",
        "Anderson et al. 1992, Figure 8 / Section 5");
    std::printf("  Service rate of input 3's connections (fraction of its"
                " link)\n\n");
    std::printf("  %-24s  %6s  %6s  %6s  %6s   %s\n", "scheduler", "3->0",
                "3->1", "3->2", "3->3", "Jain");

    {
        InputQueuedSwitch sw({.n = kN}, makePim(4, 11));
        printShares("PIM(4)", runSaturated(sw));
    }
    {
        Matrix<int> alloc(kN, kN, 0);
        constexpr int kUnits = 1000;
        for (PortId j = 0; j < kN; ++j)
            alloc(3, j) = kUnits / 4;
        for (PortId i = 0; i < 3; ++i)
            alloc(i, 0) = kUnits / 4;
        StatisticalConfig cfg;
        cfg.units = kUnits;
        cfg.rounds = 2;
        cfg.seed = 12;
        InputQueuedSwitch sw(
            {.n = kN}, std::make_unique<StatisticalMatcher>(alloc, cfg));
        printShares("Statistical(2-round)", runSaturated(sw));

        // The full Section 5.2 configuration: statistical matching with a
        // PIM pass recycling the slots the weighted dice leave idle.
        StatisticalConfig cfg2 = cfg;
        cfg2.seed = 13;
        PimConfig pim_cfg;
        pim_cfg.iterations = 4;
        pim_cfg.seed = 14;
        InputQueuedSwitch sw2(
            {.n = kN},
            std::make_unique<FillInMatcher>(
                std::make_unique<StatisticalMatcher>(alloc, cfg2),
                std::make_unique<PimMatcher>(pim_cfg)));
        printShares("Statistical+PIM fill-in", runSaturated(sw2));
    }
    printShares("VirtualClock (needs OQ)", runVirtualClock());
    std::printf("\n  Paper: PIM gives (3->0) one sixteenth (0.0625) and the"
                " others five times that\n  (0.3125); statistical matching"
                " divides bandwidth per its allocations (~0.18 each\n"
                "  of the 0.25 allocations; the rest of the slots are left"
                " for PIM fill-in).\n");
    return 0;
}
