/**
 * @file
 * Ablation: slot placement inside the CBR frame schedule. The
 * Slepian-Duguid guarantee fixes only the *count* of slots per flow per
 * frame — "we are free to rearrange the schedule" (§4) — so placement is
 * a free QoS knob. First-fit packs a flow's slots together (bursty
 * service, worst-case intra-frame gap near a whole frame); spreading
 * them evenly smooths service to near the ideal gap frame/k, which cuts
 * the delay jitter a paced CBR source sees.
 */
#include <algorithm>
#include <cstdio>
#include <vector>

#include "an2/base/rng.h"
#include "an2/base/stats.h"
#include "an2/cbr/slepian_duguid.h"
#include "bench_common.h"

namespace {

using namespace an2;

constexpr int kN = 16;
constexpr int kFrame = 1000;

/** Load the switch with random reservations; return per-flow gap stats. */
void
measure(SlotPlacement placement, const char* label)
{
    SlepianDuguidScheduler sd(kN, kFrame, placement);
    Xoshiro256 rng(42);
    struct Pair
    {
        PortId i;
        PortId j;
        int k;
    };
    std::vector<Pair> pairs;
    // Book ~70% of every link in randomly sized reservations.
    for (int attempt = 0; attempt < 4000; ++attempt) {
        auto i = static_cast<PortId>(rng.nextBelow(kN));
        auto j = static_cast<PortId>(rng.nextBelow(kN));
        int k = static_cast<int>(rng.nextBelow(40)) + 10;
        if (sd.reservations().inputLoad(i) + k > kFrame * 7 / 10)
            continue;
        if (sd.reservations().outputLoad(j) + k > kFrame * 7 / 10)
            continue;
        if (sd.addReservation(i, j, k))
            pairs.push_back({i, j, k});
    }

    RunningStats gap_ratio;  // measured max gap / ideal gap
    for (const auto& p : pairs) {
        int total = sd.reservations().reserved(p.i, p.j);
        double ideal = static_cast<double>(kFrame) / total;
        gap_ratio.add(sd.maxGap(p.i, p.j) / ideal);
    }
    std::printf("  %-10s  %9zu  %10.2f  %10.2f  %10.0f\n", label,
                pairs.size(), gap_ratio.mean(), gap_ratio.max(),
                static_cast<double>(sd.totalSwaps()));
}

}  // namespace

int
main()
{
    an2::bench::banner(
        "Ablation -- CBR schedule slot placement (first-fit vs spread)",
        "Anderson et al. 1992, Section 4 (slot assignment freedom)");
    std::printf("  16x16, %d-slot frame, random reservations to ~70%%"
                " booking.\n  Gap ratio = worst gap between a flow's"
                " consecutive slots / ideal (frame/k).\n\n", kFrame);
    std::printf("  %-10s  %9s  %10s  %10s  %10s\n", "placement",
                "requests", "mean ratio", "max ratio", "swaps");
    measure(SlotPlacement::FirstFit, "first-fit");
    measure(SlotPlacement::Spread, "spread");
    std::printf("\n  A ratio of 1.0 is perfectly smooth service; first-fit"
                " leaves flows bursty\n  (large worst-case gaps -> higher"
                " jitter and deeper downstream buffers),\n  while spread"
                " placement approaches the ideal at no throughput cost.\n");
    return 0;
}
